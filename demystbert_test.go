package demystbert

import (
	"bytes"
	"strings"
	"testing"

	"demystbert/internal/opgraph"
)

func TestCharacterizeEndToEnd(t *testing.T) {
	r := Characterize(Phase1(BERTLarge(), 32, FP32), MI100())
	if r.Total <= 0 {
		t.Fatal("characterization produced no time")
	}
	if r.GEMMShare() <= 0.3 {
		t.Fatalf("GEMM share %.2f implausible", r.GEMMShare())
	}
}

func TestBuildGraphExposesTable2b(t *testing.T) {
	g := BuildGraph(Phase1(BERTLarge(), 32, FP32))
	if len(g.GEMMs()) < 20 {
		t.Fatal("graph missing GEMM population")
	}
}

func TestTrainRealTinyBERT(t *testing.T) {
	run, err := TrainReal(TinyBERT(), 2, 16, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Losses) != 3 {
		t.Fatalf("got %d losses", len(run.Losses))
	}
	if run.Profile.Total.Kernels == 0 {
		t.Fatal("no kernels profiled")
	}
	if run.Params != TinyBERT().ParamCount() {
		t.Fatalf("param count %d", run.Params)
	}
}

func TestTrainRealRejectsBadConfig(t *testing.T) {
	if _, err := TrainReal(Config{}, 2, 16, 1, 1); err == nil {
		t.Fatal("invalid config must error")
	}
}

func TestWriteArtifactAll(t *testing.T) {
	cfg := BERTLarge()
	dev := MI100()
	for _, a := range Artifacts() {
		var sb strings.Builder
		if err := WriteArtifact(&sb, a, cfg, dev); err != nil {
			t.Errorf("artifact %s: %v", a, err)
		}
		if sb.Len() == 0 {
			t.Errorf("artifact %s produced no output", a)
		}
	}
}

func TestWriteArtifactUnknown(t *testing.T) {
	var sb strings.Builder
	if err := WriteArtifact(&sb, "fig99", BERTLarge(), MI100()); err == nil {
		t.Fatal("unknown artifact must error")
	}
}

func TestFig11ProfilesFacade(t *testing.T) {
	ps := Fig11Profiles(Phase1(BERTLarge(), 16, FP32), MI100())
	if len(ps) != 5 {
		t.Fatalf("got %d profiles", len(ps))
	}
}

func TestNMCStudyFacade(t *testing.T) {
	st := NMCStudy(Phase1(BERTLarge(), 32, FP32))
	if st.SpeedupVsOptimistic() < 3 {
		t.Fatalf("NMC speedup %.2f", st.SpeedupVsOptimistic())
	}
}

func TestMemorizeRealLossFalls(t *testing.T) {
	run, err := MemorizeReal(TinyBERT(), 2, 16, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	first, last := run.Losses[0], run.Losses[len(run.Losses)-1]
	if last >= first {
		t.Fatalf("memorization loss did not fall: %v -> %v", first, last)
	}
}

func TestFineTuneRealFacade(t *testing.T) {
	run, err := FineTuneReal(TinyBERT(), 2, 16, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Losses) != 2 || run.Profile.Total.Kernels == 0 {
		t.Fatalf("fine-tune run malformed: %+v", run)
	}
	if _, err := FineTuneReal(Config{}, 2, 16, 1, 3); err == nil {
		t.Fatal("invalid config must error")
	}
}

func TestModelLifecycleFacade(t *testing.T) {
	m, err := NewModel(TinyBERT(), 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumParams() != m.NumParams() {
		t.Fatal("loaded model parameter count differs")
	}
	f := NewFineTunerFor(loaded, 6)
	if f == nil {
		t.Fatal("fine-tuner construction failed")
	}
}

func TestRunModeWorkloads(t *testing.T) {
	dev := MI100()
	w := Phase1(BERTLarge(), 32, FP32)
	pre := Characterize(w, dev)

	w.Mode = FineTuning
	ft := Characterize(w, dev)
	if ft.Total >= pre.Total {
		t.Fatal("fine-tuning must be cheaper than pre-training (simpler head)")
	}

	w.Mode = Inference
	w.Optimizer = opgraph.OptNone
	inf := Characterize(w, dev)
	if inf.Total >= ft.Total/2 {
		t.Fatal("inference must be far cheaper than training")
	}
}

func TestGPTMediumCharacterization(t *testing.T) {
	r := Characterize(Phase1(GPTMedium(), 8, FP32), MI100())
	if r.Total <= 0 || r.GEMMShare() < 0.3 {
		t.Fatalf("GPT characterization implausible: total %v GEMM %.2f", r.Total, r.GEMMShare())
	}
}
