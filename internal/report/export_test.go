package report

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"demystbert/internal/device"
	"demystbert/internal/obs"
	"demystbert/internal/profile"
)

// sampleSnapshot builds an isolated registry with all three metric
// kinds populated, standing in for the live Default registry.
func sampleSnapshot() []obs.Metric {
	r := obs.NewRegistry()
	r.NewCounter("kernels_pack_cache_hits_total", "pack cache hits").Add(120)
	r.NewCounter("kernels_pack_cache_misses_total", "pack cache misses").Add(8)
	r.NewGauge("loss_scale", "current loss scale").Set(2048)
	h := r.NewHistogram("ddp_step_wall_seconds", "step wall", obs.ExpBuckets(1e-3, 10, 4))
	h.Observe(0.02)
	h.Observe(0.7)
	return r.Snapshot()
}

// TestExportWithRuntimeRoundTrip covers the obs.Snapshot embedding:
// an export carrying runtime metrics must survive a JSON round trip
// with counters, gauges, and histogram buckets intact.
func TestExportWithRuntimeRoundTrip(t *testing.T) {
	r := runOn(opgraphPh1(), device.MI100())
	e := ExportWithRuntime(r, sampleSnapshot())
	if len(e.Runtime) != 4 {
		t.Fatalf("runtime snapshot has %d metrics, want 4", len(e.Runtime))
	}

	var sb strings.Builder
	if err := WriteJSONExport(&sb, e); err != nil {
		t.Fatal(err)
	}
	var back ResultExport
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatalf("export with runtime metrics is not valid JSON: %v", err)
	}
	if back.Workload != e.Workload || len(back.Categories) != len(e.Categories) {
		t.Fatalf("breakdown fields lost: %+v", back)
	}
	byName := map[string]obs.Metric{}
	for _, m := range back.Runtime {
		byName[m.Name] = m
	}
	if m := byName["kernels_pack_cache_hits_total"]; m.Kind != "counter" || m.Value != 120 {
		t.Fatalf("counter did not round-trip: %+v", m)
	}
	if m := byName["loss_scale"]; m.Kind != "gauge" || m.Value != 2048 {
		t.Fatalf("gauge did not round-trip: %+v", m)
	}
	h := byName["ddp_step_wall_seconds"]
	if h.Kind != "histogram" || h.Value != 2 || len(h.Buckets) != 5 {
		t.Fatalf("histogram did not round-trip: %+v", h)
	}
	if !math.IsInf(h.Buckets[4].UpperBound, 1) || h.Buckets[4].Count != 2 {
		t.Fatalf("+Inf bucket did not round-trip: %+v", h.Buckets)
	}
}

// TestExportWithoutRuntimeOmitsField keeps plain exports byte-stable:
// no runtime_metrics key unless a snapshot was attached.
func TestExportWithoutRuntimeOmitsField(t *testing.T) {
	r := runOn(opgraphPh1(), device.MI100())
	var sb strings.Builder
	if err := WriteJSON(&sb, r); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "runtime_metrics") {
		t.Fatal("plain export must omit runtime_metrics")
	}
}

// TestStepRecordFromResult checks the modeled-step JSONL conversion the
// analytical binaries emit: totals and achieved rates must agree with
// the underlying characterization.
func TestStepRecordFromResult(t *testing.T) {
	r := runOn(opgraphPh1(), device.MI100())
	rec := StepRecordFromResult(5, r)
	if rec.Step != 5 || rec.Loss != 0 {
		t.Fatalf("header %+v", rec)
	}
	if want := 1e3 * r.Total.Seconds(); math.Abs(rec.WallMS-want) > 1e-9 {
		t.Fatalf("wall %v ms, want %v", rec.WallMS, want)
	}
	if math.Abs(rec.TokensPerSec-r.TokensPerSecond()) > 1e-9 {
		t.Fatalf("tokens/s %v, want %v", rec.TokensPerSec, r.TokensPerSecond())
	}
	if rec.Tokens != r.Graph.Workload.Tokens() {
		t.Fatalf("tokens %d, want %d", rec.Tokens, r.Graph.Workload.Tokens())
	}
	times := r.ByCategory()
	if len(rec.Categories) != len(times) {
		t.Fatalf("%d categories, want %d", len(rec.Categories), len(times))
	}
	var sumMS float64
	for _, c := range rec.Categories {
		sumMS += c.TimeMS
		if c.Kernels <= 0 {
			t.Fatalf("category %s has no kernels", c.Category)
		}
		if c.TimeMS > 0 && c.GFLOPs > 0 && c.AchievedGFLOPS <= 0 {
			t.Fatalf("category %s missing achieved GFLOP/s: %+v", c.Category, c)
		}
		if c.TimeMS > 0 && c.GBytes > 0 && c.AchievedGBs <= 0 {
			t.Fatalf("category %s missing achieved GB/s: %+v", c.Category, c)
		}
		if c.PeakMemFrac > 1+1e-9 {
			t.Fatalf("category %s above memory peak: %+v", c.Category, c)
		}
	}
	if math.Abs(sumMS-rec.WallMS) > 1e-6*rec.WallMS {
		t.Fatalf("category times sum to %v ms, total %v ms", sumMS, rec.WallMS)
	}
	// GEMM categories compare against the matrix peak, non-GEMM against
	// the vector peak — spot-check one of each exists with a sane frac.
	var sawGEMM bool
	for _, c := range rec.Categories {
		if profile.Category(c.Category).IsGEMM() && c.PeakFLOPFrac > 0 {
			sawGEMM = true
		}
	}
	if !sawGEMM {
		t.Fatal("no GEMM category with a peak fraction")
	}
}
