package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"

	"demystbert/internal/obs"
	"demystbert/internal/perfmodel"
	"demystbert/internal/profile"
)

// CategoryRow is one line of the machine-readable breakdown export.
type CategoryRow struct {
	Category  string  `json:"category"`
	Kernels   int     `json:"kernels"`
	TimeMS    float64 `json:"time_ms"`
	Share     float64 `json:"share"`
	GFLOPs    float64 `json:"gflops"`
	GBytes    float64 `json:"gbytes"`
	Intensity float64 `json:"ops_per_byte"`
}

// ResultExport is the machine-readable form of one characterized
// workload, suitable for plotting pipelines.
type ResultExport struct {
	Workload   string        `json:"workload"`
	Device     string        `json:"device"`
	TotalMS    float64       `json:"total_ms"`
	GEMMShare  float64       `json:"gemm_share"`
	LAMBShare  float64       `json:"lamb_share"`
	Categories []CategoryRow `json:"categories"`

	// Runtime embeds a snapshot of the live engine's metric registry
	// (obs.Registry.Snapshot) so an exported breakdown carries the
	// runtime counters — pack-cache hit rates, worker-pool dispatch
	// stats, batched-GEMM routing — that produced it.
	Runtime []obs.Metric `json:"runtime_metrics,omitempty"`
}

// Export converts a perfmodel result into its machine-readable form,
// categories sorted by descending time.
func Export(r *perfmodel.Result) ResultExport {
	kernels := map[string]int{}
	flops := map[string]int64{}
	bytes := map[string]int64{}
	for _, ot := range r.Ops {
		c := string(ot.Op.Category)
		kernels[c] += ot.Op.Repeat
		flops[c] += ot.Op.TotalFLOPs()
		bytes[c] += ot.Op.TotalBytes()
	}

	out := ResultExport{
		Workload:  r.Graph.Workload.Name,
		Device:    r.Device.Name,
		TotalMS:   1e3 * r.Total.Seconds(),
		GEMMShare: r.GEMMShare(),
		LAMBShare: r.LAMBShare(),
	}
	times := r.ByCategory()
	for _, c := range sortedCategories(times) {
		row := CategoryRow{
			Category: string(c),
			Kernels:  kernels[string(c)],
			TimeMS:   1e3 * times[c].Seconds(),
			Share:    r.CategoryShare(c),
			GFLOPs:   float64(flops[string(c)]) / 1e9,
			GBytes:   float64(bytes[string(c)]) / 1e9,
		}
		if bytes[string(c)] > 0 {
			row.Intensity = float64(flops[string(c)]) / float64(bytes[string(c)])
		}
		out.Categories = append(out.Categories, row)
	}
	return out
}

// ExportWithRuntime is Export plus an embedded snapshot of the live
// metric registry.
func ExportWithRuntime(r *perfmodel.Result, runtime []obs.Metric) ResultExport {
	e := Export(r)
	e.Runtime = runtime
	return e
}

// WriteJSON emits the export as indented JSON.
func WriteJSON(w io.Writer, r *perfmodel.Result) error {
	return WriteJSONExport(w, Export(r))
}

// WriteJSONExport emits an already-built export (e.g. one carrying a
// runtime snapshot) as indented JSON.
func WriteJSONExport(w io.Writer, e ResultExport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// StepRecordFromResult converts a modeled characterization into the
// per-step JSONL schema, so the analytical binaries emit the same stream
// shape as the real-execution engine: wall time is the modeled iteration
// time, achieved rates are the modeled per-category rates, and loss is
// zero (an analytical model has none).
func StepRecordFromResult(step int, r *perfmodel.Result) obs.StepRecord {
	kernels := map[profile.Category]int{}
	flops := map[profile.Category]int64{}
	bytes := map[profile.Category]int64{}
	for _, ot := range r.Ops {
		kernels[ot.Op.Category] += ot.Op.Repeat
		flops[ot.Op.Category] += ot.Op.TotalFLOPs()
		bytes[ot.Op.Category] += ot.Op.TotalBytes()
	}
	peaks := r.Device.Peaks()
	rec := obs.StepRecord{
		Step:         step,
		Tokens:       r.Graph.Workload.Tokens(),
		WallMS:       1e3 * r.Total.Seconds(),
		TokensPerSec: r.TokensPerSecond(),
	}
	times := r.ByCategory()
	for _, c := range sortedCategories(times) {
		st := profile.Stat{
			Kernels:  kernels[c],
			Duration: times[c],
			FLOPs:    flops[c],
			Bytes:    bytes[c],
		}
		rec.Categories = append(rec.Categories, obs.NewCategoryStep(c, st, peaks))
	}
	return rec
}

// WriteCSV emits the export as CSV with a header row.
func WriteCSV(w io.Writer, r *perfmodel.Result) error {
	e := Export(r)
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"workload", "device", "category", "kernels", "time_ms", "share", "gflops", "gbytes", "ops_per_byte",
	}); err != nil {
		return err
	}
	for _, row := range e.Categories {
		if err := cw.Write([]string{
			e.Workload, e.Device, row.Category,
			fmt.Sprint(row.Kernels),
			fmt.Sprintf("%.4f", row.TimeMS),
			fmt.Sprintf("%.5f", row.Share),
			fmt.Sprintf("%.3f", row.GFLOPs),
			fmt.Sprintf("%.3f", row.GBytes),
			fmt.Sprintf("%.3f", row.Intensity),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
