package report

import (
	"fmt"
	"io"

	"demystbert/internal/device"
	"demystbert/internal/dist"
	"demystbert/internal/model"
	"demystbert/internal/nmc"
	"demystbert/internal/opgraph"
	"demystbert/internal/perfmodel"
	"demystbert/internal/profile"
)

// Claim is one of the paper's observations or takeaways, evaluated
// against the model.
type Claim struct {
	ID    string
	Text  string
	Holds bool
	Note  string
}

// EvaluateTakeaways checks every observation (Obs 1-5) and takeaway
// (T1-T13) of the paper against the calibrated model and returns the
// verdicts.
func EvaluateTakeaways(cfg model.Config, dev device.Device) []Claim {
	var claims []Claim
	add := func(id, text string, holds bool, note string) {
		claims = append(claims, Claim{ID: id, Text: text, Holds: holds, Note: note})
	}

	b32 := runOn(opgraph.Phase1(cfg, 32, opgraph.FP32), dev)
	b4 := runOn(opgraph.Phase1(cfg, 4, opgraph.FP32), dev)
	mp := runOn(opgraph.Phase1(cfg, 32, opgraph.Mixed), dev)
	ph2 := runOn(opgraph.Phase2(cfg, 4, opgraph.FP32), dev)

	// Obs 1.
	obs1 := true
	lo, hi := 1.0, 0.0
	for _, r := range []*perfmodel.Result{b32, b4, mp, ph2} {
		s := r.ClassShare(opgraph.ClassTransformer)
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
		obs1 = obs1 && s > 0.60 && r.ClassShare(opgraph.ClassEmbedding) < 0.02
	}
	add("Obs1", "Transformer layers dominate (68-85%) BERT runtime; embedding negligible",
		obs1, fmt.Sprintf("modeled %.0f-%.0f%%", 100*lo, 100*hi))

	// T1.
	second := b32.ByClass()[opgraph.ClassLAMB] > b32.ByClass()[opgraph.ClassOutput]
	add("T1", "LAMB is the 2nd-highest contributor (7-10%), rising (~25%) with fewer tokens",
		second && b32.LAMBShare() >= 0.06 && b32.LAMBShare() <= 0.11 &&
			b4.LAMBShare() >= 0.18 && b4.LAMBShare() <= 0.28,
		fmt.Sprintf("B32 %.1f%%, B4 %.1f%%", 100*b32.LAMBShare(), 100*b4.LAMBShare()))

	// T2.
	add("T2", "LAMB grows more important (16-19%) with mixed precision",
		mp.LAMBShare() >= 0.14 && mp.LAMBShare() <= 0.21,
		fmt.Sprintf("MP %.1f%%", 100*mp.LAMBShare()))

	// Obs 2.
	add("Obs2", "Linear and FC layers dominate (~57% FP32)",
		b32.LinearFCShare() > 0.45,
		fmt.Sprintf("%.1f%%", 100*b32.LinearFCShare()))

	// T3.
	add("T3", "Reduced precision shrinks the dominant Linear/FC GEMM share (~57% -> ~42%)",
		mp.LinearFCShare() < b32.LinearFCShare()-0.08,
		fmt.Sprintf("%.1f%% -> %.1f%%", 100*b32.LinearFCShare(), 100*mp.LinearFCShare()))

	// T4.
	add("T4", "Attention ops are a small proportion (7% FP32, 9% MP) and grow under MP",
		b32.AttentionOpsShare() < 0.15 && mp.AttentionOpsShare() > b32.AttentionOpsShare(),
		fmt.Sprintf("%.1f%% -> %.1f%%", 100*b32.AttentionOpsShare(), 100*mp.AttentionOpsShare()))

	// T5 — manifestation: every transformer layer op is a GEMM even at B=1.
	g1 := opgraph.Build(opgraph.Phase1(cfg, 1, opgraph.FP32))
	t5 := true
	for _, op := range g1.GEMMs() {
		if op.GEMM.M <= 1 || op.GEMM.N <= 1 {
			t5 = false
		}
	}
	add("T5", "GEMM dims scale with B*n and hidden sizes; B=1 is still matrix-matrix",
		t5, "all GEMMs have M,N > 1 at B=1")

	// T6 — attention GEMMs memory-bound.
	var scoreAI, fcAI float64
	for _, op := range opgraph.Build(opgraph.Phase1(cfg, 32, opgraph.FP32)).GEMMs() {
		switch op.Name {
		case "attn_score_bgemm":
			scoreAI = op.Intensity()
		case "fc1_fwd":
			fcAI = op.Intensity()
		}
	}
	add("T6", "Skinny attention GEMMs are memory-bound and under-utilize accelerators",
		scoreAI < fcAI/5,
		fmt.Sprintf("score %.1f vs FC %.1f ops/byte", scoreAI, fcAI))

	// T7 — LAMB reads 4x model size.
	var stage1 int64
	for _, op := range opgraph.Build(opgraph.Phase1(cfg, 32, opgraph.FP32)).Ops {
		if op.Name == "lamb_stage1" {
			stage1 += op.TotalBytes()
		}
	}
	add("T7", "LAMB reads 4x the model size with few EW operations",
		stage1 == 7*int64(cfg.ParamCount())*4,
		fmt.Sprintf("stage1 traffic %.2f GB vs model %.2f GB", float64(stage1)/1e9, float64(cfg.ParamCount())*4/1e9))

	// T8 — memory-bound EW ops are a large share.
	ew := b32.CategoryShare(profile.CatScaleMaskSM) + b32.CategoryShare(profile.CatGeLU) +
		b32.CategoryShare(profile.CatDRRCLN) + b32.LAMBShare()
	add("T8", "Memory-bound element-wise ops make up a large fraction (to ~30%) of FP32 runtime",
		ew > 0.20 && ew < 0.40, fmt.Sprintf("%.1f%%", 100*ew))

	// T9 — non-GEMM share grows under reduced precision.
	add("T9", "Non-GEMM ops grow to the majority under reduced precision",
		1-mp.GEMMShare() > 0.48 && 1-mp.GEMMShare() > 1-b32.GEMMShare(),
		fmt.Sprintf("non-GEMM %.1f%% FP32 -> %.1f%% MP", 100*(1-b32.GEMMShare()), 100*(1-mp.GEMMShare())))

	// Obs 3 — B affects all layers similarly.
	b16 := runOn(opgraph.Phase1(cfg, 16, opgraph.FP32), dev)
	add("Obs3", "Mini-batch size impacts all layers roughly linearly",
		b32.Total > b16.Total && b16.Total > b4.Total, "iteration time rises monotonically with B")

	// T10 — higher n raises attention importance.
	add("T10", "Higher sequence length makes attention operations important (7% -> 17%)",
		ph2.AttentionOpsShare() > b16.AttentionOpsShare()+0.05,
		fmt.Sprintf("%.1f%% (n=128,B=16) -> %.1f%% (n=512,B=4)", 100*b16.AttentionOpsShare(), 100*ph2.AttentionOpsShare()))

	// Obs 4 / T11 — width scaling.
	wide := model.BERTLarge()
	wide.DModel, wide.DFF, wide.Heads = 2048, 8192, 32
	c3 := runOn(opgraph.Phase1(wide, 4, opgraph.FP32), dev)
	add("T11", "GEMM and LAMB proportions grow with Transformer layer size (LAMB ~34% for C3)",
		c3.LAMBShare() > b4.LAMBShare() && c3.LAMBShare() > 0.25,
		fmt.Sprintf("LAMB %.1f%% (C2,B4) -> %.1f%% (C3,B4)", 100*b4.LAMBShare(), 100*c3.LAMBShare()))

	// Obs 5 / T12 / T13 — distributed.
	profiles := dist.Fig11(opgraph.Phase1(cfg, 16, opgraph.FP32), dev)
	s1, d2, t1, t2 := profiles[0], profiles[2], profiles[3], profiles[4]
	add("Obs5", "Data-parallel per-GPU breakdown matches single-GPU (comm overlapped)",
		float64(d2.Total) < 1.06*float64(s1.Total), fmt.Sprintf("D2/S1 = %.3f", float64(d2.Total)/float64(s1.Total)))
	add("T12", "LAMB share drops under tensor slicing (params split across devices)",
		t1.Share(opgraph.ClassLAMB) < s1.Share(opgraph.ClassLAMB) && t2.Share(opgraph.ClassLAMB) < 0.05,
		fmt.Sprintf("S1 %.1f%% -> T1 %.1f%% -> T2 %.1f%%", 100*s1.Share(opgraph.ClassLAMB),
			100*t1.Share(opgraph.ClassLAMB), 100*t2.Share(opgraph.ClassLAMB)))
	add("T13", "Tensor-slicing communication grows with device count (9% -> 42%)",
		t2.CommShare() > t1.CommShare() && t2.CommShare() > 0.3,
		fmt.Sprintf("T1 %.1f%%, T2 %.1f%%", 100*t1.CommShare(), 100*t2.CommShare()))

	// NMC.
	sys := nmc.System{Host: dev, Mem: nmc.HBM2Banks()}
	st := sys.StudyLAMB(opgraph.Phase1(cfg, 32, opgraph.FP32))
	add("NMC", "Near-memory compute accelerates LAMB ~3.8x, 5-22% end-to-end",
		st.SpeedupVsOptimistic() > 3.2 && st.SpeedupVsOptimistic() < 4.4 && st.EndToEndImprovement() > 0.04,
		fmt.Sprintf("%.1fx, +%.1f%%", st.SpeedupVsOptimistic(), 100*st.EndToEndImprovement()))

	return claims
}

// Takeaways writes the evaluated Table 1 claims.
func Takeaways(w io.Writer, cfg model.Config, dev device.Device) {
	header(w, "Table 1: Summary of takeaways, evaluated against the model")
	for _, c := range EvaluateTakeaways(cfg, dev) {
		status := "HOLDS"
		if !c.Holds {
			status = "FAILS"
		}
		fmt.Fprintf(w, "  [%5s] %-5s %s\n          -> %s\n", status, c.ID, c.Text, c.Note)
	}
}
