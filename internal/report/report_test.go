package report

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"demystbert/internal/device"
	"demystbert/internal/model"
	"demystbert/internal/opgraph"
)

func opgraphPh1() opgraph.Workload {
	return opgraph.Phase1(model.BERTLarge(), 32, opgraph.FP32)
}

func render(t *testing.T, f func(*strings.Builder)) string {
	t.Helper()
	var sb strings.Builder
	f(&sb)
	out := sb.String()
	if len(out) == 0 {
		t.Fatal("empty report")
	}
	return out
}

func mustContain(t *testing.T, out string, wants ...string) {
	t.Helper()
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Errorf("report missing %q\n--- output ---\n%s", w, out)
		}
	}
}

func TestFig3Report(t *testing.T) {
	out := render(t, func(sb *strings.Builder) { Fig3(sb, model.BERTLarge(), device.MI100()) })
	mustContain(t, out, "Figure 3", "Ph1-B32-FP32", "Ph2-B4-FP16", "Transformer", "LAMB", "Output", "Embedding")
}

func TestFig4Report(t *testing.T) {
	out := render(t, func(sb *strings.Builder) { Fig4(sb, model.BERTLarge(), device.MI100()) })
	mustContain(t, out, "Figure 4", "Linear GEMMs", "Attn. B-GEMM", "Scale+Mask+DR+SM", "FC GEMMs+Grad", "GeLU", "DR+RC+LN")
}

func TestFig6Report(t *testing.T) {
	out := render(t, func(sb *strings.Builder) { Fig6(sb, model.BERTLarge(), device.MI100()) })
	// Table 2b dims at B=32, n=128: linear NN_1024x4096x1024, score
	// NT_128x128x64_b512.
	mustContain(t, out, "Figure 6", "NN_1024x4096x1024", "NT_128x128x64_b512", "NN_4096x4096x1024", "ops/byte")
}

func TestFig7Report(t *testing.T) {
	out := render(t, func(sb *strings.Builder) { Fig7(sb, model.BERTLarge(), device.MI100()) })
	mustContain(t, out, "Figure 7", "LAMBStage1", "LAMBStage2", "GeLU", "DRRCLN", "norm. BW")
}

func TestFig8Report(t *testing.T) {
	out := render(t, func(sb *strings.Builder) { Fig8(sb, model.BERTLarge(), device.MI100()) })
	mustContain(t, out, "Figure 8", "n=128 B=4", "n=128 B=32", "n=512 B=4", "GEMM share")
}

func TestFig9Report(t *testing.T) {
	out := render(t, func(sb *strings.Builder) { Fig9(sb, device.MI100()) })
	mustContain(t, out, "Figure 9", "C1", "C2 (BERT-Large)", "C3 (Megatron-like)", "LAMB=")
}

func TestCheckpointingReport(t *testing.T) {
	out := render(t, func(sb *strings.Builder) { Checkpointing(sb, model.BERTLarge(), device.MI100()) })
	mustContain(t, out, "checkpointing", "kernel count:", "runtime:", "LAMB share:")
}

func TestFig11Report(t *testing.T) {
	out := render(t, func(sb *strings.Builder) { Fig11(sb, model.BERTLarge(), device.MI100()) })
	mustContain(t, out, "Figure 11", "S1", "D1", "D2", "T1", "T2", "Comm (exposed)", "overlapped")
}

func TestFig12Reports(t *testing.T) {
	out := render(t, func(sb *strings.Builder) { Fig12a(sb, model.BERTLarge(), device.MI100()) })
	mustContain(t, out, "Figure 12a", "LayerNorm", "Adam", "kernels:", "traffic:")
	out = render(t, func(sb *strings.Builder) { Fig12b(sb, model.BERTLarge(), device.MI100()) })
	mustContain(t, out, "Figure 12b", "3S serial", "3F fused", "speedup")
}

func TestNMCReport(t *testing.T) {
	out := render(t, func(sb *strings.Builder) { NMC(sb, model.BERTLarge(), device.MI100()) })
	mustContain(t, out, "Near-memory compute", "banks", "speedup-vs-opt", "end-to-end")
}

func TestTable2bReport(t *testing.T) {
	out := render(t, func(sb *strings.Builder) { Table2b(sb, model.BERTLarge()) })
	mustContain(t, out, "Table 2b", "Linear", "Attn. Score", "Attn. O/p", "FC-1", "FC-2",
		"NN_1024x4096x1024", "NT_1024x1024x4096")
}

func TestTakeawaysAllHold(t *testing.T) {
	claims := EvaluateTakeaways(model.BERTLarge(), device.MI100())
	if len(claims) < 17 {
		t.Fatalf("only %d claims evaluated; expected all observations + takeaways", len(claims))
	}
	for _, c := range claims {
		if !c.Holds {
			t.Errorf("claim %s does not hold: %s (%s)", c.ID, c.Text, c.Note)
		}
	}
	out := render(t, func(sb *strings.Builder) { Takeaways(sb, model.BERTLarge(), device.MI100()) })
	mustContain(t, out, "Table 1", "HOLDS", "Obs1", "T13", "NMC")
	if strings.Contains(out, "FAILS") {
		t.Error("takeaways report contains FAILS entries")
	}
}

func TestBarRendering(t *testing.T) {
	if got := bar(0.5, 10); got != "#####....." {
		t.Fatalf("bar(0.5, 10) = %q", got)
	}
	if got := bar(-1, 4); got != "...." {
		t.Fatalf("bar(-1) = %q", got)
	}
	if got := bar(2, 4); got != "####" {
		t.Fatalf("bar(2) = %q", got)
	}
}

func TestExportStructure(t *testing.T) {
	r := runOn(opgraphPh1(), device.MI100())
	e := Export(r)
	if e.Workload != "Ph1-B32-FP32" || e.TotalMS <= 0 {
		t.Fatalf("export header wrong: %+v", e)
	}
	var shareSum float64
	seen := map[string]bool{}
	for _, row := range e.Categories {
		if seen[row.Category] {
			t.Fatalf("duplicate category %s", row.Category)
		}
		seen[row.Category] = true
		shareSum += row.Share
		if row.Kernels <= 0 || row.TimeMS < 0 {
			t.Fatalf("malformed row %+v", row)
		}
	}
	if shareSum < 0.999 || shareSum > 1.001 {
		t.Fatalf("category shares sum to %v", shareSum)
	}
}

func TestWriteJSONAndCSV(t *testing.T) {
	r := runOn(opgraphPh1(), device.MI100())
	var jb strings.Builder
	if err := WriteJSON(&jb, r); err != nil {
		t.Fatal(err)
	}
	var decoded ResultExport
	if err := json.Unmarshal([]byte(jb.String()), &decoded); err != nil {
		t.Fatalf("JSON export invalid: %v", err)
	}
	if decoded.Workload != "Ph1-B32-FP32" {
		t.Fatalf("decoded workload %q", decoded.Workload)
	}

	var cb strings.Builder
	if err := WriteCSV(&cb, r); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(cb.String())).ReadAll()
	if err != nil {
		t.Fatalf("CSV export invalid: %v", err)
	}
	if len(rows) != len(decoded.Categories)+1 {
		t.Fatalf("CSV has %d rows, want %d", len(rows), len(decoded.Categories)+1)
	}
	if rows[0][2] != "category" {
		t.Fatalf("CSV header %v", rows[0])
	}
}
