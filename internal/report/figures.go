package report

import (
	"fmt"
	"io"
	"time"

	"demystbert/internal/device"
	"demystbert/internal/dist"
	"demystbert/internal/fusion"
	"demystbert/internal/model"
	"demystbert/internal/nmc"
	"demystbert/internal/opgraph"
	"demystbert/internal/profile"
)

// Fig3 renders the runtime breakdown of BERT pre-training across the
// paper's five configurations.
func Fig3(w io.Writer, cfg model.Config, dev device.Device) {
	header(w, "Figure 3: Runtime breakdown of BERT pre-training")
	for _, wl := range []opgraph.Workload{
		opgraph.Phase1(cfg, 32, opgraph.FP32),
		opgraph.Phase1(cfg, 4, opgraph.FP32),
		opgraph.Phase2(cfg, 4, opgraph.FP32),
		opgraph.Phase1(cfg, 32, opgraph.Mixed),
		opgraph.Phase2(cfg, 4, opgraph.Mixed),
	} {
		classBreakdown(w, wl.Name, runOn(wl, dev))
		fmt.Fprintln(w)
	}
}

// Fig4 renders the hierarchical breakdown: overall → Transformer →
// Attention → FC, for single and mixed precision.
func Fig4(w io.Writer, cfg model.Config, dev device.Device) {
	header(w, "Figure 4: Hierarchical breakdown of BERT pre-training runtime")
	for _, p := range []opgraph.Precision{opgraph.FP32, opgraph.Mixed} {
		wl := opgraph.Phase1(cfg, 32, p)
		r := runOn(wl, dev)
		fmt.Fprintf(w, "%s:\n", wl.Name)

		fmt.Fprintln(w, " Overall:")
		classBreakdown(w, "  by layer class", r)

		cat := r.ByCategory()
		total := float64(r.Total)
		share := func(cs ...profile.Category) float64 {
			var t time.Duration
			for _, c := range cs {
				t += cat[c]
			}
			return float64(t) / total
		}
		fmt.Fprintln(w, " Transformer:")
		breakdownRow(w, "Attention (all ops)", share(profile.CatLinear, profile.CatAttnBGEMM, profile.CatScaleMaskSM))
		breakdownRow(w, "FC (GEMMs + GeLU)", share(profile.CatFCGEMM, profile.CatGeLU))
		breakdownRow(w, "DR+RC+LN", share(profile.CatDRRCLN))
		fmt.Fprintln(w, " Attention:")
		breakdownRow(w, "Linear GEMMs", share(profile.CatLinear))
		breakdownRow(w, "Attn. B-GEMM", share(profile.CatAttnBGEMM))
		breakdownRow(w, "Scale+Mask+DR+SM", share(profile.CatScaleMaskSM))
		fmt.Fprintln(w, " FC:")
		breakdownRow(w, "FC GEMMs+Grad", share(profile.CatFCGEMM))
		breakdownRow(w, "GeLU", share(profile.CatGeLU))
		fmt.Fprintln(w)
	}
}

// Fig6 renders the arithmetic intensity of every training GEMM of a
// Transformer layer, labeled transA/transB_MxNxK[_batch] as in the paper.
func Fig6(w io.Writer, cfg model.Config, dev device.Device) {
	header(w, "Figure 6: Arithmetic intensity of BERT's training GEMMs (Ph1-B32-FP32)")
	wl := opgraph.Phase1(cfg, 32, opgraph.FP32)
	g := opgraph.Build(wl)
	fmt.Fprintf(w, "  %-34s %-22s %10s %12s\n", "kernel", "shape", "ops/byte", "GFLOP")
	seen := map[string]bool{}
	for _, op := range g.GEMMs() {
		if op.Class != opgraph.ClassTransformer || seen[op.Name] {
			continue
		}
		seen[op.Name] = true
		fmt.Fprintf(w, "  %-34s %-22s %10.1f %12.2f\n",
			op.Name, op.GEMM.Label(), op.Intensity(), float64(op.FLOPs)/1e9)
	}
	fmt.Fprintln(w, "  (FC GEMMs are compute-intense; linear GEMMs 4x smaller;")
	fmt.Fprintln(w, "   attention batched GEMMs have very low ops/byte -> memory-bound)")
}

// Fig7 renders each operator class's arithmetic intensity and its modeled
// bandwidth demand normalized to the highest-bandwidth class.
func Fig7(w io.Writer, cfg model.Config, dev device.Device) {
	header(w, "Figure 7: BERT ops' arithmetic intensity & bandwidth requirements (Ph1-B32-FP32)")
	r := runOn(opgraph.Phase1(cfg, 32, opgraph.FP32), dev)
	intensity := r.CategoryIntensity()
	bw := r.CategoryBW()
	var maxBW float64
	for _, v := range bw {
		if v > maxBW {
			maxBW = v
		}
	}
	fmt.Fprintf(w, "  %-16s %10s %14s %10s\n", "class", "ops/byte", "BW (GB/s)", "norm. BW")
	for _, c := range sortedCategories(bw) {
		fmt.Fprintf(w, "  %-16s %10.2f %14.0f %9.0f%%\n",
			c, intensity[c], bw[c]/1e9, 100*bw[c]/maxBW)
	}
}

// Fig8 renders the input-size sweep: mini-batch 4→32 at n=128, and n=512.
func Fig8(w io.Writer, cfg model.Config, dev device.Device) {
	header(w, "Figure 8: Impact of scaling input size (FP32)")
	for _, b := range []int{4, 8, 16, 32} {
		categoryBreakdown(w, fmt.Sprintf("n=128 B=%d", b), runOn(opgraph.Phase1(cfg, b, opgraph.FP32), dev))
		fmt.Fprintln(w)
	}
	for _, b := range []int{4, 16} {
		categoryBreakdown(w, fmt.Sprintf("n=512 B=%d", b), runOn(opgraph.Phase2(cfg, b, opgraph.FP32), dev))
		fmt.Fprintln(w)
	}
}

// Fig9Config describes one bar of the layer-size sweep.
type Fig9Config struct {
	Name   string
	DModel int
}

// Fig9Configs returns the paper's C1/C2/C3 (C2 = BERT-Large, C3 =
// Megatron-like 2× width).
func Fig9Configs() []Fig9Config {
	return []Fig9Config{{"C1", 512}, {"C2 (BERT-Large)", 1024}, {"C3 (Megatron-like)", 2048}}
}

// Fig9 renders the Transformer-layer-size sweep.
func Fig9(w io.Writer, dev device.Device) {
	header(w, "Figure 9: Impact of scaling Transformer layer size (Ph1-B4-FP32)")
	for _, c := range Fig9Configs() {
		cfg := model.BERTLarge()
		cfg.DModel = c.DModel
		cfg.DFF = 4 * c.DModel
		cfg.Heads = c.DModel / 64
		r := runOn(opgraph.Phase1(cfg, 4, opgraph.FP32), dev)
		fmt.Fprintf(w, "%s: d_model=%d  LAMB=%.1f%%  Linear+FC GEMMs=%.1f%%\n",
			c.Name, c.DModel, 100*r.LAMBShare(), 100*r.LinearFCShare())
		categoryBreakdown(w, "  breakdown", r)
		fmt.Fprintln(w)
	}
}

// Checkpointing renders the Section 4 study.
func Checkpointing(w io.Writer, cfg model.Config, dev device.Device) {
	header(w, "Section 4: Effects of activation checkpointing (Ph1-B32-FP32)")
	base := runOn(opgraph.Phase1(cfg, 32, opgraph.FP32), dev)
	wl := opgraph.Phase1(cfg, 32, opgraph.FP32)
	wl.CheckpointEvery = 6
	ck := runOn(wl, dev)
	fmt.Fprintf(w, "  baseline:      %6d kernels, %v\n", base.KernelCount(), base.Total.Round(time.Millisecond))
	fmt.Fprintf(w, "  checkpointed:  %6d kernels, %v  (every %d layers)\n",
		ck.KernelCount(), ck.Total.Round(time.Millisecond), wl.CheckpointEvery)
	fmt.Fprintf(w, "  kernel count:  +%.1f%%   runtime: +%.1f%%   (paper: ~+33%%, ~+27%%)\n",
		100*(float64(ck.KernelCount())/float64(base.KernelCount())-1),
		100*(float64(ck.Total)/float64(base.Total)-1))
	fmt.Fprintf(w, "  LAMB share:    %.1f%% -> %.1f%% (unaffected work, lower share)\n",
		100*base.LAMBShare(), 100*ck.LAMBShare())

	// The capacity side — what the recomputation buys (Section 4's
	// motivation).
	plain := opgraph.Phase1(cfg, 32, opgraph.FP32)
	fPlain := opgraph.Footprint(plain)
	fCk := opgraph.Footprint(wl)
	const capacity = 32e9 // MI100's HBM2
	fmt.Fprintf(w, "  memory: %.1f GB -> %.1f GB (activations %.1f -> %.1f GB)\n",
		float64(fPlain.Total())/1e9, float64(fCk.Total())/1e9,
		float64(fPlain.Activations)/1e9, float64(fCk.Activations)/1e9)
	fmt.Fprintf(w, "  max B on a 32 GB device: %d -> %d\n",
		opgraph.MaxBatchSize(plain, capacity), opgraph.MaxBatchSize(wl, capacity))
}

// Fig11 renders the multi-device iteration breakdowns.
func Fig11(w io.Writer, cfg model.Config, dev device.Device) {
	header(w, "Figure 11: BERT iteration breakdown in a multi-GPU setup (FP32, n=128)")
	for _, p := range dist.Fig11(opgraph.Phase1(cfg, 16, opgraph.FP32), dev) {
		fmt.Fprintf(w, "%s: total %v\n", p.Name, p.Total.Round(time.Millisecond))
		for _, c := range []opgraph.LayerClass{
			opgraph.ClassTransformer, opgraph.ClassOutput,
			opgraph.ClassEmbedding, opgraph.ClassLAMB,
		} {
			breakdownRow(w, c.String(), p.Share(c))
		}
		breakdownRow(w, "Comm (exposed)", p.CommShare())
		if p.HiddenComm > 0 {
			fmt.Fprintf(w, "  %-28s %v (overlapped with backprop)\n", "Comm (hidden)", p.HiddenComm.Round(time.Millisecond))
		}
		fmt.Fprintln(w)
	}
}

// Fig12a renders the kernel-fusion study.
func Fig12a(w io.Writer, cfg model.Config, dev device.Device) {
	header(w, "Figure 12a: Impact of kernel fusion (kernel count / runtime / memory traffic)")
	wl := opgraph.Phase1(cfg, 32, opgraph.FP32)
	for _, s := range []fusion.Study{
		fusion.TransformerLayerNormStudy(wl, dev),
		fusion.ModelAdamStudy(wl, 320, dev),
	} {
		fmt.Fprintf(w, "  %-10s kernels: %5d -> %3d (%6.1fx)   traffic: %7.2f GB -> %6.2f GB (%4.1fx)   runtime: %8v -> %8v (%4.1fx)\n",
			s.Name,
			s.UnfusedKernels, s.FusedKernels, s.KernelRatio(),
			float64(s.UnfusedBytes)/1e9, float64(s.FusedBytes)/1e9, s.TrafficRatio(),
			s.UnfusedTime.Round(time.Microsecond), s.FusedTime.Round(time.Microsecond), s.Speedup())
	}
	fmt.Fprintln(w, "  (LayerNorm: runtime tracks kernel count -> high cross-kernel reuse;")
	fmt.Fprintln(w, "   Adam: kernel count collapses ~orders of magnitude but traffic only ~6-8x)")
}

// Fig12b renders the GEMM-fusion (3F vs 3S) study across input sizes.
func Fig12b(w io.Writer, cfg model.Config, dev device.Device) {
	header(w, "Figure 12b: Fusing the 3 attention linear GEMMs (3F vs 3S)")
	fmt.Fprintf(w, "  %-24s %12s %12s %9s\n", "tokens x d_model", "3S serial", "3F fused", "speedup")
	for _, tokens := range []int{512, 1024, 2048, 4096, 8192} {
		s := fusion.QKV(tokens, cfg.DModel, opgraph.FP32, dev)
		fmt.Fprintf(w, "  %6d x %-14d %12v %12v %8.0f%%\n",
			tokens, cfg.DModel,
			s.UnfusedTime.Round(time.Microsecond), s.FusedTime.Round(time.Microsecond),
			100*(s.Speedup()-1))
	}
	fmt.Fprintln(w, "  (impact is higher for smaller inputs, as in the paper)")
}

// NMC renders the near-memory-compute study.
func NMC(w io.Writer, cfg model.Config, dev device.Device) {
	header(w, "Section 6.2.1: Near-memory compute for LAMB")
	sys := nmc.System{Host: dev, Mem: nmc.HBM2Banks()}
	fmt.Fprintf(w, "  DRAM: %d banks, aggregate bank BW %.2f TB/s (external %.2f TB/s)\n",
		sys.Mem.Banks(), sys.Mem.AggregateBandwidth()/1e12, dev.MemBW/1e12)
	for _, wl := range []opgraph.Workload{
		opgraph.Phase1(cfg, 32, opgraph.FP32),
		opgraph.Phase1(cfg, 4, opgraph.FP32),
		opgraph.Phase2(cfg, 4, opgraph.FP32),
		opgraph.Phase1(cfg, 32, opgraph.Mixed),
		opgraph.Phase2(cfg, 4, opgraph.Mixed),
	} {
		st := sys.StudyLAMB(wl)
		fmt.Fprintf(w, "  %-14s LAMB %7.2f GB: GPU(model) %8v  GPU(optimistic) %8v  NMC %8v  speedup-vs-opt %.1fx  end-to-end +%.1f%%\n",
			wl.Name, float64(st.LAMBBytes)/1e9,
			st.GPUModeled.Round(time.Microsecond),
			st.GPUOptimistic.Round(time.Microsecond),
			st.NMC.Round(time.Microsecond),
			st.SpeedupVsOptimistic(), 100*st.EndToEndImprovement())
	}
	fmt.Fprintln(w, "  (paper: ~3.8x LAMB speedup, 5-22% end-to-end)")
}

// Modes renders the Section 7 discussion quantitatively: pre-training vs
// fine-tuning vs inference iteration breakdowns, and the stability of the
// breakdown across accelerators with different compute/bandwidth ratios.
func Modes(w io.Writer, cfg model.Config, dev device.Device) {
	header(w, "Section 7: Fine-tuning, inference, and other accelerators")
	for _, mode := range []opgraph.RunMode{opgraph.Pretraining, opgraph.FineTuning, opgraph.Inference} {
		wl := opgraph.Phase1(cfg, 32, opgraph.FP32)
		wl.Mode = mode
		if mode == opgraph.Inference {
			wl.Optimizer = opgraph.OptNone
		}
		r := runOn(wl, dev)
		fmt.Fprintf(w, "%s (B=32, n=128, FP32): %v\n", mode, r.Total.Round(time.Millisecond))
		for _, c := range []opgraph.LayerClass{
			opgraph.ClassTransformer, opgraph.ClassOutput,
			opgraph.ClassEmbedding, opgraph.ClassLAMB,
		} {
			if s := r.ClassShare(c); s > 0.001 {
				breakdownRow(w, c.String(), s)
			}
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "breakdown stability across accelerators (Ph1-B32-FP32):")
	fmt.Fprintf(w, "  %-32s %12s %8s %8s %8s\n", "device", "iteration", "GEMM%", "LAMB%", "Attn%")
	for _, d := range device.Presets() {
		r := runOn(opgraph.Phase1(cfg, 32, opgraph.FP32), d)
		fmt.Fprintf(w, "  %-32s %12v %7.1f%% %7.1f%% %7.1f%%\n",
			d.Name, r.Total.Round(time.Millisecond),
			100*r.GEMMShare(), 100*r.LAMBShare(), 100*r.AttentionOpsShare())
	}
	fmt.Fprintln(w, "  (compute improves faster than memory -> memory-bound shares grow, as Section 7 predicts)")
}

// Table2b renders the architecture-agnostic GEMM size table.
func Table2b(w io.Writer, cfg model.Config) {
	header(w, "Table 2b: Architecture-agnostic sizes of BERT GEMMs (symbols: d=d_model, ff=d_ff, h=heads)")
	wl := opgraph.Phase1(cfg, 32, opgraph.FP32)
	g := opgraph.Build(wl)
	fmt.Fprintf(w, "  B=%d n=%d d_model=%d d_ff=%d h=%d\n\n", wl.B, wl.SeqLen, cfg.DModel, cfg.DFF, cfg.Heads)
	rows := []struct{ label, fwd, bact, bwgt string }{
		{"Linear", "linear_qkv_fwd", "linear_qkv_bwd_dgrad", "linear_qkv_bwd_wgrad"},
		{"Attn. Score", "attn_score_bgemm", "attn_score_bgemm_bwd_dgrad", "attn_score_bgemm_bwd_wgrad"},
		{"Attn. O/p", "attn_output_bgemm", "attn_output_bgemm_bwd_dgrad", "attn_output_bgemm_bwd_wgrad"},
		{"FC-1", "fc1_fwd", "fc1_bwd_dgrad", "fc1_bwd_wgrad"},
		{"FC-2", "fc2_fwd", "fc2_bwd_dgrad", "fc2_bwd_wgrad"},
	}
	find := func(name string) string {
		for _, op := range g.Ops {
			if op.Name == name && op.GEMM != nil {
				return op.GEMM.Label()
			}
		}
		return "?"
	}
	fmt.Fprintf(w, "  %-12s %-22s %-24s %-24s\n", "operation", "FWD", "BWD grad-activation", "BWD grad-weight")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12s %-22s %-24s %-24s\n", r.label, find(r.fwd), find(r.bact), find(r.bwgt))
	}
}
