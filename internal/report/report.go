// Package report renders every table and figure of the paper's evaluation
// as text: runtime-breakdown bars (Fig. 3, 4, 8, 9, 11), GEMM arithmetic
// intensities (Fig. 6, Table 2b), operator bandwidth characteristics
// (Fig. 7), the checkpointing study (Section 4), the fusion studies
// (Fig. 12), the NMC study (Section 6.2.1), and a programmatic check of
// the paper's takeaways (Table 1).
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"demystbert/internal/device"
	"demystbert/internal/opgraph"
	"demystbert/internal/perfmodel"
	"demystbert/internal/profile"
)

// bar renders a proportional ASCII bar for a share in [0, 1].
func bar(share float64, width int) string {
	n := int(share*float64(width) + 0.5)
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}

// breakdownRow prints one labeled share with a bar.
func breakdownRow(w io.Writer, label string, share float64) {
	fmt.Fprintf(w, "  %-28s %6.1f%% |%s|\n", label, 100*share, bar(share, 40))
}

// classBreakdown prints a Fig. 3-style layer-class decomposition.
func classBreakdown(w io.Writer, name string, r *perfmodel.Result) {
	fmt.Fprintf(w, "%s (modeled iteration: %v)\n", name, r.Total.Round(time.Millisecond))
	for _, c := range []opgraph.LayerClass{
		opgraph.ClassTransformer, opgraph.ClassOutput,
		opgraph.ClassEmbedding, opgraph.ClassLAMB,
	} {
		breakdownRow(w, c.String(), r.ClassShare(c))
	}
}

// categoryOrder is the display order for operator categories.
var categoryOrder = []profile.Category{
	profile.CatLinear, profile.CatAttnBGEMM, profile.CatScaleMaskSM,
	profile.CatFCGEMM, profile.CatGeLU, profile.CatDRRCLN,
	profile.CatOther, profile.CatEmbedding, profile.CatOutput,
	profile.CatLAMBStage1, profile.CatLAMBStage2,
}

// categoryBreakdown prints a Fig. 4/8/9-style operator decomposition.
func categoryBreakdown(w io.Writer, name string, r *perfmodel.Result) {
	fmt.Fprintf(w, "%s (modeled iteration: %v, GEMM share %.1f%%, %.0fk tokens/s)\n",
		name, r.Total.Round(time.Millisecond), 100*r.GEMMShare(), r.TokensPerSecond()/1e3)
	for _, c := range categoryOrder {
		if s := r.CategoryShare(c); s > 0.001 {
			breakdownRow(w, string(c), s)
		}
	}
}

// sortedCategories returns the categories of a map sorted by name for
// deterministic output.
func sortedCategories[V any](m map[profile.Category]V) []profile.Category {
	out := make([]profile.Category, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// runOn is a small helper wrapping build+run.
func runOn(w opgraph.Workload, dev device.Device) *perfmodel.Result {
	return perfmodel.Run(opgraph.Build(w), dev)
}
