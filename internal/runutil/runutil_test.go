package runutil

import (
	"bytes"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestDrainRunsLIFOOnce: cleanups run newest-first, exactly once even
// when Drain is called from both exit paths.
func TestDrainRunsLIFOOnce(t *testing.T) {
	s := Install(&bytes.Buffer{})
	defer s.Drain()
	var order []string
	s.Defer("a", func() { order = append(order, "a") })
	s.Defer("b", func() { order = append(order, "b") })
	s.Defer("c", func() { order = append(order, "c") })
	s.Drain()
	s.Drain()
	if got := strings.Join(order, ""); got != "cba" {
		t.Fatalf("drain order %q, want cba (LIFO, once)", got)
	}
}

// TestDeferAfterDrainRunsImmediately: a resource created after the drain
// already happened is released, not leaked.
func TestDeferAfterDrainRunsImmediately(t *testing.T) {
	s := Install(&bytes.Buffer{})
	s.Drain()
	ran := false
	s.Defer("late", func() { ran = true })
	if !ran {
		t.Fatal("cleanup registered after Drain must run immediately")
	}
}

// TestSignalDrainsAndExits delivers a real SIGTERM to the test process
// and asserts the watcher drains every cleanup and exits 143 — the
// regression test for Ctrl-C truncating the metrics JSONL and Chrome
// trace mid-write.
func TestSignalDrainsAndExits(t *testing.T) {
	var errOut bytes.Buffer
	s := Install(&errOut)

	var mu sync.Mutex
	var order []string
	exited := make(chan int, 1)
	s.exit = func(code int) { exited <- code }

	s.Defer("flush-jsonl", func() { mu.Lock(); order = append(order, "jsonl"); mu.Unlock() })
	s.Defer("close-trace", func() { mu.Lock(); order = append(order, "trace"); mu.Unlock() })

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("self-signal: %v", err)
	}
	select {
	case code := <-exited:
		if code != 143 { // 128 + SIGTERM(15)
			t.Errorf("exit code %d, want 143", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("signal watcher never exited")
	}
	mu.Lock()
	got := strings.Join(order, ",")
	mu.Unlock()
	if got != "trace,jsonl" {
		t.Errorf("signal drain order %q, want trace,jsonl", got)
	}
	if !strings.Contains(errOut.String(), "draining") {
		t.Errorf("no drain diagnostic on stderr: %q", errOut.String())
	}
}
