// Package runutil provides the shared process-lifecycle plumbing of the
// cmd binaries: signal-driven graceful shutdown. The binaries hold
// partially-written telemetry sinks while they run — a metrics JSONL
// stream, a Chrome trace, a debug HTTP listener, a serving scheduler —
// and a bare Ctrl-C used to kill the process with those sinks truncated
// mid-write. A Shutdown gathers named cleanups and runs them exactly
// once, LIFO, on SIGINT/SIGTERM or on normal return, so both exits leave
// the same flushed, closed, parseable artifacts behind.
package runutil

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// cleanup is one named teardown step.
type cleanup struct {
	name string
	fn   func()
}

// Shutdown coordinates graceful teardown. Register cleanups with Defer
// as resources are created; arrange Drain to run on the normal exit path
// (a plain `defer sd.Drain()` at the top of run). When SIGINT or SIGTERM
// arrives, the watcher goroutine runs the same Drain and exits with the
// conventional 128+signal status, so artifact-flushing behavior is
// identical on both paths.
type Shutdown struct {
	mu    sync.Mutex
	fns   []cleanup
	ran   bool
	sigCh chan os.Signal
	errW  io.Writer

	// exit is os.Exit, overridable by tests so a delivered signal does
	// not kill the test binary.
	exit func(code int)
}

// Install registers for SIGINT/SIGTERM and returns the coordinator.
// Diagnostics (which signal arrived, which cleanup is draining) go to
// errW.
func Install(errW io.Writer) *Shutdown {
	s := &Shutdown{
		sigCh: make(chan os.Signal, 1),
		errW:  errW,
		exit:  os.Exit,
	}
	signal.Notify(s.sigCh, syscall.SIGINT, syscall.SIGTERM)
	go s.watch()
	return s
}

// watch waits for a signal, drains, and exits 128+signal. A second
// signal during the drain falls through to Go's default disposition
// because Stop has already deregistered the handler — the escape hatch
// when a cleanup itself wedges.
func (s *Shutdown) watch() {
	sig, ok := <-s.sigCh
	if !ok {
		return
	}
	fmt.Fprintf(s.errW, "\nreceived %v: draining (second signal kills immediately)\n", sig)
	signal.Stop(s.sigCh)
	s.Drain()
	code := 128 + int(syscall.SIGTERM)
	if sig == syscall.SIGINT {
		code = 128 + int(syscall.SIGINT)
	}
	s.exit(code)
}

// Defer registers a named cleanup. Cleanups run LIFO, mirroring the
// defer statements they replace; registering after Drain has run
// executes fn immediately (the resource was created during a drain —
// release it rather than leak it).
func (s *Shutdown) Defer(name string, fn func()) {
	s.mu.Lock()
	if s.ran {
		s.mu.Unlock()
		fn()
		return
	}
	s.fns = append(s.fns, cleanup{name, fn})
	s.mu.Unlock()
}

// Drain runs every registered cleanup exactly once, newest first. Safe
// to call from both the normal exit path and the signal watcher; the
// loser of the race returns after the winner finished (so the watcher
// never exits the process while cleanups are still running).
func (s *Shutdown) Drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ran {
		return
	}
	s.ran = true
	for i := len(s.fns) - 1; i >= 0; i-- {
		s.fns[i].fn()
	}
	s.fns = nil
	signal.Stop(s.sigCh)
}
