package device

import (
	"testing"
	"testing/quick"
	"time"

	"demystbert/internal/opgraph"
)

func TestMI100Spec(t *testing.T) {
	d := MI100()
	if d.GEMMPeakFP16 <= d.GEMMPeakFP32 {
		t.Fatal("FP16 matrix peak must exceed FP32")
	}
	if d.MemBW != 1.23e12 {
		t.Fatalf("HBM2 bandwidth = %v", d.MemBW)
	}
	if d.GEMMMaxEff <= 0 || d.GEMMMaxEff > 1 || d.MemMaxEff <= 0 || d.MemMaxEff > 1 {
		t.Fatal("efficiencies must be fractions")
	}
}

func TestGEMMRateSaturates(t *testing.T) {
	d := MI100()
	small := d.GEMMRate(opgraph.FP32, 1e6)
	big := d.GEMMRate(opgraph.FP32, 1e12)
	if small >= big {
		t.Fatal("small GEMMs must achieve lower rates (Takeaway 6)")
	}
	max := d.GEMMPeakFP32 * d.GEMMMaxEff
	if big > max {
		t.Fatalf("rate %v exceeds efficiency ceiling %v", big, max)
	}
	if big < 0.99*max {
		t.Fatalf("huge GEMM rate %v should approach ceiling %v", big, max)
	}
}

func TestGEMMRateMonotoneProperty(t *testing.T) {
	d := MI100()
	f := func(a, b uint32) bool {
		x, y := float64(a), float64(b)
		if x > y {
			x, y = y, x
		}
		for _, p := range []opgraph.Precision{opgraph.FP32, opgraph.Mixed} {
			if d.GEMMRate(p, x) > d.GEMMRate(p, y)+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemRateSaturates(t *testing.T) {
	d := MI100()
	if d.MemRate(1e3) >= d.MemRate(1e9) {
		t.Fatal("small kernels must achieve lower bandwidth")
	}
	if d.MemRate(1e12) > d.MemBW*d.MemMaxEff {
		t.Fatal("bandwidth exceeds ceiling")
	}
}

func TestZeroWorkRates(t *testing.T) {
	d := MI100()
	if d.GEMMRate(opgraph.FP32, 0) <= 0 || d.MemRate(0) <= 0 {
		t.Fatal("zero-work rates must stay positive (no division by zero downstream)")
	}
}

func TestOpTimeRoofline(t *testing.T) {
	d := MI100()
	// A compute-heavy GEMM: time tracks FLOPs.
	gemm := opgraph.Op{
		GEMM:  &opgraph.GEMMShape{M: 4096, N: 4096, K: 4096, Batch: 1},
		FLOPs: 2 * 4096 * 4096 * 4096,
		Bytes: 3 * 4096 * 4096 * 4,
	}
	tc := d.OpTime(gemm, opgraph.FP32)
	wantCompute := float64(gemm.FLOPs) / d.GEMMRate(opgraph.FP32, float64(gemm.FLOPs))
	if got := tc - d.Launch; got < time.Duration(wantCompute*0.99e9) {
		t.Fatalf("compute-bound op time %v below compute floor", got)
	}

	// A memory-heavy EW op: time tracks bytes.
	ew := opgraph.Op{FLOPs: 1 << 20, Bytes: 1 << 30}
	te := d.OpTime(ew, opgraph.FP32)
	wantMem := float64(ew.Bytes) / d.MemRate(float64(ew.Bytes))
	if got := te - d.Launch; got < time.Duration(wantMem*0.99e9) {
		t.Fatalf("memory-bound op time %v below memory floor", got)
	}
}

func TestOpTimeIncludesLaunchOverhead(t *testing.T) {
	d := MI100()
	tiny := opgraph.Op{FLOPs: 1, Bytes: 4}
	if got := d.OpTime(tiny, opgraph.FP32); got < d.Launch {
		t.Fatalf("tiny op time %v below launch overhead %v", got, d.Launch)
	}
}

func TestMixedPrecisionGEMMFaster(t *testing.T) {
	d := MI100()
	op := opgraph.Op{
		GEMM:  &opgraph.GEMMShape{M: 4096, N: 4096, K: 1024, Batch: 1},
		FLOPs: 2 * 4096 * 4096 * 1024,
		Bytes: 3 * 4096 * 4096 * 2,
	}
	if d.OpTime(op, opgraph.Mixed) >= d.OpTime(op, opgraph.FP32) {
		t.Fatal("large FP16 GEMM must be faster than FP32")
	}
}

func TestOptimizerMemEffSlowsLAMB(t *testing.T) {
	d := MI100()
	op := opgraph.Op{FLOPs: 1 << 20, Bytes: 1 << 28}
	lamb := op
	lamb.Class = opgraph.ClassLAMB
	if d.OpTime(lamb, opgraph.FP32) <= d.OpTime(op, opgraph.FP32) {
		t.Fatal("LAMB kernels must see reduced achieved bandwidth (Fig. 7)")
	}
}

func TestScale(t *testing.T) {
	d := MI100()
	s := d.Scale(2, 3, 4)
	if s.GEMMPeakFP32 != 2*d.GEMMPeakFP32 || s.VectorPeak != 2*d.VectorPeak {
		t.Fatal("compute scaling wrong")
	}
	if s.MemBW != 3*d.MemBW {
		t.Fatal("bandwidth scaling wrong")
	}
	if s.Interconnect != 4*d.Interconnect {
		t.Fatal("link scaling wrong")
	}
	if s.Name == d.Name {
		t.Fatal("scaled device must be distinguishable")
	}
}
