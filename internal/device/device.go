// Package device models an accelerator as a calibrated roofline: peak
// matrix-pipeline and vector FLOP rates per precision, memory bandwidth,
// per-kernel launch overhead, and size-dependent efficiency curves. An
// operator's modeled time is max(compute time, memory time) plus launch
// overhead — the same first-order reasoning the paper applies when it
// classifies operators as compute- or memory-bound by arithmetic
// intensity (Section 2.6) and when it builds its own analytical model for
// multi-device training (Section 5.1).
//
// Efficiency curves capture the two effects the paper repeatedly
// observes: small kernels cannot fill a highly parallel accelerator
// (Takeaway 6: skinny attention GEMMs under-utilize), and small or
// many-stream element-wise kernels achieve a fraction of peak DRAM
// bandwidth (Fig. 7's achieved-bandwidth spread).
package device

import (
	"time"

	"demystbert/internal/obs"
	"demystbert/internal/opgraph"
)

// Device is a roofline accelerator model. All rates are per second.
type Device struct {
	Name string

	// Peak GEMM throughput (matrix pipelines) per precision, FLOP/s.
	GEMMPeakFP32 float64
	GEMMPeakFP16 float64
	// Peak element-wise/vector throughput, FLOP/s (non-GEMM kernels).
	VectorPeak float64

	// MemBW is peak DRAM bandwidth in bytes/s.
	MemBW float64

	// Launch is the fixed host-side cost of one kernel launch.
	Launch time.Duration

	// GEMMMaxEff is the fraction of GEMM peak reached by very large
	// GEMMs; GEMMHalfWork{32,16} is the per-kernel FLOP count at which a
	// GEMM reaches half of GEMMMaxEff (smaller kernels cannot fill the
	// machine; FP16 matrix pipes need more parallelism to saturate).
	GEMMMaxEff     float64
	GEMMHalfWork32 float64
	GEMMHalfWork16 float64

	// MemMaxEff is the fraction of peak bandwidth achieved by large
	// streaming kernels; MemHalfBytes is the kernel footprint at which
	// half of that is reached.
	MemMaxEff    float64
	MemHalfBytes float64

	// OptimizerMemEff further scales the bandwidth achieved by optimizer
	// (LAMB) kernels: their seven concurrent read/write streams over
	// weights, gradients, and state reach a lower fraction of peak than a
	// simple copy — visible in Fig. 7, where LAMBStage1/2 sit well below
	// the element-wise-multiply bandwidth ceiling.
	OptimizerMemEff float64

	// Interconnect is the per-direction link bandwidth (bytes/s) used by
	// the distributed-training models, and InterconnectLatency the
	// per-message latency.
	Interconnect        float64
	InterconnectLatency time.Duration
}

// MI100 returns the calibrated model of the paper's measurement platform:
// an AMD Instinct MI100-class GPU (23.1 TFLOP/s FP32 vector, 46.1 TFLOP/s
// FP32 matrix, 184.6 TFLOP/s FP16 matrix, 1.23 TB/s HBM2) attached over
// PCIe 4.0 x16. Efficiency parameters are calibrated so the modeled
// runtime proportions of the paper's workloads land inside its reported
// bands (see internal/perfmodel's calibration tests).
func MI100() Device {
	return Device{
		Name:         "MI100-class",
		GEMMPeakFP32: 46.1e12,
		GEMMPeakFP16: 184.6e12,
		VectorPeak:   23.1e12,
		MemBW:        1.23e12,
		Launch:       20 * time.Microsecond,

		GEMMMaxEff:     0.75,
		GEMMHalfWork32: 3.5e9,
		GEMMHalfWork16: 8e9,

		MemMaxEff:       0.44,
		MemHalfBytes:    12e6,
		OptimizerMemEff: 0.66,

		Interconnect:        32e9, // PCIe 4.0 x16 per direction
		InterconnectLatency: 5 * time.Microsecond,
	}
}

// Peaks exports the device's roofline ceilings in the plain form the
// obs per-step JSONL emitter compares achieved rates against (obs sits
// below this package in the import graph, so it cannot take a Device).
func (d Device) Peaks() obs.Peaks {
	return obs.Peaks{
		GEMMFLOPS:   d.GEMMPeakFP32,
		VectorFLOPS: d.VectorPeak,
		MemBytes:    d.MemBW,
	}
}

// GEMMRate returns the achieved FLOP/s for a GEMM kernel of the given
// total work (FLOPs across its batch) at the given precision.
func (d Device) GEMMRate(p opgraph.Precision, work float64) float64 {
	peak := d.GEMMPeakFP32
	half := d.GEMMHalfWork32
	if p == opgraph.Mixed {
		peak = d.GEMMPeakFP16
		half = d.GEMMHalfWork16
	}
	if work <= 0 {
		return peak * d.GEMMMaxEff
	}
	return peak * d.GEMMMaxEff * work / (work + half)
}

// MemRate returns the achieved bytes/s for a kernel moving the given
// number of bytes.
func (d Device) MemRate(bytes float64) float64 {
	if bytes <= 0 {
		return d.MemBW * d.MemMaxEff
	}
	return d.MemBW * d.MemMaxEff * bytes / (bytes + d.MemHalfBytes)
}

// VectorRate returns the achieved FLOP/s for non-GEMM arithmetic.
func (d Device) VectorRate() float64 {
	return d.VectorPeak * d.GEMMMaxEff
}

// OpTime models one launch of op: the roofline maximum of compute and
// memory time plus launch overhead.
func (d Device) OpTime(op opgraph.Op, p opgraph.Precision) time.Duration {
	var compute float64
	if op.GEMM != nil {
		compute = float64(op.FLOPs) / d.GEMMRate(p, float64(op.FLOPs))
	} else if op.FLOPs > 0 {
		compute = float64(op.FLOPs) / d.VectorRate()
	}
	mem := float64(op.Bytes) / d.MemRate(float64(op.Bytes))
	if op.Class == opgraph.ClassLAMB && d.OptimizerMemEff > 0 {
		mem /= d.OptimizerMemEff
	}
	t := compute
	if mem > t {
		t = mem
	}
	return time.Duration(t*1e9)*time.Nanosecond + d.Launch
}

// Presets returns the device family used by the Section 7 "other
// accelerators" discussion: the calibrated MI100-class model plus
// hypothetical designs with different compute-to-bandwidth ratios. The
// paper argues its architecture-agnostic takeaways can be extrapolated by
// comparing these ratios; the cross-device tests in internal/perfmodel
// verify that every ordering-level claim indeed survives each preset.
func Presets() []Device {
	base := MI100()
	computeRich := base.Scale(2, 1, 1)
	computeRich.Name = "compute-rich (2x FLOPs)"
	bwRich := base.Scale(1, 2, 1)
	bwRich.Name = "bandwidth-rich (2x HBM)"
	nextGen := base.Scale(2.5, 1.6, 2)
	nextGen.Name = "next-gen (2.5x FLOPs, 1.6x HBM)"
	return []Device{base, computeRich, bwRich, nextGen}
}

// Scale returns a copy of the device with compute rates and bandwidth
// multiplied by the given factors — the "hypothetical GPU/network
// improvements" projections Section 5.1 mentions.
func (d Device) Scale(computeX, bwX, linkX float64) Device {
	out := d
	out.GEMMPeakFP32 *= computeX
	out.GEMMPeakFP16 *= computeX
	out.VectorPeak *= computeX
	out.MemBW *= bwX
	out.Interconnect *= linkX
	out.Name = d.Name + "-scaled"
	return out
}
