package distnet

import (
	"fmt"
	"time"
)

// AllReduce sums buf element-wise across all ranks in place, using the
// bandwidth-optimal ring algorithm over the persistent TCP streams:
// D-1 reduce-scatter steps (each rank accumulates one chunk) followed by
// D-1 all-gather steps (the reduced chunks circulate). The chunk bounds
// c·n/D match ddp.Ring exactly, and the reduce accumulates with the same
// dst[i] += recv[i] loop, so at world=2 the result is bit-identical to
// the in-process all-reduce (float addition of two operands is
// commutative).
//
// tag identifies this collective; every rank must issue the same
// sequence of (tag, len) collectives. Send and receive proceed
// concurrently (an ephemeral goroutine pushes the outbound chunk while
// the caller blocks on the inbound one) — with large chunks a
// send-then-receive lockstep would deadlock once both directions' kernel
// socket buffers fill.
func (g *Group) AllReduce(tag uint32, buf []float32) error {
	if g.world == 1 {
		return nil
	}
	if err := g.errNow(); err != nil {
		return err
	}
	d, n := g.world, len(buf)
	if cap(g.bounds) < d+1 {
		g.bounds = make([]int, d+1)
	}
	bounds := g.bounds[:d+1]
	for c := 0; c <= d; c++ {
		bounds[c] = c * n / d
	}
	chunk := func(c int) []float32 {
		c = ((c % d) + d) % d
		return buf[bounds[c]:bounds[c+1]]
	}

	// Reduce-scatter: after step s, chunk(rank-s-1) holds the partial sum
	// of s+2 ranks' contributions; after D-1 steps each rank owns one
	// fully reduced chunk.
	for s := 0; s < d-1; s++ {
		seq := uint32(s)
		out := chunk(g.rank - s)
		in := chunk(g.rank - s - 1)
		g.sendAsync(tag, seq, out)
		payload, err := g.prev.readFrame(tag, seq, len(in))
		if err != nil {
			return g.collectFail(tag, countTimeout(deadlineReduce, err))
		}
		decodeSum(in, payload)
		if err := <-g.sendErrCh; err != nil {
			countTimeout(deadlineReduce, err)
			return g.fail(fmt.Errorf("distnet: allreduce tag %#x send: %w", tag, err))
		}
	}
	// All-gather: circulate the reduced chunks.
	for s := 0; s < d-1; s++ {
		seq := uint32(d - 1 + s)
		out := chunk(g.rank + 1 - s)
		in := chunk(g.rank - s)
		g.sendAsync(tag, seq, out)
		payload, err := g.prev.readFrame(tag, seq, len(in))
		if err != nil {
			return g.collectFail(tag, countTimeout(deadlineGather, err))
		}
		decodeCopy(in, payload)
		if err := <-g.sendErrCh; err != nil {
			countTimeout(deadlineGather, err)
			return g.fail(fmt.Errorf("distnet: allreduce tag %#x send: %w", tag, err))
		}
	}
	allreducesTotal.Inc()
	return nil
}

// sendAsync ships one chunk to the ring successor without blocking the
// caller. Exactly one send is in flight per Group; the result is always
// collected from sendErrCh before the next send starts (or before
// returning on a receive error), so the goroutine can never leak and the
// chunk it encodes is never concurrently mutated.
func (g *Group) sendAsync(tag, seq uint32, data []float32) {
	go func() { g.sendErrCh <- g.next.writeFrame(tag, seq, data) }()
}

// collectFail tears the group down after a receive error and reaps the
// in-flight send (which unblocks promptly because fail closed its conn).
func (g *Group) collectFail(tag uint32, err error) error {
	err = g.fail(fmt.Errorf("distnet: allreduce tag %#x recv: %w", tag, err))
	<-g.sendErrCh
	return err
}

// ProbeLink measures the effective ring link by timing two collectives:
// a world-sized all-reduce (one element per chunk, pure per-step latency)
// and an elems-sized one (bandwidth-dominated). It returns the derived
// point-to-point bandwidth in bytes/s and per-step latency — the Link
// parameters the analytical model (internal/dist) needs to predict this
// group's communication time. Collective: every rank must call it at the
// same point with the same arguments.
func (g *Group) ProbeLink(elems, rounds int) (bw float64, lat time.Duration, err error) {
	if g.world == 1 {
		return 0, 0, nil
	}
	if rounds < 1 {
		rounds = 1
	}
	small := make([]float32, g.world)
	big := make([]float32, elems)
	tag := uint32(tagProbe)
	// Warm-up: grow conn scratches and touch every code path once.
	if err := g.AllReduce(tag, big); err != nil {
		return 0, 0, err
	}
	tag++
	tSmall, tBig := time.Duration(1<<62), time.Duration(1<<62)
	for r := 0; r < rounds; r++ {
		if err := g.Barrier(); err != nil {
			return 0, 0, err
		}
		t0 := time.Now()
		if err := g.AllReduce(tag, small); err != nil {
			return 0, 0, err
		}
		tag++
		if d := time.Since(t0); d < tSmall {
			tSmall = d
		}
		if err := g.Barrier(); err != nil {
			return 0, 0, err
		}
		t0 = time.Now()
		if err := g.AllReduce(tag, big); err != nil {
			return 0, 0, err
		}
		tag++
		if d := time.Since(t0); d < tBig {
			tBig = d
		}
	}
	steps := 2 * (g.world - 1)
	lat = tSmall / time.Duration(steps)
	vol := 2 * float64(g.world-1) / float64(g.world) * float64(elems) * 4 // bytes on the wire per rank
	net := tBig - tSmall
	if net <= 0 {
		net = tBig // degenerate timer resolution; bandwidth is then a lower bound
	}
	return vol / net.Seconds(), lat, nil
}
