package distnet

import (
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"demystbert/internal/model"
	"demystbert/internal/trace"
)

// Clock sync over the real loopback wire: rank 0 is the reference (zero
// offset by definition) and the worker's measured offset must be tiny —
// both sides share one physical clock, so anything past a few hundred
// milliseconds means the protocol mixed up t1/t2/t3.
func TestClockSyncWorld2(t *testing.T) {
	groups := joinWorld(t, 2, 5*time.Second)
	offs := make([]time.Duration, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := range groups {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			offs[r], errs[r] = groups[r].ClockSync(DefaultClockRounds)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d clock sync: %v", r, err)
		}
	}
	if offs[0] != 0 {
		t.Fatalf("rank 0 offset %v, want 0 (it is the reference)", offs[0])
	}
	if d := offs[1]; d < -200*time.Millisecond || d > 200*time.Millisecond {
		t.Fatalf("worker offset %v implausible for a shared clock", d)
	}
}

// Shard exchange over the control streams: the worker's spans arrive on
// rank 0 intact, offset attached, with rank 0's own shard first.
func TestTraceShardExchange(t *testing.T) {
	groups := joinWorld(t, 2, 5*time.Second)
	base := time.Unix(0, 1_700_000_000_000_000_000)
	workerShard := trace.Shard{
		Rank:   1,
		Offset: 3 * time.Millisecond,
		Spans: []trace.Span{
			{Trace: trace.StepTraceID(1), Name: "bwd", Rank: 1, Step: 1,
				Start: base, Dur: 5 * time.Millisecond},
		},
	}
	ownShard := trace.Shard{Rank: 0, Spans: []trace.Span{
		{Trace: trace.StepTraceID(1), Name: "bwd", Rank: 0, Step: 1,
			Start: base, Dur: 4 * time.Millisecond},
	}}

	var shards []trace.Shard
	errs := make([]error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		shards, errs[0] = groups[0].GatherTraceShards(ownShard)
	}()
	go func() {
		defer wg.Done()
		errs[1] = groups[1].SendTraceShard(workerShard)
	}()
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d shard exchange: %v", r, err)
		}
	}
	if len(shards) != 2 {
		t.Fatalf("got %d shards, want 2", len(shards))
	}
	if shards[0].Rank != 0 || shards[1].Rank != 1 {
		t.Fatalf("shard order ranks %d,%d, want 0,1", shards[0].Rank, shards[1].Rank)
	}
	got := shards[1]
	if got.Offset != workerShard.Offset {
		t.Fatalf("worker offset %v survived the wire as %v", workerShard.Offset, got.Offset)
	}
	if len(got.Spans) != 1 || got.Spans[0].Name != "bwd" || got.Spans[0].Dur != 5*time.Millisecond {
		t.Fatalf("worker spans mangled in transit: %+v", got.Spans)
	}
}

// End-to-end: a traced world-2 training run produces a straggler report
// on rank 0 with every step attributed to a real rank, and the merged
// Perfetto file on disk parses with both ranks' tracks present.
func TestTrainWithTraceProducesStragglerReport(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rank training run")
	}
	out := filepath.Join(t.TempDir(), "trace.json")
	world, steps := 2, 3
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	results := make([]*Result, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tc := TrainConfig{
				Rank: r, World: world, Addr: addr, Timeout: 20 * time.Second,
				Model: model.Tiny(), Seed: 42, Steps: steps, B: 2, N: 16,
				Overlap: true, Trace: true,
			}
			if r == 0 {
				tc.Listener = ln
				tc.TraceOut = out
			}
			results[r], _, errs[r] = Train(tc)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d train: %v", r, err)
		}
	}

	rep := results[0].Straggler
	if len(rep) != steps {
		t.Fatalf("straggler report covers %d steps, want %d", len(rep), steps)
	}
	for _, s := range rep {
		if s.GatingRank < 0 || s.GatingRank >= world {
			t.Fatalf("step %d gated by rank %d, world is %d", s.Step, s.GatingRank, world)
		}
		if len(s.Ranks) != world {
			t.Fatalf("step %d has %d rank entries, want %d", s.Step, len(s.Ranks), world)
		}
	}
	if results[1].Straggler != nil {
		t.Fatalf("worker rank carries a straggler report; only rank 0 should")
	}

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("merged trace file: %v", err)
	}
	var events []struct {
		Ph   string `json:"ph"`
		TID  int    `json:"tid"`
		Name string `json:"name"`
	}
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	tids := map[int]bool{}
	names := map[string]bool{}
	for _, ev := range events {
		if ev.Ph == "X" {
			tids[ev.TID] = true
			names[ev.Name] = true
		}
	}
	for r := 0; r < world; r++ {
		if !tids[r+1] {
			t.Fatalf("merged trace missing rank %d track (tids seen: %v)", r, tids)
		}
	}
	for _, want := range []string{"step", "fwd", "bwd", "upd", "allreduce.b0"} {
		if !names[want] {
			t.Fatalf("merged trace has no %q span", want)
		}
	}
}
