package distnet

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"time"

	"demystbert/internal/trace"
)

// Clock alignment and trace-shard transport over the control streams.
// Worker processes stamp their spans with their own wall clocks; to
// merge all ranks onto one timeline, each worker measures its offset
// from rank 0 with an NTP-style ping-pong at handshake time (after Join,
// before training), and ships its span shard — offset attached — back to
// rank 0 at end of run, where trace.Merge aligns and interleaves them.

// DefaultClockRounds is the ping-pong count per worker; the minimum-RTT
// sample wins, so a handful of exchanges rejects scheduler noise.
const DefaultClockRounds = 8

// ClockSync measures this rank's clock offset relative to rank 0
// (local - rank0; zero on rank 0 and at world 1). Collective: every
// rank must call it at the same protocol point. Workers are serviced in
// rank order, one full ping-pong sequence each, so the exchanges never
// interleave and the RTTs stay clean.
func (g *Group) ClockSync(rounds int) (time.Duration, error) {
	if g.world == 1 {
		return 0, nil
	}
	if err := g.errNow(); err != nil {
		return 0, err
	}
	if rounds < 1 {
		rounds = DefaultClockRounds
	}
	if g.rank == 0 {
		var t2 [8]byte
		for r, c := range g.ctrls {
			for i := 0; i < rounds; i++ {
				if _, err := c.readFrame(tagClock, uint32(i), 0); err != nil {
					countTimeout(deadlineHandshake, err)
					return 0, g.fail(fmt.Errorf("distnet: clock sync with rank %d: %w", r+1, err))
				}
				binary.LittleEndian.PutUint64(t2[:], uint64(time.Now().UnixNano()))
				if err := c.writeRaw(tagClock, uint32(i), t2[:]); err != nil {
					countTimeout(deadlineHandshake, err)
					return 0, g.fail(fmt.Errorf("distnet: clock sync reply to rank %d: %w", r+1, err))
				}
			}
		}
		return 0, nil
	}
	samples := make([]trace.OffsetSample, 0, rounds)
	for i := 0; i < rounds; i++ {
		t1 := time.Now()
		if err := g.ctrl.writeRaw(tagClock, uint32(i), nil); err != nil {
			countTimeout(deadlineHandshake, err)
			return 0, g.fail(fmt.Errorf("distnet: clock sync ping: %w", err))
		}
		payload, err := g.ctrl.readFrame(tagClock, uint32(i), 2) // 8 bytes = 2 float32 elems
		if err != nil {
			countTimeout(deadlineHandshake, err)
			return 0, g.fail(fmt.Errorf("distnet: clock sync pong: %w", err))
		}
		t3 := time.Now()
		t2 := time.Unix(0, int64(binary.LittleEndian.Uint64(payload)))
		samples = append(samples, trace.NewOffsetSample(t1, t3, t2))
	}
	return trace.EstimateOffset(samples), nil
}

// SendTraceShard ships this worker's span shard to rank 0. Worker-only;
// rank 0 collects with GatherTraceShards at the same protocol point.
func (g *Group) SendTraceShard(sh trace.Shard) error {
	if g.world == 1 || g.rank == 0 {
		return nil
	}
	payload, err := json.Marshal(sh)
	if err != nil {
		return fmt.Errorf("distnet: encoding trace shard: %w", err)
	}
	if err := g.ctrl.writeRaw(tagShard, 0, payload); err != nil {
		return g.fail(fmt.Errorf("distnet: sending trace shard: %w", err))
	}
	return nil
}

// GatherTraceShards collects every worker's shard (rank order) and
// returns them with rank 0's own shard first. Rank-0-only.
func (g *Group) GatherTraceShards(own trace.Shard) ([]trace.Shard, error) {
	shards := []trace.Shard{own}
	if g.world == 1 {
		return shards, nil
	}
	if g.rank != 0 {
		return nil, fmt.Errorf("distnet: GatherTraceShards on rank %d", g.rank)
	}
	for r, c := range g.ctrls {
		payload, tag, _, err := c.readAny()
		if err != nil {
			return nil, g.fail(fmt.Errorf("distnet: trace shard from rank %d: %w", r+1, err))
		}
		if tag != tagShard {
			return nil, g.fail(fmt.Errorf("distnet: expected trace shard from rank %d, got frame tag %#x", r+1, tag))
		}
		var sh trace.Shard
		if err := json.Unmarshal(payload, &sh); err != nil {
			return nil, g.fail(fmt.Errorf("distnet: decoding trace shard from rank %d: %w", r+1, err))
		}
		if sh.Rank != r+1 {
			return nil, g.fail(fmt.Errorf("distnet: trace shard claims rank %d, conn belongs to rank %d", sh.Rank, r+1))
		}
		shards = append(shards, sh)
	}
	return shards, nil
}
