package distnet

import (
	"fmt"
	"net"
	"os"
	"runtime"
	"time"

	"demystbert/internal/data"
	"demystbert/internal/model"
	"demystbert/internal/nn"
	"demystbert/internal/optim"
	"demystbert/internal/profile"
	"demystbert/internal/tensor"
	"demystbert/internal/trace"
)

// TrainConfig describes one rank's share of a multi-process training
// run. Every rank must be launched with identical Model, Seed, Steps,
// B, N, BucketBytes, Overlap, and LR — the same contract as real DP
// training, where divergent hyperparameters silently desynchronize the
// replicas.
type TrainConfig struct {
	Rank     int
	World    int
	Addr     string // rank 0's rendezvous address
	Listener net.Listener
	Timeout  time.Duration

	Model model.Config
	Seed  uint64
	Steps int
	B, N  int // per-rank microbatch: global batch is World·B

	BucketBytes int  // gradient bucket size; <=0 means one bucket per ready group
	Overlap     bool // launch each bucket's AllReduce during backward
	LR          float32
	// FixedData repeats the first global batch every step — the
	// convergence smoke (memorizing one batch drives the loss down
	// monotonically, where fresh random batches at these tiny scales need
	// not).
	FixedData bool

	ProbeElems  int // link probe size in float32s; 0 disables the probe
	ProbeRounds int

	// Trace enables step-scoped span recording on this rank: every rank
	// derives the same per-step trace id locally (trace.StepTraceID), a
	// handshake-time clock exchange measures each worker's offset from
	// rank 0, and at end of run the workers ship their span shards to
	// rank 0, which merges them into one aligned timeline and computes
	// the per-step straggler report (Result.Straggler).
	Trace bool
	// TraceOut, on rank 0 with Trace set, writes the merged multi-rank
	// Perfetto timeline (rank 0's kernel events ride along) to this path.
	TraceOut string

	// WireTrainer, when set, runs after the trainer is constructed and
	// before the first step — the seam callers use to install an OptStep
	// override (e.g. a ZeRO-1 sharded optimizer from internal/memscale,
	// which this package cannot import without a cycle). It is a process-
	// local function, never serialized; every rank must install the same
	// override or the replicas desynchronize.
	WireTrainer func(t *Trainer) error
}

// Result is one rank's training summary, JSON-serializable so worker
// processes can report to the launcher through a file. Timing means
// exclude the first (warm-up) step when Steps > 1.
type Result struct {
	Rank      int  `json:"rank"`
	World     int  `json:"world"`
	Steps     int  `json:"steps"`
	Buckets   int  `json:"buckets"`
	GradElems int  `json:"grad_elems"`
	Overlap   bool `json:"overlap"`

	Losses []float64 `json:"losses"`

	StepMS    float64 `json:"step_ms"`
	FwdMS     float64 `json:"fwd_ms"`
	BwdMS     float64 `json:"bwd_ms"`
	UpdMS     float64 `json:"upd_ms"`
	CommMS    float64 `json:"comm_ms"`    // sum of bucket AllReduce times
	ExposedMS float64 `json:"exposed_ms"` // comm not hidden behind backward

	BucketKB    []float64 `json:"bucket_kb"`     // per-bucket payload size
	BucketBwdMS []float64 `json:"bucket_bwd_ms"` // backward segment feeding each bucket

	WireBytesPerStep int64   `json:"wire_bytes_per_step"`
	LinkBandwidth    float64 `json:"link_bandwidth_bytes_per_s"`
	LinkLatencyUS    float64 `json:"link_latency_us"`

	// ClockOffsetUS is this rank's measured clock offset from rank 0
	// (NTP-style min-RTT estimate; zero on rank 0). Straggler is the
	// per-step gating report over the merged, clock-aligned span set —
	// rank 0 only, and only when TrainConfig.Trace was set.
	ClockOffsetUS float64               `json:"clock_offset_us,omitempty"`
	Straggler     []trace.StepStraggler `json:"straggler,omitempty"`
}

// Trainer runs one rank of multi-process data-parallel training:
// local forward/backward, bucketed ring all-reduce of gradients (overlapped
// with backward when enabled), averaged scatter-back, identical LAMB step.
type Trainer struct {
	G   *Group
	M   *model.BERT
	Ctx *nn.Ctx
	Opt *optim.LAMB

	// Tracer, when non-nil, records step/fwd/bwd/upd/allreduce spans
	// under the deterministic per-step trace id. Set it before the first
	// Step (Train wires it from TrainConfig.Trace).
	Tracer *trace.Tracer

	// OptStep, when non-nil, replaces the default t.Opt.Step call with a
	// custom weight update — the hook a sharded (ZeRO-1) optimizer plugs
	// into. It runs after the gradient all-reduce, so it sees the same
	// averaged gradients on every rank, and it may itself issue
	// collectives (the sharded path all-gathers updated weights).
	OptStep func(ctx *nn.Ctx, params []*nn.Param) error

	plan    *Plan
	overlap bool
	inv     float32
	step    int

	// Per-step overlap machinery, reset by Step.
	ready        chan int // bucket indices, fed by the grad hook in launch order
	launched     int
	bwdStart     time.Time
	groupReadyAt []time.Duration   // when each grad group's last gradient landed
	stepSC       trace.SpanContext // current step's span context, read by commLoop
}

// stepStats carries one step's timing decomposition.
type stepStats struct {
	fwd, bwd, upd, comm, exposed time.Duration
	wall                         time.Duration
	groupReadyAt                 []time.Duration
}

type commStats struct {
	comm time.Duration
	err  error
}

// NewTrainer wires a joined group to a model. The model's GradHook is
// claimed by the trainer.
func NewTrainer(g *Group, m *model.BERT, seed uint64, bucketBytes int, overlap bool, lr float32) *Trainer {
	t := &Trainer{
		G: g,
		M: m,
		Ctx: &nn.Ctx{
			Prof: profile.New(),
			// Distinct dropout streams per rank, matching ddp.NewTrainer's
			// seed schedule so world=2 runs are bit-identical to the
			// in-process trainer.
			RNG:   tensor.NewRNG(seed + uint64(g.Rank())*7919),
			Train: true,
		},
		Opt:     optim.NewLAMB(lr),
		plan:    PlanBuckets(m.GradGroups(), bucketBytes),
		overlap: overlap && g.World() > 1,
		inv:     1 / float32(g.World()),
	}
	t.groupReadyAt = make([]time.Duration, len(m.GradGroups()))
	m.GradHook = t.onGradGroup
	return t
}

// Plan exposes the bucket partition (for reporting and tests).
func (t *Trainer) Plan() *Plan { return t.plan }

// onGradGroup runs inside Backward each time a grad group's last
// gradient is produced. It timestamps the group and, when overlap is
// active for this step, releases every bucket whose contents are now
// final. Buckets launch in index order on all ranks — the collective
// order every rank must agree on.
func (t *Trainer) onGradGroup(group int) {
	if group >= 0 && group < len(t.groupReadyAt) {
		t.groupReadyAt[group] = time.Since(t.bwdStart)
	}
	if t.ready == nil {
		return
	}
	for n := t.plan.launchableAfter(group); t.launched < n; t.launched++ {
		t.ready <- t.launched
	}
}

// bucketTag gives each collective a tag unique within the recent
// window, verified by both ends of every ring stream; 24 bits keeps it
// clear of the reserved control/probe ranges.
func (t *Trainer) bucketTag(idx int) uint32 {
	return (uint32(t.step)*uint32(len(t.plan.List)) + uint32(idx)) & 0x00FFFFFF
}

// commLoop drains ready bucket indices, all-reducing and averaging each.
// It runs concurrently with Backward; the channel send in onGradGroup
// establishes the happens-before edge from the gradient writes.
func (t *Trainer) commLoop(done chan<- commStats) {
	var cs commStats
	for idx := range t.ready {
		if cs.err != nil {
			continue // group already failed; just drain
		}
		b := &t.plan.List[idx]
		t.plan.Gather(b)
		c0 := time.Now()
		if err := t.G.AllReduce(t.bucketTag(idx), t.plan.Slice(b)); err != nil {
			cs.err = err
			continue
		}
		d := time.Since(c0)
		cs.comm += d
		t.recordComm(idx, c0, d)
		t.plan.ScatterScale(b, t.inv)
		bucketsReduced.Inc()
	}
	done <- cs
}

// recordComm logs one bucket's AllReduce as an "allreduce.b<idx>" span
// under the current step's context — the name trace.Stragglers parses to
// attribute per-bucket exposed communication.
func (t *Trainer) recordComm(idx int, start time.Time, d time.Duration) {
	if t.Tracer == nil {
		return
	}
	t.Tracer.Record(trace.Span{
		Trace:  t.stepSC.Trace,
		Parent: t.stepSC.Parent,
		Name:   fmt.Sprintf("allreduce.b%d", idx),
		Step:   t.step + 1,
		Start:  start,
		Dur:    d,
	})
}

// Step trains one iteration on this rank's batch shard and returns the
// local loss plus the step's timing decomposition.
func (t *Trainer) Step(b *data.Batch) (float64, stepStats, error) {
	var st stepStats
	if err := t.G.errNow(); err != nil {
		return 0, st, err
	}
	// Steps are 1-based in the trace so trace.Stragglers's zero-step
	// filter never eats real data. Every rank derives the same trace id
	// locally; the root span id is minted here and children hang off it.
	stepIdx := t.step + 1
	var rootID trace.SpanID
	if t.Tracer != nil {
		t.stepSC = t.Tracer.FixedTrace(trace.StepTraceID(stepIdx))
		rootID = t.Tracer.NewSpanID()
		t.stepSC.Parent = rootID
		t.Ctx.Span = t.stepSC
	}
	stepStart := time.Now()
	t.Ctx.Prof.BeginIteration()

	fwdStart := time.Now()
	loss := t.M.Forward(t.Ctx, b)
	st.fwd = time.Since(fwdStart)

	var done chan commStats
	if t.overlap {
		t.ready = make(chan int, len(t.plan.List))
		t.launched = 0
		done = make(chan commStats, 1)
		go t.commLoop(done)
	}
	t.bwdStart = time.Now()
	t.M.Backward(t.Ctx)
	bwdEnd := time.Now()
	st.bwd = bwdEnd.Sub(t.bwdStart)

	if t.overlap {
		close(t.ready)
		cs := <-done
		t.ready = nil
		if cs.err != nil {
			return 0, st, cs.err
		}
		st.comm = cs.comm
		st.exposed = time.Since(bwdEnd)
	} else if t.G.World() > 1 {
		// Sequential bucket loop: all communication is exposed.
		for i := range t.plan.List {
			b := &t.plan.List[i]
			t.plan.Gather(b)
			c0 := time.Now()
			if err := t.G.AllReduce(t.bucketTag(i), t.plan.Slice(b)); err != nil {
				return 0, st, err
			}
			d := time.Since(c0)
			st.comm += d
			t.recordComm(i, c0, d)
			t.plan.ScatterScale(b, t.inv)
			bucketsReduced.Inc()
		}
		st.exposed = st.comm
	}

	updStart := time.Now()
	if t.OptStep != nil {
		if err := t.OptStep(t.Ctx, t.M.Params()); err != nil {
			return 0, st, err
		}
	} else {
		t.Opt.Step(t.Ctx, t.M.Params())
	}
	t.M.ZeroGrads()
	st.upd = time.Since(updStart)

	st.wall = time.Since(stepStart)
	if t.Tracer != nil {
		tid := t.stepSC.Trace
		phase := func(name string, start time.Time, d time.Duration) {
			t.Tracer.Record(trace.Span{
				Trace: tid, Parent: rootID, Name: name,
				Step: stepIdx, Start: start, Dur: d,
			})
		}
		phase("fwd", fwdStart, st.fwd)
		phase("bwd", t.bwdStart, st.bwd)
		phase("upd", updStart, st.upd)
		t.Tracer.Record(trace.Span{
			Trace: tid, ID: rootID, Name: "step",
			Step: stepIdx, Start: stepStart, Dur: st.wall,
		})
	}
	st.groupReadyAt = append([]time.Duration(nil), t.groupReadyAt...)
	t.step++

	stepsTotal.Inc()
	stepSeconds.Observe(st.wall.Seconds())
	commSeconds.Observe(st.comm.Seconds())
	exposedSeconds.Observe(st.exposed.Seconds())
	if hidden := st.comm - st.exposed; hidden > 0 {
		hiddenSeconds.Observe(hidden.Seconds())
	}
	return loss, st, nil
}

// Train runs a full multi-process training session for one rank: join
// the group, train cfg.Steps steps on deterministic synthetic data, and
// return the rank's Result plus the final model (for checkpointing and
// parity checks). Every rank generates the full global batch sequence
// from the shared data seed and consumes its own shard — the same
// schedule ddp.Trainer sees, which is what makes world=2 runs
// bit-identical to the in-process path.
func Train(cfg TrainConfig) (*Result, *model.BERT, error) {
	if cfg.Steps < 1 || cfg.B < 1 || cfg.N < 1 {
		return nil, nil, fmt.Errorf("distnet: need positive steps/B/N, got %d/%d/%d", cfg.Steps, cfg.B, cfg.N)
	}
	lr := cfg.LR
	if lr == 0 {
		lr = 0.01
	}
	if cfg.World > 1 && runtime.GOMAXPROCS(0) < 2 {
		// Give the comm goroutine its own scheduler slot. With a single P
		// it only runs at ~10ms async-preemption boundaries of the
		// backward compute, so buckets barely progress until the drain and
		// overlap hides nothing — the software analog of a GPU needing a
		// separate copy/comm stream.
		runtime.GOMAXPROCS(2)
	}
	g, err := Join(Config{
		Rank: cfg.Rank, World: cfg.World, Addr: cfg.Addr,
		Listener: cfg.Listener, Timeout: cfg.Timeout,
	})
	if err != nil {
		return nil, nil, err
	}
	defer g.Close()

	m, err := model.New(cfg.Model, cfg.Seed) // same seed everywhere: identical init
	if err != nil {
		return nil, nil, err
	}
	t := NewTrainer(g, m, cfg.Seed, cfg.BucketBytes, cfg.Overlap, lr)
	if cfg.WireTrainer != nil {
		if err := cfg.WireTrainer(t); err != nil {
			return nil, nil, fmt.Errorf("distnet: wiring trainer: %w", err)
		}
	}

	res := &Result{
		Rank: g.Rank(), World: g.World(), Steps: cfg.Steps,
		Buckets: len(t.plan.List), GradElems: t.plan.Elems(),
		Overlap: t.overlap,
	}
	for i := range t.plan.List {
		res.BucketKB = append(res.BucketKB, float64(t.plan.List[i].Len)*4/1024)
	}

	// Clock sync is a collective, so Trace must be set identically on
	// every rank (the launcher guarantees this for -launch runs).
	var clockOff time.Duration
	if cfg.Trace {
		t.Tracer = trace.New(g.Rank(), 0)
		t.Ctx.Tracer = t.Tracer
		off, err := g.ClockSync(DefaultClockRounds)
		if err != nil {
			return nil, nil, err
		}
		clockOff = off
		res.ClockOffsetUS = float64(off) / float64(time.Microsecond)
	}

	if g.World() > 1 && cfg.ProbeElems > 0 {
		rounds := cfg.ProbeRounds
		if rounds == 0 {
			rounds = 3
		}
		bw, lat, err := g.ProbeLink(cfg.ProbeElems, rounds)
		if err != nil {
			return nil, nil, fmt.Errorf("distnet: link probe: %w", err)
		}
		res.LinkBandwidth = bw
		res.LinkLatencyUS = float64(lat) / float64(time.Microsecond)
	}

	gen := data.NewGenerator(cfg.Model.Vocab, 0.15, cfg.Seed+1000003)
	txBefore, rxBefore := g.WireBytes()
	var acc stepStats
	bucketBwd := make([]float64, len(t.plan.List))
	measured := 0
	var fixed *data.Batch
	for step := 0; step < cfg.Steps; step++ {
		// Align step starts across ranks. Real DP steps are already
		// implicitly synced by the gradient collective; the explicit
		// barrier stops a fast rank from racing into the next forward
		// while peers still drain, which on a shared host would bill
		// peer compute time as exposed communication. Blocked ranks
		// sleep in a socket read — they cost no CPU.
		b0 := time.Now()
		if err := g.Barrier(); err != nil {
			return nil, nil, err
		}
		if t.Tracer != nil {
			t.Tracer.Record(trace.Span{
				Trace: trace.StepTraceID(step + 1), Name: "barrier",
				Step: step + 1, Start: b0, Dur: time.Since(b0),
			})
		}
		// Generate the whole global batch, keep this rank's shard: every
		// rank advances the shared generator identically.
		mine := fixed
		if mine == nil {
			for r := 0; r < g.World(); r++ {
				b := gen.Next(cfg.B, cfg.N)
				if r == g.Rank() {
					mine = b
				}
			}
			if cfg.FixedData {
				fixed = mine
			}
		}
		loss, st, err := t.Step(mine)
		if err != nil {
			return nil, nil, err
		}
		res.Losses = append(res.Losses, loss)
		if step == 0 && cfg.Steps > 1 {
			continue // warm-up: pack caches, conn scratches, page faults
		}
		acc.fwd += st.fwd
		acc.bwd += st.bwd
		acc.upd += st.upd
		acc.comm += st.comm
		acc.exposed += st.exposed
		acc.wall += st.wall
		prev := time.Duration(0)
		for i := range t.plan.List {
			at := st.groupReadyAt[t.plan.List[i].ReadyGroup]
			if at > prev {
				bucketBwd[i] += float64(at-prev) / float64(time.Millisecond)
				prev = at
			}
		}
		measured++
	}
	if measured > 0 {
		ms := func(d time.Duration) float64 {
			return float64(d) / float64(time.Millisecond) / float64(measured)
		}
		res.StepMS, res.FwdMS, res.BwdMS = ms(acc.wall), ms(acc.fwd), ms(acc.bwd)
		res.UpdMS, res.CommMS, res.ExposedMS = ms(acc.upd), ms(acc.comm), ms(acc.exposed)
		for i := range bucketBwd {
			res.BucketBwdMS = append(res.BucketBwdMS, bucketBwd[i]/float64(measured))
		}
		tx, rx := g.WireBytes()
		res.WireBytesPerStep = (tx - txBefore + rx - rxBefore) / int64(cfg.Steps)
	}

	// Ship span shards home: workers attach their measured clock offset
	// so rank 0 can merge every rank onto one aligned timeline, derive
	// the straggler report, and (optionally) write the Perfetto file with
	// its own kernel events riding along on a separate track.
	if t.Tracer != nil {
		sh := trace.Shard{Rank: g.Rank(), Offset: clockOff, Spans: t.Tracer.Spans()}
		if g.Rank() == 0 {
			shards, err := g.GatherTraceShards(sh)
			if err != nil {
				return nil, nil, err
			}
			merged := trace.Merge(shards)
			res.Straggler = trace.Stragglers(merged)
			if cfg.TraceOut != "" {
				f, err := os.Create(cfg.TraceOut)
				if err != nil {
					return nil, nil, fmt.Errorf("distnet: trace out: %w", err)
				}
				werr := trace.WriteChromeTrace(f, merged, t.Ctx.Prof.Events())
				if cerr := f.Close(); werr == nil {
					werr = cerr
				}
				if werr != nil {
					return nil, nil, fmt.Errorf("distnet: writing trace: %w", werr)
				}
			}
		} else if err := g.SendTraceShard(sh); err != nil {
			return nil, nil, err
		}
	}

	// Keep the group alive until every rank is done training, so nobody
	// tears the ring down under a peer still mid-collective.
	if err := g.Barrier(); err != nil {
		return nil, nil, err
	}
	return res, m, nil
}
