package distnet

import (
	"errors"
	"net"

	"demystbert/internal/obs"
)

// Transport and trainer telemetry, served at /metrics next to the
// in-process ddp counters. The exposed-vs-overlapped histograms are the
// observable form of the paper's D1-vs-D2 distinction: with overlap on,
// distnet_exposed_comm_seconds should collapse toward the final bucket's
// AllReduce while distnet_hidden_comm_seconds absorbs the rest.
var (
	stepsTotal = obs.NewCounter("distnet_steps_total",
		"multi-process data-parallel training steps completed")
	txBytes = obs.NewCounter("distnet_tx_bytes_total",
		"bytes written to ring and control sockets (incl. frame headers)")
	rxBytes = obs.NewCounter("distnet_rx_bytes_total",
		"bytes read from ring and control sockets (incl. frame headers)")
	bucketsReduced = obs.NewCounter("distnet_buckets_reduced_total",
		"gradient buckets all-reduced")
	allreducesTotal = obs.NewCounter("distnet_allreduces_total",
		"ring AllReduce collectives completed")
	commSeconds = obs.NewHistogram("distnet_comm_seconds",
		"total gradient AllReduce time per step (sum over buckets)",
		obs.ExpBuckets(1e-5, 4, 12)) // 10 µs .. ~40 s
	exposedSeconds = obs.NewHistogram("distnet_exposed_comm_seconds",
		"communication time not hidden behind backward compute, per step",
		obs.ExpBuckets(1e-5, 4, 12))
	hiddenSeconds = obs.NewHistogram("distnet_hidden_comm_seconds",
		"communication time overlapped with backward compute, per step",
		obs.ExpBuckets(1e-5, 4, 12))
	stepSeconds = obs.NewHistogram("distnet_step_wall_seconds",
		"wall-clock time of one multi-process training step",
		obs.ExpBuckets(1e-4, 4, 12))

	// Per-op wire-deadline counters: which phase of the protocol a
	// wedged or dead peer surfaced in. A deadline during handshake means
	// a rank never arrived; during reduce/gather it localizes the hang
	// to a ring half; during barrier it names the straggler path.
	deadlineHandshake = obs.NewCounter("distnet_deadline_handshake_total",
		"I/O deadline expiries during rendezvous, ring setup, or clock sync")
	deadlineReduce = obs.NewCounter("distnet_deadline_reduce_total",
		"I/O deadline expiries during reduce-scatter ring steps")
	deadlineGather = obs.NewCounter("distnet_deadline_gather_total",
		"I/O deadline expiries during all-gather ring steps")
	deadlineBarrier = obs.NewCounter("distnet_deadline_barrier_total",
		"I/O deadline expiries during barrier entry or release")
)

// countTimeout bumps c when err is a network timeout (an expired
// read/write deadline) and passes err through either way — the
// classification hook every protocol phase wraps its I/O errors with.
func countTimeout(c *obs.Counter, err error) error {
	var ne net.Error
	if err != nil && errors.As(err, &ne) && ne.Timeout() {
		c.Inc()
	}
	return err
}
