package distnet

import "demystbert/internal/obs"

// Transport and trainer telemetry, served at /metrics next to the
// in-process ddp counters. The exposed-vs-overlapped histograms are the
// observable form of the paper's D1-vs-D2 distinction: with overlap on,
// distnet_exposed_comm_seconds should collapse toward the final bucket's
// AllReduce while distnet_hidden_comm_seconds absorbs the rest.
var (
	stepsTotal = obs.NewCounter("distnet_steps_total",
		"multi-process data-parallel training steps completed")
	txBytes = obs.NewCounter("distnet_tx_bytes_total",
		"bytes written to ring and control sockets (incl. frame headers)")
	rxBytes = obs.NewCounter("distnet_rx_bytes_total",
		"bytes read from ring and control sockets (incl. frame headers)")
	bucketsReduced = obs.NewCounter("distnet_buckets_reduced_total",
		"gradient buckets all-reduced")
	allreducesTotal = obs.NewCounter("distnet_allreduces_total",
		"ring AllReduce collectives completed")
	commSeconds = obs.NewHistogram("distnet_comm_seconds",
		"total gradient AllReduce time per step (sum over buckets)",
		obs.ExpBuckets(1e-5, 4, 12)) // 10 µs .. ~40 s
	exposedSeconds = obs.NewHistogram("distnet_exposed_comm_seconds",
		"communication time not hidden behind backward compute, per step",
		obs.ExpBuckets(1e-5, 4, 12))
	hiddenSeconds = obs.NewHistogram("distnet_hidden_comm_seconds",
		"communication time overlapped with backward compute, per step",
		obs.ExpBuckets(1e-5, 4, 12))
	stepSeconds = obs.NewHistogram("distnet_step_wall_seconds",
		"wall-clock time of one multi-process training step",
		obs.ExpBuckets(1e-4, 4, 12))
)
