package distnet

import "demystbert/internal/nn"

// Bucket is one coalesced slice of the flat gradient buffer, covering a
// contiguous run of parameters from the backward-ready ordering. It is
// the unit of communication: one Bucket = one ring AllReduce.
type Bucket struct {
	Params     []*nn.Param
	Off, Len   int // extent within Plan.Flat, in float32 elements
	ReadyGroup int // index of the last grad group contributing to it;
	// the bucket may launch once this group's grads are final
}

// Plan owns the flat gradient staging buffer and its partition into
// buckets. Buckets follow the backward production order (MLM/NSP heads
// first, then layers top-down, embedding last), so with overlap enabled
// early buckets ship while later layers are still computing.
type Plan struct {
	Flat []float32
	List []Bucket
}

// PlanBuckets partitions the ready-ordered grad groups into buckets of
// at most bucketBytes (4 bytes per element). A parameter is never split
// across buckets, so a single parameter larger than bucketBytes gets a
// bucket of its own; bucketBytes <= 0 means one bucket per ready group.
// Buckets never span a group boundary: a bucket's launch condition is
// "its last group's grads are final", and merging across groups would
// only delay the earlier group's traffic.
func PlanBuckets(groups [][]*nn.Param, bucketBytes int) *Plan {
	maxElems := bucketBytes / 4
	p := &Plan{}
	off := 0
	for gi, group := range groups {
		var cur []*nn.Param
		curLen := 0
		flush := func() {
			if curLen == 0 {
				return
			}
			p.List = append(p.List, Bucket{
				Params: cur, Off: off, Len: curLen, ReadyGroup: gi,
			})
			off += curLen
			cur, curLen = nil, 0
		}
		for _, prm := range group {
			sz := prm.Size()
			if maxElems > 0 && curLen > 0 && curLen+sz > maxElems {
				flush()
			}
			cur = append(cur, prm)
			curLen += sz
		}
		flush()
	}
	p.Flat = make([]float32, off)
	return p
}

// Elems returns the total gradient element count across all buckets.
func (p *Plan) Elems() int { return len(p.Flat) }

// Slice returns the bucket's window of the flat buffer.
func (p *Plan) Slice(b *Bucket) []float32 { return p.Flat[b.Off : b.Off+b.Len] }

// Gather copies the bucket's parameter gradients into its flat window.
func (p *Plan) Gather(b *Bucket) {
	off := b.Off
	for _, prm := range b.Params {
		off += copy(p.Flat[off:], prm.Grad.Data())
	}
}

// ScatterScale writes the reduced flat window back into the parameter
// gradients, scaled by scale (1/world: the data-parallel average). The
// per-element expression matches ddp.Trainer.Step exactly, keeping
// world=2 training bit-identical to the in-process path.
func (p *Plan) ScatterScale(b *Bucket, scale float32) {
	off := b.Off
	for _, prm := range b.Params {
		g := prm.Grad.Data()
		src := p.Flat[off : off+len(g)]
		for j := range g {
			g[j] = src[j] * scale
		}
		off += len(g)
	}
}

// lastBucketOfGroup[g] is the index just past the final bucket whose
// ReadyGroup <= g — i.e. how many buckets are launchable once group g's
// gradients are final.
func (p *Plan) launchableAfter(group int) int {
	n := 0
	for i := range p.List {
		if p.List[i].ReadyGroup <= group {
			n = i + 1
		}
	}
	return n
}
