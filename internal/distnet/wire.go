// Package distnet trains BERT data-parallel across real worker
// processes connected by TCP sockets — the executable, measurable
// counterpart of both the in-process goroutine simulation (internal/ddp)
// and the analytical multi-device model (internal/dist, the paper's
// Section 5). Rank 0 hosts the rendezvous; workers dial in, exchange a
// rank/world handshake, and build a ring of persistent length-prefixed
// byte streams. Gradients are coalesced into fixed-size buckets and
// ring-all-reduced (reduce-scatter + all-gather, the same chunk math as
// ddp.RingAllReduce); with overlap enabled, each bucket's AllReduce
// launches the moment its last gradient is produced during backward, so
// only communication that outlives backprop is exposed — the D2 bar of
// the paper's Fig. 11, measured instead of modeled.
package distnet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"time"
)

// Wire protocol constants. Every message is a frame:
//
//	[tag u32][seq u32][len u32][len payload bytes]   (little-endian)
//
// Data frames carry float32 chunks; control messages (handshake,
// address table, barrier) use the same framing with string or u32-list
// payloads. Tag identifies the collective (bucket id, probe, barrier),
// seq the ring step within it — both are verified on receive, so a
// desynchronized peer surfaces as a protocol error instead of silently
// corrupted gradients.
const (
	protoVersion = 1

	magicCtrl = 0x44420001 // rendezvous handshake conn
	magicData = 0x44420002 // ring data conn

	frameHeaderBytes = 12

	tagHello   = 0xC0000001 // worker -> rank 0: version, rank, world, listen addr
	tagTable   = 0xC0000002 // rank 0 -> worker: data listener address table
	tagBarrier = 0xC0000003
	tagClock   = 0xC0000004 // clock-offset ping-pong (worker t1 -> rank 0 t2)
	tagShard   = 0xC0000005 // worker -> rank 0: JSON trace shard at end of run
	tagProbe   = 0xF0000000 // probe collectives: tagProbe+i
)

// conn wraps one persistent TCP stream with buffered framing, a reused
// payload scratch, and a per-operation I/O deadline, so a wedged or dead
// peer always surfaces as an error within the deadline instead of a
// hung worker.
type conn struct {
	c       net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	timeout time.Duration
	hdr     [frameHeaderBytes]byte
	buf     []byte // payload scratch, grown on demand

	bytesIn, bytesOut int64
}

func newConn(c net.Conn, timeout time.Duration) *conn {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // lockstep chunk exchange; never wait for Nagle
	}
	return &conn{
		c:       c,
		br:      bufio.NewReaderSize(c, 1<<16),
		bw:      bufio.NewWriterSize(c, 1<<16),
		timeout: timeout,
	}
}

func (c *conn) grow(n int) []byte {
	if cap(c.buf) < n {
		c.buf = make([]byte, n)
	}
	return c.buf[:n]
}

// writeFrame sends one frame whose payload is the little-endian encoding
// of data, using the reused scratch (zero steady-state allocations once
// the scratch has grown to the largest chunk).
func (c *conn) writeFrame(tag, seq uint32, data []float32) error {
	nb := 4 * len(data)
	buf := c.grow(nb)
	for i, v := range data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	return c.writeRaw(tag, seq, buf)
}

func (c *conn) writeRaw(tag, seq uint32, payload []byte) error {
	if err := c.c.SetWriteDeadline(time.Now().Add(c.timeout)); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(c.hdr[0:], tag)
	binary.LittleEndian.PutUint32(c.hdr[4:], seq)
	binary.LittleEndian.PutUint32(c.hdr[8:], uint32(len(payload)))
	if _, err := c.bw.Write(c.hdr[:]); err != nil {
		return err
	}
	if _, err := c.bw.Write(payload); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	n := int64(frameHeaderBytes + len(payload))
	c.bytesOut += n
	txBytes.Add(n)
	return nil
}

// readFrame receives one frame, verifying tag, seq, and payload size.
// The returned bytes alias the conn's scratch and are valid until the
// next read.
func (c *conn) readFrame(tag, seq uint32, elems int) ([]byte, error) {
	payload, gotTag, gotSeq, err := c.readAny()
	if err != nil {
		return nil, err
	}
	if gotTag != tag || gotSeq != seq {
		return nil, fmt.Errorf("distnet: protocol desync: got frame tag %#x seq %d, want %#x seq %d",
			gotTag, gotSeq, tag, seq)
	}
	if len(payload) != 4*elems {
		return nil, fmt.Errorf("distnet: frame tag %#x seq %d carries %d bytes, want %d",
			tag, seq, len(payload), 4*elems)
	}
	return payload, nil
}

// readAny receives the next frame whatever its tag (the handshake path,
// where the expected tag depends on who dialed).
func (c *conn) readAny() (payload []byte, tag, seq uint32, err error) {
	if err := c.c.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
		return nil, 0, 0, err
	}
	if _, err := io.ReadFull(c.br, c.hdr[:]); err != nil {
		return nil, 0, 0, err
	}
	tag = binary.LittleEndian.Uint32(c.hdr[0:])
	seq = binary.LittleEndian.Uint32(c.hdr[4:])
	nb := binary.LittleEndian.Uint32(c.hdr[8:])
	const maxFrame = 1 << 30
	if nb > maxFrame {
		return nil, 0, 0, fmt.Errorf("distnet: implausible frame size %d", nb)
	}
	buf := c.grow(int(nb))
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return nil, 0, 0, err
	}
	n := int64(frameHeaderBytes) + int64(nb)
	c.bytesIn += n
	rxBytes.Add(n)
	return buf, tag, seq, nil
}

func (c *conn) close() error { return c.c.Close() }

// decodeSum adds the frame payload element-wise into dst (the
// reduce-scatter accumulate: dst[i] += recv[i], matching
// ddp.Ring.runRank so world=2 results are bit-identical to the
// in-process trainer).
func decodeSum(dst []float32, payload []byte) {
	for i := range dst {
		dst[i] += math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:]))
	}
}

// decodeCopy overwrites dst with the frame payload (the all-gather
// move).
func decodeCopy(dst []float32, payload []byte) {
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:]))
	}
}
