package distnet

import "fmt"

// ReduceScatter and AllGather are the two halves of the ring AllReduce,
// exposed separately with CALLER-SUPPLIED chunk bounds. The ZeRO-1
// optimizer-state sharding path (internal/memscale) needs bounds aligned
// to parameter-tensor boundaries — rank r owns the parameters in
// buf[bounds[r]:bounds[r+1]] — where AllReduce's internal c·n/D bounds
// would split a tensor between two owners.
//
// bounds must have world+1 non-decreasing entries with bounds[0] == 0 and
// bounds[world] == len(buf), identical on every rank. Both collectives
// run D-1 ring steps with the same send/receive discipline as AllReduce
// (concurrent send and receive per step; one collective in flight per
// Group; errors tear the group down).

// checkBounds validates a caller-supplied chunk partition.
func (g *Group) checkBounds(buf []float32, bounds []int) error {
	if len(bounds) != g.world+1 {
		return fmt.Errorf("distnet: %d bounds for world %d, want %d", len(bounds), g.world, g.world+1)
	}
	if bounds[0] != 0 || bounds[g.world] != len(buf) {
		return fmt.Errorf("distnet: bounds [%d,%d] do not span buffer of %d", bounds[0], bounds[g.world], len(buf))
	}
	for c := 0; c < g.world; c++ {
		if bounds[c] > bounds[c+1] {
			return fmt.Errorf("distnet: bounds not non-decreasing at %d", c)
		}
	}
	return nil
}

// ReduceScatter sums buf element-wise across ranks such that on return
// this rank's own chunk buf[bounds[rank]:bounds[rank+1]] holds the full
// world-wide sum. Other chunks are left holding partial sums and must be
// treated as garbage. At world=2 each element of the owned chunk is one
// float addition — bit-identical to AllReduce's reduced value.
func (g *Group) ReduceScatter(tag uint32, buf []float32, bounds []int) error {
	if g.world == 1 {
		return nil
	}
	if err := g.errNow(); err != nil {
		return err
	}
	if err := g.checkBounds(buf, bounds); err != nil {
		return err
	}
	d := g.world
	chunk := func(c int) []float32 {
		c = ((c % d) + d) % d
		return buf[bounds[c]:bounds[c+1]]
	}
	// Step s sends the chunk reduced in step s-1 and folds the incoming
	// partial into the next one down the ring; after D-1 steps the chunk
	// that has visited every rank — chunk(rank) — rests here.
	for s := 0; s < d-1; s++ {
		seq := uint32(s)
		out := chunk(g.rank - s - 1)
		in := chunk(g.rank - s - 2)
		g.sendAsync(tag, seq, out)
		payload, err := g.prev.readFrame(tag, seq, len(in))
		if err != nil {
			return g.collectFail(tag, countTimeout(deadlineReduce, err))
		}
		decodeSum(in, payload)
		if err := <-g.sendErrCh; err != nil {
			countTimeout(deadlineReduce, err)
			return g.fail(fmt.Errorf("distnet: reducescatter tag %#x send: %w", tag, err))
		}
	}
	return nil
}

// AllGather circulates each rank's own chunk — buf[bounds[rank]:
// bounds[rank+1]] must be filled before the call — so that on return
// every rank holds every chunk. Received bytes are copied verbatim, so a
// value computed on its owner rank arrives everywhere bit-identically.
func (g *Group) AllGather(tag uint32, buf []float32, bounds []int) error {
	if g.world == 1 {
		return nil
	}
	if err := g.errNow(); err != nil {
		return err
	}
	if err := g.checkBounds(buf, bounds); err != nil {
		return err
	}
	d := g.world
	chunk := func(c int) []float32 {
		c = ((c % d) + d) % d
		return buf[bounds[c]:bounds[c+1]]
	}
	// Step s forwards the chunk received in step s-1 (step 0 sends our
	// own); after D-1 steps chunks rank, rank-1, …, rank-(D-1) have all
	// arrived — the full set.
	for s := 0; s < d-1; s++ {
		seq := uint32(s)
		out := chunk(g.rank - s)
		in := chunk(g.rank - s - 1)
		g.sendAsync(tag, seq, out)
		payload, err := g.prev.readFrame(tag, seq, len(in))
		if err != nil {
			return g.collectFail(tag, countTimeout(deadlineGather, err))
		}
		decodeCopy(in, payload)
		if err := <-g.sendErrCh; err != nil {
			countTimeout(deadlineGather, err)
			return g.fail(fmt.Errorf("distnet: allgather tag %#x send: %w", tag, err))
		}
	}
	return nil
}
