package distnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// DefaultTimeout bounds every dial, handshake, and frame I/O when
// Config.Timeout is zero.
const DefaultTimeout = 30 * time.Second

// Config describes one rank's membership in a process group.
type Config struct {
	Rank  int
	World int
	// Addr is rank 0's rendezvous address (host:port). Workers dial it;
	// rank 0 listens on it unless Listener is provided.
	Addr string
	// Listener, when non-nil on rank 0, is the pre-bound rendezvous
	// listener (lets tests and launchers bind ":0" and learn the port
	// before workers join). The group takes ownership and closes it.
	Listener net.Listener
	// Timeout bounds every dial, handshake, read, and write. A peer that
	// dies or wedges surfaces as an error within this bound at every
	// surviving rank. Zero means DefaultTimeout.
	Timeout time.Duration
}

// Group is one rank's view of an established process group: a control
// stream to rank 0 (rank 0 holds one per worker) and two persistent
// ring streams — next (to rank+1) and prev (from rank-1). A world-1
// group has no sockets and all collectives are no-ops.
//
// Collectives (AllReduce, Barrier, ProbeLink) must be issued by all
// ranks in the same order; one collective may be in flight per Group at
// a time. On any transport error the whole group is torn down: every
// conn is closed so peers blocked in reads fail immediately instead of
// waiting out their deadline, and the first error is sticky.
type Group struct {
	rank, world int
	timeout     time.Duration

	next, prev *conn
	ctrl       *conn   // workers: stream to rank 0
	ctrls      []*conn // rank 0: stream per worker, index rank-1

	sendErrCh chan error
	bounds    []int // chunk-boundary scratch, reused across AllReduces

	mu     sync.Mutex
	err    error
	closed bool
}

// Rank returns this member's rank.
func (g *Group) Rank() int { return g.rank }

// World returns the group size.
func (g *Group) World() int { return g.world }

// Join establishes the process group and blocks until the full ring is
// connected or the timeout expires. Rank 0 listens for world-1 worker
// handshakes (verifying agreed world size and unique ranks), broadcasts
// the data-listener address table, and the ranks then dial their ring
// successors directly.
func Join(cfg Config) (*Group, error) {
	if cfg.World < 1 {
		return nil, fmt.Errorf("distnet: world size %d < 1", cfg.World)
	}
	if cfg.Rank < 0 || cfg.Rank >= cfg.World {
		return nil, fmt.Errorf("distnet: rank %d outside [0,%d)", cfg.Rank, cfg.World)
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	g := &Group{
		rank:      cfg.Rank,
		world:     cfg.World,
		timeout:   timeout,
		sendErrCh: make(chan error, 1),
	}
	if cfg.World == 1 {
		if cfg.Listener != nil {
			cfg.Listener.Close()
		}
		return g, nil
	}
	var err error
	if cfg.Rank == 0 {
		err = g.joinRank0(cfg)
	} else {
		err = g.joinWorker(cfg)
	}
	if err != nil {
		countTimeout(deadlineHandshake, err)
		g.Close()
		return nil, err
	}
	return g, nil
}

func (g *Group) joinRank0(cfg Config) error {
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addr)
		if err != nil {
			return fmt.Errorf("distnet: rank 0 listen %s: %w", cfg.Addr, err)
		}
	}
	defer ln.Close()
	deadline := time.Now().Add(g.timeout)
	setListenerDeadline(ln, deadline)

	// Phase 1: collect every worker's hello {version, rank, world,
	// data-listener addr}.
	g.ctrls = make([]*conn, g.world-1)
	addrs := make([]string, g.world)
	addrs[0] = ln.Addr().String()
	for got := 0; got < g.world-1; got++ {
		raw, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("distnet: rank 0 waiting for %d more worker(s): %w", g.world-1-got, err)
		}
		c := newConn(raw, g.timeout)
		payload, tag, _, err := c.readAny()
		if err != nil {
			return fmt.Errorf("distnet: rank 0 handshake read: %w", err)
		}
		if tag != tagHello {
			return fmt.Errorf("distnet: rank 0 expected hello, got frame tag %#x", tag)
		}
		ver, r, w, addr, err := parseHello(payload)
		if err != nil {
			return err
		}
		switch {
		case ver != protoVersion:
			return fmt.Errorf("distnet: worker speaks protocol v%d, rank 0 speaks v%d", ver, protoVersion)
		case w != g.world:
			return fmt.Errorf("distnet: worker rank %d joined with world %d, rank 0 has world %d", r, w, g.world)
		case r < 1 || r >= g.world:
			return fmt.Errorf("distnet: worker rank %d outside [1,%d)", r, g.world)
		case g.ctrls[r-1] != nil:
			return fmt.Errorf("distnet: duplicate rank %d in rendezvous", r)
		}
		g.ctrls[r-1] = c
		addrs[r] = addr
	}

	// Phase 2: broadcast the address table; every rank can now build the
	// ring.
	table := encodeTable(addrs)
	for r, c := range g.ctrls {
		if err := c.writeRaw(tagTable, 0, table); err != nil {
			return fmt.Errorf("distnet: rank 0 sending table to rank %d: %w", r+1, err)
		}
	}

	// Phase 3: ring. Dial the successor, accept the predecessor
	// (rank world-1) on the rendezvous listener.
	var err error
	g.next, err = g.dialRing(addrs[1%g.world], deadline)
	if err != nil {
		return err
	}
	raw, err := ln.Accept()
	if err != nil {
		return fmt.Errorf("distnet: rank 0 waiting for ring predecessor %d: %w", g.world-1, err)
	}
	g.prev = newConn(raw, g.timeout)
	return g.acceptRing(g.prev, g.world-1)
}

func (g *Group) joinWorker(cfg Config) error {
	deadline := time.Now().Add(g.timeout)
	host, _, err := net.SplitHostPort(cfg.Addr)
	if err != nil {
		return fmt.Errorf("distnet: bad rendezvous address %q: %w", cfg.Addr, err)
	}
	// Own data listener on an ephemeral port; the predecessor dials it.
	ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		return fmt.Errorf("distnet: rank %d data listen: %w", g.rank, err)
	}
	defer ln.Close()
	setListenerDeadline(ln, deadline)

	// Hello to rank 0, then wait for the address table.
	raw, err := dialRetry(cfg.Addr, deadline)
	if err != nil {
		return fmt.Errorf("distnet: rank %d dialing rendezvous %s: %w", g.rank, cfg.Addr, err)
	}
	g.ctrl = newConn(raw, g.timeout)
	hello := encodeHello(protoVersion, g.rank, g.world, ln.Addr().String())
	if err := g.ctrl.writeRaw(tagHello, uint32(g.rank), hello); err != nil {
		return fmt.Errorf("distnet: rank %d hello: %w", g.rank, err)
	}
	payload, tag, _, err := g.ctrl.readAny()
	if err != nil {
		return fmt.Errorf("distnet: rank %d waiting for address table (rendezvous rejected the group?): %w", g.rank, err)
	}
	if tag != tagTable {
		return fmt.Errorf("distnet: rank %d expected address table, got frame tag %#x", g.rank, tag)
	}
	addrs, err := decodeTable(payload, g.world)
	if err != nil {
		return err
	}

	// Ring: dial the successor, accept the predecessor.
	g.next, err = g.dialRing(addrs[(g.rank+1)%g.world], deadline)
	if err != nil {
		return err
	}
	rawPrev, err := ln.Accept()
	if err != nil {
		return fmt.Errorf("distnet: rank %d waiting for ring predecessor: %w", g.rank, err)
	}
	g.prev = newConn(rawPrev, g.timeout)
	return g.acceptRing(g.prev, g.rank-1)
}

// dialRing connects to the successor's data listener and identifies
// itself.
func (g *Group) dialRing(addr string, deadline time.Time) (*conn, error) {
	raw, err := dialRetry(addr, deadline)
	if err != nil {
		return nil, fmt.Errorf("distnet: rank %d dialing ring successor %s: %w", g.rank, addr, err)
	}
	c := newConn(raw, g.timeout)
	if err := c.writeRaw(magicData, uint32(g.rank), nil); err != nil {
		return nil, fmt.Errorf("distnet: rank %d ring handshake: %w", g.rank, err)
	}
	return c, nil
}

// acceptRing verifies the inbound ring conn really is the expected
// predecessor.
func (g *Group) acceptRing(c *conn, wantRank int) error {
	payload, tag, seq, err := c.readAny()
	if err != nil {
		return fmt.Errorf("distnet: rank %d ring accept: %w", g.rank, err)
	}
	if tag != magicData || len(payload) != 0 {
		return fmt.Errorf("distnet: rank %d ring accept: unexpected frame tag %#x", g.rank, tag)
	}
	if int(seq) != wantRank {
		return fmt.Errorf("distnet: rank %d ring accept: peer claims rank %d, want %d", g.rank, seq, wantRank)
	}
	return nil
}

// errNow returns the sticky failure, if any.
func (g *Group) errNow() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.err != nil {
		return g.err
	}
	if g.closed {
		return errors.New("distnet: group closed")
	}
	return nil
}

// fail records the first error and tears the group down so every
// in-flight and future operation — here and at blocked peers — returns
// promptly instead of hanging.
func (g *Group) fail(err error) error {
	g.mu.Lock()
	if g.err == nil {
		g.err = err
	}
	err = g.err
	alreadyClosed := g.closed
	g.closed = true
	g.mu.Unlock()
	if !alreadyClosed {
		g.closeConns()
	}
	return err
}

// Close tears down every stream. Idempotent; safe to call concurrently
// with a blocked collective, which will return an error.
func (g *Group) Close() error {
	g.mu.Lock()
	alreadyClosed := g.closed
	g.closed = true
	g.mu.Unlock()
	if !alreadyClosed {
		g.closeConns()
	}
	return nil
}

func (g *Group) closeConns() {
	for _, c := range []*conn{g.next, g.prev, g.ctrl} {
		if c != nil {
			c.close()
		}
	}
	for _, c := range g.ctrls {
		if c != nil {
			c.close()
		}
	}
}

// WireBytes returns the cumulative bytes sent and received on this
// rank's ring streams (frame headers included).
func (g *Group) WireBytes() (tx, rx int64) {
	if g.next != nil {
		tx += g.next.bytesOut
		rx += g.next.bytesIn
	}
	if g.prev != nil {
		tx += g.prev.bytesOut
		rx += g.prev.bytesIn
	}
	return tx, rx
}

// Barrier blocks until every rank has entered it: workers report to
// rank 0 over their control streams and rank 0 releases them. Used to
// keep ranks from tearing the ring down while a peer is mid-collective.
func (g *Group) Barrier() error {
	if g.world == 1 {
		return nil
	}
	if err := g.errNow(); err != nil {
		return err
	}
	if g.rank == 0 {
		for r, c := range g.ctrls {
			if _, err := c.readFrame(tagBarrier, 0, 0); err != nil {
				countTimeout(deadlineBarrier, err)
				return g.fail(fmt.Errorf("distnet: barrier: rank %d did not arrive: %w", r+1, err))
			}
		}
		for r, c := range g.ctrls {
			if err := c.writeRaw(tagBarrier, 1, nil); err != nil {
				countTimeout(deadlineBarrier, err)
				return g.fail(fmt.Errorf("distnet: barrier: releasing rank %d: %w", r+1, err))
			}
		}
		return nil
	}
	if err := g.ctrl.writeRaw(tagBarrier, 0, nil); err != nil {
		countTimeout(deadlineBarrier, err)
		return g.fail(fmt.Errorf("distnet: barrier: %w", err))
	}
	if _, err := g.ctrl.readFrame(tagBarrier, 1, 0); err != nil {
		countTimeout(deadlineBarrier, err)
		return g.fail(fmt.Errorf("distnet: barrier: %w", err))
	}
	return nil
}

func setListenerDeadline(ln net.Listener, t time.Time) {
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(t)
	}
}

// dialRetry dials until success or the deadline: rank 0 may not be
// listening yet when a worker starts (the launcher forks all ranks at
// once), so refusals back off and retry instead of failing the join.
func dialRetry(addr string, deadline time.Time) (net.Conn, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			if lastErr == nil {
				lastErr = errors.New("deadline expired")
			}
			return nil, fmt.Errorf("handshake timeout: %w", lastErr)
		}
		step := 250 * time.Millisecond
		if remaining < step {
			step = remaining
		}
		c, err := net.DialTimeout("tcp", addr, step)
		if err == nil {
			return c, nil
		}
		lastErr = err
		time.Sleep(20 * time.Millisecond)
	}
}

// --- handshake payload encodings -------------------------------------

func encodeHello(version, rank, world int, addr string) []byte {
	b := make([]byte, 12+len(addr))
	binary.LittleEndian.PutUint32(b[0:], uint32(version))
	binary.LittleEndian.PutUint32(b[4:], uint32(rank))
	binary.LittleEndian.PutUint32(b[8:], uint32(world))
	copy(b[12:], addr)
	return b
}

func parseHello(b []byte) (version, rank, world int, addr string, err error) {
	if len(b) < 12 {
		return 0, 0, 0, "", fmt.Errorf("distnet: short hello (%d bytes)", len(b))
	}
	return int(binary.LittleEndian.Uint32(b[0:])),
		int(binary.LittleEndian.Uint32(b[4:])),
		int(binary.LittleEndian.Uint32(b[8:])),
		string(b[12:]), nil
}

func encodeTable(addrs []string) []byte {
	n := 4
	for _, a := range addrs {
		n += 4 + len(a)
	}
	b := make([]byte, 0, n)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(addrs)))
	for _, a := range addrs {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(a)))
		b = append(b, a...)
	}
	return b
}

func decodeTable(b []byte, world int) ([]string, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("distnet: short address table")
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n != world {
		return nil, fmt.Errorf("distnet: address table holds %d ranks, want %d", n, world)
	}
	b = b[4:]
	addrs := make([]string, n)
	for i := range addrs {
		if len(b) < 4 {
			return nil, fmt.Errorf("distnet: truncated address table")
		}
		l := int(binary.LittleEndian.Uint32(b))
		b = b[4:]
		if len(b) < l {
			return nil, fmt.Errorf("distnet: truncated address table")
		}
		addrs[i] = string(b[:l])
		b = b[l:]
	}
	return addrs, nil
}
