package distnet

import (
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"demystbert/internal/data"
	"demystbert/internal/ddp"
	"demystbert/internal/model"
	"demystbert/internal/nn"
	"demystbert/internal/optim"
	"demystbert/internal/profile"
	"demystbert/internal/tensor"
)

// joinWorld stands up a full loopback process group, one goroutine per
// rank, and fails the test if any rank cannot join.
func joinWorld(t *testing.T, world int, timeout time.Duration) []*Group {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	groups := make([]*Group, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := Config{Rank: r, World: world, Addr: addr, Timeout: timeout}
			if r == 0 {
				cfg.Listener = ln
			}
			groups[r], errs[r] = Join(cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d join: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, g := range groups {
			g.Close()
		}
	})
	return groups
}

// allReduceAll runs one collective across every rank concurrently.
func allReduceAll(t *testing.T, groups []*Group, tag uint32, bufs [][]float32) {
	t.Helper()
	errs := make([]error, len(groups))
	var wg sync.WaitGroup
	for r := range groups {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = groups[r].AllReduce(tag, bufs[r])
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d allreduce: %v", r, err)
		}
	}
}

// The TCP ring must produce bit-identical sums to the in-process
// ddp ring: same chunk bounds, same accumulation schedule.
func TestAllReduceMatchesInProcessRing(t *testing.T) {
	rng := tensor.NewRNG(11)
	for _, world := range []int{2, 3, 4} {
		for _, n := range []int{0, 1, 7, 1000, 4096} {
			groups := joinWorld(t, world, 10*time.Second)
			net := make([][]float32, world)
			ref := make([][]float32, world)
			for r := range net {
				net[r] = make([]float32, n)
				ref[r] = make([]float32, n)
				for j := range net[r] {
					v := rng.Float32() - 0.5
					net[r][j] = v
					ref[r][j] = v
				}
			}
			allReduceAll(t, groups, 42, net)
			ddp.RingAllReduce(ref)
			for r := range net {
				for j := range net[r] {
					if net[r][j] != ref[r][j] {
						t.Fatalf("world=%d n=%d rank %d elem %d: tcp %v vs in-process %v",
							world, n, r, j, net[r][j], ref[r][j])
					}
				}
			}
			for _, g := range groups {
				g.Close()
			}
		}
	}
}

func TestAllReduceReusesGroupAcrossCollectives(t *testing.T) {
	groups := joinWorld(t, 2, 10*time.Second)
	for round := 0; round < 5; round++ {
		bufs := [][]float32{{1, 2, 3}, {10, 20, 30}}
		allReduceAll(t, groups, uint32(round), bufs)
		for r := range bufs {
			if bufs[r][0] != 11 || bufs[r][2] != 33 {
				t.Fatalf("round %d rank %d: %v", round, r, bufs[r])
			}
		}
	}
}

func TestBarrierReleasesAllRanks(t *testing.T) {
	groups := joinWorld(t, 3, 10*time.Second)
	for round := 0; round < 3; round++ {
		errs := make([]error, len(groups))
		var wg sync.WaitGroup
		for r := range groups {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				errs[r] = groups[r].Barrier()
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("round %d rank %d barrier: %v", round, r, err)
			}
		}
	}
}

func TestProbeLinkReturnsPlausibleNumbers(t *testing.T) {
	groups := joinWorld(t, 2, 10*time.Second)
	bws := make([]float64, 2)
	lats := make([]time.Duration, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := range groups {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			bws[r], lats[r], errs[r] = groups[r].ProbeLink(1<<16, 2)
		}(r)
	}
	wg.Wait()
	for r := range groups {
		if errs[r] != nil {
			t.Fatalf("rank %d probe: %v", r, errs[r])
		}
		if bws[r] <= 0 || lats[r] <= 0 {
			t.Fatalf("rank %d: bandwidth %v B/s latency %v", r, bws[r], lats[r])
		}
	}
}

func TestPlanBucketsCoversParamsAndRespectsLimits(t *testing.T) {
	cfg := model.Tiny()
	m, err := model.New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	groups := m.GradGroups()
	const bucketBytes = 32 * 1024
	p := PlanBuckets(groups, bucketBytes)

	want := 0
	for _, prm := range m.Params() {
		want += prm.Size()
	}
	if p.Elems() != want {
		t.Fatalf("plan covers %d elems, model has %d", p.Elems(), want)
	}
	seen := map[*nn.Param]bool{}
	off := 0
	lastGroup := 0
	for i := range p.List {
		b := &p.List[i]
		if b.Off != off {
			t.Fatalf("bucket %d starts at %d, want %d (gaps/overlap)", i, b.Off, off)
		}
		off += b.Len
		if b.ReadyGroup < lastGroup {
			t.Fatalf("bucket %d ready group %d regresses below %d", i, b.ReadyGroup, lastGroup)
		}
		lastGroup = b.ReadyGroup
		elems := 0
		for _, prm := range b.Params {
			if seen[prm] {
				t.Fatalf("param %s in two buckets", prm.Name)
			}
			seen[prm] = true
			elems += prm.Size()
		}
		if elems != b.Len {
			t.Fatalf("bucket %d declares %d elems, params hold %d", i, b.Len, elems)
		}
		if 4*b.Len > bucketBytes && len(b.Params) > 1 {
			t.Fatalf("bucket %d is %d bytes with %d params; only single oversize params may exceed the cap",
				i, 4*b.Len, len(b.Params))
		}
	}
	if len(seen) != len(m.Params()) {
		t.Fatalf("buckets hold %d params, model has %d", len(seen), len(m.Params()))
	}
	if len(p.List) <= len(groups) {
		t.Fatalf("32KB cap should split Tiny's groups: got %d buckets for %d groups", len(p.List), len(groups))
	}

	// <=0 bucket size: one bucket per ready group.
	if got := len(PlanBuckets(groups, 0).List); got != len(groups) {
		t.Fatalf("bucketBytes<=0: %d buckets for %d groups", got, len(groups))
	}
}

// runTrainWorld runs distnet.Train across `world` loopback ranks and
// returns each rank's result and final model.
func runTrainWorld(t *testing.T, world, steps, bucketBytes int, overlap bool, seed uint64) ([]*Result, []*model.BERT) {
	return runTrainWorldCfg(t, model.Tiny(), world, steps, bucketBytes, overlap, seed, false)
}

func runTrainWorldCfg(t *testing.T, cfg model.Config, world, steps, bucketBytes int, overlap bool, seed uint64, fixedData bool) ([]*Result, []*model.BERT) {
	t.Helper()
	addr := ""
	var ln net.Listener
	if world > 1 {
		var err error
		ln, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr = ln.Addr().String()
	}
	results := make([]*Result, world)
	models := make([]*model.BERT, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tc := TrainConfig{
				Rank: r, World: world, Addr: addr, Timeout: 20 * time.Second,
				Model: cfg, Seed: seed, Steps: steps, B: 2, N: 16,
				BucketBytes: bucketBytes, Overlap: overlap, FixedData: fixedData,
			}
			if r == 0 {
				tc.Listener = ln
			}
			results[r], models[r], errs[r] = Train(tc)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d train: %v", r, err)
		}
	}
	return results, models
}

func paramsBitEqual(t *testing.T, label string, a, b *model.BERT) {
	t.Helper()
	ap, bp := a.Params(), b.Params()
	if len(ap) != len(bp) {
		t.Fatalf("%s: param count %d vs %d", label, len(ap), len(bp))
	}
	for i := range ap {
		av, bv := ap[i].Value.Data(), bp[i].Value.Data()
		for j := range av {
			if av[j] != bv[j] {
				t.Fatalf("%s: %s[%d]: %v vs %v (bitwise divergence)",
					label, ap[i].Name, j, av[j], bv[j])
			}
		}
	}
}

// The cross-process-shaped satellite: world=2 loopback training must be
// bit-identical to the in-process ddp trainer on the same seeds and data
// schedule, identical across ranks, identical with and without overlap,
// and reproducible run-to-run. world=1 must match plain serial training.
func TestTrainWorld2BitwiseMatchesDDPAndSerial(t *testing.T) {
	const seed, steps, bucketBytes = 7, 3, 32 * 1024
	cfg := model.Tiny()

	// In-process ddp baseline on the identical data schedule.
	ddpTr, err := ddp.NewTrainer(cfg, 2, seed)
	if err != nil {
		t.Fatal(err)
	}
	defer ddpTr.Close()
	gen := data.NewGenerator(cfg.Vocab, 0.15, seed+1000003)
	var ddpLosses []float64
	for s := 0; s < steps; s++ {
		losses, err := ddpTr.Step([]*data.Batch{gen.Next(2, 16), gen.Next(2, 16)})
		if err != nil {
			t.Fatal(err)
		}
		ddpLosses = append(ddpLosses, losses...)
	}

	resOv, modelsOv := runTrainWorld(t, 2, steps, bucketBytes, true, seed)
	if resOv[0].Buckets < 3 {
		t.Fatalf("expected multiple buckets at %dB, got %d", bucketBytes, resOv[0].Buckets)
	}
	for s := 0; s < steps; s++ {
		for r := 0; r < 2; r++ {
			if got, want := resOv[r].Losses[s], ddpLosses[2*s+r]; got != want {
				t.Fatalf("step %d rank %d loss %v, ddp replica loss %v", s, r, got, want)
			}
		}
	}
	paramsBitEqual(t, "rank1 vs rank0", modelsOv[1], modelsOv[0])
	paramsBitEqual(t, "distnet vs ddp", modelsOv[0], ddpTr.Replicas[0])

	// Overlap must change timing only, never numerics.
	_, modelsSeq := runTrainWorld(t, 2, steps, bucketBytes, false, seed)
	paramsBitEqual(t, "overlap vs sequential", modelsOv[0], modelsSeq[0])

	// Run-to-run determinism.
	_, modelsAgain := runTrainWorld(t, 2, steps, bucketBytes, true, seed)
	paramsBitEqual(t, "run 1 vs run 2", modelsOv[0], modelsAgain[0])

	// world=1 must equal plain serial training (no sync, no averaging).
	_, models1 := runTrainWorld(t, 1, steps, bucketBytes, true, seed)
	serial, err := model.New(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &nn.Ctx{Prof: profile.New(), RNG: tensor.NewRNG(seed), Train: true}
	opt := optim.NewLAMB(0.01)
	sgen := data.NewGenerator(cfg.Vocab, 0.15, seed+1000003)
	for s := 0; s < steps; s++ {
		b := sgen.Next(2, 16)
		ctx.Prof.BeginIteration()
		serial.Forward(ctx, b)
		serial.Backward(ctx)
		opt.Step(ctx, serial.Params())
		serial.ZeroGrads()
	}
	paramsBitEqual(t, "world=1 vs serial", models1[0], serial)
}

func TestTrainLossDecreases(t *testing.T) {
	cfg := model.Tiny()
	cfg.DropProb = 0
	res, _ := runTrainWorldCfg(t, cfg, 2, 6, 64*1024, true, 21, true)
	for _, r := range res {
		first, last := r.Losses[0], r.Losses[len(r.Losses)-1]
		if !(last < first) || math.IsNaN(last) {
			t.Fatalf("rank %d loss did not fall: %v -> %v", r.Rank, first, last)
		}
		if r.CommMS <= 0 || r.WireBytesPerStep <= 0 {
			t.Fatalf("rank %d: missing comm accounting: comm %vms wire %dB", r.Rank, r.CommMS, r.WireBytesPerStep)
		}
	}
}

// --- robustness -------------------------------------------------------

// A rank dying mid-all-reduce must surface as an error at every
// surviving rank, promptly — not a hung worker.
func TestPeerDeathMidAllReduceFailsSurvivors(t *testing.T) {
	const world, n, killAt = 3, 1 << 14, 3
	groups := joinWorld(t, world, 3*time.Second)
	bufs := make([][]float32, world)
	for r := range bufs {
		bufs[r] = make([]float32, n)
	}
	errs := make([]error, world)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			g := groups[r]
			for i := 0; i < 1000; i++ {
				if r == world-1 && i == killAt {
					g.Close() // simulated crash: sockets torn down mid-protocol
					return
				}
				if errs[r] = g.AllReduce(uint32(i), bufs[r]); errs[r] != nil {
					return
				}
			}
		}(r)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("survivors hung after peer death; errors must surface within the deadline")
	}
	for r := 0; r < world-1; r++ {
		if errs[r] == nil {
			t.Fatalf("rank %d saw no error after peer death", r)
		}
	}
	// The group is poisoned: later collectives fail immediately.
	if err := groups[0].AllReduce(9999, bufs[0]); err == nil {
		t.Fatal("failed group accepted a new collective")
	}
}

// Rank 0 with absent workers must give up at the handshake deadline.
func TestHandshakeTimeoutRank0(t *testing.T) {
	start := time.Now()
	_, err := Join(Config{Rank: 0, World: 2, Addr: "127.0.0.1:0", Timeout: 700 * time.Millisecond})
	if err == nil {
		t.Fatal("rank 0 joined a group nobody else entered")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("rank 0 took %v to time out", elapsed)
	}
}

// A worker dialing a dead rendezvous must give up at the deadline.
func TestHandshakeTimeoutWorker(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here anymore
	start := time.Now()
	_, err = Join(Config{Rank: 1, World: 2, Addr: addr, Timeout: 700 * time.Millisecond})
	if err == nil {
		t.Fatal("worker joined a dead rendezvous")
	}
	if !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("want a timeout error, got: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("worker took %v to time out", elapsed)
	}
}

// Duplicate ranks must be rejected at rendezvous, with every
// participant — including the impostor — getting an error.
func TestDuplicateRankRejected(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ranks := []int{0, 1, 1} // world 3, rank 2 never shows; rank 1 twice
	errs := make([]error, len(ranks))
	var wg sync.WaitGroup
	for i, r := range ranks {
		wg.Add(1)
		go func(i, r int) {
			defer wg.Done()
			cfg := Config{Rank: r, World: 3, Addr: addr, Timeout: 2 * time.Second}
			if i == 0 {
				cfg.Listener = ln
			}
			_, errs[i] = Join(cfg)
		}(i, r)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("participant %d (rank %d) joined despite duplicate ranks", i, ranks[i])
		}
	}
	if !strings.Contains(errs[0].Error(), "duplicate rank") {
		t.Fatalf("rank 0 error should name the duplicate, got: %v", errs[0])
	}
}

// World-size disagreement is a config bug; fail fast everywhere.
func TestWorldSizeMismatchRejected(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, errs[0] = Join(Config{Rank: 0, World: 2, Addr: addr, Listener: ln, Timeout: 2 * time.Second})
	}()
	go func() {
		defer wg.Done()
		_, errs[1] = Join(Config{Rank: 1, World: 3, Addr: addr, Timeout: 2 * time.Second})
	}()
	wg.Wait()
	if errs[0] == nil || errs[1] == nil {
		t.Fatalf("world mismatch accepted: rank0=%v rank1=%v", errs[0], errs[1])
	}
	if !strings.Contains(errs[0].Error(), "world") {
		t.Fatalf("rank 0 error should mention world size, got: %v", errs[0])
	}
}

func TestJoinValidatesConfig(t *testing.T) {
	if _, err := Join(Config{Rank: 0, World: 0}); err == nil {
		t.Fatal("world 0 accepted")
	}
	if _, err := Join(Config{Rank: 2, World: 2, Addr: "127.0.0.1:1"}); err == nil {
		t.Fatal("rank out of range accepted")
	}
	// world=1 needs no sockets at all.
	g, err := Join(Config{Rank: 0, World: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	buf := []float32{1, 2, 3}
	if err := g.AllReduce(0, buf); err != nil || buf[0] != 1 {
		t.Fatalf("world-1 allreduce must be identity: %v %v", buf, err)
	}
	if err := g.Barrier(); err != nil {
		t.Fatal(err)
	}
}
