package distnet

import (
	"math"
	"sync"
	"testing"
	"time"
)

// runCollective issues f concurrently on every rank and fails on error.
func runCollective(t *testing.T, groups []*Group, f func(g *Group) error) {
	t.Helper()
	errs := make([]error, len(groups))
	var wg sync.WaitGroup
	for r := range groups {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = f(groups[r])
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// paramBounds builds an uneven, tensor-aligned partition of n elements.
func unevenBounds(world, n int) []int {
	bounds := make([]int, world+1)
	for c := 1; c < world; c++ {
		// Deliberately uneven: first chunks smaller.
		bounds[c] = c * n / (world + 1)
	}
	bounds[world] = n
	return bounds
}

func TestReduceScatterOwnChunkMatchesSum(t *testing.T) {
	for _, world := range []int{2, 3} {
		groups := joinWorld(t, world, 5*time.Second)
		const n = 103
		bounds := unevenBounds(world, n)
		bufs := make([][]float32, world)
		for r := range bufs {
			bufs[r] = make([]float32, n)
			for i := range bufs[r] {
				// Small integers: float addition is exact in any order, so
				// the expected sums hold at any world size.
				bufs[r][i] = float32((r+1)*(i%7) - r)
			}
		}
		want := make([]float32, n)
		for i := 0; i < n; i++ {
			for r := 0; r < world; r++ {
				want[i] += float32((r+1)*(i%7) - r)
			}
		}
		runCollective(t, groups, func(g *Group) error {
			return g.ReduceScatter(0x1001, bufs[g.Rank()], bounds)
		})
		for r := 0; r < world; r++ {
			for i := bounds[r]; i < bounds[r+1]; i++ {
				if bufs[r][i] != want[i] {
					t.Fatalf("world %d rank %d elem %d: %v, want %v", world, r, i, bufs[r][i], want[i])
				}
			}
		}
	}
}

func TestAllGatherDistributesEveryChunk(t *testing.T) {
	for _, world := range []int{2, 3} {
		groups := joinWorld(t, world, 5*time.Second)
		const n = 77
		bounds := unevenBounds(world, n)
		bufs := make([][]float32, world)
		for r := range bufs {
			bufs[r] = make([]float32, n)
			for i := bounds[r]; i < bounds[r+1]; i++ {
				bufs[r][i] = float32(100*r) + float32(i)*0.5
			}
		}
		runCollective(t, groups, func(g *Group) error {
			return g.AllGather(0x1002, bufs[g.Rank()], bounds)
		})
		for r := 0; r < world; r++ {
			for c := 0; c < world; c++ {
				for i := bounds[c]; i < bounds[c+1]; i++ {
					want := float32(100*c) + float32(i)*0.5
					if math.Float32bits(bufs[r][i]) != math.Float32bits(want) {
						t.Fatalf("world %d rank %d chunk %d elem %d: %v, want %v", world, r, c, i, bufs[r][i], want)
					}
				}
			}
		}
	}
}

// TestReduceScatterAllGatherComposesToAllReduce pins the ZeRO-1 update
// path's transport at world 2: reduce-scatter + all-gather over the same
// bounds must leave every rank bitwise identical to one AllReduce — each
// element is the same single two-operand float addition, copied verbatim
// on the gather.
func TestReduceScatterAllGatherComposesToAllReduce(t *testing.T) {
	const world, n = 2, 91
	groups := joinWorld(t, world, 5*time.Second)
	bounds := unevenBounds(world, n)

	mk := func(r int) []float32 {
		buf := make([]float32, n)
		for i := range buf {
			buf[i] = float32(math.Sin(float64(i*(r+3)))) * 1.7
		}
		return buf
	}
	composed := [][]float32{mk(0), mk(1)}
	reference := [][]float32{mk(0), mk(1)}

	runCollective(t, groups, func(g *Group) error {
		r := g.Rank()
		if err := g.ReduceScatter(0x2001, composed[r], bounds); err != nil {
			return err
		}
		return g.AllGather(0x2002, composed[r], bounds)
	})
	runCollective(t, groups, func(g *Group) error {
		return g.AllReduce(0x2003, reference[g.Rank()])
	})

	for r := 0; r < world; r++ {
		for i := 0; i < n; i++ {
			if math.Float32bits(composed[r][i]) != math.Float32bits(reference[r][i]) {
				t.Fatalf("rank %d elem %d: composed %v != allreduce %v", r, i, composed[r][i], reference[r][i])
			}
		}
	}
}

func TestCollectivesRejectBadBounds(t *testing.T) {
	groups := joinWorld(t, 2, 5*time.Second)
	buf := make([]float32, 10)
	cases := [][]int{
		{0, 10},        // too few entries
		{0, 4, 8},      // does not span the buffer
		{1, 5, 10},     // does not start at 0
		{0, 8, 10, 10}, // too many entries
	}
	for _, bounds := range cases {
		if err := groups[0].ReduceScatter(0x3001, buf, bounds); err == nil {
			t.Fatalf("ReduceScatter accepted bad bounds %v", bounds)
		}
		if err := groups[0].AllGather(0x3002, buf, bounds); err == nil {
			t.Fatalf("AllGather accepted bad bounds %v", bounds)
		}
	}
}
