package kernels

import (
	"fmt"
	"sync"
)

// The element-wise kernels correspond to the paper's non-GEMM operations
// (Section 3.2.3): each performs at most a handful of operations per
// element read, so they are memory-bandwidth bound on real accelerators.

func checkSameLen(name string, xs ...[]float32) int {
	n := len(xs[0])
	for _, x := range xs[1:] {
		if len(x) != n {
			panic(fmt.Sprintf("kernels: %s length mismatch: %d vs %d", name, n, len(x)))
		}
	}
	return n
}

// Add computes dst[i] = a[i] + b[i].
func Add(dst, a, b []float32) {
	checkSameLen("Add", dst, a, b)
	parallelFor(len(dst), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = a[i] + b[i]
		}
	})
}

// AccumulateInto computes dst[i] += a[i], the gradient-accumulation
// primitive.
func AccumulateInto(dst, a []float32) {
	checkSameLen("AccumulateInto", dst, a)
	parallelFor(len(dst), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] += a[i]
		}
	})
}

// Mul computes dst[i] = a[i] * b[i].
func Mul(dst, a, b []float32) {
	checkSameLen("Mul", dst, a, b)
	parallelFor(len(dst), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = a[i] * b[i]
		}
	})
}

// Scale computes dst[i] = s * a[i]. This is the attention-score
// normalization kernel (multiply by 1/sqrt(d_model/h)).
func Scale(dst, a []float32, s float32) {
	checkSameLen("Scale", dst, a)
	parallelFor(len(dst), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = s * a[i]
		}
	})
}

// addBiasGrain is the element-range chunk AddBias hands to the pool:
// 16 KiB of float32 per chunk, coarse enough to amortize dispatch on a
// bandwidth-bound kernel.
const addBiasGrain = 4096

// addBiasState is AddBias's pooled dispatch body. Work items are flattened
// element ranges rather than whole rows, so short-and-wide activations
// (m below the worker count — e.g. per-head attention tails) still spread
// across the pool instead of capping parallelism at m.
type addBiasState struct {
	x, bias []float32
	n       int
}

func (s *addBiasState) runRange(lo, hi int) {
	for i := lo; i < hi; {
		j := i % s.n
		end := min(hi, i-j+s.n) // clip the segment to its row boundary
		row := s.x[i:end]
		b := s.bias[j : j+len(row)]
		for k := range row {
			row[k] += b[k]
		}
		i = end
	}
}

var addBiasPool = sync.Pool{New: func() any { return new(addBiasState) }}

// AddBias adds a length-n bias vector to every row of an m×n matrix in
// place. (The GEMM epilogue engine fuses this into the tile write-back on
// the fast paths — this standalone kernel remains the unfused reference
// and serves the sites without a producing GEMM.)
func AddBias(x []float32, bias []float32, m, n int) {
	if len(x) != m*n || len(bias) != n {
		panic(fmt.Sprintf("kernels: AddBias dims x=%d bias=%d m=%d n=%d", len(x), len(bias), m, n))
	}
	s := addBiasPool.Get().(*addBiasState)
	s.x, s.bias, s.n = x, bias, n
	parallelRun(m*n, addBiasGrain, s)
	s.x, s.bias = nil, nil
	addBiasPool.Put(s)
}

// biasGradChunk is the column-band width of BiasGrad's row-major sweep —
// wide enough for contiguous vectorizable loads, small enough that each
// band's accumulator lives on the stack.
const biasGradChunk = 64

// biasGradState is BiasGrad's pooled dispatch body: work items are
// disjoint column ranges (so concurrent writes to dBias never collide),
// but within a band the matrix is swept row-major, turning the naive
// kernel's stride-n single-float column walks into contiguous loads. The
// band accumulator is seeded from the existing dBias and the per-column
// accumulation order stays i = 0..m-1, so the result is bitwise identical
// to a serial column-at-a-time continuation fold — and splitting the rows
// across calls (gradient accumulation) matches one call bitwise.
type biasGradState struct {
	dBias, dY []float32
	m, n      int
}

func (s *biasGradState) runRange(lo, hi int) {
	var acc [biasGradChunk]float32
	for j0 := lo; j0 < hi; j0 += biasGradChunk {
		w := min(biasGradChunk, hi-j0)
		a := acc[:w]
		out := s.dBias[j0 : j0+w]
		copy(a, out)
		for i := 0; i < s.m; i++ {
			row := s.dY[i*s.n+j0 : i*s.n+j0+w]
			for k, v := range row {
				a[k] += v
			}
		}
		copy(out, a)
	}
}

var biasGradPool = sync.Pool{New: func() any { return new(biasGradState) }}

// BiasGrad accumulates the column sums of an m×n gradient matrix into
// dBias (the backward pass of AddBias).
func BiasGrad(dBias []float32, dY []float32, m, n int) {
	if len(dY) != m*n || len(dBias) != n {
		panic(fmt.Sprintf("kernels: BiasGrad dims dY=%d dBias=%d m=%d n=%d", len(dY), len(dBias), m, n))
	}
	s := biasGradPool.Get().(*biasGradState)
	s.dBias, s.dY, s.m, s.n = dBias, dY, m, n
	// Grain = band width so ranges land on band boundaries.
	parallelRun(n, biasGradChunk, s)
	s.dBias, s.dY = nil, nil
	biasGradPool.Put(s)
}

// MaskAdd computes dst[i] = a[i] + mask[i]. BERT's attention mask is
// additive: masked positions carry a large negative value so that softmax
// sends them to zero.
func MaskAdd(dst, a, mask []float32) {
	checkSameLen("MaskAdd", dst, a, mask)
	parallelFor(len(dst), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = a[i] + mask[i]
		}
	})
}

// ScaleMaskSoftmaxFused applies scale, additive mask, and row softmax in a
// single pass over batch rows of length n. It is the fused counterpart of
// the Scale → MaskAdd → Softmax kernel sequence, used by the kernel-fusion
// study (Section 6.1.1): one read and one write of the activation instead
// of three of each.
func ScaleMaskSoftmaxFused(dst, a, mask []float32, s float32, rows, n int) {
	if len(a) != rows*n || len(dst) != rows*n || len(mask) != rows*n {
		panic("kernels: ScaleMaskSoftmaxFused dims mismatch")
	}
	parallelFor(rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			in := a[r*n : (r+1)*n]
			mk := mask[r*n : (r+1)*n]
			out := dst[r*n : (r+1)*n]
			for i := range out {
				out[i] = s*in[i] + mk[i]
			}
			softmaxRow(out, out)
		}
	})
}

// ScaleMaskSoftmaxAttention is the fused attention-score pipeline over a
// [B·h, n, n] score tensor: scale, broadcast additive key mask
// (keyMask: [B, n], may be nil), optional causal masking of future
// positions (decoder-style attention, Section 2.3), and row softmax — all
// in one pass, against the unfused four-kernel sequence.
func ScaleMaskSoftmaxAttention(dst, scores []float32, keyMask []float32, s float32, causal bool, b, h, n int) {
	rows := b * h * n
	if len(scores) != rows*n || len(dst) != rows*n {
		panic(fmt.Sprintf("kernels: ScaleMaskSoftmaxAttention dims scores=%d want %d", len(scores), rows*n))
	}
	if keyMask != nil && len(keyMask) != b*n {
		panic(fmt.Sprintf("kernels: ScaleMaskSoftmaxAttention keyMask=%d want %d", len(keyMask), b*n))
	}
	const negInf = float32(-1e9)
	parallelFor(rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			q := r % n           // query position
			batch := r / (h * n) // sequence index
			in := scores[r*n : (r+1)*n]
			out := dst[r*n : (r+1)*n]
			if keyMask != nil {
				mk := keyMask[batch*n : (batch+1)*n]
				for i := range out {
					out[i] = s*in[i] + mk[i]
				}
			} else {
				for i := range out {
					out[i] = s * in[i]
				}
			}
			if causal {
				for i := q + 1; i < n; i++ {
					out[i] = negInf
				}
			}
			softmaxRow(out, out)
		}
	})
}
