package kernels

// Canonical algorithmic cost formulas shared by the real-engine profiler
// and the analytical operator graph (internal/opgraph), so both substrates
// report identical FLOP counts and byte traffic for the same operator.
//
// Byte traffic is the algorithmic minimum: each operand read once and each
// output written once at the element size of the active precision. This is
// the quantity the paper's arithmetic-intensity analysis (Section 2.6,
// Fig. 6–7) is defined over.

// GEMMFLOPs returns the multiply-add operation count of an M×N×K GEMM,
// counted as 2·M·N·K (one multiply + one add per MAC), the convention the
// paper and vendor datasheets use.
func GEMMFLOPs(m, n, k int) int64 {
	return 2 * int64(m) * int64(n) * int64(k)
}

// GEMMBytes returns the algorithmic byte traffic of an M×N×K GEMM at the
// given element size: read A (M·K) and B (K·N), write C (M·N).
func GEMMBytes(m, n, k int, elemSize int) int64 {
	return int64(elemSize) * (int64(m)*int64(k) + int64(k)*int64(n) + int64(m)*int64(n))
}

// GEMMIntensity returns the arithmetic intensity (FLOPs per byte) of an
// M×N×K GEMM, the quantity plotted in Fig. 6.
func GEMMIntensity(m, n, k int, elemSize int) float64 {
	return float64(GEMMFLOPs(m, n, k)) / float64(GEMMBytes(m, n, k, elemSize))
}

// EWFLOPs returns the operation count of an element-wise kernel over n
// elements performing opsPerElem operations each.
func EWFLOPs(n int, opsPerElem int) int64 {
	return int64(n) * int64(opsPerElem)
}

// EWBytes returns the byte traffic of an element-wise kernel with the
// given numbers of input and output arrays of n elements each.
func EWBytes(n int, inputs, outputs int, elemSize int) int64 {
	return int64(n) * int64(inputs+outputs) * int64(elemSize)
}
