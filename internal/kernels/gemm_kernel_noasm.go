//go:build !amd64

package kernels

// useSIMDKernel is a no-op on platforms without an assembly micro-kernel;
// the portable scalar kernel stays active.
func useSIMDKernel() bool { return false }
