#include "textflag.h"

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func sgemmKernel6x16(kc int64, a, b, c *float32, ldc int64)
//
// C[0:6][0:16] += Apanel·Bpanel over kc packed depth steps, computed as a
// continuation fold: the accumulator tile is SEEDED from C before the
// depth loop and plain-stored afterwards, so splitting the depth range
// across multiple kernel invocations yields bitwise-identical results to
// one invocation over the whole range (the gradient-accumulation
// equivalence in internal/audit depends on this).
// a: packed 6-row micro-panel, 6 floats per depth step (alpha pre-folded).
// b: packed 16-column micro-panel, 16 floats per depth step.
// c: row-major, stride ldc floats.
//
// Register plan: Y0-Y11 hold the 6×16 accumulator tile (two 8-lane vectors
// per row), Y12/Y13 the current B vectors, Y14/Y15 broadcast A elements.
// 12 FMAs per depth step; B feeds from L1, A from L2.
TEXT ·sgemmKernel6x16(SB), NOSPLIT, $0-40
	MOVQ kc+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ c+24(FP), DI
	MOVQ ldc+32(FP), R8
	SHLQ $2, R8                 // row stride in bytes

	// Seed the accumulator tile from C, row by row.
	MOVQ    DI, R9
	VMOVUPS (R9), Y0
	VMOVUPS 32(R9), Y1
	ADDQ    R8, R9
	VMOVUPS (R9), Y2
	VMOVUPS 32(R9), Y3
	ADDQ    R8, R9
	VMOVUPS (R9), Y4
	VMOVUPS 32(R9), Y5
	ADDQ    R8, R9
	VMOVUPS (R9), Y6
	VMOVUPS 32(R9), Y7
	ADDQ    R8, R9
	VMOVUPS (R9), Y8
	VMOVUPS 32(R9), Y9
	ADDQ    R8, R9
	VMOVUPS (R9), Y10
	VMOVUPS 32(R9), Y11

kloop:
	VMOVUPS (DX), Y12
	VMOVUPS 32(DX), Y13
	VBROADCASTSS (SI), Y14
	VBROADCASTSS 4(SI), Y15
	VFMADD231PS Y12, Y14, Y0
	VFMADD231PS Y13, Y14, Y1
	VFMADD231PS Y12, Y15, Y2
	VFMADD231PS Y13, Y15, Y3
	VBROADCASTSS 8(SI), Y14
	VBROADCASTSS 12(SI), Y15
	VFMADD231PS Y12, Y14, Y4
	VFMADD231PS Y13, Y14, Y5
	VFMADD231PS Y12, Y15, Y6
	VFMADD231PS Y13, Y15, Y7
	VBROADCASTSS 16(SI), Y14
	VBROADCASTSS 20(SI), Y15
	VFMADD231PS Y12, Y14, Y8
	VFMADD231PS Y13, Y14, Y9
	VFMADD231PS Y12, Y15, Y10
	VFMADD231PS Y13, Y15, Y11
	ADDQ $24, SI
	ADDQ $64, DX
	DECQ CX
	JNZ  kloop

	// Write the folded tile back to C, row by row (seeded at entry, so
	// plain stores — no read-add here).
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	ADDQ    R8, DI
	VMOVUPS Y2, (DI)
	VMOVUPS Y3, 32(DI)
	ADDQ    R8, DI
	VMOVUPS Y4, (DI)
	VMOVUPS Y5, 32(DI)
	ADDQ    R8, DI
	VMOVUPS Y6, (DI)
	VMOVUPS Y7, 32(DI)
	ADDQ    R8, DI
	VMOVUPS Y8, (DI)
	VMOVUPS Y9, 32(DI)
	ADDQ    R8, DI
	VMOVUPS Y10, (DI)
	VMOVUPS Y11, 32(DI)
	VZEROUPPER
	RET

// func igemmKernel4x16(kg int64, a *uint8, b *int8, acc *int32)
//
// Int8 4x16 micro-kernel: acc[4][16] (row-major int32, overwritten) =
// sum over kg depth groups of the u8 x s8 products. a holds kg groups of
// 16 bytes (row r, depth d at r*4+d); b holds kg groups of 64 bytes
// (column j, depth d at j*4+d). Per group and row: VPBROADCASTD smears
// the row's 4 activation bytes across a lane, VPMADDUBSW forms pairwise
// u8*s8 sums in i16 (safe: weights are clamped to +-63 so 255*63*2 fits
// i16), and VPMADDWD with an all-ones i16 vector widens adjacent pairs
// into the i32 accumulators.
//
// Register plan: Y0-Y7 accumulators (row r in Y{2r} cols 0-7, Y{2r+1}
// cols 8-15), Y12 = i16 ones, Y13/Y14 = B group halves, Y15 = broadcast
// A, Y11 = scratch.
TEXT ·igemmKernel4x16(SB), NOSPLIT, $0-32
	MOVQ kg+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ acc+24(FP), DI

	VPCMPEQW Y12, Y12, Y12
	VPSRLW   $15, Y12, Y12

	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	VPXOR Y4, Y4, Y4
	VPXOR Y5, Y5, Y5
	VPXOR Y6, Y6, Y6
	VPXOR Y7, Y7, Y7

	TESTQ CX, CX
	JZ    i8store

i8loop:
	VMOVDQU (DX), Y13
	VMOVDQU 32(DX), Y14

	VPBROADCASTD (SI), Y15
	VPMADDUBSW   Y13, Y15, Y11
	VPMADDWD     Y12, Y11, Y11
	VPADDD       Y11, Y0, Y0
	VPMADDUBSW   Y14, Y15, Y11
	VPMADDWD     Y12, Y11, Y11
	VPADDD       Y11, Y1, Y1

	VPBROADCASTD 4(SI), Y15
	VPMADDUBSW   Y13, Y15, Y11
	VPMADDWD     Y12, Y11, Y11
	VPADDD       Y11, Y2, Y2
	VPMADDUBSW   Y14, Y15, Y11
	VPMADDWD     Y12, Y11, Y11
	VPADDD       Y11, Y3, Y3

	VPBROADCASTD 8(SI), Y15
	VPMADDUBSW   Y13, Y15, Y11
	VPMADDWD     Y12, Y11, Y11
	VPADDD       Y11, Y4, Y4
	VPMADDUBSW   Y14, Y15, Y11
	VPMADDWD     Y12, Y11, Y11
	VPADDD       Y11, Y5, Y5

	VPBROADCASTD 12(SI), Y15
	VPMADDUBSW   Y13, Y15, Y11
	VPMADDWD     Y12, Y11, Y11
	VPADDD       Y11, Y6, Y6
	VPMADDUBSW   Y14, Y15, Y11
	VPMADDWD     Y12, Y11, Y11
	VPADDD       Y11, Y7, Y7

	ADDQ $16, SI
	ADDQ $64, DX
	DECQ CX
	JNZ  i8loop

i8store:
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	VMOVDQU Y2, 64(DI)
	VMOVDQU Y3, 96(DI)
	VMOVDQU Y4, 128(DI)
	VMOVDQU Y5, 160(DI)
	VMOVDQU Y6, 192(DI)
	VMOVDQU Y7, 224(DI)
	VZEROUPPER
	RET
