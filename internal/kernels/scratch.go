package kernels

import "sync"

// f32Scratch hands out reusable float32 buffers for GEMM pack panels.
// Buffers are rounded up to coarse size classes so steady-state training —
// which issues the same GEMM shapes every iteration — does zero per-call
// allocation after warm-up.
var f32Scratch = sync.Pool{New: func() any { return new([]float32) }}

const scratchRound = 1 << 12 // round capacities to 4096 floats (16 KiB)

// getScratch returns a buffer of length n (contents undefined).
func getScratch(n int) *[]float32 {
	s := f32Scratch.Get().(*[]float32)
	if cap(*s) < n {
		*s = make([]float32, (n+scratchRound-1)&^(scratchRound-1))
	}
	*s = (*s)[:n]
	return s
}

func putScratch(s *[]float32) { f32Scratch.Put(s) }

// u8Scratch hands out reusable byte buffers for the int8 GEMM engine's
// quantized-activation panels, with the same coarse size-class rounding as
// the float pool.
var u8Scratch = sync.Pool{New: func() any { return new([]uint8) }}

// getScratchU8 returns a byte buffer of length n (contents undefined).
func getScratchU8(n int) *[]uint8 {
	s := u8Scratch.Get().(*[]uint8)
	if cap(*s) < n {
		*s = make([]uint8, (n+scratchRound-1)&^(scratchRound-1))
	}
	*s = (*s)[:n]
	return s
}

func putScratchU8(s *[]uint8) { u8Scratch.Put(s) }
