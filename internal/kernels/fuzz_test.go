package kernels

import (
	"math"
	"testing"
)

// FuzzSoftmax: for any row content, output must be a probability
// distribution and never NaN for finite inputs.
func FuzzSoftmax(f *testing.F) {
	f.Add(float32(0), float32(1), float32(-1), float32(1000))
	f.Fuzz(func(t *testing.T, a, b, c, d float32) {
		in := []float32{a, b, c, d}
		for _, v := range in {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return
			}
		}
		out := make([]float32, 4)
		Softmax(out, in, 1, 4)
		var sum float64
		for _, v := range out {
			if math.IsNaN(float64(v)) || v < 0 {
				t.Fatalf("softmax(%v) produced %v", in, out)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-4 {
			t.Fatalf("softmax(%v) sums to %v", in, sum)
		}
	})
}

// FuzzGEMMTransposeConsistency: the four transpose paths must agree on
// small random matrices built from the fuzz input.
func FuzzGEMMTransposeConsistency(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint8(4), uint8(5))
	f.Fuzz(func(t *testing.T, seed uint64, ma, na, ka uint8) {
		m, n, k := int(ma%6)+1, int(na%6)+1, int(ka%6)+1
		// Deterministic pseudo-random fill from the seed.
		next := func() float32 {
			seed = seed*6364136223846793005 + 1442695040888963407
			return float32(int32(seed>>33%2000)-1000) / 1000
		}
		a := make([]float32, m*k)
		at := make([]float32, m*k) // A^T stored k×m
		for i := 0; i < m; i++ {
			for p := 0; p < k; p++ {
				v := next()
				a[i*k+p] = v
				at[p*m+i] = v
			}
		}
		b := make([]float32, k*n)
		bt := make([]float32, k*n) // B^T stored n×k
		for p := 0; p < k; p++ {
			for j := 0; j < n; j++ {
				v := next()
				b[p*n+j] = v
				bt[j*k+p] = v
			}
		}
		ref := make([]float32, m*n)
		GEMM(false, false, m, n, k, 1, a, b, 0, ref)
		for _, tc := range []struct {
			ta, tb bool
			av, bv []float32
		}{
			{true, false, at, b},
			{false, true, a, bt},
			{true, true, at, bt},
		} {
			got := make([]float32, m*n)
			GEMM(tc.ta, tc.tb, m, n, k, 1, tc.av, tc.bv, 0, got)
			for i := range ref {
				if math.Abs(float64(got[i]-ref[i])) > 1e-3 {
					t.Fatalf("tA=%v tB=%v diverges at %d: %v vs %v", tc.ta, tc.tb, i, got[i], ref[i])
				}
			}
		}
	})
}

// FuzzGEMMBlockedVsNaive: the cache-blocked packed path must agree with
// the naive reference for arbitrary shapes (including dims that are not
// multiples of the micro-tile), transpose combos, and alpha/beta. The
// seed corpus pins the odd/prime dims and scaling factors from the
// equivalence suite so `go test` replays them on every run.
func FuzzGEMMBlockedVsNaive(f *testing.F) {
	// Odd and prime dims around the micro-tile (6x16) and block (120/256)
	// boundaries; alphaSel/betaSel index {0, 1, -0.5}.
	f.Add(uint64(7), uint16(1), uint16(1), uint16(1), uint8(0), uint8(1), uint8(1))
	f.Add(uint64(11), uint16(3), uint16(17), uint16(63), uint8(1), uint8(1), uint8(0))
	f.Add(uint64(13), uint16(63), uint16(129), uint16(17), uint8(2), uint8(2), uint8(1))
	f.Add(uint64(17), uint16(129), uint16(63), uint16(129), uint8(3), uint8(1), uint8(2))
	f.Add(uint64(19), uint16(121), uint16(257), uint16(31), uint8(2), uint8(0), uint8(1))
	f.Add(uint64(23), uint16(6), uint16(16), uint16(256), uint8(0), uint8(2), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, mr, nr, kr uint16, combo, alphaSel, betaSel uint8) {
		m, n, k := int(mr%160)+1, int(nr%160)+1, int(kr%160)+1
		transA, transB := combo&1 != 0, combo&2 != 0
		scales := []float32{0, 1, -0.5}
		alpha := scales[int(alphaSel)%len(scales)]
		beta := scales[int(betaSel)%len(scales)]
		next := func() float32 {
			seed = seed*6364136223846793005 + 1442695040888963407
			return float32(int32(seed>>33%2000)-1000) / 1000
		}
		a := make([]float32, m*k)
		for i := range a {
			a[i] = next()
		}
		b := make([]float32, k*n)
		for i := range b {
			b[i] = next()
		}
		c0 := make([]float32, m*n)
		for i := range c0 {
			c0[i] = next()
		}
		got := append([]float32(nil), c0...)
		want := append([]float32(nil), c0...)
		blockedFull(transA, transB, m, n, k, alpha, a, b, beta, got, true)
		GEMMNaive(transA, transB, m, n, k, alpha, a, b, beta, want)
		if d := maxAbsDiff(got, want); d > tolFor(k) {
			t.Fatalf("tA=%v tB=%v m=%d n=%d k=%d alpha=%v beta=%v: max diff %v",
				transA, transB, m, n, k, alpha, beta, d)
		}
	})
}
