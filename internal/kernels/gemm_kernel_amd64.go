//go:build amd64

package kernels

import "os"

// Assembly micro-kernel bindings (gemm_kernel_amd64.s) plus the CPU feature
// probe that decides whether to install them.

//go:noescape
func sgemmKernel6x16(kc int64, a, b, c *float32, ldc int64)

//go:noescape
func igemmKernel4x16(kg int64, a *uint8, b *int8, acc *int32)

func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// microKernel6x16 adapts the AVX2+FMA assembly kernel to the generic
// micro-kernel signature: C[0:6][0:16] += Apanel·Bpanel.
func microKernel6x16(kc int, a, b, c []float32, ldc int) {
	sgemmKernel6x16(int64(kc), &a[0], &b[0], &c[0], int64(ldc))
}

// int8Kernel4x16SIMD adapts the AVX2 int8 assembly kernel to the generic
// int8 micro-kernel signature (4×16 int32 tile, overwrite semantics).
func int8Kernel4x16SIMD(kg int, a []uint8, b []int8, acc *[int8MR * int8NR]int32) {
	_ = a[kg*int8MR*int8KGroup-1]
	_ = b[kg*int8NR*int8KGroup-1]
	igemmKernel4x16(int64(kg), &a[0], &b[0], &acc[0])
}

// haveAVX2FMA reports whether both the CPU and the OS support AVX2 and FMA
// (including YMM state saving via XSAVE).
var haveAVX2FMA = detectAVX2FMA()

func detectAVX2FMA() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const fma = 1 << 12
	const osxsave = 1 << 27
	if ecx1&fma == 0 || ecx1&osxsave == 0 {
		return false
	}
	if eax, _ := xgetbv(); eax&0x6 != 0x6 { // XMM and YMM state enabled
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

// useSIMDKernel installs the 6×16 AVX2+FMA micro-kernel; it reports false
// (leaving the scalar kernel active) when unsupported.
func useSIMDKernel() bool {
	if !haveAVX2FMA {
		return false
	}
	gemmMR, gemmNR, microKernel = 6, 16, microKernel6x16
	int8Kernel = int8Kernel4x16SIMD
	return true
}

func init() {
	if os.Getenv("DEMYSTBERT_NOSIMD") == "" {
		useSIMDKernel()
	}
}
