package kernels

import "sync"

// Cache-blocked packed GEMM, BLIS-style. The operand matrices are copied
// into contiguous packed panels once per cache block — handling all four
// transpose combinations (and the alpha scale) at pack time — so a single
// register-tiled micro-kernel serves every GEMM the training graph emits.
//
// Blocking hierarchy for C = op(A)·op(B):
//
//	for io over M by gemmStripe:              bound packed-A scratch
//	  for pc over K by gemmKC:                depth block
//	    pack A[io:io+ms][pc:pc+kcb]           mr-row micro-panels, ×alpha
//	    for jc over N by gemmNC:              column block
//	      pack B[pc:pc+kcb][jc:jc+ncb]        nr-column micro-panels
//	      for each (mc row block × column segment) tile, in parallel:
//	        for jr by nr, ir by mr:           micro-tiles
//	          C[ir:ir+mr][jr:jr+nr] += Apanel·Bpanel   (micro-kernel)
//
// The packed A block (gemmMC×gemmKC) stays resident in L2 while micro-
// panels of B stream through L1; C tiles live in registers inside the
// micro-kernel. Tiles are distributed over the persistent worker pool via
// an atomic counter (parallel.go), and every tile of C is written by
// exactly one worker with a fixed loop order, so results are bitwise
// deterministic regardless of scheduling.
const (
	gemmMC = 120  // row block; multiple of both micro-tile heights (4 and 6)
	gemmKC = 256  // depth block: packed A block is 120×256×4 B ≈ 120 KiB (L2-resident)
	gemmNC = 2048 // column block: packed B panel is 256×2048×4 B = 2 MiB (streams via L3)

	// gemmStripe bounds the packed-A scratch for very tall matrices;
	// multiple of gemmMC.
	gemmStripe = 3840

	// microTileMax is the largest micro-tile (6×16 SIMD kernel).
	microTileMax = 6 * 16

	// smallGEMMFlops: below this, packing overhead outweighs blocking
	// gains and GEMM dispatches to the naive reference path instead.
	smallGEMMFlops = 1 << 15
)

// Active micro-kernel geometry. The portable scalar kernel is the default;
// on amd64 with AVX2+FMA an assembly 6×16 kernel is installed at init
// (gemm_kernel_amd64.go). Tests switch backends via useScalarKernel /
// useSIMDKernel to cross-check them.
var (
	gemmMR      = 4
	gemmNR      = 4
	microKernel func(kc int, a, b, c []float32, ldc int) = microKernel4x4
)

// useScalarKernel installs the portable micro-kernel (also the permanent
// state on non-amd64 builds and under DEMYSTBERT_NOSIMD=1).
func useScalarKernel() {
	gemmMR, gemmNR, microKernel = 4, 4, microKernel4x4
	int8Kernel = gemmInt8Kernel4x16Go
}

// gemmBlocked computes C += alpha·op(A)·op(B) (beta is applied by the
// caller) with cache blocking and packing. par selects pool parallelism;
// BatchedGEMM passes false so per-matrix GEMMs never nest dispatch.
func gemmBlocked(transA, transB bool, m, n, k int, alpha float32, a, b, c []float32, par bool) {
	mr, nr := gemmMR, gemmNR
	kc0 := min(k, gemmKC)
	ap := getScratch(((min(m, gemmStripe) + mr - 1) / mr) * mr * kc0)
	bp := getScratch(((min(n, gemmNC) + nr - 1) / nr) * nr * kc0)
	g := gemmStatePool.Get().(*gemmState)
	for io := 0; io < m; io += gemmStripe {
		ms := min(gemmStripe, m-io)
		for pc := 0; pc < k; pc += gemmKC {
			kcb := min(gemmKC, k-pc)
			packA(transA, *ap, a, io, ms, pc, kcb, m, k, alpha, mr, par)
			for jc := 0; jc < n; jc += gemmNC {
				ncb := min(gemmNC, n-jc)
				packB(transB, *bp, b, jc, ncb, pc, kcb, n, k, nr, par)
				g.run(c, *ap, *bp, n, io, ms, jc, ncb, kcb, par)
			}
		}
	}
	gemmStatePool.Put(g)
	putScratch(ap)
	putScratch(bp)
}

// gemmState is the pooled parallel-region body for the tile grid of one
// (stripe, pc, jc) step. Work item t maps to (row block t/segs, column
// segment t%segs); items touch disjoint regions of C.
type gemmState struct {
	c       []float32
	ap, bp  []float32
	ldc     int
	i0, ms  int // stripe origin row and height
	jc, ncb int // column-block origin and width
	kcb     int
	segs    int // column segments per row block
	segCols int // columns per segment (multiple of nr)

	// Fused epilogue (gemm_epilogue.go): when ep is set and epOn marks
	// the final depth block, each tile applies the element-wise epilogue
	// right after its micro-tile sweep, while the tile is cache-hot.
	// Both stay zero for the plain blocked/packed paths.
	ep   *Epilogue
	epOn bool
}

var gemmStatePool = sync.Pool{New: func() any { return new(gemmState) }}

func (g *gemmState) run(c, ap, bp []float32, ldc, i0, ms, jc, ncb, kcb int, par bool) {
	icBlocks := (ms + gemmMC - 1) / gemmMC
	segs, segCols := 1, ncb
	w := 1
	if par {
		w = int(maxWorkers.Load())
	}
	if w > 1 && icBlocks < 3*w {
		// Few row blocks: split columns too, keeping ≥ ~3 items per
		// worker for dynamic balance but segments at least two
		// micro-panels wide so packed B reuse stays intact.
		nr := gemmNR
		target := (3*w + icBlocks - 1) / icBlocks
		if maxSegs := max(ncb/(2*nr), 1); target > maxSegs {
			target = maxSegs
		}
		segCols = max((((ncb+target-1)/target+nr-1)/nr)*nr, nr)
		segs = (ncb + segCols - 1) / segCols
	}
	g.c, g.ap, g.bp = c, ap, bp
	g.ldc, g.i0, g.ms, g.jc, g.ncb, g.kcb = ldc, i0, ms, jc, ncb, kcb
	g.segs, g.segCols = segs, segCols
	items := icBlocks * segs
	if par {
		parallelRun(items, 1, g)
	} else {
		g.runRange(0, items)
	}
	g.c, g.ap, g.bp = nil, nil, nil
}

func (g *gemmState) runRange(lo, hi int) {
	for t := lo; t < hi; t++ {
		g.tile(t)
	}
}

// tile computes one row-block × column-segment piece of C from the packed
// panels via the shared micro-tile sweep (gemm_small.go), keeping the A
// block hot in L2.
func (g *gemmState) tile(t int) {
	i := (t / g.segs) * gemmMC
	iEnd := min(i+gemmMC, g.ms)
	j0 := (t % g.segs) * g.segCols
	jEnd := min(j0+g.segCols, g.ncb)
	microTileSweep(g.c[g.i0*g.ldc+g.jc:], g.ldc, g.ap, g.bp, g.kcb, i, iEnd, j0, jEnd, g.ms, g.ncb)
	if g.epOn && g.ep != nil {
		g.ep.applyTile(g.c, g.ldc, g.i0+i, g.i0+iEnd, g.jc+j0, g.jc+jEnd)
	}
}

var microTilePool = sync.Pool{New: func() any { return new([microTileMax]float32) }}

// ---------------------------------------------------------------------------
// Packing.

// packAState packs op(A)[io:io+ms][pc:pc+kcb] into mr-row micro-panels:
// panel pi holds rows [pi·mr, pi·mr+mr), laid out p-major (mr consecutive
// row entries per depth step) and scaled by alpha. Short panels at the
// bottom are zero-padded.
type packAState struct {
	dst, src []float32
	transA   bool
	row0     int // io: first op(A) row of the stripe
	rows     int // ms
	pc, kcb  int
	ld       int // k when !transA (A is M×K), m when transA (A is K×M)
	alpha    float32
	mr       int
}

var packAPool = sync.Pool{New: func() any { return new(packAState) }}

func packA(transA bool, dst, a []float32, io, ms, pc, kcb, m, k int, alpha float32, mr int, par bool) {
	s := packAPool.Get().(*packAState)
	s.dst, s.src, s.transA = dst, a, transA
	s.row0, s.rows, s.pc, s.kcb = io, ms, pc, kcb
	s.alpha, s.mr = alpha, mr
	if transA {
		s.ld = m
	} else {
		s.ld = k
	}
	panels := (ms + mr - 1) / mr
	if par {
		parallelRun(panels, 8, s)
	} else {
		s.runRange(0, panels)
	}
	s.dst, s.src = nil, nil
	packAPool.Put(s)
}

func (s *packAState) runRange(lo, hi int) {
	mr, kcb, alpha := s.mr, s.kcb, s.alpha
	for pi := lo; pi < hi; pi++ {
		dst := s.dst[pi*mr*kcb : (pi+1)*mr*kcb]
		r0 := pi * mr
		rows := min(mr, s.rows-r0)
		if s.transA {
			// A stored K×M: op(A)[i][p] = a[p·ld + i] — the mr rows
			// of a panel are contiguous in memory.
			base := s.pc*s.ld + s.row0 + r0
			for p := 0; p < kcb; p++ {
				src := s.src[base+p*s.ld:]
				d := dst[p*mr:]
				for r := 0; r < rows; r++ {
					d[r] = alpha * src[r]
				}
				for r := rows; r < mr; r++ {
					d[r] = 0
				}
			}
			continue
		}
		// A stored M×K: op(A)[i][p] = a[i·ld + pc + p] — mr strided
		// read streams, sequential writes.
		base := (s.row0+r0)*s.ld + s.pc
		for p := 0; p < kcb; p++ {
			d := dst[p*mr:]
			for r := 0; r < rows; r++ {
				d[r] = alpha * s.src[base+r*s.ld+p]
			}
			for r := rows; r < mr; r++ {
				d[r] = 0
			}
		}
	}
}

// packBState packs op(B)[pc:pc+kcb][jc:jc+ncb] into nr-column micro-panels
// laid out p-major (nr consecutive column entries per depth step), zero-
// padding short panels on the right.
type packBState struct {
	dst, src []float32
	transB   bool
	jc, cols int // column-block origin and width (ncb)
	pc, kcb  int
	ld       int // n when !transB (B is K×N), k when transB (B is N×K)
	nr       int
}

var packBPool = sync.Pool{New: func() any { return new(packBState) }}

func packB(transB bool, dst, b []float32, jc, ncb, pc, kcb, n, k, nr int, par bool) {
	s := packBPool.Get().(*packBState)
	s.dst, s.src, s.transB = dst, b, transB
	s.jc, s.cols, s.pc, s.kcb, s.nr = jc, ncb, pc, kcb, nr
	if transB {
		s.ld = k
	} else {
		s.ld = n
	}
	panels := (ncb + nr - 1) / nr
	if par {
		parallelRun(panels, 8, s)
	} else {
		s.runRange(0, panels)
	}
	s.dst, s.src = nil, nil
	packBPool.Put(s)
}

func (s *packBState) runRange(lo, hi int) {
	nr, kcb := s.nr, s.kcb
	for pj := lo; pj < hi; pj++ {
		dst := s.dst[pj*nr*kcb : (pj+1)*nr*kcb]
		j0 := pj * nr
		cols := min(nr, s.cols-j0)
		if !s.transB {
			// B stored K×N: each depth step is a contiguous row copy.
			base := s.pc*s.ld + s.jc + j0
			if cols == nr {
				for p := 0; p < kcb; p++ {
					copy(dst[p*nr:p*nr+nr], s.src[base+p*s.ld:])
				}
				continue
			}
			for p := 0; p < kcb; p++ {
				d := dst[p*nr : p*nr+nr]
				copy(d[:cols], s.src[base+p*s.ld:])
				for j := cols; j < nr; j++ {
					d[j] = 0
				}
			}
			continue
		}
		// B stored N×K: op(B)[p][j] = b[(jc+j)·ld + pc + p] — each
		// packed column is a contiguous read.
		for j := 0; j < cols; j++ {
			src := s.src[(s.jc+j0+j)*s.ld+s.pc:]
			for p := 0; p < kcb; p++ {
				dst[p*nr+j] = src[p]
			}
		}
		for j := cols; j < nr; j++ {
			for p := 0; p < kcb; p++ {
				dst[p*nr+j] = 0
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Portable micro-kernel.

// microKernel4x4 computes C[0:4][0:4] += Apanel·Bpanel over kc packed depth
// steps with 16 independent scalar accumulators, seeded from C so the fold
// continues across kernel invocations: splitting the depth range over
// multiple calls is bitwise-identical to one call over the whole range
// (the gradient-accumulation equivalence depends on this). It is the
// fallback for builds without the SIMD kernel and the cross-check oracle
// for it.
func microKernel4x4(kc int, a, b, c []float32, ldc int) {
	r0, r1, r2, r3 := c[0:4], c[ldc:ldc+4], c[2*ldc:2*ldc+4], c[3*ldc:3*ldc+4]
	c00, c01, c02, c03 := r0[0], r0[1], r0[2], r0[3]
	c10, c11, c12, c13 := r1[0], r1[1], r1[2], r1[3]
	c20, c21, c22, c23 := r2[0], r2[1], r2[2], r2[3]
	c30, c31, c32, c33 := r3[0], r3[1], r3[2], r3[3]
	a = a[:4*kc]
	b = b[:4*kc]
	for len(a) >= 4 {
		a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
		a = a[4:]
		b = b[4:]
	}
	r0[0], r0[1], r0[2], r0[3] = c00, c01, c02, c03
	r1[0], r1[1], r1[2], r1[3] = c10, c11, c12, c13
	r2[0], r2[1], r2[2], r2[3] = c20, c21, c22, c23
	r3[0], r3[1], r3[2], r3[3] = c30, c31, c32, c33
}
