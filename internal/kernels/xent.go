package kernels

import (
	"fmt"
	"math"
)

// CrossEntropyForward computes mean softmax cross-entropy loss over rows
// of a rows×classes logit matrix against integer targets, writing the
// softmax probabilities to probs for reuse by the backward pass. Rows
// whose target is IgnoreIndex contribute neither loss nor gradient —
// BERT's masked-LM loss only scores the ~15% masked positions.
func CrossEntropyForward(probs, logits []float32, targets []int, rows, classes int) float64 {
	if len(logits) != rows*classes || len(probs) != rows*classes || len(targets) != rows {
		panic(fmt.Sprintf("kernels: CrossEntropyForward dims rows=%d classes=%d", rows, classes))
	}
	Softmax(probs, logits, rows, classes)
	var loss float64
	count := 0
	for r, t := range targets {
		if t == IgnoreIndex {
			continue
		}
		if t < 0 || t >= classes {
			panic(fmt.Sprintf("kernels: target %d out of range [0,%d)", t, classes))
		}
		p := float64(probs[r*classes+t])
		if p < 1e-30 {
			p = 1e-30
		}
		loss -= math.Log(p)
		count++
	}
	if count == 0 {
		return 0
	}
	return loss / float64(count)
}

// IgnoreIndex marks a target position that is excluded from the loss.
const IgnoreIndex = -1

// CrossEntropyBackward computes the logit gradient of the mean
// cross-entropy loss: dLogits[r,c] = (probs[r,c] - 1{c==target_r}) / count
// for scored rows and zero for ignored rows.
func CrossEntropyBackward(dLogits, probs []float32, targets []int, rows, classes int) {
	if len(dLogits) != rows*classes || len(probs) != rows*classes || len(targets) != rows {
		panic(fmt.Sprintf("kernels: CrossEntropyBackward dims rows=%d classes=%d", rows, classes))
	}
	count := 0
	for _, t := range targets {
		if t != IgnoreIndex {
			count++
		}
	}
	if count == 0 {
		clear(dLogits)
		return
	}
	inv := 1 / float32(count)
	parallelFor(rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			out := dLogits[r*classes : (r+1)*classes]
			if targets[r] == IgnoreIndex {
				clear(out)
				continue
			}
			pr := probs[r*classes : (r+1)*classes]
			for c := range out {
				out[c] = pr[c] * inv
			}
			out[targets[r]] -= inv
		}
	})
}
