package kernels

import (
	"fmt"
	"math"
)

// CrossEntropyForward computes mean softmax cross-entropy loss over rows
// of a rows×classes logit matrix against integer targets, writing the
// softmax probabilities to probs for reuse by the backward pass. Rows
// whose target is IgnoreIndex contribute neither loss nor gradient —
// BERT's masked-LM loss only scores the ~15% masked positions.
func CrossEntropyForward(probs, logits []float32, targets []int, rows, classes int) float64 {
	sum, count := CrossEntropySumForward(probs, logits, targets, rows, classes, 0, 0)
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// CrossEntropySumForward is the unnormalized fold underneath
// CrossEntropyForward: it continues a float64 negative-log-likelihood sum
// and scored-row count from the given seeds and leaves the mean to the
// caller. Gradient accumulation threads (sum, count) through the
// micro-batch calls in row order — the exact float64 addition sequence of
// one full-batch call — so the accumulated mean is bitwise-identical to
// the full-batch mean.
func CrossEntropySumForward(probs, logits []float32, targets []int, rows, classes int, sum float64, count int) (float64, int) {
	if len(logits) != rows*classes || len(probs) != rows*classes || len(targets) != rows {
		panic(fmt.Sprintf("kernels: CrossEntropyForward dims rows=%d classes=%d", rows, classes))
	}
	Softmax(probs, logits, rows, classes)
	for r, t := range targets {
		if t == IgnoreIndex {
			continue
		}
		if t < 0 || t >= classes {
			panic(fmt.Sprintf("kernels: target %d out of range [0,%d)", t, classes))
		}
		p := float64(probs[r*classes+t])
		if p < 1e-30 {
			p = 1e-30
		}
		sum -= math.Log(p)
		count++
	}
	return sum, count
}

// IgnoreIndex marks a target position that is excluded from the loss.
const IgnoreIndex = -1

// CrossEntropyBackward computes the logit gradient of the mean
// cross-entropy loss: dLogits[r,c] = (probs[r,c] - 1{c==target_r}) / count
// for scored rows and zero for ignored rows.
func CrossEntropyBackward(dLogits, probs []float32, targets []int, rows, classes int) {
	count := 0
	for _, t := range targets {
		if t != IgnoreIndex {
			count++
		}
	}
	CrossEntropyBackwardCount(dLogits, probs, targets, rows, classes, count)
}

// CrossEntropyBackwardCount is CrossEntropyBackward with the scored-row
// count injected by the caller instead of derived from this call's
// targets. Gradient accumulation passes the FULL batch's count so each
// micro-batch's logit gradient carries the full-batch 1/count
// normalization and the summed gradients match a full-batch call bitwise.
func CrossEntropyBackwardCount(dLogits, probs []float32, targets []int, rows, classes, count int) {
	if len(dLogits) != rows*classes || len(probs) != rows*classes || len(targets) != rows {
		panic(fmt.Sprintf("kernels: CrossEntropyBackward dims rows=%d classes=%d", rows, classes))
	}
	if count == 0 {
		clear(dLogits)
		return
	}
	inv := 1 / float32(count)
	parallelFor(rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			out := dLogits[r*classes : (r+1)*classes]
			if targets[r] == IgnoreIndex {
				clear(out)
				continue
			}
			pr := probs[r*classes : (r+1)*classes]
			for c := range out {
				out[c] = pr[c] * inv
			}
			out[targets[r]] -= inv
		}
	})
}
