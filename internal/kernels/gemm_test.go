package kernels

import (
	"math"
	"testing"
	"testing/quick"

	"demystbert/internal/tensor"
)

// refGEMM is a direct triple-loop reference used to validate the
// optimized kernels.
func refGEMM(transA, transB bool, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for p := 0; p < k; p++ {
				var av, bv float32
				if transA {
					av = a[p*m+i]
				} else {
					av = a[i*k+p]
				}
				if transB {
					bv = b[j*k+p]
				} else {
					bv = b[p*n+j]
				}
				sum += float64(av) * float64(bv)
			}
			c[i*n+j] = float32(float64(alpha)*sum) + beta*c[i*n+j]
		}
	}
}

func randSlice(r *tensor.RNG, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = r.Float32()*2 - 1
	}
	return s
}

func maxAbsDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i] - b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func TestGEMMAllTransposeCombos(t *testing.T) {
	r := tensor.NewRNG(1)
	for _, tc := range []struct{ ta, tb bool }{{false, false}, {false, true}, {true, false}, {true, true}} {
		for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {16, 16, 16}, {33, 17, 9}, {5, 64, 3}} {
			m, n, k := dims[0], dims[1], dims[2]
			a := randSlice(r, m*k)
			b := randSlice(r, k*n)
			got := randSlice(r, m*n)
			want := append([]float32(nil), got...)
			GEMM(tc.ta, tc.tb, m, n, k, 1.5, a, b, 0.5, got)
			refGEMM(tc.ta, tc.tb, m, n, k, 1.5, a, b, 0.5, want)
			if d := maxAbsDiff(got, want); d > 1e-4 {
				t.Errorf("GEMM(tA=%v tB=%v %dx%dx%d) max diff %v", tc.ta, tc.tb, m, n, k, d)
			}
		}
	}
}

func TestGEMMIdentity(t *testing.T) {
	const n = 8
	r := tensor.NewRNG(2)
	a := randSlice(r, n*n)
	id := make([]float32, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	c := make([]float32, n*n)
	GEMM(false, false, n, n, n, 1, a, id, 0, c)
	if d := maxAbsDiff(c, a); d > 1e-6 {
		t.Fatalf("A·I differs from A by %v", d)
	}
}

func TestGEMMBetaOne(t *testing.T) {
	m, n, k := 4, 4, 4
	r := tensor.NewRNG(3)
	a, b := randSlice(r, m*k), randSlice(r, k*n)
	c := make([]float32, m*n)
	GEMM(false, false, m, n, k, 1, a, b, 0, c)
	first := append([]float32(nil), c...)
	GEMM(false, false, m, n, k, 1, a, b, 1, c) // accumulate once more
	for i := range c {
		if math.Abs(float64(c[i]-2*first[i])) > 1e-4 {
			t.Fatalf("beta=1 accumulation wrong at %d: %v vs %v", i, c[i], 2*first[i])
		}
	}
}

func TestGEMMAlphaZeroOnlyScales(t *testing.T) {
	m, n, k := 3, 3, 3
	a, b := make([]float32, m*k), make([]float32, k*n)
	c := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9}
	GEMM(false, false, m, n, k, 0, a, b, 2, c)
	for i, v := range c {
		if v != float32(2*(i+1)) {
			t.Fatalf("alpha=0 beta=2: c[%d] = %v", i, v)
		}
	}
}

func TestGEMMZeroDims(t *testing.T) {
	// m==0 and n==0 must be no-ops; k==0 must only apply beta.
	GEMM(false, false, 0, 5, 5, 1, nil, make([]float32, 25), 0, nil)
	c := []float32{3, 3}
	GEMM(false, false, 1, 2, 0, 1, nil, nil, 0, c)
	if c[0] != 0 || c[1] != 0 {
		t.Fatal("k=0 beta=0 must zero C")
	}
}

func TestGEMMBufferTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("undersized buffer did not panic")
		}
	}()
	GEMM(false, false, 4, 4, 4, 1, make([]float32, 15), make([]float32, 16), 0, make([]float32, 16))
}

func TestGEMMNegativeDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative dim did not panic")
		}
	}()
	GEMM(false, false, -1, 4, 4, 1, nil, nil, 0, nil)
}

func TestGEMMSingleWorkerMatchesParallel(t *testing.T) {
	r := tensor.NewRNG(4)
	m, n, k := 37, 29, 23
	a, b := randSlice(r, m*k), randSlice(r, k*n)
	par := make([]float32, m*n)
	ser := make([]float32, m*n)
	GEMM(false, false, m, n, k, 1, a, b, 0, par)
	old := SetMaxWorkers(1)
	GEMM(false, false, m, n, k, 1, a, b, 0, ser)
	SetMaxWorkers(old)
	if d := maxAbsDiff(par, ser); d > 1e-5 {
		t.Fatalf("parallel vs serial diff %v", d)
	}
}

// Property: (A·B)^T == B^T·A^T, expressed through the transpose flags.
func TestGEMMTransposeIdentityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		m, n, k := 1+r.Intn(10), 1+r.Intn(10), 1+r.Intn(10)
		a, b := randSlice(r, m*k), randSlice(r, k*n)
		// C1 = A·B  (m×n)
		c1 := make([]float32, m*n)
		GEMM(false, false, m, n, k, 1, a, b, 0, c1)
		// C2 = op(B)·op(A) with both transposed = (A·B)^T  (n×m)
		c2 := make([]float32, n*m)
		GEMM(true, true, n, m, k, 1, b, a, 0, c2)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(float64(c1[i*n+j]-c2[j*m+i])) > 1e-4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: GEMM is linear in alpha.
func TestGEMMAlphaLinearityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		m, n, k := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a, b := randSlice(r, m*k), randSlice(r, k*n)
		c1 := make([]float32, m*n)
		c2 := make([]float32, m*n)
		GEMM(false, false, m, n, k, 1, a, b, 0, c1)
		GEMM(false, false, m, n, k, 2.5, a, b, 0, c2)
		for i := range c1 {
			if math.Abs(float64(c2[i]-2.5*c1[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchedGEMMMatchesLoop(t *testing.T) {
	r := tensor.NewRNG(5)
	batch, m, n, k := 6, 7, 5, 9
	a := randSlice(r, batch*m*k)
	b := randSlice(r, batch*k*n)
	got := make([]float32, batch*m*n)
	want := make([]float32, batch*m*n)
	BatchedGEMM(batch, false, true, m, n, k, 1, a, m*k, b, k*n, 0, got, m*n)
	for i := 0; i < batch; i++ {
		refGEMM(false, true, m, n, k, 1, a[i*m*k:], b[i*k*n:], 0, want[i*m*n:(i+1)*m*n])
	}
	if d := maxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("BatchedGEMM max diff %v", d)
	}
}

func TestBatchedGEMMZeroBatch(t *testing.T) {
	BatchedGEMM(0, false, false, 4, 4, 4, 1, nil, 16, nil, 16, 0, nil, 16)
}

func TestBatchedGEMMBadStridePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad stride did not panic")
		}
	}()
	BatchedGEMM(2, false, false, 4, 4, 4, 1, make([]float32, 32), 8, make([]float32, 32), 16, 0, make([]float32, 32), 16)
}

func TestDotAndAxpy(t *testing.T) {
	x := []float32{1, 2, 3, 4, 5}
	y := []float32{5, 4, 3, 2, 1}
	if got := dot(x, y); got != 35 {
		t.Fatalf("dot = %v, want 35", got)
	}
	dst := []float32{1, 1, 1, 1, 1}
	axpy(2, x, dst)
	want := []float32{3, 5, 7, 9, 11}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("axpy[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestSetMaxWorkersClamps(t *testing.T) {
	old := SetMaxWorkers(-5)
	if MaxWorkers() != 1 {
		t.Fatal("SetMaxWorkers(-5) must clamp to 1")
	}
	SetMaxWorkers(old)
}

func TestCostFormulas(t *testing.T) {
	if GEMMFLOPs(2, 3, 4) != 48 {
		t.Fatal("GEMMFLOPs(2,3,4) != 48")
	}
	if GEMMBytes(2, 3, 4, 4) != 4*(8+12+6) {
		t.Fatal("GEMMBytes wrong")
	}
	// Square GEMM at FP32: intensity = 2n^3 / (12n^2) = n/6.
	if got := GEMMIntensity(600, 600, 600, 4); math.Abs(got-100) > 1e-9 {
		t.Fatalf("GEMMIntensity(600^3) = %v, want 100", got)
	}
	if EWFLOPs(10, 3) != 30 {
		t.Fatal("EWFLOPs wrong")
	}
	if EWBytes(10, 2, 1, 4) != 120 {
		t.Fatal("EWBytes wrong")
	}
}
