package kernels

import "demystbert/internal/obs"

// Runtime counters for the kernel layer's three hot subsystems — the
// worker pool, the pre-packed-weight cache, and the batched-GEMM engine
// router. All are plain atomic adds (obs hot-path contract), so the
// zero-alloc guarantees of the dispatch paths hold with instrumentation
// on; served live at /metrics by the obs debug server.
var (
	poolDispatches = obs.NewCounter("kernels_pool_dispatches_total",
		"parallel regions dispatched to the worker pool")
	poolInline = obs.NewCounter("kernels_pool_inline_total",
		"parallel regions run inline (serial pool, tiny n, or single chunk)")
	poolGrains = obs.NewCounter("kernels_pool_grains_total",
		"grain-sized work chunks handed out by region drains")
	poolSteals = obs.NewCounter("kernels_pool_steals_total",
		"regions stolen from the queue by a joining caller while it waited")

	packCacheHits = obs.NewCounter("kernels_pack_cache_hits_total",
		"weight-pack cache lookups served from the cached panels")
	packCacheMisses = obs.NewCounter("kernels_pack_cache_misses_total",
		"weight-pack cache lookups with no usable entry (cold or wrong shape/backend)")
	packCacheRebuilds = obs.NewCounter("kernels_pack_cache_rebuilds_total",
		"weight-pack cache entries rebuilt because the parameter generation moved")

	batchedBlockedRuns = obs.NewCounter("kernels_batched_gemm_blocked_total",
		"batched GEMMs routed to the flattened blocked engine")
	batchedPerMatrixRuns = obs.NewCounter("kernels_batched_gemm_per_matrix_total",
		"batched GEMMs routed to the per-matrix fallback path")
	batchedPackCapTrips = obs.NewCounter("kernels_batched_gemm_pack_cap_trips_total",
		"batched GEMMs that exceeded the packed-scratch cap and fell back")
)
