package kernels

import "demystbert/internal/obs"

// Runtime counters for the kernel layer's three hot subsystems — the
// worker pool, the pre-packed-weight cache, and the batched-GEMM engine
// router. All are plain atomic adds (obs hot-path contract), so the
// zero-alloc guarantees of the dispatch paths hold with instrumentation
// on; served live at /metrics by the obs debug server.
var (
	poolDispatches = obs.NewCounter("kernels_pool_dispatches_total",
		"parallel regions dispatched to the worker pool")
	poolInline = obs.NewCounter("kernels_pool_inline_total",
		"parallel regions run inline (serial pool, tiny n, or single chunk)")
	poolGrains = obs.NewCounter("kernels_pool_grains_total",
		"grain-sized work chunks handed out by region drains")
	poolSteals = obs.NewCounter("kernels_pool_steals_total",
		"regions stolen from the queue by a joining caller while it waited")

	packCacheHits = obs.NewCounter("kernels_pack_cache_hits_total",
		"weight-pack cache lookups served from the cached panels")
	packCacheMisses = obs.NewCounter("kernels_pack_cache_misses_total",
		"weight-pack cache lookups with no usable entry (cold or wrong shape/backend)")
	packCacheRebuilds = obs.NewCounter("kernels_pack_cache_rebuilds_total",
		"weight-pack cache entries rebuilt because the parameter generation moved")

	batchedBlockedRuns = obs.NewCounter("kernels_batched_gemm_blocked_total",
		"batched GEMMs routed to the flattened blocked engine")
	batchedPerMatrixRuns = obs.NewCounter("kernels_batched_gemm_per_matrix_total",
		"batched GEMMs routed to the per-matrix fallback path")
	batchedPackCapTrips = obs.NewCounter("kernels_batched_gemm_pack_cap_trips_total",
		"batched GEMMs that exceeded the packed-scratch cap and fell back")

	epilogueFusedBias = obs.NewCounter("kernels_gemm_epilogue_fused_bias_total",
		"GEMMs with a bias epilogue fused into the tile write-back")
	epilogueFusedBiasGeLU = obs.NewCounter("kernels_gemm_epilogue_fused_bias_gelu_total",
		"GEMMs with a bias+GeLU epilogue fused into the tile write-back")
	epilogueFusedBiasResLN = obs.NewCounter("kernels_gemm_epilogue_fused_bias_res_ln_total",
		"GEMMs with a bias+residual+LayerNorm epilogue fused into the write-back")
	epilogueReferenceRuns = obs.NewCounter("kernels_gemm_epilogue_reference_total",
		"GEMM epilogues applied as the unfused reference kernel sequence")

	int8GEMMRuns = obs.NewCounter("kernels_gemm_int8_total",
		"GEMMs executed by the int8 quantized engine")
	int8PackCacheHits = obs.NewCounter("kernels_int8_pack_cache_hits_total",
		"int8 weight-pack cache lookups served from the cached panels")
	int8PackCacheMisses = obs.NewCounter("kernels_int8_pack_cache_misses_total",
		"int8 weight-pack cache lookups with no usable entry")
	int8PackCacheRebuilds = obs.NewCounter("kernels_int8_pack_cache_rebuilds_total",
		"int8 weight-pack cache entries rebuilt because the parameter generation moved")
)
