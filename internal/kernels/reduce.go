package kernels

import (
	"math"
	"sync"
)

// SumSquares returns sum(x[i]^2) in float64 for accuracy; it is the
// building block of LAMB's global gradient norm, the reduction the paper
// notes serializes the model update against the entire backprop
// (Section 3.2.3).
func SumSquares(x []float32) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	workers := maxWorkers
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 4096 {
		var s float64
		for _, v := range x {
			s += float64(v) * float64(v)
		}
		return s
	}
	partial := make([]float64, workers)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var s float64
			for _, v := range x[lo:hi] {
				s += float64(v) * float64(v)
			}
			partial[w] = s
		}(w, lo, hi)
	}
	wg.Wait()
	var s float64
	for _, v := range partial {
		s += v
	}
	return s
}

// L2Norm returns the Euclidean norm of x.
func L2Norm(x []float32) float64 {
	return math.Sqrt(SumSquares(x))
}

// Sum returns the sum of x in float64.
func Sum(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v)
	}
	return s
}
