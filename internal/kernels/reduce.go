package kernels

import (
	"math"
	"sync"
)

// sumSqState is the pooled parallel-region body of SumSquares. Each
// grain-sized span writes its partial into a fixed slot (indexed by
// lo/grain), and the caller reduces the slots in order, so the result is
// deterministic no matter how the pool schedules chunks.
type sumSqState struct {
	x     []float32
	grain int
	part  []float64
}

var sumSqPool = sync.Pool{New: func() any { return new(sumSqState) }}

// runRange must handle ranges spanning several grains, one slot per grain:
// if the worker bound drops to 1 between SumSquares sizing part and
// parallelRun's own load, the inline fallback delivers [0, n) in a single
// call, and every slot of the pooled part slice must still be (re)written
// or stale partials from a previous call would leak into the sum.
func (s *sumSqState) runRange(lo, hi int) {
	g := s.grain
	for start := lo; start < hi; start += g {
		end := min(start+g, hi)
		var acc float64
		for _, v := range s.x[start:end] {
			acc += float64(v) * float64(v)
		}
		s.part[start/g] = acc
	}
}

// SumSquares returns sum(x[i]^2) in float64 for accuracy; it is the
// building block of LAMB's global gradient norm, the reduction the paper
// notes serializes the model update against the entire backprop
// (Section 3.2.3). Large inputs are reduced on the persistent worker pool.
func SumSquares(x []float32) float64 {
	n := len(x)
	w := MaxWorkers()
	if n < 4096 || w == 1 {
		var s float64
		for _, v := range x {
			s += float64(v) * float64(v)
		}
		return s
	}
	grain := n / (4 * w)
	if grain < 2048 {
		grain = 2048
	}
	chunks := (n + grain - 1) / grain
	s := sumSqPool.Get().(*sumSqState)
	s.x, s.grain = x, grain
	if cap(s.part) < chunks {
		s.part = make([]float64, chunks)
	}
	s.part = s.part[:chunks]
	parallelRun(n, grain, s)
	var sum float64
	for _, p := range s.part {
		sum += p
	}
	s.x = nil
	sumSqPool.Put(s)
	return sum
}

// L2Norm returns the Euclidean norm of x.
func L2Norm(x []float32) float64 {
	return math.Sqrt(SumSquares(x))
}

// Sum returns the sum of x in float64.
func Sum(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v)
	}
	return s
}
