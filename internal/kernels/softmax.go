package kernels

import (
	"fmt"
	"math"
)

// softmaxRow writes softmax(in) to out using the numerically stable
// max-shift formulation. in and out may alias.
func softmaxRow(out, in []float32) {
	maxV := in[0]
	for _, v := range in[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float32
	for i, v := range in {
		e := float32(math.Exp(float64(v - maxV)))
		out[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range out {
		out[i] *= inv
	}
}

// Softmax applies a row-wise softmax to a rows×n matrix.
func Softmax(dst, x []float32, rows, n int) {
	if len(x) != rows*n || len(dst) != rows*n {
		panic(fmt.Sprintf("kernels: Softmax dims x=%d dst=%d rows=%d n=%d", len(x), len(dst), rows, n))
	}
	parallelFor(rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			softmaxRow(dst[r*n:(r+1)*n], x[r*n:(r+1)*n])
		}
	})
}

// SoftmaxGrad computes the input gradient of a row-wise softmax given the
// softmax output y and upstream gradient dY:
//
//	dX[i] = y[i] * (dY[i] - sum_j dY[j]*y[j])
func SoftmaxGrad(dX, dY, y []float32, rows, n int) {
	if len(dX) != rows*n || len(dY) != rows*n || len(y) != rows*n {
		panic("kernels: SoftmaxGrad dims mismatch")
	}
	parallelFor(rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			yr := y[r*n : (r+1)*n]
			dyr := dY[r*n : (r+1)*n]
			dxr := dX[r*n : (r+1)*n]
			var dotv float32
			for i := range yr {
				dotv += dyr[i] * yr[i]
			}
			for i := range yr {
				dxr[i] = yr[i] * (dyr[i] - dotv)
			}
		}
	})
}
