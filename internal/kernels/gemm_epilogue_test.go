package kernels

import (
	"math"
	"testing"

	"demystbert/internal/tensor"
)

// refEpilogue applies the unfused reference tail to c in plain serial Go:
// the independent oracle for both the fused write-back and applyReference.
func refEpilogue(ep *Epilogue, c []float32, m, n int) {
	switch ep.Kind {
	case EpilogueNone:
	case EpilogueBias:
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				c[i*n+j] += ep.Bias[j]
			}
		}
	case EpilogueBiasGeLU:
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				pre := c[i*n+j] + ep.Bias[j]
				if ep.X != nil {
					ep.X[i*n+j] = pre
				}
				c[i*n+j] = geluScalar(pre)
			}
		}
	case EpilogueBiasResidualLayerNorm:
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				c[i*n+j] = (c[i*n+j] + ep.Bias[j]) + ep.Residual[i*n+j]
			}
		}
		for i := 0; i < m; i++ {
			row := c[i*n : (i+1)*n]
			if ep.X != nil {
				copy(ep.X[i*n:(i+1)*n], row)
			}
			mu, istd := layerNormRowStats(row, ep.Eps)
			if ep.Mean != nil {
				ep.Mean[i] = mu
				ep.InvStd[i] = istd
			}
			layerNormRowApply(row, row, ep.Gamma, ep.Beta, mu, istd)
		}
	}
}

// makeEpilogue builds a randomized epilogue of the given kind for an m×n
// output, with save buffers when withSaves is set.
func makeEpilogue(r *tensor.RNG, kind EpilogueKind, m, n int, withSaves bool) *Epilogue {
	ep := &Epilogue{Kind: kind}
	if kind != EpilogueNone {
		ep.Bias = randSlice(r, n)
	}
	if kind == EpilogueBiasResidualLayerNorm {
		ep.Residual = randSlice(r, m*n)
		ep.Gamma = randSlice(r, n)
		ep.Beta = randSlice(r, n)
		for j := range ep.Gamma {
			ep.Gamma[j] += 1.5 // keep the affine away from degenerate zero
		}
		ep.Eps = 1e-5
	}
	if withSaves {
		if kind == EpilogueBiasGeLU || kind == EpilogueBiasResidualLayerNorm {
			ep.X = make([]float32, m*n)
		}
		if kind == EpilogueBiasResidualLayerNorm {
			ep.Mean = make([]float32, m)
			ep.InvStd = make([]float32, m)
		}
	}
	return ep
}

func cloneEpilogue(ep *Epilogue, m, n int) *Epilogue {
	cp := *ep
	if ep.X != nil {
		cp.X = make([]float32, m*n)
	}
	if ep.Mean != nil {
		cp.Mean = make([]float32, m)
		cp.InvStd = make([]float32, m)
	}
	return &cp
}

var epilogueKinds = []EpilogueKind{EpilogueBias, EpilogueBiasGeLU, EpilogueBiasResidualLayerNorm}

// TestGEMMPackedEpilogueMatchesReference checks every kind and a spread of
// shapes (micro-tile remainders, multi-stripe m, multi-segment n) against
// a serial f64-free reference built from the same scalar helpers.
func TestGEMMPackedEpilogueMatchesReference(t *testing.T) {
	r := tensor.NewRNG(41)
	shapes := [][3]int{
		{1, 1, 1}, {3, 5, 7}, {6, 16, 8}, {7, 17, 33},
		{64, 64, 64}, {129, 96, 65}, {37, 200, 48},
	}
	for _, kind := range epilogueKinds {
		for _, sh := range shapes {
			m, n, k := sh[0], sh[1], sh[2]
			a := randSlice(r, m*k)
			b := randSlice(r, k*n)
			pb := PackWeight(false, n, k, b)
			ep := makeEpilogue(r, kind, m, n, true)

			got := make([]float32, m*n)
			GEMMPackedEpilogue(false, m, n, k, 1, a, pb, ep, got)

			want := make([]float32, m*n)
			refGEMM(false, false, m, n, k, 1, a, b, 0, want)
			wep := cloneEpilogue(ep, m, n)
			refEpilogue(wep, want, m, n)

			if d := maxAbsDiff(got, want); d > 2e-4 {
				t.Errorf("%s %dx%dx%d: output max diff %v", kind, m, n, k, d)
			}
			if ep.X != nil {
				if d := maxAbsDiff(ep.X, wep.X); d > 2e-4 {
					t.Errorf("%s %dx%dx%d: X save max diff %v", kind, m, n, k, d)
				}
			}
			if ep.Mean != nil {
				if d := maxAbsDiff(ep.Mean, wep.Mean); d > 1e-4 {
					t.Errorf("%s %dx%dx%d: Mean max diff %v", kind, m, n, k, d)
				}
				if d := maxAbsDiff(ep.InvStd, wep.InvStd); d > 1e-2 {
					t.Errorf("%s %dx%dx%d: InvStd max diff %v", kind, m, n, k, d)
				}
			}
		}
	}
}

// TestGEMMPackedEpilogueFusedBitwiseUnfused pins the core numerics
// contract: the fused write-back and the forced unfused reference paths
// produce bit-identical outputs and save buffers on the same backend.
func TestGEMMPackedEpilogueFusedBitwiseUnfused(t *testing.T) {
	r := tensor.NewRNG(42)
	for _, kind := range epilogueKinds {
		for _, sh := range [][3]int{{7, 17, 33}, {64, 64, 64}, {130, 96, 96}, {33, 257, 48}} {
			m, n, k := sh[0], sh[1], sh[2]
			a := randSlice(r, m*k)
			b := randSlice(r, k*n)
			pb := PackWeight(false, n, k, b)
			ep := makeEpilogue(r, kind, m, n, true)

			fused := make([]float32, m*n)
			old := SetGEMMPath(GEMMPathFused)
			GEMMPackedEpilogue(false, m, n, k, 1, a, pb, ep, fused)
			SetGEMMPath(GEMMPathPacked)
			unfused := make([]float32, m*n)
			uep := cloneEpilogue(ep, m, n)
			GEMMPackedEpilogue(false, m, n, k, 1, a, pb, uep, unfused)
			SetGEMMPath(old)

			for i := range fused {
				if math.Float32bits(fused[i]) != math.Float32bits(unfused[i]) {
					t.Fatalf("%s %dx%dx%d: fused/unfused diverge at %d: %v vs %v",
						kind, m, n, k, i, fused[i], unfused[i])
				}
			}
			if ep.X != nil {
				for i := range ep.X {
					if math.Float32bits(ep.X[i]) != math.Float32bits(uep.X[i]) {
						t.Fatalf("%s %dx%dx%d: X saves diverge at %d", kind, m, n, k, i)
					}
				}
			}
			if ep.Mean != nil {
				for i := range ep.Mean {
					if math.Float32bits(ep.Mean[i]) != math.Float32bits(uep.Mean[i]) ||
						math.Float32bits(ep.InvStd[i]) != math.Float32bits(uep.InvStd[i]) {
						t.Fatalf("%s %dx%dx%d: LN stats diverge at row %d", kind, m, n, k, i)
					}
				}
			}
		}
	}
}

// TestGEMMPackedEpilogueWorkerInvariance: fused results must not depend on
// the worker count (tile grids partition work; no cross-tile reductions).
func TestGEMMPackedEpilogueWorkerInvariance(t *testing.T) {
	r := tensor.NewRNG(43)
	m, n, k := 65, 96, 64
	a := randSlice(r, m*k)
	b := randSlice(r, k*n)
	pb := PackWeight(false, n, k, b)
	for _, kind := range epilogueKinds {
		ep := makeEpilogue(r, kind, m, n, false)
		ref := make([]float32, m*n)
		old := SetMaxWorkers(1)
		GEMMPackedEpilogue(false, m, n, k, 1, a, pb, ep, ref)
		for _, w := range []int{2, 4, 7} {
			SetMaxWorkers(w)
			got := make([]float32, m*n)
			GEMMPackedEpilogue(false, m, n, k, 1, a, pb, ep, got)
			for i := range got {
				if math.Float32bits(got[i]) != math.Float32bits(ref[i]) {
					t.Fatalf("%s: workers=%d diverges from workers=1 at %d", kind, w, i)
				}
			}
		}
		SetMaxWorkers(old)
	}
}

// TestGEMMPackedEpilogueNilAndNone: nil epilogue and EpilogueNone behave
// exactly like GEMMPacked with beta=0.
func TestGEMMPackedEpilogueNilAndNone(t *testing.T) {
	r := tensor.NewRNG(44)
	m, n, k := 15, 20, 12
	a := randSlice(r, m*k)
	b := randSlice(r, k*n)
	pb := PackWeight(false, n, k, b)
	want := make([]float32, m*n)
	GEMMPacked(false, m, n, k, 1, a, pb, 0, want)
	for _, ep := range []*Epilogue{nil, {Kind: EpilogueNone}} {
		got := randSlice(r, m*n) // pre-filled garbage must be overwritten
		GEMMPackedEpilogue(false, m, n, k, 1, a, pb, ep, got)
		if d := maxAbsDiff(got, want); d != 0 {
			t.Fatalf("nil/none epilogue differs from GEMMPacked by %v", d)
		}
	}
}

// TestGEMMPackedEpilogueQuickReturns: k==0 and alpha==0 still define the
// full output through the epilogue.
func TestGEMMPackedEpilogueQuickReturns(t *testing.T) {
	r := tensor.NewRNG(45)
	m, n := 6, 10
	bias := randSlice(r, n)
	pb := PackWeight(false, n, 0, nil)
	c := randSlice(r, m*n)
	GEMMPackedEpilogue(false, m, n, 0, 1, nil, pb, &Epilogue{Kind: EpilogueBias, Bias: bias}, c)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if c[i*n+j] != bias[j] {
				t.Fatalf("k=0 bias epilogue: c[%d][%d] = %v, want %v", i, j, c[i*n+j], bias[j])
			}
		}
	}
}

// TestGEMMPackedEpilogueAllPathsAgree runs every forced path override on
// the same problem; forced unfused paths are comparators for the fused
// engine, so all must agree within float tolerance.
func TestGEMMPackedEpilogueAllPathsAgree(t *testing.T) {
	r := tensor.NewRNG(46)
	m, n, k := 48, 80, 56
	a := randSlice(r, m*k)
	b := randSlice(r, k*n)
	pb := PackWeight(false, n, k, b)
	ep := makeEpilogue(r, EpilogueBiasResidualLayerNorm, m, n, false)
	ref := make([]float32, m*n)
	old := SetGEMMPath(GEMMPathNaive)
	GEMMPackedEpilogue(false, m, n, k, 1, a, pb, ep, ref)
	for _, p := range []GEMMPath{GEMMPathBlocked, GEMMPathPacked, GEMMPathBatched, GEMMPathFused, GEMMPathAuto, GEMMPathInt8} {
		SetGEMMPath(p)
		got := make([]float32, m*n)
		GEMMPackedEpilogue(false, m, n, k, 1, a, pb, ep, got)
		// LN divides by the row scale, so agreement within 1e-4 is tight.
		if d := maxAbsDiff(got, ref); d > 1e-4 {
			t.Errorf("path %v disagrees with naive by %v", p, d)
		}
	}
	SetGEMMPath(old)
}

// TestEpilogueDebugBiasScaleOnlySkewsFused: the fault-injection knob must
// skew the fused write-back (so the audit harness can prove it detects a
// broken epilogue) while leaving the unfused reference path honest.
func TestEpilogueDebugBiasScaleOnlySkewsFused(t *testing.T) {
	r := tensor.NewRNG(47)
	m, n, k := 32, 48, 40
	a := randSlice(r, m*k)
	b := randSlice(r, k*n)
	pb := PackWeight(false, n, k, b)
	ep := makeEpilogue(r, EpilogueBias, m, n, false)

	honest := make([]float32, m*n)
	oldPath := SetGEMMPath(GEMMPathFused)
	GEMMPackedEpilogue(false, m, n, k, 1, a, pb, ep, honest)

	prev := SetEpilogueDebugBiasScale(3)
	skewedFused := make([]float32, m*n)
	GEMMPackedEpilogue(false, m, n, k, 1, a, pb, ep, skewedFused)
	SetGEMMPath(GEMMPathPacked)
	reference := make([]float32, m*n)
	GEMMPackedEpilogue(false, m, n, k, 1, a, pb, ep, reference)
	SetEpilogueDebugBiasScale(prev)
	SetGEMMPath(oldPath)

	if prev != 1 {
		t.Fatalf("debug bias scale was %v at rest, want 1", prev)
	}
	if d := maxAbsDiff(skewedFused, honest); d == 0 {
		t.Error("debug bias scale had no effect on the fused path")
	}
	if d := maxAbsDiff(reference, honest); d != 0 {
		t.Errorf("debug bias scale leaked into the unfused reference path (diff %v)", d)
	}
}

// TestGEMMPackedEpilogueZeroAlloc: the fused engine must be allocation-free
// in steady state for all kinds, including LN row finalization. Wired into
// scripts/check.sh next to the other alloc guards.
func TestGEMMPackedEpilogueZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	r := tensor.NewRNG(48)
	m, n, k := 128, 128, 128
	a := randSlice(r, m*k)
	pb := PackWeight(false, n, k, randSlice(r, k*n))
	c := make([]float32, m*n)
	old := SetMaxWorkers(1)
	defer SetMaxWorkers(old)
	for _, kind := range epilogueKinds {
		ep := makeEpilogue(r, kind, m, n, true)
		GEMMPackedEpilogue(false, m, n, k, 1, a, pb, ep, c) // warm pools
		if avg := testing.AllocsPerRun(10, func() {
			GEMMPackedEpilogue(false, m, n, k, 1, a, pb, ep, c)
		}); avg != 0 {
			t.Errorf("%s: fused epilogue allocates %v per op in steady state, want 0", kind, avg)
		}
	}
}
