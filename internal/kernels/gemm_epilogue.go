package kernels

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Fused GEMM epilogues. The paper's operator-fusion study (Section 6.1)
// shows that once the GEMMs are fast, BERT's memory-bound tail operators —
// bias add, GeLU, residual add, LayerNorm — cap achieved throughput
// because every one of them re-reads and re-writes the full activation
// from DRAM. An epilogue folds that tail into the GEMM's own write-back:
// the element-wise part is applied per output tile while the tile is still
// cache-hot (immediately after the last depth block accumulates into it),
// and the LayerNorm row reduction runs as a finalize pass over the
// just-completed stripe, so the activation never makes a separate
// DRAM round trip.
//
// Numerics contract: the fused write-back performs the exact same float32
// expressions, in the same order, as the unfused reference sequence
// (AddBias → GeLUForward / AddBias → residual add → LayerNormForward),
// sharing the scalar helpers geluScalar and layerNormRowStats/-Apply. The
// engine never contracts a+b+c or reorders row reductions, so fused and
// unfused results are bitwise identical on the same micro-kernel backend —
// an invariant the audit harness pins (internal/audit).

// EpilogueKind selects which tail-operator sequence a GEMM epilogue fuses.
type EpilogueKind int32

const (
	// EpilogueNone applies no tail; the call behaves like GEMMPacked with
	// beta = 0.
	EpilogueNone EpilogueKind = iota
	// EpilogueBias adds a per-column bias: C[i][j] = acc + Bias[j].
	EpilogueBias
	// EpilogueBiasGeLU adds the bias then applies the exact GeLU:
	// C[i][j] = gelu(acc + Bias[j]). The pre-activation (acc + bias) is
	// optionally saved to X for the backward pass.
	EpilogueBiasGeLU
	// EpilogueBiasResidualLayerNorm adds bias and a residual skip input,
	// then layer-normalizes each completed row with the learned affine
	// transform: C[i] = LN(acc_i + Bias + Residual_i; Gamma, Beta, Eps).
	// The pre-LN rows and per-row statistics are optionally saved to
	// X/Mean/InvStd for the backward pass.
	EpilogueBiasResidualLayerNorm
)

// String names the kind for error messages and audit reports.
func (k EpilogueKind) String() string {
	switch k {
	case EpilogueNone:
		return "none"
	case EpilogueBias:
		return "bias"
	case EpilogueBiasGeLU:
		return "bias+gelu"
	case EpilogueBiasResidualLayerNorm:
		return "bias+residual+layernorm"
	}
	return "invalid"
}

// Epilogue describes the fused tail of one GEMM call. All slices are
// borrowed for the duration of the call; Save buffers (X, Mean, InvStd)
// may be nil when the caller does not need backward state (evaluation).
type Epilogue struct {
	Kind EpilogueKind

	// Bias is the per-output-column bias vector, length n. Required for
	// every kind except EpilogueNone.
	Bias []float32
	// Residual is the skip input added before LayerNorm, length m×n
	// (row-major, same leading dimension as C). LN kind only.
	Residual []float32
	// Gamma, Beta, Eps are the LayerNorm affine parameters (length n) and
	// variance epsilon. LN kind only.
	Gamma, Beta []float32
	Eps         float32

	// X, when non-nil (length m×n), receives the pre-activation: acc+bias
	// for EpilogueBiasGeLU (the GeLU backward input), acc+bias+residual
	// for the LN kind (the LayerNorm backward input).
	X []float32
	// Mean and InvStd, when non-nil (length m), receive the per-row LN
	// statistics for the backward pass. Both or neither must be set.
	Mean, InvStd []float32
}

// check validates the epilogue's buffers against the output shape; it
// panics on mismatch since a short buffer would corrupt training silently.
func (ep *Epilogue) check(m, n int) {
	switch ep.Kind {
	case EpilogueNone:
		return
	case EpilogueBias, EpilogueBiasGeLU:
	case EpilogueBiasResidualLayerNorm:
		if len(ep.Residual) != m*n {
			panic(fmt.Sprintf("kernels: Epilogue %s residual %d, want m*n=%d", ep.Kind, len(ep.Residual), m*n))
		}
		if len(ep.Gamma) != n || len(ep.Beta) != n {
			panic(fmt.Sprintf("kernels: Epilogue %s gamma=%d beta=%d, want n=%d", ep.Kind, len(ep.Gamma), len(ep.Beta), n))
		}
		if (ep.Mean != nil) != (ep.InvStd != nil) {
			panic("kernels: Epilogue LN must set Mean and InvStd together")
		}
		if ep.Mean != nil && (len(ep.Mean) != m || len(ep.InvStd) != m) {
			panic(fmt.Sprintf("kernels: Epilogue %s mean=%d invStd=%d, want m=%d", ep.Kind, len(ep.Mean), len(ep.InvStd), m))
		}
	default:
		panic(fmt.Sprintf("kernels: invalid EpilogueKind %d", int(ep.Kind)))
	}
	if len(ep.Bias) != n {
		panic(fmt.Sprintf("kernels: Epilogue %s bias %d, want n=%d", ep.Kind, len(ep.Bias), n))
	}
	if ep.X != nil && len(ep.X) != m*n {
		panic(fmt.Sprintf("kernels: Epilogue %s X save buffer %d, want m*n=%d", ep.Kind, len(ep.X), m*n))
	}
}

// epilogueDebugBiasScale is a fault-injection knob for the audit
// harness's self-test: the fused tile write-back multiplies the bias by
// this factor, so a deliberately skewed scale must surface as a
// divergence between the fused path and its unfused oracle. It exists
// only to prove the differential harness can catch a broken epilogue;
// production code never touches it. Stored as float bits for race-free
// access from the -race audit legs.
var epilogueDebugBiasScale atomic.Uint32

func init() { epilogueDebugBiasScale.Store(math.Float32bits(1)) }

// SetEpilogueDebugBiasScale installs a bias fault factor for the fused
// write-back (1 = correct behavior) and returns the previous factor.
// Test-only: see epilogueDebugBiasScale.
func SetEpilogueDebugBiasScale(s float32) float32 {
	return math.Float32frombits(epilogueDebugBiasScale.Swap(math.Float32bits(s)))
}

func debugBiasScale() float32 { return math.Float32frombits(epilogueDebugBiasScale.Load()) }

// GEMMPackedEpilogue computes C = alpha·op(A)·pb followed by the epilogue
// tail, overwriting C (beta = 0 semantics: epilogues define the full
// output). pb is op(B) packed by PackWeight, as in GEMMPacked.
//
// Routing mirrors the other entry points: the forced naive / blocked /
// packed / batched paths run the plain GEMM and then the unfused
// reference tail (the differential comparators for the audit harness),
// while auto and the forced fused path run the fused engine. Fused and
// unfused results are bitwise identical on the same backend (see the
// package comment above).
func GEMMPackedEpilogue(transA bool, m, n, k int, alpha float32, a []float32, pb *PackedB, ep *Epilogue, c []float32) {
	if ep == nil || ep.Kind == EpilogueNone {
		GEMMPacked(transA, m, n, k, alpha, a, pb, 0, c)
		return
	}
	if pb == nil {
		panic("kernels: GEMMPackedEpilogue with nil PackedB")
	}
	if !pb.Matches(pb.transB, n, k) {
		panic(fmt.Sprintf("kernels: GEMMPackedEpilogue operand packed for n=%d k=%d nr=%d, called with n=%d k=%d nr=%d — repack required",
			pb.n, pb.k, pb.nr, n, k, gemmNR))
	}
	checkGEMMArgs(transA, pb.transB, m, n, k, a, pb.src, c)
	if m == 0 || n == 0 {
		return
	}
	ep.check(m, n)
	if k == 0 || alpha == 0 {
		// BLAS quick return for the product; the epilogue still defines
		// the output (bias rows, or LN of bias+residual).
		scaleC(c[:m*n], 0)
		ep.applyReference(c, m, n)
		return
	}
	switch CurrentGEMMPath() {
	case GEMMPathNaive:
		scaleC(c[:m*n], 0)
		gemmNaivePar(transA, pb.transB, m, n, k, alpha, a, pb.src, c)
		ep.applyReference(c, m, n)
	case GEMMPathBlocked:
		scaleC(c[:m*n], 0)
		gemmBlocked(transA, pb.transB, m, n, k, alpha, a, pb.src, c, true)
		ep.applyReference(c, m, n)
	case GEMMPathPacked, GEMMPathBatched:
		scaleC(c[:m*n], 0)
		gemmPackedBlocked(transA, m, n, k, alpha, a, pb, c)
		ep.applyReference(c, m, n)
	case GEMMPathFused:
		gemmPackedFused(transA, m, n, k, alpha, a, pb, ep, c)
	default:
		// Auto (and the int8 override, whose redirect lives in the
		// caller): tiny products keep the naive fallback — the packed
		// engine never pays for itself down there — with the reference
		// tail; everything else runs fused.
		if 2*m*n*k < smallGEMMFlops {
			scaleC(c[:m*n], 0)
			gemmNaiveSerial(transA, pb.transB, m, n, k, alpha, a, pb.src, c)
			ep.applyReference(c, m, n)
			return
		}
		gemmPackedFused(transA, m, n, k, alpha, a, pb, ep, c)
	}
}

// applyReference applies the epilogue as the unfused kernel sequence the
// fused write-back replaces, reusing the stand-alone element-wise kernels
// so legacy call sites and epilogue call sites stay bitwise-identical.
func (ep *Epilogue) applyReference(c []float32, m, n int) {
	epilogueReferenceRuns.Inc()
	switch ep.Kind {
	case EpilogueNone:
	case EpilogueBias:
		AddBias(c, ep.Bias, m, n)
	case EpilogueBiasGeLU:
		AddBias(c, ep.Bias, m, n)
		if ep.X != nil {
			copyRows(ep.X, c)
		}
		GeLUForward(c, c)
	case EpilogueBiasResidualLayerNorm:
		AddBias(c, ep.Bias, m, n)
		AccumulateInto(c, ep.Residual)
		ep.finalizeLNRows(c, 0, m, n)
	}
}

// copyRows copies src into dst in parallel (save-buffer fill).
func copyRows(dst, src []float32) {
	checkSameLen("copyRows", dst, src)
	parallelFor(len(src), func(lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}

// ---------------------------------------------------------------------------
// Fused engine.

// gemmPackedFused is gemmPackedBlocked with the epilogue folded into the
// write-back: during the final depth block of each stripe the tile grid
// applies the element-wise part of the epilogue to each tile right after
// the micro-kernel finishes it (cache-hot), and LN rows are finalized per
// stripe immediately after its grid completes, while the rows are still
// warm.
func gemmPackedFused(transA bool, m, n, k int, alpha float32, a []float32, pb *PackedB, ep *Epilogue, c []float32) {
	switch ep.Kind {
	case EpilogueBias:
		epilogueFusedBias.Inc()
	case EpilogueBiasGeLU:
		epilogueFusedBiasGeLU.Inc()
	case EpilogueBiasResidualLayerNorm:
		epilogueFusedBiasResLN.Inc()
	}
	scaleC(c[:m*n], 0)
	mr := gemmMR
	kc0 := min(k, gemmKC)
	ap := getScratch(((min(m, gemmStripe) + mr - 1) / mr) * mr * kc0)
	g := gemmStatePool.Get().(*gemmState)
	g.ep = ep
	for io := 0; io < m; io += gemmStripe {
		ms := min(gemmStripe, m-io)
		for pc := 0; pc < k; pc += gemmKC {
			kcb := min(gemmKC, k-pc)
			g.epOn = pc+gemmKC >= k
			packA(transA, *ap, a, io, ms, pc, kcb, m, k, alpha, mr, true)
			g.run(c, *ap, pb.buf[pb.panelW*pc:], n, io, ms, 0, n, kcb, true)
		}
		if ep.Kind == EpilogueBiasResidualLayerNorm {
			ep.finalizeLNRows(c, io, ms, n)
		}
	}
	g.ep, g.epOn = nil, false
	gemmStatePool.Put(g)
	putScratch(ap)
}

// applyTile applies the element-wise part of the epilogue to the C region
// rows [r0, r1) × cols [c0, c1). c is the full output buffer with leading
// dimension ld; Residual and X share that leading dimension. For the LN
// kind only bias+residual happens here — normalization needs complete
// rows and runs in finalizeLNRows.
func (ep *Epilogue) applyTile(c []float32, ld, r0, r1, c0, c1 int) {
	bs := debugBiasScale()
	switch ep.Kind {
	case EpilogueBias:
		for r := r0; r < r1; r++ {
			row := c[r*ld : r*ld+c1]
			for j := c0; j < c1; j++ {
				row[j] += bs * ep.Bias[j]
			}
		}
	case EpilogueBiasGeLU:
		for r := r0; r < r1; r++ {
			row := c[r*ld : r*ld+c1]
			if ep.X != nil {
				xrow := ep.X[r*ld : r*ld+c1]
				for j := c0; j < c1; j++ {
					pre := row[j] + bs*ep.Bias[j]
					xrow[j] = pre
					row[j] = geluScalar(pre)
				}
				continue
			}
			for j := c0; j < c1; j++ {
				row[j] = geluScalar(row[j] + bs*ep.Bias[j])
			}
		}
	case EpilogueBiasResidualLayerNorm:
		for r := r0; r < r1; r++ {
			row := c[r*ld : r*ld+c1]
			res := ep.Residual[r*ld : r*ld+c1]
			for j := c0; j < c1; j++ {
				// Same association as the unfused sequence: (acc+bias)
				// first (AddBias), then +residual (AccumulateInto).
				row[j] = (row[j] + bs*ep.Bias[j]) + res[j]
			}
		}
	}
}

// epLNFinalizeState is the pooled parallel-region body of the LayerNorm
// finalize pass: item r normalizes row row0+r of c in place, saving the
// pre-LN row and statistics when the epilogue asks for them.
type epLNFinalizeState struct {
	c    []float32
	ep   *Epilogue
	row0 int
	n    int
}

var epLNFinalizePool = sync.Pool{New: func() any { return new(epLNFinalizeState) }}

func (s *epLNFinalizeState) runRange(lo, hi int) {
	n, ep := s.n, s.ep
	for t := lo; t < hi; t++ {
		r := s.row0 + t
		row := s.c[r*n : (r+1)*n]
		if ep.X != nil {
			copy(ep.X[r*n:(r+1)*n], row)
		}
		mu, istd := layerNormRowStats(row, ep.Eps)
		if ep.Mean != nil {
			ep.Mean[r] = mu
			ep.InvStd[r] = istd
		}
		layerNormRowApply(row, row, ep.Gamma, ep.Beta, mu, istd)
	}
}

// finalizeLNRows normalizes rows [row0, row0+rows) of c in place. Shared
// by the fused stripe finalize and the unfused reference applier, so both
// perform the identical per-row float sequence.
func (ep *Epilogue) finalizeLNRows(c []float32, row0, rows, n int) {
	s := epLNFinalizePool.Get().(*epLNFinalizeState)
	s.c, s.ep, s.row0, s.n = c, ep, row0, n
	parallelRun(rows, 4, s)
	s.c, s.ep = nil, nil
	epLNFinalizePool.Put(s)
}
