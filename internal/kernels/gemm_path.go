package kernels

import (
	"fmt"
	"sync/atomic"
)

// GEMMPath selects which implementation the GEMM entry points route to.
//
// Production runs leave the path on GEMMPathAuto, where routing is decided
// per call by product size and operand packing (small products take the
// naive loops, large ones the cache-blocked engine, pre-packed weights the
// packed engine, batches the flattened batched engine). The audit harness
// (internal/audit) forces one path for a whole forward+backward pass so
// every semantically-equivalent implementation can be differential-tested
// against the naive/serial oracle at model scale — including shapes the
// size heuristics would normally never send to a given path (edge tiles,
// k < NR, single-row stripes).
type GEMMPath int32

const (
	// GEMMPathAuto is the production default: size- and operand-based
	// routing, exactly as before path forcing existed.
	GEMMPathAuto GEMMPath = iota
	// GEMMPathNaive forces the unblocked row-saxpy/dot reference loops
	// everywhere (the oracle implementation).
	GEMMPathNaive
	// GEMMPathBlocked forces the cache-blocked packed engine with
	// per-call operand packing; pre-packed weights are ignored and
	// batches run per-matrix.
	GEMMPathBlocked
	// GEMMPathPacked is GEMMPathBlocked plus pre-packed weight reuse on
	// GEMMPacked calls; batches still run per-matrix.
	GEMMPathPacked
	// GEMMPathBatched is GEMMPathPacked plus the flattened batched
	// blocked engine for BatchedGEMM (the full fast-path stack).
	GEMMPathBatched
	// GEMMPathFused is GEMMPathBatched plus fused GEMM epilogues: on
	// GEMMPackedEpilogue calls the bias / bias+GeLU / bias+residual+
	// LayerNorm tail is applied inside the tile write-back instead of as
	// separate element-wise passes (gemm_epilogue.go). Plain GEMM and
	// BatchedGEMM entry points route exactly like GEMMPathBatched.
	GEMMPathFused
	// GEMMPathInt8 routes frozen-weight forward GEMMs (nn.Linear with a
	// cached int8 weight pack) through the quantized GEMMInt8 engine;
	// every other GEMM entry point falls back to auto routing. The
	// selection happens in the caller (nn.Linear checks this path), so
	// forcing it audits int8 forwards against the f32 oracle while the
	// backward pass stays in f32.
	GEMMPathInt8
)

// String names the path for mode tables and audit reports.
func (p GEMMPath) String() string {
	switch p {
	case GEMMPathAuto:
		return "auto"
	case GEMMPathNaive:
		return "naive"
	case GEMMPathBlocked:
		return "blocked"
	case GEMMPathPacked:
		return "packed"
	case GEMMPathBatched:
		return "batched"
	case GEMMPathFused:
		return "fused"
	case GEMMPathInt8:
		return "int8"
	}
	return "invalid"
}

// ParseGEMMPath maps a path name (as produced by String) back to its
// GEMMPath — the flag-parsing inverse for binaries that take a
// -gemm-path argument.
func ParseGEMMPath(s string) (GEMMPath, error) {
	for p := GEMMPathAuto; p <= GEMMPathInt8; p++ {
		if p.String() == s {
			return p, nil
		}
	}
	return GEMMPathAuto, fmt.Errorf("kernels: unknown GEMM path %q (want auto|naive|blocked|packed|batched|fused|int8)", s)
}

// gemmPath is the active path override; reads are a single atomic load on
// the GEMM hot paths (same cost class as the maxWorkers load they already
// do).
var gemmPath atomic.Int32

// SetGEMMPath installs a path override and returns the previous one.
// Like SetMaxWorkers it is safe for concurrent use, but callers that force
// a path mid-run get whichever routing each in-flight call observed.
func SetGEMMPath(p GEMMPath) GEMMPath {
	return GEMMPath(gemmPath.Swap(int32(p)))
}

// CurrentGEMMPath returns the active path override.
func CurrentGEMMPath() GEMMPath { return GEMMPath(gemmPath.Load()) }
