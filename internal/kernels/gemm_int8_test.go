package kernels

import (
	"math"
	"testing"

	"demystbert/internal/tensor"
)

// refGEMMInt8 recomputes the quantized product with plain nested loops
// from the packed operands: an independent oracle for the panel layouts
// and the zero-point correction. Epilogue handling reuses refEpilogue.
func refGEMMInt8(m, n, k int, a []float32, pb *PackedBInt8, c []float32) {
	kg := pb.kg
	for i := 0; i < m; i++ {
		row := a[i*k : (i+1)*k]
		var maxAbs float32
		for _, v := range row {
			if x := abs32(v); x > maxAbs {
				maxAbs = x
			}
		}
		var sa, inv float32
		if maxAbs > 0 {
			sa = maxAbs / int8ActMax
			inv = int8ActMax / maxAbs
		}
		qa := make([]int32, kg*int8KGroup)
		for d := range qa {
			qa[d] = int8ActZero
		}
		if maxAbs > 0 {
			// Same round-half-up-after-shift expression as quantU8 in the
			// engine's quantizer.
			for d, v := range row {
				q := int32(v*inv + (float32(int8ActZero) + 0.5))
				if q < 0 {
					q = 0
				} else if q > 255 {
					q = 255
				}
				qa[d] = q
			}
		}
		// Depth padding of the reference activations must be the raw zero
		// byte (0), matching the packed panels — not the zero point.
		for d := k; d < kg*int8KGroup; d++ {
			qa[d] = 0
		}
		for j := 0; j < n; j++ {
			p, lane := j/int8NR, j%int8NR
			base := p * kg * int8NR * int8KGroup
			var acc int32
			for d := 0; d < kg*int8KGroup; d++ {
				g, sub := d/int8KGroup, d%int8KGroup
				acc += qa[d] * int32(pb.qw[base+g*int8NR*int8KGroup+lane*int8KGroup+sub])
			}
			c[i*n+j] = sa * pb.scales[j] * float32(acc-int8ActZero*pb.colSum[j])
		}
	}
}

// TestInt8KernelAsmMatchesGo cross-checks the AVX2 micro-kernel against
// the portable Go one bit-for-bit on quantizer-realistic operands. Skipped
// when the assembly kernel is not installed (non-AVX2 host or NOSIMD).
func TestInt8KernelAsmMatchesGo(t *testing.T) {
	if !useSIMDKernel() {
		t.Skip("no SIMD backend on this host")
	}
	r := tensor.NewRNG(50)
	for _, kg := range []int{1, 2, 3, 7, 64, 193} {
		a := make([]uint8, kg*int8MR*int8KGroup)
		b := make([]int8, kg*int8NR*int8KGroup)
		for i := range a {
			a[i] = uint8(1 + r.Intn(255)) // quantized activations: [1,255]
		}
		for i := range b {
			b[i] = int8(r.Intn(2*int8WeightMax+1) - int8WeightMax) // [-63,63]
		}
		var accAsm, accGo [int8MR * int8NR]int32
		int8Kernel4x16SIMD(kg, a, b, &accAsm)
		gemmInt8Kernel4x16Go(kg, a, b, &accGo)
		if accAsm != accGo {
			t.Fatalf("kg=%d: asm and Go kernels disagree\nasm: %v\ngo:  %v", kg, accAsm, accGo)
		}
	}
}

// TestGEMMInt8MatchesQuantizedReference pins the engine (parallel panels,
// asm kernel, write-back) against the serial layout-independent oracle —
// integer accumulation makes this an exact, not tolerance, comparison.
func TestGEMMInt8MatchesQuantizedReference(t *testing.T) {
	r := tensor.NewRNG(51)
	for _, sh := range [][3]int{
		{1, 1, 1}, {3, 5, 7}, {4, 16, 8}, {5, 17, 33},
		{64, 64, 64}, {67, 96, 130}, {13, 200, 48},
	} {
		m, n, k := sh[0], sh[1], sh[2]
		a := randSlice(r, m*k)
		b := randSlice(r, k*n)
		for _, transB := range []bool{false, true} {
			w := b
			if transB { // store as N×K holding the same op(B)
				w = make([]float32, n*k)
				for d := 0; d < k; d++ {
					for j := 0; j < n; j++ {
						w[j*k+d] = b[d*n+j]
					}
				}
			}
			pb := PackWeightInt8(transB, n, k, w)
			got := make([]float32, m*n)
			GEMMInt8(m, n, k, a, pb, nil, got)
			want := make([]float32, m*n)
			refGEMMInt8(m, n, k, a, pb, want)
			for i := range got {
				if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
					t.Fatalf("transB=%v %dx%dx%d: engine diverges from reference at %d: %v vs %v",
						transB, m, n, k, i, got[i], want[i])
				}
			}
		}
	}
}

// TestGEMMInt8ApproximatesF32 bounds the quantization error against the
// float32 product on unit-scale data: with per-row 8-bit activations and
// per-column 7-bit weights the worst-case relative error per element is
// well under 2%·k-growth; empirically the max abs error on [-1,1] data
// stays below ~0.04 for BERT-sized depths.
func TestGEMMInt8ApproximatesF32(t *testing.T) {
	r := tensor.NewRNG(52)
	for _, sh := range [][3]int{{16, 64, 64}, {32, 128, 256}, {8, 96, 768}} {
		m, n, k := sh[0], sh[1], sh[2]
		a := randSlice(r, m*k)
		b := randSlice(r, k*n)
		pb := PackWeightInt8(false, n, k, b)
		got := make([]float32, m*n)
		GEMMInt8(m, n, k, a, pb, nil, got)
		want := make([]float32, m*n)
		refGEMM(false, false, m, n, k, 1, a, b, 0, want)
		// Scale-aware bound: quantization error grows with sqrt(k) times
		// the operand scales; 0.016·sqrt(k) leaves ~5 sigma of headroom
		// for uniform [-1,1] data while staying ~2% of the |result| scale
		// (which itself grows as sqrt(k/3)).
		tol := 0.016 * math.Sqrt(float64(k))
		if d := maxAbsDiff(got, want); d > tol {
			t.Errorf("%dx%dx%d: int8 vs f32 max abs err %v > %v", m, n, k, d, tol)
		}
	}
}

// TestGEMMInt8EpiloguesMatchReference checks each fused tail against the
// quantized-product oracle followed by the reference epilogue sequence.
func TestGEMMInt8EpiloguesMatchReference(t *testing.T) {
	r := tensor.NewRNG(53)
	m, n, k := 21, 49, 40
	a := randSlice(r, m*k)
	b := randSlice(r, k*n)
	pb := PackWeightInt8(false, n, k, b)
	for _, kind := range epilogueKinds {
		ep := makeEpilogue(r, kind, m, n, true)
		got := make([]float32, m*n)
		GEMMInt8(m, n, k, a, pb, ep, got)

		want := make([]float32, m*n)
		refGEMMInt8(m, n, k, a, pb, want)
		wep := cloneEpilogue(ep, m, n)
		refEpilogue(wep, want, m, n)

		if d := maxAbsDiff(got, want); d > 1e-5 {
			t.Errorf("%s: int8 epilogue max diff %v", kind, d)
		}
		if ep.X != nil {
			if d := maxAbsDiff(ep.X, wep.X); d > 1e-5 {
				t.Errorf("%s: X save max diff %v", kind, d)
			}
		}
		if ep.Mean != nil {
			if d := maxAbsDiff(ep.Mean, wep.Mean); d > 1e-5 {
				t.Errorf("%s: Mean max diff %v", kind, d)
			}
		}
	}
}

// TestGEMMInt8Deterministic: fixed-order integer accumulation must give
// bit-identical results across worker counts.
func TestGEMMInt8Deterministic(t *testing.T) {
	r := tensor.NewRNG(54)
	m, n, k := 37, 80, 96
	a := randSlice(r, m*k)
	pb := PackWeightInt8(false, n, k, randSlice(r, k*n))
	ep := makeEpilogue(r, EpilogueBiasResidualLayerNorm, m, n, false)
	ref := make([]float32, m*n)
	old := SetMaxWorkers(1)
	GEMMInt8(m, n, k, a, pb, ep, ref)
	for _, w := range []int{2, 5, 8} {
		SetMaxWorkers(w)
		got := make([]float32, m*n)
		GEMMInt8(m, n, k, a, pb, ep, got)
		for i := range got {
			if math.Float32bits(got[i]) != math.Float32bits(ref[i]) {
				t.Fatalf("workers=%d diverges from workers=1 at %d", w, i)
			}
		}
	}
	SetMaxWorkers(old)
}

// TestGEMMInt8EdgeCases: zero rows in A (sa=0 must yield exact zero
// contributions), k==0 quick return through the epilogue, zero dims.
func TestGEMMInt8EdgeCases(t *testing.T) {
	r := tensor.NewRNG(55)
	m, n, k := 5, 9, 12
	a := randSlice(r, m*k)
	for d := 0; d < k; d++ {
		a[2*k+d] = 0 // all-zero activation row
	}
	pb := PackWeightInt8(false, n, k, randSlice(r, k*n))
	c := make([]float32, m*n)
	GEMMInt8(m, n, k, a, pb, nil, c)
	for j := 0; j < n; j++ {
		if c[2*n+j] != 0 {
			t.Fatalf("zero activation row produced %v at col %d", c[2*n+j], j)
		}
	}

	// k==0: product is zero, epilogue still defines the output.
	bias := randSlice(r, n)
	pb0 := PackWeightInt8(false, n, 0, nil)
	c0 := randSlice(r, m*n)
	GEMMInt8(m, n, 0, nil, pb0, &Epilogue{Kind: EpilogueBias, Bias: bias}, c0)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if c0[i*n+j] != bias[j] {
				t.Fatalf("k=0: c[%d][%d] = %v, want bias %v", i, j, c0[i*n+j], bias[j])
			}
		}
	}

	// Zero output dims are no-ops.
	GEMMInt8(0, n, k, nil, pb, nil, nil)
	pbn := PackWeightInt8(false, 0, k, make([]float32, 0))
	GEMMInt8(m, 0, k, a, pbn, nil, nil)
}

// TestGEMMInt8WeightClampRange: packed weights must stay within ±63 so
// the VPMADDUBSW pair sums cannot saturate i16 (255·63·2 < 2^15).
func TestGEMMInt8WeightClampRange(t *testing.T) {
	r := tensor.NewRNG(56)
	n, k := 33, 50
	b := randSlice(r, k*n)
	for i := range b {
		b[i] *= 1e3 // large dynamic range still quantizes into the clamp
	}
	pb := PackWeightInt8(false, n, k, b)
	for i, q := range pb.qw {
		if q > int8WeightMax || q < -int8WeightMax {
			t.Fatalf("packed weight %d out of clamp range: %d", i, q)
		}
	}
}

// TestPackCacheInt8 exercises hit, generation rebuild, shape miss, and
// Invalidate on the int8 slots of the generation-counted cache.
func TestPackCacheInt8(t *testing.T) {
	r := tensor.NewRNG(57)
	n, k := 24, 16
	b := randSlice(r, k*n)
	var pc PackCache
	p1 := pc.GetInt8(false, n, k, b, 1)
	if p2 := pc.GetInt8(false, n, k, b, 1); p2 != p1 {
		t.Fatal("same generation did not hit the cache")
	}
	b[0] += 1
	p3 := pc.GetInt8(false, n, k, b, 2)
	if p3 == p1 {
		t.Fatal("generation bump did not rebuild the pack")
	}
	if p4 := pc.GetInt8(false, n+int8NR, k, append(b, make([]float32, k*int8NR)...), 2); p4.n != n+int8NR {
		t.Fatal("shape change did not rebuild the pack")
	}
	pc.Invalidate()
	if p5 := pc.GetInt8(false, n, k, b, 2); p5 == p3 {
		t.Fatal("Invalidate did not drop the int8 slots")
	}
	// f32 and int8 slots are independent.
	if pf := pc.Get(false, n, k, b, 2); pf == nil {
		t.Fatal("f32 slot unusable after int8 traffic")
	}
}

// TestGEMMInt8ZeroAlloc: quantize + compute must be allocation-free in
// steady state (scratch pools and pooled region states). Wired into
// scripts/check.sh next to the other alloc guards.
func TestGEMMInt8ZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	r := tensor.NewRNG(58)
	m, n, k := 128, 128, 128
	a := randSlice(r, m*k)
	pb := PackWeightInt8(false, n, k, randSlice(r, k*n))
	ep := makeEpilogue(r, EpilogueBias, m, n, false)
	c := make([]float32, m*n)
	old := SetMaxWorkers(1)
	defer SetMaxWorkers(old)
	GEMMInt8(m, n, k, a, pb, ep, c) // warm pools
	if avg := testing.AllocsPerRun(10, func() {
		GEMMInt8(m, n, k, a, pb, ep, c)
	}); avg != 0 {
		t.Errorf("GEMMInt8 allocates %v per op in steady state, want 0", avg)
	}
}
