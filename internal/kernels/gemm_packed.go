package kernels

import (
	"fmt"
	"sync/atomic"
)

// Pre-packed B operands. A weight matrix used as the B operand of many
// GEMMs (every Linear forward and dX-backward reuses the same W until the
// optimizer writes it) can be packed into micro-panels once and reused,
// skipping the packB copy on every call. The paper's Table 2b attributes
// most of BERT's iteration time to exactly these weight GEMMs, and packing
// is pure overhead on the hot path when the operand is static.
//
// Layout: for each gemmKC depth block pc, all ceil(n/nr) nr-column
// micro-panels of op(B)[pc:pc+kcb][0:n] are stored contiguously, zero-
// padded on the right — byte-for-byte what packB produces for a full-width
// column block. Block pc starts at offset panelW·pc (panelW = ceil(n/nr)·nr),
// so GEMMPacked can hand gemmState.run the same panel geometry the
// on-the-fly path uses and hit the identical micro-kernel schedule:
// results are bitwise equal to GEMM's blocked path on the same backend.

// PackedB is a weight matrix packed once into micro-panels for reuse as
// the B operand of GEMMPacked. It is immutable after PackWeight returns
// and safe for concurrent readers.
type PackedB struct {
	transB bool
	n, k   int
	nr     int       // micro-panel width the pack was built for
	panelW int       // ceil(n/nr)*nr
	buf    []float32 // panelW*k floats of packed panels
	src    []float32 // original operand, for the small-GEMM fallback
}

// PackWeight packs op(B) (K×N; stored K×N when transB is false, N×K when
// true) into KC-blocked micro-panels. The pack costs one pass over the
// matrix and one extra copy of it in memory; amortize it by reusing the
// result across calls (see PackCache).
func PackWeight(transB bool, n, k int, b []float32) *PackedB {
	if n < 0 || k < 0 {
		panic(fmt.Sprintf("kernels: PackWeight with negative dims n=%d k=%d", n, k))
	}
	if len(b) < k*n {
		panic(fmt.Sprintf("kernels: PackWeight B buffer %d < k*n=%d (transB=%v)", len(b), k*n, transB))
	}
	nr := gemmNR
	panelW := (n + nr - 1) / nr * nr
	pb := &PackedB{
		transB: transB,
		n:      n, k: k,
		nr:     nr,
		panelW: panelW,
		buf:    make([]float32, panelW*k),
		src:    b,
	}
	for pc := 0; pc < k; pc += gemmKC {
		kcb := min(gemmKC, k-pc)
		packB(transB, pb.buf[panelW*pc:panelW*pc+panelW*kcb], b, 0, n, pc, kcb, n, k, nr, true)
	}
	return pb
}

// TransB reports the orientation the pack was built for.
func (pb *PackedB) TransB() bool { return pb.transB }

// N returns the packed operand's column count (op(B) is K×N).
func (pb *PackedB) N() int { return pb.n }

// K returns the packed operand's depth.
func (pb *PackedB) K() int { return pb.k }

// Matches reports whether the pack can serve a GEMMPacked call with the
// given orientation and dimensions under the active micro-kernel backend
// (a pack built for one panel width is useless for another).
func (pb *PackedB) Matches(transB bool, n, k int) bool {
	return pb != nil && pb.transB == transB && pb.n == n && pb.k == k && pb.nr == gemmNR
}

// GEMMPacked computes C = alpha·op(A)·pb + beta·C, where pb is op(B)
// packed by PackWeight. Semantics match GEMM exactly — same quick
// returns, same panics, and bitwise-identical results on the same
// backend — minus the per-call packB pass.
func GEMMPacked(transA bool, m, n, k int, alpha float32, a []float32, pb *PackedB, beta float32, c []float32) {
	if pb == nil {
		panic("kernels: GEMMPacked with nil PackedB")
	}
	if !pb.Matches(pb.transB, n, k) {
		panic(fmt.Sprintf("kernels: GEMMPacked operand packed for n=%d k=%d nr=%d, called with n=%d k=%d nr=%d — repack required",
			pb.n, pb.k, pb.nr, n, k, gemmNR))
	}
	checkGEMMArgs(transA, pb.transB, m, n, k, a, pb.src, c)
	if m == 0 || n == 0 {
		return
	}
	scaleC(c[:m*n], beta)
	if k == 0 || alpha == 0 {
		return
	}
	switch CurrentGEMMPath() {
	case GEMMPathNaive:
		gemmNaivePar(transA, pb.transB, m, n, k, alpha, a, pb.src, c)
	case GEMMPathBlocked:
		// Forced blocked-without-prepack: ignore the cached panels and
		// pack the raw operand per call, like GEMM does.
		gemmBlocked(transA, pb.transB, m, n, k, alpha, a, pb.src, c, true)
	case GEMMPathPacked, GEMMPathBatched, GEMMPathFused:
		gemmPackedBlocked(transA, m, n, k, alpha, a, pb, c)
	default:
		if 2*m*n*k < smallGEMMFlops {
			// Same dispatch as GEMM: packing never paid for itself down
			// here, so the pack keeps the raw operand around for the
			// naive path.
			gemmNaiveSerial(transA, pb.transB, m, n, k, alpha, a, pb.src, c)
			return
		}
		gemmPackedBlocked(transA, m, n, k, alpha, a, pb, c)
	}
}

// gemmPackedBlocked is gemmBlocked with the packB pass deleted: only A is
// packed per (stripe, pc) step, and the pre-packed full-width B block is
// handed to the tile grid directly. There is no NC loop — NC existed to
// bound packB scratch, and column segmentation in gemmState.run already
// splits wide tile grids for load balance.
func gemmPackedBlocked(transA bool, m, n, k int, alpha float32, a []float32, pb *PackedB, c []float32) {
	mr := gemmMR
	kc0 := min(k, gemmKC)
	ap := getScratch(((min(m, gemmStripe) + mr - 1) / mr) * mr * kc0)
	g := gemmStatePool.Get().(*gemmState)
	for io := 0; io < m; io += gemmStripe {
		ms := min(gemmStripe, m-io)
		for pc := 0; pc < k; pc += gemmKC {
			kcb := min(gemmKC, k-pc)
			packA(transA, *ap, a, io, ms, pc, kcb, m, k, alpha, mr, true)
			g.run(c, *ap, pb.buf[pb.panelW*pc:], n, io, ms, 0, n, kcb, true)
		}
	}
	gemmStatePool.Put(g)
	putScratch(ap)
}

// ---------------------------------------------------------------------------
// Pack cache.

// packEntry snapshots one cached pack with the parameter generation it was
// built from.
type packEntry struct {
	gen uint64
	pb  *PackedB
}

// PackCache caches one PackedB per transpose orientation of a weight
// buffer, invalidated by a generation counter that the owner bumps on
// every mutation (nn.Param bumps it from the optimizer step). Lookups are
// lock-free; concurrent readers that miss simultaneously both repack —
// the duplicate work is benign and both packs are identical, so whichever
// Store lands last wins with no torn state.
type PackCache struct {
	e  [2]atomic.Pointer[packEntry]
	i8 [2]atomic.Pointer[packInt8Entry]
}

// packInt8Entry snapshots one cached int8 pack with the parameter
// generation it was quantized from.
type packInt8Entry struct {
	gen uint64
	pb  *PackedBInt8
}

// Get returns a pack of op(B) valid for generation gen, rebuilding it if
// the cached one is missing, stale, or was built for a different shape or
// micro-kernel backend.
func (pc *PackCache) Get(transB bool, n, k int, b []float32, gen uint64) *PackedB {
	slot := &pc.e[0]
	if transB {
		slot = &pc.e[1]
	}
	e := slot.Load()
	if e != nil && e.gen == gen && e.pb.Matches(transB, n, k) {
		packCacheHits.Inc()
		return e.pb
	}
	if e != nil && e.pb.Matches(transB, n, k) {
		// Same shape and backend, stale generation: the optimizer moved
		// the weights since the pack was built.
		packCacheRebuilds.Inc()
	} else {
		packCacheMisses.Inc()
	}
	pb := PackWeight(transB, n, k, b)
	slot.Store(&packEntry{gen: gen, pb: pb})
	return pb
}

// GetInt8 returns an int8 quantized pack of op(B) valid for generation
// gen, re-quantizing if the cached one is missing, stale, or was built
// for a different shape. The int8 layout is backend-independent (fixed
// 4×16 micro-tile), so unlike Get there is no micro-kernel dimension to
// the match.
func (pc *PackCache) GetInt8(transB bool, n, k int, b []float32, gen uint64) *PackedBInt8 {
	slot := &pc.i8[0]
	if transB {
		slot = &pc.i8[1]
	}
	e := slot.Load()
	if e != nil && e.gen == gen && e.pb.Matches(transB, n, k) {
		int8PackCacheHits.Inc()
		return e.pb
	}
	if e != nil && e.pb.Matches(transB, n, k) {
		int8PackCacheRebuilds.Inc()
	} else {
		int8PackCacheMisses.Inc()
	}
	pb := PackWeightInt8(transB, n, k, b)
	slot.Store(&packInt8Entry{gen: gen, pb: pb})
	return pb
}

// Invalidate drops both cached orientations (e.g. when the owning buffer
// is replaced rather than mutated in place).
func (pc *PackCache) Invalidate() {
	pc.e[0].Store(nil)
	pc.e[1].Store(nil)
	pc.i8[0].Store(nil)
	pc.i8[1].Store(nil)
}
