package kernels

import (
	"sync"
	"testing"

	"demystbert/internal/tensor"
)

// packedFull runs GEMMPacked with a fresh pack of b, for oracle comparisons.
func packedFull(transA, transB bool, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32) {
	GEMMPacked(transA, m, n, k, alpha, a, PackWeight(transB, n, k, b), beta, c)
}

// edgeDims returns the issue's edge shapes for the active backend:
// 1, mr±1, nr±1, KC±1 (positive, deduplicated, sorted small→large).
func edgeDims() []int {
	cand := []int{1, gemmMR - 1, gemmMR + 1, gemmNR - 1, gemmNR + 1, gemmKC - 1, gemmKC + 1}
	seen := map[int]bool{}
	var out []int
	for _, d := range cand {
		if d > 0 && !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	return out
}

// TestGEMMPackedEquivalence drives GEMMPacked against the float64
// reference over all four transpose combinations and the edge dims
// (m,n,k ∈ {1, mr±1, nr±1, KC±1}) on both micro-kernel backends. The KC±1
// dims ride in k only, where they cross the depth-block boundary; m and n
// use the micro-tile edges plus one multi-block size.
func TestGEMMPackedEquivalence(t *testing.T) {
	run := func(t *testing.T) {
		r := tensor.NewRNG(21)
		mnDims := []int{1, gemmMR - 1, gemmMR + 1, gemmNR - 1, gemmNR + 1, 2*gemmMR*gemmNR + 1}
		kDims := []int{1, gemmMR + 1, gemmNR + 1, gemmKC - 1, gemmKC + 1}
		for _, ta := range []bool{false, true} {
			for _, tb := range []bool{false, true} {
				for _, m := range mnDims {
					for _, n := range mnDims {
						for _, k := range kDims {
							if m < 1 || n < 1 {
								continue
							}
							a := randSlice(r, m*k)
							b := randSlice(r, k*n)
							got := randSlice(r, m*n)
							want := append([]float32(nil), got...)
							packedFull(ta, tb, m, n, k, 1.5, a, b, 0.5, got)
							refGEMM(ta, tb, m, n, k, 1.5, a, b, 0.5, want)
							if d := maxAbsDiff(got, want); d > tolFor(k) {
								t.Fatalf("GEMMPacked(tA=%v tB=%v %dx%dx%d) max diff %v", ta, tb, m, n, k, d)
							}
						}
					}
				}
			}
		}
	}
	t.Run("active", run)
	t.Run("scalar", func(t *testing.T) { withScalarKernel(func() { run(t) }) })
}

// TestGEMMPackedBitwiseMatchesGEMM: skipping packB must not change a single
// bit — the pre-packed panels are byte-identical to the on-the-fly ones and
// the micro-kernel schedule per C element is unchanged.
func TestGEMMPackedBitwiseMatchesGEMM(t *testing.T) {
	r := tensor.NewRNG(22)
	for _, tb := range []bool{false, true} {
		m, n, k := 64, 100, gemmKC + 44 // edge tiles both ways, two depth blocks
		a := randSlice(r, m*k)
		b := randSlice(r, k*n)
		want := make([]float32, m*n)
		got := make([]float32, m*n)
		GEMM(false, tb, m, n, k, 1, a, b, 0, want)
		packedFull(false, tb, m, n, k, 1, a, b, 0, got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("tB=%v: GEMMPacked differs from GEMM at %d: %v vs %v", tb, i, got[i], want[i])
			}
		}
	}
}

// TestGEMMPackedSmallFallback covers the sub-smallGEMMFlops dispatch, which
// computes from the pack's retained source operand.
func TestGEMMPackedSmallFallback(t *testing.T) {
	r := tensor.NewRNG(23)
	m, n, k := 4, 5, 6
	a := randSlice(r, m*k)
	b := randSlice(r, k*n)
	got := make([]float32, m*n)
	want := make([]float32, m*n)
	packedFull(false, true, m, n, k, 2, a, b, 0, got)
	refGEMM(false, true, m, n, k, 2, a, b, 0, want)
	if d := maxAbsDiff(got, want); d > tolFor(k) {
		t.Fatalf("small GEMMPacked max diff %v", d)
	}
}

func TestGEMMPackedArgChecks(t *testing.T) {
	pb := PackWeight(false, 8, 8, make([]float32, 64))
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("nil pack", func() {
		GEMMPacked(false, 4, 8, 8, 1, make([]float32, 32), nil, 0, make([]float32, 32))
	})
	mustPanic("shape mismatch", func() {
		GEMMPacked(false, 4, 8, 9, 1, make([]float32, 36), pb, 0, make([]float32, 32))
	})
	mustPanic("short A", func() {
		GEMMPacked(false, 4, 8, 8, 1, make([]float32, 31), pb, 0, make([]float32, 32))
	})
	mustPanic("short C", func() {
		GEMMPacked(false, 4, 8, 8, 1, make([]float32, 32), pb, 0, make([]float32, 31))
	})
}

// TestGEMMPackedBackendMismatchPanics: a pack built for the SIMD panel
// width is rejected under the scalar backend instead of misreading panels.
func TestGEMMPackedBackendMismatchPanics(t *testing.T) {
	if !useSIMDKernel() {
		t.Skip("no SIMD kernel on this platform")
	}
	pb := PackWeight(false, 64, 64, make([]float32, 64*64))
	withScalarKernel(func() {
		defer func() {
			if recover() == nil {
				t.Fatal("backend-mismatched pack did not panic")
			}
		}()
		GEMMPacked(false, 32, 64, 64, 1, make([]float32, 32*64), pb, 0, make([]float32, 32*64))
	})
}

// TestPackCacheInvalidation: a stale generation returns the cached (old)
// pack; bumping the generation rebuilds from the live buffer, matching a
// fresh PackWeight bitwise.
func TestPackCacheInvalidation(t *testing.T) {
	r := tensor.NewRNG(24)
	n, k := 48, 32
	b := randSlice(r, n*k)
	var cache PackCache
	pb0 := cache.Get(true, n, k, b, 0)
	if cache.Get(true, n, k, b, 0) != pb0 {
		t.Fatal("unchanged generation must return the cached pack")
	}
	for i := range b {
		b[i] += 1
	}
	if cache.Get(true, n, k, b, 0) != pb0 {
		t.Fatal("mutation without a generation bump must (by contract) keep serving the old pack")
	}
	pb1 := cache.Get(true, n, k, b, 1)
	if pb1 == pb0 {
		t.Fatal("generation bump must rebuild the pack")
	}
	fresh := PackWeight(true, n, k, b)
	for i := range fresh.buf {
		if pb1.buf[i] != fresh.buf[i] {
			t.Fatalf("rebuilt pack differs from fresh pack at %d", i)
		}
	}
	// Orientation slots are independent.
	if cache.Get(false, k, n, b, 1) == pb1 {
		t.Fatal("transpose orientations must cache separately")
	}
	cache.Invalidate()
	if cache.Get(true, n, k, b, 1) == pb1 {
		t.Fatal("Invalidate must drop cached packs")
	}
}

// TestPackCacheConcurrentReaders hammers one cache from several goroutines
// under -race: concurrent Get hits, misses (via generation bumps), and
// GEMMPacked consumers of whatever pack they observe.
func TestPackCacheConcurrentReaders(t *testing.T) {
	r := tensor.NewRNG(25)
	m, n, k := 24, 40, 32
	bBuf := randSlice(r, k*n)
	a := randSlice(r, m*k)
	var cache PackCache
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			c := make([]float32, m*n)
			for i := 0; i < 50; i++ {
				// Readers advance generations at different paces, so hits
				// and concurrent rebuilds both occur; the buffer itself is
				// never written, per the reader contract.
				gen := uint64(i / (2 + seed))
				pb := cache.Get(false, n, k, bBuf, gen)
				GEMMPacked(false, m, n, k, 1, a, pb, 0, c)
			}
		}(g)
	}
	wg.Wait()
	want := make([]float32, m*n)
	refGEMM(false, false, m, n, k, 1, a, bBuf, 0, want)
	got := make([]float32, m*n)
	GEMMPacked(false, m, n, k, 1, a, cache.Get(false, n, k, bBuf, 99), 0, got)
	if d := maxAbsDiff(got, want); d > tolFor(k) {
		t.Fatalf("post-race pack wrong: max diff %v", d)
	}
}

// TestBatchedGEMMBlockedEquivalence drives the flattened blocked engine
// against the float64 reference: all four transpose combinations, edge
// dims, strided (non-contiguous) layouts, and a beta accumulate, on both
// backends.
func TestBatchedGEMMBlockedEquivalence(t *testing.T) {
	run := func(t *testing.T) {
		r := tensor.NewRNG(26)
		dims := []int{1, gemmMR + 1, gemmNR - 1, 2*gemmNR + 3}
		for _, ta := range []bool{false, true} {
			for _, tb := range []bool{false, true} {
				for _, d := range dims {
					batch, m, n, k := 5, d, dims[(d+1)%len(dims)], dims[(d+2)%len(dims)]
					sA, sB, sC := m*k+3, k*n+1, m*n+7 // slack between matrices
					a := randSlice(r, (batch-1)*sA+m*k)
					b := randSlice(r, (batch-1)*sB+k*n)
					got := randSlice(r, (batch-1)*sC+m*n)
					want := append([]float32(nil), got...)
					// Call the engine directly: the public BatchedGEMM may
					// route to the per-matrix path (serial pool, big
					// matrices), and this test is about the flattened engine.
					batchedBlocked(batch, ta, tb, m, n, k, 1.25, a, sA, b, sB, 0.5, got, sC)
					for i := 0; i < batch; i++ {
						refGEMM(ta, tb, m, n, k, 1.25, a[i*sA:], b[i*sB:], 0.5, want[i*sC:i*sC+m*n])
					}
					if d := maxAbsDiff(got, want); d > tolFor(k) {
						t.Fatalf("BatchedGEMM(tA=%v tB=%v batch=%d %dx%dx%d) max diff %v", ta, tb, batch, m, n, k, d)
					}
				}
			}
		}
	}
	t.Run("active", run)
	t.Run("scalar", func(t *testing.T) { withScalarKernel(func() { run(t) }) })
}

// TestBatchedGEMMBlockedMatchesPerMatrix fuzzes random shapes through both
// batched implementations.
func TestBatchedGEMMBlockedMatchesPerMatrix(t *testing.T) {
	r := tensor.NewRNG(27)
	for trial := 0; trial < 30; trial++ {
		batch := 2 + r.Intn(7)
		m, n, k := 1+r.Intn(40), 1+r.Intn(40), 1+r.Intn(40)
		ta, tb := r.Intn(2) == 1, r.Intn(2) == 1
		a := randSlice(r, batch*m*k)
		b := randSlice(r, batch*k*n)
		got := make([]float32, batch*m*n)
		want := make([]float32, batch*m*n)
		batchedBlocked(batch, ta, tb, m, n, k, 1, a, m*k, b, k*n, 0, got, m*n)
		BatchedGEMMPerMatrix(batch, ta, tb, m, n, k, 1, a, m*k, b, k*n, 0, want, m*n)
		if d := maxAbsDiff(got, want); d > tolFor(k) {
			t.Fatalf("trial %d (tA=%v tB=%v batch=%d %dx%dx%d): blocked vs per-matrix diff %v",
				trial, ta, tb, batch, m, n, k, d)
		}
	}
}

// TestBatchedGEMMDeterministic: the flattened schedule writes every C tile
// from exactly one work item, so repeated runs are bitwise identical even
// with parallel workers.
func TestBatchedGEMMDeterministic(t *testing.T) {
	r := tensor.NewRNG(28)
	batch, m, n, k := 16, 33, 29, 65
	a := randSlice(r, batch*m*k)
	b := randSlice(r, batch*k*n)
	first := make([]float32, batch*m*n)
	batchedBlocked(batch, false, true, m, n, k, 1, a, m*k, b, k*n, 0, first, m*n)
	for run := 0; run < 3; run++ {
		c := make([]float32, batch*m*n)
		batchedBlocked(batch, false, true, m, n, k, 1, a, m*k, b, k*n, 0, c, m*n)
		for i := range c {
			if c[i] != first[i] {
				t.Fatalf("run %d differs at %d", run, i)
			}
		}
	}
}

// TestBatchedGEMMShortBufferPanics covers the up-front whole-batch bounds
// check: a buffer that holds the first matrix but not the last must panic
// before any compute instead of corrupting a later batch entry.
func TestBatchedGEMMShortBufferPanics(t *testing.T) {
	batch, m, n, k := 3, 4, 4, 4
	stride := 20 // 16 + slack
	okA := make([]float32, (batch-1)*stride+m*k)
	okB := make([]float32, (batch-1)*stride+k*n)
	okC := make([]float32, (batch-1)*stride+m*n)
	cases := []struct {
		name    string
		a, b, c []float32
	}{
		{"short A", okA[:len(okA)-1], okB, okC},
		{"short B", okA, okB[:len(okB)-1], okC},
		{"short C", okA, okB, okC[:len(okC)-1]},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			BatchedGEMM(batch, false, false, m, n, k, 1, tc.a, stride, tc.b, stride, 0, tc.c, stride)
		}()
	}
	// The exact fit must not panic.
	BatchedGEMM(batch, false, false, m, n, k, 1, okA, stride, okB, stride, 0, okC, stride)
}

// TestBatchedGEMMQuickReturns covers alpha=0/k=0 (beta-scale only) and
// empty dims through the batched entry point.
func TestBatchedGEMMQuickReturns(t *testing.T) {
	c := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	BatchedGEMM(2, false, false, 2, 2, 0, 1, nil, 0, nil, 0, 2, c, 4)
	for i, v := range c {
		if v != float32(2*(i+1)) {
			t.Fatalf("k=0 beta=2: c[%d] = %v", i, v)
		}
	}
	BatchedGEMM(2, false, false, 0, 2, 2, 1, nil, 0, make([]float32, 8), 4, 0, nil, 0)
}

// TestBatchedGEMMPackCapFallback pushes a batch over the packed-scratch
// cap and checks the per-matrix fallback produces the same results.
func TestBatchedGEMMPackCapFallback(t *testing.T) {
	// mRound+nRound ≈ 2·520 with k=2048: 3 matrices ≈ 6.4M floats > cap/…
	// choose shape so batch*(mRound+nRound)*k > 1<<23 with modest memory.
	batch, m, n, k := 3, 516, 516, 2048
	if int64(batch)*int64(m+n+16)*int64(k) <= batchedPackCapFloats {
		t.Skip("shape no longer exceeds the cap")
	}
	r := tensor.NewRNG(29)
	a := randSlice(r, batch*m*k)
	b := randSlice(r, batch*k*n)
	got := make([]float32, batch*m*n)
	want := make([]float32, batch*m*n)
	BatchedGEMM(batch, false, true, m, n, k, 1, a, m*k, b, k*n, 0, got, m*n)
	BatchedGEMMPerMatrix(batch, false, true, m, n, k, 1, a, m*k, b, k*n, 0, want, m*n)
	if d := maxAbsDiff(got, want); d > tolFor(k) {
		t.Fatalf("cap-fallback diff %v", d)
	}
}
