package kernels

import (
	"fmt"
	"math"
	"testing"

	"demystbert/internal/tensor"
)

// blockedFull applies full GEMM semantics (beta scaling, quick returns)
// around a forced gemmBlocked call, bypassing the small-size dispatch to
// the naive path so tests exercise the blocked code on any shape.
func blockedFull(transA, transB bool, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32, par bool) {
	checkGEMMArgs(transA, transB, m, n, k, a, b, c)
	if m == 0 || n == 0 {
		return
	}
	scaleC(c[:m*n], beta)
	if k == 0 || alpha == 0 {
		return
	}
	gemmBlocked(transA, transB, m, n, k, alpha, a, b, c, par)
}

// withScalarKernel runs f under the portable micro-kernel, then restores
// the best available backend.
func withScalarKernel(f func()) {
	useScalarKernel()
	defer useSIMDKernel()
	f()
}

// tolFor scales the comparison tolerance with the accumulation depth: the
// blocked kernel sums k products in float32 with a different association
// than the float64 reference.
func tolFor(k int) float64 { return 1e-5 * float64(k+16) }

// TestGEMMBlockedEquivalence is the blocked-vs-naive oracle suite required
// by the refactor: all four transpose combinations, odd/prime and
// block-boundary-crossing dims, alpha/beta grid, on both micro-kernel
// backends and both the parallel and serial drivers.
func TestGEMMBlockedEquivalence(t *testing.T) {
	dims := []int{1, 3, 17, 63, 129, 257}
	alphas := []float32{0, 1, -0.5}
	betas := []float32{0, 1, -0.5}
	r := tensor.NewRNG(11)
	run := func(t *testing.T, par bool) {
		for _, ta := range []bool{false, true} {
			for _, tb := range []bool{false, true} {
				for i, m := range dims {
					n := dims[(i+1)%len(dims)]
					k := dims[(i+2)%len(dims)]
					a := randSlice(r, m*k)
					b := randSlice(r, k*n)
					cInit := randSlice(r, m*n)
					for _, alpha := range alphas {
						for _, beta := range betas {
							got := append([]float32(nil), cInit...)
							want := append([]float32(nil), cInit...)
							blockedFull(ta, tb, m, n, k, alpha, a, b, beta, got, par)
							GEMMNaive(ta, tb, m, n, k, alpha, a, b, beta, want)
							if d := maxAbsDiff(got, want); d > tolFor(k) {
								t.Fatalf("tA=%v tB=%v %dx%dx%d alpha=%v beta=%v: max diff %v",
									ta, tb, m, n, k, alpha, beta, d)
							}
						}
					}
				}
			}
		}
	}
	t.Run("simd-parallel", func(t *testing.T) { run(t, true) })
	t.Run("simd-serial", func(t *testing.T) { run(t, false) })
	t.Run("scalar-parallel", func(t *testing.T) {
		withScalarKernel(func() { run(t, true) })
	})
	t.Run("scalar-serial", func(t *testing.T) {
		withScalarKernel(func() { run(t, false) })
	})
}

// TestGEMMBlockedEquivalenceWorkers exercises the dynamic tile scheduler
// at several pool widths on a shape spanning many blocks.
func TestGEMMBlockedEquivalenceWorkers(t *testing.T) {
	r := tensor.NewRNG(12)
	m, n, k := 250, 310, 290 // crosses MC, NR, and KC boundaries unevenly
	a := randSlice(r, m*k)
	b := randSlice(r, k*n)
	want := make([]float32, m*n)
	GEMMNaive(false, false, m, n, k, 1, a, b, 0, want)
	for _, w := range []int{1, 2, 3, 4, 8} {
		old := SetMaxWorkers(w)
		got := make([]float32, m*n)
		blockedFull(false, false, m, n, k, 1, a, b, 0, got, true)
		SetMaxWorkers(old)
		if d := maxAbsDiff(got, want); d > tolFor(k) {
			t.Fatalf("workers=%d: max diff %v", w, d)
		}
	}
}

// TestGEMMBlockedDeterministic: repeated parallel runs must be bitwise
// identical — every C tile is owned by exactly one worker with a fixed
// loop order.
func TestGEMMBlockedDeterministic(t *testing.T) {
	r := tensor.NewRNG(13)
	m, n, k := 130, 257, 129
	a := randSlice(r, m*k)
	b := randSlice(r, k*n)
	old := SetMaxWorkers(4)
	defer SetMaxWorkers(old)
	first := make([]float32, m*n)
	blockedFull(false, true, m, n, k, 1.25, a, b, 0, first, true)
	for run := 0; run < 5; run++ {
		got := make([]float32, m*n)
		blockedFull(false, true, m, n, k, 1.25, a, b, 0, got, true)
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("run %d: non-deterministic result at %d: %v vs %v", run, i, got[i], first[i])
			}
		}
	}
}

// TestGEMMNaNPropagation pins the IEEE semantics the old fast path broke:
// a zero coefficient must not suppress a NaN/Inf contribution from the
// other operand, because 0·NaN = NaN and 0·Inf = NaN.
func TestGEMMNaNPropagation(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	isNaN := func(v float32) bool { return v != v }

	// Small shape → naive path. A's row has a zero exactly where B's
	// column carries the special value.
	t.Run("naive-small", func(t *testing.T) {
		for _, special := range []float32{nan, inf} {
			a := []float32{0, 1}          // 1×2
			b := []float32{special, 2, 3, 4} // 2×2
			c := make([]float32, 2)
			GEMM(false, false, 1, 2, 2, 1, a, b, 0, c)
			if !isNaN(c[0]) {
				t.Fatalf("0·%v dropped: c = %v", special, c)
			}
			if c[1] != 0*2+1*4 {
				t.Fatalf("finite column corrupted: c = %v", c)
			}
		}
	})

	// Large shape → blocked path; also run the explicit naive oracle and
	// the serial (batched) path on the same data.
	t.Run("all-paths-large", func(t *testing.T) {
		m, n, k := 64, 64, 8 // 2mnk = 65536 ≥ smallGEMMFlops
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		for i := range a {
			a[i] = 1
		}
		for i := range b {
			b[i] = 1
		}
		a[0] = 0     // A[0][0] = 0
		b[0] = nan   // B[0][0] = NaN: contributes 0·NaN to C[0][0]
		b[1] = inf   // B[0][1] = Inf: contributes 0·Inf to C[0][1]
		paths := []struct {
			name string
			run  func(c []float32)
		}{
			{"GEMM", func(c []float32) { GEMM(false, false, m, n, k, 1, a, b, 0, c) }},
			{"GEMMNaive", func(c []float32) { GEMMNaive(false, false, m, n, k, 1, a, b, 0, c) }},
			{"gemmSerial", func(c []float32) { gemmSerial(false, false, m, n, k, 1, a, b, 0, c) }},
			{"blocked-scalar", func(c []float32) {
				withScalarKernel(func() { blockedFull(false, false, m, n, k, 1, a, b, 0, c, true) })
			}},
		}
		for _, p := range paths {
			c := make([]float32, m*n)
			p.run(c)
			checkNaN(t, p.name, c)
		}
	})

	// BLAS quick-return semantics stay: alpha == 0 skips the product, so
	// NaN in A/B does not reach C.
	t.Run("alpha-zero-quick-return", func(t *testing.T) {
		a := []float32{nan, nan}
		b := []float32{nan, nan, nan, nan}
		c := []float32{5, 7}
		GEMM(false, false, 1, 2, 2, 0, a, b, 2, c)
		if c[0] != 10 || c[1] != 14 {
			t.Fatalf("alpha=0 must only scale C: %v", c)
		}
	})
}

func checkNaN(t *testing.T, name string, c []float32) {
	t.Helper()
	if c[0] == c[0] {
		t.Fatalf("%s: 0·NaN dropped, c[0] = %v", name, c[0])
	}
	if c[1] == c[1] {
		t.Fatalf("%s: 0·Inf dropped, c[1] = %v", name, c[1])
	}
	// A finite entry away from the poisoned lanes must stay exact.
	if c[len(c)-1] != 8 {
		t.Fatalf("%s: finite lane corrupted: %v", name, c[len(c)-1])
	}
}

// TestGEMMZeroAllocSteadyState: after warm-up, the blocked GEMM, the
// pre-packed GEMM, and the batched blocked engine must not allocate —
// pack scratch, tile state, and pool regions are all recycled, and
// GEMMPacked's operand pack is built once outside the hot loop. This is
// the alloc guard wired into scripts/check.sh.
func TestGEMMZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	r := tensor.NewRNG(14)
	m, n, k := 192, 192, 192
	a := randSlice(r, m*k)
	b := randSlice(r, k*n)
	c := make([]float32, m*n)
	pb := PackWeight(true, n, k, randSlice(r, n*k))
	const batch = 8
	ab := randSlice(r, batch*32*32)
	bb := randSlice(r, batch*32*32)
	cb := make([]float32, batch*32*32)

	old := SetMaxWorkers(1)
	defer SetMaxWorkers(old)
	GEMM(false, false, m, n, k, 1, a, b, 0, c) // warm the scratch pools
	GEMMPacked(false, m, n, k, 1, a, pb, 0, c)
	BatchedGEMM(batch, false, true, 32, 32, 32, 1, ab, 32*32, bb, 32*32, 0, cb, 32*32)
	if avg := testing.AllocsPerRun(10, func() {
		GEMM(false, false, m, n, k, 1, a, b, 0, c)
	}); avg != 0 {
		t.Errorf("GEMM allocates %v per op in steady state, want 0", avg)
	}
	if avg := testing.AllocsPerRun(10, func() {
		GEMMPacked(false, m, n, k, 1, a, pb, 0, c)
	}); avg != 0 {
		t.Errorf("GEMMPacked allocates %v per op in steady state, want 0", avg)
	}
	if avg := testing.AllocsPerRun(10, func() {
		BatchedGEMM(batch, false, true, 32, 32, 32, 1, ab, 32*32, bb, 32*32, 0, cb, 32*32)
	}); avg != 0 {
		t.Errorf("BatchedGEMM allocates %v per op in steady state, want 0", avg)
	}
	// The public entry may route to the per-matrix path (serial pool, big
	// matrices); pin the flattened engine itself too.
	batchedBlocked(batch, false, true, 32, 32, 32, 1, ab, 32*32, bb, 32*32, 0, cb, 32*32)
	if avg := testing.AllocsPerRun(10, func() {
		batchedBlocked(batch, false, true, 32, 32, 32, 1, ab, 32*32, bb, 32*32, 0, cb, 32*32)
	}); avg != 0 {
		t.Errorf("batchedBlocked allocates %v per op in steady state, want 0", avg)
	}
}

// TestBatchedGEMMLargePerElement routes batch elements through the blocked
// serial path (paper-scale attention scores) and checks against the
// reference.
func TestBatchedGEMMLargePerElement(t *testing.T) {
	r := tensor.NewRNG(15)
	batch, m, n, k := 4, 128, 128, 64
	a := randSlice(r, batch*m*k)
	b := randSlice(r, batch*k*n)
	got := make([]float32, batch*m*n)
	want := make([]float32, batch*m*n)
	BatchedGEMM(batch, false, true, m, n, k, 1, a, m*k, b, k*n, 0, got, m*n)
	for i := 0; i < batch; i++ {
		refGEMM(false, true, m, n, k, 1, a[i*m*k:], b[i*k*n:], 0, want[i*m*n:(i+1)*m*n])
	}
	if d := maxAbsDiff(got, want); d > tolFor(k) {
		t.Fatalf("BatchedGEMM blocked-serial max diff %v", d)
	}
}

// TestGEMMBlockedAgainstFloat64Ref cross-checks the SIMD kernel against a
// float64 triple-loop on a shape whose panels exercise full and edge tiles
// in both directions.
func TestGEMMBlockedAgainstFloat64Ref(t *testing.T) {
	r := tensor.NewRNG(16)
	for _, tc := range []struct{ ta, tb bool }{{false, false}, {false, true}, {true, false}, {true, true}} {
		m, n, k := 123, 131, 137
		a := randSlice(r, m*k)
		b := randSlice(r, k*n)
		got := randSlice(r, m*n)
		want := append([]float32(nil), got...)
		blockedFull(tc.ta, tc.tb, m, n, k, 1.5, a, b, -0.5, got, true)
		refGEMM(tc.ta, tc.tb, m, n, k, 1.5, a, b, -0.5, want)
		if d := maxAbsDiff(got, want); d > tolFor(k) {
			t.Fatalf("tA=%v tB=%v: max diff %v vs float64 ref", tc.ta, tc.tb, d)
		}
	}
}

// TestGEMMPaperShapeSmoke runs one BERT-shaped GEMM per transpose combo the
// training graph actually emits (fwd NT, dgrad NN, wgrad TN) at reduced
// scale.
func TestGEMMPaperShapeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-shape smoke is not short")
	}
	r := tensor.NewRNG(17)
	shapes := []struct {
		name   string
		ta, tb bool
		m, n, k int
	}{
		{"fwd-NT", false, true, 128, 256, 256},
		{"dgrad-NN", false, false, 128, 256, 256},
		{"wgrad-TN", true, false, 256, 256, 128},
	}
	for _, s := range shapes {
		t.Run(s.name, func(t *testing.T) {
			a := randSlice(r, s.m*s.k)
			b := randSlice(r, s.k*s.n)
			got := make([]float32, s.m*s.n)
			want := make([]float32, s.m*s.n)
			GEMM(s.ta, s.tb, s.m, s.n, s.k, 1, a, b, 0, got)
			GEMMNaive(s.ta, s.tb, s.m, s.n, s.k, 1, a, b, 0, want)
			if d := maxAbsDiff(got, want); d > tolFor(s.k) {
				t.Fatalf("%s %s: max diff %v", s.name, fmt.Sprintf("%dx%dx%d", s.m, s.n, s.k), d)
			}
		})
	}
}
