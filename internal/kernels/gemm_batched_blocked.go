package kernels

import "sync"

// Blocked batched GEMM. The per-matrix path (BatchedGEMMPerMatrix) has two
// structural problems for BERT's attention products: parallelism stops at
// the batch dimension, so B·h smaller than the worker count leaves cores
// idle, and each sub-smallGEMMFlops per-head n×n×dHead product falls back
// to the scalar naive loops because packing can't pay for itself inside
// one tiny matrix. This engine fixes both by treating the whole batch as
// one kernel, the way attention GEMMs launch on the paper's GPU
// (Section 3.2.2):
//
//	phase 1: pack op(A_i) and op(B_i) of every matrix into micro-panels
//	         (parallel over the batch; alpha folded into the A pack)
//	phase 2: flatten (matrix × MC row block × column segment) into one
//	         worker-pool region; each item beta-scales its C region and
//	         sweeps the SIMD micro-kernel over its panels per depth block
//
// Packing is amortized across the batch in phase 1, so even 16×16×8
// matrices run through the register-tiled micro-kernel in phase 2 — the
// "small-GEMM" path is microTileSweep with no blocked-state machinery
// around it. Every C element is written by exactly one item with a fixed
// loop order, so results are bitwise deterministic regardless of
// scheduling.
const (
	// batchedPackCapFloats bounds the phase-1 scratch (packed copies of
	// all A and B matrices). Attention-scale batches stay far below it;
	// batches of very large matrices fall back to the per-matrix path,
	// whose scratch is bounded by the single-GEMM cache blocking.
	batchedPackCapFloats = 1 << 23 // 32 MiB

	// batchedGrainFlops merges tiny work items into one dispatch chunk so
	// a batch of small matrices doesn't pay per-item handout overhead.
	batchedGrainFlops = 1 << 16
)

// batchedBlocked runs the flattened two-phase schedule. The caller has
// validated arguments and handled batch<2, empty dims, and the quick
// alpha/k returns.
func batchedBlocked(batch int, transA, transB bool, m, n, k int, alpha float32, a []float32, sA int, b []float32, sB int, beta float32, c []float32, sC int) {
	mr, nr := gemmMR, gemmNR
	mRound := (m + mr - 1) / mr * mr
	nRound := (n + nr - 1) / nr * nr
	apb := getScratch(batch * mRound * k)
	bpb := getScratch(batch * nRound * k)

	p := batchedPackPool.Get().(*batchedPackState)
	p.a, p.b, p.ap, p.bp = a, b, *apb, *bpb
	p.transA, p.transB = transA, transB
	p.m, p.n, p.k = m, n, k
	p.sA, p.sB = sA, sB
	p.mRound, p.nRound = mRound, nRound
	p.alpha = alpha
	parallelRun(batch, 1, p)
	p.a, p.b, p.ap, p.bp = nil, nil, nil, nil
	batchedPackPool.Put(p)

	// One flattened region over (matrix, row block, column segment).
	// Column segmentation mirrors gemmState.run: only when the item count
	// is small relative to the workers, and never narrower than two
	// micro-panels so packed-panel reuse stays intact.
	icBlocks := (m + gemmMC - 1) / gemmMC
	segs, segCols := 1, n
	if w := MaxWorkers(); w > 1 && batch*icBlocks < 3*w {
		target := (3*w + batch*icBlocks - 1) / (batch * icBlocks)
		if maxSegs := max(n/(2*nr), 1); target > maxSegs {
			target = maxSegs
		}
		segCols = max((((n+target-1)/target+nr-1)/nr)*nr, nr)
		segs = (n + segCols - 1) / segCols
	}
	t := batchedTilePool.Get().(*batchedTileState)
	t.c, t.ap, t.bp = c, *apb, *bpb
	t.m, t.n, t.k = m, n, k
	t.sC = sC
	t.mRound, t.nRound = mRound, nRound
	t.icBlocks, t.segs, t.segCols = icBlocks, segs, segCols
	t.beta = beta
	items := batch * icBlocks * segs
	grain := 1
	if per := 2 * m * n * k / (icBlocks * segs); per < batchedGrainFlops {
		grain = batchedGrainFlops / max(per, 1)
	}
	parallelRun(items, grain, t)
	t.c, t.ap, t.bp = nil, nil, nil
	batchedTilePool.Put(t)

	putScratch(apb)
	putScratch(bpb)
}

// batchedPackState is the pooled phase-1 body: item i packs matrix i's A
// and B operands into their slots of the shared panel buffers.
type batchedPackState struct {
	a, b, ap, bp   []float32
	transA, transB bool
	m, n, k        int
	sA, sB         int
	mRound, nRound int
	alpha          float32
}

var batchedPackPool = sync.Pool{New: func() any { return new(batchedPackState) }}

func (s *batchedPackState) runRange(lo, hi int) {
	mr, nr := gemmMR, gemmNR
	for i := lo; i < hi; i++ {
		ai := s.a[i*s.sA : i*s.sA+s.m*s.k]
		bi := s.b[i*s.sB : i*s.sB+s.k*s.n]
		aDst := s.ap[i*s.mRound*s.k:]
		bDst := s.bp[i*s.nRound*s.k:]
		for pc := 0; pc < s.k; pc += gemmKC {
			kcb := min(gemmKC, s.k-pc)
			packA(s.transA, aDst[s.mRound*pc:s.mRound*pc+s.mRound*kcb], ai, 0, s.m, pc, kcb, s.m, s.k, s.alpha, mr, false)
			packB(s.transB, bDst[s.nRound*pc:s.nRound*pc+s.nRound*kcb], bi, 0, s.n, pc, kcb, s.n, s.k, nr, false)
		}
	}
}

// batchedTileState is the pooled phase-2 body: item t is one
// (matrix, row block, column segment) piece of the batch.
type batchedTileState struct {
	c, ap, bp      []float32
	m, n, k        int
	sC             int
	mRound, nRound int
	icBlocks       int
	segs, segCols  int
	beta           float32
}

var batchedTilePool = sync.Pool{New: func() any { return new(batchedTileState) }}

func (s *batchedTileState) runRange(lo, hi int) {
	for t := lo; t < hi; t++ {
		perMat := s.icBlocks * s.segs
		mat := t / perMat
		rem := t % perMat
		i0 := (rem / s.segs) * gemmMC
		iEnd := min(i0+gemmMC, s.m)
		j0 := (rem % s.segs) * s.segCols
		jEnd := min(j0+s.segCols, s.n)
		cm := s.c[mat*s.sC : mat*s.sC+s.m*s.n]
		if s.beta != 1 {
			for r := i0; r < iEnd; r++ {
				scaleC(cm[r*s.n+j0:r*s.n+jEnd], s.beta)
			}
		}
		aMat := s.ap[mat*s.mRound*s.k:]
		bMat := s.bp[mat*s.nRound*s.k:]
		for pc := 0; pc < s.k; pc += gemmKC {
			kcb := min(gemmKC, s.k-pc)
			microTileSweep(cm, s.n, aMat[s.mRound*pc:], bMat[s.nRound*pc:], kcb, i0, iEnd, j0, jEnd, s.m, s.n)
		}
	}
}
