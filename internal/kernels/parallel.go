// Package kernels implements the compute kernels of the real-execution
// BERT engine: general and batched matrix multiplication with all transpose
// combinations, the element-wise operators (add, multiply, scale, bias,
// mask, dropout), softmax, layer normalization, GeLU, reductions, layout
// transforms, and softmax cross-entropy. Each kernel has an exact FLOP and
// byte-traffic cost model (cost.go) so profiled runs report the same
// algorithmic quantities the paper's characterization uses.
//
// Kernels operate on raw []float32 buffers with explicit dimensions; the
// layer modules in internal/nn supply tensor-typed wrappers.
//
// Parallel kernels share one persistent worker pool (this file): workers
// are spawned once and parked on a channel, and each parallel region hands
// out index ranges through an atomic counter, so load balance is dynamic
// and steady-state dispatch does no per-call goroutine spawning.
package kernels

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// maxWorkers bounds kernel parallelism. It defaults to GOMAXPROCS and can
// be changed (e.g. in tests) via SetMaxWorkers; reads and writes are atomic
// because tests and ablation benchmarks retune it while kernels run.
var maxWorkers atomic.Int64

func init() { maxWorkers.Store(int64(runtime.GOMAXPROCS(0))) }

// SetMaxWorkers sets the number of goroutines kernels may use and returns
// the previous value. n < 1 is treated as 1. Raising the bound grows the
// persistent pool; lowering it parks the excess workers (they are not
// killed, only left idle).
func SetMaxWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	old := maxWorkers.Swap(int64(n))
	ensureWorkers(n - 1)
	return int(old)
}

// MaxWorkers returns the current worker bound.
func MaxWorkers() int { return int(maxWorkers.Load()) }

// blockBody is a unit of parallel work: runRange is invoked with disjoint
// half-open index ranges, possibly concurrently from several workers.
// Kernels that need zero-allocation dispatch implement it on a pooled
// struct; closures go through parallelFor's pooled funcBody wrapper.
type blockBody interface{ runRange(lo, hi int) }

// region is one parallel-for execution shared between the caller and the
// pool workers that join it. Work is handed out in grain-sized chunks via
// the atomic next counter, so fast workers take more chunks (dynamic
// chunking) instead of being assigned a fixed slice up front.
//
// Completion is tracked by two counters rather than a WaitGroup so the
// caller's join never depends on the pool picking anything up: done counts
// processed indices (region complete when done == n) and pending counts
// handles still sitting in workCh (region reusable when pending == 0).
type region struct {
	body    blockBody
	n       int
	grain   int
	next    atomic.Int64
	done    atomic.Int64
	pending atomic.Int64
}

// drain grabs chunks until the region's index space is exhausted.
func (r *region) drain() {
	n := int64(r.n)
	g := int64(r.grain)
	var chunks int64
	for {
		hi := r.next.Add(g)
		lo := hi - g
		if lo >= n {
			if chunks > 0 {
				poolGrains.Add(chunks)
			}
			return
		}
		if hi > n {
			hi = n
		}
		chunks++
		r.body.runRange(int(lo), int(hi))
		r.done.Add(hi - lo)
	}
}

var (
	// workCh feeds regions to the persistent workers and to joining
	// callers, which steal from it while they wait. The buffer lets a
	// caller enlist helpers without ever blocking: queued handles are
	// consumed by an idle worker, by a waiter, or by the enqueuing caller
	// itself once it reaches its own join loop.
	workCh = make(chan *region, 1024)

	// spawned counts live pool workers.
	spawned atomic.Int64

	regionPool = sync.Pool{New: func() any { return new(region) }}
	fbPool     = sync.Pool{New: func() any { return new(funcBody) }}
)

// ensureWorkers grows the persistent pool to at least target goroutines.
func ensureWorkers(target int) {
	for {
		cur := spawned.Load()
		if cur >= int64(target) {
			return
		}
		if spawned.CompareAndSwap(cur, cur+1) {
			go poolWorker()
		}
	}
}

// poolWorker parks on the work channel forever, joining one region at a
// time. Workers survive for the life of the process — the pool is sized by
// SetMaxWorkers, never torn down.
func poolWorker() {
	for r := range workCh {
		r.drain()
		r.pending.Add(-1)
	}
}

// Join-loop backoff: a waiter spins (yielding) while its region finishes,
// then naps so a long-running chunk elsewhere doesn't burn a core.
const (
	joinSpins = 64
	joinNap   = 20 * time.Microsecond
)

// parallelRun executes body over [0, n) in grain-sized chunks using the
// worker pool, blocking until every index is processed. The calling
// goroutine always participates, and while it waits for chunks claimed by
// others it steals queued handles from workCh instead of parking — so no
// join ever depends on pool availability, and nested dispatch (a pool
// worker calling parallelRun) cannot deadlock even when every worker is
// itself blocked in a join. With maxWorkers == 1 or a single chunk it runs
// inline with zero dispatch cost.
func parallelRun(n, grain int, body blockBody) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	w := int(maxWorkers.Load())
	if items := (n + grain - 1) / grain; w > items {
		w = items
	}
	if w <= 1 {
		poolInline.Inc()
		body.runRange(0, n)
		return
	}
	poolDispatches.Inc()
	ensureWorkers(w - 1)
	r := regionPool.Get().(*region)
	r.body, r.n, r.grain = body, n, grain
	r.next.Store(0)
	r.done.Store(0)
enlist:
	for i := 0; i < w-1; i++ {
		r.pending.Add(1)
		select {
		case workCh <- r:
		default:
			// Queue full: plenty of work is already circulating; run
			// with the helpers enlisted so far.
			r.pending.Add(-1)
			break enlist
		}
	}
	r.drain()
	// Join: complete when every index is processed, reusable when every
	// queued handle has been consumed. Stealing here is what keeps nested
	// dispatch live — a waiter is always a reader of workCh.
	for spins := 0; r.done.Load() < int64(n) || r.pending.Load() > 0; {
		select {
		case other := <-workCh:
			poolSteals.Inc()
			other.drain()
			other.pending.Add(-1)
			spins = 0
		default:
			if spins++; spins < joinSpins {
				runtime.Gosched()
			} else {
				time.Sleep(joinNap)
			}
		}
	}
	r.body = nil
	regionPool.Put(r)
}

// funcBody adapts a closure to blockBody; pooled so parallelFor's only
// steady-state allocation is the closure itself.
type funcBody struct{ f func(lo, hi int) }

func (b *funcBody) runRange(lo, hi int) { b.f(lo, hi) }

// parallelFor splits [0, n) into dynamically balanced chunks and runs
// body(lo, hi) concurrently on the worker pool. For small n it runs inline
// to avoid dispatch overhead on tiny kernels.
func parallelFor(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := int(maxWorkers.Load())
	if w == 1 || n < 4 {
		poolInline.Inc()
		body(0, n)
		return
	}
	// ~4 chunks per worker: coarse enough to amortize dispatch, fine
	// enough that an unlucky worker cannot stall the join.
	grain := n / (4 * w)
	if grain < 1 {
		grain = 1
	}
	fb := fbPool.Get().(*funcBody)
	fb.f = body
	parallelRun(n, grain, fb)
	fb.f = nil
	fbPool.Put(fb)
}
