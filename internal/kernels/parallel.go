// Package kernels implements the compute kernels of the real-execution
// BERT engine: general and batched matrix multiplication with all transpose
// combinations, the element-wise operators (add, multiply, scale, bias,
// mask, dropout), softmax, layer normalization, GeLU, reductions, layout
// transforms, and softmax cross-entropy. Each kernel has an exact FLOP and
// byte-traffic cost model (cost.go) so profiled runs report the same
// algorithmic quantities the paper's characterization uses.
//
// Kernels operate on raw []float32 buffers with explicit dimensions; the
// layer modules in internal/nn supply tensor-typed wrappers.
package kernels

import (
	"runtime"
	"sync"
)

// maxWorkers bounds kernel parallelism. It defaults to GOMAXPROCS and can
// be lowered (e.g. in tests) via SetMaxWorkers.
var maxWorkers = runtime.GOMAXPROCS(0)

// SetMaxWorkers sets the number of goroutines kernels may use and returns
// the previous value. n < 1 is treated as 1.
func SetMaxWorkers(n int) int {
	old := maxWorkers
	if n < 1 {
		n = 1
	}
	maxWorkers = n
	return old
}

// parallelFor splits [0, n) into roughly equal chunks, one per worker, and
// runs body(lo, hi) concurrently. For small n it runs inline to avoid
// goroutine overhead on tiny kernels.
func parallelFor(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := maxWorkers
	if workers > n {
		workers = n
	}
	// Inline threshold: launching goroutines for tiny loops costs more
	// than it saves.
	if workers == 1 || n < 4 {
		body(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
