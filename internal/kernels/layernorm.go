package kernels

import (
	"fmt"
	"math"
)

// LayerNormForward normalizes each row of the rows×n matrix x to zero mean
// and unit variance, then applies the learned affine transform gamma/beta:
//
//	y = gamma * (x - mean) / sqrt(var + eps) + beta
//
// It stores per-row mean and inverse standard deviation into mean and
// invStd (each of length rows) for reuse by the backward pass, matching
// how DNN frameworks implement LN (Ba et al., the paper's [13]).
func LayerNormForward(y, x, gamma, beta []float32, mean, invStd []float32, rows, n int, eps float32) {
	if len(x) != rows*n || len(y) != rows*n || len(gamma) != n || len(beta) != n || len(mean) != rows || len(invStd) != rows {
		panic(fmt.Sprintf("kernels: LayerNormForward dims rows=%d n=%d", rows, n))
	}
	parallelFor(rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			xr := x[r*n : (r+1)*n]
			yr := y[r*n : (r+1)*n]
			mu, istd := layerNormRowStats(xr, eps)
			mean[r] = mu
			invStd[r] = istd
			layerNormRowApply(yr, xr, gamma, beta, mu, istd)
		}
	})
}

// layerNormRowStats computes the mean and inverse standard deviation of
// one row. Shared by LayerNormForward and the fused GEMM epilogue
// (gemm_epilogue.go) so the two paths are bitwise-identical.
func layerNormRowStats(xr []float32, eps float32) (mu, istd float32) {
	n := len(xr)
	var sum float32
	for _, v := range xr {
		sum += v
	}
	mu = sum / float32(n)
	var sq float32
	for _, v := range xr {
		d := v - mu
		sq += d * d
	}
	istd = 1 / float32(math.Sqrt(float64(sq/float32(n)+eps)))
	return mu, istd
}

// layerNormRowApply writes the normalized affine transform of xr into yr.
// yr and xr may alias: each element is read before it is written.
func layerNormRowApply(yr, xr, gamma, beta []float32, mu, istd float32) {
	for i, v := range xr {
		yr[i] = gamma[i]*(v-mu)*istd + beta[i]
	}
}

// LayerNormBackward computes the three layer-norm gradients given the
// saved forward statistics:
//
//	dGamma[j] += sum_r dY[r,j] * xhat[r,j]
//	dBeta[j]  += sum_r dY[r,j]
//	dX[r,i]    = invStd[r]/n * (n*g[i] - sum(g) - xhat[r,i]*sum(g*xhat))
//
// where g = dY*gamma and xhat is the normalized input. dGamma/dBeta are
// accumulated (+=) so multiple calls sum gradients, like every other
// weight-gradient kernel in the engine.
func LayerNormBackward(dX, dGamma, dBeta, dY, x, gamma []float32, mean, invStd []float32, rows, n int) {
	if len(dX) != rows*n || len(dY) != rows*n || len(x) != rows*n ||
		len(gamma) != n || len(dGamma) != n || len(dBeta) != n ||
		len(mean) != rows || len(invStd) != rows {
		panic(fmt.Sprintf("kernels: LayerNormBackward dims rows=%d n=%d", rows, n))
	}

	// dX: independent per row, parallel over rows.
	parallelFor(rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			xr := x[r*n : (r+1)*n]
			dyr := dY[r*n : (r+1)*n]
			dxr := dX[r*n : (r+1)*n]
			mu, istd := mean[r], invStd[r]

			var sumG, sumGX float32
			for i := range xr {
				xhat := (xr[i] - mu) * istd
				g := dyr[i] * gamma[i]
				sumG += g
				sumGX += g * xhat
			}
			invN := 1 / float32(n)
			for i := range xr {
				xhat := (xr[i] - mu) * istd
				g := dyr[i] * gamma[i]
				dxr[i] = istd * (g - invN*sumG - xhat*invN*sumGX)
			}
		}
	})

	// dGamma/dBeta: column reductions, parallel over columns. The fold is
	// seeded from the existing gradient so splitting the rows across
	// multiple calls (gradient accumulation) matches one call bitwise.
	parallelFor(n, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			dg, db := dGamma[j], dBeta[j]
			for r := 0; r < rows; r++ {
				xhat := (x[r*n+j] - mean[r]) * invStd[r]
				dy := dY[r*n+j]
				dg += dy * xhat
				db += dy
			}
			dGamma[j], dBeta[j] = dg, db
		}
	})
}

// LayerNormUnfusedKernelCount is the number of separate GPU kernels an
// unfused layer-norm forward launches in the paper's fusion study
// (Fig. 12a): mean reduction, centering, square, variance reduction,
// rsqrt-normalize, gamma multiply, beta add.
const LayerNormUnfusedKernelCount = 7
