package kernels

import (
	"fmt"
	"math"
	"sync"
)

// Int8 quantized GEMM — the frozen-weight inference path. Weight matrices
// are quantized once per parameter generation with a static per-column
// (output-channel) scale; activations are quantized per call with a
// dynamic per-row scale; products accumulate in int32 and are dequantized
// (with the fused epilogue applied) at tile write-back. The scheme follows
// the pre-VNNI AVX2 compromise used by production int8 libraries:
//
//   - Activations: unsigned 8-bit with zero point 128,
//     qa = round(x/sa) + 128, sa = rowmax|x| / 127.
//   - Weights: signed 7-bit, qw = clamp(round(w/sb), ±63),
//     sb = colmax|w| / int8WeightMax.
//   - C[i][j] = sa[i]·sb[j]·(Σ_d qa[i][d]·qw[d][j] − 128·Σ_d qw[d][j]).
//
// The 7-bit weight clamp is what makes the AVX2 VPMADDUBSW kernel safe:
// the instruction pair-sums two u8×s8 products into a signed 16-bit lane,
// and 255·63·2 = 32130 < 2^15 cannot saturate, whereas full ±127 weights
// could. The per-column weight sums are precomputed at pack time so the
// zero-point correction costs one multiply-subtract per output element.
//
// Accumulation width: int32 holds Σ qa·qw exactly up to k ≈ 130 000
// (255·63·k < 2^31), far beyond any BERT dimension, so integer results
// are exact and bit-identical across backends and worker counts.

const (
	int8MR        = 4  // micro-tile rows
	int8NR        = 16 // micro-tile columns
	int8KGroup    = 4  // depth values per VPMADDUBSW/VPMADDWD reduction
	int8ActZero   = 128
	int8ActMax    = 127
	int8WeightMax = 63
)

// PackedBInt8 is a weight matrix quantized and packed for GEMMInt8. It is
// immutable after PackWeightInt8 returns and safe for concurrent readers.
type PackedBInt8 struct {
	transB bool
	n, k   int
	kg     int // depth groups: ceil(k/4)

	// qw holds ceil(n/16) panels of 16 columns; panel p, group g starts
	// at (p·kg + g)·64, laid out column-major within the group: byte
	// j·4+d is column p·16+j, depth g·4+d. Depth and column padding is
	// zero, so padded lanes contribute nothing to any product.
	qw     []int8
	scales []float32 // per-column dequantization scale sb
	colSum []int32   // per-column Σ_d qw[d][j], for the zero-point correction
}

// TransB reports the orientation the pack was built for.
func (pb *PackedBInt8) TransB() bool { return pb.transB }

// N returns the packed operand's column count.
func (pb *PackedBInt8) N() int { return pb.n }

// K returns the packed operand's depth.
func (pb *PackedBInt8) K() int { return pb.k }

// Matches reports whether the pack can serve a GEMMInt8 call with the
// given orientation and dimensions.
func (pb *PackedBInt8) Matches(transB bool, n, k int) bool {
	return pb != nil && pb.transB == transB && pb.n == n && pb.k == k
}

// PackWeightInt8 quantizes op(B) (K×N; stored K×N when transB is false,
// N×K when true) to signed 7-bit with per-column scales and packs it into
// the GEMMInt8 panel layout. Like PackWeight it costs one pass over the
// matrix; amortize it via the generation-counted cache (PackCache.GetInt8).
func PackWeightInt8(transB bool, n, k int, b []float32) *PackedBInt8 {
	if n < 0 || k < 0 {
		panic(fmt.Sprintf("kernels: PackWeightInt8 with negative dims n=%d k=%d", n, k))
	}
	if len(b) < k*n {
		panic(fmt.Sprintf("kernels: PackWeightInt8 B buffer %d < k*n=%d (transB=%v)", len(b), k*n, transB))
	}
	kg := (k + int8KGroup - 1) / int8KGroup
	panels := (n + int8NR - 1) / int8NR
	pb := &PackedBInt8{
		transB: transB,
		n:      n, k: k, kg: kg,
		qw:     make([]int8, panels*kg*int8NR*int8KGroup),
		scales: make([]float32, n),
		colSum: make([]int32, n),
	}
	// op(B)[d][j] = b[j*k+d] when transB (stored N×K), b[d*n+j] otherwise.
	parallelFor(n, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			var maxAbs float32
			if transB {
				col := b[j*k : j*k+k]
				for _, v := range col {
					if a := abs32(v); a > maxAbs {
						maxAbs = a
					}
				}
			} else {
				for d := 0; d < k; d++ {
					if a := abs32(b[d*n+j]); a > maxAbs {
						maxAbs = a
					}
				}
			}
			var inv float32
			if maxAbs > 0 {
				pb.scales[j] = maxAbs / int8WeightMax
				inv = int8WeightMax / maxAbs
			}
			p, lane := j/int8NR, j%int8NR
			base := p * kg * int8NR * int8KGroup
			var sum int32
			for d := 0; d < k; d++ {
				var w float32
				if transB {
					w = b[j*k+d]
				} else {
					w = b[d*n+j]
				}
				q := int32(math.Round(float64(w * inv)))
				if q > int8WeightMax {
					q = int8WeightMax
				} else if q < -int8WeightMax {
					q = -int8WeightMax
				}
				sum += q
				g, sub := d/int8KGroup, d%int8KGroup
				pb.qw[base+g*int8NR*int8KGroup+lane*int8KGroup+sub] = int8(q)
			}
			pb.colSum[j] = sum
		}
	})
	return pb
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// int8SignMask clears an IEEE-754 sign bit; |x| of non-NaN floats then
// compares correctly as an unsigned integer, which lets the quantizer's
// max-scan run branch-free on bit patterns.
const int8SignMask = 0x7fffffff

// quantU8 maps a scaled activation (|x| ≤ int8ActMax by construction of
// the row scale) to its u8 code: the +0.5 after the zero-point shift
// makes int32 truncation round half-up, avoiding a per-element
// math.Round through float64. The clamp absorbs float rounding overshoot
// at the extremes.
func quantU8(x float32) uint8 {
	q := int32(x + (float32(int8ActZero) + 0.5))
	if q < 0 {
		q = 0
	} else if q > 255 {
		q = 255
	}
	return uint8(q)
}

// int8Kernel computes one 4×16 micro-tile over kg packed depth groups,
// overwriting acc (row-major [4][16] int32). Installed per backend:
// pure Go by default, AVX2 assembly on capable amd64 hosts. Integer
// accumulation is exact, so both backends produce identical bits.
var int8Kernel func(kg int, a []uint8, b []int8, acc *[int8MR * int8NR]int32) = gemmInt8Kernel4x16Go

// gemmInt8Kernel4x16Go is the portable micro-kernel and the cross-check
// oracle for the assembly one. a holds kg groups of 16 bytes (row r,
// depth d at g·16+r·4+d); b holds kg groups of 64 bytes (column j, depth
// d at g·64+j·4+d).
func gemmInt8Kernel4x16Go(kg int, a []uint8, b []int8, acc *[int8MR * int8NR]int32) {
	clear(acc[:])
	for g := 0; g < kg; g++ {
		ag := a[g*int8MR*int8KGroup:]
		bg := b[g*int8NR*int8KGroup:]
		for r := 0; r < int8MR; r++ {
			ar := ag[r*int8KGroup : r*int8KGroup+int8KGroup]
			accr := acc[r*int8NR : r*int8NR+int8NR]
			for j := 0; j < int8NR; j++ {
				bj := bg[j*int8KGroup : j*int8KGroup+int8KGroup]
				accr[j] += int32(ar[0])*int32(bj[0]) + int32(ar[1])*int32(bj[1]) +
					int32(ar[2])*int32(bj[2]) + int32(ar[3])*int32(bj[3])
			}
		}
	}
}

var int8AccPool = sync.Pool{New: func() any { return new([int8MR * int8NR]int32) }}

// GEMMInt8 computes C = dequant(quant(A) · pb) with the epilogue tail
// fused into the dequantizing write-back, overwriting C (beta = 0
// semantics, matching GEMMPackedEpilogue). A is the row-major m×k
// activation matrix in float32; it is quantized per call with dynamic
// per-row scales. ep may be nil (no tail).
//
// This is a forward-only inference path: results approximate the float32
// product with quantization error bounded by the per-row/per-column
// scales (audited against the f32 oracle at an empirically-grounded
// tolerance in internal/audit). Integer accumulation makes the result
// bitwise deterministic for any worker count and backend.
func GEMMInt8(m, n, k int, a []float32, pb *PackedBInt8, ep *Epilogue, c []float32) {
	if pb == nil {
		panic("kernels: GEMMInt8 with nil PackedBInt8")
	}
	if !pb.Matches(pb.transB, n, k) {
		panic(fmt.Sprintf("kernels: GEMMInt8 operand packed for n=%d k=%d, called with n=%d k=%d — repack required",
			pb.n, pb.k, n, k))
	}
	if m < 0 {
		panic(fmt.Sprintf("kernels: GEMMInt8 with negative m=%d", m))
	}
	if len(a) < m*k {
		panic(fmt.Sprintf("kernels: GEMMInt8 A buffer %d < m*k=%d", len(a), m*k))
	}
	if len(c) < m*n {
		panic(fmt.Sprintf("kernels: GEMMInt8 C buffer %d < m*n=%d", len(c), m*n))
	}
	if m == 0 || n == 0 {
		return
	}
	if ep != nil {
		ep.check(m, n)
	}
	if k == 0 {
		scaleC(c[:m*n], 0)
		if ep != nil {
			ep.applyReference(c, m, n)
		}
		return
	}
	int8GEMMRuns.Inc()

	kg := pb.kg
	rowPanels := (m + int8MR - 1) / int8MR
	qa := getScratchU8(rowPanels * kg * int8MR * int8KGroup)
	sa := getScratch(m)

	// Quantize the activations into 4-row micro-panels.
	qs := int8QuantPool.Get().(*int8QuantState)
	qs.a, qs.qa, qs.sa = a, *qa, *sa
	qs.m, qs.k, qs.kg = m, k, kg
	parallelRun(rowPanels, 4, qs)
	qs.a, qs.qa, qs.sa = nil, nil, nil
	int8QuantPool.Put(qs)

	// Tile grid: one work item per 4-row panel; each item sweeps all
	// column panels for its rows and applies the epilogue inline — rows
	// are complete when the item finishes them, so even the LayerNorm
	// row reduction runs while the rows are cache-hot.
	rs := int8RunPool.Get().(*int8RunState)
	rs.qa, rs.sa, rs.c = *qa, *sa, c
	rs.pb, rs.ep = pb, ep
	rs.m, rs.n = m, n
	parallelRun(rowPanels, 1, rs)
	rs.qa, rs.sa, rs.c, rs.pb, rs.ep = nil, nil, nil, nil, nil
	int8RunPool.Put(rs)

	putScratch(sa)
	putScratchU8(qa)
}

// int8QuantState is the pooled parallel-region body of the activation
// quantizer: item rp fills the 4-row micro-panel rp (zeroing padded rows
// and depths, so the kernel's padded lanes contribute nothing).
type int8QuantState struct {
	a  []float32
	qa []uint8
	sa []float32
	m, k, kg int
}

var int8QuantPool = sync.Pool{New: func() any { return new(int8QuantState) }}

func (s *int8QuantState) runRange(lo, hi int) {
	k, kg := s.k, s.kg
	panelBytes := kg * int8MR * int8KGroup
	for rp := lo; rp < hi; rp++ {
		panel := s.qa[rp*panelBytes : (rp+1)*panelBytes]
		clear(panel)
		rows := min(int8MR, s.m-rp*int8MR)
		for r := 0; r < rows; r++ {
			row := s.a[(rp*int8MR+r)*k : (rp*int8MR+r+1)*k]
			// Branch-free |max| scan on bit patterns; four independent
			// maxima break the loop-carried compare chain.
			var m0, m1, m2, m3 uint32
			d := 0
			for ; d+4 <= len(row); d += 4 {
				m0 = max(m0, math.Float32bits(row[d])&int8SignMask)
				m1 = max(m1, math.Float32bits(row[d+1])&int8SignMask)
				m2 = max(m2, math.Float32bits(row[d+2])&int8SignMask)
				m3 = max(m3, math.Float32bits(row[d+3])&int8SignMask)
			}
			for ; d < len(row); d++ {
				m0 = max(m0, math.Float32bits(row[d])&int8SignMask)
			}
			maxAbs := math.Float32frombits(max(m0, m1, m2, m3))
			base := r * int8KGroup
			if maxAbs == 0 {
				s.sa[rp*int8MR+r] = 0
				for g := 0; g < kg; g++ {
					off := g*int8MR*int8KGroup + base
					for sub := 0; sub < min(int8KGroup, k-g*int8KGroup); sub++ {
						panel[off+sub] = int8ActZero
					}
				}
				continue
			}
			s.sa[rp*int8MR+r] = maxAbs / int8ActMax
			inv := float32(int8ActMax) / maxAbs
			// Group-major quantize: each depth group is four contiguous
			// row elements written to four contiguous panel bytes, so the
			// inner body has no division or modulo.
			g, gFull := 0, k/int8KGroup
			for ; g < gFull; g++ {
				off := g*int8MR*int8KGroup + base
				d := g * int8KGroup
				panel[off] = quantU8(row[d] * inv)
				panel[off+1] = quantU8(row[d+1] * inv)
				panel[off+2] = quantU8(row[d+2] * inv)
				panel[off+3] = quantU8(row[d+3] * inv)
			}
			for d := gFull * int8KGroup; d < k; d++ {
				panel[g*int8MR*int8KGroup+base+d-gFull*int8KGroup] = quantU8(row[d] * inv)
			}
		}
	}
}

// int8RunState is the pooled parallel-region body of the int8 tile grid:
// item rp computes output rows [rp·4, rp·4+4) across all column panels
// and applies the epilogue to them.
type int8RunState struct {
	qa []uint8
	sa []float32
	c  []float32
	pb *PackedBInt8
	ep *Epilogue
	m, n int
}

var int8RunPool = sync.Pool{New: func() any { return new(int8RunState) }}

func (s *int8RunState) runRange(lo, hi int) {
	pb, ep, n := s.pb, s.ep, s.n
	kg := pb.kg
	aPanelBytes := kg * int8MR * int8KGroup
	bPanelBytes := kg * int8NR * int8KGroup
	colPanels := (n + int8NR - 1) / int8NR
	acc := int8AccPool.Get().(*[int8MR * int8NR]int32)
	bs := debugBiasScale()
	kind := EpilogueNone
	if ep != nil {
		kind = ep.Kind
	}
	for rp := lo; rp < hi; rp++ {
		aPanel := s.qa[rp*aPanelBytes:]
		rows := min(int8MR, s.m-rp*int8MR)
		for p := 0; p < colPanels; p++ {
			int8Kernel(kg, aPanel, pb.qw[p*bPanelBytes:], acc)
			j0 := p * int8NR
			cols := min(int8NR, n-j0)
			for r := 0; r < rows; r++ {
				row := s.c[(rp*int8MR+r)*n:]
				accr := acc[r*int8NR:]
				sar := s.sa[rp*int8MR+r]
				switch kind {
				case EpilogueNone:
					for j := 0; j < cols; j++ {
						col := j0 + j
						row[col] = sar * pb.scales[col] * float32(accr[j]-int8ActZero*pb.colSum[col])
					}
				case EpilogueBias:
					for j := 0; j < cols; j++ {
						col := j0 + j
						v := sar * pb.scales[col] * float32(accr[j]-int8ActZero*pb.colSum[col])
						row[col] = v + bs*ep.Bias[col]
					}
				case EpilogueBiasGeLU:
					for j := 0; j < cols; j++ {
						col := j0 + j
						v := sar * pb.scales[col] * float32(accr[j]-int8ActZero*pb.colSum[col])
						pre := v + bs*ep.Bias[col]
						if ep.X != nil {
							ep.X[(rp*int8MR+r)*n+col] = pre
						}
						row[col] = geluScalar(pre)
					}
				case EpilogueBiasResidualLayerNorm:
					res := ep.Residual[(rp*int8MR+r)*n:]
					for j := 0; j < cols; j++ {
						col := j0 + j
						v := sar * pb.scales[col] * float32(accr[j]-int8ActZero*pb.colSum[col])
						row[col] = (v + bs*ep.Bias[col]) + res[col]
					}
				}
			}
		}
		if kind == EpilogueBiasResidualLayerNorm {
			// Rows are complete: finalize LN per row while cache-hot.
			for r := 0; r < rows; r++ {
				gr := rp*int8MR + r
				row := s.c[gr*n : (gr+1)*n]
				if ep.X != nil {
					copy(ep.X[gr*n:(gr+1)*n], row)
				}
				mu, istd := layerNormRowStats(row, ep.Eps)
				if ep.Mean != nil {
					ep.Mean[gr] = mu
					ep.InvStd[gr] = istd
				}
				layerNormRowApply(row, row, ep.Gamma, ep.Beta, mu, istd)
			}
		}
	}
	int8AccPool.Put(acc)
}
