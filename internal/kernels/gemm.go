package kernels

import (
	"fmt"
	"sync"
)

// GEMM computes C = alpha·op(A)·op(B) + beta·C for row-major matrices.
//
// op(A) is M×K: A is stored M×K when transA is false, K×M when true.
// op(B) is K×N: B is stored K×N when transB is false, N×K when true.
// C is always stored M×N.
//
// Large products run through the cache-blocked packed implementation
// (gemm_blocked.go) parallelized on the persistent worker pool; tiny ones
// fall back to the naive reference path, whose packing overhead would
// dominate. Results are bitwise deterministic for a given shape and
// backend. It panics if a buffer is too small for its dimensions, since a
// silent out-of-bounds read would corrupt training.
//
// Following BLAS quick-return semantics, alpha == 0 (or k == 0) skips the
// product entirely — C is only scaled by beta, even if A or B contain
// NaN/Inf. Within a computed product, however, non-finite values propagate
// exactly (0·NaN = NaN): the kernels never skip zero operands.
func GEMM(transA, transB bool, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32) {
	checkGEMMArgs(transA, transB, m, n, k, a, b, c)
	if m == 0 || n == 0 {
		return
	}
	scaleC(c[:m*n], beta)
	if k == 0 || alpha == 0 {
		return
	}
	switch CurrentGEMMPath() {
	case GEMMPathNaive:
		gemmNaivePar(transA, transB, m, n, k, alpha, a, b, c)
	case GEMMPathBlocked, GEMMPathPacked, GEMMPathBatched, GEMMPathFused:
		gemmBlocked(transA, transB, m, n, k, alpha, a, b, c, true)
	default:
		// Auto — and GEMMPathInt8, which only redirects the frozen-weight
		// Linear forward (the caller routes to GEMMInt8); every other
		// product keeps production routing.
		if 2*m*n*k < smallGEMMFlops {
			gemmNaiveSerial(transA, transB, m, n, k, alpha, a, b, c)
			return
		}
		gemmBlocked(transA, transB, m, n, k, alpha, a, b, c, true)
	}
}

// GEMMNaive is the unblocked row-saxpy/dot implementation GEMM used before
// cache blocking. It is kept as the reference oracle for equivalence tests
// and as the "before" baseline for the perf benchmarks; same semantics as
// GEMM.
func GEMMNaive(transA, transB bool, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32) {
	checkGEMMArgs(transA, transB, m, n, k, a, b, c)
	if m == 0 || n == 0 {
		return
	}
	scaleC(c[:m*n], beta)
	if k == 0 || alpha == 0 {
		return
	}
	gemmNaivePar(transA, transB, m, n, k, alpha, a, b, c)
}

// gemmNaivePar accumulates C += alpha·op(A)·op(B) with the unblocked
// loops, row-parallel on the worker pool (beta already applied by the
// caller). Each output element is computed by exactly one worker with the
// same inner-loop order regardless of the partition, so results are
// bitwise identical for any worker count.
func gemmNaivePar(transA, transB bool, m, n, k int, alpha float32, a, b, c []float32) {
	switch {
	case !transA && !transB:
		gemmNN(m, n, k, alpha, a, b, c)
	case !transA && transB:
		gemmNT(m, n, k, alpha, a, b, c)
	case transA && !transB:
		gemmTN(m, n, k, alpha, a, b, c)
	default:
		gemmTT(m, n, k, alpha, a, b, c)
	}
}

func checkGEMMArgs(transA, transB bool, m, n, k int, a, b, c []float32) {
	if m < 0 || n < 0 || k < 0 {
		panic(fmt.Sprintf("kernels: GEMM with negative dims m=%d n=%d k=%d", m, n, k))
	}
	if len(a) < m*k {
		panic(fmt.Sprintf("kernels: GEMM A buffer %d < m*k=%d (transA=%v)", len(a), m*k, transA))
	}
	if len(b) < k*n {
		panic(fmt.Sprintf("kernels: GEMM B buffer %d < k*n=%d (transB=%v)", len(b), k*n, transB))
	}
	if len(c) < m*n {
		panic(fmt.Sprintf("kernels: GEMM C buffer %d < m*n=%d", len(c), m*n))
	}
}

func scaleC(c []float32, beta float32) {
	switch beta {
	case 1:
	case 0:
		clear(c)
	default:
		for i := range c {
			c[i] *= beta
		}
	}
}

// gemmNN: A is M×K, B is K×N. For each row of C, accumulate saxpy updates
// over rows of B — the innermost loop streams contiguous B and C rows.
// Note there is deliberately no skip for zero coefficients: 0·NaN must
// stay NaN.
func gemmNN(m, n, k int, alpha float32, a, b, c []float32) {
	parallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c[i*n : (i+1)*n]
			ai := a[i*k : (i+1)*k]
			for p := 0; p < k; p++ {
				axpy(alpha*ai[p], b[p*n:(p+1)*n], ci)
			}
		}
	})
}

// gemmNT: A is M×K, B is N×K. C[i][j] is a dot product of two contiguous
// rows.
func gemmNT(m, n, k int, alpha float32, a, b, c []float32) {
	parallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a[i*k : (i+1)*k]
			ci := c[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := b[j*k : (j+1)*k]
				ci[j] += alpha * dot(ai, bj)
			}
		}
	})
}

// gemmTN: A is K×M, B is K×N. For each k, rank-1 update of the C row block
// — contiguous access of B and C rows.
func gemmTN(m, n, k int, alpha float32, a, b, c []float32) {
	parallelFor(m, func(lo, hi int) {
		for p := 0; p < k; p++ {
			ap := a[p*m : (p+1)*m]
			bp := b[p*n : (p+1)*n]
			for i := lo; i < hi; i++ {
				axpy(alpha*ap[i], bp, c[i*n:(i+1)*n])
			}
		}
	})
}

// gemmTT: A is K×M, B is N×K. C[i][j] = sum_p A[p][i]·B[j][p]; the B row is
// contiguous, A is strided. TT does not occur in BERT's training graph but
// is provided for completeness.
func gemmTT(m, n, k int, alpha float32, a, b, c []float32) {
	parallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := b[j*k : (j+1)*k]
				var sum float32
				for p := 0; p < k; p++ {
					sum += a[p*m+i] * bj[p]
				}
				ci[j] += alpha * sum
			}
		}
	})
}

// dot returns the inner product of equal-length slices, unrolled 4-wide
// with independent accumulators so the compiler can keep them in registers.
func dot(x, y []float32) float32 {
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	for ; i < len(x); i++ {
		s0 += x[i] * y[i]
	}
	return s0 + s1 + s2 + s3
}

// axpy computes y += s·x for equal-length slices.
func axpy(s float32, x, y []float32) {
	_ = y[len(x)-1]
	for i, v := range x {
		y[i] += s * v
	}
}

// BatchedGEMM performs batch independent GEMMs with identical dimensions,
// the manifestation of BERT's attention operations (B·h parallel GEMMs
// launched as a single kernel, Section 3.2.2). Matrix i of each operand
// begins at offset i·stride of its buffer.
//
// The batch runs through the flattened blocked engine
// (gemm_batched_blocked.go): operands are packed once per matrix, then
// (matrix × row-block × column-segment) work items share one worker-pool
// region, so load balance does not depend on the batch count and small
// per-head matrices still hit the SIMD micro-kernel. Batches whose packed
// operands would exceed the scratch cap fall back to
// BatchedGEMMPerMatrix. It panics if a stride is smaller than its matrix
// or a buffer cannot hold all batch entries, since a silent out-of-bounds
// access would corrupt a later batch element.
func BatchedGEMM(batch int, transA, transB bool, m, n, k int, alpha float32, a []float32, strideA int, b []float32, strideB int, beta float32, c []float32, strideC int) {
	checkBatchedGEMMArgs(batch, m, n, k, a, strideA, b, strideB, c, strideC)
	if batch == 0 {
		return
	}
	if batch == 1 {
		GEMM(transA, transB, m, n, k, alpha, a, b, beta, c)
		return
	}
	if m == 0 || n == 0 {
		return
	}
	if k == 0 || alpha == 0 {
		for i := 0; i < batch; i++ {
			scaleC(c[i*strideC:i*strideC+m*n], beta)
		}
		return
	}
	mr, nr := gemmMR, gemmNR
	mRound := (m + mr - 1) / mr * mr
	nRound := (n + nr - 1) / nr * nr
	if int64(batch)*int64(mRound+nRound)*int64(k) > batchedPackCapFloats {
		batchedPackCapTrips.Inc()
		batchedPerMatrixRuns.Inc()
		batchedPerMatrix(batch, transA, transB, m, n, k, alpha, a, strideA, b, strideB, beta, c, strideC)
		return
	}
	switch CurrentGEMMPath() {
	case GEMMPathNaive, GEMMPathBlocked, GEMMPathPacked:
		// Forced sub-batched path: run per-matrix; gemmSerial routes each
		// matrix product to the forced implementation.
		batchedPerMatrixRuns.Inc()
		batchedPerMatrix(batch, transA, transB, m, n, k, alpha, a, strideA, b, strideB, beta, c, strideC)
		return
	case GEMMPathBatched, GEMMPathFused:
		batchedBlockedRuns.Inc()
		batchedBlocked(batch, transA, transB, m, n, k, alpha, a, strideA, b, strideB, beta, c, strideC)
		return
	}
	// The flattened engine wins by (a) running sub-threshold matrices
	// through the micro-kernel instead of the scalar naive path and
	// (b) exposing batch x tile parallelism to the pool. With a serial
	// pool and matrices already above the small-GEMM threshold neither
	// applies, and per-matrix dispatch keeps each pack L2-resident
	// instead of staging the whole batch's panels up front.
	if MaxWorkers() <= 1 && 2*m*n*k >= smallGEMMFlops {
		batchedPerMatrixRuns.Inc()
		batchedPerMatrix(batch, transA, transB, m, n, k, alpha, a, strideA, b, strideB, beta, c, strideC)
		return
	}
	batchedBlockedRuns.Inc()
	batchedBlocked(batch, transA, transB, m, n, k, alpha, a, strideA, b, strideB, beta, c, strideC)
}

// BatchedGEMMPerMatrix is the previous batch-level-parallel
// implementation: batch elements are distributed over the worker pool and
// each per-matrix GEMM runs single-threaded (naive below the
// small-product threshold). It is kept as the fallback for batches whose
// packed operands would not fit the blocked engine's scratch cap, as the
// "before" baseline for the batched benchmarks, and as a second oracle
// for the equivalence suite. Same semantics as BatchedGEMM.
func BatchedGEMMPerMatrix(batch int, transA, transB bool, m, n, k int, alpha float32, a []float32, strideA int, b []float32, strideB int, beta float32, c []float32, strideC int) {
	checkBatchedGEMMArgs(batch, m, n, k, a, strideA, b, strideB, c, strideC)
	if batch == 0 {
		return
	}
	if batch == 1 {
		GEMM(transA, transB, m, n, k, alpha, a, b, beta, c)
		return
	}
	batchedPerMatrix(batch, transA, transB, m, n, k, alpha, a, strideA, b, strideB, beta, c, strideC)
}

// checkBatchedGEMMArgs validates dims, strides, and — unlike the
// pre-blocked implementation, which only the first matrix could catch —
// that every buffer covers its last batch entry: length must reach
// stride·(batch-1) + matrix size, so a short buffer panics up front
// instead of corrupting a later batch element mid-run. Buffers whose
// matrix size is zero are never touched and are exempt.
func checkBatchedGEMMArgs(batch, m, n, k int, a []float32, strideA int, b []float32, strideB int, c []float32, strideC int) {
	if batch < 0 {
		panic("kernels: BatchedGEMM with negative batch")
	}
	if m < 0 || n < 0 || k < 0 {
		panic(fmt.Sprintf("kernels: BatchedGEMM with negative dims m=%d n=%d k=%d", m, n, k))
	}
	if batch == 0 {
		return
	}
	if strideA < m*k || strideB < k*n || strideC < m*n {
		panic(fmt.Sprintf("kernels: BatchedGEMM strides (%d,%d,%d) smaller than matrix sizes (%d,%d,%d)",
			strideA, strideB, strideC, m*k, k*n, m*n))
	}
	if need := (batch-1)*strideA + m*k; m*k > 0 && len(a) < need {
		panic(fmt.Sprintf("kernels: BatchedGEMM A buffer %d < strideA·(batch-1)+m·k = %d (batch=%d strideA=%d m=%d k=%d)",
			len(a), need, batch, strideA, m, k))
	}
	if need := (batch-1)*strideB + k*n; k*n > 0 && len(b) < need {
		panic(fmt.Sprintf("kernels: BatchedGEMM B buffer %d < strideB·(batch-1)+k·n = %d (batch=%d strideB=%d k=%d n=%d)",
			len(b), need, batch, strideB, k, n))
	}
	if need := (batch-1)*strideC + m*n; m*n > 0 && len(c) < need {
		panic(fmt.Sprintf("kernels: BatchedGEMM C buffer %d < strideC·(batch-1)+m·n = %d (batch=%d strideC=%d m=%d n=%d)",
			len(c), need, batch, strideC, m, n))
	}
}

// batchedPerMatrix distributes whole matrices over the worker pool.
func batchedPerMatrix(batch int, transA, transB bool, m, n, k int, alpha float32, a []float32, strideA int, b []float32, strideB int, beta float32, c []float32, strideC int) {
	s := batchedPool.Get().(*batchedState)
	s.transA, s.transB = transA, transB
	s.m, s.n, s.k = m, n, k
	s.alpha, s.beta = alpha, beta
	s.a, s.b, s.c = a, b, c
	s.sA, s.sB, s.sC = strideA, strideB, strideC
	parallelRun(batch, 1, s)
	s.a, s.b, s.c = nil, nil, nil
	batchedPool.Put(s)
}

// batchedState is the pooled parallel-region body of BatchedGEMM: item i
// is the i-th matrix product of the batch.
type batchedState struct {
	transA, transB bool
	m, n, k        int
	alpha, beta    float32
	a, b, c        []float32
	sA, sB, sC     int
}

var batchedPool = sync.Pool{New: func() any { return new(batchedState) }}

func (s *batchedState) runRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		gemmSerial(s.transA, s.transB, s.m, s.n, s.k, s.alpha,
			s.a[i*s.sA:i*s.sA+s.m*s.k],
			s.b[i*s.sB:i*s.sB+s.k*s.n],
			s.beta,
			s.c[i*s.sC:i*s.sC+s.m*s.n])
	}
}

// gemmSerial is GEMM without internal parallelism, used per batch element.
func gemmSerial(transA, transB bool, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32) {
	checkGEMMArgs(transA, transB, m, n, k, a, b, c)
	if m == 0 || n == 0 {
		return
	}
	scaleC(c[:m*n], beta)
	if k == 0 || alpha == 0 {
		return
	}
	switch CurrentGEMMPath() {
	case GEMMPathNaive:
		gemmNaiveSerial(transA, transB, m, n, k, alpha, a, b, c)
	case GEMMPathBlocked, GEMMPathPacked, GEMMPathBatched, GEMMPathFused:
		gemmBlocked(transA, transB, m, n, k, alpha, a, b, c, false)
	default:
		if 2*m*n*k < smallGEMMFlops {
			gemmNaiveSerial(transA, transB, m, n, k, alpha, a, b, c)
			return
		}
		gemmBlocked(transA, transB, m, n, k, alpha, a, b, c, false)
	}
}

// gemmNaiveSerial accumulates C += alpha·op(A)·op(B) with the unblocked
// single-threaded loops (beta already applied by the caller).
func gemmNaiveSerial(transA, transB bool, m, n, k int, alpha float32, a, b, c []float32) {
	switch {
	case !transA && !transB:
		for i := 0; i < m; i++ {
			ci := c[i*n : (i+1)*n]
			ai := a[i*k : (i+1)*k]
			for p := 0; p < k; p++ {
				axpy(alpha*ai[p], b[p*n:(p+1)*n], ci)
			}
		}
	case !transA && transB:
		for i := 0; i < m; i++ {
			ai := a[i*k : (i+1)*k]
			ci := c[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				ci[j] += alpha * dot(ai, b[j*k:(j+1)*k])
			}
		}
	case transA && !transB:
		for p := 0; p < k; p++ {
			ap := a[p*m : (p+1)*m]
			bp := b[p*n : (p+1)*n]
			for i := 0; i < m; i++ {
				axpy(alpha*ap[i], bp, c[i*n:(i+1)*n])
			}
		}
	default:
		for i := 0; i < m; i++ {
			ci := c[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := b[j*k : (j+1)*k]
				var sum float32
				for p := 0; p < k; p++ {
					sum += a[p*m+i] * bj[p]
				}
				ci[j] += alpha * sum
			}
		}
	}
}
