package kernels

import "fmt"

// Transpose2D writes the transpose of the m×n matrix x into the n×m matrix
// dst. The buffers must not alias.
func Transpose2D(dst, x []float32, m, n int) {
	if len(x) != m*n || len(dst) != m*n {
		panic(fmt.Sprintf("kernels: Transpose2D dims x=%d dst=%d m=%d n=%d", len(x), len(dst), m, n))
	}
	parallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := x[i*n : (i+1)*n]
			for j, v := range row {
				dst[j*m+i] = v
			}
		}
	})
}

// SplitHeads reshapes a (B·n)×dModel projection output into the
// (B·h)×n×dHead layout consumed by the batched attention GEMMs: matrix
// (b·h + head) holds the n×dHead block for that head. This is the "split
// to create the query, key and value vectors for each attention head"
// step of Section 3.2.2.
func SplitHeads(dst, x []float32, b, n, heads, dHead int) {
	dModel := heads * dHead
	if len(x) != b*n*dModel || len(dst) != b*n*dModel {
		panic(fmt.Sprintf("kernels: SplitHeads dims x=%d dst=%d b=%d n=%d h=%d dHead=%d", len(x), len(dst), b, n, heads, dHead))
	}
	parallelFor(b*n, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			batch, seq := t/n, t%n
			src := x[t*dModel : (t+1)*dModel]
			for h := 0; h < heads; h++ {
				dstOff := ((batch*heads+h)*n + seq) * dHead
				copy(dst[dstOff:dstOff+dHead], src[h*dHead:(h+1)*dHead])
			}
		}
	})
}

// MergeHeads is the inverse of SplitHeads: it concatenates per-head
// (B·h)×n×dHead outputs back into (B·n)×dModel rows.
func MergeHeads(dst, x []float32, b, n, heads, dHead int) {
	dModel := heads * dHead
	if len(x) != b*n*dModel || len(dst) != b*n*dModel {
		panic(fmt.Sprintf("kernels: MergeHeads dims x=%d dst=%d b=%d n=%d h=%d dHead=%d", len(x), len(dst), b, n, heads, dHead))
	}
	parallelFor(b*n, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			batch, seq := t/n, t%n
			out := dst[t*dModel : (t+1)*dModel]
			for h := 0; h < heads; h++ {
				srcOff := ((batch*heads+h)*n + seq) * dHead
				copy(out[h*dHead:(h+1)*dHead], x[srcOff:srcOff+dHead])
			}
		}
	})
}
