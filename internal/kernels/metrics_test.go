package kernels

import (
	"testing"

	"demystbert/internal/obs"
)

// counterDelta runs f and returns how much the counter moved. Counters
// are process-global and other tests run kernels, so assertions are on
// deltas, not absolute values, and the heavier checks run the workload
// in isolation within one test body.
func counterDelta(c *obs.Counter, f func()) int64 {
	before := c.Value()
	f()
	return c.Value() - before
}

func TestPoolDispatchCounters(t *testing.T) {
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			_ = i * i
		}
	}

	old := SetMaxWorkers(1)
	if d := counterDelta(poolInline, func() { parallelFor(1024, body) }); d != 1 {
		t.Errorf("serial pool: inline delta %d, want 1", d)
	}
	SetMaxWorkers(4)
	if d := counterDelta(poolDispatches, func() { parallelFor(1024, body) }); d != 1 {
		t.Errorf("parallel pool: dispatch delta %d, want 1", d)
	}
	if d := counterDelta(poolGrains, func() { parallelFor(1024, body) }); d < 2 {
		t.Errorf("parallel pool: grain delta %d, want >= 2", d)
	}
	SetMaxWorkers(old)
}

func TestPackCacheCounters(t *testing.T) {
	b := make([]float32, 64*48)
	for i := range b {
		b[i] = float32(i%7) - 3
	}
	var pc PackCache

	if d := counterDelta(packCacheMisses, func() { pc.Get(false, 48, 64, b, 1) }); d != 1 {
		t.Errorf("cold lookup: miss delta %d, want 1", d)
	}
	if d := counterDelta(packCacheHits, func() { pc.Get(false, 48, 64, b, 1) }); d != 1 {
		t.Errorf("warm lookup: hit delta %d, want 1", d)
	}
	// Same shape, moved generation: a rebuild, not a cold miss.
	if d := counterDelta(packCacheRebuilds, func() { pc.Get(false, 48, 64, b, 2) }); d != 1 {
		t.Errorf("stale lookup: rebuild delta %d, want 1", d)
	}
	// The other orientation is its own slot: cold again.
	if d := counterDelta(packCacheMisses, func() { pc.Get(true, 64, 48, b, 2) }); d != 1 {
		t.Errorf("other orientation: miss delta %d, want 1", d)
	}
}

func TestBatchedRoutingCounters(t *testing.T) {
	const batch, m, n, k = 4, 16, 16, 8
	a := make([]float32, batch*m*k)
	b := make([]float32, batch*k*n)
	c := make([]float32, batch*m*n)
	for i := range a {
		a[i] = float32(i % 5)
	}
	for i := range b {
		b[i] = float32(i % 3)
	}

	old := SetMaxWorkers(2)
	defer SetMaxWorkers(old)
	if d := counterDelta(batchedBlockedRuns, func() {
		BatchedGEMM(batch, false, false, m, n, k, 1, a, m*k, b, k*n, 0, c, m*n)
	}); d != 1 {
		t.Errorf("small batch: blocked delta %d, want 1", d)
	}

	// A batch whose packed panels exceed the scratch cap must trip the
	// cap counter and route per-matrix. 2 × (512+512) × 8192 floats
	// ≈ 2^23+ > batchedPackCapFloats.
	big := 512
	kBig := 8192
	ab := make([]float32, 2*big*kBig)
	bb := make([]float32, 2*kBig*big)
	cb := make([]float32, 2*big*big)
	capd := counterDelta(batchedPackCapTrips, func() {
		pmd := counterDelta(batchedPerMatrixRuns, func() {
			BatchedGEMM(2, false, false, big, big, kBig, 1, ab, big*kBig, bb, kBig*big, 0, cb, big*big)
		})
		if pmd != 1 {
			t.Errorf("cap trip: per-matrix delta %d, want 1", pmd)
		}
	})
	if capd != 1 {
		t.Errorf("cap trip delta %d, want 1", capd)
	}
}
