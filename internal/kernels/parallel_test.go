package kernels

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"demystbert/internal/tensor"
)

// TestParallelForCoversExactlyOnce: every index in [0, n) must be visited
// exactly once, for worker counts above and below the chunk count and for
// awkward n.
func TestParallelForCoversExactlyOnce(t *testing.T) {
	for _, w := range []int{1, 2, 3, 7, 16} {
		for _, n := range []int{1, 3, 4, 5, 63, 64, 1000, 1021} {
			old := SetMaxWorkers(w)
			counts := make([]int32, n)
			parallelFor(n, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("w=%d n=%d: bad range [%d,%d)", w, n, lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
			SetMaxWorkers(old)
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("w=%d n=%d: index %d visited %d times", w, n, i, c)
				}
			}
		}
	}
}

// TestParallelRunDynamicChunking: a deliberately skewed workload must not
// serialize behind one slow chunk — verified structurally: with grain g,
// no runRange span may exceed g.
func TestParallelRunDynamicChunking(t *testing.T) {
	old := SetMaxWorkers(4)
	defer SetMaxWorkers(old)
	const n, grain = 1000, 16
	var calls, covered atomic.Int64
	fb := &funcBody{f: func(lo, hi int) {
		if hi-lo > grain {
			t.Errorf("chunk [%d,%d) exceeds grain %d", lo, hi, grain)
		}
		calls.Add(1)
		covered.Add(int64(hi - lo))
	}}
	parallelRun(n, grain, fb)
	if covered.Load() != n {
		t.Fatalf("covered %d of %d indices", covered.Load(), n)
	}
	if want := int64((n + grain - 1) / grain); calls.Load() != want {
		t.Fatalf("expected %d chunks, got %d", want, calls.Load())
	}
}

// TestParallelNested: dispatch from inside a pool worker must complete.
// Joining callers steal queued handles from the work channel while they
// wait, so the region drains even when every pool worker is itself blocked
// in a nested join. This must hold with no idle workers left over from
// other tests — the scenario that deadlocked the WaitGroup-based join when
// run in isolation (`-run TestParallelNested`) or under -shuffle.
func TestParallelNested(t *testing.T) {
	old := SetMaxWorkers(2)
	defer SetMaxWorkers(old)
	var total atomic.Int64
	parallelFor(8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			parallelFor(100, func(l, h int) {
				total.Add(int64(h - l))
			})
		}
	})
	if total.Load() != 800 {
		t.Fatalf("nested dispatch covered %d of 800", total.Load())
	}
}

// TestParallelNestedSaturated: every outer chunk nests two more levels
// while the worker bound exceeds the chunk count, so all pool workers and
// the caller sit in joins simultaneously. Covered-index accounting proves
// every level ran to completion.
func TestParallelNestedSaturated(t *testing.T) {
	old := SetMaxWorkers(4)
	defer SetMaxWorkers(old)
	var total atomic.Int64
	parallelFor(16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			parallelFor(64, func(l, h int) {
				for j := l; j < h; j++ {
					parallelFor(32, func(l2, h2 int) {
						total.Add(int64(h2 - l2))
					})
				}
			})
		}
	})
	if want := int64(16 * 64 * 32); total.Load() != want {
		t.Fatalf("nested dispatch covered %d of %d", total.Load(), want)
	}
}

// TestParallelNestedConcurrentRoots: several independent goroutines each
// run nested dispatch at once, so regions from different roots interleave
// on the shared work channel and waiters steal handles that belong to
// other roots' regions.
func TestParallelNestedConcurrentRoots(t *testing.T) {
	old := SetMaxWorkers(3)
	defer SetMaxWorkers(old)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var total atomic.Int64
			parallelFor(8, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					parallelFor(50, func(l, h int) {
						total.Add(int64(h - l))
					})
				}
			})
			if total.Load() != 400 {
				t.Errorf("root covered %d of 400", total.Load())
			}
		}()
	}
	wg.Wait()
}

// TestSetMaxWorkersConcurrent hammers SetMaxWorkers while GEMMs and
// reductions run — the satellite fix for the unsynchronized maxWorkers
// var. Run with -race to verify.
func TestSetMaxWorkersConcurrent(t *testing.T) {
	r := tensor.NewRNG(21)
	m, n, k := 96, 96, 96
	a := randSlice(r, m*k)
	b := randSlice(r, k*n)
	want := make([]float32, m*n)
	GEMMNaive(false, false, m, n, k, 1, a, b, 0, want)

	wantSq := 0.0
	for _, v := range a {
		wantSq += float64(v) * float64(v)
	}

	old := MaxWorkers()
	defer SetMaxWorkers(old)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		ws := []int{1, 2, 4, 8, 3}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				SetMaxWorkers(ws[i%len(ws)])
			}
		}
	}()
	for iter := 0; iter < 50; iter++ {
		c := make([]float32, m*n)
		GEMM(false, false, m, n, k, 1, a, b, 0, c)
		if d := maxAbsDiff(c, want); d > tolFor(k) {
			t.Fatalf("iter %d: diff %v while retuning workers", iter, d)
		}
		// The value check matters: a retune that drops the bound to 1
		// mid-call used to leave stale pooled partials in the sum.
		if got := SumSquares(a); math.Abs(got-wantSq) > 1e-6 {
			t.Fatalf("iter %d: SumSquares %v, want %v while retuning workers", iter, got, wantSq)
		}
	}
	close(stop)
	wg.Wait()
}

// TestSumSquaresInlineFallbackCoversAllSlots pins the contract that lets
// SumSquares survive a concurrent worker retune: when parallelRun falls
// back to the inline path it delivers one range spanning every grain, and
// runRange must overwrite every partial slot — stale values left in the
// pooled slice by a previous call must not leak into the reduction.
func TestSumSquaresInlineFallbackCoversAllSlots(t *testing.T) {
	const n, grain = 10_000, 2048
	x := make([]float32, n)
	for i := range x {
		x[i] = 1
	}
	chunks := (n + grain - 1) / grain
	s := &sumSqState{x: x, grain: grain, part: make([]float64, chunks)}
	for i := range s.part {
		s.part[i] = 1e9 // poison: any slot not rewritten corrupts the sum
	}
	s.runRange(0, n)
	var sum float64
	for _, p := range s.part {
		sum += p
	}
	if sum != n {
		t.Fatalf("inline runRange left stale partials: sum %v, want %v", sum, float64(n))
	}
}

// TestSumSquaresPoolDeterministic: the pooled reduction must agree with
// the serial loop and stay deterministic across repeats (partials are
// reduced in chunk order, not completion order).
func TestSumSquaresPoolDeterministic(t *testing.T) {
	r := tensor.NewRNG(22)
	x := randSlice(r, 100_000)
	var want float64
	for _, v := range x {
		want += float64(v) * float64(v)
	}
	old := SetMaxWorkers(4)
	defer SetMaxWorkers(old)
	first := SumSquares(x)
	if diff := first - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("SumSquares parallel %v vs serial %v", first, want)
	}
	for i := 0; i < 10; i++ {
		if got := SumSquares(x); got != first {
			t.Fatalf("SumSquares not deterministic: %v vs %v", got, first)
		}
	}
}

// TestMaxWorkersReporting: SetMaxWorkers returns the previous bound and
// MaxWorkers reflects the current one.
func TestMaxWorkersReporting(t *testing.T) {
	orig := MaxWorkers()
	if prev := SetMaxWorkers(3); prev != orig {
		t.Fatalf("SetMaxWorkers returned %d, want %d", prev, orig)
	}
	if MaxWorkers() != 3 {
		t.Fatalf("MaxWorkers = %d, want 3", MaxWorkers())
	}
	SetMaxWorkers(orig)
}
