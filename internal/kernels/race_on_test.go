//go:build race

package kernels

// raceEnabled reports whether the race detector is active; alloc-count
// assertions are skipped under -race because its instrumentation allocates.
const raceEnabled = true
