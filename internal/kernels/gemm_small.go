package kernels

// The small-GEMM compute core: a register-tiled sweep over packed
// micro-panels, shared by the blocked single-GEMM tile grid
// (gemmState.tile) and the batched blocked engine's per-matrix work items
// (gemm_batched_blocked.go). Factoring it out of gemmState is what lets
// the per-head n×n×dHead attention products run through the SIMD
// micro-kernel with no blocked-state machinery around them: a batched
// work item is just beta-scale + this sweep per depth block.

// microTileSweep accumulates C[ir0:irEnd][jr0:jrEnd] += Apanels·Bpanels
// for one depth block of kcb packed steps. c addresses the full packed
// region: element (r, j) lives at c[r*ldc+j], ap/bp hold mr-row and
// nr-column micro-panels of ms live rows and ncb live columns (panel i
// at ap[i*mr*kcb:], panel j at bp[j*nr*kcb:], zero-padded). ir0/jr0 must
// be multiples of mr/nr. The micro-kernel is a continuation fold (its
// accumulators seed from C), so the sweep preserves that property: a
// depth range split across calls folds bitwise-identically to one call.
// Full tiles go straight to the micro-kernel; edge tiles land in a
// pooled side buffer first (a plain local array would escape through the
// indirect kern call and allocate per tile) that is seeded with the live
// C region and copied back afterwards — panel padding is zero and a
// zero-seeded fma lane stays exactly zero, so the dead lanes never leak
// into C.
func microTileSweep(c []float32, ldc int, ap, bp []float32, kcb, ir0, irEnd, jr0, jrEnd, ms, ncb int) {
	mr, nr := gemmMR, gemmNR
	kern := microKernel
	var tmp *[microTileMax]float32
	for jr := jr0; jr < jrEnd; jr += nr {
		nw := min(nr, ncb-jr)
		bpanel := bp[(jr/nr)*nr*kcb:]
		for ir := ir0; ir < irEnd; ir += mr {
			mw := min(mr, ms-ir)
			apanel := ap[(ir/mr)*mr*kcb:]
			cc := c[ir*ldc+jr:]
			if mw == mr && nw == nr {
				kern(kcb, apanel, bpanel, cc, ldc)
				continue
			}
			if tmp == nil {
				tmp = microTilePool.Get().(*[microTileMax]float32)
			}
			clear(tmp[:mr*nr])
			for r := 0; r < mw; r++ {
				copy(tmp[r*nr:r*nr+nw], cc[r*ldc:])
			}
			kern(kcb, apanel, bpanel, tmp[:], nr)
			for r := 0; r < mw; r++ {
				crow := cc[r*ldc:]
				trow := tmp[r*nr:]
				for q := 0; q < nw; q++ {
					crow[q] = trow[q]
				}
			}
		}
	}
	if tmp != nil {
		microTilePool.Put(tmp)
	}
}
