package kernels

import (
	"math"
	"testing"
	"testing/quick"

	"demystbert/internal/tensor"
)

func TestAddMulScale(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	dst := make([]float32, 3)
	Add(dst, a, b)
	if dst[0] != 5 || dst[2] != 9 {
		t.Fatalf("Add = %v", dst)
	}
	Mul(dst, a, b)
	if dst[0] != 4 || dst[2] != 18 {
		t.Fatalf("Mul = %v", dst)
	}
	Scale(dst, a, 3)
	if dst[0] != 3 || dst[2] != 9 {
		t.Fatalf("Scale = %v", dst)
	}
	AccumulateInto(dst, a)
	if dst[0] != 4 || dst[2] != 12 {
		t.Fatalf("AccumulateInto = %v", dst)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Add(make([]float32, 3), make([]float32, 3), make([]float32, 4))
}

func TestAddBiasAndGrad(t *testing.T) {
	m, n := 3, 4
	x := make([]float32, m*n)
	bias := []float32{1, 2, 3, 4}
	AddBias(x, bias, m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if x[i*n+j] != bias[j] {
				t.Fatalf("AddBias[%d,%d] = %v", i, j, x[i*n+j])
			}
		}
	}
	dBias := make([]float32, n)
	BiasGrad(dBias, x, m, n)
	for j := 0; j < n; j++ {
		if dBias[j] != float32(m)*bias[j] {
			t.Fatalf("BiasGrad[%d] = %v, want %v", j, dBias[j], float32(m)*bias[j])
		}
	}
	// BiasGrad must accumulate.
	BiasGrad(dBias, x, m, n)
	if dBias[0] != 2*float32(m)*bias[0] {
		t.Fatal("BiasGrad must accumulate into dBias")
	}
}

func TestMaskAdd(t *testing.T) {
	dst := make([]float32, 2)
	MaskAdd(dst, []float32{1, 2}, []float32{0, -1e9})
	if dst[0] != 1 || dst[1] != -1e9+2 {
		t.Fatalf("MaskAdd = %v", dst)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	r := tensor.NewRNG(1)
	rows, n := 8, 16
	x := randSlice(r, rows*n)
	y := make([]float32, rows*n)
	Softmax(y, x, rows, n)
	for row := 0; row < rows; row++ {
		var s float64
		for j := 0; j < n; j++ {
			v := y[row*n+j]
			if v < 0 || v > 1 {
				t.Fatalf("softmax value %v outside [0,1]", v)
			}
			s += float64(v)
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", row, s)
		}
	}
}

// Property: softmax is invariant to adding a constant to a row.
func TestSoftmaxShiftInvarianceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		n := 2 + r.Intn(16)
		x := randSlice(r, n)
		shifted := make([]float32, n)
		c := r.Float32()*10 - 5
		for i := range x {
			shifted[i] = x[i] + c
		}
		y1 := make([]float32, n)
		y2 := make([]float32, n)
		Softmax(y1, x, 1, n)
		Softmax(y2, shifted, 1, n)
		return maxAbsDiff(y1, y2) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxLargeValuesStable(t *testing.T) {
	y := make([]float32, 3)
	Softmax(y, []float32{1000, 1000, 1000}, 1, 3)
	for _, v := range y {
		if math.Abs(float64(v)-1.0/3) > 1e-5 {
			t.Fatalf("softmax of equal large values = %v", y)
		}
	}
}

// Property: SoftmaxGrad matches finite differences of the softmax.
func TestSoftmaxGradFiniteDifference(t *testing.T) {
	r := tensor.NewRNG(7)
	n := 6
	x := randSlice(r, n)
	dY := randSlice(r, n)
	y := make([]float32, n)
	Softmax(y, x, 1, n)
	dX := make([]float32, n)
	SoftmaxGrad(dX, dY, y, 1, n)

	const eps = 1e-3
	for i := 0; i < n; i++ {
		xp := append([]float32(nil), x...)
		xm := append([]float32(nil), x...)
		xp[i] += eps
		xm[i] -= eps
		yp := make([]float32, n)
		ym := make([]float32, n)
		Softmax(yp, xp, 1, n)
		Softmax(ym, xm, 1, n)
		var num float64
		for j := 0; j < n; j++ {
			num += float64(dY[j]) * float64(yp[j]-ym[j]) / (2 * eps)
		}
		if math.Abs(num-float64(dX[i])) > 1e-2 {
			t.Fatalf("softmax grad[%d]: analytic %v vs numeric %v", i, dX[i], num)
		}
	}
}

func TestScaleMaskSoftmaxFusedMatchesUnfused(t *testing.T) {
	r := tensor.NewRNG(9)
	rows, n := 4, 8
	x := randSlice(r, rows*n)
	mask := make([]float32, rows*n)
	for i := range mask {
		if r.Float32() < 0.2 {
			mask[i] = -1e9
		}
	}
	const s = 0.125
	fused := make([]float32, rows*n)
	ScaleMaskSoftmaxFused(fused, x, mask, s, rows, n)

	tmp := make([]float32, rows*n)
	Scale(tmp, x, s)
	MaskAdd(tmp, tmp, mask)
	unfused := make([]float32, rows*n)
	Softmax(unfused, tmp, rows, n)

	if d := maxAbsDiff(fused, unfused); d > 1e-6 {
		t.Fatalf("fused vs unfused diff %v", d)
	}
}

func TestLayerNormForwardStatistics(t *testing.T) {
	r := tensor.NewRNG(2)
	rows, n := 5, 32
	x := randSlice(r, rows*n)
	gamma := make([]float32, n)
	beta := make([]float32, n)
	for i := range gamma {
		gamma[i] = 1
	}
	y := make([]float32, rows*n)
	mean := make([]float32, rows)
	invStd := make([]float32, rows)
	LayerNormForward(y, x, gamma, beta, mean, invStd, rows, n, 1e-12)
	for row := 0; row < rows; row++ {
		var s, sq float64
		for j := 0; j < n; j++ {
			v := float64(y[row*n+j])
			s += v
			sq += v * v
		}
		m := s / float64(n)
		variance := sq/float64(n) - m*m
		if math.Abs(m) > 1e-4 {
			t.Fatalf("row %d mean %v, want ~0", row, m)
		}
		if math.Abs(variance-1) > 1e-3 {
			t.Fatalf("row %d variance %v, want ~1", row, variance)
		}
	}
}

func TestLayerNormAffine(t *testing.T) {
	rows, n := 1, 4
	x := []float32{1, 2, 3, 4}
	gamma := []float32{2, 2, 2, 2}
	beta := []float32{10, 10, 10, 10}
	y := make([]float32, n)
	mean := make([]float32, rows)
	invStd := make([]float32, rows)
	LayerNormForward(y, x, gamma, beta, mean, invStd, rows, n, 1e-12)
	var s float64
	for _, v := range y {
		s += float64(v)
	}
	// gamma scales a zero-mean signal; mean of y must equal mean of beta.
	if math.Abs(s/float64(n)-10) > 1e-4 {
		t.Fatalf("affine layer norm mean %v, want 10", s/float64(n))
	}
}

func TestLayerNormBackwardFiniteDifference(t *testing.T) {
	r := tensor.NewRNG(3)
	rows, n := 3, 8
	x := randSlice(r, rows*n)
	gamma := randSlice(r, n)
	beta := randSlice(r, n)
	dY := randSlice(r, rows*n)

	forward := func(xv, gv, bv []float32) []float32 {
		y := make([]float32, rows*n)
		mean := make([]float32, rows)
		invStd := make([]float32, rows)
		LayerNormForward(y, xv, gv, bv, mean, invStd, rows, n, 1e-5)
		return y
	}
	loss := func(xv, gv, bv []float32) float64 {
		y := forward(xv, gv, bv)
		var l float64
		for i := range y {
			l += float64(dY[i]) * float64(y[i])
		}
		return l
	}

	y := make([]float32, rows*n)
	mean := make([]float32, rows)
	invStd := make([]float32, rows)
	LayerNormForward(y, x, gamma, beta, mean, invStd, rows, n, 1e-5)
	dX := make([]float32, rows*n)
	dGamma := make([]float32, n)
	dBeta := make([]float32, n)
	LayerNormBackward(dX, dGamma, dBeta, dY, x, gamma, mean, invStd, rows, n)

	const eps = 1e-2
	check := func(name string, buf []float32, grad []float32, idx int) {
		t.Helper()
		orig := buf[idx]
		buf[idx] = orig + eps
		lp := loss(x, gamma, beta)
		buf[idx] = orig - eps
		lm := loss(x, gamma, beta)
		buf[idx] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(grad[idx])) > 2e-2*math.Max(1, math.Abs(num)) {
			t.Fatalf("%s[%d]: analytic %v vs numeric %v", name, idx, grad[idx], num)
		}
	}
	for _, idx := range []int{0, 5, rows*n - 1} {
		check("dX", x, dX, idx)
	}
	for _, idx := range []int{0, n - 1} {
		check("dGamma", gamma, dGamma, idx)
		check("dBeta", beta, dBeta, idx)
	}
}

func TestGeLUKnownValues(t *testing.T) {
	x := []float32{0, 1, -1, 3}
	y := make([]float32, len(x))
	GeLUForward(y, x)
	// GELU(0)=0; GELU(1)=0.841345; GELU(-1)=-0.158655; GELU(3)≈2.99595.
	want := []float64{0, 0.8413447, -0.1586553, 2.9959502}
	for i := range want {
		if math.Abs(float64(y[i])-want[i]) > 1e-5 {
			t.Fatalf("GeLU(%v) = %v, want %v", x[i], y[i], want[i])
		}
	}
}

func TestGeLUBackwardFiniteDifference(t *testing.T) {
	r := tensor.NewRNG(4)
	n := 32
	x := randSlice(r, n)
	dY := randSlice(r, n)
	dX := make([]float32, n)
	GeLUBackward(dX, dY, x)
	const eps = 1e-3
	for i := 0; i < n; i += 5 {
		xp, xm := x[i]+eps, x[i]-eps
		yp := make([]float32, 1)
		ym := make([]float32, 1)
		GeLUForward(yp, []float32{xp})
		GeLUForward(ym, []float32{xm})
		num := float64(dY[i]) * float64(yp[0]-ym[0]) / (2 * eps)
		if math.Abs(num-float64(dX[i])) > 1e-3 {
			t.Fatalf("GeLU grad[%d]: analytic %v vs numeric %v", i, dX[i], num)
		}
	}
}

// Property: GeLU(x) is bounded between min(0, x) and max(0, x).
func TestGeLUBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		x := []float32{r.Float32()*20 - 10}
		y := make([]float32, 1)
		GeLUForward(y, x)
		lo, hi := float32(math.Min(0, float64(x[0]))), float32(math.Max(0, float64(x[0])))
		return y[0] >= lo-1e-6 && y[0] <= hi+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDropoutMaskStatistics(t *testing.T) {
	const n = 100000
	const p = 0.3
	mask := make([]float32, n)
	DropoutMask(mask, p, tensor.NewRNG(5))
	zeros := 0
	keep := float32(1 / (1 - p))
	for _, v := range mask {
		switch v {
		case 0:
			zeros++
		case keep:
		default:
			t.Fatalf("mask value %v is neither 0 nor %v", v, keep)
		}
	}
	rate := float64(zeros) / n
	if math.Abs(rate-p) > 0.01 {
		t.Fatalf("drop rate %v, want ~%v", rate, p)
	}
}

func TestDropoutMaskPreservesExpectation(t *testing.T) {
	const n = 200000
	x := make([]float32, n)
	for i := range x {
		x[i] = 1
	}
	mask := make([]float32, n)
	DropoutMask(mask, 0.1, tensor.NewRNG(6))
	y := make([]float32, n)
	DropoutApply(y, x, mask)
	if mean := Sum(y) / n; math.Abs(mean-1) > 0.01 {
		t.Fatalf("inverted dropout mean %v, want ~1", mean)
	}
}

func TestDropoutZeroProbability(t *testing.T) {
	mask := make([]float32, 10)
	DropoutMask(mask, 0, tensor.NewRNG(7))
	for _, v := range mask {
		if v != 1 {
			t.Fatalf("p=0 mask value %v, want 1", v)
		}
	}
}

func TestDropoutZeroProbabilityPreservesStream(t *testing.T) {
	// Stream-stability contract: p == 0 must not consume the RNG, so a
	// zero-rate dropout layer leaves downstream random state untouched
	// and seed-for-seed comparisons against a no-dropout model hold.
	rng := tensor.NewRNG(7)
	DropoutMask(make([]float32, 1024), 0, rng)
	want := tensor.NewRNG(7)
	for i := 0; i < 8; i++ {
		if got, w := rng.Float32(), want.Float32(); got != w {
			t.Fatalf("draw %d after p=0 mask: %v, want %v (stream was consumed)", i, got, w)
		}
	}
	// And p > 0 consumes exactly len(mask) draws, sequentially.
	rng = tensor.NewRNG(7)
	DropoutMask(make([]float32, 100), 0.5, rng)
	want = tensor.NewRNG(7)
	for i := 0; i < 100; i++ {
		want.Float32()
	}
	if got, w := rng.Float32(), want.Float32(); got != w {
		t.Fatalf("p>0 mask consumed a draw count != len(mask): next draw %v, want %v", got, w)
	}
}

func TestDropoutBadProbabilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p=1 did not panic")
		}
	}()
	DropoutMask(make([]float32, 4), 1, tensor.NewRNG(8))
}

func TestReductions(t *testing.T) {
	x := []float32{3, 4}
	if got := SumSquares(x); got != 25 {
		t.Fatalf("SumSquares = %v", got)
	}
	if got := L2Norm(x); got != 5 {
		t.Fatalf("L2Norm = %v", got)
	}
	if got := Sum(x); got != 7 {
		t.Fatalf("Sum = %v", got)
	}
	if SumSquares(nil) != 0 || Sum(nil) != 0 {
		t.Fatal("empty reductions must be 0")
	}
}

func TestSumSquaresParallelMatchesSerial(t *testing.T) {
	r := tensor.NewRNG(9)
	x := randSlice(r, 100001)
	par := SumSquares(x)
	old := SetMaxWorkers(1)
	ser := SumSquares(x)
	SetMaxWorkers(old)
	if math.Abs(par-ser) > 1e-6*math.Abs(ser) {
		t.Fatalf("parallel %v vs serial %v", par, ser)
	}
}

func TestTranspose2D(t *testing.T) {
	x := []float32{1, 2, 3, 4, 5, 6} // 2x3
	y := make([]float32, 6)
	Transpose2D(y, x, 2, 3)
	want := []float32{1, 4, 2, 5, 3, 6}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Transpose2D = %v", y)
		}
	}
}

// Property: double transpose is identity.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		m, n := 1+r.Intn(10), 1+r.Intn(10)
		x := randSlice(r, m*n)
		y := make([]float32, m*n)
		z := make([]float32, m*n)
		Transpose2D(y, x, m, n)
		Transpose2D(z, y, n, m)
		return maxAbsDiff(x, z) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitMergeHeadsRoundTrip(t *testing.T) {
	r := tensor.NewRNG(10)
	b, n, h, dHead := 2, 3, 4, 5
	x := randSlice(r, b*n*h*dHead)
	split := make([]float32, len(x))
	merged := make([]float32, len(x))
	SplitHeads(split, x, b, n, h, dHead)
	MergeHeads(merged, split, b, n, h, dHead)
	if maxAbsDiff(x, merged) != 0 {
		t.Fatal("SplitHeads/MergeHeads round trip failed")
	}
}

func TestSplitHeadsLayout(t *testing.T) {
	// One batch, 2 tokens, 2 heads, dHead 2: token t, head h, elem j has
	// input value 100*t + 10*h + j.
	b, n, h, dHead := 1, 2, 2, 2
	x := make([]float32, b*n*h*dHead)
	for t0 := 0; t0 < n; t0++ {
		for hh := 0; hh < h; hh++ {
			for j := 0; j < dHead; j++ {
				x[t0*h*dHead+hh*dHead+j] = float32(100*t0 + 10*hh + j)
			}
		}
	}
	out := make([]float32, len(x))
	SplitHeads(out, x, b, n, h, dHead)
	// Head 1, token 0, elem 1 lives at ((0*2+1)*2+0)*2+1.
	if got := out[((0*2+1)*2+0)*2+1]; got != 11 {
		t.Fatalf("SplitHeads layout: got %v, want 11", got)
	}
	// Head 0, token 1, elem 0 lives at ((0*2+0)*2+1)*2+0.
	if got := out[((0*2+0)*2+1)*2+0]; got != 100 {
		t.Fatalf("SplitHeads layout: got %v, want 100", got)
	}
}

func TestCrossEntropyUniformLogits(t *testing.T) {
	rows, classes := 2, 4
	logits := make([]float32, rows*classes)
	probs := make([]float32, rows*classes)
	loss := CrossEntropyForward(probs, logits, []int{1, 3}, rows, classes)
	if math.Abs(loss-math.Log(4)) > 1e-6 {
		t.Fatalf("uniform CE loss = %v, want ln4 = %v", loss, math.Log(4))
	}
}

func TestCrossEntropyIgnoreIndex(t *testing.T) {
	rows, classes := 3, 4
	logits := make([]float32, rows*classes)
	logits[0*classes+2] = 5 // confident correct prediction on row 0
	probs := make([]float32, rows*classes)
	lossAll := CrossEntropyForward(probs, logits, []int{2, 0, 0}, rows, classes)
	lossIgnored := CrossEntropyForward(probs, logits, []int{2, IgnoreIndex, IgnoreIndex}, rows, classes)
	if lossIgnored >= lossAll {
		t.Fatalf("ignoring uniform rows should lower mean loss: %v vs %v", lossIgnored, lossAll)
	}
	dLogits := make([]float32, rows*classes)
	CrossEntropyBackward(dLogits, probs, []int{2, IgnoreIndex, IgnoreIndex}, rows, classes)
	for j := 0; j < classes; j++ {
		if dLogits[1*classes+j] != 0 || dLogits[2*classes+j] != 0 {
			t.Fatal("ignored rows must have zero gradient")
		}
	}
}

func TestCrossEntropyAllIgnored(t *testing.T) {
	probs := make([]float32, 4)
	if loss := CrossEntropyForward(probs, make([]float32, 4), []int{IgnoreIndex}, 1, 4); loss != 0 {
		t.Fatalf("all-ignored loss = %v", loss)
	}
	d := []float32{1, 1, 1, 1}
	CrossEntropyBackward(d, probs, []int{IgnoreIndex}, 1, 4)
	for _, v := range d {
		if v != 0 {
			t.Fatal("all-ignored gradient must be zero")
		}
	}
}

func TestCrossEntropyGradFiniteDifference(t *testing.T) {
	r := tensor.NewRNG(11)
	rows, classes := 3, 5
	logits := randSlice(r, rows*classes)
	targets := []int{2, IgnoreIndex, 4}
	probs := make([]float32, rows*classes)
	CrossEntropyForward(probs, logits, targets, rows, classes)
	dLogits := make([]float32, rows*classes)
	CrossEntropyBackward(dLogits, probs, targets, rows, classes)

	const eps = 1e-3
	for i := 0; i < rows*classes; i += 3 {
		orig := logits[i]
		logits[i] = orig + eps
		lp := CrossEntropyForward(probs, logits, targets, rows, classes)
		logits[i] = orig - eps
		lm := CrossEntropyForward(probs, logits, targets, rows, classes)
		logits[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(dLogits[i])) > 1e-3 {
			t.Fatalf("CE grad[%d]: analytic %v vs numeric %v", i, dLogits[i], num)
		}
	}
}

func TestCrossEntropyBadTargetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range target did not panic")
		}
	}()
	CrossEntropyForward(make([]float32, 4), make([]float32, 4), []int{7}, 1, 4)
}

func TestScaleMaskSoftmaxAttentionMatchesSequence(t *testing.T) {
	r := tensor.NewRNG(21)
	b, h, n := 2, 3, 8
	rows := b * h * n
	scores := randSlice(r, rows*n)
	keyMask := make([]float32, b*n)
	keyMask[n-1] = -1e9 // mask last key of sequence 0
	const s = 0.25

	for _, causal := range []bool{false, true} {
		fused := make([]float32, rows*n)
		ScaleMaskSoftmaxAttention(fused, scores, keyMask, s, causal, b, h, n)

		// Unfused reference: scale, broadcast mask, causal, softmax.
		tmp := make([]float32, rows*n)
		Scale(tmp, scores, s)
		for r0 := 0; r0 < rows; r0++ {
			batch := r0 / (h * n)
			q := r0 % n
			row := tmp[r0*n : (r0+1)*n]
			for k := 0; k < n; k++ {
				row[k] += keyMask[batch*n+k]
				if causal && k > q {
					row[k] = -1e9
				}
			}
		}
		want := make([]float32, rows*n)
		Softmax(want, tmp, rows, n)
		if d := maxAbsDiff(fused, want); d > 1e-6 {
			t.Fatalf("causal=%v: fused attention softmax differs by %v", causal, d)
		}
	}
}

func TestScaleMaskSoftmaxAttentionNilMask(t *testing.T) {
	r := tensor.NewRNG(22)
	b, h, n := 1, 2, 4
	rows := b * h * n
	scores := randSlice(r, rows*n)
	out := make([]float32, rows*n)
	ScaleMaskSoftmaxAttention(out, scores, nil, 1, false, b, h, n)
	for row := 0; row < rows; row++ {
		var sum float64
		for k := 0; k < n; k++ {
			sum += float64(out[row*n+k])
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", row, sum)
		}
	}
}

func TestScaleMaskSoftmaxAttentionBadDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ScaleMaskSoftmaxAttention(make([]float32, 8), make([]float32, 8), make([]float32, 3), 1, false, 1, 1, 2)
}

// refAddBias / refBiasGrad are the serial reference kernels the flattened
// (AddBias) and column-banded (BiasGrad) implementations must match
// bitwise: per-element adds are order-free, and BiasGrad is a per-column
// continuation fold seeded from the existing dBias, accumulating rows in
// order i = 0..m-1 (so split-row calls compose bitwise — the gradient-
// accumulation contract).
func refAddBias(x, bias []float32, m, n int) {
	for i := 0; i < m; i++ {
		row := x[i*n : (i+1)*n]
		for j, b := range bias {
			row[j] += b
		}
	}
}

func refBiasGrad(dBias, dY []float32, m, n int) {
	for j := 0; j < n; j++ {
		s := dBias[j]
		for i := 0; i < m; i++ {
			s += dY[i*n+j]
		}
		dBias[j] = s
	}
}

func TestAddBiasBiasGradMatchReferenceBitwise(t *testing.T) {
	r := tensor.NewRNG(77)
	shapes := []struct{ m, n int }{
		{1, 1}, {1, 257}, {2, 63}, {3, 64}, {5, 65}, {17, 19},
		{1, 4096}, {2, 5000}, {64, 64}, {7, 768}, {128, 3},
	}
	for _, sh := range shapes {
		for _, w := range []int{1, 2, 4, 7} {
			old := SetMaxWorkers(w)
			x := randSlice(r, sh.m*sh.n)
			bias := randSlice(r, sh.n)
			want := append([]float32(nil), x...)
			refAddBias(want, bias, sh.m, sh.n)
			AddBias(x, bias, sh.m, sh.n)
			for i := range x {
				if math.Float32bits(x[i]) != math.Float32bits(want[i]) {
					t.Fatalf("AddBias m=%d n=%d w=%d: elem %d = %v, want %v",
						sh.m, sh.n, w, i, x[i], want[i])
				}
			}
			dB := randSlice(r, sh.n)
			wantB := append([]float32(nil), dB...)
			refBiasGrad(wantB, x, sh.m, sh.n)
			BiasGrad(dB, x, sh.m, sh.n)
			for j := range dB {
				if math.Float32bits(dB[j]) != math.Float32bits(wantB[j]) {
					t.Fatalf("BiasGrad m=%d n=%d w=%d: col %d = %v, want %v",
						sh.m, sh.n, w, j, dB[j], wantB[j])
				}
			}
			SetMaxWorkers(old)
		}
	}
}

func TestAddBiasBiasGradZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts unreliable under -race")
	}
	r := tensor.NewRNG(78)
	m, n := 64, 768
	x := randSlice(r, m*n)
	bias := randSlice(r, n)
	dB := make([]float32, n)
	old := SetMaxWorkers(1)
	defer SetMaxWorkers(old)
	AddBias(x, bias, m, n) // warm the state pools
	BiasGrad(dB, x, m, n)
	if avg := testing.AllocsPerRun(10, func() { AddBias(x, bias, m, n) }); avg != 0 {
		t.Errorf("AddBias allocates %v per op in steady state, want 0", avg)
	}
	if avg := testing.AllocsPerRun(10, func() { BiasGrad(dB, x, m, n) }); avg != 0 {
		t.Errorf("BiasGrad allocates %v per op in steady state, want 0", avg)
	}
}
