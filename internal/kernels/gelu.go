package kernels

import "math"

// GeLUForward applies the exact Gaussian Error Linear Unit (paper Eq. 1):
//
//	GELU(x) = x * 0.5 * (1 + erf(x / sqrt(2)))
//
// element-wise. dst and x may alias only if the backward pass will not
// need the original input (the engine keeps x).
func GeLUForward(dst, x []float32) {
	checkSameLen("GeLUForward", dst, x)
	parallelFor(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = geluScalar(x[i])
		}
	})
}

// geluScalar is the shared scalar GELU used by both the stand-alone
// GeLUForward pass and the fused GEMM epilogue (gemm_epilogue.go). Keeping
// the exact same float64 expression in one place is what makes the fused
// and unfused paths bitwise-identical.
func geluScalar(x float32) float32 {
	v := float64(x)
	return float32(v * 0.5 * (1 + math.Erf(v/math.Sqrt2)))
}

// GeLUBackward computes dX = dY * GELU'(x) with the exact derivative
//
//	GELU'(x) = 0.5*(1 + erf(x/sqrt(2))) + x * phi(x)
//
// where phi is the standard normal density.
func GeLUBackward(dX, dY, x []float32) {
	checkSameLen("GeLUBackward", dX, dY, x)
	const invSqrt2Pi = 0.3989422804014327
	parallelFor(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := float64(x[i])
			cdf := 0.5 * (1 + math.Erf(v/math.Sqrt2))
			pdf := invSqrt2Pi * math.Exp(-0.5*v*v)
			dX[i] = dY[i] * float32(cdf+v*pdf)
		}
	})
}

// GeLUUnfusedKernelCount is the kernel count of an unfused GeLU forward:
// scale (x/sqrt2), erf, add-one, halve, multiply-by-x (Section 3.2.3 lists
// the EW add, multiply, divide and ERF steps).
const GeLUUnfusedKernelCount = 5
