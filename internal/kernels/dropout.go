package kernels

import (
	"fmt"

	"demystbert/internal/tensor"
)

// DropoutMask fills mask with an inverted-dropout mask: each element is
// 1/(1-p) with probability 1-p and 0 with probability p. Scaling at train
// time keeps activation magnitudes unchanged so inference needs no
// rescale.
//
// Stream-stability contract: p == 0 produces the identity mask WITHOUT
// consuming the RNG stream. The number of draws a training step consumes
// must not depend on rates that are exactly zero, so enabling a zero-rate
// dropout layer cannot shift downstream random state — seed-for-seed
// comparisons against a no-dropout model (and the audit harness's
// fixed-seed determinism pins) rely on this. For p > 0 the kernel consumes
// exactly len(mask) draws, sequentially.
func DropoutMask(mask []float32, p float32, rng *tensor.RNG) {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("kernels: dropout probability %v outside [0,1)", p))
	}
	if p == 0 {
		for i := range mask {
			mask[i] = 1
		}
		return
	}
	keep := 1 / (1 - p)
	// Mask generation is sequential: the RNG stream must be deterministic
	// for reproducibility, which a parallel fill would break.
	for i := range mask {
		if rng.Float32() < p {
			mask[i] = 0
		} else {
			mask[i] = keep
		}
	}
}

// DropoutApply computes dst = x * mask; it implements both the forward
// pass and, applied to gradients, the backward pass (dropout's Jacobian is
// the mask itself).
func DropoutApply(dst, x, mask []float32) {
	Mul(dst, x, mask)
}
