package data

import (
	"fmt"

	"demystbert/internal/tensor"
)

// QABatch is a synthetic extractive-QA fine-tuning batch in the SQuAD
// style: a question (segment 0) and a context passage (segment 1) per
// sequence, with gold answer-span start and end positions inside the
// passage.
type QABatch struct {
	B, N int

	Tokens   []int
	Segments []int

	// StartPos and EndPos (length B) are the gold span boundaries,
	// indices into the sequence.
	StartPos []int
	EndPos   []int

	// Mask is the additive [B, n] attention mask.
	Mask *tensor.Tensor
}

// NextQA generates a QA batch of b sequences of n tokens: [CLS] question
// [SEP] context, with a random answer span inside the context.
func (g *Generator) NextQA(b, n int) *QABatch {
	if b <= 0 || n < 8 {
		panic(fmt.Sprintf("data: QA batch %dx%d too small (need n >= 8)", b, n))
	}
	batch := &QABatch{
		B:        b,
		N:        n,
		Tokens:   make([]int, b*n),
		Segments: make([]int, b*n),
		StartPos: make([]int, b),
		EndPos:   make([]int, b),
		Mask:     tensor.New(b, n),
	}
	for s := 0; s < b; s++ {
		base := s * n
		sep := 2 + g.rng.Intn(n/2-2) // question length varies
		batch.Tokens[base] = ClsID
		for i := 1; i < n; i++ {
			if i == sep {
				batch.Tokens[base+i] = SepID
			} else {
				batch.Tokens[base+i] = FirstWordID + g.rng.Intn(g.vocab-FirstWordID)
			}
			if i > sep {
				batch.Segments[base+i] = 1
			}
		}
		// Answer span inside the context (after SEP).
		ctxStart := sep + 1
		ctxLen := n - ctxStart
		start := ctxStart + g.rng.Intn(ctxLen)
		span := g.rng.Intn(min(4, n-start)) // short answers
		batch.StartPos[s] = start
		batch.EndPos[s] = start + span
	}
	return batch
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
