// Package data generates synthetic BERT pre-training batches. The paper
// profiles one steady-state iteration of Wikipedia pre-training; iteration
// cost depends only on the batch geometry (B, n) and vocabulary size, not
// on token values, so deterministic synthetic batches exercise the
// identical code path (see DESIGN.md substitution table).
package data

import (
	"fmt"

	"demystbert/internal/kernels"
	"demystbert/internal/tensor"
)

// Special token ids, mirroring BERT's WordPiece conventions.
const (
	PadID  = 0
	ClsID  = 1
	SepID  = 2
	MaskID = 3
	// FirstWordID is the first id usable for ordinary words.
	FirstWordID = 4
)

// Batch is one pre-training mini-batch of B sequences of n tokens.
type Batch struct {
	B, N int

	// Tokens and Segments are row-major [B·n] id arrays. Every sequence
	// begins with [CLS] and contains a [SEP] between its two sentences.
	Tokens   []int
	Segments []int

	// MLMTargets holds the original token id at masked positions and
	// kernels.IgnoreIndex elsewhere (masked-word prediction task).
	MLMTargets []int

	// NSPLabels (length B) are the next-sentence-prediction labels.
	NSPLabels []int

	// Mask is the additive [B, n] attention mask: 0 for real tokens,
	// -1e9 for padding.
	Mask *tensor.Tensor
}

// Generator produces deterministic synthetic batches.
type Generator struct {
	vocab    int
	maskProb float32
	rng      *tensor.RNG
}

// NewGenerator returns a generator over the given vocabulary size, masking
// maskProb of the tokens (BERT uses 0.15).
func NewGenerator(vocab int, maskProb float32, seed uint64) *Generator {
	if vocab <= FirstWordID {
		panic(fmt.Sprintf("data: vocab %d must exceed the %d special ids", vocab, FirstWordID))
	}
	if maskProb < 0 || maskProb >= 1 {
		panic(fmt.Sprintf("data: mask probability %v outside [0,1)", maskProb))
	}
	return &Generator{vocab: vocab, maskProb: maskProb, rng: tensor.NewRNG(seed)}
}

// Next generates a batch of b full-length sequences of n tokens.
func (g *Generator) Next(b, n int) *Batch {
	if b <= 0 || n < 4 {
		panic(fmt.Sprintf("data: batch %dx%d too small (need n >= 4 for CLS/SEP structure)", b, n))
	}
	batch := &Batch{
		B:          b,
		N:          n,
		Tokens:     make([]int, b*n),
		Segments:   make([]int, b*n),
		MLMTargets: make([]int, b*n),
		NSPLabels:  make([]int, b),
		Mask:       tensor.New(b, n),
	}
	for i := range batch.MLMTargets {
		batch.MLMTargets[i] = kernels.IgnoreIndex
	}
	for s := 0; s < b; s++ {
		base := s * n
		// Sentence A occupies [1, sep); sentence B occupies (sep, n).
		sep := 1 + (n-2)/2
		batch.Tokens[base] = ClsID
		for i := 1; i < n; i++ {
			if i == sep {
				batch.Tokens[base+i] = SepID
			} else {
				batch.Tokens[base+i] = FirstWordID + g.rng.Intn(g.vocab-FirstWordID)
			}
			if i > sep {
				batch.Segments[base+i] = 1
			}
		}
		batch.NSPLabels[s] = g.rng.Intn(2)

		// Mask ordinary word positions. BERT's 80/10/10 rule: 80% become
		// [MASK], 10% a random token, 10% unchanged.
		for i := 1; i < n; i++ {
			if i == sep || g.rng.Float32() >= g.maskProb {
				continue
			}
			batch.MLMTargets[base+i] = batch.Tokens[base+i]
			switch r := g.rng.Float32(); {
			case r < 0.8:
				batch.Tokens[base+i] = MaskID
			case r < 0.9:
				batch.Tokens[base+i] = FirstWordID + g.rng.Intn(g.vocab-FirstWordID)
			}
		}
	}
	return batch
}

// Slice returns the contiguous sub-batch of sequences [lo, hi) as views
// into the receiver's arrays — no copies, so a micro-batch loop over
// slices touches the exact memory a full-batch step would. Gradient
// accumulation (model.StepAccum) walks a batch with this.
func (b *Batch) Slice(lo, hi int) *Batch {
	if lo < 0 || hi > b.B || lo >= hi {
		panic(fmt.Sprintf("data: Slice [%d,%d) outside batch of %d", lo, hi, b.B))
	}
	n := b.N
	return &Batch{
		B:          hi - lo,
		N:          n,
		Tokens:     b.Tokens[lo*n : hi*n],
		Segments:   b.Segments[lo*n : hi*n],
		MLMTargets: b.MLMTargets[lo*n : hi*n],
		NSPLabels:  b.NSPLabels[lo:hi],
		Mask:       tensor.Of(b.Mask.Data()[lo*n:hi*n], hi-lo, n),
	}
}

// MaskedCount returns the number of positions scored by the MLM loss.
func (b *Batch) MaskedCount() int {
	c := 0
	for _, t := range b.MLMTargets {
		if t != kernels.IgnoreIndex {
			c++
		}
	}
	return c
}

// Tokens per iteration, the paper's n·B quantity that forward/backward
// cost scales with (Section 3.3.1).
func (b *Batch) TokenCount() int { return b.B * b.N }

// NextVarLen generates a batch whose sequences have heterogeneous real
// lengths in [minLen, n], padded with [PAD] to the bucket length n and
// masked out of attention — the heterogeneity the paper notes makes NLP
// iterations non-uniform (Section 3.1.4, citing SeqPoint). Padded
// positions carry a large-negative attention mask and are never selected
// as MLM targets.
func (g *Generator) NextVarLen(b, n, minLen int) *Batch {
	if minLen < 4 || minLen > n {
		panic(fmt.Sprintf("data: minLen %d outside [4, %d]", minLen, n))
	}
	batch := g.Next(b, n)
	for s := 0; s < b; s++ {
		length := minLen + g.rng.Intn(n-minLen+1)
		base := s * n
		for i := length; i < n; i++ {
			batch.Tokens[base+i] = PadID
			batch.Segments[base+i] = 1 // padding continues segment B
			batch.MLMTargets[base+i] = kernels.IgnoreIndex
			batch.Mask.Set(-1e9, s, i)
		}
	}
	return batch
}

// RealTokenCount returns the number of non-padding tokens.
func (b *Batch) RealTokenCount() int {
	c := 0
	for _, t := range b.Tokens {
		if t != PadID {
			c++
		}
	}
	return c
}
