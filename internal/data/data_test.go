package data

import (
	"math"
	"testing"

	"demystbert/internal/kernels"
)

func TestBatchStructure(t *testing.T) {
	g := NewGenerator(1000, 0.15, 1)
	b := g.Next(4, 16)
	if b.B != 4 || b.N != 16 {
		t.Fatalf("batch dims %dx%d", b.B, b.N)
	}
	if len(b.Tokens) != 64 || len(b.Segments) != 64 || len(b.MLMTargets) != 64 || len(b.NSPLabels) != 4 {
		t.Fatal("batch array lengths wrong")
	}
	sep := 1 + (16-2)/2
	for s := 0; s < 4; s++ {
		base := s * 16
		if b.Tokens[base] != ClsID {
			t.Fatalf("sequence %d does not start with CLS", s)
		}
		if b.Tokens[base+sep] != SepID {
			t.Fatalf("sequence %d missing SEP at %d", s, sep)
		}
		for i := 0; i < 16; i++ {
			wantSeg := 0
			if i > sep {
				wantSeg = 1
			}
			if b.Segments[base+i] != wantSeg {
				t.Fatalf("segment[%d,%d] = %d, want %d", s, i, b.Segments[base+i], wantSeg)
			}
		}
		if l := b.NSPLabels[s]; l != 0 && l != 1 {
			t.Fatalf("NSP label %d", l)
		}
	}
}

func TestMaskingRate(t *testing.T) {
	g := NewGenerator(1000, 0.15, 2)
	b := g.Next(64, 128)
	rate := float64(b.MaskedCount()) / float64(b.TokenCount())
	// 2 structural tokens per sequence are never masked, so the realized
	// rate is slightly below 0.15.
	if math.Abs(rate-0.15) > 0.02 {
		t.Fatalf("mask rate %v, want ~0.15", rate)
	}
}

func TestMaskedTargetsHoldOriginalTokens(t *testing.T) {
	g := NewGenerator(1000, 0.15, 3)
	b := g.Next(8, 32)
	sawMaskToken := false
	for i, tgt := range b.MLMTargets {
		if tgt == kernels.IgnoreIndex {
			continue
		}
		if tgt < FirstWordID || tgt >= 1000 {
			t.Fatalf("MLM target %d at %d is not an ordinary word", tgt, i)
		}
		if b.Tokens[i] == MaskID {
			sawMaskToken = true
		}
	}
	if !sawMaskToken {
		t.Fatal("no [MASK] tokens placed (80%% rule)")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(500, 0.15, 7).Next(2, 16)
	b := NewGenerator(500, 0.15, 7).Next(2, 16)
	for i := range a.Tokens {
		if a.Tokens[i] != b.Tokens[i] || a.MLMTargets[i] != b.MLMTargets[i] {
			t.Fatal("same-seed generators must produce identical batches")
		}
	}
}

func TestMaskIsAllZerosForFullSequences(t *testing.T) {
	b := NewGenerator(500, 0.15, 8).Next(2, 8)
	for _, v := range b.Mask.Data() {
		if v != 0 {
			t.Fatal("full-length sequences must have a zero attention mask")
		}
	}
}

func TestGeneratorValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewGenerator(3, 0.15, 1) },
		func() { NewGenerator(100, 1.0, 1) },
		func() { NewGenerator(100, 0.15, 1).Next(0, 16) },
		func() { NewGenerator(100, 0.15, 1).Next(2, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTokenCount(t *testing.T) {
	b := NewGenerator(100, 0.15, 1).Next(4, 32)
	if b.TokenCount() != 128 {
		t.Fatalf("TokenCount = %d", b.TokenCount())
	}
}

func TestVarLenBatchPadding(t *testing.T) {
	g := NewGenerator(500, 0.15, 5)
	b := g.NextVarLen(8, 32, 8)
	if b.RealTokenCount() >= b.TokenCount() {
		t.Fatal("variable-length batch has no padding")
	}
	for s := 0; s < b.B; s++ {
		for i := 0; i < b.N; i++ {
			pad := b.Tokens[s*b.N+i] == PadID
			masked := b.Mask.At(s, i) < -1e8
			if pad != masked {
				t.Fatalf("seq %d pos %d: pad=%v but masked=%v", s, i, pad, masked)
			}
			if pad && b.MLMTargets[s*b.N+i] != kernels.IgnoreIndex {
				t.Fatal("padding must not be an MLM target")
			}
		}
		// Real tokens occupy a contiguous prefix of at least minLen.
		realLen := 0
		for i := 0; i < b.N && b.Tokens[s*b.N+i] != PadID; i++ {
			realLen++
		}
		if realLen < 8 {
			t.Fatalf("seq %d real length %d below minLen", s, realLen)
		}
	}
}

func TestVarLenValidation(t *testing.T) {
	g := NewGenerator(500, 0.15, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.NextVarLen(2, 16, 2)
}
