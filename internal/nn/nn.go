// Package nn implements the neural-network layer modules of the
// real-execution BERT engine: Linear, Multi-Head Attention, the
// feed-forward (FC) block, LayerNorm, Dropout, Residual, and Embedding,
// each with a hand-written backward pass. Every kernel invocation is
// recorded through internal/profile so real runs produce the same
// category/phase breakdowns the paper reports.
//
// All inter-module activations are rank-2 tensors of shape
// [tokens, features] with tokens = B·n: as the paper stresses
// (Section 3.2.2), BERT combines all token vectors of a mini-batch into a
// single matrix, so every layer manifests as a GEMM even at B = 1.
package nn

import (
	"fmt"
	"sync/atomic"

	"demystbert/internal/kernels"
	"demystbert/internal/profile"
	"demystbert/internal/tensor"
	"demystbert/internal/trace"
)

// Param is a trainable parameter tensor with its gradient accumulator.
//
// A Param also carries a mutation generation and a cache of micro-panel
// packings of Value (one per GEMM transpose orientation), so layers that
// use the weight as a GEMM B operand can call kernels.GEMMPacked without
// re-packing on every forward/backward. The contract: any code that
// mutates Value in place after the first forward pass must call BumpGen —
// the optimizers do (once per step, so the pack is rebuilt at most once
// per iteration instead of per GEMM call), and construction-time writes
// need nothing because no pack exists yet. Params must not be copied by
// value once in use (the generation counter and cache are atomic state;
// go vet's copylocks check enforces this).
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor

	gen   atomic.Uint64
	packs kernels.PackCache
}

// NewParam allocates a parameter and a zeroed gradient of the given shape.
func NewParam(name string, shape ...int) *Param {
	return &Param{
		Name:  name,
		Value: tensor.New(shape...),
		Grad:  tensor.New(shape...),
	}
}

// Size returns the parameter's element count.
func (p *Param) Size() int { return p.Value.Size() }

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Gen returns the parameter's mutation generation.
func (p *Param) Gen() uint64 { return p.gen.Load() }

// BumpGen records a mutation of Value, invalidating any cached packs.
// Safe for concurrent use (ddp replicas step their optimizers
// concurrently).
func (p *Param) BumpGen() { p.gen.Add(1) }

// Packed returns the cached micro-panel packing of Value for use as the
// B operand of kernels.GEMMPacked (op(B) is k×n; Value is stored n×k when
// transB is true, k×n otherwise). The pack is rebuilt only when the
// generation, shape, or kernel backend changed since the last call with
// this orientation. Concurrent readers are safe; the tied MLM-decoder
// weight shares the embedding Param and therefore this cache.
func (p *Param) Packed(transB bool, n, k int) *kernels.PackedB {
	return p.packs.Get(transB, n, k, p.Value.Data(), p.gen.Load())
}

// PackedInt8 returns the cached int8 quantized packing of Value for use
// as the B operand of kernels.GEMMInt8 (the frozen-weight inference
// path). It shares the generation-counted cache with the f32 packs, so
// an optimizer step invalidates both and the quantization always tracks
// the live weights.
func (p *Param) PackedInt8(transB bool, n, k int) *kernels.PackedBInt8 {
	return p.packs.GetInt8(transB, n, k, p.Value.Data(), p.gen.Load())
}

// Ctx carries per-iteration execution state through forward and backward
// passes: the profiler, the dropout RNG, the training flag, and whether
// mixed-precision byte accounting is active.
type Ctx struct {
	Prof  *profile.Profiler
	RNG   *tensor.RNG
	Train bool

	// MixedPrecision switches profiler byte accounting to 2-byte elements
	// for forward/backward kernels AND quantizes layer outputs through
	// IEEE binary16 storage, so reduced precision is numerically real.
	// Arithmetic remains float32 (accumulation in higher precision), and
	// master weights and optimizer state stay FP32, matching the paper's
	// MP training (Section 3.2.1).
	MixedPrecision bool

	// LossScale multiplies the loss gradient at the top of backprop
	// (mixed-precision loss scaling; 0 or 1 means unscaled). Gradients
	// must be unscaled before the optimizer step — see
	// optim.DynamicLossScaler.
	LossScale float32

	// Recompute marks a checkpointed segment's forward re-execution
	// during backprop (Section 4). Dropout replays its saved mask instead
	// of sampling a fresh one, so recomputed activations are bit-identical
	// to the originals.
	Recompute bool

	// Tracer and Span carry request/step-scoped trace identity through
	// the model's forward/backward plumbing, so phase spans (embed,
	// per-layer, MLM head) land in the same trace as the serving request
	// or training step that dispatched them. Both are optional: a nil
	// Tracer or unsampled Span makes StartSpan free.
	Tracer *trace.Tracer
	Span   trace.SpanContext
}

// StartSpan opens a model-phase span under the context's ambient trace.
// The zero handle comes back (allocation- and syscall-free) when the
// context carries no sampled trace.
func (c *Ctx) StartSpan(name string) trace.ActiveSpan {
	return c.Tracer.StartSpan(c.Span, name)
}

// NewCtx returns a training context with a fresh profiler and the given
// dropout seed.
func NewCtx(seed uint64) *Ctx {
	return &Ctx{Prof: profile.New(), RNG: tensor.NewRNG(seed), Train: true}
}

// ElemSize returns the byte accounting element size for activation
// kernels: 2 in mixed precision, else 4.
func (c *Ctx) ElemSize() int {
	if c.MixedPrecision {
		return 2
	}
	return 4
}

// EffectiveLossScale returns the loss-gradient multiplier (1 when unset).
func (c *Ctx) EffectiveLossScale() float32 {
	if c.LossScale == 0 {
		return 1
	}
	return c.LossScale
}

// StoreHalf quantizes an activation through binary16 storage when mixed
// precision is active — the "store to FP16, load back" boundary every
// layer output crosses in real MP training.
func (c *Ctx) StoreHalf(t *tensor.Tensor) {
	if c.MixedPrecision {
		tensor.RoundTripF16(t)
	}
}

// Module is the interface of layers composable in a simple x→y chain.
// Backward must be called exactly once per Forward, in reverse order, and
// accumulates into parameter gradients.
type Module interface {
	Forward(ctx *Ctx, x *tensor.Tensor) *tensor.Tensor
	Backward(ctx *Ctx, dY *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// collectParams concatenates the parameters of several modules.
func collectParams(ms ...Module) []*Param {
	var ps []*Param
	for _, m := range ms {
		ps = append(ps, m.Params()...)
	}
	return ps
}

func mustRank2(name string, x *tensor.Tensor) (rows, cols int) {
	if x.Rank() != 2 {
		panic(fmt.Sprintf("nn: %s expects a rank-2 [tokens, features] tensor, got %v", name, x.Shape()))
	}
	return x.Dim(0), x.Dim(1)
}
