package nn

import (
	"fmt"

	"demystbert/internal/kernels"
	"demystbert/internal/profile"
	"demystbert/internal/tensor"
)

// LayerNorm normalizes each token vector to zero mean and unit variance
// with a learned affine transform, as in the Add&Norm blocks of Fig. 2(b).
type LayerNorm struct {
	Gamma, Beta *Param
	Eps         float32

	dim          int
	x            *tensor.Tensor
	mean, invStd *tensor.Tensor
}

// NewLayerNorm returns a LayerNorm over the last dimension of size dim,
// initialized to the identity transform (gamma=1, beta=0).
func NewLayerNorm(name string, dim int) *LayerNorm {
	ln := &LayerNorm{
		Gamma: NewParam(name+".gamma", dim),
		Beta:  NewParam(name+".beta", dim),
		Eps:   1e-5,
		dim:   dim,
	}
	ln.Gamma.Value.Fill(1)
	return ln
}

// Forward normalizes rows and saves the statistics for backward.
func (l *LayerNorm) Forward(ctx *Ctx, x *tensor.Tensor) *tensor.Tensor {
	rows, dim := mustRank2("LayerNorm", x)
	if dim != l.dim {
		panic(fmt.Sprintf("nn: LayerNorm features %d, want %d", dim, l.dim))
	}
	l.x = x
	l.mean = tensor.New(rows)
	l.invStd = tensor.New(rows)
	y := tensor.New(rows, dim)
	n := rows * dim
	es := ctx.ElemSize()
	// LN is a reduction plus a few EW ops: ~8 ops/element.
	ctx.Prof.Time("layernorm_fwd", profile.CatDRRCLN, profile.Forward,
		kernels.EWFLOPs(n, 8), kernels.EWBytes(n, 1, 1, es), func() {
			kernels.LayerNormForward(y.Data(), x.Data(), l.Gamma.Value.Data(), l.Beta.Value.Data(),
				l.mean.Data(), l.invStd.Data(), rows, dim, l.Eps)
		})
	ctx.StoreHalf(y)
	return y
}

// Backward computes the input gradient and accumulates dGamma/dBeta.
func (l *LayerNorm) Backward(ctx *Ctx, dY *tensor.Tensor) *tensor.Tensor {
	if l.x == nil {
		panic("nn: LayerNorm.Backward called before Forward")
	}
	rows, dim := mustRank2("LayerNorm.Backward", dY)
	dX := tensor.New(rows, dim)
	n := rows * dim
	es := ctx.ElemSize()
	ctx.Prof.Time("layernorm_bwd", profile.CatDRRCLN, profile.Backward,
		kernels.EWFLOPs(n, 14), kernels.EWBytes(n, 3, 1, es), func() {
			kernels.LayerNormBackward(dX.Data(), l.Gamma.Grad.Data(), l.Beta.Grad.Data(),
				dY.Data(), l.x.Data(), l.Gamma.Value.Data(), l.mean.Data(), l.invStd.Data(), rows, dim)
		})
	l.x, l.mean, l.invStd = nil, nil, nil
	return dX
}

// Params returns gamma and beta.
func (l *LayerNorm) Params() []*Param { return []*Param{l.Gamma, l.Beta} }

// Residual adds a saved skip input to the module input: y = x + skip.
// The paper groups it with dropout and LayerNorm (DR+RC+LN).
type Residual struct{}

// AddSkip computes y = x + skip, recording the residual-connection kernel.
func (Residual) AddSkip(ctx *Ctx, x, skip *tensor.Tensor) *tensor.Tensor {
	if !tensor.SameShape(x, skip) {
		panic(fmt.Sprintf("nn: Residual shapes %v vs %v", x.Shape(), skip.Shape()))
	}
	y := tensor.New(x.Shape()...)
	n := x.Size()
	es := ctx.ElemSize()
	ctx.Prof.Time("residual_add", profile.CatDRRCLN, profile.Forward,
		kernels.EWFLOPs(n, 1), kernels.EWBytes(n, 2, 1, es), func() {
			kernels.Add(y.Data(), x.Data(), skip.Data())
		})
	return y
}
