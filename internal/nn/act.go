package nn

import (
	"demystbert/internal/kernels"
	"demystbert/internal/profile"
	"demystbert/internal/tensor"
)

// GeLU is the Gaussian Error Linear Unit activation between the two FC
// GEMMs of the feed-forward block (paper Eq. 1).
type GeLU struct {
	x *tensor.Tensor
}

// NewGeLU returns a GeLU activation module.
func NewGeLU() *GeLU { return &GeLU{} }

// Forward applies GELU element-wise.
func (g *GeLU) Forward(ctx *Ctx, x *tensor.Tensor) *tensor.Tensor {
	g.x = x
	y := tensor.New(x.Shape()...)
	n := x.Size()
	es := ctx.ElemSize()
	// The unfused kernel sequence performs ~5 ops per element
	// (scale, erf, add, halve, multiply).
	ctx.Prof.Time("gelu_fwd", profile.CatGeLU, profile.Forward,
		kernels.EWFLOPs(n, 5), kernels.EWBytes(n, 1, 1, es), func() {
			kernels.GeLUForward(y.Data(), x.Data())
		})
	ctx.StoreHalf(y)
	return y
}

// Backward applies the exact GELU derivative.
func (g *GeLU) Backward(ctx *Ctx, dY *tensor.Tensor) *tensor.Tensor {
	if g.x == nil {
		panic("nn: GeLU.Backward called before Forward")
	}
	dX := tensor.New(dY.Shape()...)
	n := dY.Size()
	es := ctx.ElemSize()
	ctx.Prof.Time("gelu_bwd", profile.CatGeLU, profile.Backward,
		kernels.EWFLOPs(n, 8), kernels.EWBytes(n, 2, 1, es), func() {
			kernels.GeLUBackward(dX.Data(), dY.Data(), g.x.Data())
		})
	g.x = nil
	return dX
}

// Params returns nil; GeLU has no parameters.
func (g *GeLU) Params() []*Param { return nil }

// Dropout randomly zeroes activations at training time using an inverted
// mask, and is an identity in evaluation mode.
type Dropout struct {
	// P is the drop probability.
	P float32
	// Category attributes the dropout kernels in profiles (attention
	// dropout belongs to Scale+Mask+DR+SM; block dropout to DR+RC+LN).
	Category profile.Category

	mask *tensor.Tensor
}

// NewDropout returns a dropout module with probability p recorded under
// the given profile category.
func NewDropout(p float32, cat profile.Category) *Dropout {
	return &Dropout{P: p, Category: cat}
}

// Forward samples a fresh mask in training mode and applies it.
func (d *Dropout) Forward(ctx *Ctx, x *tensor.Tensor) *tensor.Tensor {
	if !ctx.Train || d.P == 0 {
		d.mask = nil
		return x
	}
	if ctx.Recompute && d.mask != nil && tensor.SameShape(d.mask, x) {
		// Checkpointed recompute: replay the saved mask so the recomputed
		// activation matches the original bit-for-bit.
	} else {
		d.mask = tensor.New(x.Shape()...)
		kernels.DropoutMask(d.mask.Data(), d.P, ctx.RNG)
	}
	y := tensor.New(x.Shape()...)
	n := x.Size()
	es := ctx.ElemSize()
	ctx.Prof.Time("dropout_fwd", d.Category, profile.Forward,
		kernels.EWFLOPs(n, 1), kernels.EWBytes(n, 2, 1, es), func() {
			kernels.DropoutApply(y.Data(), x.Data(), d.mask.Data())
		})
	return y
}

// Backward propagates gradients through the saved mask.
func (d *Dropout) Backward(ctx *Ctx, dY *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return dY
	}
	dX := tensor.New(dY.Shape()...)
	n := dY.Size()
	es := ctx.ElemSize()
	ctx.Prof.Time("dropout_bwd", d.Category, profile.Backward,
		kernels.EWFLOPs(n, 1), kernels.EWBytes(n, 2, 1, es), func() {
			kernels.DropoutApply(dX.Data(), dY.Data(), d.mask.Data())
		})
	d.mask = nil
	return dX
}

// Params returns nil; Dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }
