package nn

import (
	"math"
	"testing"

	"demystbert/internal/tensor"
)

// Padding-mask correctness audit for mixed-length batches — the numerics
// the serving scheduler depends on. Three invariants:
//
//  1. The fused scale/mask/softmax kernel and the unfused kernel
//     sequence agree bitwise under a non-nil key-padding mask (both
//     compute s·x + m per element in the same order; no FMA in Go).
//  2. A masked key position receives exactly zero attention weight in
//     every head and every query row: exp(-1e9·1/sqrt(dHead) offset)
//     underflows f32 to 0 and the row renormalizes over real keys only.
//  3. A request padded into a wider batch with the mask set produces
//     the same output rows as the same request run serially at its
//     natural length — padding plus mask is semantically invisible.

// inferCtx returns an inference context (dropout inactive, full
// precision).
func inferCtx() *Ctx { return &Ctx{Train: false} }

// maskedInput builds a [B·n, d] input, a [B, n] additive mask marking
// positions ≥ lens[b] as padding, and fills pad rows with garbage — if
// masking works, garbage in pad rows must not influence real rows.
func maskedInput(rng *tensor.RNG, b, n, d int, lens []int) (*tensor.Tensor, *tensor.Tensor) {
	x := tensor.New(b*n, d)
	x.FillNormal(rng, 0, 1)
	mask := tensor.New(b, n)
	for bi, ln := range lens {
		for i := ln; i < n; i++ {
			mask.Set(-1e9, bi, i)
			row := x.Row(bi*n + i)
			for j := range row {
				row[j] = 37.5 * float32(j%5-2) // deliberate garbage
			}
		}
	}
	return x, mask
}

// TestFusedUnfusedMaskSoftmaxParity: the two softmax implementations
// must agree bitwise on a mixed-length batch, including the saved
// attention probabilities the backward pass would consume.
func TestFusedUnfusedMaskSoftmaxParity(t *testing.T) {
	const b, n, d, heads = 3, 16, 64, 4
	lens := []int{16, 9, 5}

	aF := NewMultiHeadAttention("attn", d, heads, 0, tensor.NewRNG(11))
	aU := NewMultiHeadAttention("attn", d, heads, 0, tensor.NewRNG(11))
	aF.FusedSoftmax, aU.FusedSoftmax = true, false

	x, mask := maskedInput(tensor.NewRNG(5), b, n, d, lens)
	yF := aF.Forward(inferCtx(), x.Clone(), b, n, mask)
	yU := aU.Forward(inferCtx(), x.Clone(), b, n, mask)

	for i, v := range yF.Data() {
		if v != yU.Data()[i] {
			t.Fatalf("fused/unfused outputs diverge at %d: %g vs %g", i, v, yU.Data()[i])
		}
	}
	for i, v := range aF.softmaxOut.Data() {
		if v != aU.softmaxOut.Data()[i] {
			t.Fatalf("fused/unfused attention probabilities diverge at %d: %g vs %g", i, v, aU.softmaxOut.Data()[i])
		}
	}
}

// TestMaskedKeysExactlyZeroWeight: in both implementations, every
// masked key column of the post-softmax probabilities is exactly 0.0
// (not merely small), and each row still sums to 1 over the real keys.
func TestMaskedKeysExactlyZeroWeight(t *testing.T) {
	const b, n, d, heads = 2, 12, 64, 4
	lens := []int{7, 3}

	for _, fused := range []bool{true, false} {
		a := NewMultiHeadAttention("attn", d, heads, 0, tensor.NewRNG(3))
		a.FusedSoftmax = fused
		x, mask := maskedInput(tensor.NewRNG(8), b, n, d, lens)
		a.Forward(inferCtx(), x, b, n, mask)

		probs := a.softmaxOut // [b·heads, n, n]
		for bh := 0; bh < b*heads; bh++ {
			ln := lens[bh/heads]
			for qi := 0; qi < n; qi++ {
				sum := float64(0)
				for ki := 0; ki < n; ki++ {
					p := probs.At(bh, qi, ki)
					if ki >= ln && p != 0 {
						t.Fatalf("fused=%v: masked key (seq %d, q %d, k %d) has weight %g, want exactly 0", fused, bh/heads, qi, ki, p)
					}
					sum += float64(p)
				}
				if math.Abs(sum-1) > 1e-5 {
					t.Fatalf("fused=%v: probability row (bh %d, q %d) sums to %g", fused, bh, qi, sum)
				}
			}
		}
	}
}

// TestPaddedBatchMatchesSerialAttention: a request padded into a wider
// masked batch must produce the same real output rows as running it
// alone at its natural length. Tolerance (not bitwise) because the
// different GEMM shapes may route to differently-blocked engines.
func TestPaddedBatchMatchesSerialAttention(t *testing.T) {
	const n, d, heads = 16, 64, 4
	lens := []int{11, 6, 16}
	b := len(lens)

	mk := func() *MultiHeadAttention {
		a := NewMultiHeadAttention("attn", d, heads, 0, tensor.NewRNG(21))
		a.FusedSoftmax = true
		return a
	}
	x, mask := maskedInput(tensor.NewRNG(9), b, n, d, lens)
	yBatch := mk().Forward(inferCtx(), x, b, n, mask)

	for bi, ln := range lens {
		xs := tensor.New(ln, d)
		for i := 0; i < ln; i++ {
			copy(xs.Row(i), x.Row(bi*n+i))
		}
		ys := mk().Forward(inferCtx(), xs, 1, ln, nil)
		for i := 0; i < ln; i++ {
			br, sr := yBatch.Row(bi*n+i), ys.Row(i)
			for j := range sr {
				if diff := math.Abs(float64(br[j] - sr[j])); diff > 1e-5 {
					t.Fatalf("seq %d row %d col %d: padded %g vs serial %g (diff %g)", bi, i, j, br[j], sr[j], diff)
				}
			}
		}
	}
}

// TestPaddedBatchMatchesSerialEncoderLayer runs the full encoder layer
// (attention + Add&Norm + FFN + Add&Norm, with the eval-mode fused
// epilogues engaged) over a padded masked batch and checks real rows
// against serial execution — the end-to-end form of the invariant the
// serving scheduler relies on.
func TestPaddedBatchMatchesSerialEncoderLayer(t *testing.T) {
	const n, d, heads, dff = 16, 64, 4, 256
	lens := []int{13, 5}
	b := len(lens)

	mk := func() *EncoderLayer {
		l := NewEncoderLayer("layer", d, heads, dff, 0, tensor.NewRNG(33))
		l.Attn.FusedSoftmax = true
		return l
	}
	x, mask := maskedInput(tensor.NewRNG(14), b, n, d, lens)
	yBatch := mk().Forward(inferCtx(), x, b, n, mask)

	for bi, ln := range lens {
		xs := tensor.New(ln, d)
		for i := 0; i < ln; i++ {
			copy(xs.Row(i), x.Row(bi*n+i))
		}
		ys := mk().Forward(inferCtx(), xs, 1, ln, nil)
		for i := 0; i < ln; i++ {
			br, sr := yBatch.Row(bi*n+i), ys.Row(i)
			for j := range sr {
				if diff := math.Abs(float64(br[j] - sr[j])); diff > 1e-4 {
					t.Fatalf("seq %d row %d col %d: padded %g vs serial %g (diff %g)", bi, i, j, br[j], sr[j], diff)
				}
			}
		}
	}
}
