package nn

import (
	"math"
	"testing"

	"demystbert/internal/tensor"
)

func TestCausalAttentionMasksFuture(t *testing.T) {
	r := tensor.NewRNG(1)
	a := NewMultiHeadAttention("a", 8, 2, 0, r)
	a.Causal = true
	b, n := 1, 5
	x := randTensor(r, b*n, 8)
	a.Forward(evalCtx(), x, b, n, nil)
	// Every probability above the diagonal (key > query) must be ~0.
	for bh := 0; bh < b*2; bh++ {
		for q := 0; q < n; q++ {
			for k := q + 1; k < n; k++ {
				if p := a.softmaxOut.At(bh, q, k); p > 1e-6 {
					t.Fatalf("future position (%d,%d) got probability %v", q, k, p)
				}
			}
			// Rows still normalize over the visible prefix.
			var sum float64
			for k := 0; k <= q; k++ {
				sum += float64(a.softmaxOut.At(bh, q, k))
			}
			if math.Abs(sum-1) > 1e-5 {
				t.Fatalf("causal row (%d,%d) sums to %v", bh, q, sum)
			}
		}
	}
}

func TestCausalDoesNotChangeKernelStructure(t *testing.T) {
	// Section 2.3: masking "only zeros certain matrix elements" — the
	// decoder launches the same GEMMs; only one extra masking kernel
	// appears in the unfused pipeline.
	r := tensor.NewRNG(2)
	run := func(causal bool) (kernels int, gemmFLOPs int64) {
		a := NewMultiHeadAttention("a", 16, 4, 0, tensor.NewRNG(3))
		a.Causal = causal
		ctx := NewCtx(1)
		x := randTensor(r, 12, 16)
		a.Forward(ctx, x, 2, 6, nil)
		sum := ctx.Prof.Summarize()
		var gf int64
		for _, e := range ctx.Prof.Events() {
			if e.Category.IsGEMM() {
				gf += e.FLOPs
			}
		}
		return sum.Total.Kernels, gf
	}
	kEnc, fEnc := run(false)
	kDec, fDec := run(true)
	if fDec != fEnc {
		t.Fatalf("causal masking changed GEMM FLOPs: %d vs %d", fDec, fEnc)
	}
	if kDec != kEnc+1 {
		t.Fatalf("causal masking should add exactly one kernel: %d vs %d", kDec, kEnc)
	}
}

func TestCausalGradCheck(t *testing.T) {
	r := tensor.NewRNG(4)
	a := NewMultiHeadAttention("a", 8, 2, 0, r)
	a.Causal = true
	b, n := 1, 4
	x := randTensor(r, b*n, 8)
	dY := randTensor(r, b*n, 8)
	ctx := evalCtx()
	a.Forward(ctx, x, b, n, nil)
	dX := a.Backward(ctx, dY)
	forward := func() float64 {
		return dotLoss(a.Forward(evalCtx(), x, b, n, nil), dY)
	}
	checkGrad(t, "causal attn dX", x.Data(), dX.Data(), forward, 2e-2, 5)
}

func TestFusedSoftmaxMatchesUnfused(t *testing.T) {
	r := tensor.NewRNG(5)
	b, n, d, h := 2, 6, 16, 4
	x := randTensor(r, b*n, d)
	mask := tensor.New(b, n)
	mask.Set(-1e9, 0, n-1)
	mask.Set(-1e9, 1, 0)

	run := func(fused, causal bool) *tensor.Tensor {
		a := NewMultiHeadAttention("a", d, h, 0, tensor.NewRNG(7))
		a.FusedSoftmax = fused
		a.Causal = causal
		return a.Forward(evalCtx(), x, b, n, mask)
	}
	for _, causal := range []bool{false, true} {
		yU := run(false, causal)
		yF := run(true, causal)
		for i := range yU.Data() {
			diff := math.Abs(float64(yU.Data()[i] - yF.Data()[i]))
			if diff > 1e-5 {
				t.Fatalf("causal=%v: fused/unfused outputs differ by %v at %d", causal, diff, i)
			}
		}
	}
}

func TestFusedSoftmaxReducesKernels(t *testing.T) {
	r := tensor.NewRNG(6)
	b, n, d := 2, 6, 16
	x := randTensor(r, b*n, d)
	mask := tensor.New(b, n)
	run := func(fused bool) (int, int64) {
		a := NewMultiHeadAttention("a", d, 4, 0, tensor.NewRNG(7))
		a.FusedSoftmax = fused
		ctx := NewCtx(1)
		a.Forward(ctx, x, b, n, mask)
		sum := ctx.Prof.Summarize()
		sm := sum.ByCategory["ScaleMaskDRSM"]
		return sm.Kernels, sm.Bytes
	}
	kU, bU := run(false)
	kF, bF := run(true)
	if kF >= kU {
		t.Fatalf("fusion must reduce scale/mask/softmax kernels: %d vs %d", kF, kU)
	}
	if bF >= bU {
		t.Fatalf("fusion must reduce score-pipeline traffic: %d vs %d", bF, bU)
	}
}

func TestFusedSoftmaxGradCheck(t *testing.T) {
	r := tensor.NewRNG(8)
	a := NewMultiHeadAttention("a", 8, 2, 0, r)
	a.FusedSoftmax = true
	b, n := 1, 4
	x := randTensor(r, b*n, 8)
	dY := randTensor(r, b*n, 8)
	ctx := evalCtx()
	a.Forward(ctx, x, b, n, nil)
	dX := a.Backward(ctx, dY)
	forward := func() float64 {
		return dotLoss(a.Forward(evalCtx(), x, b, n, nil), dY)
	}
	checkGrad(t, "fused attn dX", x.Data(), dX.Data(), forward, 2e-2, 5)
}
