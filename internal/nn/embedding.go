package nn

import (
	"fmt"

	"demystbert/internal/kernels"
	"demystbert/internal/profile"
	"demystbert/internal/tensor"
)

// Embedding is BERT's input layer: the sum of token, learned-position, and
// segment (sentence A/B) embeddings, followed by LayerNorm and dropout.
// The paper finds its runtime contribution negligible (Obs. 1); it is
// nevertheless implemented in full because it owns ~30% of BERT-Large's
// parameters and therefore matters to LAMB's update volume.
//
// Tok doubles as the tied MLM decoder weight (model.BERT aliases
// MLMDecoder.W to it), so its Param-level GEMM pack cache serves the
// vocab-projection Linear too: the embedding's own gather/scatter path
// never packs, and the decoder's packs invalidate on the same
// generation counter the optimizers bump (see DESIGN.md §7).
type Embedding struct {
	Tok, Pos, Seg *Param
	LN            *LayerNorm
	Drop          *Dropout

	vocab, maxPos, dModel int

	// tokScatter accumulates the backward scatter into the token table.
	// Tok.Grad has a second contributor — the tied MLM decoder's weight
	// gradient GEMM — and the two fold in a fixed order only if they use
	// separate accumulators merged once per iteration (FlushTokScatter).
	// That separation is what makes gradient accumulation bitwise-equal to
	// a full-batch step: each accumulator is a token-order continuation
	// fold across micro-batches, and the merge happens exactly once.
	tokScatter *tensor.Tensor

	// Saved for backward.
	tokens   []int
	segments []int
	seqLen   int
}

// NewEmbedding builds the embedding layer for the given vocabulary size,
// maximum sequence length, and model width.
func NewEmbedding(vocab, maxPos, dModel int, dropP float32, rng *tensor.RNG) *Embedding {
	e := &Embedding{
		Tok:    NewParam("embed.token", vocab, dModel),
		Pos:    NewParam("embed.position", maxPos, dModel),
		Seg:    NewParam("embed.segment", 2, dModel),
		LN:     NewLayerNorm("embed.ln", dModel),
		Drop:   NewDropout(dropP, profile.CatEmbedding),
		vocab:  vocab,
		maxPos: maxPos,
		dModel: dModel,
	}
	e.Tok.Value.FillNormal(rng, 0, 0.02)
	e.Pos.Value.FillNormal(rng, 0, 0.02)
	e.Seg.Value.FillNormal(rng, 0, 0.02)
	return e
}

// Forward embeds token ids (length B·n) with their positions and segment
// ids, returning [B·n, dModel]. Position i within each sequence of length
// n gets position embedding i.
func (e *Embedding) Forward(ctx *Ctx, tokens, segments []int, b, n int) *tensor.Tensor {
	if len(tokens) != b*n || len(segments) != b*n {
		panic(fmt.Sprintf("nn: Embedding got %d tokens, %d segments, want %d", len(tokens), len(segments), b*n))
	}
	if n > e.maxPos {
		panic(fmt.Sprintf("nn: sequence length %d exceeds max position %d", n, e.maxPos))
	}
	e.tokens = tokens
	e.segments = segments
	e.seqLen = n

	out := tensor.New(b*n, e.dModel)
	total := b * n * e.dModel
	es := ctx.ElemSize()
	ctx.Prof.Time("embedding_gather", profile.CatEmbedding, profile.Forward,
		kernels.EWFLOPs(total, 2), kernels.EWBytes(total, 3, 1, es), func() {
			d := out.Data()
			for t := 0; t < b*n; t++ {
				id := tokens[t]
				if id < 0 || id >= e.vocab {
					panic(fmt.Sprintf("nn: token id %d out of vocab %d", id, e.vocab))
				}
				seg := segments[t]
				if seg != 0 && seg != 1 {
					panic(fmt.Sprintf("nn: segment id %d must be 0 or 1", seg))
				}
				row := d[t*e.dModel : (t+1)*e.dModel]
				tok := e.Tok.Value.Row(id)
				pv := e.Pos.Value.Row(t % n)
				sv := e.Seg.Value.Row(seg)
				for j := range row {
					row[j] = tok[j] + pv[j] + sv[j]
				}
			}
		})

	h := e.LN.Forward(ctx, out)
	return e.Drop.Forward(ctx, h)
}

// Backward scatters gradients into the three embedding tables. The token
// scatter lands in the side accumulator; the caller must FlushTokScatter
// once per iteration (after the final Backward of an accumulation run)
// before reading or reducing Tok.Grad.
func (e *Embedding) Backward(ctx *Ctx, dY *tensor.Tensor) {
	if e.tokens == nil {
		panic("nn: Embedding.Backward called before Forward")
	}
	dH := e.Drop.Backward(ctx, dY)
	dSum := e.LN.Backward(ctx, dH)

	if e.tokScatter == nil {
		e.tokScatter = tensor.New(e.vocab, e.dModel)
	}
	total := dSum.Size()
	es := ctx.ElemSize()
	ctx.Prof.Time("embedding_scatter", profile.CatEmbedding, profile.Backward,
		kernels.EWFLOPs(total, 3), kernels.EWBytes(total, 1, 3, es), func() {
			d := dSum.Data()
			for t := range e.tokens {
				row := d[t*e.dModel : (t+1)*e.dModel]
				tok := e.tokScatter.Row(e.tokens[t])
				pv := e.Pos.Grad.Row(t % e.seqLen)
				sv := e.Seg.Grad.Row(e.segments[t])
				for j, g := range row {
					tok[j] += g
					pv[j] += g
					sv[j] += g
				}
			}
		})
	e.tokens, e.segments = nil, nil
}

// FlushTokScatter folds the accumulated token-table scatter into
// Tok.Grad (on top of the tied decoder's GEMM contribution) and clears
// the accumulator. Call exactly once per logical iteration, after the
// last Backward.
func (e *Embedding) FlushTokScatter(ctx *Ctx) {
	if e.tokScatter == nil {
		return
	}
	total := e.tokScatter.Size()
	es := ctx.ElemSize()
	ctx.Prof.Time("embedding_scatter_flush", profile.CatEmbedding, profile.Backward,
		kernels.EWFLOPs(total, 1), kernels.EWBytes(total, 2, 1, es), func() {
			kernels.AccumulateInto(e.Tok.Grad.Data(), e.tokScatter.Data())
		})
	clear(e.tokScatter.Data())
}

// DropTokScatter discards any pending token-scatter accumulation — the
// ZeroGrads counterpart, so an abandoned half-iteration cannot leak into
// the next one.
func (e *Embedding) DropTokScatter() {
	if e.tokScatter != nil {
		clear(e.tokScatter.Data())
	}
}

// Params returns the embedding tables and LayerNorm parameters.
func (e *Embedding) Params() []*Param {
	return append([]*Param{e.Tok, e.Pos, e.Seg}, e.LN.Params()...)
}
