package nn

import (
	"math"
	"testing"

	"demystbert/internal/profile"
	"demystbert/internal/tensor"
)

// evalCtx returns a context with dropout disabled and no profiler, for
// deterministic gradient checks.
func evalCtx() *Ctx {
	return &Ctx{RNG: tensor.NewRNG(1), Train: true}
}

func randTensor(r *tensor.RNG, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	t.FillUniform(r, -1, 1)
	return t
}

// dotLoss is the scalar probe loss sum(dY ⊙ Y).
func dotLoss(y, dY *tensor.Tensor) float64 {
	var s float64
	yd, dd := y.Data(), dY.Data()
	for i := range yd {
		s += float64(yd[i]) * float64(dd[i])
	}
	return s
}

// bumped wraps a grad-check forward closure so each evaluation first
// marks the module's parameters mutated, honoring the pack-cache contract
// (checkGrad perturbs weight buffers in place, which would otherwise
// leave a stale cached pack serving Forward).
func bumped(ps []*Param, forward func() float64) func() float64 {
	return func() float64 {
		for _, p := range ps {
			p.BumpGen()
		}
		return forward()
	}
}

// checkGrad verifies an analytic gradient against central differences of
// the forward function at a sample of positions.
func checkGrad(t *testing.T, name string, buf, grad []float32, forward func() float64, tol float64, stride int) {
	t.Helper()
	const eps = 1e-2
	for i := 0; i < len(buf); i += stride {
		orig := buf[i]
		buf[i] = orig + eps
		lp := forward()
		buf[i] = orig - eps
		lm := forward()
		buf[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(grad[i])) > tol*math.Max(1, math.Abs(num)) {
			t.Fatalf("%s grad[%d]: analytic %v vs numeric %v", name, i, grad[i], num)
		}
	}
}

func TestLinearForwardShape(t *testing.T) {
	r := tensor.NewRNG(1)
	l := NewLinear("l", 8, 16, profile.CatLinear, r)
	y := l.Forward(evalCtx(), randTensor(r, 5, 8))
	if y.Dim(0) != 5 || y.Dim(1) != 16 {
		t.Fatalf("Linear output shape %v", y.Shape())
	}
}

func TestLinearKnownValues(t *testing.T) {
	r := tensor.NewRNG(2)
	l := NewLinear("l", 2, 2, profile.CatLinear, r)
	// W = [[1,2],[3,4]], b = [10, 20]; y = x·W^T + b.
	copy(l.W.Value.Data(), []float32{1, 2, 3, 4})
	copy(l.B.Value.Data(), []float32{10, 20})
	x := tensor.Of([]float32{1, 1}, 1, 2)
	y := l.Forward(evalCtx(), x)
	if y.At(0, 0) != 13 || y.At(0, 1) != 27 {
		t.Fatalf("Linear output = %v %v, want 13 27", y.At(0, 0), y.At(0, 1))
	}
}

func TestLinearGradCheck(t *testing.T) {
	r := tensor.NewRNG(3)
	l := NewLinear("l", 6, 4, profile.CatLinear, r)
	x := randTensor(r, 5, 6)
	dY := randTensor(r, 5, 4)
	ctx := evalCtx()

	y := l.Forward(ctx, x)
	dX := l.Backward(ctx, dY)

	forwardX := bumped(l.Params(), func() float64 {
		return dotLoss(l.Forward(evalCtx(), x), dY)
	})
	checkGrad(t, "Linear dX", x.Data(), dX.Data(), forwardX, 1e-2, 3)
	checkGrad(t, "Linear dW", l.W.Value.Data(), l.W.Grad.Data(), forwardX, 1e-2, 5)
	checkGrad(t, "Linear dB", l.B.Value.Data(), l.B.Grad.Data(), forwardX, 1e-2, 1)
	_ = y
}

func TestLinearGradAccumulates(t *testing.T) {
	r := tensor.NewRNG(4)
	l := NewLinear("l", 3, 3, profile.CatLinear, r)
	x := randTensor(r, 2, 3)
	dY := randTensor(r, 2, 3)
	ctx := evalCtx()
	l.Forward(ctx, x)
	l.Backward(ctx, dY)
	once := append([]float32(nil), l.W.Grad.Data()...)
	l.Forward(ctx, x)
	l.Backward(ctx, dY)
	for i := range once {
		if math.Abs(float64(l.W.Grad.Data()[i]-2*once[i])) > 1e-5 {
			t.Fatal("weight gradient must accumulate across backward calls")
		}
	}
}

func TestLinearBackwardBeforeForwardPanics(t *testing.T) {
	r := tensor.NewRNG(5)
	l := NewLinear("l", 3, 3, profile.CatLinear, r)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Backward(evalCtx(), randTensor(r, 2, 3))
}

func TestLinearDimensionMismatchPanics(t *testing.T) {
	r := tensor.NewRNG(6)
	l := NewLinear("l", 3, 3, profile.CatLinear, r)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Forward(evalCtx(), randTensor(r, 2, 4))
}

func TestGeLUModuleGradCheck(t *testing.T) {
	r := tensor.NewRNG(7)
	g := NewGeLU()
	x := randTensor(r, 4, 8)
	dY := randTensor(r, 4, 8)
	ctx := evalCtx()
	g.Forward(ctx, x)
	dX := g.Backward(ctx, dY)
	forward := func() float64 { return dotLoss(NewGeLU().Forward(evalCtx(), x), dY) }
	checkGrad(t, "GeLU dX", x.Data(), dX.Data(), forward, 1e-2, 5)
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	r := tensor.NewRNG(8)
	d := NewDropout(0.5, profile.CatDRRCLN)
	ctx := evalCtx()
	ctx.Train = false
	x := randTensor(r, 3, 3)
	if y := d.Forward(ctx, x); y != x {
		t.Fatal("eval-mode dropout must be identity")
	}
	dY := randTensor(r, 3, 3)
	if got := d.Backward(ctx, dY); got != dY {
		t.Fatal("eval-mode dropout backward must be identity")
	}
}

func TestDropoutTrainZeroesAndScales(t *testing.T) {
	d := NewDropout(0.5, profile.CatDRRCLN)
	ctx := evalCtx()
	x := tensor.New(100, 100)
	x.Fill(1)
	y := d.Forward(ctx, x)
	zeros, twos := 0, 0
	for _, v := range y.Data() {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("dropout(0.5) output %v not in {0, 2}", v)
		}
	}
	if zeros == 0 || twos == 0 {
		t.Fatal("dropout must both zero and scale")
	}
	// Backward must use the same mask.
	dY := tensor.New(100, 100)
	dY.Fill(1)
	dX := d.Backward(ctx, dY)
	for i := range y.Data() {
		if (y.Data()[i] == 0) != (dX.Data()[i] == 0) {
			t.Fatal("backward mask differs from forward mask")
		}
	}
}

func TestLayerNormModuleGradCheck(t *testing.T) {
	r := tensor.NewRNG(9)
	ln := NewLayerNorm("ln", 8)
	ln.Gamma.Value.FillUniform(r, 0.5, 1.5)
	ln.Beta.Value.FillUniform(r, -0.5, 0.5)
	x := randTensor(r, 4, 8)
	dY := randTensor(r, 4, 8)
	ctx := evalCtx()
	ln.Forward(ctx, x)
	dX := ln.Backward(ctx, dY)
	forward := func() float64 {
		return dotLoss(ln.Forward(evalCtx(), x), dY)
	}
	checkGrad(t, "LN dX", x.Data(), dX.Data(), forward, 2e-2, 3)
	// Gradients accumulate, so snapshot then zero before re-checking.
	dGamma := append([]float32(nil), ln.Gamma.Grad.Data()...)
	dBeta := append([]float32(nil), ln.Beta.Grad.Data()...)
	checkGrad(t, "LN dGamma", ln.Gamma.Value.Data(), dGamma, forward, 2e-2, 2)
	checkGrad(t, "LN dBeta", ln.Beta.Value.Data(), dBeta, forward, 2e-2, 2)
}

func TestResidualAddSkip(t *testing.T) {
	ctx := evalCtx()
	var res Residual
	x := tensor.Of([]float32{1, 2}, 1, 2)
	s := tensor.Of([]float32{10, 20}, 1, 2)
	y := res.AddSkip(ctx, x, s)
	if y.At(0, 0) != 11 || y.At(0, 1) != 22 {
		t.Fatalf("AddSkip = %v", y.Data())
	}
}

func TestAttentionForwardShape(t *testing.T) {
	r := tensor.NewRNG(10)
	a := NewMultiHeadAttention("a", 16, 4, 0, r)
	b, n := 2, 6
	x := randTensor(r, b*n, 16)
	y := a.Forward(evalCtx(), x, b, n, nil)
	if y.Dim(0) != b*n || y.Dim(1) != 16 {
		t.Fatalf("attention output shape %v", y.Shape())
	}
}

func TestAttentionBatchOneIsStillGEMM(t *testing.T) {
	// Paper Takeaway 5 / Section 3.2.2: B=1 does not degrade BERT layers
	// to matrix-vector operations. Verify the profile records GEMM
	// kernels with M > 1 even at B=1.
	r := tensor.NewRNG(11)
	a := NewMultiHeadAttention("a", 16, 4, 0, r)
	ctx := NewCtx(1)
	n := 6
	x := randTensor(r, n, 16)
	a.Forward(ctx, x, 1, n, nil)
	sum := ctx.Prof.Summarize()
	linear := sum.ByCategory[profile.CatLinear]
	if linear.Kernels == 0 {
		t.Fatal("no Linear GEMMs recorded")
	}
	// A matrix-vector product of these sizes would be 2*16*16 FLOPs; the
	// manifested GEMM is n times that per projection.
	if linear.FLOPs < int64(n)*2*16*16 {
		t.Fatalf("Linear FLOPs %d too small: manifested as GEMV?", linear.FLOPs)
	}
	if sum.ByCategory[profile.CatAttnBGEMM].Kernels == 0 {
		t.Fatal("no batched attention GEMMs recorded")
	}
}

func TestAttentionMaskBlocksPositions(t *testing.T) {
	r := tensor.NewRNG(12)
	dModel, heads := 8, 2
	b, n := 1, 4
	a := NewMultiHeadAttention("a", dModel, heads, 0, r)
	x := randTensor(r, b*n, dModel)

	mask := tensor.New(b, n)
	mask.Set(-1e9, 0, n-1) // hide the last key position

	ctx := evalCtx()
	a.Forward(ctx, x, b, n, mask)
	// After softmax, every attention row must give ~0 weight to the
	// masked key.
	probs := a.softmaxOut
	for bh := 0; bh < b*heads; bh++ {
		for qi := 0; qi < n; qi++ {
			if p := probs.At(bh, qi, n-1); p > 1e-6 {
				t.Fatalf("masked position received probability %v", p)
			}
		}
	}
}

func TestAttentionGradCheck(t *testing.T) {
	r := tensor.NewRNG(13)
	dModel, heads := 8, 2
	b, n := 2, 3
	a := NewMultiHeadAttention("a", dModel, heads, 0, r)
	x := randTensor(r, b*n, dModel)
	dY := randTensor(r, b*n, dModel)
	ctx := evalCtx()

	a.Forward(ctx, x, b, n, nil)
	dX := a.Backward(ctx, dY)

	forward := bumped(a.Params(), func() float64 {
		return dotLoss(a.Forward(evalCtx(), x, b, n, nil), dY)
	})
	checkGrad(t, "Attn dX", x.Data(), dX.Data(), forward, 2e-2, 7)
	dWq := append([]float32(nil), a.Wq.W.Grad.Data()...)
	checkGrad(t, "Attn dWq", a.Wq.W.Value.Data(), dWq, forward, 2e-2, 13)
	dWo := append([]float32(nil), a.Wo.W.Grad.Data()...)
	checkGrad(t, "Attn dWo", a.Wo.W.Value.Data(), dWo, forward, 2e-2, 13)
	dWv := append([]float32(nil), a.Wv.W.Grad.Data()...)
	checkGrad(t, "Attn dWv", a.Wv.W.Value.Data(), dWv, forward, 2e-2, 13)
}

func TestFeedForwardGradCheck(t *testing.T) {
	r := tensor.NewRNG(14)
	ff := NewFeedForward("ff", 6, 12, r)
	x := randTensor(r, 4, 6)
	dY := randTensor(r, 4, 6)
	ctx := evalCtx()
	ff.Forward(ctx, x)
	dX := ff.Backward(ctx, dY)
	forward := bumped(ff.Params(), func() float64 {
		return dotLoss(ff.Forward(evalCtx(), x), dY)
	})
	checkGrad(t, "FF dX", x.Data(), dX.Data(), forward, 2e-2, 5)
	dW1 := append([]float32(nil), ff.FC1.W.Grad.Data()...)
	checkGrad(t, "FF dW1", ff.FC1.W.Value.Data(), dW1, forward, 2e-2, 17)
}

func TestEncoderLayerGradCheck(t *testing.T) {
	r := tensor.NewRNG(15)
	e := NewEncoderLayer("enc", 8, 2, 16, 0, r)
	b, n := 1, 4
	x := randTensor(r, b*n, 8)
	dY := randTensor(r, b*n, 8)
	ctx := evalCtx()
	e.Forward(ctx, x, b, n, nil)
	dX := e.Backward(ctx, dY)
	forward := func() float64 {
		return dotLoss(e.Forward(evalCtx(), x, b, n, nil), dY)
	}
	checkGrad(t, "Encoder dX", x.Data(), dX.Data(), forward, 3e-2, 5)
}

func TestEncoderLayerParamCount(t *testing.T) {
	r := tensor.NewRNG(16)
	d, h, ff := 16, 4, 64
	e := NewEncoderLayer("enc", d, h, ff, 0.1, r)
	var total int
	for _, p := range e.Params() {
		total += p.Size()
	}
	// 4 projections (d*d + d), 2 FC (d*ff + ff, ff*d + d), 2 LN (2d each).
	want := 4*(d*d+d) + (d*ff + ff) + (ff*d + d) + 2*(2*d)
	if total != want {
		t.Fatalf("encoder param count %d, want %d", total, want)
	}
}

func TestEmbeddingForwardShape(t *testing.T) {
	r := tensor.NewRNG(17)
	e := NewEmbedding(100, 32, 8, 0, r)
	b, n := 2, 4
	tok := []int{1, 2, 3, 4, 5, 6, 7, 8}
	seg := []int{0, 0, 1, 1, 0, 0, 1, 1}
	y := e.Forward(evalCtx(), tok, seg, b, n)
	if y.Dim(0) != b*n || y.Dim(1) != 8 {
		t.Fatalf("embedding output shape %v", y.Shape())
	}
}

func TestEmbeddingGradCheck(t *testing.T) {
	r := tensor.NewRNG(18)
	e := NewEmbedding(10, 8, 6, 0, r)
	// Default init is tiny (std 0.02), which makes LayerNorm highly
	// nonlinear over a finite-difference step; use O(1) values instead.
	e.Tok.Value.FillUniform(r, -1, 1)
	e.Pos.Value.FillUniform(r, -1, 1)
	e.Seg.Value.FillUniform(r, -1, 1)
	b, n := 1, 4
	tok := []int{1, 3, 3, 7} // repeated token exercises scatter-accumulate
	seg := []int{0, 0, 1, 1}
	dY := randTensor(r, b*n, 6)
	ctx := evalCtx()
	y := e.Forward(ctx, tok, seg, b, n)
	_ = y
	e.Backward(ctx, dY)
	e.FlushTokScatter(ctx)

	forward := func() float64 {
		return dotLoss(e.Forward(evalCtx(), tok, seg, b, n), dY)
	}
	dTok := append([]float32(nil), e.Tok.Grad.Data()...)
	// Check rows used by the batch, including the repeated token 3.
	for _, id := range []int{1, 3, 7} {
		base := id * 6
		for j := base; j < base+6; j += 2 {
			orig := e.Tok.Value.Data()[j]
			const eps = 1e-3
			e.Tok.Value.Data()[j] = orig + eps
			lp := forward()
			e.Tok.Value.Data()[j] = orig - eps
			lm := forward()
			e.Tok.Value.Data()[j] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-float64(dTok[j])) > 2e-2*math.Max(1, math.Abs(num)) {
				t.Fatalf("embedding grad[%d]: analytic %v vs numeric %v", j, dTok[j], num)
			}
		}
	}
}

func TestEmbeddingBadTokenPanics(t *testing.T) {
	r := tensor.NewRNG(19)
	e := NewEmbedding(10, 8, 6, 0, r)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Forward(evalCtx(), []int{99}, []int{0}, 1, 1)
}

func TestEmbeddingSeqTooLongPanics(t *testing.T) {
	r := tensor.NewRNG(20)
	e := NewEmbedding(10, 2, 6, 0, r)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Forward(evalCtx(), []int{1, 1, 1}, []int{0, 0, 0}, 1, 3)
}

func TestCtxElemSize(t *testing.T) {
	c := &Ctx{}
	if c.ElemSize() != 4 {
		t.Fatal("FP32 elem size must be 4")
	}
	c.MixedPrecision = true
	if c.ElemSize() != 2 {
		t.Fatal("MP elem size must be 2")
	}
}

func TestMixedPrecisionHalvesProfiledBytes(t *testing.T) {
	r := tensor.NewRNG(21)
	run := func(mp bool) int64 {
		l := NewLinear("l", 8, 8, profile.CatLinear, r)
		ctx := NewCtx(1)
		ctx.MixedPrecision = mp
		l.Forward(ctx, randTensor(r, 4, 8))
		return ctx.Prof.Summarize().Total.Bytes
	}
	fp32, fp16 := run(false), run(true)
	if fp16*2 != fp32 {
		t.Fatalf("MP bytes %d, FP32 bytes %d: want exactly half", fp16, fp32)
	}
}

func TestParamHelpers(t *testing.T) {
	p := NewParam("w", 3, 4)
	if p.Size() != 12 {
		t.Fatalf("Size = %d", p.Size())
	}
	p.Grad.Fill(5)
	p.ZeroGrad()
	for _, v := range p.Grad.Data() {
		if v != 0 {
			t.Fatal("ZeroGrad failed")
		}
	}
}
