package nn

import (
	"fmt"

	"demystbert/internal/kernels"
	"demystbert/internal/profile"
	"demystbert/internal/tensor"
)

// Linear is a fully-connected layer computing Y = X·W^T + b for
// X: [tokens, in], W: [out, in], b: [out].
//
// Its three GEMMs follow Table 2b exactly:
//
//	FWD:        out × tokens × in   (Y = X·W^T)
//	BWD d-act:  in  × tokens × out  (dX = dY·W)
//	BWD d-wgt:  out × in × tokens   (dW = dY^T·X)
type Linear struct {
	W, B *Param
	// Category classifies this layer's GEMMs in profiles: CatLinear for
	// attention projections, CatFCGEMM for feed-forward layers,
	// CatOutput for model heads.
	Category profile.Category

	in, out int
	x       *tensor.Tensor // saved forward input
}

// NewLinear returns a Linear layer with Xavier-initialized weights.
func NewLinear(name string, in, out int, cat profile.Category, rng *tensor.RNG) *Linear {
	l := &Linear{
		W:        NewParam(name+".weight", out, in),
		B:        NewParam(name+".bias", out),
		Category: cat,
		in:       in,
		out:      out,
	}
	l.W.Value.FillXavier(rng, in, out)
	return l
}

// Forward computes Y = X·W^T + b and saves X for the backward pass. The
// bias add is fused into the GEMM's tile write-back
// (kernels.GEMMPackedEpilogue), which is bitwise identical to the legacy
// GEMM-then-AddBias sequence; under the int8 path override the product
// runs on the quantized engine against the cached int8 weight pack.
func (l *Linear) Forward(ctx *Ctx, x *tensor.Tensor) *tensor.Tensor {
	tokens, _ := mustRank2("Linear", x)
	y := l.runEpilogueGEMM(ctx, x, &kernels.Epilogue{
		Kind: kernels.EpilogueBias,
		Bias: l.B.Value.Data(),
	})
	es := ctx.ElemSize()
	l.markFusedTail(ctx, "linear_fwd_bias", l.Category,
		kernels.EWFLOPs(tokens*l.out, 1), kernels.EWBytes(tokens*l.out, 1, 1, es))
	ctx.StoreHalf(y)
	return y
}

// ForwardBiasGeLU computes GeLU(X·W^T + b) with bias and activation fused
// into the GEMM write-back, filling act's saved pre-activation (training
// only) so act.Backward works unchanged. Callers gate on full precision:
// the legacy sequence quantizes the pre-activation through f16 storage in
// mixed precision, which fusion deliberately skips.
func (l *Linear) ForwardBiasGeLU(ctx *Ctx, x *tensor.Tensor, act *GeLU) *tensor.Tensor {
	tokens, _ := mustRank2("Linear", x)
	ep := &kernels.Epilogue{Kind: kernels.EpilogueBiasGeLU, Bias: l.B.Value.Data()}
	var pre *tensor.Tensor
	if ctx.Train {
		pre = tensor.New(tokens, l.out)
		ep.X = pre.Data()
	}
	y := l.runEpilogueGEMM(ctx, x, ep)
	act.x = pre
	es := ctx.ElemSize()
	sz := tokens * l.out
	l.markFusedTail(ctx, "linear_fwd_bias", l.Category,
		kernels.EWFLOPs(sz, 1), kernels.EWBytes(sz, 1, 1, es))
	l.markFusedTail(ctx, "gelu_fwd", profile.CatGeLU,
		kernels.EWFLOPs(sz, 5), kernels.EWBytes(sz, 1, 1, es))
	ctx.StoreHalf(y)
	return y
}

// ForwardBiasResidualLN computes LN(X·W^T + b + skip) — a sub-layer
// output projection with its whole Add&Norm tail fused into the GEMM
// write-back — filling ln's saved input and statistics (training only) so
// ln.Backward works unchanged. Callers guarantee the block dropout
// between projection and residual is inactive and precision is full.
func (l *Linear) ForwardBiasResidualLN(ctx *Ctx, x, skip *tensor.Tensor, ln *LayerNorm) *tensor.Tensor {
	tokens, _ := mustRank2("Linear", x)
	if sr, sc := mustRank2("Linear residual skip", skip); sr != tokens || sc != l.out {
		panic(fmt.Sprintf("nn: Linear residual skip %v, want [%d, %d]", skip.Shape(), tokens, l.out))
	}
	if ln.dim != l.out {
		panic(fmt.Sprintf("nn: Linear fused LayerNorm dim %d, want %d", ln.dim, l.out))
	}
	ep := &kernels.Epilogue{
		Kind:     kernels.EpilogueBiasResidualLayerNorm,
		Bias:     l.B.Value.Data(),
		Residual: skip.Data(),
		Gamma:    ln.Gamma.Value.Data(),
		Beta:     ln.Beta.Value.Data(),
		Eps:      ln.Eps,
	}
	if ctx.Train {
		ln.x = tensor.New(tokens, l.out)
		ln.mean = tensor.New(tokens)
		ln.invStd = tensor.New(tokens)
		ep.X, ep.Mean, ep.InvStd = ln.x.Data(), ln.mean.Data(), ln.invStd.Data()
	} else {
		ln.x, ln.mean, ln.invStd = nil, nil, nil
	}
	y := l.runEpilogueGEMM(ctx, x, ep)
	es := ctx.ElemSize()
	sz := tokens * l.out
	l.markFusedTail(ctx, "linear_fwd_bias", l.Category,
		kernels.EWFLOPs(sz, 1), kernels.EWBytes(sz, 1, 1, es))
	l.markFusedTail(ctx, "residual_add", profile.CatDRRCLN,
		kernels.EWFLOPs(sz, 1), kernels.EWBytes(sz, 2, 1, es))
	l.markFusedTail(ctx, "layernorm_fwd", profile.CatDRRCLN,
		kernels.EWFLOPs(sz, 8), kernels.EWBytes(sz, 1, 1, es))
	ctx.StoreHalf(y)
	return y
}

// runEpilogueGEMM executes the forward product with the given fused tail,
// saving X for backward. The whole fused call is timed as
// "linear_fwd_gemm" with exactly the product's FLOPs — the integration
// tests reconcile real against analytical GEMM FLOPs by event name, so
// tail-operator work must not leak into GEMM accounting.
func (l *Linear) runEpilogueGEMM(ctx *Ctx, x *tensor.Tensor, ep *kernels.Epilogue) *tensor.Tensor {
	tokens, in := mustRank2("Linear", x)
	if in != l.in {
		panic(fmt.Sprintf("nn: Linear input features %d, want %d", in, l.in))
	}
	l.x = x
	y := tensor.New(tokens, l.out)
	es := ctx.ElemSize()

	// The weight operand is packed (f32) or quantized+packed (int8) once
	// per parameter generation and reused across micro-batches, gradient-
	// accumulation steps, and eval (nn.Param caches); only the activation
	// operand is processed per call.
	m, n, k := tokens, l.out, l.in
	ctx.Prof.Time("linear_fwd_gemm", l.Category, profile.Forward,
		kernels.GEMMFLOPs(m, n, k), kernels.GEMMBytes(m, n, k, es), func() {
			if kernels.CurrentGEMMPath() == kernels.GEMMPathInt8 {
				kernels.GEMMInt8(m, n, k, x.Data(), l.W.PackedInt8(true, n, k), ep, y.Data())
			} else {
				kernels.GEMMPackedEpilogue(false, m, n, k, 1, x.Data(), l.W.Packed(true, n, k), ep, y.Data())
			}
		})
	return y
}

// markFusedTail records a zero-duration marker event for a tail operator
// executed inside a fused GEMM write-back, so operator-level FLOP/byte
// accounting (and the paper's category breakdowns) still see the op while
// its wall time is attributed to the GEMM that absorbed it.
func (l *Linear) markFusedTail(ctx *Ctx, name string, cat profile.Category, flops, bytes int64) {
	ctx.Prof.Time(name, cat, profile.Forward, flops, bytes, func() {})
}

// Backward computes dX = dY·W, accumulates dW += dY^T·X and db += colsum(dY).
func (l *Linear) Backward(ctx *Ctx, dY *tensor.Tensor) *tensor.Tensor {
	tokens, out := mustRank2("Linear.Backward", dY)
	if out != l.out {
		panic(fmt.Sprintf("nn: Linear upstream gradient features %d, want %d", out, l.out))
	}
	if l.x == nil {
		panic("nn: Linear.Backward called before Forward")
	}
	es := ctx.ElemSize()
	dX := tensor.New(tokens, l.in)

	// dX = dY · W: (tokens×out)·(out×in), reusing the weight pack for the
	// untransposed orientation (a second cache slot of the same Param).
	m, n, k := tokens, l.in, l.out
	ctx.Prof.Time("linear_bwd_dgrad_gemm", l.Category, profile.Backward,
		kernels.GEMMFLOPs(m, n, k), kernels.GEMMBytes(m, n, k, es), func() {
			kernels.GEMMPacked(false, m, n, k, 1, dY.Data(), l.W.Packed(false, n, k), 0, dX.Data())
		})

	// dW += dY^T · X: (out×tokens)·(tokens×in).
	m, n, k = l.out, l.in, tokens
	ctx.Prof.Time("linear_bwd_wgrad_gemm", l.Category, profile.Backward,
		kernels.GEMMFLOPs(m, n, k), kernels.GEMMBytes(m, n, k, es), func() {
			kernels.GEMM(true, false, m, n, k, 1, dY.Data(), l.x.Data(), 1, l.W.Grad.Data())
		})

	ctx.Prof.Time("linear_bwd_bgrad", l.Category, profile.Backward,
		kernels.EWFLOPs(tokens*l.out, 1), kernels.EWBytes(tokens*l.out, 1, 0, es)+int64(l.out*es), func() {
			kernels.BiasGrad(l.B.Grad.Data(), dY.Data(), tokens, l.out)
		})
	l.x = nil
	ctx.StoreHalf(dX)
	return dX
}

// WarmPack builds the forward-orientation weight pack ahead of use —
// the serving warmup that turns every steady-state pack-cache lookup
// into a hit. It packs for the engine the active GEMM path will consult
// (int8 quantized pack under GEMMPathInt8, f32 micro-panels otherwise),
// so call it after SetGEMMPath. Frozen weights never bump their
// generation, so a warmed pack stays valid for the life of the process.
func (l *Linear) WarmPack() {
	if kernels.CurrentGEMMPath() == kernels.GEMMPathInt8 {
		l.W.PackedInt8(true, l.out, l.in)
		return
	}
	l.W.Packed(true, l.out, l.in)
}

// Params returns the weight and bias parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// In returns the input feature count.
func (l *Linear) In() int { return l.in }

// Out returns the output feature count.
func (l *Linear) Out() int { return l.out }
