package nn

import (
	"fmt"

	"demystbert/internal/kernels"
	"demystbert/internal/profile"
	"demystbert/internal/tensor"
)

// Linear is a fully-connected layer computing Y = X·W^T + b for
// X: [tokens, in], W: [out, in], b: [out].
//
// Its three GEMMs follow Table 2b exactly:
//
//	FWD:        out × tokens × in   (Y = X·W^T)
//	BWD d-act:  in  × tokens × out  (dX = dY·W)
//	BWD d-wgt:  out × in × tokens   (dW = dY^T·X)
type Linear struct {
	W, B *Param
	// Category classifies this layer's GEMMs in profiles: CatLinear for
	// attention projections, CatFCGEMM for feed-forward layers,
	// CatOutput for model heads.
	Category profile.Category

	in, out int
	x       *tensor.Tensor // saved forward input
}

// NewLinear returns a Linear layer with Xavier-initialized weights.
func NewLinear(name string, in, out int, cat profile.Category, rng *tensor.RNG) *Linear {
	l := &Linear{
		W:        NewParam(name+".weight", out, in),
		B:        NewParam(name+".bias", out),
		Category: cat,
		in:       in,
		out:      out,
	}
	l.W.Value.FillXavier(rng, in, out)
	return l
}

// Forward computes Y = X·W^T + b and saves X for the backward pass.
func (l *Linear) Forward(ctx *Ctx, x *tensor.Tensor) *tensor.Tensor {
	tokens, in := mustRank2("Linear", x)
	if in != l.in {
		panic(fmt.Sprintf("nn: Linear input features %d, want %d", in, l.in))
	}
	l.x = x
	y := tensor.New(tokens, l.out)
	es := ctx.ElemSize()

	// The weight operand is packed once per parameter generation and
	// reused across micro-batches, gradient-accumulation steps, and eval
	// (nn.Param.Packed); only the activation operand is packed per call.
	m, n, k := tokens, l.out, l.in
	ctx.Prof.Time("linear_fwd_gemm", l.Category, profile.Forward,
		kernels.GEMMFLOPs(m, n, k), kernels.GEMMBytes(m, n, k, es), func() {
			kernels.GEMMPacked(false, m, n, k, 1, x.Data(), l.W.Packed(true, n, k), 0, y.Data())
		})
	ctx.Prof.Time("linear_fwd_bias", l.Category, profile.Forward,
		kernels.EWFLOPs(tokens*l.out, 1), kernels.EWBytes(tokens*l.out, 1, 1, es), func() {
			kernels.AddBias(y.Data(), l.B.Value.Data(), tokens, l.out)
		})
	ctx.StoreHalf(y)
	return y
}

// Backward computes dX = dY·W, accumulates dW += dY^T·X and db += colsum(dY).
func (l *Linear) Backward(ctx *Ctx, dY *tensor.Tensor) *tensor.Tensor {
	tokens, out := mustRank2("Linear.Backward", dY)
	if out != l.out {
		panic(fmt.Sprintf("nn: Linear upstream gradient features %d, want %d", out, l.out))
	}
	if l.x == nil {
		panic("nn: Linear.Backward called before Forward")
	}
	es := ctx.ElemSize()
	dX := tensor.New(tokens, l.in)

	// dX = dY · W: (tokens×out)·(out×in), reusing the weight pack for the
	// untransposed orientation (a second cache slot of the same Param).
	m, n, k := tokens, l.in, l.out
	ctx.Prof.Time("linear_bwd_dgrad_gemm", l.Category, profile.Backward,
		kernels.GEMMFLOPs(m, n, k), kernels.GEMMBytes(m, n, k, es), func() {
			kernels.GEMMPacked(false, m, n, k, 1, dY.Data(), l.W.Packed(false, n, k), 0, dX.Data())
		})

	// dW += dY^T · X: (out×tokens)·(tokens×in).
	m, n, k = l.out, l.in, tokens
	ctx.Prof.Time("linear_bwd_wgrad_gemm", l.Category, profile.Backward,
		kernels.GEMMFLOPs(m, n, k), kernels.GEMMBytes(m, n, k, es), func() {
			kernels.GEMM(true, false, m, n, k, 1, dY.Data(), l.x.Data(), 1, l.W.Grad.Data())
		})

	ctx.Prof.Time("linear_bwd_bgrad", l.Category, profile.Backward,
		kernels.EWFLOPs(tokens*l.out, 1), kernels.EWBytes(tokens*l.out, 1, 0, es)+int64(l.out*es), func() {
			kernels.BiasGrad(l.B.Grad.Data(), dY.Data(), tokens, l.out)
		})
	l.x = nil
	ctx.StoreHalf(dX)
	return dX
}

// Params returns the weight and bias parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// In returns the input feature count.
func (l *Linear) In() int { return l.in }

// Out returns the output feature count.
func (l *Linear) Out() int { return l.out }
