package nn

import (
	"demystbert/internal/profile"
	"demystbert/internal/tensor"
)

// FeedForward is the FC block of the Transformer layer: FC-1 expanding to
// the intermediate dimension d_ff, GeLU, and FC-2 projecting back
// (Table 2b FC-1/FC-2).
type FeedForward struct {
	FC1, FC2 *Linear
	Act      *GeLU
}

// NewFeedForward builds the FC block for widths dModel→dFF→dModel.
func NewFeedForward(name string, dModel, dFF int, rng *tensor.RNG) *FeedForward {
	return &FeedForward{
		FC1: NewLinear(name+".fc1", dModel, dFF, profile.CatFCGEMM, rng),
		FC2: NewLinear(name+".fc2", dFF, dModel, profile.CatFCGEMM, rng),
		Act: NewGeLU(),
	}
}

// Forward computes FC2(GeLU(FC1(x))).
func (f *FeedForward) Forward(ctx *Ctx, x *tensor.Tensor) *tensor.Tensor {
	return f.FC2.Forward(ctx, f.forwardHidden(ctx, x))
}

// forwardHidden computes GeLU(FC1(x)), fusing bias+GeLU into the FC1 GEMM
// write-back when numerically transparent. In mixed precision the legacy
// sequence quantizes the pre-activation through f16 storage between the
// two modules — a boundary fusion deliberately skips — so MP defers to
// the unfused modules to keep the established numerics.
func (f *FeedForward) forwardHidden(ctx *Ctx, x *tensor.Tensor) *tensor.Tensor {
	if ctx.MixedPrecision {
		return f.Act.Forward(ctx, f.FC1.Forward(ctx, x))
	}
	return f.FC1.ForwardBiasGeLU(ctx, x, f.Act)
}

// Backward propagates through FC2, GeLU, FC1.
func (f *FeedForward) Backward(ctx *Ctx, dY *tensor.Tensor) *tensor.Tensor {
	return f.FC1.Backward(ctx, f.Act.Backward(ctx, f.FC2.Backward(ctx, dY)))
}

// Params returns both FC layers' parameters.
func (f *FeedForward) Params() []*Param { return collectParams(f.FC1, f.FC2) }

// EncoderLayer is one Transformer encoder layer (Fig. 2(a,b)): multi-head
// attention and feed-forward sub-layers, each followed by dropout, a
// residual connection, and LayerNorm (post-LN, as in the original BERT).
type EncoderLayer struct {
	Attn     *MultiHeadAttention
	AttnDrop *Dropout
	AttnLN   *LayerNorm
	FF       *FeedForward
	FFDrop   *Dropout
	FFLN     *LayerNorm

	res Residual
}

// NewEncoderLayer builds a Transformer encoder layer.
func NewEncoderLayer(name string, dModel, heads, dFF int, dropP float32, rng *tensor.RNG) *EncoderLayer {
	return &EncoderLayer{
		Attn:     NewMultiHeadAttention(name+".attn", dModel, heads, dropP, rng),
		AttnDrop: NewDropout(dropP, profile.CatDRRCLN),
		AttnLN:   NewLayerNorm(name+".attn_ln", dModel),
		FF:       NewFeedForward(name+".ff", dModel, dFF, rng),
		FFDrop:   NewDropout(dropP, profile.CatDRRCLN),
		FFLN:     NewLayerNorm(name+".ff_ln", dModel),
	}
}

// Forward runs the layer over x: [B·n, dModel] with an optional additive
// [B, n] attention mask.
func (e *EncoderLayer) Forward(ctx *Ctx, x *tensor.Tensor, b, n int, mask *tensor.Tensor) *tensor.Tensor {
	var h *tensor.Tensor
	if fuseResidualLN(ctx, e.AttnDrop) {
		// The block dropout is inactive, so its module call is skipped
		// entirely; clear any stale mask so its Backward stays an identity.
		e.AttnDrop.mask = nil
		h = e.Attn.ForwardFused(ctx, x, b, n, mask, x, e.AttnLN)
	} else {
		attnOut := e.Attn.Forward(ctx, x, b, n, mask)
		attnOut = e.AttnDrop.Forward(ctx, attnOut)
		h = e.res.AddSkip(ctx, attnOut, x)
		h = e.AttnLN.Forward(ctx, h)
	}

	if fuseResidualLN(ctx, e.FFDrop) {
		e.FFDrop.mask = nil
		hidden := e.FF.forwardHidden(ctx, h)
		return e.FF.FC2.ForwardBiasResidualLN(ctx, hidden, h, e.FFLN)
	}
	ffOut := e.FF.Forward(ctx, h)
	ffOut = e.FFDrop.Forward(ctx, ffOut)
	out := e.res.AddSkip(ctx, ffOut, h)
	return e.FFLN.Forward(ctx, out)
}

// fuseResidualLN reports whether a sub-layer's Add&Norm tail can fuse
// into its preceding projection GEMM: the block dropout sitting between
// them must be inactive (eval, or drop probability zero) and precision
// must be full — the legacy sequence's f16 storage boundaries are part of
// the established MP numerics and fusion would skip them.
func fuseResidualLN(ctx *Ctx, d *Dropout) bool {
	return !ctx.MixedPrecision && (!ctx.Train || d.P == 0)
}

// Backward propagates through the layer. Residual connections split the
// gradient: the skip path adds the post-LN gradient to the sub-layer
// input gradient.
func (e *EncoderLayer) Backward(ctx *Ctx, dY *tensor.Tensor) *tensor.Tensor {
	// FF sub-layer.
	dSum := e.FFLN.Backward(ctx, dY) // gradient at (ffOut + h)
	dFF := e.FFDrop.Backward(ctx, dSum)
	dH := e.FF.Backward(ctx, dFF)
	// Skip path contributes dSum directly to h's gradient.
	addGrad(ctx, dH, dSum)

	// Attention sub-layer.
	dSum2 := e.AttnLN.Backward(ctx, dH) // gradient at (attnOut + x)
	dAttn := e.AttnDrop.Backward(ctx, dSum2)
	dX := e.Attn.Backward(ctx, dAttn)
	addGrad(ctx, dX, dSum2)
	return dX
}

// addGrad records the residual-skip gradient accumulation dst += src.
func addGrad(ctx *Ctx, dst, src *tensor.Tensor) {
	n := dst.Size()
	es := ctx.ElemSize()
	ctx.Prof.Time("residual_add_bwd", profile.CatDRRCLN, profile.Backward,
		int64(n), int64(n)*int64(3*es), func() {
			d, s := dst.Data(), src.Data()
			for i := range d {
				d[i] += s[i]
			}
		})
}

// Params returns all parameters of the layer.
func (e *EncoderLayer) Params() []*Param {
	ps := e.Attn.Params()
	ps = append(ps, e.AttnLN.Params()...)
	ps = append(ps, e.FF.Params()...)
	ps = append(ps, e.FFLN.Params()...)
	return ps
}
