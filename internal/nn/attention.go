package nn

import (
	"fmt"
	"math"

	"demystbert/internal/kernels"
	"demystbert/internal/profile"
	"demystbert/internal/tensor"
)

// MultiHeadAttention implements the attention network of Fig. 2(c,d) and
// Fig. 5: Q/K/V linear projections, h parallel attention heads executed as
// batched GEMMs of B·h small matrices, the scale→mask→softmax→dropout
// pipeline on attention scores, the weighted-sum batched GEMM, head
// concatenation, and the output projection.
type MultiHeadAttention struct {
	Wq, Wk, Wv, Wo *Linear
	AttnDrop       *Dropout

	// Causal masks future key positions, turning the encoder block into
	// a decoder block (Section 2.3: the decoder "is similar to encoder
	// except its attention layer is masked to consider only past tokens"
	// — it only zeros certain matrix elements and does not change the
	// kernel structure).
	Causal bool

	// FusedSoftmax replaces the scale → mask → softmax kernel sequence
	// with one fused pass (the Section 6.1.1 optimization), saving two
	// full reads and writes of the score matrix.
	FusedSoftmax bool

	dModel, heads, dHead int

	// Saved forward state for backprop.
	b, n       int
	qh, kh, vh *tensor.Tensor // [B*h, n, dHead] split projections
	probs      *tensor.Tensor // post-dropout attention probabilities
	softmaxOut *tensor.Tensor // post-softmax (pre-dropout) probabilities
	mask       *tensor.Tensor // additive mask [B, n] or nil
}

// NewMultiHeadAttention builds an attention block for the given model
// width and head count. dModel must be divisible by heads.
func NewMultiHeadAttention(name string, dModel, heads int, dropP float32, rng *tensor.RNG) *MultiHeadAttention {
	if dModel%heads != 0 {
		panic(fmt.Sprintf("nn: dModel %d not divisible by %d heads", dModel, heads))
	}
	return &MultiHeadAttention{
		Wq:       NewLinear(name+".q", dModel, dModel, profile.CatLinear, rng),
		Wk:       NewLinear(name+".k", dModel, dModel, profile.CatLinear, rng),
		Wv:       NewLinear(name+".v", dModel, dModel, profile.CatLinear, rng),
		Wo:       NewLinear(name+".o", dModel, dModel, profile.CatLinear, rng),
		AttnDrop: NewDropout(dropP, profile.CatScaleMaskSM),
		dModel:   dModel,
		heads:    heads,
		dHead:    dModel / heads,
	}
}

// Forward runs attention over x: [B·n, dModel]. mask, if non-nil, is an
// additive [B, n] key mask (0 for visible, large-negative for padding).
func (a *MultiHeadAttention) Forward(ctx *Ctx, x *tensor.Tensor, b, n int, mask *tensor.Tensor) *tensor.Tensor {
	return a.Wo.Forward(ctx, a.forwardCore(ctx, x, b, n, mask))
}

// ForwardFused is Forward with the output projection's Add&Norm tail
// (bias, residual skip addition, LayerNorm) fused into the projection
// GEMM's write-back. The caller (EncoderLayer) guarantees the block
// dropout between projection and residual is inactive and precision is
// full; Backward is unchanged — the fused call fills the same saved state.
func (a *MultiHeadAttention) ForwardFused(ctx *Ctx, x *tensor.Tensor, b, n int, mask, skip *tensor.Tensor, ln *LayerNorm) *tensor.Tensor {
	return a.Wo.ForwardBiasResidualLN(ctx, a.forwardCore(ctx, x, b, n, mask), skip, ln)
}

// forwardCore runs everything up to (not including) the output
// projection, returning the merged head outputs [B·n, dModel].
func (a *MultiHeadAttention) forwardCore(ctx *Ctx, x *tensor.Tensor, b, n int, mask *tensor.Tensor) *tensor.Tensor {
	tokens, dim := mustRank2("MultiHeadAttention", x)
	if tokens != b*n || dim != a.dModel {
		panic(fmt.Sprintf("nn: attention input %v, want [%d, %d]", x.Shape(), b*n, a.dModel))
	}
	if mask != nil && (mask.Rank() != 2 || mask.Dim(0) != b || mask.Dim(1) != n) {
		panic(fmt.Sprintf("nn: attention mask %v, want [%d, %d]", mask.Shape(), b, n))
	}
	a.b, a.n, a.mask = b, n, mask
	es := ctx.ElemSize()
	batch := b * a.heads

	// Linear projections (Table 2b "Linear": d_model × n·B × d_model).
	q := a.Wq.Forward(ctx, x)
	k := a.Wk.Forward(ctx, x)
	v := a.Wv.Forward(ctx, x)

	// Split into h heads: [B*h, n, dHead].
	a.qh = tensor.New(batch, n, a.dHead)
	a.kh = tensor.New(batch, n, a.dHead)
	a.vh = tensor.New(batch, n, a.dHead)
	sz := tokens * a.dModel
	ctx.Prof.Time("split_heads", profile.CatOther, profile.Forward,
		0, kernels.EWBytes(3*sz, 1, 1, es), func() {
			kernels.SplitHeads(a.qh.Data(), q.Data(), b, n, a.heads, a.dHead)
			kernels.SplitHeads(a.kh.Data(), k.Data(), b, n, a.heads, a.dHead)
			kernels.SplitHeads(a.vh.Data(), v.Data(), b, n, a.heads, a.dHead)
		})

	// Attention scores: B·h batched GEMMs of n×n×dHead (Table 2b
	// "Attn. Score"). BatchedGEMM's flattened blocked engine packs the
	// whole batch once and keeps even tiny per-head products (small
	// configs: 16×16×8) on the SIMD micro-kernel instead of the scalar
	// fallback; see DESIGN.md §8.
	scores := tensor.New(batch, n, n)
	stQK, stS := n*a.dHead, n*n
	ctx.Prof.Time("attn_score_bgemm", profile.CatAttnBGEMM, profile.Forward,
		int64(batch)*kernels.GEMMFLOPs(n, n, a.dHead),
		int64(batch)*kernels.GEMMBytes(n, n, a.dHead, es), func() {
			kernels.BatchedGEMM(batch, false, true, n, n, a.dHead, 1,
				a.qh.Data(), stQK, a.kh.Data(), stQK, 0, scores.Data(), stS)
		})

	// Scale by 1/sqrt(dHead), mask (key padding + optional causal), and
	// softmax — fused into one kernel or as the separate sequence the
	// paper profiles (Section 3.2.3).
	scale := float32(1 / math.Sqrt(float64(a.dHead)))
	nScores := batch * n * n
	a.softmaxOut = tensor.New(batch, n, n)
	var maskData []float32
	if mask != nil {
		maskData = mask.Data()
	}
	if a.FusedSoftmax {
		ctx.Prof.Time("attn_scale_mask_softmax_fused", profile.CatScaleMaskSM, profile.Forward,
			kernels.EWFLOPs(nScores, 6), kernels.EWBytes(nScores, 1, 1, es), func() {
				kernels.ScaleMaskSoftmaxAttention(a.softmaxOut.Data(), scores.Data(),
					maskData, scale, a.Causal, b, a.heads, n)
			})
	} else {
		ctx.Prof.Time("attn_scale", profile.CatScaleMaskSM, profile.Forward,
			kernels.EWFLOPs(nScores, 1), kernels.EWBytes(nScores, 1, 1, es), func() {
				kernels.Scale(scores.Data(), scores.Data(), scale)
			})
		if mask != nil {
			ctx.Prof.Time("attn_mask", profile.CatScaleMaskSM, profile.Forward,
				kernels.EWFLOPs(nScores, 1), kernels.EWBytes(nScores, 1, 1, es), func() {
					sd := scores.Data()
					for bi := 0; bi < batch; bi++ {
						mrow := maskData[(bi/a.heads)*n : (bi/a.heads+1)*n]
						base := bi * stS
						for qi := 0; qi < n; qi++ {
							row := sd[base+qi*n : base+(qi+1)*n]
							for ki := range row {
								row[ki] += mrow[ki]
							}
						}
					}
				})
		}
		if a.Causal {
			ctx.Prof.Time("attn_causal_mask", profile.CatScaleMaskSM, profile.Forward,
				kernels.EWFLOPs(nScores, 1), kernels.EWBytes(nScores, 1, 1, es), func() {
					sd := scores.Data()
					for bi := 0; bi < batch; bi++ {
						base := bi * stS
						for qi := 0; qi < n; qi++ {
							row := sd[base+qi*n : base+(qi+1)*n]
							for ki := qi + 1; ki < n; ki++ {
								row[ki] = -1e9
							}
						}
					}
				})
		}
		ctx.Prof.Time("attn_softmax", profile.CatScaleMaskSM, profile.Forward,
			kernels.EWFLOPs(nScores, 4), kernels.EWBytes(nScores, 1, 1, es), func() {
				kernels.Softmax(a.softmaxOut.Data(), scores.Data(), batch*n, n)
			})
	}

	// Attention dropout.
	flatProbs := a.softmaxOut.Reshape(batch*n, n)
	a.probs = a.AttnDrop.Forward(ctx, flatProbs).Reshape(batch, n, n)

	// Weighted sum of values: B·h batched GEMMs of n×dHead×n (Table 2b
	// "Attn. O/p").
	ctxOut := tensor.New(batch, n, a.dHead)
	ctx.Prof.Time("attn_output_bgemm", profile.CatAttnBGEMM, profile.Forward,
		int64(batch)*kernels.GEMMFLOPs(n, a.dHead, n),
		int64(batch)*kernels.GEMMBytes(n, a.dHead, n, es), func() {
			kernels.BatchedGEMM(batch, false, false, n, a.dHead, n, 1,
				a.probs.Data(), stS, a.vh.Data(), stQK, 0, ctxOut.Data(), stQK)
		})

	// Concatenate heads back to [B·n, dModel].
	merged := tensor.New(tokens, a.dModel)
	ctx.Prof.Time("merge_heads", profile.CatOther, profile.Forward,
		0, kernels.EWBytes(sz, 1, 1, es), func() {
			kernels.MergeHeads(merged.Data(), ctxOut.Data(), b, n, a.heads, a.dHead)
		})

	return merged
}

// Backward propagates dY: [B·n, dModel] through the attention block and
// returns dX. Parameter gradients accumulate into the four projections.
func (a *MultiHeadAttention) Backward(ctx *Ctx, dY *tensor.Tensor) *tensor.Tensor {
	if a.qh == nil {
		panic("nn: MultiHeadAttention.Backward called before Forward")
	}
	b, n := a.b, a.n
	tokens := b * n
	batch := b * a.heads
	es := ctx.ElemSize()
	stQK, stS := n*a.dHead, n*n

	// Through output projection.
	dMerged := a.Wo.Backward(ctx, dY)

	// Un-concatenate heads.
	dCtxOut := tensor.New(batch, n, a.dHead)
	sz := tokens * a.dModel
	ctx.Prof.Time("split_heads_bwd", profile.CatOther, profile.Backward,
		0, kernels.EWBytes(sz, 1, 1, es), func() {
			kernels.SplitHeads(dCtxOut.Data(), dMerged.Data(), b, n, a.heads, a.dHead)
		})

	// Backward of output BGEMM (Table 2b "Attn. O/p" BWD rows):
	// dProbs = dCtxOut · V^T, dV = Probs^T · dCtxOut.
	dProbs := tensor.New(batch, n, n)
	dVh := tensor.New(batch, n, a.dHead)
	ctx.Prof.Time("attn_output_bgemm_bwd", profile.CatAttnBGEMM, profile.Backward,
		2*int64(batch)*kernels.GEMMFLOPs(n, n, a.dHead),
		2*int64(batch)*kernels.GEMMBytes(n, n, a.dHead, es), func() {
			kernels.BatchedGEMM(batch, false, true, n, n, a.dHead, 1,
				dCtxOut.Data(), stQK, a.vh.Data(), stQK, 0, dProbs.Data(), stS)
			kernels.BatchedGEMM(batch, true, false, n, a.dHead, n, 1,
				a.probs.Data(), stS, dCtxOut.Data(), stQK, 0, dVh.Data(), stQK)
		})

	// Through dropout, then softmax.
	dAfterDrop := a.AttnDrop.Backward(ctx, dProbs.Reshape(batch*n, n))
	dScores := tensor.New(batch, n, n)
	nScores := batch * n * n
	ctx.Prof.Time("attn_softmax_bwd", profile.CatScaleMaskSM, profile.Backward,
		kernels.EWFLOPs(nScores, 4), kernels.EWBytes(nScores, 2, 1, es), func() {
			kernels.SoftmaxGrad(dScores.Data(), dAfterDrop.Data(), a.softmaxOut.Data(), batch*n, n)
		})
	// Mask add has identity gradient; scale backward multiplies by the
	// same constant.
	scale := float32(1 / math.Sqrt(float64(a.dHead)))
	ctx.Prof.Time("attn_scale_bwd", profile.CatScaleMaskSM, profile.Backward,
		kernels.EWFLOPs(nScores, 1), kernels.EWBytes(nScores, 1, 1, es), func() {
			kernels.Scale(dScores.Data(), dScores.Data(), scale)
		})

	// Backward of score BGEMM (Table 2b "Attn. Score" BWD rows):
	// dQ = dScores · K, dK = dScores^T · Q.
	dQh := tensor.New(batch, n, a.dHead)
	dKh := tensor.New(batch, n, a.dHead)
	ctx.Prof.Time("attn_score_bgemm_bwd", profile.CatAttnBGEMM, profile.Backward,
		2*int64(batch)*kernels.GEMMFLOPs(n, a.dHead, n),
		2*int64(batch)*kernels.GEMMBytes(n, a.dHead, n, es), func() {
			kernels.BatchedGEMM(batch, false, false, n, a.dHead, n, 1,
				dScores.Data(), stS, a.kh.Data(), stQK, 0, dQh.Data(), stQK)
			kernels.BatchedGEMM(batch, true, false, n, a.dHead, n, 1,
				dScores.Data(), stS, a.qh.Data(), stQK, 0, dKh.Data(), stQK)
		})

	// Merge head gradients back to [B·n, dModel].
	dQ := tensor.New(tokens, a.dModel)
	dK := tensor.New(tokens, a.dModel)
	dV := tensor.New(tokens, a.dModel)
	ctx.Prof.Time("merge_heads_bwd", profile.CatOther, profile.Backward,
		0, kernels.EWBytes(3*sz, 1, 1, es), func() {
			kernels.MergeHeads(dQ.Data(), dQh.Data(), b, n, a.heads, a.dHead)
			kernels.MergeHeads(dK.Data(), dKh.Data(), b, n, a.heads, a.dHead)
			kernels.MergeHeads(dV.Data(), dVh.Data(), b, n, a.heads, a.dHead)
		})

	// Through the three input projections; their dX contributions sum
	// because x feeds all three.
	dX := a.Wq.Backward(ctx, dQ)
	dXk := a.Wk.Backward(ctx, dK)
	dXv := a.Wv.Backward(ctx, dV)
	nIn := tokens * a.dModel
	ctx.Prof.Time("attn_input_grad_sum", profile.CatOther, profile.Backward,
		kernels.EWFLOPs(nIn, 2), kernels.EWBytes(nIn, 3, 1, es), func() {
			kernels.AccumulateInto(dX.Data(), dXk.Data())
			kernels.AccumulateInto(dX.Data(), dXv.Data())
		})

	a.qh, a.kh, a.vh, a.probs, a.softmaxOut, a.mask = nil, nil, nil, nil, nil, nil
	return dX
}

// Params returns the four projection layers' parameters.
func (a *MultiHeadAttention) Params() []*Param {
	return collectParams(a.Wq, a.Wk, a.Wv, a.Wo)
}

// Heads returns the attention head count.
func (a *MultiHeadAttention) Heads() int { return a.heads }
