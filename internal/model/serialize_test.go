package model

import (
	"bytes"
	"strings"
	"testing"

	"demystbert/internal/data"
	"demystbert/internal/nn"
)

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := Tiny()
	cfg.DropProb = 0
	m, _ := New(cfg, 7)

	// Train a step so weights differ from any fresh initialization.
	b := tinyBatch(cfg, 2, 16, 1)
	ctx := nn.NewCtx(1)
	m.Step(ctx, b)
	for _, p := range m.Params() {
		v, g := p.Value.Data(), p.Grad.Data()
		for i := range v {
			v[i] -= 0.01 * g[i]
		}
		p.BumpGen() // manual in-place update: invalidate cached GEMM packs
		p.ZeroGrad()
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if loaded.Config != cfg {
		t.Fatalf("config mismatch: %+v vs %+v", loaded.Config, cfg)
	}
	orig := m.Params()
	got := loaded.Params()
	if len(orig) != len(got) {
		t.Fatalf("param count %d vs %d", len(got), len(orig))
	}
	for i := range orig {
		od, gd := orig[i].Value.Data(), got[i].Value.Data()
		for j := range od {
			if od[j] != gd[j] {
				t.Fatalf("param %s elem %d: %v vs %v", orig[i].Name, j, gd[j], od[j])
			}
		}
	}

	// Behavioural equality: identical eval loss on the same batch.
	evalA := nn.NewCtx(9)
	evalA.Train = false
	evalB := nn.NewCtx(9)
	evalB.Train = false
	if la, lb := m.Forward(evalA, b), loaded.Forward(evalB, b); la != lb {
		t.Fatalf("loaded model loss %v differs from original %v", lb, la)
	}
}

func TestCheckpointPreservesWeightTying(t *testing.T) {
	var buf bytes.Buffer
	m, _ := New(Tiny(), 1)
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.MLMDecoder.W != loaded.Embed.Tok {
		t.Fatal("loaded model lost MLM decoder weight tying")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("this is not a checkpoint, honest")); err == nil {
		t.Fatal("garbage input must error")
	}
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Fatal("empty input must error")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	m, _ := New(Tiny(), 1)
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := Load(bytes.NewReader(full[:len(full)/2])); err == nil {
		t.Fatal("truncated checkpoint must error")
	}
}

func TestLoadRejectsCorruptHeader(t *testing.T) {
	var buf bytes.Buffer
	m, _ := New(Tiny(), 1)
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[0] ^= 0xFF // break the magic
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupt magic must error")
	}
}

func TestSaveLoadFineTuneHandoff(t *testing.T) {
	// The pre-train -> save -> load -> fine-tune workflow of Fig. 1.
	cfg := Tiny()
	cfg.DropProb = 0
	pre, _ := New(cfg, 3)
	var buf bytes.Buffer
	if err := pre.Save(&buf); err != nil {
		t.Fatal(err)
	}
	base, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFineTuner(base, 4)
	ctx := nn.NewCtx(5)
	qa := data.NewGenerator(cfg.Vocab, 0.15, 6).NextQA(2, 16)
	if loss := f.Step(ctx, qa); loss <= 0 {
		t.Fatalf("fine-tune step on loaded model produced loss %v", loss)
	}
}
