package model

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"demystbert/internal/data"
	"demystbert/internal/kernels"
	"demystbert/internal/nn"
	"demystbert/internal/optim"
)

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := Tiny()
	cfg.DropProb = 0
	m, _ := New(cfg, 7)

	// Train a step so weights differ from any fresh initialization.
	b := tinyBatch(cfg, 2, 16, 1)
	ctx := nn.NewCtx(1)
	m.Step(ctx, b)
	for _, p := range m.Params() {
		v, g := p.Value.Data(), p.Grad.Data()
		for i := range v {
			v[i] -= 0.01 * g[i]
		}
		p.BumpGen() // manual in-place update: invalidate cached GEMM packs
		p.ZeroGrad()
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if loaded.Config != cfg {
		t.Fatalf("config mismatch: %+v vs %+v", loaded.Config, cfg)
	}
	orig := m.Params()
	got := loaded.Params()
	if len(orig) != len(got) {
		t.Fatalf("param count %d vs %d", len(got), len(orig))
	}
	for i := range orig {
		od, gd := orig[i].Value.Data(), got[i].Value.Data()
		for j := range od {
			if od[j] != gd[j] {
				t.Fatalf("param %s elem %d: %v vs %v", orig[i].Name, j, gd[j], od[j])
			}
		}
	}

	// Behavioural equality: identical eval loss on the same batch.
	evalA := nn.NewCtx(9)
	evalA.Train = false
	evalB := nn.NewCtx(9)
	evalB.Train = false
	if la, lb := m.Forward(evalA, b), loaded.Forward(evalB, b); la != lb {
		t.Fatalf("loaded model loss %v differs from original %v", lb, la)
	}
}

// TestLoadParamsResumeMatchesContinuousRun is the resume-parity
// regression for the restore-into-existing-model path: a model that has
// trained past a checkpoint (leaving warm GEMM pack caches built from the
// newer weights) and then restores the checkpoint with LoadParams must
// step bitwise-identically to a run that never left the checkpoint. This
// fails if LoadParams forgets to bump the pack-cache generation — the
// packed GEMM path would silently keep multiplying by pre-restore panels.
func TestLoadParamsResumeMatchesContinuousRun(t *testing.T) {
	cfg := Tiny()
	cfg.DropProb = 0
	const seed = 7
	gen := data.NewGenerator(cfg.Vocab, 0.15, 1)
	batch1, batch2 := gen.Next(2, 16), gen.Next(2, 16)

	// Pack caches only matter on the packed path.
	old := kernels.SetGEMMPath(kernels.GEMMPathPacked)
	defer kernels.SetGEMMPath(old)

	step := func(m *BERT, opt *optim.LAMB, b *data.Batch) float64 {
		ctx := nn.NewCtx(9)
		loss := m.Step(ctx, b)
		if opt != nil {
			opt.Step(ctx, m.Params())
			m.ZeroGrads()
		}
		return loss
	}

	// Continuous run: step, checkpoint, step again (grads kept).
	cont, err := New(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	optC := optim.NewLAMB(0.01)
	step(cont, optC, batch1)
	var ckpt bytes.Buffer
	if err := cont.Save(&ckpt); err != nil {
		t.Fatal(err)
	}
	lossCont := step(cont, nil, batch2)

	// Resumed run: same first step, then train PAST the checkpoint so the
	// weights move and the pack caches rebuild from the newer values, then
	// restore and replay.
	res, err := New(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	optR := optim.NewLAMB(0.01)
	step(res, optR, batch1)
	step(res, optR, batch2) // divergence: stale weights + warm stale packs
	if err := res.LoadParams(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	lossRes := step(res, nil, batch2)

	if math.Float64bits(lossCont) != math.Float64bits(lossRes) {
		t.Fatalf("resumed loss %v != continuous loss %v", lossRes, lossCont)
	}
	cp, rp := cont.Params(), res.Params()
	for i := range cp {
		cg, rg := cp[i].Grad.Data(), rp[i].Grad.Data()
		for j := range cg {
			if math.Float32bits(cg[j]) != math.Float32bits(rg[j]) {
				t.Fatalf("grad %s[%d]: resumed %v != continuous %v", cp[i].Name, j, rg[j], cg[j])
			}
		}
	}
}

func TestLoadParamsRejectsConfigMismatch(t *testing.T) {
	var buf bytes.Buffer
	m, _ := New(Tiny(), 1)
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := Tiny()
	other.NumLayers++
	m2, _ := New(other, 1)
	if err := m2.LoadParams(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("LoadParams must reject a checkpoint with a different config")
	}
}

func TestCheckpointPreservesWeightTying(t *testing.T) {
	var buf bytes.Buffer
	m, _ := New(Tiny(), 1)
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.MLMDecoder.W != loaded.Embed.Tok {
		t.Fatal("loaded model lost MLM decoder weight tying")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("this is not a checkpoint, honest")); err == nil {
		t.Fatal("garbage input must error")
	}
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Fatal("empty input must error")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	m, _ := New(Tiny(), 1)
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := Load(bytes.NewReader(full[:len(full)/2])); err == nil {
		t.Fatal("truncated checkpoint must error")
	}
}

func TestLoadRejectsCorruptHeader(t *testing.T) {
	var buf bytes.Buffer
	m, _ := New(Tiny(), 1)
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[0] ^= 0xFF // break the magic
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupt magic must error")
	}
}

func TestSaveLoadFineTuneHandoff(t *testing.T) {
	// The pre-train -> save -> load -> fine-tune workflow of Fig. 1.
	cfg := Tiny()
	cfg.DropProb = 0
	pre, _ := New(cfg, 3)
	var buf bytes.Buffer
	if err := pre.Save(&buf); err != nil {
		t.Fatal(err)
	}
	base, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFineTuner(base, 4)
	ctx := nn.NewCtx(5)
	qa := data.NewGenerator(cfg.Vocab, 0.15, 6).NextQA(2, 16)
	if loss := f.Step(ctx, qa); loss <= 0 {
		t.Fatalf("fine-tune step on loaded model produced loss %v", loss)
	}
}
