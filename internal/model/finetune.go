package model

import (
	"fmt"

	"demystbert/internal/data"
	"demystbert/internal/kernels"
	"demystbert/internal/nn"
	"demystbert/internal/profile"
	"demystbert/internal/tensor"
)

// FineTuner adapts a pre-trained BERT to an extractive question-answering
// task in the SQuAD style the paper discusses (Section 7): the
// pre-training heads are discarded and a single span classifier — one
// d_model → 2 projection producing start/end logits per token — is added.
// Everything else (embedding, encoder stack, training technique) is
// reused unchanged, which is why the paper's takeaways carry over to
// fine-tuning.
type FineTuner struct {
	Base *BERT
	Span *nn.Linear

	// Saved iteration state.
	batch      *data.QABatch
	startProbs *tensor.Tensor
	endProbs   *tensor.Tensor
}

// NewFineTuner wraps a (typically pre-trained) BERT with a fresh span
// head.
func NewFineTuner(base *BERT, seed uint64) *FineTuner {
	rng := tensor.NewRNG(seed)
	return &FineTuner{
		Base: base,
		Span: nn.NewLinear("squad.span", base.Config.DModel, 2, profile.CatOutput, rng),
	}
}

// Forward runs the encoder and span head over a QA batch, returning the
// mean of the start- and end-position cross-entropy losses.
func (f *FineTuner) Forward(ctx *nn.Ctx, b *data.QABatch) float64 {
	f.batch = b
	h := f.Base.Embed.Forward(ctx, b.Tokens, b.Segments, b.B, b.N)
	for _, layer := range f.Base.Layers {
		h = layer.Forward(ctx, h, b.B, b.N, b.Mask)
	}
	logits := f.Span.Forward(ctx, h) // [B·n, 2]

	// Regroup into per-sequence position logits: start[B, n], end[B, n].
	start := tensor.New(b.B, b.N)
	end := tensor.New(b.B, b.N)
	es := ctx.ElemSize()
	ctx.Prof.Time("span_split", profile.CatOutput, profile.Forward,
		0, kernels.EWBytes(2*b.B*b.N, 1, 1, es), func() {
			ld := logits.Data()
			for s := 0; s < b.B; s++ {
				for t := 0; t < b.N; t++ {
					start.Set(ld[(s*b.N+t)*2+0], s, t)
					end.Set(ld[(s*b.N+t)*2+1], s, t)
				}
			}
		})

	f.startProbs = tensor.New(b.B, b.N)
	f.endProbs = tensor.New(b.B, b.N)
	var loss float64
	ctx.Prof.Time("span_xent_fwd", profile.CatOutput, profile.Forward,
		kernels.EWFLOPs(2*b.B*b.N, 4), kernels.EWBytes(2*b.B*b.N, 1, 1, es), func() {
			loss = 0.5*kernels.CrossEntropyForward(f.startProbs.Data(), start.Data(), b.StartPos, b.B, b.N) +
				0.5*kernels.CrossEntropyForward(f.endProbs.Data(), end.Data(), b.EndPos, b.B, b.N)
		})
	return loss
}

// Backward backpropagates the span loss through the head and encoder.
func (f *FineTuner) Backward(ctx *nn.Ctx) {
	if f.batch == nil {
		panic("model: FineTuner.Backward called before Forward")
	}
	b := f.batch
	es := ctx.ElemSize()

	dStart := tensor.New(b.B, b.N)
	dEnd := tensor.New(b.B, b.N)
	dLogits := tensor.New(b.B*b.N, 2)
	ctx.Prof.Time("span_xent_bwd", profile.CatOutput, profile.Backward,
		kernels.EWFLOPs(2*b.B*b.N, 2), kernels.EWBytes(2*b.B*b.N, 1, 1, es), func() {
			kernels.CrossEntropyBackward(dStart.Data(), f.startProbs.Data(), b.StartPos, b.B, b.N)
			kernels.CrossEntropyBackward(dEnd.Data(), f.endProbs.Data(), b.EndPos, b.B, b.N)
			dd := dLogits.Data()
			for s := 0; s < b.B; s++ {
				for t := 0; t < b.N; t++ {
					dd[(s*b.N+t)*2+0] = 0.5 * dStart.At(s, t)
					dd[(s*b.N+t)*2+1] = 0.5 * dEnd.At(s, t)
				}
			}
		})

	dSeq := f.Span.Backward(ctx, dLogits)
	for i := len(f.Base.Layers) - 1; i >= 0; i-- {
		dSeq = f.Base.Layers[i].Backward(ctx, dSeq)
	}
	f.Base.Embed.Backward(ctx, dSeq)
	f.Base.Embed.FlushTokScatter(ctx)
	f.batch, f.startProbs, f.endProbs = nil, nil, nil
}

// Step runs one fine-tuning iteration and returns the loss.
func (f *FineTuner) Step(ctx *nn.Ctx, b *data.QABatch) float64 {
	ctx.Prof.BeginIteration()
	loss := f.Forward(ctx, b)
	f.Backward(ctx)
	return loss
}

// Params returns the encoder, embedding, and span-head parameters (the
// unused pre-training heads are excluded — they receive no gradient).
func (f *FineTuner) Params() []*nn.Param {
	ps := f.Base.Embed.Params()
	for _, l := range f.Base.Layers {
		ps = append(ps, l.Params()...)
	}
	return append(ps, f.Span.Params()...)
}

// ZeroGrads clears all fine-tuning gradients.
func (f *FineTuner) ZeroGrads() {
	for _, p := range f.Params() {
		p.ZeroGrad()
	}
}

// PredictSpan runs inference over a QA batch and returns the
// highest-scoring start and end position per sequence.
func (f *FineTuner) PredictSpan(ctx *nn.Ctx, b *data.QABatch) (starts, ends []int) {
	prevTrain := ctx.Train
	ctx.Train = false
	f.Forward(ctx, b)
	ctx.Train = prevTrain

	starts = make([]int, b.B)
	ends = make([]int, b.B)
	for s := 0; s < b.B; s++ {
		starts[s] = argmaxRow(f.startProbs, s)
		ends[s] = argmaxRow(f.endProbs, s)
	}
	f.batch = nil
	return starts, ends
}

func argmaxRow(t *tensor.Tensor, row int) int {
	r := t.Row(row)
	best := 0
	for i, v := range r {
		if v > r[best] {
			best = i
		}
	}
	return best
}

// PredictMasked runs an inference forward pass of the pre-training model
// and returns, for every masked position, the predicted token id — the
// masked-word prediction task performed for real.
func (m *BERT) PredictMasked(ctx *nn.Ctx, b *data.Batch) map[int]int {
	prevTrain := ctx.Train
	ctx.Train = false
	m.Forward(ctx, b)
	ctx.Train = prevTrain

	preds := make(map[int]int)
	v := m.Config.Vocab
	probs := m.mlmProbs
	for pos, tgt := range b.MLMTargets {
		if tgt == kernels.IgnoreIndex {
			continue
		}
		row := probs.Data()[pos*v : (pos+1)*v]
		best := 0
		for i, p := range row {
			if p > row[best] {
				best = i
			}
		}
		preds[pos] = best
	}
	m.batch, m.seqOut, m.mlmProbs, m.nspProbs, m.pooledTanh = nil, nil, nil, nil, nil
	return preds
}

// String describes the fine-tuner.
func (f *FineTuner) String() string {
	return fmt.Sprintf("FineTuner(span head over %d-layer encoder)", f.Base.Config.NumLayers)
}
