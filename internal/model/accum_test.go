package model

import (
	"math"
	"testing"

	"demystbert/internal/kernels"
	"demystbert/internal/nn"
)

// TestStepAccumBitwiseMatchesFullBatch pins the gradient-accumulation
// contract: with dropout off and a forced GEMM path, StepAccum(B/k, k)
// produces a loss and parameter gradients bitwise-identical to a single
// full-batch Step(B), across GEMM engines and with checkpointing on and
// off. This holds because every cross-token reduction in the engine is a
// destination-seeded fold in token order.
func TestStepAccumBitwiseMatchesFullBatch(t *testing.T) {
	cfg := Tiny()
	cfg.DropProb = 0
	const b, n, seed = 4, 16, 5
	batch := tinyBatch(cfg, b, n, 11)

	for _, path := range []kernels.GEMMPath{
		kernels.GEMMPathNaive, kernels.GEMMPathBlocked, kernels.GEMMPathBatched,
	} {
		for _, ckpt := range []int{0, 1} {
			for _, accumSteps := range []int{2, 4} {
				full, err := New(cfg, seed)
				if err != nil {
					t.Fatal(err)
				}
				accum, err := New(cfg, seed)
				if err != nil {
					t.Fatal(err)
				}
				full.CheckpointEvery, accum.CheckpointEvery = ckpt, ckpt

				old := kernels.SetGEMMPath(path)
				lossFull := full.Step(nn.NewCtx(9), batch)
				lossAccum := accum.StepAccum(nn.NewCtx(9), batch, accumSteps)
				kernels.SetGEMMPath(old)

				if math.Float64bits(lossFull) != math.Float64bits(lossAccum) {
					t.Errorf("path=%v ckpt=%d k=%d: loss %v (full) != %v (accum)",
						path, ckpt, accumSteps, lossFull, lossAccum)
				}
				fp, ap := full.Params(), accum.Params()
				for i := range fp {
					fg, ag := fp[i].Grad.Data(), ap[i].Grad.Data()
					for j := range fg {
						if math.Float32bits(fg[j]) != math.Float32bits(ag[j]) {
							t.Fatalf("path=%v ckpt=%d k=%d: grad %s[%d] = %v (full) != %v (accum)",
								path, ckpt, accumSteps, fp[i].Name, j, fg[j], ag[j])
						}
					}
				}
			}
		}
	}
}

// TestAccumHotLoopAllocs guards the per-micro-step additions of
// StepAccum over a plain Step: batch slicing must stay a zero-copy view
// (a Batch header plus a mask Tensor header), never a per-element copy —
// an 8-way accumulated BERT-Large step takes this path every micro-batch
// while running right under GOMEMLIMIT.
func TestAccumHotLoopAllocs(t *testing.T) {
	cfg := Tiny()
	batch := tinyBatch(cfg, 4, 16, 11)
	allocs := testing.AllocsPerRun(200, func() {
		_ = batch.Slice(1, 3)
	})
	if allocs > 4 {
		t.Fatalf("Batch.Slice allocates %.0f objects per call, want view headers only (<=4)", allocs)
	}
}

// TestStepAccumFiresGradHookOnLastMicroOnly pins the GradHook contract
// under accumulation: the hook must fire exactly one full group sequence,
// during the final micro-batch, when gradients are actually final.
func TestStepAccumFiresGradHookOnLastMicroOnly(t *testing.T) {
	cfg := Tiny()
	cfg.DropProb = 0
	m, err := New(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	var fired []int
	m.GradHook = func(group int) { fired = append(fired, group) }
	m.StepAccum(nn.NewCtx(1), tinyBatch(cfg, 4, 16, 2), 2)
	want := 2 + len(m.Layers) // heads + per-layer + embedding
	if len(fired) != want {
		t.Fatalf("GradHook fired %d times (%v), want %d (one full sequence)", len(fired), fired, want)
	}
	for i, g := range fired {
		if g != i {
			t.Fatalf("GradHook sequence %v, want 0..%d in order", fired, want-1)
		}
	}
}
