package model

import (
	"fmt"
	"math"

	"demystbert/internal/data"
	"demystbert/internal/kernels"
	"demystbert/internal/nn"
	"demystbert/internal/profile"
	"demystbert/internal/tensor"
)

// CkptSpiller stores checkpointed activations outside the heap. Spill is
// called during Forward with checkpoint index idx and the activation
// values; Restore must fill dst with exactly the bytes Spill received for
// that index. Implementations may assume per-index lengths are stable
// across iterations and must be bitwise-faithful — the recompute pass
// depends on replaying identical inputs.
type CkptSpiller interface {
	Spill(idx int, data []float32)
	Restore(idx int, dst []float32)
}

// BERT is the full pre-training network: embedding, N encoder layers, the
// masked-LM head (dense + GeLU + LN + vocabulary decoder) and the NSP head
// (CLS pooler + tanh + binary classifier).
type BERT struct {
	Config Config

	Embed  *nn.Embedding
	Layers []*nn.EncoderLayer

	MLMDense   *nn.Linear
	MLMAct     *nn.GeLU
	MLMLN      *nn.LayerNorm
	MLMDecoder *nn.Linear

	Pooler *nn.Linear
	NSP    *nn.Linear

	// CheckpointEvery enables activation checkpointing (Section 4): when
	// k > 0, forward activations are checkpointed every k layers and the
	// segment is re-executed during backprop. BERT-Large's published
	// recipe uses k = 6 (√N ≈ 4 checkpoints over 24 layers).
	CheckpointEvery int

	// CkptSpill, when non-nil alongside CheckpointEvery, streams the
	// checkpointed segment inputs to external storage instead of keeping
	// them on the heap (internal/memscale's arena): Forward spills each
	// checkpoint as it is taken, Backward restores one at a time into a
	// single reused buffer. Spilled bytes round-trip bitwise, so results
	// are unchanged; peak activation memory drops to one segment's.
	CkptSpill CkptSpiller

	// GradHook, when non-nil, is invoked during Backward as parameter
	// gradients become final, with an index into GradGroups(): once after
	// the output heads' backward, once after each encoder layer's
	// backward (last layer first), and once after the embedding backward.
	// Distributed trainers use it to launch a gradient bucket's AllReduce
	// the moment its last gradient is produced, overlapping communication
	// with the remaining backprop (internal/distnet).
	GradHook func(group int)

	// Saved iteration state.
	batch      *data.Batch
	seqOut     *tensor.Tensor
	mlmProbs   *tensor.Tensor
	nspProbs   *tensor.Tensor
	pooledTanh *tensor.Tensor
	ckptInputs []*tensor.Tensor
	spillBuf   *tensor.Tensor // reused restore target when CkptSpill is set
	res        nn.Residual

	// Gradient-accumulation state for an in-flight StepAccum.
	accum accumState
}

// accumState threads the loss fold and normalization counts across the
// micro-batches of one StepAccum iteration. The cross-entropy sums
// continue the exact float64 fold a full-batch step would run, and the
// backward normalizes by the FULL batch's scored-row totals, so summed
// micro-batch gradients and the final loss are bitwise-identical to one
// full-batch step.
type accumState struct {
	active bool
	last   bool // current micro-batch is the final one: fire GradHook

	mlmSum, nspSum     float64
	mlmSeen, nspSeen   int
	mlmTotal, nspTotal int // full-batch scored-row counts
}

// New constructs a BERT model with deterministic initialization.
func New(cfg Config, seed uint64) (*BERT, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(seed)
	m := &BERT{
		Config:     cfg,
		Embed:      nn.NewEmbedding(cfg.Vocab, cfg.MaxPos, cfg.DModel, cfg.DropProb, rng),
		MLMDense:   nn.NewLinear("mlm.dense", cfg.DModel, cfg.DModel, profile.CatOutput, rng),
		MLMAct:     nn.NewGeLU(),
		MLMLN:      nn.NewLayerNorm("mlm.ln", cfg.DModel),
		MLMDecoder: nn.NewLinear("mlm.decoder", cfg.DModel, cfg.Vocab, profile.CatOutput, rng),
		Pooler:     nn.NewLinear("nsp.pooler", cfg.DModel, cfg.DModel, profile.CatOutput, rng),
		NSP:        nn.NewLinear("nsp.classifier", cfg.DModel, 2, profile.CatOutput, rng),
	}
	// Tie the MLM decoder weight to the token embedding table, as BERT
	// does: both are [vocab, d_model] and share storage and gradient, so
	// the model lands at the paper's ~340M parameters for BERT-Large.
	m.MLMDecoder.W = m.Embed.Tok
	for i := 0; i < cfg.NumLayers; i++ {
		layer := nn.NewEncoderLayer(fmt.Sprintf("encoder.%d", i), cfg.DModel, cfg.Heads, cfg.DFF, cfg.DropProb, rng)
		layer.Attn.Causal = cfg.Causal
		layer.Attn.FusedSoftmax = cfg.FusedAttention
		m.Layers = append(m.Layers, layer)
	}
	return m, nil
}

// ScaleGrads multiplies every parameter gradient by f — the final step of
// gradient accumulation over micro-batches, which lets the engine train
// effective batch sizes beyond what fits in one step.
func (m *BERT) ScaleGrads(f float32) {
	for _, p := range m.Params() {
		g := p.Grad.Data()
		for i := range g {
			g[i] *= f
		}
	}
}

// Forward runs the forward pass over a batch and returns the summed
// MLM + NSP loss. State is retained for a subsequent Backward.
func (m *BERT) Forward(ctx *nn.Ctx, b *data.Batch) float64 {
	m.batch = b
	h := m.Embed.Forward(ctx, b.Tokens, b.Segments, b.B, b.N)

	if m.CheckpointEvery > 0 {
		m.ckptInputs = m.ckptInputs[:0]
	}
	for i, layer := range m.Layers {
		if m.CheckpointEvery > 0 && i%m.CheckpointEvery == 0 {
			if m.CkptSpill != nil {
				// Stream the checkpoint out; a nil placeholder keeps the
				// segment indexing intact. The tensor itself stays live
				// only until the next layer consumes it.
				idx := len(m.ckptInputs)
				ctx.Prof.Time("spill_ckpt_write", profile.CatOther, profile.Forward,
					0, int64(h.Size())*4, func() {
						m.CkptSpill.Spill(idx, h.Data())
					})
				m.ckptInputs = append(m.ckptInputs, nil)
			} else {
				m.ckptInputs = append(m.ckptInputs, h)
			}
		}
		h = layer.Forward(ctx, h, b.B, b.N, b.Mask)
	}
	m.seqOut = h

	return m.headsForward(ctx, h)
}

// headsForward computes both task losses from the encoder output.
func (m *BERT) headsForward(ctx *nn.Ctx, seq *tensor.Tensor) float64 {
	b := m.batch
	cfg := m.Config

	// Masked-LM head over every position; unmasked positions are ignored
	// by the loss (kernels.IgnoreIndex).
	x := m.MLMDense.Forward(ctx, seq)
	x = m.MLMAct.Forward(ctx, x)
	x = m.MLMLN.Forward(ctx, x)
	logits := m.MLMDecoder.Forward(ctx, x)
	m.mlmProbs = tensor.New(b.B*b.N, cfg.Vocab)
	var mlmLoss float64
	nl := b.B * b.N * cfg.Vocab
	ctx.Prof.Time("mlm_xent_fwd", profile.CatOutput, profile.Forward,
		kernels.EWFLOPs(nl, 4), kernels.EWBytes(nl, 1, 1, ctx.ElemSize()), func() {
			if m.accum.active {
				m.accum.mlmSum, m.accum.mlmSeen = kernels.CrossEntropySumForward(
					m.mlmProbs.Data(), logits.Data(), b.MLMTargets, b.B*b.N, cfg.Vocab,
					m.accum.mlmSum, m.accum.mlmSeen)
			} else {
				mlmLoss = kernels.CrossEntropyForward(m.mlmProbs.Data(), logits.Data(), b.MLMTargets, b.B*b.N, cfg.Vocab)
			}
		})

	// NSP head over the CLS token of each sequence.
	cls := tensor.New(b.B, cfg.DModel)
	ctx.Prof.Time("cls_gather", profile.CatOutput, profile.Forward,
		0, kernels.EWBytes(b.B*cfg.DModel, 1, 1, ctx.ElemSize()), func() {
			for s := 0; s < b.B; s++ {
				copy(cls.Row(s), seq.Row(s*b.N))
			}
		})
	pooled := m.Pooler.Forward(ctx, cls)
	m.pooledTanh = tensor.New(b.B, cfg.DModel)
	np := b.B * cfg.DModel
	ctx.Prof.Time("pooler_tanh", profile.CatOutput, profile.Forward,
		kernels.EWFLOPs(np, 4), kernels.EWBytes(np, 1, 1, ctx.ElemSize()), func() {
			pd, td := pooled.Data(), m.pooledTanh.Data()
			for i, v := range pd {
				td[i] = tanh32(v)
			}
		})
	nspLogits := m.NSP.Forward(ctx, m.pooledTanh)
	m.nspProbs = tensor.New(b.B, 2)
	var nspLoss float64
	ctx.Prof.Time("nsp_xent_fwd", profile.CatOutput, profile.Forward,
		kernels.EWFLOPs(b.B*2, 4), kernels.EWBytes(b.B*2, 1, 1, ctx.ElemSize()), func() {
			if m.accum.active {
				m.accum.nspSum, m.accum.nspSeen = kernels.CrossEntropySumForward(
					m.nspProbs.Data(), nspLogits.Data(), b.NSPLabels, b.B, 2,
					m.accum.nspSum, m.accum.nspSeen)
			} else {
				nspLoss = kernels.CrossEntropyForward(m.nspProbs.Data(), nspLogits.Data(), b.NSPLabels, b.B, 2)
			}
		})

	return mlmLoss + nspLoss
}

// Backward backpropagates the combined loss, accumulating all parameter
// gradients. It must follow a Forward on the same batch.
func (m *BERT) Backward(ctx *nn.Ctx) {
	if m.batch == nil {
		panic("model: Backward called before Forward")
	}
	b := m.batch
	cfg := m.Config
	es := ctx.ElemSize()

	// MLM head backward.
	dLogits := tensor.New(b.B*b.N, cfg.Vocab)
	nl := b.B * b.N * cfg.Vocab
	ctx.Prof.Time("mlm_xent_bwd", profile.CatOutput, profile.Backward,
		kernels.EWFLOPs(nl, 2), kernels.EWBytes(nl, 1, 1, es), func() {
			if m.accum.active {
				// Normalize by the FULL batch's scored-row count so the
				// summed micro-batch gradients match one full-batch step.
				kernels.CrossEntropyBackwardCount(dLogits.Data(), m.mlmProbs.Data(), b.MLMTargets, b.B*b.N, cfg.Vocab, m.accum.mlmTotal)
			} else {
				kernels.CrossEntropyBackward(dLogits.Data(), m.mlmProbs.Data(), b.MLMTargets, b.B*b.N, cfg.Vocab)
			}
			if s := ctx.EffectiveLossScale(); s != 1 {
				kernels.Scale(dLogits.Data(), dLogits.Data(), s)
			}
		})
	dx := m.MLMDecoder.Backward(ctx, dLogits)
	dx = m.MLMLN.Backward(ctx, dx)
	dx = m.MLMAct.Backward(ctx, dx)
	dSeq := m.MLMDense.Backward(ctx, dx)

	// NSP head backward.
	dNSPLogits := tensor.New(b.B, 2)
	ctx.Prof.Time("nsp_xent_bwd", profile.CatOutput, profile.Backward,
		kernels.EWFLOPs(b.B*2, 2), kernels.EWBytes(b.B*2, 1, 1, es), func() {
			if m.accum.active {
				kernels.CrossEntropyBackwardCount(dNSPLogits.Data(), m.nspProbs.Data(), b.NSPLabels, b.B, 2, m.accum.nspTotal)
			} else {
				kernels.CrossEntropyBackward(dNSPLogits.Data(), m.nspProbs.Data(), b.NSPLabels, b.B, 2)
			}
			if s := ctx.EffectiveLossScale(); s != 1 {
				kernels.Scale(dNSPLogits.Data(), dNSPLogits.Data(), s)
			}
		})
	dPooledTanh := m.NSP.Backward(ctx, dNSPLogits)
	np := b.B * cfg.DModel
	ctx.Prof.Time("pooler_tanh_bwd", profile.CatOutput, profile.Backward,
		kernels.EWFLOPs(np, 3), kernels.EWBytes(np, 2, 1, es), func() {
			dd, td := dPooledTanh.Data(), m.pooledTanh.Data()
			for i := range dd {
				dd[i] *= 1 - td[i]*td[i]
			}
		})
	dCLS := m.Pooler.Backward(ctx, dPooledTanh)
	ctx.Prof.Time("cls_scatter", profile.CatOutput, profile.Backward,
		kernels.EWFLOPs(b.B*cfg.DModel, 1), kernels.EWBytes(b.B*cfg.DModel, 2, 1, es), func() {
			for s := 0; s < b.B; s++ {
				dst := dSeq.Row(s * b.N)
				src := dCLS.Row(s)
				for j := range src {
					dst[j] += src[j]
				}
			}
		})

	// All head gradients are final once the CLS path has backpropagated.
	m.fireGrad(0)

	// Encoder layers in reverse, with optional recompute-from-checkpoint.
	if m.CheckpointEvery > 0 {
		m.backwardWithCheckpoints(ctx, dSeq)
	} else {
		for i := len(m.Layers) - 1; i >= 0; i-- {
			dSeq = m.Layers[i].Backward(ctx, dSeq)
			m.fireGrad(1 + (len(m.Layers) - 1 - i))
		}
		m.Embed.Backward(ctx, dSeq)
		m.finishEmbedGrads(ctx)
	}

	m.batch, m.seqOut, m.mlmProbs, m.nspProbs, m.pooledTanh = nil, nil, nil, nil, nil
}

// finishEmbedGrads merges the token-table scatter accumulator into the
// tied embedding/decoder gradient once the iteration's gradients are
// complete, then fires the embedding gradient group. Under accumulation
// both happen only on the final micro-batch.
func (m *BERT) finishEmbedGrads(ctx *nn.Ctx) {
	if !m.accum.active || m.accum.last {
		m.Embed.FlushTokScatter(ctx)
	}
	m.fireGrad(1 + len(m.Layers))
}

// backwardWithCheckpoints re-executes each checkpoint segment's forward
// pass (with dropout masks replayed) before backpropagating it — the
// recomputation the paper measures as ~33% more kernels and ~27% more
// runtime (Section 4).
func (m *BERT) backwardWithCheckpoints(ctx *nn.Ctx, dSeq *tensor.Tensor) {
	b := m.batch
	k := m.CheckpointEvery
	nSeg := len(m.ckptInputs)
	for seg := nSeg - 1; seg >= 0; seg-- {
		first := seg * k
		last := first + k - 1
		if last >= len(m.Layers) {
			last = len(m.Layers) - 1
		}
		// Recompute the segment forward from its checkpointed input. The
		// final segment's activations are still live from the main
		// forward pass, so it needs no recompute.
		if seg != nSeg-1 {
			ctx.Recompute = true
			h := m.ckptInputs[seg]
			if h == nil {
				// Spilled checkpoint: restore into one reused buffer — only
				// a single segment input is ever resident during backward.
				rows := b.B * b.N
				if m.spillBuf == nil || m.spillBuf.Dim(0) != rows || m.spillBuf.Dim(1) != m.Config.DModel {
					m.spillBuf = tensor.New(rows, m.Config.DModel)
				}
				h = m.spillBuf
				ctx.Prof.Time("spill_ckpt_read", profile.CatOther, profile.Backward,
					0, int64(h.Size())*4, func() {
						m.CkptSpill.Restore(seg, h.Data())
					})
			}
			for i := first; i <= last; i++ {
				h = m.Layers[i].Forward(ctx, h, b.B, b.N, b.Mask)
			}
			ctx.Recompute = false
		}
		for i := last; i >= first; i-- {
			dSeq = m.Layers[i].Backward(ctx, dSeq)
			m.fireGrad(1 + (len(m.Layers) - 1 - i))
		}
	}
	m.Embed.Backward(ctx, dSeq)
	m.finishEmbedGrads(ctx)
	m.ckptInputs = m.ckptInputs[:0]
}

func (m *BERT) fireGrad(group int) {
	// Under gradient accumulation a group's gradients are final only once
	// the LAST micro-batch has backpropagated through it.
	if m.GradHook != nil && (!m.accum.active || m.accum.last) {
		m.GradHook(group)
	}
}

// GradGroups partitions the trainable parameters into
// gradient-completion groups in the order Backward finalizes them: the
// output heads first, then the encoder layers from last to first, then
// the embedding. The tied MLM decoder weight lives in the embedding
// group — its gradient receives a contribution from the decoder backward
// early, but is final only after the embedding backward at the very end
// of backprop. Every Params() element appears in exactly one group;
// GradHook fires with these indices.
func (m *BERT) GradGroups() [][]*nn.Param {
	embed := m.Embed.Params()
	inEmbed := make(map[*nn.Param]bool, len(embed))
	for _, p := range embed {
		inEmbed[p] = true
	}
	var heads []*nn.Param
	for _, ps := range [][]*nn.Param{
		m.MLMDense.Params(), m.MLMLN.Params(), m.MLMDecoder.Params(),
		m.Pooler.Params(), m.NSP.Params(),
	} {
		for _, p := range ps {
			if !inEmbed[p] {
				heads = append(heads, p)
			}
		}
	}
	groups := make([][]*nn.Param, 0, 2+len(m.Layers))
	groups = append(groups, heads)
	for i := len(m.Layers) - 1; i >= 0; i-- {
		groups = append(groups, m.Layers[i].Params())
	}
	return append(groups, embed)
}

// Step runs one full training iteration's forward and backward passes and
// returns the loss. Parameter gradients accumulate; the optimizer update
// is the caller's job (internal/optim), matching the paper's FWD/BWD/
// update decomposition.
func (m *BERT) Step(ctx *nn.Ctx, b *data.Batch) float64 {
	ctx.Prof.BeginIteration()
	sp := ctx.StartSpan("fwd")
	loss := m.Forward(ctx, b)
	sp.End()
	sp = ctx.StartSpan("bwd")
	m.Backward(ctx)
	sp.End()
	return loss
}

// StepAccum runs one logical training iteration of batch b as accumSteps
// sequential micro-batches of B/accumSteps sequences each, summing
// parameter gradients across the micro-batches; the caller applies the
// optimizer once afterwards, exactly as after Step. With dropout disabled
// (DropProb 0 — dropout consumes no RNG then) and a forced GEMM path, the
// accumulated gradients and the returned loss are BITWISE-identical to
// m.Step(ctx, b): every cross-token reduction in the engine is a
// destination-seeded fold in token order, so splitting the token range
// over micro-batches reassociates nothing (pinned in internal/audit).
// Under GEMMPathAuto the size-based routing may pick different engines
// for micro vs full shapes, which is still valid training but not
// bitwise. GradHook fires only during the last micro-batch, when
// gradients are final.
func (m *BERT) StepAccum(ctx *nn.Ctx, b *data.Batch, accumSteps int) float64 {
	if accumSteps <= 1 {
		return m.Step(ctx, b)
	}
	if b.B%accumSteps != 0 {
		panic(fmt.Sprintf("model: StepAccum batch B=%d not divisible into %d micro-steps", b.B, accumSteps))
	}
	micro := b.B / accumSteps
	m.accum = accumState{
		active:   true,
		mlmTotal: b.MaskedCount(),
		nspTotal: b.B,
	}
	ctx.Prof.BeginIteration()
	for s := 0; s < accumSteps; s++ {
		m.accum.last = s == accumSteps-1
		mb := b.Slice(s*micro, (s+1)*micro)
		sp := ctx.StartSpan("fwd")
		m.Forward(ctx, mb)
		sp.End()
		sp = ctx.StartSpan("bwd")
		m.Backward(ctx)
		sp.End()
	}
	var loss float64
	if m.accum.mlmTotal > 0 {
		loss += m.accum.mlmSum / float64(m.accum.mlmTotal)
	}
	if m.accum.nspTotal > 0 {
		loss += m.accum.nspSum / float64(m.accum.nspTotal)
	}
	m.accum = accumState{}
	return loss
}

// Params returns every trainable parameter of the model exactly once
// (the tied MLM decoder weight appears only under the embedding).
func (m *BERT) Params() []*nn.Param {
	ps := m.Embed.Params()
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	ps = append(ps, m.MLMDense.Params()...)
	ps = append(ps, m.MLMLN.Params()...)
	ps = append(ps, m.MLMDecoder.Params()...)
	ps = append(ps, m.Pooler.Params()...)
	ps = append(ps, m.NSP.Params()...)

	seen := make(map[*nn.Param]bool, len(ps))
	uniq := ps[:0]
	for _, p := range ps {
		if !seen[p] {
			seen[p] = true
			uniq = append(uniq, p)
		}
	}
	return uniq
}

// NumParams returns the total trainable-parameter count.
func (m *BERT) NumParams() int {
	total := 0
	for _, p := range m.Params() {
		total += p.Size()
	}
	return total
}

// ZeroGrads clears all parameter gradients, including any pending
// token-scatter accumulation from an abandoned half-iteration.
func (m *BERT) ZeroGrads() {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
	m.Embed.DropTokScatter()
}

func tanh32(x float32) float32 {
	return float32(math.Tanh(float64(x)))
}
