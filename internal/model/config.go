// Package model assembles the full BERT pre-training network of Fig. 2:
// the embedding layer, N Transformer encoder layers, and the output heads
// for the two unsupervised tasks (masked-word prediction and next-sentence
// prediction), with a complete hand-written backward pass and optional
// activation checkpointing.
package model

import "fmt"

// Config holds BERT's hyperparameters using the paper's symbols
// (Table 2a): N Transformer layers of hidden size d_model with h attention
// heads and intermediate dimension d_ff.
type Config struct {
	Vocab     int
	MaxPos    int
	NumLayers int // N
	DModel    int // d_model
	Heads     int // h
	DFF       int // d_ff, usually 4·d_model
	DropProb  float32

	// Causal turns every layer's attention into decoder-style masked
	// attention (GPT-family networks, Section 2.3). It zeros certain
	// matrix elements but changes no kernel shapes, which is why the
	// paper's training characterization covers decoders too.
	Causal bool

	// FusedAttention replaces the scale/mask/softmax kernel sequence with
	// one fused kernel (the Section 6.1.1 software optimization).
	FusedAttention bool
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Vocab < 8:
		return fmt.Errorf("model: vocab %d too small", c.Vocab)
	case c.MaxPos < 4:
		return fmt.Errorf("model: max position %d too small", c.MaxPos)
	case c.NumLayers < 1:
		return fmt.Errorf("model: layer count %d < 1", c.NumLayers)
	case c.DModel < 1 || c.Heads < 1 || c.DModel%c.Heads != 0:
		return fmt.Errorf("model: d_model %d not divisible by %d heads", c.DModel, c.Heads)
	case c.DFF < 1:
		return fmt.Errorf("model: d_ff %d < 1", c.DFF)
	case c.DropProb < 0 || c.DropProb >= 1:
		return fmt.Errorf("model: dropout %v outside [0,1)", c.DropProb)
	}
	return nil
}

// BERTLarge is the configuration the paper studies (Section 3.1.3):
// 24 layers, d_model 1024, 16 heads, d_ff 4096, ~340M parameters.
func BERTLarge() Config {
	return Config{Vocab: 30522, MaxPos: 512, NumLayers: 24, DModel: 1024, Heads: 16, DFF: 4096, DropProb: 0.1}
}

// BERTBase is the smaller published configuration: 12 layers, d_model 768,
// 12 heads (~110M parameters).
func BERTBase() Config {
	return Config{Vocab: 30522, MaxPos: 512, NumLayers: 12, DModel: 768, Heads: 12, DFF: 3072, DropProb: 0.1}
}

// MegatronBERT approximates the paper's C3 configuration (Fig. 9): a
// Megatron-LM-like model with 2× BERT-Large's hidden dimension.
func MegatronBERT() Config {
	return Config{Vocab: 30522, MaxPos: 512, NumLayers: 24, DModel: 2048, Heads: 32, DFF: 8192, DropProb: 0.1}
}

// GPTMedium approximates a GPT-2-Medium-class decoder: the same
// Transformer geometry as BERT-Large with causal attention and a larger
// vocabulary. Training cost structure matches the encoder, as Section 2.3
// observes.
func GPTMedium() Config {
	return Config{Vocab: 50260, MaxPos: 1024, NumLayers: 24, DModel: 1024, Heads: 16, DFF: 4096, DropProb: 0.1, Causal: true}
}

// Tiny returns a reduced-scale configuration the pure-Go engine can train
// quickly; used by tests, examples, and benches.
func Tiny() Config {
	return Config{Vocab: 1000, MaxPos: 64, NumLayers: 2, DModel: 64, Heads: 4, DFF: 256, DropProb: 0.1}
}

// ParamCount returns the exact trainable-parameter count of the
// configuration, matching Params() of a constructed model.
func (c Config) ParamCount() int {
	d, ff := c.DModel, c.DFF
	// Embeddings: token + position + segment tables and LN.
	emb := (c.Vocab+c.MaxPos+2)*d + 2*d
	// Per encoder layer: 4 projections (d·d+d), FC1 (d·ff+ff),
	// FC2 (ff·d+d), 2 LayerNorms (2d each).
	layer := 4*(d*d+d) + (d*ff + ff) + (ff*d + d) + 4*d
	// Heads: MLM dense (d·d+d) + LN (2d) + decoder bias (vocab; the
	// decoder weight is tied to the token embedding) + pooler (d·d+d) +
	// NSP classifier (2d+2).
	heads := (d*d + d) + 2*d + c.Vocab + (d*d + d) + (2*d + 2)
	return emb + c.NumLayers*layer + heads
}
