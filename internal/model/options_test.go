package model

import (
	"bytes"
	"math"
	"testing"

	"demystbert/internal/nn"
)

func TestGPTMediumConfig(t *testing.T) {
	cfg := GPTMedium()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if !cfg.Causal {
		t.Fatal("GPT config must be causal")
	}
	// GPT-2 Medium is ~355M parameters.
	if p := cfg.ParamCount(); p < 340e6 || p > 380e6 {
		t.Fatalf("GPT-Medium parameter count %d outside ~355M", p)
	}
}

func TestCausalModelTrains(t *testing.T) {
	cfg := Tiny()
	cfg.Causal = true
	cfg.DropProb = 0
	m, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := nn.NewCtx(1)
	b := tinyBatch(cfg, 2, 16, 1)
	first := m.Step(ctx, b)
	for i := 0; i < 8; i++ {
		for _, p := range m.Params() {
			v, g := p.Value.Data(), p.Grad.Data()
			for j := range v {
				v[j] -= 0.05 * g[j]
			}
			p.ZeroGrad()
		}
		m.Step(ctx, b)
	}
	m.ZeroGrads()
	last := m.Forward(ctx, b)
	if last >= first {
		t.Fatalf("causal model loss did not drop: %v -> %v", first, last)
	}
}

func TestFusedAttentionModelMatchesUnfused(t *testing.T) {
	mk := func(fused bool) float64 {
		cfg := Tiny()
		cfg.DropProb = 0
		cfg.FusedAttention = fused
		m, _ := New(cfg, 9)
		ctx := nn.NewCtx(1)
		ctx.Train = false
		return m.Forward(ctx, tinyBatch(cfg, 2, 16, 1))
	}
	lu, lf := mk(false), mk(true)
	if math.Abs(lu-lf) > 1e-5 {
		t.Fatalf("fused attention changed the loss: %v vs %v", lu, lf)
	}
}

func TestFusedAttentionReducesModelKernels(t *testing.T) {
	run := func(fused bool) int {
		cfg := Tiny()
		cfg.FusedAttention = fused
		m, _ := New(cfg, 9)
		ctx := nn.NewCtx(1)
		m.Forward(ctx, tinyBatch(cfg, 2, 16, 1))
		return ctx.Prof.KernelCount()
	}
	if kf, ku := run(true), run(false); kf >= ku {
		t.Fatalf("fused attention must reduce kernel count: %d vs %d", kf, ku)
	}
}

func TestGradientAccumulation(t *testing.T) {
	// Accumulating gradients over K identical micro-batches then scaling
	// by 1/K must equal one micro-batch's gradients exactly.
	cfg := Tiny()
	cfg.DropProb = 0
	b := tinyBatch(cfg, 2, 16, 1)

	single, _ := New(cfg, 11)
	ctxS := nn.NewCtx(1)
	single.Step(ctxS, b)

	accum, _ := New(cfg, 11)
	ctxA := nn.NewCtx(1)
	const k = 3
	for i := 0; i < k; i++ {
		accum.Step(ctxA, b)
	}
	accum.ScaleGrads(1.0 / k)

	sp, ap := single.Params(), accum.Params()
	for i := range sp {
		sg, ag := sp[i].Grad.Data(), ap[i].Grad.Data()
		for j := range sg {
			if math.Abs(float64(sg[j]-ag[j])) > 1e-5*math.Max(1, math.Abs(float64(sg[j]))) {
				t.Fatalf("param %s grad[%d]: single %v vs accumulated/K %v", sp[i].Name, j, sg[j], ag[j])
			}
		}
	}
}

func TestGPTCheckpointRoundTrip(t *testing.T) {
	cfg := Tiny()
	cfg.Causal = true
	cfg.FusedAttention = true
	m, _ := New(cfg, 13)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Config.Causal || !loaded.Config.FusedAttention {
		t.Fatal("checkpoint lost causal/fused-attention flags")
	}
	if !loaded.Layers[0].Attn.Causal {
		t.Fatal("loaded layers are not causal")
	}
}
