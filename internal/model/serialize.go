package model

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Checkpoint format: a little-endian binary stream with a magic header,
// the model configuration, and every parameter tensor (name, shape,
// float32 data) in Params() order. The tied MLM decoder weight is stored
// once, under the embedding.
const (
	checkpointMagic   = 0x42455254 // "BERT"
	checkpointVersion = 1
)

// Save writes the model's configuration and parameters to w.
func (m *BERT) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, m.Config); err != nil {
		return err
	}
	for _, p := range m.Params() {
		if err := writeString(bw, p.Name); err != nil {
			return err
		}
		shape := p.Value.Shape()
		if err := binary.Write(bw, binary.LittleEndian, int32(len(shape))); err != nil {
			return err
		}
		for _, d := range shape {
			if err := binary.Write(bw, binary.LittleEndian, int32(d)); err != nil {
				return err
			}
		}
		for _, v := range p.Value.Data() {
			if err := binary.Write(bw, binary.LittleEndian, math.Float32bits(v)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load constructs a model from a checkpoint written by Save. The
// checkpoint's configuration takes precedence; parameter names and shapes
// are verified against the freshly built model.
func Load(r io.Reader) (*BERT, error) {
	br := bufio.NewReader(r)
	cfg, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	m, err := New(cfg, 0)
	if err != nil {
		return nil, fmt.Errorf("model: checkpoint config invalid: %w", err)
	}
	if err := m.readParams(br); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadParams restores a checkpoint written by Save into the receiver —
// the resume path for a model that has already trained. The checkpoint's
// configuration must equal the model's. Every parameter's pack-cache
// generation is bumped, so pre-packed GEMM panels built from the
// pre-restore weights are invalidated and the next step repacks from the
// restored values instead of silently reusing stale weights.
func (m *BERT) LoadParams(r io.Reader) error {
	br := bufio.NewReader(r)
	cfg, err := readHeader(br)
	if err != nil {
		return err
	}
	if cfg != m.Config {
		return fmt.Errorf("model: checkpoint config %+v does not match model config %+v", cfg, m.Config)
	}
	return m.readParams(br)
}

// readParams reads the parameter stream of a checkpoint into the model's
// existing tensors, verifying names and shapes in Params() order.
func (m *BERT) readParams(br *bufio.Reader) error {
	for _, p := range m.Params() {
		name, err := readString(br)
		if err != nil {
			return fmt.Errorf("model: reading parameter name: %w", err)
		}
		if name != p.Name {
			return fmt.Errorf("model: checkpoint parameter %q, want %q (order mismatch)", name, p.Name)
		}
		var rank int32
		if err := binary.Read(br, binary.LittleEndian, &rank); err != nil {
			return err
		}
		if int(rank) != p.Value.Rank() {
			return fmt.Errorf("model: %s rank %d, want %d", name, rank, p.Value.Rank())
		}
		for i := 0; i < int(rank); i++ {
			var d int32
			if err := binary.Read(br, binary.LittleEndian, &d); err != nil {
				return err
			}
			if int(d) != p.Value.Dim(i) {
				return fmt.Errorf("model: %s dim %d is %d, want %d", name, i, d, p.Value.Dim(i))
			}
		}
		data := p.Value.Data()
		for i := range data {
			var bits uint32
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return fmt.Errorf("model: reading %s data: %w", name, err)
			}
			data[i] = math.Float32frombits(bits)
		}
		// Invalidate any packed-weight panels built from the pre-restore
		// values — a resumed run must repack from the loaded weights.
		p.BumpGen()
	}
	return nil
}

func writeHeader(w io.Writer, cfg Config) error {
	var flags int32
	if cfg.Causal {
		flags |= 1
	}
	if cfg.FusedAttention {
		flags |= 2
	}
	fields := []int32{
		checkpointMagic, checkpointVersion,
		int32(cfg.Vocab), int32(cfg.MaxPos), int32(cfg.NumLayers),
		int32(cfg.DModel), int32(cfg.Heads), int32(cfg.DFF), flags,
	}
	for _, f := range fields {
		if err := binary.Write(w, binary.LittleEndian, f); err != nil {
			return err
		}
	}
	return binary.Write(w, binary.LittleEndian, math.Float32bits(cfg.DropProb))
}

func readHeader(r io.Reader) (Config, error) {
	var fields [9]int32
	for i := range fields {
		if err := binary.Read(r, binary.LittleEndian, &fields[i]); err != nil {
			return Config{}, fmt.Errorf("model: reading checkpoint header: %w", err)
		}
	}
	if fields[0] != checkpointMagic {
		return Config{}, fmt.Errorf("model: not a checkpoint (magic %#x)", fields[0])
	}
	if fields[1] != checkpointVersion {
		return Config{}, fmt.Errorf("model: unsupported checkpoint version %d", fields[1])
	}
	var dropBits uint32
	if err := binary.Read(r, binary.LittleEndian, &dropBits); err != nil {
		return Config{}, err
	}
	return Config{
		Vocab:          int(fields[2]),
		MaxPos:         int(fields[3]),
		NumLayers:      int(fields[4]),
		DModel:         int(fields[5]),
		Heads:          int(fields[6]),
		DFF:            int(fields[7]),
		Causal:         fields[8]&1 != 0,
		FusedAttention: fields[8]&2 != 0,
		DropProb:       math.Float32frombits(dropBits),
	}, nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, int32(len(s))); err != nil {
		return err
	}
	_, err := w.Write([]byte(s))
	return err
}

func readString(r io.Reader) (string, error) {
	var n int32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n < 0 || n > 1<<16 {
		return "", fmt.Errorf("model: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
