package model

import (
	"math"
	"testing"

	"demystbert/internal/data"
	"demystbert/internal/kernels"
	"demystbert/internal/nn"
	"demystbert/internal/tensor"
)

func inferCtx() *nn.Ctx { return &nn.Ctx{Train: false} }

// mixedBatch builds a padded mixed-length batch of B sequences (lengths
// lens, padded to n) with the serving-style additive key mask, plus the
// per-sequence mask positions PredictMaskedAt is queried at. Each
// sequence is CLS + words with a couple of [MASK]s.
func mixedBatch(t *testing.T, cfg Config, n int, lens []int, seed uint64) (*data.Batch, [][]int) {
	t.Helper()
	rng := tensor.NewRNG(seed)
	B := len(lens)
	b := &data.Batch{
		B:      B,
		N:      n,
		Tokens: make([]int, B*n),
		// Segments stay zero; pad slots stay PadID.
		Segments: make([]int, B*n),
		Mask:     tensor.New(B, n),
	}
	positions := make([][]int, B)
	for s, ln := range lens {
		if ln > n {
			t.Fatalf("length %d > bucket %d", ln, n)
		}
		base := s * n
		b.Tokens[base] = data.ClsID
		for i := 1; i < ln; i++ {
			b.Tokens[base+i] = data.FirstWordID + rng.Intn(cfg.Vocab-data.FirstWordID)
		}
		// Two masks per sequence (one for length-2 sequences).
		b.Tokens[base+1] = data.MaskID
		positions[s] = []int{1}
		if ln > 3 {
			b.Tokens[base+ln-1] = data.MaskID
			positions[s] = append(positions[s], ln-1)
		}
		for i := ln; i < n; i++ {
			b.Mask.Set(-1e9, s, i)
		}
	}
	return b, positions
}

// serialBatch rebuilds sequence s of a padded batch at its natural
// length (no padding, no mask).
func serialBatch(b *data.Batch, s, ln int) *data.Batch {
	sb := &data.Batch{B: 1, N: ln, Tokens: make([]int, ln), Segments: make([]int, ln)}
	copy(sb.Tokens, b.Tokens[s*b.N:s*b.N+ln])
	copy(sb.Segments, b.Segments[s*b.N:s*b.N+ln])
	return sb
}

// TestPredictMaskedAtBucketedMatchesSerial is the serving-correctness
// keystone: a mixed-length batch padded to one bucket with key masks
// must predict exactly the tokens each request gets when run alone at
// its natural length, and the encoder outputs of real positions must
// agree numerically.
func TestPredictMaskedAtBucketedMatchesSerial(t *testing.T) {
	cfg := Tiny()
	cfg.FusedAttention = true
	m, err := New(cfg, 17)
	if err != nil {
		t.Fatal(err)
	}
	lens := []int{16, 9, 5, 12}
	batch, positions := mixedBatch(t, cfg, 16, lens, 99)

	batchSeq := m.EncodeEval(inferCtx(), batch)
	batchPreds := m.PredictMaskedAt(inferCtx(), batch, positions)

	for s, ln := range lens {
		sb := serialBatch(batch, s, ln)
		serialSeq := m.EncodeEval(inferCtx(), sb)
		for i := 0; i < ln; i++ {
			br, sr := batchSeq.Row(s*batch.N+i), serialSeq.Row(i)
			for j := range sr {
				if diff := math.Abs(float64(br[j] - sr[j])); diff > 1e-4 {
					t.Fatalf("seq %d pos %d dim %d: padded %g vs serial %g", s, i, j, br[j], sr[j])
				}
			}
		}
		serialPreds := m.PredictMaskedAt(inferCtx(), sb, [][]int{positions[s]})
		for i := range positions[s] {
			if batchPreds[s][i] != serialPreds[0][i] {
				t.Errorf("seq %d mask %d: batched predicts %d, serial predicts %d", s, i, batchPreds[s][i], serialPreds[0][i])
			}
		}
	}
}

// TestPredictMaskedAtAgreesWithPredictMasked: the serving entry point
// and the existing training-side inference API must agree on a full
// (unpadded) batch when queried at the same positions.
func TestPredictMaskedAtAgreesWithPredictMasked(t *testing.T) {
	cfg := Tiny()
	cfg.FusedAttention = true
	m, err := New(cfg, 23)
	if err != nil {
		t.Fatal(err)
	}
	const B, n = 2, 16
	rng := tensor.NewRNG(5)
	b := &data.Batch{
		B: B, N: n,
		Tokens:     make([]int, B*n),
		Segments:   make([]int, B*n),
		MLMTargets: make([]int, B*n),
		NSPLabels:  make([]int, B), // PredictMasked runs the full pretrain forward
	}
	positions := make([][]int, B)
	for s := 0; s < B; s++ {
		base := s * n
		b.Tokens[base] = data.ClsID
		for i := 1; i < n; i++ {
			b.Tokens[base+i] = data.FirstWordID + rng.Intn(cfg.Vocab-data.FirstWordID)
		}
		for i := range b.MLMTargets[base : base+n] {
			b.MLMTargets[base+i] = kernels.IgnoreIndex
		}
		for _, p := range []int{2, 7, n - 1} {
			b.Tokens[base+p] = data.MaskID
			b.MLMTargets[base+p] = data.FirstWordID // any real target; only position matters
			positions[s] = append(positions[s], p)
		}
	}

	got := m.PredictMaskedAt(inferCtx(), b, positions)
	want := m.PredictMasked(inferCtx(), b)
	for s := range positions {
		for i, p := range positions[s] {
			if w := want[s*n+p]; got[s][i] != w {
				t.Errorf("seq %d pos %d: PredictMaskedAt %d, PredictMasked %d", s, p, got[s][i], w)
			}
		}
	}
}

// TestPredictMaskedAtEmptyPositions: sequences with no queried
// positions cost no head work and return empty rows.
func TestPredictMaskedAtEmptyPositions(t *testing.T) {
	cfg := Tiny()
	m, err := New(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	batch, _ := mixedBatch(t, cfg, 8, []int{5, 7}, 1)
	out := m.PredictMaskedAt(inferCtx(), batch, [][]int{nil, nil})
	if len(out) != 2 || out[0] != nil || out[1] != nil {
		t.Fatalf("want two empty rows, got %v", out)
	}
}

// TestPredictMaskedAtValidation: malformed queries panic loudly instead
// of reading out-of-range rows.
func TestPredictMaskedAtValidation(t *testing.T) {
	cfg := Tiny()
	m, err := New(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	batch, _ := mixedBatch(t, cfg, 8, []int{5}, 1)
	for name, positions := range map[string][][]int{
		"wrong sequence count": {{1}, {1}},
		"position past bucket": {{8}},
		"negative position":    {{-1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			m.PredictMaskedAt(inferCtx(), batch, positions)
		}()
	}
}
