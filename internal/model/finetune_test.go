package model

import (
	"math"
	"testing"

	"demystbert/internal/data"
	"demystbert/internal/nn"
	"demystbert/internal/profile"
)

func newFineTuner(t *testing.T, cfg Config) *FineTuner {
	t.Helper()
	base, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	return NewFineTuner(base, 2)
}

func TestFineTunerInitialLossNearChance(t *testing.T) {
	cfg := Tiny()
	cfg.DropProb = 0
	f := newFineTuner(t, cfg)
	b := data.NewGenerator(cfg.Vocab, 0.15, 1).NextQA(2, 16)
	loss := f.Forward(nn.NewCtx(1), b)
	chance := math.Log(16) // uniform over n positions
	if loss < 0.5*chance || loss > 1.5*chance {
		t.Fatalf("initial span loss %v far from chance %v", loss, chance)
	}
}

func TestFineTuningReducesLoss(t *testing.T) {
	cfg := Tiny()
	cfg.DropProb = 0
	f := newFineTuner(t, cfg)
	ctx := nn.NewCtx(1)
	b := data.NewGenerator(cfg.Vocab, 0.15, 1).NextQA(2, 16)

	const lr = 0.05
	first := f.Step(ctx, b)
	for i := 0; i < 12; i++ {
		for _, p := range f.Params() {
			v, g := p.Value.Data(), p.Grad.Data()
			for j := range v {
				v[j] -= lr * g[j]
			}
		}
		f.ZeroGrads()
		f.Step(ctx, b)
	}
	f.ZeroGrads()
	last := f.Forward(ctx, b)
	if last >= first*0.7 {
		t.Fatalf("fine-tuning loss did not drop: %v -> %v", first, last)
	}
}

func TestFineTunerSharesEncoderWithBase(t *testing.T) {
	cfg := Tiny()
	f := newFineTuner(t, cfg)
	b := data.NewGenerator(cfg.Vocab, 0.15, 1).NextQA(2, 16)
	f.Step(nn.NewCtx(1), b)
	// Encoder weights must have received gradient through the span head.
	got := false
	for _, p := range f.Base.Layers[0].Attn.Wq.W.Grad.Data() {
		if p != 0 {
			got = true
			break
		}
	}
	if !got {
		t.Fatal("encoder received no gradient during fine-tuning")
	}
	// Pre-training heads are excluded from fine-tuning parameters.
	for _, p := range f.Params() {
		if p == f.Base.Pooler.W || p == f.Base.MLMDense.W {
			t.Fatal("pre-training head parameters leaked into fine-tuning")
		}
	}
}

func TestFineTunerOutputLayerIsNegligible(t *testing.T) {
	// Section 7: the SQuAD head is simpler than the pre-training tasks;
	// the Output class share of a fine-tuning profile must be tiny.
	cfg := Tiny()
	f := newFineTuner(t, cfg)
	ctx := nn.NewCtx(1)
	f.Step(ctx, data.NewGenerator(cfg.Vocab, 0.15, 1).NextQA(2, 16))
	sum := ctx.Prof.Summarize()
	if s := sum.Share(profile.CatOutput); s > 0.10 {
		t.Fatalf("fine-tuning output-head share %.3f should be negligible", s)
	}
	// Transformer kernels (GEMM categories) still dominate.
	if sum.GEMMShare() < 0.3 {
		t.Fatalf("GEMM share %.3f; transformer work should dominate fine-tuning", sum.GEMMShare())
	}
}

func TestFineTunerMemorizesSpan(t *testing.T) {
	cfg := Tiny()
	cfg.DropProb = 0
	f := newFineTuner(t, cfg)
	ctx := nn.NewCtx(1)
	b := data.NewGenerator(cfg.Vocab, 0.15, 1).NextQA(1, 16)

	const lr = 0.05
	for i := 0; i < 60; i++ {
		f.Step(ctx, b)
		for _, p := range f.Params() {
			v, g := p.Value.Data(), p.Grad.Data()
			for j := range v {
				v[j] -= lr * g[j]
			}
		}
		f.ZeroGrads()
	}
	starts, ends := f.PredictSpan(ctx, b)
	if starts[0] != b.StartPos[0] || ends[0] != b.EndPos[0] {
		t.Fatalf("failed to memorize span: predicted (%d,%d), want (%d,%d)",
			starts[0], ends[0], b.StartPos[0], b.EndPos[0])
	}
}

func TestFineTunerBackwardBeforeForwardPanics(t *testing.T) {
	f := newFineTuner(t, Tiny())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Backward(nn.NewCtx(1))
}

func TestPredictMaskedReturnsMaskedPositionsOnly(t *testing.T) {
	cfg := Tiny()
	m, _ := New(cfg, 1)
	gen := data.NewGenerator(cfg.Vocab, 0.15, 3)
	b := gen.Next(2, 16)
	preds := m.PredictMasked(nn.NewCtx(1), b)
	if len(preds) != b.MaskedCount() {
		t.Fatalf("got %d predictions, want %d", len(preds), b.MaskedCount())
	}
	for pos, id := range preds {
		if b.MLMTargets[pos] == -1 {
			t.Fatalf("prediction at unmasked position %d", pos)
		}
		if id < 0 || id >= cfg.Vocab {
			t.Fatalf("predicted id %d out of vocab", id)
		}
	}
}

func TestQABatchStructure(t *testing.T) {
	g := data.NewGenerator(500, 0.15, 1)
	b := g.NextQA(4, 24)
	for s := 0; s < 4; s++ {
		if b.Tokens[s*24] != data.ClsID {
			t.Fatal("QA sequence must start with CLS")
		}
		if b.StartPos[s] > b.EndPos[s] || b.EndPos[s] >= 24 {
			t.Fatalf("invalid span (%d, %d)", b.StartPos[s], b.EndPos[s])
		}
		// Span must lie in the context (segment 1).
		if b.Segments[s*24+b.StartPos[s]] != 1 {
			t.Fatal("answer span must lie inside the context segment")
		}
	}
}
