package model

import (
	"fmt"

	"demystbert/internal/data"
	"demystbert/internal/kernels"
	"demystbert/internal/nn"
	"demystbert/internal/profile"
	"demystbert/internal/tensor"
	"demystbert/internal/trace"
)

// This file is the frozen-weight inference surface of the model: a
// forward-only encoder pass plus an MLM head applied to just the
// positions a serving request asks about. It is the machinery behind
// PredictMasked restructured for serving: no loss, no NSP head, no
// full-vocabulary softmax over every position — the vocabulary
// projection (the single largest GEMM in the network) runs over the
// handful of masked rows instead of all B·n of them.

// EncodeEval runs the embedding and encoder stack in evaluation mode
// (dropout inactive; the fused Add&Norm epilogue path engages at full
// precision) and returns the sequence output [B·n, dModel]. The
// caller's ctx.Train flag is restored on return.
func (m *BERT) EncodeEval(ctx *nn.Ctx, b *data.Batch) *tensor.Tensor {
	prevTrain := ctx.Train
	ctx.Train = false
	defer func() { ctx.Train = prevTrain }()

	sp := ctx.StartSpan("embed")
	h := m.Embed.Forward(ctx, b.Tokens, b.Segments, b.B, b.N)
	sp.End()
	for i, layer := range m.Layers {
		// Recording gate keeps the layerName lookup (and any Sprintf
		// fallback) off the tracing-off path entirely.
		var ls trace.ActiveSpan
		if ctx.Tracer != nil && ctx.Span.Sampled() {
			ls = ctx.StartSpan(layerName(i))
		}
		h = layer.Forward(ctx, h, b.B, b.N, b.Mask)
		ls.End()
	}
	return h
}

// layerNames pre-renders span names for the layer depths real configs
// use, so the sampled path does not Sprintf per layer either.
var layerNames = [...]string{
	"layer0", "layer1", "layer2", "layer3", "layer4", "layer5",
	"layer6", "layer7", "layer8", "layer9", "layer10", "layer11",
	"layer12", "layer13", "layer14", "layer15", "layer16", "layer17",
	"layer18", "layer19", "layer20", "layer21", "layer22", "layer23",
}

func layerName(i int) string {
	if i >= 0 && i < len(layerNames) {
		return layerNames[i]
	}
	return fmt.Sprintf("layer%d", i)
}

// PredictMaskedAt runs a forward-only inference pass and returns, for
// every requested (sequence, position) pair, the argmax token id of the
// MLM head. positions[s] lists the query positions of sequence s (the
// serving scheduler puts each request's [MASK] locations here); the
// result is shaped exactly like positions. Softmax is monotonic, so the
// argmax is taken over raw logits and no probability pass runs at all.
func (m *BERT) PredictMaskedAt(ctx *nn.Ctx, b *data.Batch, positions [][]int) [][]int {
	if len(positions) != b.B {
		panic(fmt.Sprintf("model: PredictMaskedAt got positions for %d sequences, batch has %d", len(positions), b.B))
	}
	seq := m.EncodeEval(ctx, b)

	total := 0
	for s, ps := range positions {
		for _, p := range ps {
			if p < 0 || p >= b.N {
				panic(fmt.Sprintf("model: PredictMaskedAt position %d of sequence %d outside [0, %d)", p, s, b.N))
			}
		}
		total += len(ps)
	}
	out := make([][]int, b.B)
	if total == 0 {
		return out
	}

	// Gather just the queried rows; the whole MLM head then costs
	// O(total · vocab) instead of O(B·n · vocab).
	prevTrain := ctx.Train
	ctx.Train = false
	defer func() { ctx.Train = prevTrain }()
	d := m.Config.DModel
	gathered := tensor.New(total, d)
	es := ctx.ElemSize()
	ctx.Prof.Time("infer_gather", profile.CatOutput, profile.Forward,
		0, kernels.EWBytes(total*d, 1, 1, es), func() {
			row := 0
			for s, ps := range positions {
				for _, p := range ps {
					copy(gathered.Row(row), seq.Row(s*b.N+p))
					row++
				}
			}
		})

	var x *tensor.Tensor
	if ctx.MixedPrecision {
		x = m.MLMAct.Forward(ctx, m.MLMDense.Forward(ctx, gathered))
	} else {
		x = m.MLMDense.ForwardBiasGeLU(ctx, gathered, m.MLMAct)
	}
	x = m.MLMLN.Forward(ctx, x)
	logits := m.MLMDecoder.Forward(ctx, x)

	v := m.Config.Vocab
	row := 0
	ctx.Prof.Time("infer_argmax", profile.CatOutput, profile.Forward,
		kernels.EWFLOPs(total*v, 1), kernels.EWBytes(total*v, 1, 0, es), func() {
			ld := logits.Data()
			for s, ps := range positions {
				if len(ps) == 0 {
					continue
				}
				out[s] = make([]int, len(ps))
				for i := range ps {
					r := ld[row*v : (row+1)*v]
					best := 0
					for j, lv := range r {
						if lv > r[best] {
							best = j
						}
					}
					out[s][i] = best
					row++
				}
			}
		})
	return out
}

// WarmupInference pre-packs every weight the inference path consults —
// the Q/K/V/O projections and both FC layers of each encoder layer, the
// MLM dense layer, and the (embedding-tied) vocabulary decoder — for
// the GEMM engine the active path routes to. Serving calls this once at
// load, after SetGEMMPath, so steady-state traffic never takes a
// pack-cache miss: frozen weights never bump their generation, which is
// exactly the 100% reuse regime the pack cache was designed around.
// Returns the number of packs built.
func (m *BERT) WarmupInference() int {
	warmed := 0
	warm := func(l *nn.Linear) {
		l.WarmPack()
		warmed++
	}
	for _, layer := range m.Layers {
		warm(layer.Attn.Wq)
		warm(layer.Attn.Wk)
		warm(layer.Attn.Wv)
		warm(layer.Attn.Wo)
		warm(layer.FF.FC1)
		warm(layer.FF.FC2)
	}
	warm(m.MLMDense)
	warm(m.MLMDecoder)
	return warmed
}
