package model

import (
	"math"
	"testing"

	"demystbert/internal/data"
	"demystbert/internal/nn"
	"demystbert/internal/profile"
)

func tinyBatch(cfg Config, b, n int, seed uint64) *data.Batch {
	return data.NewGenerator(cfg.Vocab, 0.15, seed).Next(b, n)
}

func TestConfigValidation(t *testing.T) {
	good := Tiny()
	if err := good.Validate(); err != nil {
		t.Fatalf("Tiny config invalid: %v", err)
	}
	bad := []Config{
		{Vocab: 2, MaxPos: 64, NumLayers: 1, DModel: 8, Heads: 2, DFF: 16},
		{Vocab: 100, MaxPos: 2, NumLayers: 1, DModel: 8, Heads: 2, DFF: 16},
		{Vocab: 100, MaxPos: 64, NumLayers: 0, DModel: 8, Heads: 2, DFF: 16},
		{Vocab: 100, MaxPos: 64, NumLayers: 1, DModel: 9, Heads: 2, DFF: 16},
		{Vocab: 100, MaxPos: 64, NumLayers: 1, DModel: 8, Heads: 2, DFF: 0},
		{Vocab: 100, MaxPos: 64, NumLayers: 1, DModel: 8, Heads: 2, DFF: 16, DropProb: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestPresetConfigs(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"large", BERTLarge()}, {"base", BERTBase()}, {"megatron", MegatronBERT()}, {"tiny", Tiny()},
	} {
		if err := tc.cfg.Validate(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
	// The paper quotes ~340M parameters for BERT-Large.
	p := BERTLarge().ParamCount()
	if p < 330e6 || p > 345e6 {
		t.Errorf("BERT-Large parameter count %d outside ~330-345M", p)
	}
	if BERTLarge().DFF != 4*BERTLarge().DModel {
		t.Error("d_ff must be 4·d_model")
	}
}

func TestParamCountMatchesModel(t *testing.T) {
	cfg := Tiny()
	m, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.NumParams(), cfg.ParamCount(); got != want {
		t.Fatalf("model has %d params, Config.ParamCount says %d", got, want)
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	if _, err := New(Config{}, 1); err == nil {
		t.Fatal("New must reject invalid config")
	}
}

func TestInitialLossNearChance(t *testing.T) {
	cfg := Tiny()
	cfg.DropProb = 0
	m, _ := New(cfg, 1)
	ctx := nn.NewCtx(1)
	b := tinyBatch(cfg, 2, 16, 1)
	loss := m.Forward(ctx, b)
	// Chance level: ln(vocab) for MLM + ln(2) for NSP.
	chance := math.Log(float64(cfg.Vocab)) + math.Log(2)
	if loss < 0.5*chance || loss > 1.5*chance {
		t.Fatalf("initial loss %v far from chance %v", loss, chance)
	}
}

func TestStepProducesGradients(t *testing.T) {
	cfg := Tiny()
	m, _ := New(cfg, 1)
	ctx := nn.NewCtx(1)
	m.Step(ctx, tinyBatch(cfg, 2, 16, 1))
	nonzero := 0
	for _, p := range m.Params() {
		for _, g := range p.Grad.Data() {
			if g != 0 {
				nonzero++
				break
			}
		}
	}
	if nonzero < len(m.Params())*9/10 {
		t.Fatalf("only %d/%d params received gradient", nonzero, len(m.Params()))
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	cfg := Tiny()
	cfg.DropProb = 0 // deterministic descent
	m, _ := New(cfg, 1)
	ctx := nn.NewCtx(1)
	b := tinyBatch(cfg, 2, 16, 1)

	const lr = 0.05
	first := m.Step(ctx, b)
	for i := 0; i < 10; i++ {
		for _, p := range m.Params() {
			v, g := p.Value.Data(), p.Grad.Data()
			for j := range v {
				v[j] -= lr * g[j]
			}
			p.BumpGen() // manual in-place update: invalidate cached GEMM packs
			p.ZeroGrad()
		}
		m.Step(ctx, b)
	}
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
	last := m.Forward(ctx, b)
	if last >= first*0.8 {
		t.Fatalf("loss did not drop: %v -> %v", first, last)
	}
}

func TestCheckpointingGradientsIdentical(t *testing.T) {
	cfg := Tiny()
	cfg.NumLayers = 4
	b := tinyBatch(cfg, 2, 16, 1)

	run := func(ckpt int) (float64, []float32) {
		m, _ := New(cfg, 7)
		m.CheckpointEvery = ckpt
		ctx := nn.NewCtx(99) // same dropout stream both runs
		loss := m.Step(ctx, b)
		var grads []float32
		for _, p := range m.Params() {
			grads = append(grads, p.Grad.Data()...)
		}
		return loss, grads
	}
	lossA, gradsA := run(0)
	lossB, gradsB := run(2)
	if lossA != lossB {
		t.Fatalf("checkpointing changed loss: %v vs %v", lossA, lossB)
	}
	for i := range gradsA {
		if gradsA[i] != gradsB[i] {
			t.Fatalf("checkpointing changed gradient at %d: %v vs %v", i, gradsA[i], gradsB[i])
		}
	}
}

func TestCheckpointingIncreasesKernelCount(t *testing.T) {
	cfg := Tiny()
	cfg.NumLayers = 8
	b := tinyBatch(cfg, 2, 16, 1)

	run := func(ckpt int) int {
		m, _ := New(cfg, 7)
		m.CheckpointEvery = ckpt
		ctx := nn.NewCtx(99)
		m.Step(ctx, b)
		return ctx.Prof.KernelCount()
	}
	base := run(0)
	ck := run(2) // sqrt(8)≈3 checkpoints, recompute 3 of 4 segments
	increase := float64(ck-base) / float64(base)
	// The paper reports ~33% more kernels for BERT-Large; at this scale
	// the exact ratio depends on segment count — it must be clearly
	// positive and below the full-forward bound.
	if increase < 0.10 || increase > 0.50 {
		t.Fatalf("checkpoint kernel increase %.2f outside (0.10, 0.50); base=%d ck=%d", increase, base, ck)
	}
}

func TestProfileContainsAllCategories(t *testing.T) {
	cfg := Tiny()
	m, _ := New(cfg, 1)
	ctx := nn.NewCtx(1)
	m.Step(ctx, tinyBatch(cfg, 2, 16, 1))
	sum := ctx.Prof.Summarize()
	for _, cat := range []profile.Category{
		profile.CatLinear, profile.CatAttnBGEMM, profile.CatFCGEMM,
		profile.CatScaleMaskSM, profile.CatGeLU, profile.CatDRRCLN,
		profile.CatEmbedding, profile.CatOutput,
	} {
		if sum.ByCategory[cat].Kernels == 0 {
			t.Errorf("category %s missing from training profile", cat)
		}
	}
	if sum.ByPhase[profile.Forward].Kernels == 0 || sum.ByPhase[profile.Backward].Kernels == 0 {
		t.Error("both FWD and BWD phases must record kernels")
	}
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	m, _ := New(Tiny(), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Backward(nn.NewCtx(1))
}

func TestEvalModeDeterministic(t *testing.T) {
	cfg := Tiny()
	m, _ := New(cfg, 1)
	b := tinyBatch(cfg, 2, 16, 1)
	ctx := nn.NewCtx(1)
	ctx.Train = false
	l1 := m.Forward(ctx, b)
	l2 := m.Forward(ctx, b)
	if l1 != l2 {
		t.Fatalf("eval losses differ: %v vs %v", l1, l2)
	}
}

func TestZeroGrads(t *testing.T) {
	cfg := Tiny()
	m, _ := New(cfg, 1)
	m.Step(nn.NewCtx(1), tinyBatch(cfg, 2, 16, 1))
	m.ZeroGrads()
	for _, p := range m.Params() {
		for _, g := range p.Grad.Data() {
			if g != 0 {
				t.Fatal("ZeroGrads left nonzero gradient")
			}
		}
	}
}

// TestVarLenBatchTrains exercises the attention-mask path for real:
// heterogeneous-length padded sequences train without padding leaking
// into attention.
func TestVarLenBatchTrains(t *testing.T) {
	cfg := Tiny()
	cfg.DropProb = 0
	m, _ := New(cfg, 1)
	ctx := nn.NewCtx(1)
	b := data.NewGenerator(cfg.Vocab, 0.15, 21).NextVarLen(4, 16, 6)
	loss := m.Step(ctx, b)
	if loss <= 0 || math.IsNaN(loss) {
		t.Fatalf("var-len step loss %v", loss)
	}
	// Attention must give padded keys zero weight: check the first
	// layer's retained softmax output via a fresh forward with mask.
	for _, g := range m.Params()[0].Grad.Data()[:8] {
		if math.IsNaN(float64(g)) {
			t.Fatal("NaN gradient from padded batch")
		}
	}
}

func TestGradGroupsCoverParamsExactlyOnce(t *testing.T) {
	m, err := New(Tiny(), 5)
	if err != nil {
		t.Fatal(err)
	}
	groups := m.GradGroups()
	if want := 2 + len(m.Layers); len(groups) != want {
		t.Fatalf("got %d groups, want %d (heads + layers + embedding)", len(groups), want)
	}
	seen := map[*nn.Param]int{}
	total := 0
	for _, g := range groups {
		for _, p := range g {
			seen[p]++
			total++
		}
	}
	params := m.Params()
	if total != len(params) {
		t.Fatalf("groups hold %d params, Params() has %d", total, len(params))
	}
	for _, p := range params {
		if seen[p] != 1 {
			t.Errorf("param %s appears %d times in GradGroups", p.Name, seen[p])
		}
	}
	// The tied decoder weight must sit in the final (embedding) group.
	tied := m.MLMDecoder.W
	inLast := false
	for _, p := range groups[len(groups)-1] {
		if p == tied {
			inLast = true
		}
	}
	if !inLast {
		t.Fatal("tied MLM decoder weight missing from the embedding group")
	}
}

// GradHook must fire once per group, in order, and only after every
// gradient of the group is final: re-running the remaining backward
// must not change an already-announced group's gradients.
func TestGradHookFiresInOrderWithFinalGrads(t *testing.T) {
	for _, ckpt := range []int{0, 1} {
		cfg := Tiny()
		m, err := New(cfg, 6)
		if err != nil {
			t.Fatal(err)
		}
		m.CheckpointEvery = ckpt
		groups := m.GradGroups()
		b := tinyBatch(cfg, 2, 16, 7)
		ctx := nn.NewCtx(8)

		var fired []int
		snapshots := make(map[int][]float32)
		m.GradHook = func(g int) {
			fired = append(fired, g)
			var snap []float32
			for _, p := range groups[g] {
				snap = append(snap, p.Grad.Data()...)
			}
			snapshots[g] = snap
		}
		m.Step(ctx, b)

		if len(fired) != len(groups) {
			t.Fatalf("ckpt=%d: hook fired %d times for %d groups", ckpt, len(fired), len(groups))
		}
		for i, g := range fired {
			if g != i {
				t.Fatalf("ckpt=%d: firing order %v not sequential", ckpt, fired)
			}
		}
		for g := range groups {
			var now []float32
			for _, p := range groups[g] {
				now = append(now, p.Grad.Data()...)
			}
			for i := range now {
				if now[i] != snapshots[g][i] {
					t.Fatalf("ckpt=%d: group %d grad[%d] changed after hook: %v -> %v",
						ckpt, g, i, snapshots[g][i], now[i])
				}
			}
		}
	}
}
