package model

import (
	"math"
	"testing"

	"demystbert/internal/nn"
	"demystbert/internal/optim"
	"demystbert/internal/tensor"
)

// TestMixedPrecisionQuantizesActivations verifies reduced precision is
// numerically real: under MP, every layer output is exactly representable
// in binary16.
func TestMixedPrecisionQuantizesActivations(t *testing.T) {
	cfg := Tiny()
	cfg.DropProb = 0
	m, _ := New(cfg, 1)
	ctx := nn.NewCtx(1)
	ctx.MixedPrecision = true
	b := tinyBatch(cfg, 2, 16, 1)
	m.Forward(ctx, b)

	// The retained encoder output (LayerNorm output of the last layer)
	// must consist solely of F16-representable values.
	seq := m.seqOut
	for i, v := range seq.Data() {
		if q := tensor.ToF16(v).Float32(); q != v {
			t.Fatalf("MP activation[%d] = %v is not F16-representable (quantizes to %v)", i, v, q)
		}
	}
}

func TestMixedPrecisionDiffersFromFP32(t *testing.T) {
	cfg := Tiny()
	cfg.DropProb = 0
	run := func(mp bool) float64 {
		m, _ := New(cfg, 1)
		ctx := nn.NewCtx(1)
		ctx.MixedPrecision = mp
		return m.Forward(ctx, tinyBatch(cfg, 2, 16, 1))
	}
	fp32, fp16 := run(false), run(true)
	if fp32 == fp16 {
		t.Fatal("MP must change the numerics (quantized activations)")
	}
	// But not by much: half precision keeps ~3 decimal digits.
	if rel := math.Abs(fp32-fp16) / fp32; rel > 0.02 {
		t.Fatalf("MP loss deviates %.2f%% from FP32; quantization too destructive", 100*rel)
	}
}

// TestMixedPrecisionTrainingWithLossScaler runs the full authentic MP
// recipe: FP16 activation storage, scaled loss gradients, unscale-and-
// check, FP32 LAMB step — and the loss must still fall.
func TestMixedPrecisionTrainingWithLossScaler(t *testing.T) {
	cfg := Tiny()
	cfg.DropProb = 0
	m, _ := New(cfg, 1)
	ctx := nn.NewCtx(1)
	ctx.MixedPrecision = true
	b := tinyBatch(cfg, 2, 16, 1)

	scaler := optim.NewDynamicLossScaler()
	opt := optim.NewLAMB(0.01)

	first := math.Inf(1)
	last := 0.0
	for i := 0; i < 10; i++ {
		scaler.Arm(ctx)
		loss := m.Step(ctx, b)
		if i == 0 {
			first = loss
		}
		last = loss
		if scaler.UnscaleAndCheck(m.Params()) {
			opt.Step(ctx, m.Params())
		}
		m.ZeroGrads()
	}
	if last >= first {
		t.Fatalf("MP+scaler training loss did not fall: %v -> %v", first, last)
	}
	if scaler.Skipped > 2 {
		t.Fatalf("scaler skipped %d of 10 steps; scale management broken", scaler.Skipped)
	}
}

// TestLossScaleCancelsExactly: scaling the loss gradient by S and
// unscaling by 1/S must reproduce the unscaled gradients (floats: a power
// of two scale is exact).
func TestLossScaleCancelsExactly(t *testing.T) {
	cfg := Tiny()
	cfg.DropProb = 0
	b := tinyBatch(cfg, 2, 16, 1)

	grads := func(scale float32) []float32 {
		m, _ := New(cfg, 5)
		ctx := nn.NewCtx(1)
		ctx.LossScale = scale
		m.Step(ctx, b)
		if scale != 0 && scale != 1 {
			inv := 1 / scale
			for _, p := range m.Params() {
				g := p.Grad.Data()
				for i := range g {
					g[i] *= inv
				}
			}
		}
		var out []float32
		for _, p := range m.Params() {
			out = append(out, p.Grad.Data()...)
		}
		return out
	}
	plain := grads(1)
	scaled := grads(1 << 12)
	for i := range plain {
		if math.Abs(float64(plain[i]-scaled[i])) > 1e-7*math.Max(1, math.Abs(float64(plain[i]))) {
			t.Fatalf("grad[%d]: unscaled %v vs scaled-then-unscaled %v", i, plain[i], scaled[i])
		}
	}
}
