// Package profile implements the rocProf-equivalent kernel profiler used by
// the real-execution engine. Every kernel invocation records an Event with
// its wall-clock duration, floating-point operation count, and bytes moved;
// the package then aggregates events into the groupings used throughout the
// paper (per operator category, per training phase, per layer class) so
// that reduced-scale real runs can be compared against the analytical
// model's full-scale breakdowns.
package profile

import (
	"sort"
	"sync"
	"time"
)

// Phase identifies the part of a training iteration an event belongs to,
// mirroring the paper's FWD / BWD / update decomposition (Section 3.2).
type Phase int

const (
	Forward Phase = iota
	Backward
	Update
)

// String returns the phase's display name.
func (p Phase) String() string {
	switch p {
	case Forward:
		return "FWD"
	case Backward:
		return "BWD"
	case Update:
		return "UPD"
	default:
		return "???"
	}
}

// Category classifies a kernel into the operator classes of Figures 3, 4
// and 7 of the paper.
type Category string

const (
	// GEMM classes (Fig. 4 and 6).
	CatLinear    Category = "Linear"    // attention Q/K/V and output projections
	CatAttnBGEMM Category = "AttnBGEMM" // batched attention score / output GEMMs
	CatFCGEMM    Category = "FCGEMM"    // feed-forward FC-1 / FC-2 GEMMs

	// Non-GEMM transformer classes (Fig. 4 and 7).
	CatScaleMaskSM Category = "ScaleMaskDRSM" // scale, mask, dropout, softmax around attention scores
	CatGeLU        Category = "GeLU"
	CatDRRCLN      Category = "DRRCLN" // dropout + residual connection + layer norm

	// Model boundary layers (Fig. 3).
	CatEmbedding Category = "Embedding"
	CatOutput    Category = "Output" // masked-LM + NSP heads and loss

	// Optimizer (Fig. 3 and 7).
	CatLAMBStage1 Category = "LAMBStage1"
	CatLAMBStage2 Category = "LAMBStage2"
	CatOptimizer  Category = "Optimizer" // non-LAMB optimizers (Adam, SGD)

	// Distributed communication (Fig. 11).
	CatComm Category = "Comm"

	CatOther Category = "Other"
)

// IsGEMM reports whether the category is one of the three GEMM classes.
func (c Category) IsGEMM() bool {
	return c == CatLinear || c == CatAttnBGEMM || c == CatFCGEMM
}

// IsLAMB reports whether the category is an optimizer-update stage.
func (c Category) IsLAMB() bool {
	return c == CatLAMBStage1 || c == CatLAMBStage2
}

// Event is one recorded kernel invocation.
type Event struct {
	Kernel   string // kernel name, e.g. "sgemm_nt" or "layernorm_fwd"
	Category Category
	Phase    Phase
	Iter     int       // 1-based training iteration (0: outside any iteration)
	Start    time.Time // wall-clock start (zero if recorded manually)
	Duration time.Duration
	FLOPs    int64 // floating-point operations performed
	Bytes    int64 // bytes read + written (algorithmic, not cache traffic)
}

// Profiler collects Events. It is safe for concurrent use. A nil *Profiler
// is valid and records nothing, so instrumented code needs no nil checks.
type Profiler struct {
	mu     sync.Mutex
	events []Event
	iter   int
}

// New returns an empty profiler.
func New() *Profiler { return &Profiler{} }

// Record appends an event, stamping it with the current iteration unless
// the caller set Iter explicitly. Record on a nil profiler is a no-op.
func (p *Profiler) Record(e Event) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if e.Iter == 0 {
		e.Iter = p.iter
	}
	p.events = append(p.events, e)
	p.mu.Unlock()
}

// BeginIteration marks the start of the next training iteration; events
// recorded from now on carry its 1-based index, which WriteChromeTrace
// uses to nest kernels under iteration spans. On a nil profiler it is a
// no-op.
func (p *Profiler) BeginIteration() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.iter++
	p.mu.Unlock()
}

// Iteration returns the current 1-based iteration index (0 before the
// first BeginIteration).
func (p *Profiler) Iteration() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.iter
}

// Time runs f, measuring its wall-clock duration, and records an event with
// the given metadata. On a nil profiler it just runs f.
func (p *Profiler) Time(kernel string, cat Category, phase Phase, flops, bytes int64, f func()) {
	if p == nil {
		f()
		return
	}
	start := time.Now()
	f()
	p.Record(Event{
		Kernel:   kernel,
		Category: cat,
		Phase:    phase,
		Start:    start,
		Duration: time.Since(start),
		FLOPs:    flops,
		Bytes:    bytes,
	})
}

// Reset discards all recorded events and rewinds the iteration counter.
func (p *Profiler) Reset() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.events = p.events[:0]
	p.iter = 0
	p.mu.Unlock()
}

// Events returns a copy of all recorded events in record order.
func (p *Profiler) Events() []Event {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Event(nil), p.events...)
}

// KernelCount returns the number of recorded events.
func (p *Profiler) KernelCount() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.events)
}

// Stat is an aggregate over a set of events.
type Stat struct {
	Kernels  int
	Duration time.Duration
	FLOPs    int64
	Bytes    int64
}

func (s *Stat) add(e Event) {
	s.Kernels++
	s.Duration += e.Duration
	s.FLOPs += e.FLOPs
	s.Bytes += e.Bytes
}

// Intensity returns the aggregate arithmetic intensity in FLOPs per byte,
// or zero if no bytes were recorded.
func (s Stat) Intensity() float64 {
	if s.Bytes == 0 {
		return 0
	}
	return float64(s.FLOPs) / float64(s.Bytes)
}

// Summary is the aggregation of a profile by category, by phase, and in
// total.
type Summary struct {
	Total      Stat
	ByCategory map[Category]Stat
	ByPhase    map[Phase]Stat
}

// Summarize aggregates all recorded events.
func (p *Profiler) Summarize() Summary { return Summarize(p.Events()) }

// Summarize aggregates an arbitrary event slice — e.g. one training
// step's suffix of a profiler's event log, which the per-step JSONL
// emitter reports on.
func Summarize(events []Event) Summary {
	s := Summary{
		ByCategory: make(map[Category]Stat),
		ByPhase:    make(map[Phase]Stat),
	}
	for _, e := range events {
		s.Total.add(e)
		cs := s.ByCategory[e.Category]
		cs.add(e)
		s.ByCategory[e.Category] = cs
		ps := s.ByPhase[e.Phase]
		ps.add(e)
		s.ByPhase[e.Phase] = ps
	}
	return s
}

// Share returns category c's fraction of total recorded duration, in
// [0, 1]. It returns zero when nothing was recorded.
func (s Summary) Share(c Category) float64 {
	if s.Total.Duration == 0 {
		return 0
	}
	return float64(s.ByCategory[c].Duration) / float64(s.Total.Duration)
}

// GEMMShare returns the fraction of total duration spent in GEMM
// categories.
func (s Summary) GEMMShare() float64 {
	if s.Total.Duration == 0 {
		return 0
	}
	var d time.Duration
	for c, st := range s.ByCategory {
		if c.IsGEMM() {
			d += st.Duration
		}
	}
	return float64(d) / float64(s.Total.Duration)
}

// Categories returns the categories present in the summary, sorted by
// descending duration (ties broken by name for determinism).
func (s Summary) Categories() []Category {
	cats := make([]Category, 0, len(s.ByCategory))
	for c := range s.ByCategory {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool {
		di, dj := s.ByCategory[cats[i]].Duration, s.ByCategory[cats[j]].Duration
		if di != dj {
			return di > dj
		}
		return cats[i] < cats[j]
	})
	return cats
}
