package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// chromeTraceEvent is one entry of the Chrome trace-event format
// (chrome://tracing, Perfetto), the de-facto interchange format GPU
// profilers including rocProf export to.
type chromeTraceEvent struct {
	Name     string            `json:"name"`
	Category string            `json:"cat"`
	Phase    string            `json:"ph"`
	TSMicros float64           `json:"ts"`
	DurMicro float64           `json:"dur"`
	PID      int               `json:"pid"`
	TID      int               `json:"tid"`
	Args     map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace exports the recorded events as a Chrome trace-event
// JSON array, loadable in chrome://tracing or Perfetto. Each training
// phase renders as its own track (tid); kernel FLOPs and bytes appear as
// event args. Events recorded without a start timestamp are laid out
// back-to-back.
func (p *Profiler) WriteChromeTrace(w io.Writer) error {
	events := p.Events()
	out := make([]chromeTraceEvent, 0, len(events))

	var origin time.Time
	for _, e := range events {
		if !e.Start.IsZero() {
			if origin.IsZero() || e.Start.Before(origin) {
				origin = e.Start
			}
		}
	}
	var synthetic time.Duration
	for _, e := range events {
		var ts float64
		if e.Start.IsZero() {
			ts = float64(synthetic.Microseconds())
			synthetic += e.Duration
		} else {
			ts = float64(e.Start.Sub(origin).Microseconds())
		}
		out = append(out, chromeTraceEvent{
			Name:     e.Kernel,
			Category: string(e.Category),
			Phase:    "X",
			TSMicros: ts,
			DurMicro: float64(e.Duration.Microseconds()),
			PID:      1,
			TID:      int(e.Phase) + 1,
			Args: map[string]string{
				"flops": fmt.Sprint(e.FLOPs),
				"bytes": fmt.Sprint(e.Bytes),
				"phase": e.Phase.String(),
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
