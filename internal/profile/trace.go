package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// chromeTraceEvent is one entry of the Chrome trace-event format
// (chrome://tracing, Perfetto), the de-facto interchange format GPU
// profilers including rocProf export to.
type chromeTraceEvent struct {
	Name     string            `json:"name"`
	Category string            `json:"cat"`
	Phase    string            `json:"ph"`
	TSMicros float64           `json:"ts"`
	DurMicro float64           `json:"dur"`
	PID      int               `json:"pid"`
	TID      int               `json:"tid"`
	Args     map[string]string `json:"args,omitempty"`
}

// span is the envelope of a group of laid-out events.
type span struct {
	start, end float64
	present    bool
}

func (s *span) cover(ts, dur float64) {
	if !s.present || ts < s.start {
		s.start = ts
	}
	if !s.present || ts+dur > s.end {
		s.end = ts + dur
	}
	s.present = true
}

// WriteChromeTrace exports the recorded events as a Chrome trace-event
// JSON array, loadable in chrome://tracing or Perfetto. Events nest
// three deep on one track, the paper's Fig. 3 hierarchy: an enclosing
// span per training iteration (see Profiler.BeginIteration), a span per
// training phase within it (FWD/BWD/UPD), and the kernel slices inside;
// kernel FLOPs and bytes appear as event args.
//
// Events recorded without a start timestamp are laid out back-to-back
// after the end of the last timestamped event, so synthetic slices never
// overlap the real timeline.
func (p *Profiler) WriteChromeTrace(w io.Writer) error {
	events := p.Events()

	// Lay every event out on the common microsecond timeline: real
	// timestamps are relative to the earliest one; synthetic events run
	// back-to-back from the end of the real timeline.
	var origin time.Time
	for _, e := range events {
		if !e.Start.IsZero() {
			if origin.IsZero() || e.Start.Before(origin) {
				origin = e.Start
			}
		}
	}
	ts := make([]float64, len(events))
	var realEnd float64
	for i, e := range events {
		if e.Start.IsZero() {
			continue
		}
		ts[i] = float64(e.Start.Sub(origin).Microseconds())
		if end := ts[i] + float64(e.Duration.Microseconds()); end > realEnd {
			realEnd = end
		}
	}
	synthetic := realEnd
	for i, e := range events {
		if !e.Start.IsZero() {
			continue
		}
		ts[i] = synthetic
		synthetic += float64(e.Duration.Microseconds())
	}

	// Envelope spans per iteration and per (iteration, phase). Iteration
	// indices are small and dense (0 = outside any iteration, then 1..N).
	maxIter := 0
	for _, e := range events {
		if e.Iter > maxIter {
			maxIter = e.Iter
		}
	}
	iterSpans := make([]span, maxIter+1)
	phaseSpans := make([][3]span, maxIter+1)
	for i, e := range events {
		dur := float64(e.Duration.Microseconds())
		iterSpans[e.Iter].cover(ts[i], dur)
		if e.Phase >= Forward && e.Phase <= Update {
			phaseSpans[e.Iter][e.Phase].cover(ts[i], dur)
		}
	}

	out := make([]chromeTraceEvent, 0, len(events)+4*(maxIter+1))
	for it, s := range iterSpans {
		if !s.present {
			continue
		}
		name := fmt.Sprintf("iteration %d", it)
		if it == 0 {
			name = "outside iterations"
		}
		out = append(out, chromeTraceEvent{
			Name: name, Category: "iteration", Phase: "X",
			TSMicros: s.start, DurMicro: s.end - s.start, PID: 1, TID: 1,
		})
		for ph, pspan := range phaseSpans[it] {
			if !pspan.present {
				continue
			}
			out = append(out, chromeTraceEvent{
				Name: Phase(ph).String(), Category: "phase", Phase: "X",
				TSMicros: pspan.start, DurMicro: pspan.end - pspan.start, PID: 1, TID: 1,
				Args: map[string]string{"iteration": fmt.Sprint(it)},
			})
		}
	}
	for i, e := range events {
		out = append(out, chromeTraceEvent{
			Name:     e.Kernel,
			Category: string(e.Category),
			Phase:    "X",
			TSMicros: ts[i],
			DurMicro: float64(e.Duration.Microseconds()),
			PID:      1,
			TID:      1,
			Args: map[string]string{
				"flops":     fmt.Sprint(e.FLOPs),
				"bytes":     fmt.Sprint(e.Bytes),
				"phase":     e.Phase.String(),
				"iteration": fmt.Sprint(e.Iter),
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
