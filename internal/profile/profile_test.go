package profile

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilProfilerIsSafe(t *testing.T) {
	var p *Profiler
	p.Record(Event{Kernel: "x"})
	ran := false
	p.Time("k", CatOther, Forward, 1, 1, func() { ran = true })
	if !ran {
		t.Fatal("Time on nil profiler must still run f")
	}
	p.Reset()
	if p.KernelCount() != 0 || p.Events() != nil {
		t.Fatal("nil profiler must report empty state")
	}
}

func TestRecordAndEvents(t *testing.T) {
	p := New()
	p.Record(Event{Kernel: "a", Category: CatFCGEMM, Phase: Forward, Duration: time.Millisecond, FLOPs: 100, Bytes: 10})
	p.Record(Event{Kernel: "b", Category: CatGeLU, Phase: Backward, Duration: 2 * time.Millisecond, FLOPs: 5, Bytes: 50})
	if p.KernelCount() != 2 {
		t.Fatalf("KernelCount = %d, want 2", p.KernelCount())
	}
	evs := p.Events()
	if evs[0].Kernel != "a" || evs[1].Kernel != "b" {
		t.Fatal("Events must preserve record order")
	}
	evs[0].Kernel = "mutated"
	if p.Events()[0].Kernel != "a" {
		t.Fatal("Events must return a copy")
	}
}

func TestTimeMeasuresDuration(t *testing.T) {
	p := New()
	p.Time("sleepy", CatOther, Update, 7, 9, func() { time.Sleep(5 * time.Millisecond) })
	evs := p.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events", len(evs))
	}
	e := evs[0]
	if e.Duration < 4*time.Millisecond {
		t.Fatalf("Duration = %v, want >= ~5ms", e.Duration)
	}
	if e.FLOPs != 7 || e.Bytes != 9 || e.Phase != Update {
		t.Fatalf("metadata not recorded: %+v", e)
	}
}

func TestReset(t *testing.T) {
	p := New()
	p.Record(Event{Kernel: "a"})
	p.Reset()
	if p.KernelCount() != 0 {
		t.Fatal("Reset did not clear events")
	}
}

func TestSummarize(t *testing.T) {
	p := New()
	p.Record(Event{Kernel: "g1", Category: CatFCGEMM, Phase: Forward, Duration: 6 * time.Millisecond, FLOPs: 600, Bytes: 6})
	p.Record(Event{Kernel: "g2", Category: CatFCGEMM, Phase: Backward, Duration: 2 * time.Millisecond, FLOPs: 200, Bytes: 2})
	p.Record(Event{Kernel: "l1", Category: CatLAMBStage1, Phase: Update, Duration: 2 * time.Millisecond, FLOPs: 10, Bytes: 100})

	s := p.Summarize()
	if s.Total.Kernels != 3 || s.Total.Duration != 10*time.Millisecond {
		t.Fatalf("total = %+v", s.Total)
	}
	fc := s.ByCategory[CatFCGEMM]
	if fc.Kernels != 2 || fc.FLOPs != 800 || fc.Bytes != 8 {
		t.Fatalf("FCGEMM stat = %+v", fc)
	}
	if got := s.Share(CatFCGEMM); got != 0.8 {
		t.Fatalf("Share(FCGEMM) = %v, want 0.8", got)
	}
	if got := s.GEMMShare(); got != 0.8 {
		t.Fatalf("GEMMShare = %v, want 0.8", got)
	}
	if got := s.ByPhase[Forward].Duration; got != 6*time.Millisecond {
		t.Fatalf("forward phase duration = %v", got)
	}
}

func TestShareEmptySummary(t *testing.T) {
	s := New().Summarize()
	if s.Share(CatFCGEMM) != 0 || s.GEMMShare() != 0 {
		t.Fatal("empty summary must report zero shares")
	}
}

func TestIntensity(t *testing.T) {
	s := Stat{FLOPs: 100, Bytes: 50}
	if s.Intensity() != 2 {
		t.Fatalf("Intensity = %v, want 2", s.Intensity())
	}
	if (Stat{FLOPs: 10}).Intensity() != 0 {
		t.Fatal("zero-byte Intensity must be 0")
	}
}

func TestCategoriesSortedByDuration(t *testing.T) {
	p := New()
	p.Record(Event{Category: CatGeLU, Duration: 1 * time.Millisecond})
	p.Record(Event{Category: CatFCGEMM, Duration: 5 * time.Millisecond})
	p.Record(Event{Category: CatLinear, Duration: 3 * time.Millisecond})
	cats := p.Summarize().Categories()
	want := []Category{CatFCGEMM, CatLinear, CatGeLU}
	for i := range want {
		if cats[i] != want[i] {
			t.Fatalf("Categories() = %v, want %v", cats, want)
		}
	}
}

func TestCategoriesTieBrokenByName(t *testing.T) {
	p := New()
	p.Record(Event{Category: CatLinear, Duration: time.Millisecond})
	p.Record(Event{Category: CatGeLU, Duration: time.Millisecond})
	cats := p.Summarize().Categories()
	if cats[0] != CatGeLU || cats[1] != CatLinear {
		t.Fatalf("tie-break order = %v", cats)
	}
}

func TestCategoryClassification(t *testing.T) {
	for _, c := range []Category{CatLinear, CatAttnBGEMM, CatFCGEMM} {
		if !c.IsGEMM() {
			t.Errorf("%s should be GEMM", c)
		}
		if c.IsLAMB() {
			t.Errorf("%s should not be LAMB", c)
		}
	}
	for _, c := range []Category{CatLAMBStage1, CatLAMBStage2} {
		if !c.IsLAMB() {
			t.Errorf("%s should be LAMB", c)
		}
		if c.IsGEMM() {
			t.Errorf("%s should not be GEMM", c)
		}
	}
	if CatGeLU.IsGEMM() || CatGeLU.IsLAMB() {
		t.Error("GeLU misclassified")
	}
}

func TestPhaseString(t *testing.T) {
	if Forward.String() != "FWD" || Backward.String() != "BWD" || Update.String() != "UPD" {
		t.Fatal("phase names wrong")
	}
	if Phase(99).String() != "???" {
		t.Fatal("unknown phase must render as ???")
	}
}

func TestConcurrentRecord(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.Record(Event{Kernel: "k", Category: CatOther, Duration: time.Nanosecond})
			}
		}()
	}
	wg.Wait()
	if p.KernelCount() != 8000 {
		t.Fatalf("KernelCount = %d, want 8000", p.KernelCount())
	}
}

func TestWriteReport(t *testing.T) {
	p := New()
	p.Record(Event{Kernel: "g", Category: CatFCGEMM, Phase: Forward, Duration: 8 * time.Millisecond, FLOPs: 80, Bytes: 8})
	p.Record(Event{Kernel: "l", Category: CatLAMBStage1, Phase: Update, Duration: 2 * time.Millisecond, FLOPs: 2, Bytes: 20})
	var sb strings.Builder
	p.Summarize().WriteReport(&sb, "test profile")
	out := sb.String()
	for _, want := range []string{"test profile", "FCGEMM", "LAMBStage1", "TOTAL", "80.0%", "20.0%", "FWD", "UPD"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	p := New()
	p.Time("gemm_a", CatFCGEMM, Forward, 100, 10, func() { time.Sleep(time.Millisecond) })
	p.Time("lamb_b", CatLAMBStage1, Update, 5, 50, func() {})
	var sb strings.Builder
	if err := p.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("trace has %d events, want 2", len(events))
	}
	first := events[0]
	if first["name"] != "gemm_a" || first["cat"] != "FCGEMM" || first["ph"] != "X" {
		t.Fatalf("malformed trace event: %v", first)
	}
	if first["dur"].(float64) < 900 {
		t.Fatalf("duration %v µs, want >= ~1000", first["dur"])
	}
	args := first["args"].(map[string]any)
	if args["flops"] != "100" || args["bytes"] != "10" {
		t.Fatalf("args %v", args)
	}
}

func TestWriteChromeTraceManualEvents(t *testing.T) {
	// Events recorded without timestamps are laid out sequentially.
	p := New()
	p.Record(Event{Kernel: "a", Duration: 2 * time.Millisecond})
	p.Record(Event{Kernel: "b", Duration: 3 * time.Millisecond})
	var sb strings.Builder
	if err := p.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatal(err)
	}
	if events[1]["ts"].(float64) != 2000 {
		t.Fatalf("second event ts %v, want 2000 (after first's 2ms)", events[1]["ts"])
	}
}
