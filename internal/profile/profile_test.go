package profile

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilProfilerIsSafe(t *testing.T) {
	var p *Profiler
	p.Record(Event{Kernel: "x"})
	ran := false
	p.Time("k", CatOther, Forward, 1, 1, func() { ran = true })
	if !ran {
		t.Fatal("Time on nil profiler must still run f")
	}
	p.Reset()
	if p.KernelCount() != 0 || p.Events() != nil {
		t.Fatal("nil profiler must report empty state")
	}
}

func TestRecordAndEvents(t *testing.T) {
	p := New()
	p.Record(Event{Kernel: "a", Category: CatFCGEMM, Phase: Forward, Duration: time.Millisecond, FLOPs: 100, Bytes: 10})
	p.Record(Event{Kernel: "b", Category: CatGeLU, Phase: Backward, Duration: 2 * time.Millisecond, FLOPs: 5, Bytes: 50})
	if p.KernelCount() != 2 {
		t.Fatalf("KernelCount = %d, want 2", p.KernelCount())
	}
	evs := p.Events()
	if evs[0].Kernel != "a" || evs[1].Kernel != "b" {
		t.Fatal("Events must preserve record order")
	}
	evs[0].Kernel = "mutated"
	if p.Events()[0].Kernel != "a" {
		t.Fatal("Events must return a copy")
	}
}

func TestTimeMeasuresDuration(t *testing.T) {
	p := New()
	p.Time("sleepy", CatOther, Update, 7, 9, func() { time.Sleep(5 * time.Millisecond) })
	evs := p.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events", len(evs))
	}
	e := evs[0]
	if e.Duration < 4*time.Millisecond {
		t.Fatalf("Duration = %v, want >= ~5ms", e.Duration)
	}
	if e.FLOPs != 7 || e.Bytes != 9 || e.Phase != Update {
		t.Fatalf("metadata not recorded: %+v", e)
	}
}

func TestReset(t *testing.T) {
	p := New()
	p.Record(Event{Kernel: "a"})
	p.Reset()
	if p.KernelCount() != 0 {
		t.Fatal("Reset did not clear events")
	}
}

func TestSummarize(t *testing.T) {
	p := New()
	p.Record(Event{Kernel: "g1", Category: CatFCGEMM, Phase: Forward, Duration: 6 * time.Millisecond, FLOPs: 600, Bytes: 6})
	p.Record(Event{Kernel: "g2", Category: CatFCGEMM, Phase: Backward, Duration: 2 * time.Millisecond, FLOPs: 200, Bytes: 2})
	p.Record(Event{Kernel: "l1", Category: CatLAMBStage1, Phase: Update, Duration: 2 * time.Millisecond, FLOPs: 10, Bytes: 100})

	s := p.Summarize()
	if s.Total.Kernels != 3 || s.Total.Duration != 10*time.Millisecond {
		t.Fatalf("total = %+v", s.Total)
	}
	fc := s.ByCategory[CatFCGEMM]
	if fc.Kernels != 2 || fc.FLOPs != 800 || fc.Bytes != 8 {
		t.Fatalf("FCGEMM stat = %+v", fc)
	}
	if got := s.Share(CatFCGEMM); got != 0.8 {
		t.Fatalf("Share(FCGEMM) = %v, want 0.8", got)
	}
	if got := s.GEMMShare(); got != 0.8 {
		t.Fatalf("GEMMShare = %v, want 0.8", got)
	}
	if got := s.ByPhase[Forward].Duration; got != 6*time.Millisecond {
		t.Fatalf("forward phase duration = %v", got)
	}
}

func TestShareEmptySummary(t *testing.T) {
	s := New().Summarize()
	if s.Share(CatFCGEMM) != 0 || s.GEMMShare() != 0 {
		t.Fatal("empty summary must report zero shares")
	}
}

func TestIntensity(t *testing.T) {
	s := Stat{FLOPs: 100, Bytes: 50}
	if s.Intensity() != 2 {
		t.Fatalf("Intensity = %v, want 2", s.Intensity())
	}
	if (Stat{FLOPs: 10}).Intensity() != 0 {
		t.Fatal("zero-byte Intensity must be 0")
	}
}

func TestCategoriesSortedByDuration(t *testing.T) {
	p := New()
	p.Record(Event{Category: CatGeLU, Duration: 1 * time.Millisecond})
	p.Record(Event{Category: CatFCGEMM, Duration: 5 * time.Millisecond})
	p.Record(Event{Category: CatLinear, Duration: 3 * time.Millisecond})
	cats := p.Summarize().Categories()
	want := []Category{CatFCGEMM, CatLinear, CatGeLU}
	for i := range want {
		if cats[i] != want[i] {
			t.Fatalf("Categories() = %v, want %v", cats, want)
		}
	}
}

func TestCategoriesTieBrokenByName(t *testing.T) {
	p := New()
	p.Record(Event{Category: CatLinear, Duration: time.Millisecond})
	p.Record(Event{Category: CatGeLU, Duration: time.Millisecond})
	cats := p.Summarize().Categories()
	if cats[0] != CatGeLU || cats[1] != CatLinear {
		t.Fatalf("tie-break order = %v", cats)
	}
}

func TestCategoryClassification(t *testing.T) {
	for _, c := range []Category{CatLinear, CatAttnBGEMM, CatFCGEMM} {
		if !c.IsGEMM() {
			t.Errorf("%s should be GEMM", c)
		}
		if c.IsLAMB() {
			t.Errorf("%s should not be LAMB", c)
		}
	}
	for _, c := range []Category{CatLAMBStage1, CatLAMBStage2} {
		if !c.IsLAMB() {
			t.Errorf("%s should be LAMB", c)
		}
		if c.IsGEMM() {
			t.Errorf("%s should not be GEMM", c)
		}
	}
	if CatGeLU.IsGEMM() || CatGeLU.IsLAMB() {
		t.Error("GeLU misclassified")
	}
}

func TestPhaseString(t *testing.T) {
	if Forward.String() != "FWD" || Backward.String() != "BWD" || Update.String() != "UPD" {
		t.Fatal("phase names wrong")
	}
	if Phase(99).String() != "???" {
		t.Fatal("unknown phase must render as ???")
	}
}

func TestConcurrentRecord(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.Record(Event{Kernel: "k", Category: CatOther, Duration: time.Nanosecond})
			}
		}()
	}
	wg.Wait()
	if p.KernelCount() != 8000 {
		t.Fatalf("KernelCount = %d, want 8000", p.KernelCount())
	}
}

func TestWriteReport(t *testing.T) {
	p := New()
	p.Record(Event{Kernel: "g", Category: CatFCGEMM, Phase: Forward, Duration: 8 * time.Millisecond, FLOPs: 80, Bytes: 8})
	p.Record(Event{Kernel: "l", Category: CatLAMBStage1, Phase: Update, Duration: 2 * time.Millisecond, FLOPs: 2, Bytes: 20})
	var sb strings.Builder
	p.Summarize().WriteReport(&sb, "test profile")
	out := sb.String()
	for _, want := range []string{"test profile", "FCGEMM", "LAMBStage1", "TOTAL", "80.0%", "20.0%", "FWD", "UPD"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// decodeTrace parses a trace and splits it into hierarchy spans
// (cat "iteration"/"phase") and kernel slices.
func decodeTrace(t *testing.T, trace string) (spans, kernels []map[string]any) {
	t.Helper()
	var events []map[string]any
	if err := json.Unmarshal([]byte(trace), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	for _, e := range events {
		if e["cat"] == "iteration" || e["cat"] == "phase" {
			spans = append(spans, e)
		} else {
			kernels = append(kernels, e)
		}
	}
	return spans, kernels
}

func TestWriteChromeTrace(t *testing.T) {
	p := New()
	p.BeginIteration()
	p.Time("gemm_a", CatFCGEMM, Forward, 100, 10, func() { time.Sleep(time.Millisecond) })
	p.Time("lamb_b", CatLAMBStage1, Update, 5, 50, func() {})
	var sb strings.Builder
	if err := p.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	spans, kernels := decodeTrace(t, sb.String())
	if len(kernels) != 2 {
		t.Fatalf("trace has %d kernel events, want 2", len(kernels))
	}
	// One iteration span plus one span each for FWD and UPD.
	if len(spans) != 3 {
		t.Fatalf("trace has %d hierarchy spans, want 3: %v", len(spans), spans)
	}
	first := kernels[0]
	if first["name"] != "gemm_a" || first["cat"] != "FCGEMM" || first["ph"] != "X" {
		t.Fatalf("malformed trace event: %v", first)
	}
	if first["dur"].(float64) < 900 {
		t.Fatalf("duration %v µs, want >= ~1000", first["dur"])
	}
	args := first["args"].(map[string]any)
	if args["flops"] != "100" || args["bytes"] != "10" || args["iteration"] != "1" {
		t.Fatalf("args %v", args)
	}
}

// TestWriteChromeTraceNesting pins the Fig. 3 hierarchy: every kernel
// slice lies inside its phase span, and every phase span inside its
// iteration span, all on one track so Perfetto nests them.
func TestWriteChromeTraceNesting(t *testing.T) {
	p := New()
	for it := 0; it < 2; it++ {
		p.BeginIteration()
		p.Time("fwd_gemm", CatLinear, Forward, 10, 10, func() { time.Sleep(time.Millisecond) })
		p.Time("bwd_gemm", CatLinear, Backward, 10, 10, func() { time.Sleep(time.Millisecond) })
		p.Time("lamb", CatLAMBStage1, Update, 10, 10, func() {})
	}
	var sb strings.Builder
	if err := p.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	spans, kernels := decodeTrace(t, sb.String())
	if len(kernels) != 6 {
		t.Fatalf("%d kernel events, want 6", len(kernels))
	}
	// 2 iteration spans + 2×3 phase spans.
	if len(spans) != 8 {
		t.Fatalf("%d hierarchy spans, want 8: %v", len(spans), spans)
	}
	envelope := func(name string) (lo, hi float64) {
		t.Helper()
		for _, s := range spans {
			if s["name"] == name {
				return s["ts"].(float64), s["ts"].(float64) + s["dur"].(float64)
			}
		}
		t.Fatalf("span %q missing", name)
		return 0, 0
	}
	it1lo, it1hi := envelope("iteration 1")
	it2lo, _ := envelope("iteration 2")
	if it1hi > it2lo {
		t.Fatalf("iteration spans overlap: it1 ends %v, it2 starts %v", it1hi, it2lo)
	}
	for _, k := range kernels {
		ts := k["ts"].(float64)
		end := ts + k["dur"].(float64)
		iter := k["args"].(map[string]any)["iteration"]
		if iter == "1" && (ts < it1lo || end > it1hi) {
			t.Fatalf("kernel %v [%v,%v] outside iteration 1 span [%v,%v]", k["name"], ts, end, it1lo, it1hi)
		}
	}
	// Every event shares one track — nesting in Perfetto is by
	// containment on the same tid.
	for _, s := range append(spans, kernels...) {
		if s["tid"].(float64) != 1 {
			t.Fatalf("event %v on tid %v, want 1", s["name"], s["tid"])
		}
	}
}

func TestWriteChromeTraceManualEvents(t *testing.T) {
	// Events recorded without timestamps are laid out sequentially.
	p := New()
	p.Record(Event{Kernel: "a", Duration: 2 * time.Millisecond})
	p.Record(Event{Kernel: "b", Duration: 3 * time.Millisecond})
	var sb strings.Builder
	if err := p.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	_, kernels := decodeTrace(t, sb.String())
	if kernels[1]["ts"].(float64) != 2000 {
		t.Fatalf("second event ts %v, want 2000 (after first's 2ms)", kernels[1]["ts"])
	}
}

// TestWriteChromeTraceMixedTimestamps is the regression test for the
// synthetic-layout bug: when real Start timestamps and zero ones mix,
// synthetic events used to start at ts 0 and overlap the real timeline.
// They must be laid out back-to-back after the last real event ends.
func TestWriteChromeTraceMixedTimestamps(t *testing.T) {
	p := New()
	base := time.Now()
	p.Record(Event{Kernel: "real_a", Start: base, Duration: 4 * time.Millisecond})
	p.Record(Event{Kernel: "synth_x", Duration: 2 * time.Millisecond})
	p.Record(Event{Kernel: "real_b", Start: base.Add(5 * time.Millisecond), Duration: 3 * time.Millisecond})
	p.Record(Event{Kernel: "synth_y", Duration: time.Millisecond})
	var sb strings.Builder
	if err := p.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	_, kernels := decodeTrace(t, sb.String())
	ts := map[string]float64{}
	for _, k := range kernels {
		ts[k["name"].(string)] = k["ts"].(float64)
	}
	// Real timeline: real_a [0, 4000], real_b [5000, 8000]. Synthetic
	// events follow from 8000, in record order.
	if ts["real_a"] != 0 || ts["real_b"] != 5000 {
		t.Fatalf("real timestamps %v", ts)
	}
	if ts["synth_x"] != 8000 {
		t.Fatalf("first synthetic event ts %v, want 8000 (after last real event)", ts["synth_x"])
	}
	if ts["synth_y"] != 10000 {
		t.Fatalf("second synthetic event ts %v, want 10000", ts["synth_y"])
	}
}

// TestIterationTracking covers BeginIteration/Reset stamping semantics.
func TestIterationTracking(t *testing.T) {
	p := New()
	p.Record(Event{Kernel: "pre"})
	p.BeginIteration()
	p.Record(Event{Kernel: "in1"})
	p.BeginIteration()
	p.Record(Event{Kernel: "in2"})
	p.Record(Event{Kernel: "explicit", Iter: 7})
	evs := p.Events()
	for i, want := range []int{0, 1, 2, 7} {
		if evs[i].Iter != want {
			t.Errorf("event %d Iter = %d, want %d", i, evs[i].Iter, want)
		}
	}
	if p.Iteration() != 2 {
		t.Errorf("Iteration() = %d, want 2", p.Iteration())
	}
	p.Reset()
	if p.Iteration() != 0 {
		t.Errorf("Iteration() after Reset = %d, want 0", p.Iteration())
	}
	var nilP *Profiler
	nilP.BeginIteration()
	if nilP.Iteration() != 0 {
		t.Error("nil profiler iteration must be 0")
	}
}

// TestNilProfilerZeroAlloc pins the overhead guard: the nil-Profiler
// fast path of Record and Time must not allocate, so uninstrumented
// runs pay nothing for the telemetry hooks.
func TestNilProfilerZeroAlloc(t *testing.T) {
	var p *Profiler
	ev := Event{Kernel: "k", FLOPs: 1, Bytes: 1}
	if n := testing.AllocsPerRun(1000, func() { p.Record(ev) }); n != 0 {
		t.Errorf("nil Record allocates %v per op", n)
	}
	f := func() {}
	if n := testing.AllocsPerRun(1000, func() { p.Time("k", CatOther, Forward, 1, 1, f) }); n != 0 {
		t.Errorf("nil Time allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { p.BeginIteration() }); n != 0 {
		t.Errorf("nil BeginIteration allocates %v per op", n)
	}
}
