package profile

import (
	"fmt"
	"io"
	"strings"
)

// WriteReport renders a rocProf-style text report of the summary to w:
// one row per category sorted by runtime share, with kernel counts, total
// duration, FLOPs, bytes, achieved arithmetic intensity, and share of the
// iteration.
func (s Summary) WriteReport(w io.Writer, title string) {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "%-15s %8s %12s %14s %14s %9s %7s\n",
		"category", "kernels", "time", "flops", "bytes", "ops/byte", "share")
	for _, c := range s.Categories() {
		st := s.ByCategory[c]
		fmt.Fprintf(w, "%-15s %8d %12v %14d %14d %9.2f %6.1f%%\n",
			c, st.Kernels, st.Duration.Round(1000), st.FLOPs, st.Bytes,
			st.Intensity(), 100*s.Share(c))
	}
	fmt.Fprintf(w, "%-15s %8d %12v %14d %14d %9.2f %6.1f%%\n",
		"TOTAL", s.Total.Kernels, s.Total.Duration.Round(1000),
		s.Total.FLOPs, s.Total.Bytes, s.Total.Intensity(), 100.0)
	fmt.Fprintf(w, "phases: ")
	for _, ph := range []Phase{Forward, Backward, Update} {
		st := s.ByPhase[ph]
		share := 0.0
		if s.Total.Duration > 0 {
			share = float64(st.Duration) / float64(s.Total.Duration)
		}
		fmt.Fprintf(w, "%s=%.1f%% ", ph, 100*share)
	}
	fmt.Fprintln(w)
}
