package audit

import (
	"fmt"
	"io"
)

// RunSweep runs the whole audit — oracle differencing over the mode
// matrix, gradchecks, determinism pins, analytic-model pins — for every
// subject, streaming a summary to w. It returns the divergences found
// (empty means the engine's execution paths all agree). quick runs the
// reduced matrix (same one `go test -short` uses).
func RunSweep(w io.Writer, quick bool) []Divergence {
	var all []Divergence
	for _, s := range Subjects() {
		ms := Modes(s, quick)
		divs := RunModes(s, ms)
		grads := 0
		if s.GradCheck != nil {
			for _, gm := range GradModes(s) {
				divs = append(divs, s.GradCheck(gm)...)
				grads++
			}
		}
		det := 0
		for _, dm := range DeterminismModes(quick) {
			divs = append(divs, CheckDeterminism(s, dm)...)
			det++
		}
		divs = append(divs, CheckFastPathEquivalence(s, 1)...)
		status := "ok"
		if len(divs) > 0 {
			status = fmt.Sprintf("%d DIVERGENCES", len(divs))
		}
		fmt.Fprintf(w, "audit %-14s modes=%-3d gradcheck=%d determinism=%d  %s\n",
			s.Name, len(ms), grads, det, status)
		for _, d := range divs {
			fmt.Fprintf(w, "  DIVERGENCE %s\n", d)
		}
		all = append(all, divs...)
	}
	divs := CheckAnalyticModels()
	status := "ok"
	if len(divs) > 0 {
		status = fmt.Sprintf("%d DIVERGENCES", len(divs))
	}
	fmt.Fprintf(w, "audit %-14s opgraph+fusion reproducibility  %s\n", "analytic", status)
	for _, d := range divs {
		fmt.Fprintf(w, "  DIVERGENCE %s\n", d)
	}
	all = append(all, divs...)

	accumModes := AccumModes(quick)
	var accumDivs []Divergence
	for _, m := range accumModes {
		accumDivs = append(accumDivs, CheckAccumEquivalence(m)...)
	}
	status = "ok"
	if len(accumDivs) > 0 {
		status = fmt.Sprintf("%d DIVERGENCES", len(accumDivs))
	}
	fmt.Fprintf(w, "audit %-14s modes=%-3d StepAccum bitwise vs full batch  %s\n",
		"bert.accum", len(accumModes), status)
	for _, d := range accumDivs {
		fmt.Fprintf(w, "  DIVERGENCE %s\n", d)
	}
	all = append(all, accumDivs...)

	shardDivs := CheckShardedOptimizer()
	status = "ok"
	if len(shardDivs) > 0 {
		status = fmt.Sprintf("%d DIVERGENCES", len(shardDivs))
	}
	fmt.Fprintf(w, "audit %-14s virtual-shard + world-2 ZeRO-1 bitwise  %s\n", "optim.sharded", status)
	for _, d := range shardDivs {
		fmt.Fprintf(w, "  DIVERGENCE %s\n", d)
	}
	all = append(all, shardDivs...)
	return all
}
