package audit

import (
	"demystbert/internal/data"
	"demystbert/internal/model"
	"demystbert/internal/nn"
	"demystbert/internal/optim"
	"demystbert/internal/profile"
	"demystbert/internal/tensor"
)

// Fixed seeds: weights, dropout streams, and data are all deterministic so
// every mode of a subject sees the identical problem.
const (
	weightSeed = 12345
	ctxSeed    = 999
	dataSeed   = 7
)

// Deliberately awkward shapes: odd dims force edge tiles in the blocked
// engines, k below the micro-panel width exercises the padded pack paths,
// and tiny batched products are shapes the size heuristics would never
// route to the fast paths on their own.
const (
	linIn, linOut, linTokens = 19, 23, 17
	ffDModel, ffDFF, ffTok   = 19, 37, 13
	lnDim, lnRows            = 21, 11
	attnDModel, attnHeads    = 24, 3
	attnB, attnN             = 2, 7
	encDModel, encHeads      = 16, 2
	encDFF                   = 32
	encB, encN               = 2, 8
	stepB, stepN             = 2, 8
)

func stepConfig(fused bool) model.Config {
	return model.Config{
		Vocab: 101, MaxPos: 16, NumLayers: 2,
		DModel: 16, Heads: 2, DFF: 32,
		DropProb: 0.1, FusedAttention: fused,
	}
}

// Subject is one auditable unit: a module or a full training step.
type Subject struct {
	Name string
	// HasAttention: the fused-softmax dimension applies.
	HasAttention bool
	// HasCkpt: the activation-checkpointing dimension applies.
	HasCkpt bool
	// Run builds a fresh, deterministically-seeded instance and runs one
	// forward+backward pass under mode m (whose global knobs the caller
	// has already applied), returning the comparison trace.
	Run func(m Mode) *Trace
	// GradCheck compares analytic gradients against central differences
	// on sampled coordinates under mode m. Nil for subjects where the
	// module gradient is already covered by a containing subject.
	GradCheck func(m Mode) []Divergence
	// Steps runs an n-step training loop (forward+backward+LAMB update)
	// and returns the loss trajectory plus a flattened parameter
	// fingerprint. Nil for single-module subjects.
	Steps func(m Mode, steps int) ([]float64, []float32)
}

// modInstance is a freshly-built module with a fixed input and upstream
// gradient, wrapped in closures so module-shaped and attention-shaped
// Forward signatures audit identically.
type modInstance struct {
	forward  func(ctx *nn.Ctx) *tensor.Tensor
	backward func(ctx *nn.Ctx, dY *tensor.Tensor) *tensor.Tensor
	params   []*nn.Param
	x, dY    *tensor.Tensor
}

// moduleSubject adapts a modInstance builder to the Subject interface:
// Run traces out/dx/param grads, GradCheck differences the analytic
// gradients against central differences of the surrogate loss Σ dY·y.
func moduleSubject(name string, hasAttention bool, build func(m Mode) *modInstance) *Subject {
	run := func(m Mode) *Trace {
		inst := build(m)
		ctx := nn.NewCtx(ctxSeed)
		ctx.MixedPrecision = m.MP
		y := inst.forward(ctx)
		tr := newTrace()
		tr.add("out", y.Data())
		for _, p := range inst.params {
			p.ZeroGrad()
		}
		dx := inst.backward(ctx, inst.dY)
		tr.add("dx", dx.Data())
		for _, p := range inst.params {
			tr.add("grad:"+p.Name, p.Grad.Data())
		}
		return tr
	}
	check := func(m Mode) []Divergence {
		inst := build(m)
		return gradCheckModule(name, m, inst)
	}
	return &Subject{Name: name, HasAttention: hasAttention, Run: run, GradCheck: check}
}

// fillInput seeds an input activation away from zero so relative
// comparisons are meaningful.
func fillInput(t *tensor.Tensor, seed uint64) {
	t.FillNormal(tensor.NewRNG(seed), 0, 1)
}

func newLinearSubject() *Subject {
	return moduleSubject("linear", false, func(Mode) *modInstance {
		rng := tensor.NewRNG(weightSeed)
		l := nn.NewLinear("audit.lin", linIn, linOut, profile.CatLinear, rng)
		x := tensor.New(linTokens, linIn)
		fillInput(x, dataSeed)
		dY := tensor.New(linTokens, linOut)
		fillInput(dY, dataSeed+1)
		return &modInstance{
			forward:  func(ctx *nn.Ctx) *tensor.Tensor { return l.Forward(ctx, x) },
			backward: func(ctx *nn.Ctx, g *tensor.Tensor) *tensor.Tensor { return l.Backward(ctx, g) },
			params:   l.Params(), x: x, dY: dY,
		}
	})
}

func newFeedForwardSubject() *Subject {
	return moduleSubject("feedforward", false, func(Mode) *modInstance {
		rng := tensor.NewRNG(weightSeed)
		ff := nn.NewFeedForward("audit.ff", ffDModel, ffDFF, rng)
		x := tensor.New(ffTok, ffDModel)
		fillInput(x, dataSeed)
		dY := tensor.New(ffTok, ffDModel)
		fillInput(dY, dataSeed+1)
		return &modInstance{
			forward:  func(ctx *nn.Ctx) *tensor.Tensor { return ff.Forward(ctx, x) },
			backward: func(ctx *nn.Ctx, g *tensor.Tensor) *tensor.Tensor { return ff.Backward(ctx, g) },
			params:   ff.Params(), x: x, dY: dY,
		}
	})
}

func newLayerNormSubject() *Subject {
	return moduleSubject("layernorm", false, func(Mode) *modInstance {
		ln := nn.NewLayerNorm("audit.ln", lnDim)
		// Non-trivial gamma/beta so their gradients are exercised off
		// the initialization values.
		fillInput(ln.Gamma.Value, weightSeed)
		fillInput(ln.Beta.Value, weightSeed+1)
		x := tensor.New(lnRows, lnDim)
		fillInput(x, dataSeed)
		dY := tensor.New(lnRows, lnDim)
		fillInput(dY, dataSeed+1)
		return &modInstance{
			forward:  func(ctx *nn.Ctx) *tensor.Tensor { return ln.Forward(ctx, x) },
			backward: func(ctx *nn.Ctx, g *tensor.Tensor) *tensor.Tensor { return ln.Backward(ctx, g) },
			params:   ln.Params(), x: x, dY: dY,
		}
	})
}

// paddingMask builds an additive [b, n] key mask with the last key of
// every sequence padded out, matching the -1e9 convention of data.Batch.
func paddingMask(b, n int) *tensor.Tensor {
	mask := tensor.New(b, n)
	for s := 0; s < b; s++ {
		mask.Set(-1e9, s, n-1)
	}
	return mask
}

func newAttentionSubject() *Subject {
	return moduleSubject("attention", true, func(m Mode) *modInstance {
		rng := tensor.NewRNG(weightSeed)
		a := nn.NewMultiHeadAttention("audit.attn", attnDModel, attnHeads, 0.1, rng)
		a.FusedSoftmax = m.Fused
		mask := paddingMask(attnB, attnN)
		x := tensor.New(attnB*attnN, attnDModel)
		fillInput(x, dataSeed)
		dY := tensor.New(attnB*attnN, attnDModel)
		fillInput(dY, dataSeed+1)
		return &modInstance{
			forward: func(ctx *nn.Ctx) *tensor.Tensor {
				return a.Forward(ctx, x, attnB, attnN, mask)
			},
			backward: func(ctx *nn.Ctx, g *tensor.Tensor) *tensor.Tensor { return a.Backward(ctx, g) },
			params:   a.Params(), x: x, dY: dY,
		}
	})
}

func newEncoderSubject() *Subject {
	return moduleSubject("encoder", true, func(m Mode) *modInstance {
		rng := tensor.NewRNG(weightSeed)
		e := nn.NewEncoderLayer("audit.enc", encDModel, encHeads, encDFF, 0.1, rng)
		e.Attn.FusedSoftmax = m.Fused
		mask := paddingMask(encB, encN)
		x := tensor.New(encB*encN, encDModel)
		fillInput(x, dataSeed)
		dY := tensor.New(encB*encN, encDModel)
		fillInput(dY, dataSeed+1)
		return &modInstance{
			forward: func(ctx *nn.Ctx) *tensor.Tensor {
				return e.Forward(ctx, x, encB, encN, mask)
			},
			backward: func(ctx *nn.Ctx, g *tensor.Tensor) *tensor.Tensor { return e.Backward(ctx, g) },
			params:   e.Params(), x: x, dY: dY,
		}
	})
}

// newEncoderEvalSubject audits the encoder layer in evaluation mode
// (ctx.Train=false, forward only). This is the regime where the fused
// Add&Norm epilogues engage even with a nonzero configured dropout
// probability (the block dropouts are inactive in eval), so it is the
// subject that differences the bias+residual+LayerNorm fused write-back
// against the unfused reference tail across every path of the matrix.
func newEncoderEvalSubject() *Subject {
	s := &Subject{Name: "encoder.eval", HasAttention: true}
	s.Run = func(m Mode) *Trace {
		rng := tensor.NewRNG(weightSeed)
		e := nn.NewEncoderLayer("audit.ence", encDModel, encHeads, encDFF, 0.1, rng)
		e.Attn.FusedSoftmax = m.Fused
		mask := paddingMask(encB, encN)
		x := tensor.New(encB*encN, encDModel)
		fillInput(x, dataSeed)
		ctx := nn.NewCtx(ctxSeed)
		ctx.MixedPrecision = m.MP
		ctx.Train = false
		y := e.Forward(ctx, x, encB, encN, mask)
		tr := newTrace()
		tr.add("out", y.Data())
		return tr
	}
	return s
}

func buildStepBERT(m Mode) *model.BERT {
	b, err := model.New(stepConfig(m.Fused), weightSeed)
	if err != nil {
		panic("audit: " + err.Error())
	}
	if m.Ckpt {
		b.CheckpointEvery = 1
	}
	return b
}

func newBERTStepSubject() *Subject {
	s := &Subject{Name: "bert.step", HasAttention: true, HasCkpt: true}
	s.Run = func(m Mode) *Trace {
		bert := buildStepBERT(m)
		batch := data.NewGenerator(stepConfig(false).Vocab, 0.15, dataSeed).Next(stepB, stepN)
		ctx := nn.NewCtx(ctxSeed)
		ctx.MixedPrecision = m.MP
		bert.ZeroGrads()
		loss := bert.Step(ctx, batch)
		tr := newTrace()
		tr.Loss, tr.HasLoss = loss, true
		for _, p := range bert.Params() {
			tr.add("grad:"+p.Name, p.Grad.Data())
		}
		return tr
	}
	s.GradCheck = func(m Mode) []Divergence {
		bert := buildStepBERT(m)
		batch := data.NewGenerator(stepConfig(false).Vocab, 0.15, dataSeed).Next(stepB, stepN)
		loss := func() float64 {
			ctx := nn.NewCtx(ctxSeed)
			return bert.Forward(ctx, batch)
		}
		analytic := func() {
			bert.ZeroGrads()
			ctx := nn.NewCtx(ctxSeed)
			bert.Step(ctx, batch)
		}
		return gradCheckLoss("bert.step", m, bert.Params(), loss, analytic)
	}
	s.Steps = func(m Mode, steps int) ([]float64, []float32) {
		bert := buildStepBERT(m)
		gen := data.NewGenerator(stepConfig(false).Vocab, 0.15, dataSeed)
		opt := optim.NewLAMB(0.01)
		ctx := nn.NewCtx(ctxSeed)
		ctx.MixedPrecision = m.MP
		params := bert.Params()
		losses := make([]float64, steps)
		for i := range losses {
			bert.ZeroGrads()
			losses[i] = bert.Step(ctx, gen.Next(stepB, stepN))
			opt.Step(ctx, params)
		}
		return losses, fingerprint(params)
	}
	return s
}

func newFineTuneStepSubject() *Subject {
	s := &Subject{Name: "finetune.step", HasAttention: true}
	build := func(m Mode) (*model.FineTuner, *data.QABatch) {
		ft := model.NewFineTuner(buildStepBERT(m), weightSeed+1)
		batch := data.NewGenerator(stepConfig(false).Vocab, 0.15, dataSeed).NextQA(stepB, stepN)
		return ft, batch
	}
	s.Run = func(m Mode) *Trace {
		ft, batch := build(m)
		ctx := nn.NewCtx(ctxSeed)
		ctx.MixedPrecision = m.MP
		ft.ZeroGrads()
		loss := ft.Step(ctx, batch)
		tr := newTrace()
		tr.Loss, tr.HasLoss = loss, true
		for _, p := range ft.Params() {
			tr.add("grad:"+p.Name, p.Grad.Data())
		}
		return tr
	}
	s.Steps = func(m Mode, steps int) ([]float64, []float32) {
		ft, _ := build(m)
		gen := data.NewGenerator(stepConfig(false).Vocab, 0.15, dataSeed+1)
		opt := optim.NewLAMB(0.01)
		ctx := nn.NewCtx(ctxSeed)
		ctx.MixedPrecision = m.MP
		params := ft.Params()
		losses := make([]float64, steps)
		for i := range losses {
			ft.ZeroGrads()
			losses[i] = ft.Step(ctx, gen.NextQA(stepB, stepN))
			opt.Step(ctx, params)
		}
		return losses, fingerprint(params)
	}
	return s
}

// fingerprint flattens every parameter value into one slice for bitwise
// trajectory comparison.
func fingerprint(params []*nn.Param) []float32 {
	var fp []float32
	for _, p := range params {
		fp = append(fp, p.Value.Data()...)
	}
	return fp
}

// Subjects returns the full audit roster, cheapest first.
func Subjects() []*Subject {
	return []*Subject{
		newLinearSubject(),
		newLayerNormSubject(),
		newFeedForwardSubject(),
		newAttentionSubject(),
		newEncoderSubject(),
		newEncoderEvalSubject(),
		newBERTStepSubject(),
		newFineTuneStepSubject(),
	}
}
