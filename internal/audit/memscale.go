package audit

// Memory-scaling pins (internal/memscale): gradient accumulation and
// optimizer-state sharding are pure reorganizations of the same math, so
// both are held to bitwise equality — StepAccum(B/k, k) against the
// full-batch Step(B) across the GEMM-path × checkpointing matrix, and
// the sharded (ZeRO-1) LAMB update against the unsharded optimizer in
// both virtual-shard and real world-2 modes.

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"demystbert/internal/data"
	"demystbert/internal/distnet"
	"demystbert/internal/kernels"
	"demystbert/internal/memscale"
	"demystbert/internal/model"
	"demystbert/internal/nn"
	"demystbert/internal/optim"
	"demystbert/internal/tensor"
)

// accumB is the full batch; accumSteps splits it into micro-batches.
const accumB, accumSteps = 4, 2

// accumConfig is the step config with dropout off: accumulation replays
// the same data through the same kernels, but the dropout RNG stream
// advances per forward call, so bitwise equality is only defined for the
// deterministic part of the network.
func accumConfig(fused bool) model.Config {
	cfg := stepConfig(fused)
	cfg.DropProb = 0
	return cfg
}

// AccumModes enumerates the accumulation-equivalence matrix: every GEMM
// path × checkpointing, at one and at full pool width. MP is pinned off
// (the loss-scaling interplay is audited separately) and attention
// fusion is exercised through the fused path entry.
func AccumModes(quick bool) []Mode {
	paths := []kernels.GEMMPath{
		kernels.GEMMPathNaive, kernels.GEMMPathBlocked,
		kernels.GEMMPathPacked, kernels.GEMMPathBatched,
		kernels.GEMMPathFused, kernels.GEMMPathInt8,
	}
	workers := dedupInts([]int{1, runtime.GOMAXPROCS(0)})
	if quick {
		paths = []kernels.GEMMPath{
			kernels.GEMMPathNaive, kernels.GEMMPathBlocked, kernels.GEMMPathBatched,
		}
		workers = dedupInts([]int{runtime.GOMAXPROCS(0)})
	}
	var ms []Mode
	for _, p := range paths {
		for _, w := range workers {
			for _, ck := range []bool{false, true} {
				ms = append(ms, Mode{Path: p, Workers: w, Ckpt: ck})
			}
		}
	}
	return ms
}

// CheckAccumEquivalence runs the same global batch once as a single
// full-batch Step and once as StepAccum over accumSteps micro-batches,
// under mode m, and demands bitwise-identical loss and parameter
// gradients. Both runs share the mode's worker count and GEMM path, so
// the only varying factor is the accumulation split itself.
//
// The int8 path is the one exception to bitwise: it only redirects the
// frozen-weight Linear forward, so its other GEMMs keep auto routing —
// and the auto small-GEMM fallback picks a kernel by 2·m·n·k, which
// accumulation changes (k is the token count in every wgrad). A
// micro-batch can take the naive fallback where the full batch takes the
// blocked kernel; the difference is pure f32 rounding, so that path is
// pinned at the blocked-engine tolerance instead.
func CheckAccumEquivalence(m Mode) []Divergence {
	restore := m.apply()
	defer restore()

	var fwd, grad Tol
	if m.Path == kernels.GEMMPathInt8 {
		fwd, grad = tolBlockedFwd, tolBlockedGrad
	}

	run := func(accum int) *Trace {
		bert, err := model.New(accumConfig(m.Fused), weightSeed)
		if err != nil {
			panic("audit: " + err.Error())
		}
		if m.Ckpt {
			bert.CheckpointEvery = 1
		}
		batch := data.NewGenerator(accumConfig(false).Vocab, 0.15, dataSeed).Next(accumB, stepN)
		ctx := nn.NewCtx(ctxSeed)
		bert.ZeroGrads()
		var loss float64
		if accum == 1 {
			loss = bert.Step(ctx, batch)
		} else {
			loss = bert.StepAccum(ctx, batch, accum)
		}
		tr := newTrace()
		tr.Loss, tr.HasLoss = loss, true
		for _, p := range bert.Params() {
			tr.add("grad:"+p.Name, p.Grad.Data())
		}
		return tr
	}

	want := run(1)
	got := run(accumSteps)
	return compareTraces("bert.accum", m, got, want, fwd, grad)
}

// shardParams builds a deterministic, deliberately uneven parameter set
// for the sharding pins.
func shardParams() []*nn.Param {
	r := tensor.NewRNG(weightSeed)
	sizes := []int{96, 33, 130, 17, 64}
	ps := make([]*nn.Param, len(sizes))
	for i, n := range sizes {
		ps[i] = nn.NewParam(fmt.Sprintf("shard.p%d", i), n)
		ps[i].Value.FillUniform(r, -1, 1)
	}
	return ps
}

// shardDiverge wraps a setup failure as a reportable divergence.
func shardDiverge(tensorName string, err error) []Divergence {
	return []Divergence{{
		Subject: "optim.sharded", Kind: "setup", Tensor: tensorName, Detail: err.Error(),
	}}
}

// compareShardValues diffs parameter values bitwise against the
// unsharded reference.
func compareShardValues(label string, got, want []*nn.Param) []Divergence {
	var divs []Divergence
	for i := range want {
		if d := diffSlices(got[i].Value.Data(), want[i].Value.Data(), Tol{}); d != "" {
			divs = append(divs, Divergence{
				Subject: "optim.sharded", Kind: "grad",
				Tensor: label + ":" + want[i].Name, Detail: d,
			})
		}
	}
	return divs
}

// CheckShardedOptimizer pins the ZeRO-1 optimizer update bitwise against
// the unsharded LAMB, in both execution modes: virtual shards (one
// process, K=3, m/v spilled through the arena between shards) and a real
// world-2 process group over loopback TCP (each rank updates its shard
// and all-gathers the weights).
func CheckShardedOptimizer() []Divergence {
	var divs []Divergence
	ctx := nn.NewCtx(ctxSeed)

	// --- virtual shards -------------------------------------------------
	plain, sharded := shardParams(), shardParams()
	arena, err := memscale.NewArena("")
	if err != nil {
		return shardDiverge("arena", err)
	}
	defer arena.Close()
	po, so := optim.NewLAMB(0.01), optim.NewLAMB(0.01)
	sh, err := memscale.NewSharded(memscale.WrapLAMB(so), sharded, 3, nil)
	if err != nil {
		return shardDiverge("virtual", err)
	}
	sh.SetArena(arena)
	gr := tensor.NewRNG(dataSeed)
	for iter := 0; iter < 3; iter++ {
		for i := range plain {
			plain[i].Grad.FillUniform(gr, -0.1, 0.1)
			copy(sharded[i].Grad.Data(), plain[i].Grad.Data())
		}
		po.Step(ctx, plain)
		if err := sh.Step(ctx, sharded); err != nil {
			return append(divs, shardDiverge("virtual", err)...)
		}
	}
	divs = append(divs, compareShardValues("virtual-k3", sharded, plain)...)

	// --- world 2 over loopback TCP --------------------------------------
	groups, err := joinLoopbackPair()
	if err != nil {
		return append(divs, shardDiverge("world2-join", err)...)
	}
	defer func() {
		for _, g := range groups {
			g.Close()
		}
	}()
	reference := shardParams()
	replicas := [][]*nn.Param{shardParams(), shardParams()}
	ro := optim.NewLAMB(0.01)
	shs := make([]*memscale.Sharded, 2)
	for r := 0; r < 2; r++ {
		shs[r], err = memscale.NewSharded(memscale.WrapLAMB(optim.NewLAMB(0.01)), replicas[r], 2, groups[r])
		if err != nil {
			return append(divs, shardDiverge("world2", err)...)
		}
	}
	gr2 := tensor.NewRNG(dataSeed + 1)
	for iter := 0; iter < 3; iter++ {
		// Identical grads on every replica — the post-all-reduce state.
		for i := range reference {
			reference[i].Grad.FillUniform(gr2, -0.1, 0.1)
			copy(replicas[0][i].Grad.Data(), reference[i].Grad.Data())
			copy(replicas[1][i].Grad.Data(), reference[i].Grad.Data())
		}
		ro.Step(ctx, reference)
		errs := make([]error, 2)
		var wg sync.WaitGroup
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				errs[r] = shs[r].Step(nn.NewCtx(ctxSeed), replicas[r])
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				return append(divs, shardDiverge(fmt.Sprintf("world2-rank%d", r), err)...)
			}
		}
	}
	divs = append(divs, compareShardValues("world2-rank0", replicas[0], reference)...)
	divs = append(divs, compareShardValues("world2-rank1", replicas[1], reference)...)
	return divs
}

// joinLoopbackPair stands up a world-2 distnet group in-process.
func joinLoopbackPair() ([]*distnet.Group, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addr := ln.Addr().String()
	groups := make([]*distnet.Group, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := distnet.Config{Rank: r, World: 2, Addr: addr, Timeout: 10 * time.Second}
			if r == 0 {
				cfg.Listener = ln
			}
			groups[r], errs[r] = distnet.Join(cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			for _, g := range groups {
				if g != nil {
					g.Close()
				}
			}
			return nil, fmt.Errorf("rank %d join: %w", r, err)
		}
	}
	return groups, nil
}
