package audit

import (
	"math"
	"testing"

	"demystbert/internal/kernels"
)

// probeDiff measures the worst relative difference between two modes of a
// subject — development instrumentation for grounding the tolerance table
// in DESIGN.md §10, and a canary that the harness is not passing because
// everything is accidentally bitwise.
func probeDiff(t *testing.T, s *Subject, a, b Mode) (maxRel float64, bitwise bool) {
	t.Helper()
	restore := a.apply()
	ta := s.Run(a)
	restore()
	restore = b.apply()
	tb := s.Run(b)
	restore()
	bitwise = true
	for name, va := range ta.Tensors {
		vb := tb.Tensors[name]
		for i := range va {
			if math.Float32bits(va[i]) != math.Float32bits(vb[i]) {
				bitwise = false
			}
			d := math.Abs(float64(va[i]) - float64(vb[i]))
			den := math.Max(math.Abs(float64(va[i])), math.Abs(float64(vb[i])))
			if den > 1e-12 && d/den > maxRel {
				maxRel = d / den
			}
		}
	}
	return maxRel, bitwise
}

func TestProbePathDeltas(t *testing.T) {
	if testing.Short() {
		t.Skip("instrumentation probe")
	}
	naive := Mode{Path: kernels.GEMMPathNaive, Workers: 1}
	for _, s := range Subjects() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			for _, m := range []Mode{
				{Path: kernels.GEMMPathNaive, Workers: 4},
				{Path: kernels.GEMMPathBlocked, Workers: 1},
				{Path: kernels.GEMMPathPacked, Workers: 1},
				{Path: kernels.GEMMPathBatched, Workers: 4},
				{Path: kernels.GEMMPathFused, Workers: 4},
				{Path: kernels.GEMMPathInt8, Workers: 4},
			} {
				rel, bw := probeDiff(t, s, m, naive)
				t.Logf("%-40s vs oracle: maxRel=%.3g bitwise=%v", m, rel, bw)
			}
			// Packed-vs-blocked bitwise claim from the pre-packed GEMM
			// design: same panel geometry, same micro-kernel schedule.
			rel, bw := probeDiff(t, s,
				Mode{Path: kernels.GEMMPathPacked, Workers: 2},
				Mode{Path: kernels.GEMMPathBlocked, Workers: 2})
			t.Logf("%-40s packed vs blocked: maxRel=%.3g bitwise=%v", s.Name, rel, bw)
			if s.HasAttention {
				base := Mode{Path: kernels.GEMMPathBatched, Workers: 2}
				fused := base
				fused.Fused = true
				rel, bw = probeDiff(t, s, fused, base)
				t.Logf("%-40s fused vs unfused: maxRel=%.3g bitwise=%v", s.Name, rel, bw)
			}
		})
	}
}
