package audit

import (
	"runtime"
	"testing"

	"demystbert/internal/kernels"
)

// TestModeMatrix differential-tests every subject through the execution-
// mode cross product against its naive/serial oracle. `-short` (used by
// the race leg of scripts/check.sh) runs the reduced matrix.
func TestModeMatrix(t *testing.T) {
	for _, s := range Subjects() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			for _, d := range RunModes(s, Modes(s, testing.Short())) {
				t.Errorf("%s", d)
			}
		})
	}
}

// TestGradCheck compares analytic gradients against central differences
// on sampled coordinates, once per GEMM path.
func TestGradCheck(t *testing.T) {
	for _, s := range Subjects() {
		if s.GradCheck == nil {
			continue
		}
		s := s
		t.Run(s.Name, func(t *testing.T) {
			modes := GradModes(s)
			if testing.Short() {
				modes = modes[:1]
			}
			for _, m := range modes {
				for _, d := range s.GradCheck(m) {
					t.Errorf("%s", d)
				}
			}
		})
	}
}

// TestDeterminism pins fixed-seed reproducibility: identical seed and
// worker count must give bitwise-identical results — 3-step LAMB loss
// trajectories and final parameters for the step subjects, whole
// forward+backward traces for the module subjects.
func TestDeterminism(t *testing.T) {
	for _, s := range Subjects() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			for _, m := range DeterminismModes(testing.Short()) {
				for _, d := range CheckDeterminism(s, m) {
					t.Errorf("%s", d)
				}
			}
		})
	}
}

// TestFastPathEquivalence pins the bitwise agreement of the fast paths
// among themselves: packed ≡ blocked (pre-packed panels are byte-identical
// to per-call packing) and batched ≡ blocked (the flattened engine runs
// the same per-matrix schedule).
func TestFastPathEquivalence(t *testing.T) {
	workers := []int{1, runtime.GOMAXPROCS(0)}
	if testing.Short() {
		workers = workers[:1]
	}
	for _, s := range Subjects() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			for _, w := range workers {
				for _, d := range CheckFastPathEquivalence(s, w) {
					t.Errorf("%s", d)
				}
			}
		})
	}
}

// TestAnalyticModels pins reproducibility of the analytical side
// (opgraph builder, fusion studies).
func TestAnalyticModels(t *testing.T) {
	for _, d := range CheckAnalyticModels() {
		t.Errorf("%s", d)
	}
}

// TestMatrixDimensions asserts the harness really enumerates ≥4 mode
// dimensions for the richest subject, so a refactor can't silently
// collapse the matrix.
func TestMatrixDimensions(t *testing.T) {
	var bert *Subject
	for _, s := range Subjects() {
		if s.Name == "bert.step" {
			bert = s
		}
	}
	if bert == nil {
		t.Fatal("bert.step subject missing")
	}
	ms := Modes(bert, false)
	paths := map[kernels.GEMMPath]bool{}
	workers := map[int]bool{}
	var mp, ckpt, fused bool
	for _, m := range ms {
		paths[m.Path] = true
		workers[m.Workers] = true
		mp = mp || m.MP
		ckpt = ckpt || m.Ckpt
		fused = fused || m.Fused
	}
	if len(paths) != 4 {
		t.Errorf("GEMM paths enumerated: %d, want 4", len(paths))
	}
	if wantW := len(dedupInts([]int{1, 2, runtime.GOMAXPROCS(0)})); len(workers) != wantW {
		t.Errorf("worker widths enumerated: %d, want %d", len(workers), wantW)
	}
	if !mp || !ckpt || !fused {
		t.Errorf("dimension missing from matrix: mp=%v ckpt=%v fused=%v", mp, ckpt, fused)
	}
}

// TestOracleDefinition pins the oracle construction: naive path, one
// worker, matching MP, everything else off.
func TestOracleDefinition(t *testing.T) {
	m := Mode{Path: kernels.GEMMPathBatched, Workers: 7, MP: true, Ckpt: true, Fused: true}
	o := m.Oracle()
	want := Mode{Path: kernels.GEMMPathNaive, Workers: 1, MP: true}
	if o != want {
		t.Fatalf("oracle of %v = %v, want %v", m, o, want)
	}
	if !o.Oracle().IsOracle() {
		t.Fatal("oracle must be its own oracle")
	}
}
