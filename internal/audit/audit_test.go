package audit

import (
	"runtime"
	"strings"
	"testing"

	"demystbert/internal/kernels"
	"demystbert/internal/nn"
	"demystbert/internal/profile"
	"demystbert/internal/tensor"
)

// TestModeMatrix differential-tests every subject through the execution-
// mode cross product against its naive/serial oracle. `-short` (used by
// the race leg of scripts/check.sh) runs the reduced matrix.
func TestModeMatrix(t *testing.T) {
	for _, s := range Subjects() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			for _, d := range RunModes(s, Modes(s, testing.Short())) {
				t.Errorf("%s", d)
			}
		})
	}
}

// TestGradCheck compares analytic gradients against central differences
// on sampled coordinates, once per GEMM path.
func TestGradCheck(t *testing.T) {
	for _, s := range Subjects() {
		if s.GradCheck == nil {
			continue
		}
		s := s
		t.Run(s.Name, func(t *testing.T) {
			modes := GradModes(s)
			if testing.Short() {
				modes = modes[:1]
			}
			for _, m := range modes {
				for _, d := range s.GradCheck(m) {
					t.Errorf("%s", d)
				}
			}
		})
	}
}

// TestDeterminism pins fixed-seed reproducibility: identical seed and
// worker count must give bitwise-identical results — 3-step LAMB loss
// trajectories and final parameters for the step subjects, whole
// forward+backward traces for the module subjects.
func TestDeterminism(t *testing.T) {
	for _, s := range Subjects() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			for _, m := range DeterminismModes(testing.Short()) {
				for _, d := range CheckDeterminism(s, m) {
					t.Errorf("%s", d)
				}
			}
		})
	}
}

// TestFastPathEquivalence pins the bitwise agreement of the fast paths
// among themselves: packed ≡ blocked (pre-packed panels are byte-identical
// to per-call packing) and batched ≡ blocked (the flattened engine runs
// the same per-matrix schedule).
func TestFastPathEquivalence(t *testing.T) {
	workers := []int{1, runtime.GOMAXPROCS(0)}
	if testing.Short() {
		workers = workers[:1]
	}
	for _, s := range Subjects() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			for _, w := range workers {
				for _, d := range CheckFastPathEquivalence(s, w) {
					t.Errorf("%s", d)
				}
			}
		})
	}
}

// TestAnalyticModels pins reproducibility of the analytical side
// (opgraph builder, fusion studies).
func TestAnalyticModels(t *testing.T) {
	for _, d := range CheckAnalyticModels() {
		t.Errorf("%s", d)
	}
}

// TestMatrixDimensions asserts the harness really enumerates ≥4 mode
// dimensions for the richest subject, so a refactor can't silently
// collapse the matrix.
func TestMatrixDimensions(t *testing.T) {
	var bert *Subject
	for _, s := range Subjects() {
		if s.Name == "bert.step" {
			bert = s
		}
	}
	if bert == nil {
		t.Fatal("bert.step subject missing")
	}
	ms := Modes(bert, false)
	paths := map[kernels.GEMMPath]bool{}
	workers := map[int]bool{}
	var mp, ckpt, fused bool
	for _, m := range ms {
		paths[m.Path] = true
		workers[m.Workers] = true
		mp = mp || m.MP
		ckpt = ckpt || m.Ckpt
		fused = fused || m.Fused
	}
	if len(paths) != 6 {
		t.Errorf("GEMM paths enumerated: %d, want 6 (naive/blocked/packed/batched/fused/int8)", len(paths))
	}
	if wantW := len(dedupInts([]int{1, 2, runtime.GOMAXPROCS(0)})); len(workers) != wantW {
		t.Errorf("worker widths enumerated: %d, want %d", len(workers), wantW)
	}
	if !mp || !ckpt || !fused {
		t.Errorf("dimension missing from matrix: mp=%v ckpt=%v fused=%v", mp, ckpt, fused)
	}
}

// mutationSubjects builds bias-perturbed variants of the linear and
// eval-mode encoder subjects for the mutation test below. The production
// modules zero-initialize their biases, and a multiplicative fault on a
// zero bias is invisible — the roster subjects would make the mutation
// test vacuously green.
func mutationSubjects() []*Subject {
	lin := moduleSubject("linear.biased", false, func(Mode) *modInstance {
		rng := tensor.NewRNG(weightSeed)
		l := nn.NewLinear("audit.linb", linIn, linOut, profile.CatLinear, rng)
		fillInput(l.B.Value, weightSeed+2)
		x := tensor.New(linTokens, linIn)
		fillInput(x, dataSeed)
		dY := tensor.New(linTokens, linOut)
		fillInput(dY, dataSeed+1)
		return &modInstance{
			forward:  func(ctx *nn.Ctx) *tensor.Tensor { return l.Forward(ctx, x) },
			backward: func(ctx *nn.Ctx, g *tensor.Tensor) *tensor.Tensor { return l.Backward(ctx, g) },
			params:   l.Params(), x: x, dY: dY,
		}
	})
	enc := &Subject{Name: "encoder.eval.biased", HasAttention: true}
	enc.Run = func(m Mode) *Trace {
		rng := tensor.NewRNG(weightSeed)
		e := nn.NewEncoderLayer("audit.encb", encDModel, encHeads, encDFF, 0.1, rng)
		seed := uint64(weightSeed + 2)
		for _, p := range e.Params() {
			if strings.HasSuffix(p.Name, ".bias") {
				fillInput(p.Value, seed)
				seed++
			}
		}
		e.Attn.FusedSoftmax = m.Fused
		mask := paddingMask(encB, encN)
		x := tensor.New(encB*encN, encDModel)
		fillInput(x, dataSeed)
		ctx := nn.NewCtx(ctxSeed)
		ctx.MixedPrecision = m.MP
		ctx.Train = false
		y := e.Forward(ctx, x, encB, encN, mask)
		tr := newTrace()
		tr.add("out", y.Data())
		return tr
	}
	return []*Subject{lin, enc}
}

// TestHarnessCatchesBrokenEpilogue is the harness's own mutation test for
// the new fused paths: it injects a bias fault into the fused tile
// write-back (kernels.SetEpilogueDebugBiasScale — the forced unfused
// reference paths stay honest) and asserts the differential comparison
// flags every fused-engine mode. A harness that stays green under a
// deliberately broken epilogue would be decorative.
func TestHarnessCatchesBrokenEpilogue(t *testing.T) {
	prev := kernels.SetEpilogueDebugBiasScale(1.5)
	defer kernels.SetEpilogueDebugBiasScale(prev)
	if prev != 1 {
		t.Fatalf("debug bias scale at rest = %v, want 1", prev)
	}
	for _, s := range mutationSubjects() {
		for _, m := range []Mode{
			{Path: kernels.GEMMPathFused, Workers: 1},
			{Path: kernels.GEMMPathInt8, Workers: 1},
		} {
			if divs := RunModes(s, []Mode{m}); len(divs) == 0 {
				t.Errorf("%s [%s]: harness failed to flag a 1.5x-skewed fused bias", s.Name, m)
			}
		}
	}
	// With the fault removed the same modes must be green again, proving
	// the failure above came from the injected fault alone.
	kernels.SetEpilogueDebugBiasScale(prev)
	for _, s := range mutationSubjects() {
		for _, d := range RunModes(s, []Mode{
			{Path: kernels.GEMMPathFused, Workers: 1},
			{Path: kernels.GEMMPathInt8, Workers: 1},
		}) {
			t.Errorf("after fault removal: %s", d)
		}
	}
}

// TestOracleDefinition pins the oracle construction: naive path, one
// worker, matching MP, everything else off.
func TestOracleDefinition(t *testing.T) {
	m := Mode{Path: kernels.GEMMPathBatched, Workers: 7, MP: true, Ckpt: true, Fused: true}
	o := m.Oracle()
	want := Mode{Path: kernels.GEMMPathNaive, Workers: 1, MP: true}
	if o != want {
		t.Fatalf("oracle of %v = %v, want %v", m, o, want)
	}
	if !o.Oracle().IsOracle() {
		t.Fatal("oracle must be its own oracle")
	}
}
