package audit

import (
	"fmt"
	"math"
	"reflect"
	"runtime"

	"demystbert/internal/device"
	"demystbert/internal/fusion"
	"demystbert/internal/kernels"
	"demystbert/internal/opgraph"
)

// Fixed-seed determinism pins. The engine's reproducibility claim is:
// identical seed AND identical worker count ⇒ bitwise-identical results.
// Worker count is part of the key because one reduction (SumSquares, used
// by LAMB's trust ratios) chooses its float64 partial-sum grain from the
// pool width, so LAMB trajectories are reproducible per width, not across
// widths. Everything else — forward, backward, dropout, data — partitions
// work disjointly with a fixed per-element order and is worker-invariant
// (which the oracle comparisons in RunModes pin separately, with zero
// tolerance on the naive path).

// determinismSteps is the pinned trajectory length.
const determinismSteps = 3

// DeterminismModes returns the mode points the trajectory pin runs at:
// every worker width at the full fast-path stack plus the oracle path, MP
// both ways (quick: fast path only, FP32 only).
func DeterminismModes(quick bool) []Mode {
	workers := dedupInts([]int{1, 2, runtime.GOMAXPROCS(0)})
	var ms []Mode
	for _, w := range workers {
		ms = append(ms, Mode{Path: kernels.GEMMPathBatched, Workers: w})
		if !quick {
			ms = append(ms, Mode{Path: kernels.GEMMPathNaive, Workers: w})
			ms = append(ms, Mode{Path: kernels.GEMMPathBatched, Workers: w, MP: true})
			// The fused-epilogue and int8 engines must also replay
			// bit-identically: fused shares the packed schedule, and int8
			// re-quantizes per call from the same weights in fixed integer
			// order.
			ms = append(ms, Mode{Path: kernels.GEMMPathFused, Workers: w})
			ms = append(ms, Mode{Path: kernels.GEMMPathInt8, Workers: w})
		}
	}
	return ms
}

// CheckDeterminism re-runs a subject under identical mode+seed and demands
// bitwise-identical results: step subjects compare loss trajectories and
// final parameter fingerprints over determinismSteps LAMB steps; module
// subjects compare whole forward+backward traces.
func CheckDeterminism(s *Subject, m Mode) []Divergence {
	restore := m.apply()
	defer restore()
	if s.Steps == nil {
		a := s.Run(m)
		b := s.Run(m)
		return compareTraces(s.Name+"/rerun", m, b, a, Tol{}, Tol{})
	}
	lossesA, fpA := s.Steps(m, determinismSteps)
	lossesB, fpB := s.Steps(m, determinismSteps)
	var divs []Divergence
	for i := range lossesA {
		if math.Float64bits(lossesA[i]) != math.Float64bits(lossesB[i]) {
			divs = append(divs, Divergence{s.Name, m, "determinism",
				fmt.Sprintf("loss[%d]", i),
				fmt.Sprintf("%v != %v across identical-seed runs", lossesA[i], lossesB[i])})
		}
	}
	if d := diffSlices(fpB, fpA, Tol{}); d != "" {
		divs = append(divs, Divergence{s.Name, m, "determinism", "params", d})
	}
	return divs
}

// CheckAnalyticModels pins the pure-function determinism of the analytical
// side of the codebase: the opgraph builder and the fusion studies must
// produce identical results for identical workloads (they feed the
// paper-facing tables, so nondeterminism there would corrupt reported
// numbers as surely as a kernel divergence).
func CheckAnalyticModels() []Divergence {
	var divs []Divergence
	w := opgraph.Workload{
		Name: "audit", Cfg: stepConfig(true), B: stepB, SeqLen: stepN,
		Precision: opgraph.Mixed, CheckpointEvery: 1,
	}
	g1, g2 := opgraph.Build(w), opgraph.Build(w)
	if !reflect.DeepEqual(g1, g2) {
		divs = append(divs, Divergence{"opgraph.Build", Mode{}, "determinism", "graph",
			"two builds of the same workload differ"})
	}
	dev := device.Presets()[0]
	s1 := fusion.TransformerLayerNormStudy(w, dev)
	s2 := fusion.TransformerLayerNormStudy(w, dev)
	if s1 != s2 {
		divs = append(divs, Divergence{"fusion.TransformerLayerNormStudy", Mode{}, "determinism", "study",
			"two studies of the same workload differ"})
	}
	q1 := fusion.QKV(stepB*stepN, stepConfig(false).DModel, opgraph.Mixed, dev)
	q2 := fusion.QKV(stepB*stepN, stepConfig(false).DModel, opgraph.Mixed, dev)
	if q1 != q2 {
		divs = append(divs, Divergence{"fusion.QKV", Mode{}, "determinism", "study",
			"two studies of the same shape differ"})
	}
	return divs
}
