package audit

import "testing"

// TestAccumEquivalence pins StepAccum bitwise against the full-batch
// Step across the GEMM-path × checkpointing matrix.
func TestAccumEquivalence(t *testing.T) {
	for _, m := range AccumModes(testing.Short()) {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			for _, d := range CheckAccumEquivalence(m) {
				t.Error(d)
			}
		})
	}
}

// TestShardedOptimizerBitwise pins the ZeRO-1 update — virtual shards
// through the arena and a real world-2 loopback group — bitwise against
// the unsharded LAMB.
func TestShardedOptimizerBitwise(t *testing.T) {
	for _, d := range CheckShardedOptimizer() {
		t.Error(d)
	}
}
