// Package audit is a differential correctness harness for the engine's
// semantically-equivalent execution paths. The same math is implemented
// many ways — naive vs blocked vs packed vs batched GEMM, 1..N pool
// workers, FP32 vs mixed-precision storage, stored vs checkpointed
// activations, fused vs unfused attention softmax — and their mutual
// agreement was previously only spot-checked per kernel. The harness runs
// whole modules (each nn layer, the full encoder block, BERT.Step,
// FineTuner.Step) forward+backward through the cross-product of execution
// modes and asserts, per mode:
//
//   - forward outputs and gradients are bitwise-equal to the naive/serial
//     oracle, or within a stated per-path tolerance (MLPerf-style
//     reference checking);
//   - analytic gradients match central-difference gradients on sampled
//     coordinates (gradcheck.go);
//   - fixed seed + fixed worker count ⇒ bitwise-identical loss
//     trajectories over repeated multi-step runs (determinism.go).
//
// Tolerances per dimension are stated in DESIGN.md §10 together with the
// rationale for each. A tolerance of zero means bitwise.
package audit

import (
	"fmt"
	"math"
	"runtime"
	"sort"

	"demystbert/internal/kernels"
)

// Mode is one point in the execution-mode cross product.
type Mode struct {
	// Path forces every GEMM entry point down one implementation.
	Path kernels.GEMMPath
	// Workers is the kernel pool width (kernels.SetMaxWorkers).
	Workers int
	// MP enables mixed-precision activation storage (nn.Ctx.MixedPrecision).
	MP bool
	// Ckpt enables activation checkpointing (BERT.CheckpointEvery=1);
	// ignored by subjects without a checkpointing path.
	Ckpt bool
	// Fused enables the fused scale/mask/softmax attention kernel;
	// ignored by subjects without attention.
	Fused bool
}

func (m Mode) String() string {
	return fmt.Sprintf("path=%s/w=%d/mp=%v/ckpt=%v/fused=%v",
		m.Path, m.Workers, m.MP, m.Ckpt, m.Fused)
}

// Oracle returns the reference mode this mode is differenced against: the
// naive GEMM loops on one worker with every fast-path feature off, but the
// SAME mixed-precision setting — MP changes the function being computed
// (outputs are quantized through binary16), so an MP mode's oracle must
// quantize identically or every comparison would just measure
// quantization. A separate loose FP32-vs-MP sanity check is done by
// RunAudit when m.MP is set.
func (m Mode) Oracle() Mode {
	return Mode{Path: kernels.GEMMPathNaive, Workers: 1, MP: m.MP}
}

// IsOracle reports whether the mode is its own oracle.
func (m Mode) IsOracle() bool { return m == m.Oracle() }

// apply installs the mode's global knobs (GEMM path, worker count) and
// returns a restore function. Per-context knobs (MP, Ckpt, Fused) are
// applied by each subject's runner.
func (m Mode) apply() (restore func()) {
	prevPath := kernels.SetGEMMPath(m.Path)
	prevW := kernels.SetMaxWorkers(m.Workers)
	return func() {
		kernels.SetGEMMPath(prevPath)
		kernels.SetMaxWorkers(prevW)
	}
}

// Modes enumerates the cross product for a subject. Worker counts are
// {1, 2, GOMAXPROCS} deduplicated; dimensions the subject does not have
// (fusion without attention, checkpointing without a checkpoint path) are
// pinned to false rather than enumerated, so the matrix has no aliased
// duplicate modes.
func Modes(s *Subject, quick bool) []Mode {
	paths := []kernels.GEMMPath{
		kernels.GEMMPathNaive, kernels.GEMMPathBlocked,
		kernels.GEMMPathPacked, kernels.GEMMPathBatched,
		kernels.GEMMPathFused, kernels.GEMMPathInt8,
	}
	workers := dedupInts([]int{1, 2, runtime.GOMAXPROCS(0)})
	mps := []bool{false, true}
	ckpts := []bool{false}
	if s.HasCkpt {
		ckpts = []bool{false, true}
	}
	fuseds := []bool{false}
	if s.HasAttention {
		fuseds = []bool{false, true}
	}
	if quick {
		// Reduced matrix for race runs and -short: keep every value of
		// every dimension represented, drop the full cross product.
		workers = dedupInts([]int{1, runtime.GOMAXPROCS(0)})
		mps = []bool{false}
	}
	var ms []Mode
	for _, p := range paths {
		for _, w := range workers {
			for _, mp := range mps {
				for _, ck := range ckpts {
					for _, fu := range fuseds {
						ms = append(ms, Mode{Path: p, Workers: w, MP: mp, Ckpt: ck, Fused: fu})
					}
				}
			}
		}
	}
	return ms
}

func dedupInts(xs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// Tol is a combined absolute/relative tolerance; the zero value means
// bitwise equality.
type Tol struct {
	Abs, Rel float64
}

func (t Tol) zero() bool { return t.Abs == 0 && t.Rel == 0 }

func (t Tol) max(o Tol) Tol {
	return Tol{Abs: math.Max(t.Abs, o.Abs), Rel: math.Max(t.Rel, o.Rel)}
}

// Per-dimension tolerances (rationale in DESIGN.md §10).
var (
	// tolNaiveWorkers: the naive path partitions output rows disjointly
	// and computes each element in the identical serial order for any
	// worker count, so it must be bitwise at any width.
	tolNaiveWorkers = Tol{}
	// tolBlockedFwd: the blocked/packed/batched engines accumulate each
	// dot product in kc-sized partial sums with an alpha-scaled packed A
	// operand, a different float32 accumulation order than the naive
	// loops, so results differ by rounding. Forward activations in the
	// audit subjects stay O(1) with k ≤ 64.
	tolBlockedFwd = Tol{Abs: 1e-5, Rel: 1e-5}
	// tolBlockedGrad: gradients compose more GEMMs (dX and dW per
	// linear) and sum longer chains, so rounding differences compound.
	tolBlockedGrad = Tol{Abs: 1e-4, Rel: 1e-4}
	// tolFused: the fused softmax kernel applies scale and mask in one
	// expression; Go may contract s*x+m into an FMA on some
	// architectures, so a tiny slack is allowed (bitwise on amd64).
	tolFused = Tol{Abs: 1e-6, Rel: 1e-6}
	// tolMPAmplify: with MP storage every layer output is quantized to
	// binary16; a 1-ulp float32 path difference before the quantizer can
	// land on a different half, i.e. a 2^-11 relative step. Applied only
	// when the path already has nonzero tolerance (naive/worker modes
	// stay bitwise through the quantizer).
	tolMPAmplify = Tol{Abs: 2e-3, Rel: 2e-3}
	// tolMPSanity: the loose FP32-vs-MP forward check. ~2^-11 relative
	// per quantization, compounding across layers.
	tolMPSanity = Tol{Abs: 5e-2, Rel: 5e-2}
	// tolInt8Fwd: the int8 path quantizes activations to 8 bits (per-row
	// scale) and weights to 7 bits (per-column scale), so its forward
	// output differs from the f32 oracle by real quantization error, not
	// rounding — ~2^-7 relative per operand, compounding through layers
	// and amplified by LayerNorm's division by small row deviations.
	// Pure relative error on near-zero outputs is unbounded (the probe
	// in probe_test.go logs maxRel ≈ 2 on tiny elements — as it does for
	// the f32 blocked path), so the absolute term carries those and the
	// relative term bounds the O(1)-magnitude bulk of the distribution.
	tolInt8Fwd = Tol{Abs: 1e-1, Rel: 1e-1}
	// tolInt8Grad: gradients flow through f32 backward GEMMs but use the
	// int8 forward's saved activations and outputs, so forward
	// quantization error propagates into every parameter gradient, and
	// backward reductions over quantized activations accumulate it — the
	// gradient band sits a factor ~3 wider than the forward one.
	tolInt8Grad = Tol{Abs: 3e-1, Rel: 3e-1}
)

// tolerances returns the forward and gradient tolerances for comparing
// mode m against its oracle.
func tolerances(m Mode) (fwd, grad Tol) {
	switch {
	case m.Path == kernels.GEMMPathInt8:
		// Quantized forward: real approximation error, not rounding.
		fwd = fwd.max(tolInt8Fwd)
		grad = grad.max(tolInt8Grad)
	case m.Path != kernels.GEMMPathNaive:
		fwd = fwd.max(tolBlockedFwd)
		grad = grad.max(tolBlockedGrad)
	}
	if m.Fused {
		fwd = fwd.max(tolFused)
		grad = grad.max(tolFused)
	}
	// Ckpt contributes zero: recomputed activations replay dropout masks
	// and must be bit-identical to the stored originals.
	if m.MP && !fwd.zero() {
		fwd = fwd.max(tolMPAmplify)
		grad = grad.max(tolMPAmplify)
	}
	return fwd, grad
}

// Trace is everything a subject run produces that semantics can be judged
// by: the forward outputs (plus input gradients) and every parameter
// gradient, keyed by name, and the scalar loss for step subjects.
type Trace struct {
	Loss    float64
	HasLoss bool
	Tensors map[string][]float32
}

func newTrace() *Trace { return &Trace{Tensors: map[string][]float32{}} }

func (tr *Trace) add(name string, data []float32) {
	cp := make([]float32, len(data))
	copy(cp, data)
	tr.Tensors[name] = cp
}

func (tr *Trace) sortedNames() []string {
	names := make([]string, 0, len(tr.Tensors))
	for n := range tr.Tensors {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Divergence is one tolerance violation between a mode and its oracle.
type Divergence struct {
	Subject string
	Mode    Mode
	Kind    string // "forward", "grad", "gradcheck", "determinism", "mp-sanity"
	Tensor  string
	Detail  string
}

func (d Divergence) String() string {
	return fmt.Sprintf("%s [%s] %s %s: %s", d.Subject, d.Mode, d.Kind, d.Tensor, d.Detail)
}

// compareTraces diffs a trace against the oracle trace and returns one
// divergence per out-of-tolerance tensor. Forward tensors (out/dx/loss)
// use fwd, parameter gradients use grad.
func compareTraces(subject string, m Mode, got, want *Trace, fwd, grad Tol) []Divergence {
	var divs []Divergence
	if got.HasLoss {
		if d := diffScalar(got.Loss, want.Loss, fwd); d != "" {
			divs = append(divs, Divergence{subject, m, "forward", "loss", d})
		}
	}
	for _, name := range want.sortedNames() {
		g, w := got.Tensors[name], want.Tensors[name]
		tol := fwd
		kind := "forward"
		if len(name) > 5 && name[:5] == "grad:" {
			tol, kind = grad, "grad"
		}
		if d := diffSlices(g, w, tol); d != "" {
			divs = append(divs, Divergence{subject, m, kind, name, d})
		}
	}
	return divs
}

// diffSlices reports the worst element-wise violation of tol, or "" when
// the slices agree. A zero tol demands bit equality (so ±0 and NaN
// patterns are distinguished too).
func diffSlices(got, want []float32, tol Tol) string {
	if len(got) != len(want) {
		return fmt.Sprintf("length %d vs %d", len(got), len(want))
	}
	worst, worstIdx := 0.0, -1
	for i := range want {
		g, w := got[i], want[i]
		if tol.zero() {
			if math.Float32bits(g) != math.Float32bits(w) {
				return fmt.Sprintf("elem %d: %v (%#08x) != %v (%#08x), want bitwise",
					i, g, math.Float32bits(g), w, math.Float32bits(w))
			}
			continue
		}
		diff := math.Abs(float64(g) - float64(w))
		bound := tol.Abs + tol.Rel*math.Max(math.Abs(float64(g)), math.Abs(float64(w)))
		if diff > bound && diff-bound > worst {
			worst, worstIdx = diff-bound, i
		}
	}
	if worstIdx >= 0 {
		return fmt.Sprintf("elem %d: %v vs %v (|Δ|=%.3g, tol abs=%g rel=%g)",
			worstIdx, got[worstIdx], want[worstIdx], math.Abs(float64(got[worstIdx])-float64(want[worstIdx])), tol.Abs, tol.Rel)
	}
	return ""
}

func diffScalar(got, want float64, tol Tol) string {
	if tol.zero() {
		if math.Float64bits(got) != math.Float64bits(want) {
			return fmt.Sprintf("%v != %v, want bitwise", got, want)
		}
		return ""
	}
	diff := math.Abs(got - want)
	if diff > tol.Abs+tol.Rel*math.Max(math.Abs(got), math.Abs(want)) {
		return fmt.Sprintf("%v vs %v (|Δ|=%.3g, tol abs=%g rel=%g)", got, want, diff, tol.Abs, tol.Rel)
	}
	return ""
}

// CheckFastPathEquivalence pins two empirically-verified bitwise
// invariants among the fast paths themselves (a much stronger statement
// than the tolerance-based oracle comparison): packed ≡ blocked — the
// pre-packed engine hands the tile grid byte-identical micro-panels with
// the identical schedule, so skipping the per-call packB pass must not
// change a single bit — batched ≡ blocked — the flattened batched engine
// runs the same micro-kernel over the same kc blocking per matrix — and
// fused ≡ blocked — the fused-epilogue engine shares the packed schedule
// and performs the tail's exact float expressions in the unfused order,
// so folding bias/GeLU/residual/LN into the write-back must not change a
// single bit either (the headline numerics claim of the epilogue engine).
func CheckFastPathEquivalence(s *Subject, workers int) []Divergence {
	run := func(p kernels.GEMMPath) *Trace {
		m := Mode{Path: p, Workers: workers}
		restore := m.apply()
		defer restore()
		return s.Run(m)
	}
	blocked := run(kernels.GEMMPathBlocked)
	var divs []Divergence
	for _, p := range []kernels.GEMMPath{kernels.GEMMPathPacked, kernels.GEMMPathBatched, kernels.GEMMPathFused} {
		m := Mode{Path: p, Workers: workers}
		for _, d := range compareTraces(s.Name, m, run(p), blocked, Tol{}, Tol{}) {
			d.Kind = "fastpath-equiv"
			divs = append(divs, d)
		}
	}
	return divs
}

// RunModes runs a subject through every mode in ms and differences each
// against its oracle (oracle traces are computed once per distinct oracle
// mode). When an MP mode is present, its forward output is additionally
// sanity-checked against the FP32 oracle at tolMPSanity.
func RunModes(s *Subject, ms []Mode) []Divergence {
	oracles := map[Mode]*Trace{}
	oracleOf := func(m Mode) *Trace {
		if tr, ok := oracles[m]; ok {
			return tr
		}
		restore := m.apply()
		tr := s.Run(m)
		restore()
		oracles[m] = tr
		return tr
	}
	var divs []Divergence
	for _, m := range ms {
		want := oracleOf(m.Oracle())
		var got *Trace
		if m.IsOracle() {
			got = want
		} else {
			restore := m.apply()
			got = s.Run(m)
			restore()
		}
		fwd, grad := tolerances(m)
		divs = append(divs, compareTraces(s.Name, m, got, want, fwd, grad)...)
		if m.MP && m.Path == kernels.GEMMPathNaive && m.Workers == 1 && !m.Ckpt && !m.Fused {
			// Loose FP32-vs-MP sanity: quantized forward must stay near
			// the full-precision forward (gradients excluded; surrogate
			// upstream gradients make their MP deltas uninformative).
			fp32 := oracleOf(Mode{Path: kernels.GEMMPathNaive, Workers: 1})
			for _, d := range compareTraces(s.Name, m, got, fp32, tolMPSanity, Tol{Abs: math.Inf(1)}) {
				if d.Kind == "forward" {
					d.Kind = "mp-sanity"
					divs = append(divs, d)
				}
			}
		}
	}
	return divs
}
