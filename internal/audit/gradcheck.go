package audit

import (
	"fmt"
	"math"

	"demystbert/internal/kernels"
	"demystbert/internal/nn"
	"demystbert/internal/tensor"
)

// Central-difference gradient checking. For module subjects the scalar
// objective is the surrogate loss L = Σ dY·y (whose exact gradient w.r.t.
// any leaf is the analytic backward pass applied to upstream gradient dY);
// for step subjects it is the real training loss. Every evaluation builds
// a fresh context from the same seed, so dropout masks replay identically
// and the objective is a deterministic function of the parameters.
//
// Gradcheck is skipped under mixed precision: binary16 quantization makes
// the objective a staircase whose central differences measure the
// quantizer, not the gradient.
const (
	// gradEps is the relative half-step. float32 forward noise is ~1e-7
	// relative, so eps must be large enough that (L+ − L−) is dominated
	// by signal; 1e-2 balances that against O(eps²) truncation.
	gradEps = 1e-2
	// gradSamples coordinates are probed per tensor.
	gradSamples = 4
)

// gradTol bounds |analytic − numeric|: float32 forward noise divided by
// the step (≈1e-5/1e-2) sets the absolute floor; truncation error scales
// with the gradient itself and sets the relative part.
var gradTol = Tol{Abs: 1e-2, Rel: 2e-2}

func dot64(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// checkCoords probes sampled coordinates of buf, comparing grad[i] against
// the central difference of eval. bump is called after every mutation of
// buf (parameters must invalidate their pack caches; inputs pass a no-op).
func checkCoords(subject string, m Mode, tname string, buf, grad []float32,
	bump func(), eval func() float64, rng *tensor.RNG) []Divergence {
	var divs []Divergence
	for c := 0; c < gradSamples; c++ {
		i := rng.Intn(len(buf))
		orig := buf[i]
		eps := float32(gradEps) * max(1, float32(math.Abs(float64(orig))))
		buf[i] = orig + eps
		bump()
		hi := buf[i]
		lp := eval()
		buf[i] = orig - eps
		bump()
		lo := buf[i]
		lm := eval()
		buf[i] = orig
		bump()
		// Divide by the actually-realized float32 step, not 2·eps.
		num := (lp - lm) / (float64(hi) - float64(lo))
		ana := float64(grad[i])
		diff := math.Abs(ana - num)
		if diff > gradTol.Abs+gradTol.Rel*math.Max(math.Abs(ana), math.Abs(num)) {
			divs = append(divs, Divergence{subject, m, "gradcheck", tname,
				fmt.Sprintf("coord %d: analytic %.6g vs central-diff %.6g (|Δ|=%.3g)", i, ana, num, diff)})
		}
	}
	return divs
}

// gradCheckModule checks a module instance's input gradient and every
// parameter gradient under mode m.
func gradCheckModule(subject string, m Mode, inst *modInstance) []Divergence {
	if m.MP {
		return nil
	}
	restore := m.apply()
	defer restore()

	ctx := nn.NewCtx(ctxSeed)
	inst.forward(ctx)
	for _, p := range inst.params {
		p.ZeroGrad()
	}
	dx := inst.backward(ctx, inst.dY)

	eval := func() float64 {
		c := nn.NewCtx(ctxSeed)
		y := inst.forward(c)
		return dot64(inst.dY.Data(), y.Data())
	}
	rng := tensor.NewRNG(4242)
	divs := checkCoords(subject, m, "dx", inst.x.Data(), dx.Data(), func() {}, eval, rng)
	for _, p := range inst.params {
		divs = append(divs, checkCoords(subject, m, "grad:"+p.Name,
			p.Value.Data(), p.Grad.Data(), p.BumpGen, eval, rng)...)
	}
	return divs
}

// gradCheckLoss checks parameter gradients of a real-loss subject:
// analytic runs forward+backward populating grads, loss evaluates the
// objective at the current parameters.
func gradCheckLoss(subject string, m Mode, params []*nn.Param,
	loss func() float64, analytic func()) []Divergence {
	if m.MP {
		return nil
	}
	restore := m.apply()
	defer restore()

	analytic()
	rng := tensor.NewRNG(4242)
	var divs []Divergence
	for _, p := range params {
		divs = append(divs, checkCoords(subject, m, "grad:"+p.Name,
			p.Value.Data(), p.Grad.Data(), p.BumpGen, loss, rng)...)
	}
	return divs
}

// GradModes returns the reduced mode list gradchecking runs at: one mode
// per GEMM path (finite differences validate analytic-vs-numeric per
// implementation; the worker dimension is already pinned bitwise by the
// oracle comparison), with softmax fusion exercised on the batched path
// and the fused-epilogue engine exercised as its own path. The int8 path
// is deliberately excluded: its forward is a quantized step function of
// the parameters, so central differences measure the quantizer's
// staircase, not the gradient (the same reason MP modes are skipped).
func GradModes(s *Subject) []Mode {
	ms := []Mode{
		{Path: kernels.GEMMPathNaive, Workers: 1},
		{Path: kernels.GEMMPathBlocked, Workers: 1},
		{Path: kernels.GEMMPathPacked, Workers: 1},
		{Path: kernels.GEMMPathFused, Workers: 1},
	}
	last := Mode{Path: kernels.GEMMPathBatched, Workers: 2}
	if s.HasAttention {
		last.Fused = true
	}
	return append(ms, last)
}
