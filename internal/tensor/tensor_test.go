package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 {
		t.Fatalf("Size = %d, want 24", x.Size())
	}
	if x.Rank() != 3 {
		t.Fatalf("Rank = %d, want 3", x.Rank())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestOfWrapsWithoutCopy(t *testing.T) {
	d := []float32{1, 2, 3, 4, 5, 6}
	x := Of(d, 2, 3)
	d[0] = 42
	if x.At(0, 0) != 42 {
		t.Fatal("Of must wrap the slice, not copy it")
	}
}

func TestOfLengthMismatchPanics(t *testing.T) {
	defer expectPanic(t, "Of with mismatched length")
	Of([]float32{1, 2, 3}, 2, 2)
}

func TestNegativeDimensionPanics(t *testing.T) {
	defer expectPanic(t, "New with negative dim")
	New(2, -1)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4, 5)
	x.Set(7.5, 2, 1, 3)
	if got := x.At(2, 1, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	// Row-major offset: ((2*4)+1)*5 + 3 = 48.
	if x.Data()[48] != 7.5 {
		t.Fatal("Set did not write the row-major offset")
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	x := New(2, 2)
	defer expectPanic(t, "At out of range")
	x.At(2, 0)
}

func TestAtWrongRankPanics(t *testing.T) {
	x := New(2, 2)
	defer expectPanic(t, "At with wrong rank")
	x.At(1)
}

func TestReshapeSharesStorage(t *testing.T) {
	x := New(4, 6)
	y := x.Reshape(2, 12)
	y.Set(3, 1, 0)
	if x.At(2, 0) != 3 {
		t.Fatal("Reshape must share storage")
	}
}

func TestReshapeInfer(t *testing.T) {
	x := New(4, 6)
	y := x.Reshape(2, -1)
	if y.Dim(1) != 12 {
		t.Fatalf("inferred dim = %d, want 12", y.Dim(1))
	}
	z := x.Reshape(-1)
	if z.Rank() != 1 || z.Dim(0) != 24 {
		t.Fatalf("flatten got shape %v", z.Shape())
	}
}

func TestReshapeBadSizePanics(t *testing.T) {
	x := New(4, 6)
	defer expectPanic(t, "Reshape to wrong size")
	x.Reshape(5, 5)
}

func TestReshapeDoubleInferPanics(t *testing.T) {
	x := New(4, 6)
	defer expectPanic(t, "Reshape with two -1 dims")
	x.Reshape(-1, -1)
}

func TestCloneIsDeep(t *testing.T) {
	x := New(2, 2)
	x.Fill(1)
	y := x.Clone()
	y.Set(9, 0, 0)
	if x.At(0, 0) != 1 {
		t.Fatal("Clone must be a deep copy")
	}
}

func TestCopyFromShapeMismatchPanics(t *testing.T) {
	x, y := New(2, 3), New(3, 2)
	defer expectPanic(t, "CopyFrom shape mismatch")
	x.CopyFrom(y)
}

func TestFillAndZero(t *testing.T) {
	x := New(10)
	x.Fill(2.5)
	for _, v := range x.Data() {
		if v != 2.5 {
			t.Fatal("Fill failed")
		}
	}
	x.Zero()
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}

func TestRowView(t *testing.T) {
	x := Of([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	r := x.Row(1)
	if len(r) != 3 || r[0] != 4 || r[2] != 6 {
		t.Fatalf("Row(1) = %v", r)
	}
	r[0] = 40
	if x.At(1, 0) != 40 {
		t.Fatal("Row must be a view")
	}
}

func TestBatchView(t *testing.T) {
	x := New(2, 3, 4)
	for i := range x.Data() {
		x.Data()[i] = float32(i)
	}
	b := x.Batch(1)
	if b.Rank() != 2 || b.Dim(0) != 3 || b.Dim(1) != 4 {
		t.Fatalf("Batch shape = %v", b.Shape())
	}
	if b.At(0, 0) != 12 {
		t.Fatalf("Batch(1)[0,0] = %v, want 12", b.At(0, 0))
	}
	b.Set(99, 0, 0)
	if x.At(1, 0, 0) != 99 {
		t.Fatal("Batch must be a view")
	}
}

func TestBatchOutOfRangePanics(t *testing.T) {
	x := New(2, 3)
	defer expectPanic(t, "Batch out of range")
	x.Batch(2)
}

func TestDimNegativeIndex(t *testing.T) {
	x := New(2, 3, 4)
	if x.Dim(-1) != 4 || x.Dim(-3) != 2 {
		t.Fatal("negative Dim index failed")
	}
}

func TestSameShape(t *testing.T) {
	if !SameShape(New(2, 3), New(2, 3)) {
		t.Fatal("identical shapes reported different")
	}
	if SameShape(New(2, 3), New(3, 2)) {
		t.Fatal("different shapes reported same")
	}
	if SameShape(New(2, 3), New(2, 3, 1)) {
		t.Fatal("different ranks reported same")
	}
}

func TestString(t *testing.T) {
	if s := New(2, 3).String(); s != "Tensor[2 3]" {
		t.Fatalf("String = %q", s)
	}
}

// Property: Reshape preserves the flattened contents for any factorization.
func TestReshapePreservesDataProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		a, b := 1+r.Intn(8), 1+r.Intn(8)
		x := New(a, b)
		x.FillUniform(r, -1, 1)
		y := x.Reshape(b, a).Reshape(1, a*b).Reshape(a, b)
		for i := range x.Data() {
			if x.Data()[i] != y.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: row-major addressing matches manual stride computation.
func TestAddressingProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		d0, d1, d2 := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		x := New(d0, d1, d2)
		i, j, k := r.Intn(d0), r.Intn(d1), r.Intn(d2)
		x.Set(1.25, i, j, k)
		return x.Data()[(i*d1+j)*d2+k] == 1.25
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
}

func TestRNGZeroSeedIsValid(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero-seeded RNG appears stuck")
	}
}

func TestFloat32InUnitInterval(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 = %v outside [0,1)", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(11)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn(5) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("Intn(5) only produced %d distinct values", len(seen))
	}
}

func TestIntnNonPositivePanics(t *testing.T) {
	r := NewRNG(1)
	defer expectPanic(t, "Intn(0)")
	r.Intn(0)
}

func TestNormFloat32Moments(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := float64(r.NormFloat32())
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestFillUniformRange(t *testing.T) {
	x := New(1000)
	x.FillUniform(NewRNG(2), -3, 5)
	for _, v := range x.Data() {
		if v < -3 || v >= 5 {
			t.Fatalf("uniform fill out of range: %v", v)
		}
	}
}

func TestFillXavierBound(t *testing.T) {
	x := New(64, 64)
	x.FillXavier(NewRNG(4), 64, 64)
	limit := float32(math.Sqrt(6.0 / 128.0))
	for _, v := range x.Data() {
		if v < -limit || v > limit {
			t.Fatalf("xavier value %v outside ±%v", v, limit)
		}
	}
}

func expectPanic(t *testing.T, what string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("%s did not panic", what)
	}
}
