package tensor

import (
	"math"
	"testing"
)

// Exhaustive binary16 conformance: every one of the 65536 half patterns is
// checked against an independently-written reference, and the
// round-to-nearest-even boundary is probed at the exact midpoint of every
// adjacent pair of finite halfs (midpoints carry one extra significand bit
// and are therefore exactly representable in float32, so the probes are
// free of their own rounding error).

// refDecodeF16 is a reference binary16 decoder built on math.Ldexp rather
// than on bit surgery, so it shares no code path with F16.Float32.
func refDecodeF16(h uint16) float64 {
	sign := 1.0
	if h&0x8000 != 0 {
		sign = -1
	}
	exp := int(h >> 10 & 0x1F)
	mant := int(h & 0x3FF)
	switch exp {
	case 0: // signed zero or subnormal: mant * 2^-24
		return sign * math.Ldexp(float64(mant), -24)
	case 0x1F:
		if mant == 0 {
			return sign * math.Inf(1)
		}
		return math.NaN()
	default: // (1024+mant) * 2^(exp-25)
		return sign * math.Ldexp(float64(1024+mant), exp-25)
	}
}

func TestF16DecodeReferenceExhaustive(t *testing.T) {
	for h := 0; h < 1<<16; h++ {
		got := F16(h).Float32()
		want := refDecodeF16(uint16(h))
		if math.IsNaN(want) {
			if !math.IsNaN(float64(got)) {
				t.Fatalf("pattern %#04x: got %v, want NaN", h, got)
			}
			// NaN decode contract: payload widens into the float32
			// mantissa top bits, sign preserved.
			wantBits := uint32(h&0x8000)<<16 | 0x7F800000 | uint32(h&0x3FF)<<13
			if bits := math.Float32bits(got); bits != wantBits {
				t.Fatalf("pattern %#04x: NaN decode bits %#08x, want %#08x", h, bits, wantBits)
			}
			continue
		}
		// Bit-compare so ±0 are distinguished.
		if math.Float32bits(got) != math.Float32bits(float32(want)) {
			t.Fatalf("pattern %#04x: decode %v (%#08x), reference %v (%#08x)",
				h, got, math.Float32bits(got), want, math.Float32bits(float32(want)))
		}
	}
}

func TestF16RoundTripExhaustive(t *testing.T) {
	for h := 0; h < 1<<16; h++ {
		back := ToF16(F16(h).Float32())
		want := F16(h)
		if h&0x7C00 == 0x7C00 && h&0x3FF != 0 {
			// NaN contract: payload bits survive, the quiet bit is
			// forced (a signaling half NaN comes back quieted, never
			// collapsed to a canonical payload or to Inf).
			want = F16(h) | 0x0200
		}
		if back != want {
			t.Fatalf("pattern %#04x round-trips to %#04x, want %#04x", h, back, want)
		}
	}
}

// TestF16RoundToNearestEvenExhaustive walks every adjacent pair of finite
// positive halfs (subnormals through 65504) and checks the three decisive
// inputs around their midpoint: the exact midpoint must round to the
// pattern with an even low bit, and the closest float32 on either side of
// the midpoint must round toward its own neighbor.
func TestF16RoundToNearestEvenExhaustive(t *testing.T) {
	for h := uint16(0); h < 0x7BFF; h++ {
		lo := F16(h).Float32()
		hi := F16(h + 1).Float32()
		mid := float32(refDecodeF16(h)+refDecodeF16(h+1)) / 2

		even := F16(h)
		if h&1 != 0 {
			even = F16(h + 1)
		}
		if got := ToF16(mid); got != even {
			t.Fatalf("midpoint of %#04x/%#04x (%v): rounds to %#04x, want even %#04x",
				h, h+1, mid, got, even)
		}
		if below := math.Nextafter32(mid, lo); ToF16(below) != F16(h) {
			t.Fatalf("just below midpoint of %#04x/%#04x (%v): rounds to %#04x, want %#04x",
				h, h+1, below, ToF16(below), h)
		}
		if above := math.Nextafter32(mid, hi); ToF16(above) != F16(h+1) {
			t.Fatalf("just above midpoint of %#04x/%#04x (%v): rounds to %#04x, want %#04x",
				h, h+1, above, ToF16(above), h+1)
		}
	}
	// Overflow boundary: the "midpoint" between 65504 (0x7BFF) and the
	// first unrepresentable half step (65536) is 65520; IEEE RNE rounds
	// it to infinity, and anything strictly below it back to 65504.
	if got := ToF16(65520); got != 0x7C00 {
		t.Fatalf("65520 rounds to %#04x, want +Inf", got)
	}
	if got := ToF16(math.Nextafter32(65520, 0)); got != 0x7BFF {
		t.Fatalf("just below 65520 rounds to %#04x, want 0x7BFF", got)
	}
}

// TestF16NegativeSymmetry pins sign symmetry: rounding must be
// sign-magnitude (negating the input flips only the sign bit of the
// output). With the positive half-plane proven exhaustively above, this
// extends every boundary result to negative inputs.
func TestF16NegativeSymmetry(t *testing.T) {
	probe := func(f float32) {
		p, n := ToF16(f), ToF16(-f)
		if p^n != 0x8000 {
			t.Fatalf("asymmetric rounding at %v: +%#04x vs -%#04x", f, p, n)
		}
	}
	for h := uint16(0); h < 0x7BFF; h++ {
		mid := float32(refDecodeF16(h)+refDecodeF16(h+1)) / 2
		probe(mid)
		probe(math.Nextafter32(mid, F16(h).Float32()))
		probe(math.Nextafter32(mid, F16(h+1).Float32()))
	}
	probe(65520)
	probe(1e9)
	probe(1e-10)
}

func TestF16NaNPayloadPreserved(t *testing.T) {
	cases := []struct {
		f32bits uint32
		want    F16
	}{
		// Quiet NaN with payload in the top bits.
		{0x7FC00000, 0x7E00},
		{0xFFC00000, 0xFE00},
		// Payload bits below the half range are dropped, top bits kept.
		{0x7FC0A000, 0x7E05},
		// Signaling NaN whose payload lives only in the low bits must
		// not collapse into Inf: the quiet bit is forced.
		{0x7F800001, 0x7E00},
		{0x7F801fff, 0x7E00},
		// Signaling NaN with representable payload: payload kept, quieted.
		{0x7F822000, 0x7E11},
	}
	for _, c := range cases {
		if got := ToF16(math.Float32frombits(c.f32bits)); got != c.want {
			t.Errorf("ToF16(NaN %#08x) = %#04x, want %#04x", c.f32bits, got, c.want)
		}
	}
}
