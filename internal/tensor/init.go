package tensor

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift64*). The engine uses it instead of math/rand so that model
// initialization and dropout masks are reproducible across runs and
// platforms, which the gradient-check and integration tests rely on.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is replaced by a
// fixed non-zero constant, since the xorshift state must be non-zero.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / float32(1<<24)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat32 returns a standard-normal value using the Box–Muller
// transform.
func (r *RNG) NormFloat32() float32 {
	// Avoid log(0) by keeping u1 strictly positive.
	u1 := float64(r.Float32())
	for u1 == 0 {
		u1 = float64(r.Float32())
	}
	u2 := float64(r.Float32())
	return float32(math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2))
}

// FillUniform fills t with uniform values in [lo, hi).
func (t *Tensor) FillUniform(r *RNG, lo, hi float32) {
	scale := hi - lo
	for i := range t.data {
		t.data[i] = lo + scale*r.Float32()
	}
}

// FillNormal fills t with normal values of the given mean and standard
// deviation.
func (t *Tensor) FillNormal(r *RNG, mean, std float32) {
	for i := range t.data {
		t.data[i] = mean + std*r.NormFloat32()
	}
}

// FillXavier fills t using Xavier/Glorot uniform initialization for a
// weight matrix with the given fan-in and fan-out.
func (t *Tensor) FillXavier(r *RNG, fanIn, fanOut int) {
	limit := float32(math.Sqrt(6 / float64(fanIn+fanOut)))
	t.FillUniform(r, -limit, limit)
}
