// Package tensor provides the dense float32 tensor type used by the
// real-execution BERT engine, together with shape utilities, deterministic
// random initialization, and IEEE-754 half-precision (binary16) storage
// conversion used to emulate mixed-precision memory traffic.
//
// Tensors are row-major and contiguous. The package is deliberately small:
// it supplies exactly the functionality the kernels in internal/kernels
// need, with no lazy evaluation or device abstraction.
package tensor

import (
	"fmt"
	"strings"
)

// Tensor is a dense, row-major, contiguous float32 tensor.
//
// The zero value is an empty (rank-0, size-0) tensor. Use New or Of to
// construct tensors with a shape.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is negative.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// Of wraps an existing data slice with a shape. The slice is used directly
// (not copied); its length must equal the shape's element count.
func Of(data []float32, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (want %d)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

func checkShape(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Dim returns the size of dimension i, supporting negative indices
// counting from the end (Dim(-1) is the innermost dimension).
func (t *Tensor) Dim(i int) int {
	if i < 0 {
		i += len(t.shape)
	}
	return t.shape[i]
}

// Data returns the underlying storage. Mutations are visible to the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 {
	return t.data[t.offset(idx)]
}

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Reshape returns a tensor sharing t's storage with a new shape. The new
// shape must have the same number of elements. One dimension may be -1, in
// which case it is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer := -1
	known := 1
	for i, d := range shape {
		switch {
		case d == -1:
			if infer >= 0 {
				panic("tensor: Reshape with more than one -1 dimension")
			}
			infer = i
		case d < 0:
			panic(fmt.Sprintf("tensor: invalid dimension %d in Reshape", d))
		default:
			known *= d
		}
	}
	if infer >= 0 {
		if known == 0 || len(t.data)%known != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.shape, shape))
		}
		shape[infer] = len(t.data) / known
		known *= shape[infer]
	}
	if known != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elements) to %v (%d elements)", t.shape, len(t.data), shape, known))
	}
	return &Tensor{shape: shape, data: t.data}
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's elements into t. Shapes must match exactly.
func (t *Tensor) CopyFrom(src *Tensor) {
	if !SameShape(t, src) {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %v vs %v", t.shape, src.shape))
	}
	copy(t.data, src.data)
}

// Zero sets all elements to zero.
func (t *Tensor) Zero() {
	clear(t.data)
}

// Fill sets all elements to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Row returns a view of row r of a rank-2 tensor as a slice.
func (t *Tensor) Row(r int) []float32 {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Row on rank-%d tensor", len(t.shape)))
	}
	c := t.shape[1]
	return t.data[r*c : (r+1)*c]
}

// Batch returns a rank-(r-1) view of index b along the first dimension.
// The returned tensor shares storage with t.
func (t *Tensor) Batch(b int) *Tensor {
	if len(t.shape) < 1 {
		panic("tensor: Batch on rank-0 tensor")
	}
	if b < 0 || b >= t.shape[0] {
		panic(fmt.Sprintf("tensor: batch index %d out of range for shape %v", b, t.shape))
	}
	sub := 1
	for _, d := range t.shape[1:] {
		sub *= d
	}
	return &Tensor{
		shape: append([]int(nil), t.shape[1:]...),
		data:  t.data[b*sub : (b+1)*sub],
	}
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// NumElements returns the element count of a shape.
func NumElements(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// String renders a compact description, e.g. "Tensor[32 128 1024]".
func (t *Tensor) String() string {
	dims := make([]string, len(t.shape))
	for i, d := range t.shape {
		dims[i] = fmt.Sprint(d)
	}
	return "Tensor[" + strings.Join(dims, " ") + "]"
}
