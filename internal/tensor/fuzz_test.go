package tensor

import (
	"math"
	"testing"
)

// FuzzF16RoundTrip drives the half-precision converter with arbitrary
// float32 bit patterns: conversion must never widen the value's
// representable range and must be idempotent after one quantization.
func FuzzF16RoundTrip(f *testing.F) {
	for _, seed := range []uint32{0, 0x3F800000, 0x7F800000, 0xFF800000, 0x7FC00000, 1, 0x33800000} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, bits uint32) {
		v := math.Float32frombits(bits)
		h := ToF16(v)
		back := h.Float32()

		if math.IsNaN(float64(v)) {
			if !math.IsNaN(float64(back)) {
				t.Fatalf("NaN %#x lost NaN-ness: %v", bits, back)
			}
			return
		}
		// Idempotence: quantizing the quantized value is a fixed point.
		if ToF16(back) != h {
			t.Fatalf("%v (%#x): ToF16(back)=%#x != %#x", v, bits, ToF16(back), h)
		}
		// Sign preservation for non-zero results.
		if back != 0 && math.Signbit(float64(back)) != math.Signbit(float64(v)) {
			t.Fatalf("%v: sign flipped to %v", v, back)
		}
		// Magnitude never grows beyond the next representable half.
		if !math.IsInf(float64(back), 0) && math.Abs(float64(back)) > 65504 {
			t.Fatalf("%v: finite half out of range: %v", v, back)
		}
	})
}

// FuzzReshape drives Reshape with arbitrary factorizations.
func FuzzReshape(f *testing.F) {
	f.Add(uint8(4), uint8(6))
	f.Fuzz(func(t *testing.T, a, b uint8) {
		m, n := int(a%16)+1, int(b%16)+1
		x := New(m, n)
		for i := range x.Data() {
			x.Data()[i] = float32(i)
		}
		y := x.Reshape(n, m).Reshape(-1).Reshape(m, n)
		for i := range x.Data() {
			if y.Data()[i] != x.Data()[i] {
				t.Fatalf("reshape chain mutated data at %d", i)
			}
		}
	})
}
