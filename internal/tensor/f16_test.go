package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestF16KnownValues(t *testing.T) {
	cases := []struct {
		f    float32
		bits F16
	}{
		{0, 0x0000},
		{1, 0x3C00},
		{-1, 0xBC00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7BFF},        // largest finite half
		{5.9604645e-8, 0x0001}, // smallest subnormal
		{6.1035156e-5, 0x0400}, // smallest normal
		{float32(math.Inf(1)), 0x7C00},
		{float32(math.Inf(-1)), 0xFC00},
	}
	for _, c := range cases {
		if got := ToF16(c.f); got != c.bits {
			t.Errorf("ToF16(%v) = %#04x, want %#04x", c.f, got, c.bits)
		}
	}
}

func TestF16NegativeZero(t *testing.T) {
	negZero := math.Float32frombits(0x80000000)
	if got := ToF16(negZero); got != 0x8000 {
		t.Fatalf("ToF16(-0) = %#04x, want 0x8000", got)
	}
	if bits := math.Float32bits(F16(0x8000).Float32()); bits != 0x80000000 {
		t.Fatalf("F16(-0).Float32() bits = %#08x", bits)
	}
}

func TestF16NaN(t *testing.T) {
	h := ToF16(float32(math.NaN()))
	if h&0x7C00 != 0x7C00 || h&0x3FF == 0 {
		t.Fatalf("ToF16(NaN) = %#04x is not a half NaN", h)
	}
	if !math.IsNaN(float64(h.Float32())) {
		t.Fatal("half NaN did not convert back to NaN")
	}
}

func TestF16Overflow(t *testing.T) {
	if got := ToF16(1e9); got != 0x7C00 {
		t.Fatalf("ToF16(1e9) = %#04x, want +Inf", got)
	}
	if got := ToF16(-1e9); got != 0xFC00 {
		t.Fatalf("ToF16(-1e9) = %#04x, want -Inf", got)
	}
	// 65520 is the round-to-even boundary: rounds to +Inf.
	if got := ToF16(65520); got != 0x7C00 {
		t.Fatalf("ToF16(65520) = %#04x, want +Inf", got)
	}
}

func TestF16Underflow(t *testing.T) {
	if got := ToF16(1e-10); got != 0 {
		t.Fatalf("ToF16(1e-10) = %#04x, want 0", got)
	}
}

// Property: every value exactly representable in binary16 round-trips
// float32 -> F16 -> float32 without change.
func TestF16ExactRoundTripProperty(t *testing.T) {
	f := func(h uint16) bool {
		v := F16(h).Float32()
		if math.IsNaN(float64(v)) {
			return math.IsNaN(float64(ToF16(v).Float32()))
		}
		return ToF16(v) == F16(h) || ToF16(v).Float32() == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the relative quantization error of normal-range values is
// bounded by half-ULP of binary16 (2^-11).
func TestF16RelativeErrorProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		v := (r.Float32()*2 - 1) * 1000 // [-1000, 1000)
		if v == 0 {
			return true
		}
		got := ToF16(v).Float32()
		relErr := math.Abs(float64(got-v)) / math.Abs(float64(v))
		return relErr <= 1.0/2048.0+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestF16MonotonicOnSamples(t *testing.T) {
	// Conversion must preserve ordering (quantization is monotone).
	prev := float32(math.Inf(-1))
	for x := float32(-70000); x <= 70000; x += 37.3 {
		h := ToF16(x).Float32()
		if h < prev {
			t.Fatalf("non-monotone conversion at %v: %v < %v", x, h, prev)
		}
		prev = h
	}
}

func TestRoundTripF16Tensor(t *testing.T) {
	x := New(100)
	x.FillUniform(NewRNG(9), -10, 10)
	orig := x.Clone()
	RoundTripF16(x)
	for i := range x.Data() {
		want := ToF16(orig.Data()[i]).Float32()
		if x.Data()[i] != want {
			t.Fatalf("element %d: got %v want %v", i, x.Data()[i], want)
		}
	}
}

func TestF16AllExhaustiveDecodeEncodeConsistency(t *testing.T) {
	// For every one of the 65536 half patterns, decode then re-encode.
	// All non-NaN values must reproduce a pattern decoding to the same
	// float32 value.
	for h := 0; h < 1<<16; h++ {
		v := F16(h).Float32()
		if math.IsNaN(float64(v)) {
			continue
		}
		back := ToF16(v)
		if back.Float32() != v {
			t.Fatalf("pattern %#04x: decode %v re-encodes to %#04x (%v)", h, v, back, back.Float32())
		}
	}
}
