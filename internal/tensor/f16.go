package tensor

import "math"

// F16 is an IEEE-754 binary16 value stored in a uint16. The engine uses it
// to emulate the storage half of mixed-precision training: activations and
// gradients can be round-tripped through F16 so that the numerical effect
// of reduced precision is observable, while arithmetic remains float32
// (the paper's MP training likewise accumulates in higher precision).
type F16 uint16

// ToF16 converts a float32 to binary16 with round-to-nearest-even,
// handling subnormals, infinities, and NaN.
func ToF16(f float32) F16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xFF) - 127 + 15
	mant := bits & 0x7FFFFF

	switch {
	case bits&0x7FFFFFFF == 0: // signed zero
		return F16(sign)
	case exp >= 0x1F: // overflow or inf/nan
		if bits&0x7F800000 == 0x7F800000 && mant != 0 {
			// NaN: keep the top 10 payload bits and force the quiet bit,
			// so payloads survive the round trip and a signaling NaN whose
			// high payload bits are zero cannot collapse into Inf.
			return F16(sign | 0x7C00 | 0x0200 | uint16(mant>>13))
		}
		return F16(sign | 0x7C00) // Inf
	case exp <= 0:
		// Subnormal half, or underflow to zero.
		if exp < -10 {
			return F16(sign)
		}
		mant |= 0x800000 // restore implicit bit
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		rounded := (mant + half - 1 + (mant>>shift)&1) >> shift
		return F16(sign | uint16(rounded))
	default:
		// Normal: round mantissa from 23 to 10 bits, nearest-even.
		rounded := mant + 0xFFF + (mant>>13)&1
		if rounded&0x800000 != 0 { // mantissa overflowed into exponent
			rounded = 0
			exp++
			if exp >= 0x1F {
				return F16(sign | 0x7C00)
			}
		}
		return F16(sign | uint16(exp)<<10 | uint16(rounded>>13))
	}
}

// Float32 converts a binary16 back to float32 exactly.
func (h F16) Float32() float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1F)
	mant := uint32(h & 0x3FF)

	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3FF
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1F:
		if mant == 0 {
			return math.Float32frombits(sign | 0x7F800000)
		}
		return math.Float32frombits(sign | 0x7F800000 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}

// RoundTripF16 quantizes every element of t through binary16 in place,
// emulating a store-to-half / load-from-half pair.
func RoundTripF16(t *Tensor) {
	d := t.Data()
	for i, v := range d {
		d[i] = ToF16(v).Float32()
	}
}
