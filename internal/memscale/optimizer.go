package memscale

import (
	"fmt"

	"demystbert/internal/distnet"
	"demystbert/internal/nn"
	"demystbert/internal/optim"
	"demystbert/internal/profile"
	"demystbert/internal/tensor"
)

// Applier applies one prepared iteration's update to a parameter subset
// (optim.LAMBStep and optim.AdamStep both satisfy it).
type Applier interface {
	Apply(ctx *nn.Ctx, params []*nn.Param)
}

// Inner abstracts the prepare/apply split of the shardable optimizers.
// Prepare advances the step count exactly once per iteration and fixes
// the iteration-wide scalars (bias correction, LAMB's global clip scale);
// the returned Applier may then be invoked shard by shard.
type Inner interface {
	Prepare(ctx *nn.Ctx, all []*nn.Param) Applier
	State(p *nn.Param) (m, v *tensor.Tensor)
	ReleaseState(p *nn.Param)
	StepCount() int
}

// WrapLAMB adapts a LAMB optimizer for sharding.
func WrapLAMB(o *optim.LAMB) Inner { return lambInner{o} }

// WrapAdam adapts an Adam optimizer for sharding.
func WrapAdam(o *optim.Adam) Inner { return adamInner{o} }

type lambInner struct{ *optim.LAMB }

func (l lambInner) Prepare(ctx *nn.Ctx, all []*nn.Param) Applier {
	return l.PrepareStep(ctx, all)
}

type adamInner struct{ *optim.Adam }

func (a adamInner) Prepare(ctx *nn.Ctx, all []*nn.Param) Applier {
	return a.PrepareStep()
}

// Sharded is a ZeRO-1 optimizer-state-sharded update engine. The model,
// gradients, and weights stay fully replicated (plain data parallelism);
// only the optimizer state — Adam/LAMB's m and v, 8 bytes per parameter,
// 2× the model itself — is partitioned by the ShardPlan.
//
// Two modes share the arithmetic:
//
//   - Distributed (G non-nil, world > 1): rank r keeps m/v only for
//     shard r. Each iteration — gradients already all-reduced by the
//     trainer, so every rank computes the identical global clip scale —
//     the rank updates its own shard's weights and the updated weights
//     circulate with a param-aligned ring AllGather. Per-rank optimizer
//     state drops to 1/world; updated bytes are copied verbatim, so
//     every rank's weights are bitwise what an unsharded run computes.
//
//   - Virtual shards (G nil, K = Plan.NumShards() > 1): a single process
//     walks the shards sequentially, keeping one shard's m/v resident at
//     a time and spilling the rest to the Arena between iterations.
//     Resident optimizer state drops to ~1/K at the cost of streaming
//     2× model size through the arena per iteration. Spilled bytes
//     round-trip bitwise, so this too equals the unsharded update.
type Sharded struct {
	Inner Inner
	Plan  ShardPlan
	G     *distnet.Group // nil, or the data-parallel group (one shard per rank)
	Arena *Arena         // virtual mode: spill store for non-resident shards

	step    int
	gather  []float32
	regions map[*nn.Param][2]Region // m, v spill regions
}

// NewSharded plans K shards over params and wraps inner. For distributed
// use pass the group as g (K must equal the world size and the trainer
// must have all-reduced gradients before Step); for single-process
// virtual sharding pass g == nil and an arena via SetArena.
func NewSharded(inner Inner, params []*nn.Param, k int, g *distnet.Group) (*Sharded, error) {
	if g != nil && g.World() > 1 && k != g.World() {
		return nil, fmt.Errorf("memscale: %d shards for world %d", k, g.World())
	}
	plan, err := PlanShards(params, k)
	if err != nil {
		return nil, err
	}
	return &Sharded{Inner: inner, Plan: plan, G: g}, nil
}

// SetArena enables virtual-shard state spilling.
func (s *Sharded) SetArena(a *Arena) {
	s.Arena = a
	if s.regions == nil {
		s.regions = make(map[*nn.Param][2]Region)
	}
}

// Step applies one sharded optimizer iteration. params must be the same
// canonical full parameter list every call (it is what Prepare's global
// reductions run over); the shard partition of it is fixed by the Plan.
func (s *Sharded) Step(ctx *nn.Ctx, params []*nn.Param) error {
	st := s.Inner.Prepare(ctx, params)
	s.step++
	if s.G != nil && s.G.World() > 1 {
		return s.stepWorld(ctx, st)
	}
	return s.stepVirtual(ctx, st)
}

// stepWorld updates this rank's shard and ring-gathers the weights.
func (s *Sharded) stepWorld(ctx *nn.Ctx, st Applier) error {
	rank := s.G.Rank()
	st.Apply(ctx, s.Plan.Shards[rank])

	if s.gather == nil {
		s.gather = make([]float32, s.Plan.Elems())
	}
	buf := s.gather
	lo := s.Plan.Bounds[rank]
	off := lo
	for _, p := range s.Plan.Shards[rank] {
		off += copy(buf[off:], p.Value.Data())
	}
	// 0x01 top byte keeps the tag clear of the trainer's 24-bit bucket
	// tags and the 0xC… control range.
	tag := 0x01000000 | (uint32(s.step) & 0x00FFFFFF)
	var err error
	ctx.Prof.Time("allgather_weights", profile.CatComm, profile.Update,
		0, int64(len(buf))*4, func() {
			err = s.G.AllGather(tag, buf, s.Plan.Bounds)
		})
	if err != nil {
		return err
	}
	for r, shard := range s.Plan.Shards {
		if r == rank {
			continue
		}
		off := s.Plan.Bounds[r]
		for _, p := range shard {
			w := p.Value.Data()
			copy(w, buf[off:off+len(w)])
			off += len(w)
			p.BumpGen() // weights changed: invalidate cached GEMM packs
		}
	}
	return nil
}

// stepVirtual walks the shards with at most one shard's optimizer state
// resident (when an arena is set).
func (s *Sharded) stepVirtual(ctx *nn.Ctx, st Applier) error {
	for _, shard := range s.Plan.Shards {
		if s.Arena != nil {
			if err := s.loadShardState(ctx, shard); err != nil {
				return err
			}
		}
		st.Apply(ctx, shard)
		if s.Arena != nil {
			if err := s.spillShardState(ctx, shard); err != nil {
				return err
			}
			shardSwapsTotal.Inc()
		}
	}
	return nil
}

// loadShardState restores previously spilled m/v for the shard's params.
// Params never spilled before (first iteration) are left to the inner
// optimizer's lazy zero-initialized allocation.
func (s *Sharded) loadShardState(ctx *nn.Ctx, shard []*nn.Param) error {
	var err error
	ctx.Prof.Time("spill_optstate_read", profile.CatOther, profile.Update,
		0, shardStateBytes(shard), func() {
			for _, p := range shard {
				regs, ok := s.regions[p]
				if !ok {
					continue
				}
				m, v := s.Inner.State(p)
				if err = s.Arena.Read(regs[0], m.Data()); err != nil {
					return
				}
				if err = s.Arena.Read(regs[1], v.Data()); err != nil {
					return
				}
			}
		})
	return err
}

// spillShardState writes the shard's m/v to the arena and releases the
// resident tensors.
func (s *Sharded) spillShardState(ctx *nn.Ctx, shard []*nn.Param) error {
	var err error
	ctx.Prof.Time("spill_optstate_write", profile.CatOther, profile.Update,
		0, shardStateBytes(shard), func() {
			for _, p := range shard {
				m, v := s.Inner.State(p)
				regs, ok := s.regions[p]
				if !ok {
					regs = [2]Region{s.Arena.Alloc(p.Size()), s.Arena.Alloc(p.Size())}
					s.regions[p] = regs
				}
				if err = s.Arena.Write(regs[0], m.Data()); err != nil {
					return
				}
				if err = s.Arena.Write(regs[1], v.Data()); err != nil {
					return
				}
				s.Inner.ReleaseState(p)
			}
		})
	return err
}

func shardStateBytes(shard []*nn.Param) int64 {
	var n int64
	for _, p := range shard {
		n += int64(p.Size())
	}
	return n * 2 * 4 // m and v, float32
}

// StateBytes estimates the sharded optimizer's resident state high-water
// mark: m and v for the largest single shard (virtual mode) or for this
// rank's shard (distributed mode).
func (s *Sharded) StateBytes() int64 {
	if s.G != nil && s.G.World() > 1 {
		r := s.G.Rank()
		return int64(s.Plan.Bounds[r+1]-s.Plan.Bounds[r]) * 2 * 4
	}
	return int64(s.Plan.MaxShardElems()) * 2 * 4
}
