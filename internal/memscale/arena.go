// Package memscale lets a laptop-class machine execute honest BERT-Large
// training iterations in bounded memory, the regime the paper's Table 4
// footprint analysis says cannot fit naively: optimizer state is
// partitioned ZeRO-1 style across ranks (or streamed shard-by-shard from
// disk in a single process), and checkpointed activations spill to a
// file-backed arena instead of living in RAM. Everything is exact — the
// spilled bytes round-trip bitwise, and the sharded update paths are
// pinned bitwise-equal to their unsharded references.
package memscale

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"demystbert/internal/obs"
)

// Spill-path telemetry, served at /metrics alongside the kernel counters.
var (
	spillBytesWritten = obs.NewCounter("memscale_spill_bytes_written_total",
		"bytes written to the spill arena (activations and optimizer state)")
	spillBytesRead = obs.NewCounter("memscale_spill_bytes_read_total",
		"bytes read back from the spill arena")
	spillStallNS = obs.NewCounter("memscale_spill_stall_ns_total",
		"nanoseconds the training step spent blocked on arena I/O")
	shardSwapsTotal = obs.NewCounter("memscale_shard_swaps_total",
		"optimizer-state shard residency swaps (virtual-shard mode)")
)

// SpillCounters reports the cumulative arena traffic and stall time —
// the numbers bertchar -large prints next to the compute breakdown.
func SpillCounters() (written, read int64, stall time.Duration) {
	return spillBytesWritten.Value(), spillBytesRead.Value(),
		time.Duration(spillStallNS.Value())
}

// Arena is an append-allocated, file-backed store for float32 blocks.
// Regions are fixed at Alloc time and rewritten in place each iteration,
// so the file never grows past the planned working set. Read and Write
// are safe for concurrent use on disjoint regions (plain ReadAt/WriteAt
// under the hood); Alloc serializes internally.
//
// A plain file (not mmap) is deliberate: mmap'd pages are invisible to
// GOMEMLIMIT and the Go heap accounting this package exists to respect —
// explicit ReadAt/WriteAt keeps resident memory equal to the buffers the
// caller actually holds.
type Arena struct {
	f *os.File

	mu   sync.Mutex
	size int64

	scratch sync.Pool // encode/decode chunks, *[]byte
}

// arenaChunk is the encode/decode granularity: large enough to amortize
// syscalls, small enough to stay cache-resident.
const arenaChunk = 1 << 18 // 256 KiB

// NewArena creates the backing file in dir (or the default temp dir when
// dir is empty). The file is unlinked immediately: the space is reclaimed
// by the OS as soon as the process exits, however it exits.
func NewArena(dir string) (*Arena, error) {
	f, err := os.CreateTemp(dir, "memscale-arena-*.spill")
	if err != nil {
		return nil, fmt.Errorf("memscale: creating arena: %w", err)
	}
	os.Remove(f.Name()) // keep the fd, drop the name
	a := &Arena{f: f}
	a.scratch.New = func() any {
		b := make([]byte, arenaChunk)
		return &b
	}
	return a, nil
}

// Region addresses one allocated block: a byte offset and element count.
type Region struct {
	off   int64
	elems int
}

// Elems returns the region's capacity in float32 elements.
func (r Region) Elems() int { return r.elems }

// Alloc reserves a region of elems float32s at the end of the arena.
func (a *Arena) Alloc(elems int) Region {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := Region{off: a.size, elems: elems}
	a.size += int64(elems) * 4
	return r
}

// Size returns the total bytes allocated so far.
func (a *Arena) Size() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.size
}

// Write spills src into the region. len(src) must equal the region size.
func (a *Arena) Write(r Region, src []float32) error {
	if len(src) != r.elems {
		return fmt.Errorf("memscale: writing %d elems into region of %d", len(src), r.elems)
	}
	start := time.Now()
	bp := a.scratch.Get().(*[]byte)
	buf := *bp
	off := r.off
	for len(src) > 0 {
		n := len(src)
		if n > arenaChunk/4 {
			n = arenaChunk / 4
		}
		for i, v := range src[:n] {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		if _, err := a.f.WriteAt(buf[:4*n], off); err != nil {
			a.scratch.Put(bp)
			return fmt.Errorf("memscale: arena write at %d: %w", off, err)
		}
		src = src[n:]
		off += int64(4 * n)
	}
	a.scratch.Put(bp)
	spillBytesWritten.Add(int64(r.elems) * 4)
	spillStallNS.Add(int64(time.Since(start)))
	return nil
}

// Read restores the region into dst bitwise as written. len(dst) must
// equal the region size.
func (a *Arena) Read(r Region, dst []float32) error {
	if len(dst) != r.elems {
		return fmt.Errorf("memscale: reading %d elems from region of %d", len(dst), r.elems)
	}
	start := time.Now()
	bp := a.scratch.Get().(*[]byte)
	buf := *bp
	off := r.off
	for len(dst) > 0 {
		n := len(dst)
		if n > arenaChunk/4 {
			n = arenaChunk / 4
		}
		if _, err := a.f.ReadAt(buf[:4*n], off); err != nil {
			a.scratch.Put(bp)
			return fmt.Errorf("memscale: arena read at %d: %w", off, err)
		}
		for i := range dst[:n] {
			dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		dst = dst[n:]
		off += int64(4 * n)
	}
	a.scratch.Put(bp)
	spillBytesRead.Add(int64(r.elems) * 4)
	spillStallNS.Add(int64(time.Since(start)))
	return nil
}

// Close releases the backing file.
func (a *Arena) Close() error {
	if a.f == nil {
		return nil
	}
	err := a.f.Close()
	a.f = nil
	return err
}
