package memscale

import (
	"math"
	"testing"

	"demystbert/internal/data"
	"demystbert/internal/kernels"
	"demystbert/internal/model"
	"demystbert/internal/nn"
)

// TestActSpillCheckpointedStepBitwise pins the activation-spill path: a
// checkpointed training step whose segment inputs stream through the
// arena must produce bitwise the loss and gradients of the same step with
// heap-resident checkpoints — the spilled bytes replay exactly.
func TestActSpillCheckpointedStepBitwise(t *testing.T) {
	old := kernels.SetGEMMPath(kernels.GEMMPathBlocked)
	defer kernels.SetGEMMPath(old)

	cfg := model.Tiny()
	cfg.NumLayers = 4
	cfg.DropProb = 0 // spill replays data, not RNG streams
	const seed = 21

	step := func(spill bool) (float64, *model.BERT) {
		m, err := model.New(cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		m.CheckpointEvery = 2
		if spill {
			a, err := NewArena(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { a.Close() })
			m.CkptSpill = NewActSpill(a)
		}
		b := data.NewGenerator(cfg.Vocab, 0.15, 3).Next(2, 16)
		loss := m.Step(nn.NewCtx(7), b)
		return loss, m
	}

	lossPlain, mPlain := step(false)
	lossSpill, mSpill := step(true)
	if math.Float64bits(lossPlain) != math.Float64bits(lossSpill) {
		t.Fatalf("loss diverged: plain %v, spilled %v", lossPlain, lossSpill)
	}
	pp, sp := mPlain.Params(), mSpill.Params()
	for i := range pp {
		pg, sg := pp[i].Grad.Data(), sp[i].Grad.Data()
		for j := range pg {
			if math.Float32bits(pg[j]) != math.Float32bits(sg[j]) {
				t.Fatalf("grad %s[%d]: plain %v, spilled %v", pp[i].Name, j, pg[j], sg[j])
			}
		}
	}
}

// TestActSpillAcrossAccumulation exercises the spiller under StepAccum:
// each micro-batch re-spills the same checkpoint indices, and the
// accumulated gradients must still match the full-batch step bitwise.
func TestActSpillAcrossAccumulation(t *testing.T) {
	old := kernels.SetGEMMPath(kernels.GEMMPathBlocked)
	defer kernels.SetGEMMPath(old)

	cfg := model.Tiny()
	cfg.NumLayers = 4
	cfg.DropProb = 0
	const seed = 22

	run := func(accum int) (float64, *model.BERT) {
		m, err := model.New(cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		m.CheckpointEvery = 2
		a, err := NewArena(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { a.Close() })
		m.CkptSpill = NewActSpill(a)
		b := data.NewGenerator(cfg.Vocab, 0.15, 4).Next(4, 16)
		loss := m.StepAccum(nn.NewCtx(7), b, accum)
		return loss, m
	}

	lossFull, mFull := run(1)
	lossAccum, mAccum := run(2)
	if math.Float64bits(lossFull) != math.Float64bits(lossAccum) {
		t.Fatalf("loss diverged: full %v, accum %v", lossFull, lossAccum)
	}
	fp, ap := mFull.Params(), mAccum.Params()
	for i := range fp {
		fg, ag := fp[i].Grad.Data(), ap[i].Grad.Data()
		for j := range fg {
			if math.Float32bits(fg[j]) != math.Float32bits(ag[j]) {
				t.Fatalf("grad %s[%d]: full %v, accum %v", fp[i].Name, j, fg[j], ag[j])
			}
		}
	}
}

func TestActSpillRestoreUnknownIndexPanics(t *testing.T) {
	a, err := NewArena(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	s := NewActSpill(a)
	defer func() {
		if recover() == nil {
			t.Fatal("Restore of never-spilled index did not panic")
		}
	}()
	s.Restore(3, make([]float32, 4))
}
