package memscale

import (
	"testing"

	"demystbert/internal/nn"
	"demystbert/internal/tensor"
)

func mkParams(sizes ...int) []*nn.Param {
	r := tensor.NewRNG(9)
	ps := make([]*nn.Param, len(sizes))
	for i, n := range sizes {
		ps[i] = nn.NewParam("p", n)
		ps[i].Value.FillUniform(r, -1, 1)
		ps[i].Grad.FillUniform(r, -0.1, 0.1)
	}
	return ps
}

func TestPlanShardsPartitionIsExactAndAligned(t *testing.T) {
	params := mkParams(100, 7, 300, 42, 5, 90, 1, 256)
	for _, k := range []int{1, 2, 3, 5, 20} {
		plan, err := PlanShards(params, k)
		if err != nil {
			t.Fatal(err)
		}
		if plan.NumShards() != k {
			t.Fatalf("k=%d: %d shards", k, plan.NumShards())
		}
		// Every param exactly once, in order, with matching bounds.
		idx, off := 0, 0
		for s, shard := range plan.Shards {
			if plan.Bounds[s] != off {
				t.Fatalf("k=%d shard %d: bound %d, want %d", k, s, plan.Bounds[s], off)
			}
			for _, p := range shard {
				if p != params[idx] {
					t.Fatalf("k=%d: param order broken at %d", k, idx)
				}
				idx++
				off += p.Size()
			}
		}
		if idx != len(params) {
			t.Fatalf("k=%d: covered %d of %d params", k, idx, len(params))
		}
		total := 0
		for _, p := range params {
			total += p.Size()
		}
		if plan.Elems() != total {
			t.Fatalf("k=%d: Elems %d, want %d", k, plan.Elems(), total)
		}
	}
}

func TestPlanShardsBalance(t *testing.T) {
	// Many equal params must split near-evenly.
	sizes := make([]int, 64)
	for i := range sizes {
		sizes[i] = 50
	}
	plan, err := PlanShards(mkParams(sizes...), 4)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		n := plan.Bounds[s+1] - plan.Bounds[s]
		if n != 800 {
			t.Fatalf("shard %d has %d elems, want 800", s, n)
		}
	}
	if plan.MaxShardElems() != 800 {
		t.Fatalf("MaxShardElems %d", plan.MaxShardElems())
	}
}

func TestPlanShardsRejectsBadK(t *testing.T) {
	if _, err := PlanShards(mkParams(10), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}
