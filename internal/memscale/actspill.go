package memscale

import "fmt"

// ActSpill streams checkpointed activations to the arena, implementing
// model.CkptSpiller. With √N checkpointing the segment inputs are the
// only activations retained across the whole forward pass; spilling them
// means the residual working set streams from disk instead of living in
// RAM — the last piece that lets a BERT-Large iteration run under a
// GOMEMLIMIT below its unspilled footprint.
//
// Regions are allocated per checkpoint index on first Spill and reused
// every iteration (sizes are shape-stable across same-shape batches).
// The interface is panic-on-error because model.Backward has no error
// path — a failing spill device is fatal to training anyway.
type ActSpill struct {
	a       *Arena
	regions map[int]Region
}

// NewActSpill wraps an arena for activation spilling.
func NewActSpill(a *Arena) *ActSpill {
	return &ActSpill{a: a, regions: make(map[int]Region)}
}

// Spill stores checkpoint idx. The data length must be stable per index
// across iterations (it is: checkpoint i is always the [B·N, d_model]
// input of layer i·k for the run's fixed micro-batch shape).
func (s *ActSpill) Spill(idx int, data []float32) {
	r, ok := s.regions[idx]
	if !ok || r.Elems() != len(data) {
		r = s.a.Alloc(len(data))
		s.regions[idx] = r
	}
	if err := s.a.Write(r, data); err != nil {
		panic(fmt.Sprintf("memscale: spilling checkpoint %d: %v", idx, err))
	}
}

// Restore reads checkpoint idx back into dst bitwise as spilled.
func (s *ActSpill) Restore(idx int, dst []float32) {
	r, ok := s.regions[idx]
	if !ok {
		panic(fmt.Sprintf("memscale: restoring checkpoint %d that was never spilled", idx))
	}
	if err := s.a.Read(r, dst); err != nil {
		panic(fmt.Sprintf("memscale: restoring checkpoint %d: %v", idx, err))
	}
}
