package memscale

import (
	"math"
	"sync"
	"testing"

	"demystbert/internal/tensor"
)

func TestArenaRoundTripBitwise(t *testing.T) {
	a, err := NewArena(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	r := tensor.NewRNG(3)
	src := tensor.New(70000) // several encode chunks
	src.FillUniform(r, -10, 10)
	src.Data()[0] = float32(math.Inf(1))
	src.Data()[1] = float32(math.NaN())
	src.Data()[2] = float32(math.Copysign(0, -1)) // -0 must survive

	reg := a.Alloc(src.Size())
	if err := a.Write(reg, src.Data()); err != nil {
		t.Fatal(err)
	}
	dst := make([]float32, src.Size())
	if err := a.Read(reg, dst); err != nil {
		t.Fatal(err)
	}
	for i, v := range src.Data() {
		if math.Float32bits(v) != math.Float32bits(dst[i]) {
			t.Fatalf("elem %d: wrote %x, read %x", i, math.Float32bits(v), math.Float32bits(dst[i]))
		}
	}

	written, read, stall := SpillCounters()
	if written < int64(src.Size())*4 || read < int64(src.Size())*4 {
		t.Fatalf("counters: written %d read %d, want >= %d", written, read, src.Size()*4)
	}
	if stall <= 0 {
		t.Fatal("stall time not recorded")
	}
}

// TestArenaSteadyStateAllocs guards the spill hot path: after the
// scratch pool is warm, Write/Read roundtrips must not allocate per
// call — the arena exists to take pressure OFF the heap, and a
// per-checkpoint allocation would hand it right back to the GC.
func TestArenaSteadyStateAllocs(t *testing.T) {
	a, err := NewArena(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	buf := make([]float32, 1<<16)
	reg := a.Alloc(len(buf))
	// Warm the encode/decode scratch pool.
	for i := 0; i < 3; i++ {
		if err := a.Write(reg, buf); err != nil {
			t.Fatal(err)
		}
		if err := a.Read(reg, buf); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := a.Write(reg, buf); err != nil {
			t.Fatal(err)
		}
		if err := a.Read(reg, buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("arena roundtrip allocates %.0f objects per call in steady state, want <=1", allocs)
	}
}

func TestArenaRejectsSizeMismatch(t *testing.T) {
	a, err := NewArena(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	reg := a.Alloc(8)
	if err := a.Write(reg, make([]float32, 7)); err == nil {
		t.Fatal("short write accepted")
	}
	if err := a.Read(reg, make([]float32, 9)); err == nil {
		t.Fatal("long read accepted")
	}
}

// TestArenaConcurrentRegions is the spill-arena race leg: many goroutines
// hammer disjoint regions through the shared scratch pool. Run under
// -race this pins that Write/Read/Alloc need no external locking.
func TestArenaConcurrentRegions(t *testing.T) {
	a, err := NewArena(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	const workers, elems, rounds = 8, 5000, 20
	regs := make([]Region, workers)
	for w := range regs {
		regs[w] = a.Alloc(elems)
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]float32, elems)
			back := make([]float32, elems)
			for round := 0; round < rounds; round++ {
				for i := range buf {
					buf[i] = float32(w*1000 + round*10 + i%10)
				}
				if errs[w] = a.Write(regs[w], buf); errs[w] != nil {
					return
				}
				if errs[w] = a.Read(regs[w], back); errs[w] != nil {
					return
				}
				for i := range back {
					if back[i] != buf[i] {
						t.Errorf("worker %d round %d elem %d: %v != %v", w, round, i, back[i], buf[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}
