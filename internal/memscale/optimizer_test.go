package memscale

import (
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"demystbert/internal/distnet"
	"demystbert/internal/nn"
	"demystbert/internal/optim"
	"demystbert/internal/tensor"
)

func fillGrads(r *tensor.RNG, sets ...[]*nn.Param) {
	ref := sets[0]
	for i := range ref {
		ref[i].Grad.FillUniform(r, -0.1, 0.1)
		for _, ps := range sets[1:] {
			copy(ps[i].Grad.Data(), ref[i].Grad.Data())
		}
	}
}

func paramsEqual(t *testing.T, label string, a, b []*nn.Param) {
	t.Helper()
	for i := range a {
		ad, bd := a[i].Value.Data(), b[i].Value.Data()
		for j := range ad {
			if math.Float32bits(ad[j]) != math.Float32bits(bd[j]) {
				t.Fatalf("%s: param %d elem %d: %v != %v", label, i, j, ad[j], bd[j])
			}
		}
	}
}

// TestVirtualShardLAMBBitwiseMatchesUnsharded is the virtual-shard pin:
// a K=3 sharded LAMB that spills every shard's m/v to the arena between
// iterations must track the plain unsharded LAMB bitwise — spilled state
// round-trips exactly and the step count advances once per iteration.
func TestVirtualShardLAMBBitwiseMatchesUnsharded(t *testing.T) {
	mk := func() []*nn.Param { return mkParams(128, 65, 17, 200, 33, 9) }
	plain, sharded := mk(), mk()

	a, err := NewArena(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	po := optim.NewLAMB(0.01)
	so := optim.NewLAMB(0.01)
	sh, err := NewSharded(WrapLAMB(so), sharded, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	sh.SetArena(a)

	ctx := nn.NewCtx(1)
	gr := tensor.NewRNG(5)
	for iter := 0; iter < 4; iter++ {
		fillGrads(gr, plain, sharded)
		po.Step(ctx, plain)
		if err := sh.Step(ctx, sharded); err != nil {
			t.Fatal(err)
		}
	}
	if so.StepCount() != 4 {
		t.Fatalf("sharded step count %d, want 4", so.StepCount())
	}
	paramsEqual(t, "virtual-shard LAMB", plain, sharded)

	if sh.StateBytes() <= 0 {
		t.Fatal("StateBytes not reported")
	}
	if swaps := shardSwapsTotal.Value(); swaps < 12 { // 3 shards × 4 iters
		t.Fatalf("shard swaps %d, want >= 12", swaps)
	}
}

// TestVirtualShardAdamBitwiseMatchesUnsharded covers the Adam wrap.
func TestVirtualShardAdamBitwiseMatchesUnsharded(t *testing.T) {
	mk := func() []*nn.Param { return mkParams(90, 31, 140) }
	plain, sharded := mk(), mk()

	a, err := NewArena(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	po := optim.NewAdam(0.01, true)
	so := optim.NewAdam(0.01, true)
	sh, err := NewSharded(WrapAdam(so), sharded, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	sh.SetArena(a)

	ctx := nn.NewCtx(1)
	gr := tensor.NewRNG(6)
	for iter := 0; iter < 3; iter++ {
		fillGrads(gr, plain, sharded)
		po.Step(ctx, plain)
		if err := sh.Step(ctx, sharded); err != nil {
			t.Fatal(err)
		}
	}
	paramsEqual(t, "virtual-shard Adam", plain, sharded)
}

// joinPair stands up a loopback world-2 group in-process.
func joinPair(t *testing.T) []*distnet.Group {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	groups := make([]*distnet.Group, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := distnet.Config{Rank: r, World: 2, Addr: addr, Timeout: 5 * time.Second}
			if r == 0 {
				cfg.Listener = ln
			}
			groups[r], errs[r] = distnet.Join(cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d join: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, g := range groups {
			g.Close()
		}
	})
	return groups
}

// TestShardedLAMBWorld2BitwiseMatchesUnsharded is the ZeRO-1 pin at
// world 2: two ranks, each holding optimizer state for only its own
// shard, update their shards and all-gather the weights. Both ranks'
// full weight sets must be bitwise identical to an unsharded LAMB run
// on the same (already all-reduced) gradients.
func TestShardedLAMBWorld2BitwiseMatchesUnsharded(t *testing.T) {
	groups := joinPair(t)
	mk := func() []*nn.Param { return mkParams(150, 44, 80, 21, 64) }
	reference := mk()
	replicas := [][]*nn.Param{mk(), mk()}

	ro := optim.NewLAMB(0.01)
	shs := make([]*Sharded, 2)
	for r := 0; r < 2; r++ {
		var err error
		shs[r], err = NewSharded(WrapLAMB(optim.NewLAMB(0.01)), replicas[r], 2, groups[r])
		if err != nil {
			t.Fatal(err)
		}
	}

	gr := tensor.NewRNG(12)
	refCtx := nn.NewCtx(1)
	for iter := 0; iter < 3; iter++ {
		// Identical grads everywhere — the state after the trainer's
		// gradient all-reduce.
		fillGrads(gr, reference, replicas[0], replicas[1])
		ro.Step(refCtx, reference)

		errs := make([]error, 2)
		var wg sync.WaitGroup
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				errs[r] = shs[r].Step(nn.NewCtx(1), replicas[r])
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("rank %d iter %d: %v", r, iter, err)
			}
		}
	}
	paramsEqual(t, "rank 0 vs unsharded", reference, replicas[0])
	paramsEqual(t, "rank 1 vs unsharded", reference, replicas[1])
}

// TestShardedRejectsWorldMismatch: K must equal the world size in
// distributed mode.
func TestShardedRejectsWorldMismatch(t *testing.T) {
	groups := joinPair(t)
	if _, err := NewSharded(WrapLAMB(optim.NewLAMB(0.01)), mkParams(10, 10), 3, groups[0]); err == nil {
		t.Fatal("3 shards for world 2 accepted")
	}
	// Unblock rank 1's group teardown (no collective was issued).
	_ = groups
}
