package memscale

import (
	"fmt"

	"demystbert/internal/nn"
)

// ShardPlan partitions the canonical parameter list into K contiguous
// shards, balanced by element count. Contiguity matters twice over: the
// flat gradient/weight buffer the distributed path gathers is laid out in
// Params() order, so a shard is one contiguous span of it (Bounds are the
// param-aligned chunk bounds handed to distnet.AllGather), and the
// global-norm and update arithmetic visit parameters in the same order
// the unsharded optimizer would.
type ShardPlan struct {
	Shards [][]*nn.Param // Shards[k] is params[lo_k:hi_k] of the canonical list
	Bounds []int         // flat element offsets, len K+1; shard k spans Bounds[k]:Bounds[k+1]
}

// PlanShards builds a K-way plan over params (ALL trainable parameters in
// canonical order). Every shard gets at least the parameters needed to
// keep cumulative size nearest the ideal k·total/K split points; with
// more shards than parameters the tail shards are empty, which is valid —
// their owners simply have nothing to update.
func PlanShards(params []*nn.Param, k int) (ShardPlan, error) {
	if k < 1 {
		return ShardPlan{}, fmt.Errorf("memscale: shard count %d < 1", k)
	}
	total := 0
	for _, p := range params {
		total += p.Size()
	}
	plan := ShardPlan{
		Shards: make([][]*nn.Param, k),
		Bounds: make([]int, k+1),
	}
	lo, off := 0, 0
	for s := 0; s < k; s++ {
		target := (s + 1) * total / k
		hi := lo
		size := 0
		for hi < len(params) {
			next := size + params[hi].Size()
			// Take the parameter if it brings us nearer the split point.
			if off+next > target && (off+next-target) > (target-off-size) {
				break
			}
			size = next
			hi++
		}
		if s == k-1 {
			for hi < len(params) {
				size += params[hi].Size()
				hi++
			}
		}
		plan.Shards[s] = params[lo:hi]
		off += size
		plan.Bounds[s+1] = off
		lo = hi
	}
	return plan, nil
}

// NumShards returns K.
func (pl ShardPlan) NumShards() int { return len(pl.Shards) }

// Elems returns the total element count across all shards.
func (pl ShardPlan) Elems() int { return pl.Bounds[len(pl.Bounds)-1] }

// MaxShardElems returns the largest shard's element count — the resident
// optimizer-state working set of the virtual-shard mode (×2 for m and v).
func (pl ShardPlan) MaxShardElems() int {
	max := 0
	for s := range pl.Shards {
		if n := pl.Bounds[s+1] - pl.Bounds[s]; n > max {
			max = n
		}
	}
	return max
}
