package dist

import "time"

// This file cross-validates the analytical data-parallel model against
// real multi-process training (internal/distnet): instead of a modeled
// device, predictions are built from measured quantities — per-bucket
// backward segments and bytes from an instrumented run, plus the link
// bandwidth/latency distnet's ProbeLink observes on the actual sockets.
// The comm schedule (ring cost, overlap timeline) is shared verbatim
// with the Fig. 11 profiles, so measured-vs-modeled divergence isolates
// input error from scheduling error.

// Link is a measured point-to-point interconnect: what distnet.ProbeLink
// reports for a loopback TCP ring, or a device table entry for a modeled
// one.
type Link struct {
	Bandwidth float64       // bytes/s per direction
	Latency   time.Duration // per ring-step software+wire latency
}

// MeasuredBucket is one gradient bucket as observed in a real run: the
// backward compute segment that produces its gradients and the payload
// it all-reduces.
type MeasuredBucket struct {
	Bwd   time.Duration // backward time from the previous bucket's readiness to this one's
	Bytes int64         // gradient payload (4 bytes per float32 element)
}

// Prediction is the modeled per-step outcome for one (world, overlap)
// configuration.
type Prediction struct {
	Step    time.Duration // full iteration wall time
	Comm    time.Duration // total AllReduce time across buckets
	Exposed time.Duration // communication not hidden behind backward
	Hidden  time.Duration // communication overlapped with backward
}

// Efficiency returns the modeled scaling efficiency versus a measured
// single-process step time: serialStep / predicted step. 1.0 is perfect
// weak scaling.
func (p Prediction) Efficiency(serialStep time.Duration) float64 {
	if p.Step == 0 {
		return 0
	}
	return float64(serialStep) / float64(p.Step)
}

// PredictDP predicts one data-parallel training step from measured
// single-process compute and a measured link, using the same ring cost
// and overlap schedule as the analytical Fig. 11 model.
//
// fwd and upd are the per-step forward and optimizer/zero-grad times;
// buckets carry the backward decomposition in launch order.
// computeDilation scales every compute segment — 1.0 models dedicated
// devices (the paper's setting); world/cores models ranks time-slicing a
// shared host, where the "accelerators" themselves contend (the regime a
// loopback benchmark on one machine actually runs in).
func PredictDP(fwd, upd time.Duration, buckets []MeasuredBucket, world int, link Link, overlap bool, computeDilation float64) Prediction {
	if computeDilation < 1 {
		computeDilation = 1
	}
	dilate := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) * computeDilation)
	}
	groups := make([]gradGroup, len(buckets))
	for i, b := range buckets {
		groups[i] = gradGroup{
			bwd:  dilate(b.Bwd),
			comm: ringTime(b.Bytes, world, link.Bandwidth, link.Latency),
		}
	}
	exposed, hidden, commTotal := scheduleComm(groups, overlap && world > 1)
	var bwd time.Duration
	for _, g := range groups {
		bwd += g.bwd
	}
	return Prediction{
		Step:    dilate(fwd) + bwd + exposed + dilate(upd),
		Comm:    commTotal,
		Exposed: exposed,
		Hidden:  hidden,
	}
}
