package dist

import (
	"testing"
	"time"
)

func mkBuckets() []MeasuredBucket {
	return []MeasuredBucket{
		{Bwd: 2 * time.Millisecond, Bytes: 256 << 10},
		{Bwd: 3 * time.Millisecond, Bytes: 512 << 10},
		{Bwd: 3 * time.Millisecond, Bytes: 512 << 10},
		{Bwd: 1 * time.Millisecond, Bytes: 1 << 20},
	}
}

var testLink = Link{Bandwidth: 1 << 30, Latency: 20 * time.Microsecond}

func TestPredictDPWorld1IsPureCompute(t *testing.T) {
	fwd, upd := 5*time.Millisecond, 2*time.Millisecond
	p := PredictDP(fwd, upd, mkBuckets(), 1, testLink, true, 1)
	if p.Comm != 0 || p.Exposed != 0 || p.Hidden != 0 {
		t.Fatalf("world=1 must not communicate: %+v", p)
	}
	if want := fwd + 9*time.Millisecond + upd; p.Step != want {
		t.Fatalf("world=1 step %v, want %v", p.Step, want)
	}
}

func TestPredictDPOverlapHidesComm(t *testing.T) {
	fwd, upd := 5*time.Millisecond, 2*time.Millisecond
	for _, world := range []int{2, 4, 8} {
		seq := PredictDP(fwd, upd, mkBuckets(), world, testLink, false, 1)
		ov := PredictDP(fwd, upd, mkBuckets(), world, testLink, true, 1)
		if seq.Exposed != seq.Comm || seq.Hidden != 0 {
			t.Fatalf("world=%d no-overlap must expose all comm: %+v", world, seq)
		}
		if ov.Comm != seq.Comm {
			t.Fatalf("world=%d overlap changed total comm: %v vs %v", world, ov.Comm, seq.Comm)
		}
		if ov.Exposed >= seq.Exposed {
			t.Fatalf("world=%d overlap did not reduce exposed comm: %v vs %v", world, ov.Exposed, seq.Exposed)
		}
		if ov.Exposed+ov.Hidden != ov.Comm {
			t.Fatalf("world=%d exposed+hidden != comm: %+v", world, ov)
		}
		if ov.Step >= seq.Step {
			t.Fatalf("world=%d overlap did not shorten the step: %v vs %v", world, ov.Step, seq.Step)
		}
	}
}

func TestPredictDPDilationScalesCompute(t *testing.T) {
	fwd, upd := 4*time.Millisecond, 2*time.Millisecond
	base := PredictDP(fwd, upd, mkBuckets(), 2, testLink, false, 1)
	dilated := PredictDP(fwd, upd, mkBuckets(), 2, testLink, false, 2)
	if dilated.Comm != base.Comm {
		t.Fatalf("dilation must not touch comm: %v vs %v", dilated.Comm, base.Comm)
	}
	wantCompute := 2 * (base.Step - base.Exposed)
	if got := dilated.Step - dilated.Exposed; got != wantCompute {
		t.Fatalf("2x dilation: compute %v, want %v", got, wantCompute)
	}
	// Dilation < 1 clamps to 1 (compute cannot contract by sharing a host).
	if p := PredictDP(fwd, upd, mkBuckets(), 2, testLink, false, 0.5); p.Step != base.Step {
		t.Fatalf("dilation<1 must clamp: %v vs %v", p.Step, base.Step)
	}
}

func TestPredictDPMatchesRingCost(t *testing.T) {
	// Single bucket, no overlap: comm must be exactly the ring formula.
	b := []MeasuredBucket{{Bwd: time.Millisecond, Bytes: 1 << 20}}
	for _, world := range []int{2, 3, 4} {
		p := PredictDP(0, 0, b, world, testLink, false, 1)
		want := ringTime(1<<20, world, testLink.Bandwidth, testLink.Latency)
		if p.Comm != want {
			t.Fatalf("world=%d comm %v, want ring %v", world, p.Comm, want)
		}
	}
}

func TestPredictionEfficiency(t *testing.T) {
	p := Prediction{Step: 20 * time.Millisecond}
	if got := p.Efficiency(10 * time.Millisecond); got != 0.5 {
		t.Fatalf("efficiency %v, want 0.5", got)
	}
	if (Prediction{}).Efficiency(time.Second) != 0 {
		t.Fatal("zero step must not divide by zero")
	}
}
