// Package dist implements the paper's multi-device analytical models
// (Section 5.1): per-device execution profiles for data-parallel training
// with and without compute/communication overlap, and for Megatron-style
// m-way tensor slicing, all built from single-device model results exactly
// as the paper builds its profiles from single-GPU measurements.
package dist

import (
	"fmt"
	"time"

	"demystbert/internal/device"
	"demystbert/internal/opgraph"
	"demystbert/internal/perfmodel"
	"demystbert/internal/profile"
)

// RingAllReduce returns the time to all-reduce `bytes` across `devices`
// peers with the ring algorithm (the paper's [28]): each device sends and
// receives 2·(D-1)/D of the buffer over its link, plus 2·(D-1) step
// latencies.
func RingAllReduce(bytes int64, devices int, dev device.Device) time.Duration {
	return ringTime(bytes, devices, dev.Interconnect, dev.InterconnectLatency)
}

// ringTime is the ring all-reduce cost model over an explicit link:
// 2·(D-1)/D of the buffer crosses each link, plus 2·(D-1) per-step
// latencies. Shared by the device-based Fig. 11 profiles and the
// measured-link predictions (PredictDP).
func ringTime(bytes int64, devices int, bandwidth float64, latency time.Duration) time.Duration {
	if devices <= 1 || bytes <= 0 {
		return 0
	}
	d := float64(devices)
	transfer := 2 * (d - 1) / d * float64(bytes) / bandwidth
	steps := time.Duration(2*(devices-1)) * latency
	return time.Duration(transfer*1e9)*time.Nanosecond + steps
}

// Profile is a per-device iteration breakdown in a distributed setting —
// one bar of Fig. 11.
type Profile struct {
	Name    string
	Devices int

	// Compute is the per-class on-device time (Fig. 11's compute
	// segments).
	Compute map[opgraph.LayerClass]time.Duration
	// Comm is the exposed (non-overlapped) communication time.
	Comm time.Duration
	// HiddenComm is communication fully overlapped with computation.
	HiddenComm time.Duration

	Total time.Duration
}

// ComputeTotal sums all compute segments.
func (p Profile) ComputeTotal() time.Duration {
	var t time.Duration
	for _, d := range p.Compute {
		t += d
	}
	return t
}

// CommShare returns exposed communication's fraction of iteration time.
func (p Profile) CommShare() float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.Comm) / float64(p.Total)
}

// Share returns a compute class's fraction of iteration time.
func (p Profile) Share(c opgraph.LayerClass) float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.Compute[c]) / float64(p.Total)
}

// SingleGPU wraps a single-device result as a Fig. 11 profile (bar S1).
func SingleGPU(name string, r *perfmodel.Result) Profile {
	return Profile{
		Name:    name,
		Devices: 1,
		Compute: r.ByClass(),
		Total:   r.Total,
	}
}

// gradGroup is one unit of backward computation whose gradients can be
// communicated independently (the paper overlaps per-layer gradients with
// the preceding layer's backprop).
type gradGroup struct {
	bwd  time.Duration // backward compute time of the group
	comm time.Duration // AllReduce time of its gradients
}

// scheduleComm plays the backward pass against the link. With overlap, a
// group's AllReduce starts once its backward completes and the link is
// free; communication beyond the end of backprop is exposed (Section
// 5.1's "maximum of the computation and communication times for every
// pair of consecutive layers"). Without overlap everything is exposed.
// Shared by the analytical Fig. 11 profiles and the measured-bucket
// predictions (PredictDP), so model and measurement disagree only about
// inputs, never about scheduling.
func scheduleComm(groups []gradGroup, overlap bool) (exposed, hidden, commTotal time.Duration) {
	if overlap {
		var t, linkFree time.Duration
		for _, g := range groups {
			t += g.bwd
			start := t
			if linkFree > start {
				start = linkFree
			}
			linkFree = start + g.comm
			commTotal += g.comm
		}
		if linkFree > t {
			exposed = linkFree - t
		}
		hidden = commTotal - exposed
		return exposed, hidden, commTotal
	}
	for _, g := range groups {
		commTotal += g.comm
	}
	return commTotal, 0, commTotal
}

// DataParallel models D-way data parallelism over the single-device
// result r. With overlap, each group's gradient AllReduce proceeds
// concurrently with the remaining backprop; only communication that
// outlives the backward pass is exposed (Section 5.1's "maximum of the
// computation and communication times for every pair of consecutive
// layers"). Without overlap, all gradient communication serializes after
// backprop (Fig. 11's D1).
func DataParallel(name string, r *perfmodel.Result, devices int, overlap bool) Profile {
	w := r.Graph.Workload
	dev := r.Device
	es := int64(w.Precision.ElemSize()) // gradients travel at training precision

	// Backward compute per group, in backprop order: output heads, then
	// transformer layers from last to first, then the embedding.
	classBwd := func(c opgraph.LayerClass) time.Duration {
		var t time.Duration
		for _, ot := range r.Ops {
			if ot.Op.Class == c && ot.Op.Phase == profile.Backward {
				t += ot.Total
			}
		}
		return t
	}
	groups := []gradGroup{}
	pgs := opgraph.ParamGroups(w.Cfg)
	// pgs order: embedding, layers 0..N-1, heads. Backprop order is the
	// reverse.
	layerBwd := classBwd(opgraph.ClassTransformer) / time.Duration(w.Cfg.NumLayers)
	groups = append(groups, gradGroup{
		bwd:  classBwd(opgraph.ClassOutput),
		comm: RingAllReduce(int64(pgs[len(pgs)-1].Size)*es, devices, dev),
	})
	for i := w.Cfg.NumLayers; i >= 1; i-- {
		groups = append(groups, gradGroup{
			bwd:  layerBwd,
			comm: RingAllReduce(int64(pgs[i].Size)*es, devices, dev),
		})
	}
	groups = append(groups, gradGroup{
		bwd:  classBwd(opgraph.ClassEmbedding),
		comm: RingAllReduce(int64(pgs[0].Size)*es, devices, dev),
	})

	exposed, hidden, _ := scheduleComm(groups, overlap)

	p := Profile{
		Name:       name,
		Devices:    devices,
		Compute:    r.ByClass(),
		Comm:       exposed,
		HiddenComm: hidden,
	}
	p.Total = r.Total + exposed
	return p
}

// TensorSlicing models m-way Megatron-style tensor slicing at per-group
// mini-batch b. The per-device compute graph comes from
// opgraph.Build with SliceWays=m; the four per-layer activation
// AllReduces (two forward, two backward) serialize with computation due
// to data dependencies (Section 5.1).
func TensorSlicing(name string, w opgraph.Workload, m int, dev device.Device) Profile {
	w.SliceWays = m
	r := perfmodel.Run(opgraph.Build(w), dev)

	actBytes := int64(w.Tokens()) * int64(w.Cfg.DModel) * int64(w.Precision.ElemSize())
	perLayer := 4 * RingAllReduce(actBytes, m, dev)
	comm := time.Duration(w.Cfg.NumLayers) * perLayer
	if w.CheckpointEvery > 0 {
		// Recomputed forward segments repeat their two forward AllReduces.
		comm += time.Duration(w.Cfg.NumLayers) * 2 * RingAllReduce(actBytes, m, dev)
	}

	return Profile{
		Name:    name,
		Devices: m,
		Compute: r.ByClass(),
		Comm:    comm,
		Total:   r.Total + comm,
	}
}

// Fig11 builds the paper's five Fig. 11 bars for BERT-Large on the given
// device: S1 (single GPU, B=16), D1 (128-way DP without overlap), D2
// (128-way DP with overlap), T1 (2-way TS, B=16), and T2 (8-way TS, B=64).
func Fig11(cfg opgraph.Workload, dev device.Device) []Profile {
	mk := func(b int) opgraph.Workload {
		w := cfg
		w.B = b
		w.Name = fmt.Sprintf("%s-B%d", w.Name, b)
		return w
	}
	s1 := perfmodel.Run(opgraph.Build(mk(16)), dev)
	return []Profile{
		SingleGPU("S1 (1 GPU, B=16)", s1),
		DataParallel("D1 (DP-128, B=16, no overlap)", s1, 128, false),
		DataParallel("D2 (DP-128, B=16, overlap)", s1, 128, true),
		TensorSlicing("T1 (TS 2-way, B=16)", mk(16), 2, dev),
		TensorSlicing("T2 (TS 8-way, B=64)", mk(64), 8, dev),
	}
}
