package dist

import (
	"testing"

	"demystbert/internal/device"
	"demystbert/internal/opgraph"
	"demystbert/internal/perfmodel"
)

func TestInNetworkAllReduceBeatsRing(t *testing.T) {
	dev := device.MI100()
	bytes := int64(1 << 26)
	for _, d := range []int{4, 8, 32, 128} {
		ring := RingAllReduce(bytes, d, dev)
		inNet := InNetworkAllReduce(bytes, d, dev)
		if inNet >= ring {
			t.Errorf("D=%d: in-network %v should beat ring %v", d, inNet, ring)
		}
	}
	if InNetworkAllReduce(1<<20, 1, dev) != 0 {
		t.Fatal("single device needs no communication")
	}
}

func TestInNetworkAllReduceDeviceCountInvariant(t *testing.T) {
	// Unlike the ring, the switch-based transfer term does not grow with
	// device count — only the fixed latency applies.
	dev := device.MI100()
	t8 := InNetworkAllReduce(1<<26, 8, dev)
	t128 := InNetworkAllReduce(1<<26, 128, dev)
	if t128 != t8 {
		t.Fatalf("in-network time changed with device count: %v vs %v", t8, t128)
	}
}

func TestTensorSlicingInNetworkReducesComm(t *testing.T) {
	dev := device.MI100()
	w := opgraph.Phase1(baseWorkload().Cfg, 64, opgraph.FP32)
	ring := TensorSlicing("T2", w, 8, dev)
	inNet := TensorSlicingInNetwork("T2-innet", w, 8, dev)
	if inNet.Comm >= ring.Comm {
		t.Fatalf("in-network TS comm %v should beat ring %v", inNet.Comm, ring.Comm)
	}
	if inNet.Total >= ring.Total {
		t.Fatal("in-network TS must lower iteration time")
	}
	if inNet.ComputeTotal() != ring.ComputeTotal() {
		t.Fatal("in-network processing must not change on-device compute")
	}
}

func TestZeROShrinksOptimizerWork(t *testing.T) {
	dev := device.MI100()
	r := perfmodel.Run(opgraph.Build(baseWorkload()), dev)
	base := SingleGPU("S1", r)

	z := ZeRO("ZeRO-128", r, 128, dev)
	// Takeaway from [69]: the redundant update disappears — optimizer
	// compute scales down ~D (modulo launch overhead).
	if z.UpdateShare() >= base.UpdateShare()/4 {
		t.Fatalf("ZeRO update share %.4f should be far below baseline %.4f",
			z.UpdateShare(), base.UpdateShare())
	}
	// Communication volume is AllReduce-equivalent: comparable to plain
	// DP without overlap.
	// (DP pays per-group ring latencies; ZeRO is one full-model pass, so
	// it lands slightly below.)
	dp := DataParallel("D1", r, 128, false)
	ratio := float64(z.Comm) / float64(dp.Comm)
	if ratio < 0.55 || ratio > 1.3 {
		t.Fatalf("ZeRO comm %.2fx of DP allreduce; should be comparable", ratio)
	}
	// Non-optimizer compute is unchanged.
	if z.Compute[opgraph.ClassTransformer] != base.Compute[opgraph.ClassTransformer] {
		t.Fatal("ZeRO must not change forward/backward compute")
	}
}

func TestZeROGlobalNormCaveat(t *testing.T) {
	// The paper's caveat: LAMB's global norm forces a reduction before
	// any update — ZeRO's comm must exceed the bare reduce-scatter +
	// all-gather by the norm AllReduce's latency term.
	dev := device.MI100()
	r := perfmodel.Run(opgraph.Build(baseWorkload()), dev)
	var paramBytes int64
	for _, g := range opgraph.ParamGroups(baseWorkload().Cfg) {
		paramBytes += int64(g.Size) * 4
	}
	bare := RingAllReduce(paramBytes, 128, dev)
	z := ZeRO("z", r, 128, dev)
	if z.Comm <= bare {
		t.Fatal("ZeRO comm must include the global-norm reduction")
	}
}
