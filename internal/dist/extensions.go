package dist

import (
	"time"

	"demystbert/internal/device"
	"demystbert/internal/opgraph"
	"demystbert/internal/perfmodel"
)

// InNetworkAllReduce models a switch with compute capability performing
// the reduction in the network (Section 6.2.3, the paper's [47]): each
// device streams its buffer up while receiving the reduced result down
// the same full-duplex link, so the transfer term is bytes/link
// regardless of device count —
// versus the ring's 2·(D-1)/D·bytes/link plus 2·(D-1) hop latencies —
// and the interference between computation and communication steps
// disappears.
func InNetworkAllReduce(bytes int64, devices int, dev device.Device) time.Duration {
	if devices <= 1 || bytes <= 0 {
		return 0
	}
	transfer := float64(bytes) / dev.Interconnect
	return time.Duration(transfer*1e9)*time.Nanosecond + 2*dev.InterconnectLatency
}

// TensorSlicingInNetwork is TensorSlicing with the per-layer activation
// AllReduces executed by in-network compute instead of a ring.
func TensorSlicingInNetwork(name string, w opgraph.Workload, m int, dev device.Device) Profile {
	p := TensorSlicing(name, w, m, dev)
	actBytes := int64(w.Tokens()) * int64(w.Cfg.DModel) * int64(w.Precision.ElemSize())
	comm := time.Duration(w.Cfg.NumLayers) * 4 * InNetworkAllReduce(actBytes, m, dev)
	p.Total = p.Total - p.Comm + comm
	p.Comm = comm
	return p
}

// ZeRO models the reduced-gradient data parallelism the paper cites
// (Section 5.2, reference [69], ZeRO stage 2): instead of every device
// all-reducing the full gradient and redundantly updating the whole
// model, each device reduce-scatters gradients (owning 1/D of them),
// updates only its 1/D optimizer-state partition, and all-gathers the
// updated parameters. The communication volume matches a ring AllReduce,
// but the optimizer work per device scales down by D.
//
// The paper's caveat is modeled too: LAMB's global gradient norm still
// requires a reduction over all gradients before any update — a small
// extra AllReduce of the per-partition norms plus the serialization it
// implies.
func ZeRO(name string, r *perfmodel.Result, devices int, dev device.Device) Profile {
	w := r.Graph.Workload
	es := int64(w.Precision.ElemSize())
	var paramBytes int64
	for _, g := range opgraph.ParamGroups(w.Cfg) {
		paramBytes += int64(g.Size) * es
	}

	// Reduce-scatter + all-gather each move (D-1)/D of the buffer — the
	// two halves of a ring AllReduce.
	comm := RingAllReduce(paramBytes, devices, dev)
	// Global-norm AllReduce: one scalar per partition — latency-bound.
	comm += time.Duration(2*(devices-1)) * dev.InterconnectLatency

	compute := make(map[opgraph.LayerClass]time.Duration)
	var total time.Duration
	for _, ot := range r.Ops {
		d := ot.Total
		if ot.Op.Class == opgraph.ClassLAMB {
			// Each device updates 1/D of the parameters; per-kernel
			// launch overhead remains.
			per := ot.PerLaunch - dev.Launch
			if per < 0 {
				per = 0
			}
			d = time.Duration(ot.Op.Repeat) * (per/time.Duration(devices) + dev.Launch)
		}
		compute[ot.Op.Class] += d
		total += d
	}

	return Profile{
		Name:    name,
		Devices: devices,
		Compute: compute,
		Comm:    comm,
		Total:   total + comm,
	}
}

// UpdateShare returns the optimizer's fraction of the profile.
func (p Profile) UpdateShare() float64 {
	return p.Share(opgraph.ClassLAMB)
}
