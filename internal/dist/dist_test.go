package dist

import (
	"testing"
	"time"

	"demystbert/internal/device"
	"demystbert/internal/model"
	"demystbert/internal/opgraph"
	"demystbert/internal/perfmodel"
)

func baseWorkload() opgraph.Workload {
	return opgraph.Phase1(model.BERTLarge(), 16, opgraph.FP32)
}

func TestRingAllReduceFormula(t *testing.T) {
	dev := device.MI100()
	// 2·(D-1)/D·bytes/link + 2·(D-1)·latency.
	bytes := int64(32e9) // one second of link time
	got := RingAllReduce(bytes, 2, dev)
	want := time.Second + 2*dev.InterconnectLatency
	if diff := got - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("2-device allreduce = %v, want ~%v", got, want)
	}
	if RingAllReduce(bytes, 1, dev) != 0 {
		t.Fatal("single device needs no communication")
	}
	if RingAllReduce(0, 8, dev) != 0 {
		t.Fatal("zero bytes needs no communication")
	}
}

func TestRingAllReduceScalesWithDevices(t *testing.T) {
	dev := device.MI100()
	// The transfer term approaches 2·bytes/link as D grows; time must be
	// monotonically non-decreasing in D.
	prev := time.Duration(0)
	for _, d := range []int{2, 4, 8, 32, 128} {
		cur := RingAllReduce(1<<30, d, dev)
		if cur < prev {
			t.Fatalf("allreduce time decreased at D=%d", d)
		}
		prev = cur
	}
}

func TestSingleGPUProfile(t *testing.T) {
	r := perfmodel.Run(opgraph.Build(baseWorkload()), device.MI100())
	p := SingleGPU("S1", r)
	if p.Total != r.Total || p.Comm != 0 {
		t.Fatal("single-GPU profile must match the result with no comm")
	}
	if p.ComputeTotal() != r.Total {
		t.Fatal("compute segments must sum to the result total")
	}
}

// TestFig11DataParallel asserts Section 5.2's D1/D2 claims: without
// overlap ~19% of runtime is gradient communication; with overlap the
// profile is close to single-GPU (Obs. 5).
func TestFig11DataParallel(t *testing.T) {
	r := perfmodel.Run(opgraph.Build(baseWorkload()), device.MI100())

	d1 := DataParallel("D1", r, 128, false)
	if s := d1.CommShare(); s < 0.13 || s > 0.30 {
		t.Errorf("D1 comm share %.3f outside [0.13, 0.30] (paper ~19%%)", s)
	}

	d2 := DataParallel("D2", r, 128, true)
	if s := d2.CommShare(); s > 0.05 {
		t.Errorf("D2 exposed comm share %.3f should be near zero with overlap", s)
	}
	if d2.HiddenComm == 0 {
		t.Error("D2 must report overlapped communication")
	}
	// Obs. 5: D2 looks like S1.
	ratio := float64(d2.Total) / float64(r.Total)
	if ratio > 1.06 {
		t.Errorf("D2 total %.3fx of single-GPU; overlap should hide nearly all comm", ratio)
	}
	if d1.Total <= d2.Total {
		t.Error("no-overlap DP must be slower than overlapped DP")
	}
}

// TestFig11TensorSlicing asserts Section 5.2's T1/T2 claims.
func TestFig11TensorSlicing(t *testing.T) {
	dev := device.MI100()
	w := baseWorkload()

	t1 := TensorSlicing("T1", w, 2, dev)
	if s := t1.CommShare(); s < 0.05 || s > 0.16 {
		t.Errorf("T1 comm share %.3f outside [0.05, 0.16] (paper ~9%%)", s)
	}

	w64 := w
	w64.B = 64
	t2 := TensorSlicing("T2", w64, 8, dev)
	if s := t2.CommShare(); s < 0.30 || s > 0.55 {
		t.Errorf("T2 comm share %.3f outside [0.30, 0.55] (paper ~42%%)", s)
	}

	// Takeaway 13: communication share grows with slicing ways.
	if t2.CommShare() <= t1.CommShare() {
		t.Error("8-way TS must expose more communication than 2-way")
	}

	// Takeaway 12: LAMB share drops as parameters split across devices.
	s1 := SingleGPU("S1", perfmodel.Run(opgraph.Build(w), dev))
	if t1.Share(opgraph.ClassLAMB) >= s1.Share(opgraph.ClassLAMB) {
		t.Error("2-way TS must shrink LAMB's share")
	}
	if t2.Share(opgraph.ClassLAMB) > 0.05 {
		t.Errorf("8-way TS LAMB share %.3f should be negligible", t2.Share(opgraph.ClassLAMB))
	}
}

// T2 also shows the replicated memory-bound layers (DR+RC+LN) gaining
// share with device count (Section 5.2's final observation).
func TestReplicatedLayersGainShare(t *testing.T) {
	dev := device.MI100()
	w := baseWorkload()
	s1 := perfmodel.Run(opgraph.Build(w), dev)

	w8 := w
	w8.B = 64
	w8.SliceWays = 8
	t2 := perfmodel.Run(opgraph.Build(w8), dev)

	share := func(r *perfmodel.Result) float64 {
		return r.CategoryShare("DRRCLN")
	}
	if share(t2) <= share(s1) {
		t.Errorf("DR+RC+LN share must grow under 8-way TS: %.3f vs %.3f", share(t2), share(s1))
	}
}

func TestFig11ProducesFiveBars(t *testing.T) {
	profiles := Fig11(baseWorkload(), device.MI100())
	if len(profiles) != 5 {
		t.Fatalf("Fig11 produced %d bars, want 5", len(profiles))
	}
	for _, p := range profiles {
		if p.Total <= 0 {
			t.Errorf("%s has non-positive total", p.Name)
		}
	}
	// Ordering sanity: D1 slower than D2; T2's comm dominant.
	if profiles[1].Total <= profiles[2].Total {
		t.Error("D1 must be slower than D2")
	}
}

func TestDataParallelMoreDevicesMoreComm(t *testing.T) {
	r := perfmodel.Run(opgraph.Build(baseWorkload()), device.MI100())
	p8 := DataParallel("d", r, 8, false)
	p128 := DataParallel("d", r, 128, false)
	if p128.Comm <= p8.Comm {
		t.Error("ring allreduce cost must grow with device count")
	}
}

func TestEmptyProfileShares(t *testing.T) {
	var p Profile
	if p.CommShare() != 0 || p.Share(opgraph.ClassLAMB) != 0 {
		t.Fatal("empty profile must report zero shares")
	}
}

// TS exposed communication share grows monotonically with slicing ways
// (Takeaway 13 generalized).
func TestTSCommMonotoneInWays(t *testing.T) {
	dev := device.MI100()
	w := opgraph.Phase1(model.BERTLarge(), 32, opgraph.FP32)
	prev := -1.0
	for _, m := range []int{2, 4, 8, 16} {
		p := TensorSlicing("ts", w, m, dev)
		if p.CommShare() <= prev {
			t.Fatalf("comm share not monotone at m=%d: %.3f <= %.3f", m, p.CommShare(), prev)
		}
		prev = p.CommShare()
	}
}
