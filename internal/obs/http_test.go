package obs

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestDebugServerSmoke starts the debug server on an ephemeral port and
// asserts every mounted endpoint responds — the CI smoke test that a
// binary run with -debug-addr is actually observable.
func TestDebugServerSmoke(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("smoke_total", "smoke counter").Add(5)
	s, err := StartDebugServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + s.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body)
	}

	if body := get("/metrics"); !strings.Contains(body, "smoke_total 5") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars missing memstats:\n%.200s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "profile") {
		t.Errorf("/debug/pprof/ index malformed:\n%.200s", body)
	}
}

func TestDebugServerBadAddr(t *testing.T) {
	if _, err := StartDebugServer("256.256.256.256:1", NewRegistry()); err == nil {
		t.Fatal("bad address must error")
	}
}

func TestDebugServerCloseNil(t *testing.T) {
	var s *DebugServer
	if err := s.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("nil Shutdown: %v", err)
	}
	if err := s.ShutdownTimeout(time.Second); err != nil {
		t.Fatalf("nil ShutdownTimeout: %v", err)
	}
}

// TestServerShutdownDrainsInFlight pins the graceful drain contract: a
// request whose handler is still writing when Shutdown is called
// completes with its full body, and Shutdown returns only after the
// handler finished. (http.Server.Close — the old behavior — kills the
// connection mid-body.)
func TestServerShutdownDrainsInFlight(t *testing.T) {
	inHandler := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		close(inHandler)
		<-release
		fmt.Fprint(w, "complete-body")
	})
	s, err := StartServer("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}

	type getResult struct {
		body string
		err  error
	}
	got := make(chan getResult, 1)
	go func() {
		resp, err := http.Get("http://" + s.Addr + "/slow")
		if err != nil {
			got <- getResult{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		got <- getResult{body: string(body), err: err}
	}()

	<-inHandler // request is now in flight
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.ShutdownTimeout(5 * time.Second) }()

	// Shutdown must block while the handler runs.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) before the in-flight handler finished", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight request failed across Shutdown: %v", r.err)
	}
	if r.body != "complete-body" {
		t.Fatalf("in-flight response truncated: %q", r.body)
	}

	// New connections are refused after the drain.
	if _, err := http.Get("http://" + s.Addr + "/slow"); err == nil {
		t.Fatal("request after Shutdown should fail")
	}
}
