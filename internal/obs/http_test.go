package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestDebugServerSmoke starts the debug server on an ephemeral port and
// asserts every mounted endpoint responds — the CI smoke test that a
// binary run with -debug-addr is actually observable.
func TestDebugServerSmoke(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("smoke_total", "smoke counter").Add(5)
	s, err := StartDebugServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + s.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body)
	}

	if body := get("/metrics"); !strings.Contains(body, "smoke_total 5") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars missing memstats:\n%.200s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "profile") {
		t.Errorf("/debug/pprof/ index malformed:\n%.200s", body)
	}
}

func TestDebugServerBadAddr(t *testing.T) {
	if _, err := StartDebugServer("256.256.256.256:1", NewRegistry()); err == nil {
		t.Fatal("bad address must error")
	}
}

func TestDebugServerCloseNil(t *testing.T) {
	var s *DebugServer
	if err := s.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}
