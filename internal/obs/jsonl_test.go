package obs

import (
	"bufio"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"demystbert/internal/profile"
)

func sampleSummary() profile.Summary {
	p := profile.New()
	p.Record(profile.Event{Kernel: "sgemm", Category: profile.CatFCGEMM, Phase: profile.Forward,
		Duration: 10 * time.Millisecond, FLOPs: 4e9, Bytes: 1e8})
	p.Record(profile.Event{Kernel: "layernorm", Category: profile.CatDRRCLN, Phase: profile.Forward,
		Duration: 5 * time.Millisecond, FLOPs: 1e7, Bytes: 2e8})
	return p.Summarize()
}

func TestNewStepRecordRates(t *testing.T) {
	peaks := Peaks{GEMMFLOPS: 1e12, VectorFLOPS: 5e11, MemBytes: 1e11}
	rec := NewStepRecord(3, 9.25, 128, 20*time.Millisecond, sampleSummary(), peaks)
	if rec.Step != 3 || rec.Loss != 9.25 || rec.Tokens != 128 {
		t.Fatalf("header fields %+v", rec)
	}
	if want := 128 / 0.020; math.Abs(rec.TokensPerSec-want) > 1e-9 {
		t.Fatalf("tokens/s = %v, want %v", rec.TokensPerSec, want)
	}
	if len(rec.Categories) != 2 {
		t.Fatalf("categories %+v", rec.Categories)
	}
	// Categories are sorted by descending duration: FCGEMM first.
	gemm := rec.Categories[0]
	if gemm.Category != "FCGEMM" {
		t.Fatalf("first category %q, want FCGEMM", gemm.Category)
	}
	// 4e9 FLOPs in 10 ms = 400 GFLOP/s; vs 1e12 matrix peak = 0.4.
	if math.Abs(gemm.AchievedGFLOPS-400) > 1e-9 || math.Abs(gemm.PeakFLOPFrac-0.4) > 1e-12 {
		t.Fatalf("GEMM achieved %v GFLOP/s (frac %v), want 400 (0.4)", gemm.AchievedGFLOPS, gemm.PeakFLOPFrac)
	}
	// 1e8 bytes in 10 ms = 10 GB/s; vs 1e11 B/s peak = 0.1.
	if math.Abs(gemm.AchievedGBs-10) > 1e-9 || math.Abs(gemm.PeakMemFrac-0.1) > 1e-12 {
		t.Fatalf("GEMM achieved %v GB/s (frac %v), want 10 (0.1)", gemm.AchievedGBs, gemm.PeakMemFrac)
	}
	// Non-GEMM category compares against the vector peak: 1e7 FLOPs in
	// 5 ms = 2 GFLOP/s; vs 5e11 = 4e-3.
	ln := rec.Categories[1]
	if math.Abs(ln.PeakFLOPFrac-2e9/5e11) > 1e-15 {
		t.Fatalf("DRRCLN peak frac %v", ln.PeakFLOPFrac)
	}
}

func TestNewStepRecordZeroPeaksAndWall(t *testing.T) {
	rec := NewStepRecord(0, 0, 64, 0, sampleSummary(), Peaks{})
	if rec.TokensPerSec != 0 {
		t.Fatalf("tokens/s with zero wall = %v", rec.TokensPerSec)
	}
	for _, c := range rec.Categories {
		if c.PeakFLOPFrac != 0 || c.PeakMemFrac != 0 {
			t.Fatalf("peak fractions without peaks: %+v", c)
		}
	}
}

func TestStepEmitterOneLinePerStep(t *testing.T) {
	var sb strings.Builder
	e := NewStepEmitter(&sb, Peaks{GEMMFLOPS: 1e12, VectorFLOPS: 5e11, MemBytes: 1e11})
	sum := sampleSummary()
	for step := 1; step <= 3; step++ {
		if err := e.EmitStep(step, 10-float64(step), 128, 15*time.Millisecond, sum); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	var lines int
	for sc.Scan() {
		lines++
		var rec StepRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", lines, err, sc.Text())
		}
		if rec.Step != lines || rec.Loss != 10-float64(lines) {
			t.Fatalf("line %d decoded %+v", lines, rec)
		}
		if len(rec.Categories) == 0 || rec.Categories[0].AchievedGFLOPS == 0 {
			t.Fatalf("line %d missing achieved rates: %+v", lines, rec.Categories)
		}
	}
	if lines != 3 {
		t.Fatalf("%d JSONL lines, want 3", lines)
	}
}
