package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4) — what `curl /metrics` returns and
// any Prometheus-compatible scraper ingests.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, m := range r.Snapshot() {
		if m.Desc != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(m.Name)
			bw.WriteByte(' ')
			bw.WriteString(m.Desc)
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(m.Name)
		bw.WriteByte(' ')
		bw.WriteString(m.Kind)
		bw.WriteByte('\n')
		switch m.Kind {
		case "histogram":
			for _, b := range m.Buckets {
				bw.WriteString(m.Name)
				bw.WriteString(`_bucket{le="`)
				bw.WriteString(promFloat(b.UpperBound))
				bw.WriteString(`"} `)
				bw.WriteString(strconv.FormatInt(b.Count, 10))
				// OpenMetrics-style exemplar on the +Inf bucket: links
				// the histogram's worst recent observation to its trace.
				if m.Exemplar != nil && math.IsInf(b.UpperBound, 1) {
					bw.WriteString(` # {trace_id="`)
					bw.WriteString(m.Exemplar.TraceID)
					bw.WriteString(`"} `)
					bw.WriteString(promFloat(m.Exemplar.Value))
					bw.WriteByte(' ')
					bw.WriteString(promFloat(float64(m.Exemplar.UnixNano) / 1e9))
				}
				bw.WriteByte('\n')
			}
			bw.WriteString(m.Name)
			bw.WriteString("_sum ")
			bw.WriteString(promFloat(m.Sum))
			bw.WriteByte('\n')
			bw.WriteString(m.Name)
			bw.WriteString("_count ")
			bw.WriteString(strconv.FormatInt(int64(m.Value), 10))
			bw.WriteByte('\n')
		default:
			bw.WriteString(m.Name)
			bw.WriteByte(' ')
			bw.WriteString(promFloat(m.Value))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// promFloat formats a float the way Prometheus text format expects
// (+Inf spelled out, integers without exponent noise).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}
