// Package obs is the observability backbone of the engine: a
// stdlib-only metrics layer (atomic counters, gauges, and fixed-bucket
// histograms in a named registry) with three sinks — a Prometheus-text /
// expvar / pprof debug HTTP server (http.go), a per-step JSONL emitter
// (jsonl.go), and a Snapshot API that reports can embed. The paper's
// methodology is observation (rocProf timelines decomposed into operator
// categories and achieved FLOP/byte rates, Sections 3–4); this package
// makes the same quantities visible while a run is in flight instead of
// only post-hoc.
//
// Hot-path contract: Counter.Add, Gauge.Set/Add, and Histogram.Observe
// are single atomic operations (a short CAS loop for float sums) and
// never allocate, so kernels may call them from inner dispatch loops.
// Metric construction and registration happen once, at package init or
// setup time.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric (events, bytes, cache
// hits). The zero value is usable but unregistered; use NewCounter.
type Counter struct {
	name, desc string
	v          atomic.Int64
}

// Add increments the counter by n. Allocation-free.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one. Allocation-free.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (queue depth, cache size,
// current scale). Stored as float64 bits so Set is one atomic store.
type Gauge struct {
	name, desc string
	bits       atomic.Uint64
}

// Set replaces the gauge value. Allocation-free.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d (CAS loop). Allocation-free.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets chosen at
// construction (Prometheus-style cumulative export). Observe is a linear
// bucket scan plus two atomics — allocation-free and lock-free.
type Histogram struct {
	name, desc string
	bounds     []float64 // ascending inclusive upper bounds
	counts     []atomic.Int64
	sumBits    atomic.Uint64
	ex         atomic.Pointer[exemplar]
}

// exemplar is the trace-linked worst recent observation — tail-latency
// forensics: the histogram says p99 moved, the exemplar says which
// request to pull up in /debug/requests or the Perfetto trace.
type exemplar struct {
	value   float64
	traceID uint64
	at      int64 // unix nanos when recorded
}

// exemplarStaleNanos is how long a peak observation pins the exemplar
// before any newer observation may replace it, so the exemplar tracks
// the *recent* tail rather than the all-time max.
const exemplarStaleNanos = int64(60 * time.Second)

// Observe records one value. Allocation-free.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveExemplar records one value and, when traceID is non-zero,
// offers it as the histogram's exemplar. The exemplar is replaced when
// the new value is at least the current one or the current one has gone
// stale (exemplarStaleNanos old). With traceID zero this is exactly
// Observe — still allocation-free, which keeps the tracing-off serving
// path clean; a replacement allocates one small struct, which only
// happens on a new recent-worst observation.
func (h *Histogram) ObserveExemplar(v float64, traceID uint64) {
	h.Observe(v)
	if traceID == 0 {
		return
	}
	cur := h.ex.Load()
	if cur != nil && v < cur.value && time.Now().UnixNano()-cur.at < exemplarStaleNanos {
		return
	}
	h.ex.Store(&exemplar{value: v, traceID: traceID, at: time.Now().UnixNano()})
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// ExpBuckets returns n ascending bucket bounds starting at start and
// growing by factor — the usual shape for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

// metric is the registry's view of any metric kind.
type metric interface {
	metricName() string
	snapshot() Metric
}

func (c *Counter) metricName() string   { return c.name }
func (g *Gauge) metricName() string     { return g.name }
func (h *Histogram) metricName() string { return h.name }

// Registry is a named set of metrics. Registration takes a lock;
// metric updates never do.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// NewRegistry returns an empty registry (tests use isolated ones; the
// engine shares Default).
func NewRegistry() *Registry { return &Registry{metrics: map[string]metric{}} }

// Default is the process-wide registry all engine subsystems register
// into; the debug HTTP server serves it.
var Default = NewRegistry()

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := m.metricName()
	if _, dup := r.metrics[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.metrics[name] = m
}

// NewCounter registers and returns a counter. Panics on duplicate name.
func (r *Registry) NewCounter(name, desc string) *Counter {
	c := &Counter{name: name, desc: desc}
	r.register(c)
	return c
}

// NewGauge registers and returns a gauge. Panics on duplicate name.
func (r *Registry) NewGauge(name, desc string) *Gauge {
	g := &Gauge{name: name, desc: desc}
	r.register(g)
	return g
}

// NewHistogram registers and returns a histogram with the given
// ascending bucket upper bounds (an implicit +Inf bucket is appended).
// Panics on duplicate name or unsorted bounds.
func (r *Registry) NewHistogram(name, desc string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending at %d", name, i))
		}
	}
	h := &Histogram{
		name:   name,
		desc:   desc,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.register(h)
	return h
}

// NewCounter registers a counter in the Default registry.
func NewCounter(name, desc string) *Counter { return Default.NewCounter(name, desc) }

// NewGauge registers a gauge in the Default registry.
func NewGauge(name, desc string) *Gauge { return Default.NewGauge(name, desc) }

// NewHistogram registers a histogram in the Default registry.
func NewHistogram(name, desc string, bounds []float64) *Histogram {
	return Default.NewHistogram(name, desc, bounds)
}

// Bucket is one cumulative histogram bucket of a snapshot.
type Bucket struct {
	UpperBound float64 `json:"le"` // +Inf encoded as math.Inf(1); JSON renders the last bucket's bound via Count only
	Count      int64   `json:"count"`
}

// MarshalJSON encodes +Inf as the string "+Inf" (JSON has no Inf
// literal).
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.UpperBound, 1) {
		le = fmt.Sprintf("%g", b.UpperBound)
	}
	return fmt.Appendf(nil, `{"le":%q,"count":%d}`, le, b.Count), nil
}

// UnmarshalJSON is the inverse of MarshalJSON, so snapshots embedded in
// report exports survive a JSON round trip.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE    string `json:"le"`
		Count int64  `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	if raw.LE == "+Inf" {
		b.UpperBound = math.Inf(1)
		return nil
	}
	v, err := strconv.ParseFloat(raw.LE, 64)
	if err != nil {
		return err
	}
	b.UpperBound = v
	return nil
}

// Exemplar is the exported form of a histogram's trace-linked worst
// recent observation. TraceID is the 16-hex-digit form clients paste
// into /debug/requests or grep in a trace export.
type Exemplar struct {
	Value    float64 `json:"value"`
	TraceID  string  `json:"trace_id"`
	UnixNano int64   `json:"unix_nano"`
}

// Metric is the point-in-time value of one registered metric.
type Metric struct {
	Name     string    `json:"name"`
	Kind     string    `json:"kind"` // "counter", "gauge", or "histogram"
	Desc     string    `json:"desc,omitempty"`
	Value    float64   `json:"value"`              // counter/gauge value; histogram count
	Sum      float64   `json:"sum,omitempty"`      // histogram only
	Buckets  []Bucket  `json:"buckets,omitempty"`  // histogram only, cumulative
	Exemplar *Exemplar `json:"exemplar,omitempty"` // histogram only, may be nil
}

func (c *Counter) snapshot() Metric {
	return Metric{Name: c.name, Kind: "counter", Desc: c.desc, Value: float64(c.v.Load())}
}

func (g *Gauge) snapshot() Metric {
	return Metric{Name: g.name, Kind: "gauge", Desc: g.desc, Value: g.Value()}
}

func (h *Histogram) snapshot() Metric {
	m := Metric{Name: h.name, Kind: "histogram", Desc: h.desc, Sum: h.Sum()}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		m.Buckets = append(m.Buckets, Bucket{UpperBound: ub, Count: cum})
	}
	m.Value = float64(cum)
	if ex := h.ex.Load(); ex != nil {
		m.Exemplar = &Exemplar{
			Value:    ex.value,
			TraceID:  fmt.Sprintf("%016x", ex.traceID),
			UnixNano: ex.at,
		}
	}
	return m
}

// Snapshot returns the current value of every registered metric, sorted
// by name — the embedding the report package attaches to its exports.
func (r *Registry) Snapshot() []Metric {
	r.mu.Lock()
	ms := make([]metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	out := make([]Metric, 0, len(ms))
	for _, m := range ms {
		out = append(out, m.snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Find returns the snapshot of the named metric, if registered.
func (r *Registry) Find(name string) (Metric, bool) {
	r.mu.Lock()
	m, ok := r.metrics[name]
	r.mu.Unlock()
	if !ok {
		return Metric{}, false
	}
	return m.snapshot(), true
}
