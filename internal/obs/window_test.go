package obs

import (
	"bufio"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestWindowQuantiles(t *testing.T) {
	w := NewWindow(100)
	for i := 1; i <= 100; i++ {
		w.Observe(float64(i))
	}
	if p50 := w.Quantile(0.50); p50 != 50 {
		t.Fatalf("p50 = %v", p50)
	}
	if p99 := w.Quantile(0.99); p99 != 99 {
		t.Fatalf("p99 = %v", p99)
	}
	// Rolling: 100 more observations of 1000 evict the old ones.
	for i := 0; i < 100; i++ {
		w.Observe(1000)
	}
	if p50 := w.Quantile(0.50); p50 != 1000 {
		t.Fatalf("p50 after roll = %v", p50)
	}
	if !math.IsNaN(NewWindow(4).Quantile(0.5)) {
		t.Fatal("empty window should be NaN")
	}
}

func TestWindowObserveZeroAlloc(t *testing.T) {
	w := NewWindow(64)
	allocs := testing.AllocsPerRun(1000, func() { w.Observe(1.5) })
	if allocs != 0 {
		t.Fatalf("Window.Observe allocates %.1f per op", allocs)
	}
}

func TestQuantileGaugeSnapshot(t *testing.T) {
	r := NewRegistry()
	w := NewWindow(16)
	r.NewQuantileGauge("lat_p50_ms", "rolling median", w, 0.50)
	r.NewQuantileGauge("lat_p99_ms", "rolling tail", w, 0.99)
	m, ok := r.Find("lat_p50_ms")
	if !ok || m.Value != 0 {
		t.Fatalf("empty window gauge = %+v", m)
	}
	for i := 1; i <= 10; i++ {
		w.Observe(float64(i))
	}
	m, _ = r.Find("lat_p50_ms")
	if m.Value != 5 {
		t.Fatalf("p50 gauge = %v", m.Value)
	}
	m, _ = r.Find("lat_p99_ms")
	if m.Value != 10 {
		t.Fatalf("p99 gauge = %v", m.Value)
	}
}

func TestHistogramExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_ms", "latency", []float64{1, 10})
	h.ObserveExemplar(2.5, 0) // no trace: observation only
	m, _ := r.Find("lat_ms")
	if m.Exemplar != nil {
		t.Fatal("zero trace id must not set an exemplar")
	}
	h.ObserveExemplar(4, 0xabc)
	h.ObserveExemplar(3, 0xdef) // smaller + fresh exemplar: kept out
	m, _ = r.Find("lat_ms")
	if m.Exemplar == nil || m.Exemplar.TraceID != "0000000000000abc" || m.Exemplar.Value != 4 {
		t.Fatalf("exemplar = %+v", m.Exemplar)
	}
	h.ObserveExemplar(9, 0x123) // new worst replaces
	m, _ = r.Find("lat_ms")
	if m.Exemplar.TraceID != "0000000000000123" {
		t.Fatalf("exemplar not replaced: %+v", m.Exemplar)
	}
	if m.Value != 4 {
		t.Fatalf("exemplar path lost observations: count %v", m.Value)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `# {trace_id="0000000000000123"} 9`) {
		t.Fatalf("prometheus text missing exemplar:\n%s", sb.String())
	}
}

func TestHistogramObserveExemplarNoTraceZeroAlloc(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("zz_ms", "", []float64{1, 10})
	allocs := testing.AllocsPerRun(1000, func() { h.ObserveExemplar(2, 0) })
	if allocs != 0 {
		t.Fatalf("ObserveExemplar without trace allocates %.1f per op", allocs)
	}
}

func TestEmitFinalSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("reqs_total", "")
	c.Add(7)
	var sb strings.Builder
	e := NewStepEmitter(&sb, Peaks{})
	if err := e.EmitStep(1, 5, 64, 0, sampleSummary()); err != nil {
		t.Fatal(err)
	}
	if err := e.EmitFinal(r); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) != 2 {
		t.Fatalf("%d lines, want step + final", len(lines))
	}
	var fin struct {
		FinalMetrics []Metric `json:"final_metrics"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &fin); err != nil {
		t.Fatal(err)
	}
	if len(fin.FinalMetrics) != 1 || fin.FinalMetrics[0].Name != "reqs_total" || fin.FinalMetrics[0].Value != 7 {
		t.Fatalf("final snapshot %+v", fin.FinalMetrics)
	}
}
