package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is a lifecycle-managed HTTP listener shared by the debug
// endpoint and the serving front-end: it binds synchronously (so the
// address is immediately curl-able), serves in the background, and — the
// part http.Server.Close gets wrong — can drain gracefully, letting
// in-flight requests finish instead of killing them mid-body. A scrape
// of /metrics or a served inference request that raced a shutdown used
// to see a truncated response; Shutdown fixes that.
type Server struct {
	// Addr is the address actually bound (useful when the requested
	// port was 0).
	Addr string

	ln  net.Listener
	srv *http.Server
}

// DebugServer is the historical name of Server, kept so call sites that
// only ever serve the debug mux read naturally.
type DebugServer = Server

// NewDebugMux returns the debug routing table serving reg:
//
//	/metrics       Prometheus text exposition of the registry
//	/debug/vars    expvar JSON (cmdline, memstats, published vars)
//	/debug/pprof/  pprof index, profile, heap, trace, ...
func NewDebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartServer binds addr (e.g. "localhost:6060", or ":0" for an
// ephemeral port) and serves handler until Shutdown or Close. It
// returns once the listener is bound.
func StartServer(addr string, handler http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: http server listen %s: %w", addr, err)
	}
	s := &Server{
		Addr: ln.Addr().String(),
		ln:   ln,
		srv: &http.Server{
			Handler:           handler,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go s.srv.Serve(ln)
	return s, nil
}

// StartDebugServer starts the in-process observability endpoint:
// Prometheus-text metrics, Go expvar, and net/http/pprof profiling on
// one listener — the live counterpart of rocProf's offline timelines,
// attachable to any running binary via the -debug-addr flag.
func StartDebugServer(addr string, reg *Registry) (*Server, error) {
	return StartServer(addr, NewDebugMux(reg))
}

// Shutdown stops accepting new connections and waits for in-flight
// handlers to complete, up to ctx's deadline. A scrape or inference
// request that is mid-response finishes its body; only after the drain
// (or the deadline) does the listener die. Returns ctx.Err() when the
// deadline expired with handlers still running.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}

// ShutdownTimeout is Shutdown with a plain timeout instead of a caller
// context — the shape every cmd binary's signal handler wants.
func (s *Server) ShutdownTimeout(d time.Duration) error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

// Close stops the listener and any in-flight handlers immediately.
// Prefer Shutdown; Close is the hard-stop escape hatch.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
