package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is the in-process observability endpoint: Prometheus-text
// metrics, Go expvar, and net/http/pprof profiling on one listener. It
// is the live counterpart of rocProf's offline timelines — attachable
// to any running binary via the -debug-addr flag.
type DebugServer struct {
	// Addr is the address actually bound (useful when the requested
	// port was 0).
	Addr string

	ln  net.Listener
	srv *http.Server
}

// NewDebugMux returns the debug routing table serving reg:
//
//	/metrics       Prometheus text exposition of the registry
//	/debug/vars    expvar JSON (cmdline, memstats, published vars)
//	/debug/pprof/  pprof index, profile, heap, trace, ...
func NewDebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartDebugServer binds addr (e.g. "localhost:6060", or ":0" for an
// ephemeral port) and serves the debug mux for reg until Close. It
// returns once the listener is bound, so /metrics is immediately
// curl-able.
func StartDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server listen %s: %w", addr, err)
	}
	s := &DebugServer{
		Addr: ln.Addr().String(),
		ln:   ln,
		srv: &http.Server{
			Handler:           NewDebugMux(reg),
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go s.srv.Serve(ln)
	return s, nil
}

// Close stops the listener and any in-flight handlers.
func (s *DebugServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
