package obs

import (
	"math"
	"sort"
	"sync"
)

// Window is a fixed-capacity ring of recent observations backing
// rolling-window quantile gauges. A cumulative histogram answers "what
// was p99 since boot"; a window answers "what is p99 right now", which
// is what a load test or a dashboard watching a latency regression
// actually wants. Observe is a mutex plus one store — no allocation
// after construction — and the sort cost lives entirely at snapshot
// (scrape) time.
type Window struct {
	mu   sync.Mutex
	buf  []float64
	next int
	full bool
}

// DefaultWindowCap holds roughly the last few seconds of a loaded
// serving run (at ~1k req/s) — recent enough to track a moving tail.
const DefaultWindowCap = 4096

// NewWindow returns a window retaining the last capacity observations
// (DefaultWindowCap when capacity <= 0).
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		capacity = DefaultWindowCap
	}
	return &Window{buf: make([]float64, 0, capacity)}
}

// Observe appends one value, evicting the oldest at capacity.
func (w *Window) Observe(v float64) {
	w.mu.Lock()
	if len(w.buf) < cap(w.buf) {
		w.buf = append(w.buf, v)
	} else {
		w.buf[w.next] = v
		w.full = true
	}
	w.next = (w.next + 1) % cap(w.buf)
	w.mu.Unlock()
}

// Quantile returns the q-th quantile (0..1, nearest-rank) of the
// retained observations; NaN when empty.
func (w *Window) Quantile(q float64) float64 {
	w.mu.Lock()
	tmp := append([]float64(nil), w.buf...)
	w.mu.Unlock()
	if len(tmp) == 0 {
		return math.NaN()
	}
	sort.Float64s(tmp)
	i := int(math.Ceil(q*float64(len(tmp)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(tmp) {
		i = len(tmp) - 1
	}
	return tmp[i]
}

// Len returns the number of retained observations.
func (w *Window) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.buf)
}

// quantileGauge is a registered gauge whose value is computed from a
// Window at snapshot time.
type quantileGauge struct {
	name, desc string
	w          *Window
	q          float64
}

func (g *quantileGauge) metricName() string { return g.name }

func (g *quantileGauge) snapshot() Metric {
	v := g.w.Quantile(g.q)
	if math.IsNaN(v) {
		v = 0
	}
	return Metric{Name: g.name, Kind: "gauge", Desc: g.desc, Value: v}
}

// NewQuantileGauge registers a gauge that reports the q-th quantile of
// w's rolling window whenever the registry is snapshotted or scraped.
// Several gauges (p50, p99) may share one window.
func (r *Registry) NewQuantileGauge(name, desc string, w *Window, q float64) {
	r.register(&quantileGauge{name: name, desc: desc, w: w, q: q})
}

// NewQuantileGauge registers a window-quantile gauge in Default.
func NewQuantileGauge(name, desc string, w *Window, q float64) {
	Default.NewQuantileGauge(name, desc, w, q)
}
