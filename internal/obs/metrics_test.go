package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "a counter")
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	g := r.NewGauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	r.NewGauge("dup", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", "lat", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.01+0.05+0.5+5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	m, ok := r.Find("h")
	if !ok || m.Kind != "histogram" {
		t.Fatalf("Find(h) = %+v, %v", m, ok)
	}
	// Cumulative: le=0.01 holds 2 (0.005 and the boundary-inclusive
	// 0.01), le=0.1 holds 3, le=1 holds 4, +Inf holds all 5.
	wantCum := []int64{2, 3, 4, 5}
	for i, b := range m.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket %d cumulative = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(m.Buckets[3].UpperBound, 1) {
		t.Fatalf("last bucket bound = %v, want +Inf", m.Buckets[3].UpperBound)
	}
}

func TestHistogramUnsortedBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bounds must panic")
		}
	}()
	NewRegistry().NewHistogram("bad", "", []float64{1, 0.5})
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-3, 10, 4)
	want := []float64{1e-3, 1e-2, 1e-1, 1}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-15 {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
}

func TestSnapshotSortedAndJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("z_total", "last").Add(7)
	r.NewGauge("a_gauge", "first").Set(3)
	h := r.NewHistogram("m_hist", "mid", []float64{1, 2})
	h.Observe(1.5)

	snap := r.Snapshot()
	var names []string
	for _, m := range snap {
		names = append(names, m.Name)
	}
	if strings.Join(names, ",") != "a_gauge,m_hist,z_total" {
		t.Fatalf("snapshot order %v", names)
	}

	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back []Metric
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if len(back) != 3 || back[2].Value != 7 {
		t.Fatalf("round-trip snapshot %+v", back)
	}
	if hb := back[1].Buckets; len(hb) != 3 || !math.IsInf(hb[2].UpperBound, 1) || hb[2].Count != 1 {
		t.Fatalf("round-trip histogram buckets %+v", back[1].Buckets)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("steps_total", "completed steps").Add(3)
	r.NewGauge("scale", "loss scale").Set(1024)
	h := r.NewHistogram("step_seconds", "step latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(2)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP steps_total completed steps",
		"# TYPE steps_total counter",
		"steps_total 3",
		"# TYPE scale gauge",
		"scale 1024",
		"# TYPE step_seconds histogram",
		`step_seconds_bucket{le="0.1"} 1`,
		`step_seconds_bucket{le="1"} 1`,
		`step_seconds_bucket{le="+Inf"} 2`,
		"step_seconds_sum 2.05",
		"step_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c", "")
	g := r.NewGauge("g", "")
	h := r.NewHistogram("h", "", []float64{10})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 20))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: c=%d g=%v h=%d", c.Value(), g.Value(), h.Count())
	}
}

// TestMetricsZeroAlloc pins the hot-path contract: instrumented kernels
// call these from inner dispatch loops, so one allocation here is a
// regression (the overhead-guard satellite of the observability PR).
func TestMetricsZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c", "")
	g := r.NewGauge("g", "")
	h := r.NewHistogram("h", "", ExpBuckets(1e-4, 10, 8))
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Errorf("Counter.Add allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(4.2); g.Add(1) }); n != 0 {
		t.Errorf("Gauge.Set/Add allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.03) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v per op", n)
	}
}
