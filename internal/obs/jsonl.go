package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"

	"demystbert/internal/profile"
)

// Peaks carries the roofline ceilings a step's achieved rates are
// compared against. It mirrors internal/device's peak fields as plain
// numbers so this package stays import-light (device sits above the
// kernels that import obs); device.Device.Peaks() fills it.
type Peaks struct {
	// GEMMFLOPS is the peak matrix-pipeline throughput, FLOP/s.
	GEMMFLOPS float64 `json:"gemm_peak_flops,omitempty"`
	// VectorFLOPS is the peak element-wise throughput, FLOP/s.
	VectorFLOPS float64 `json:"vector_peak_flops,omitempty"`
	// MemBytes is the peak memory bandwidth, bytes/s.
	MemBytes float64 `json:"mem_peak_bytes,omitempty"`
}

// CategoryStep is one operator category's share of a training step: the
// paper's per-category time/FLOPs/bytes decomposition (Fig. 3/4) plus
// the achieved-rate columns of its roofline analysis (Fig. 6/7).
type CategoryStep struct {
	Category string  `json:"category"`
	Kernels  int     `json:"kernels"`
	TimeMS   float64 `json:"time_ms"`
	GFLOPs   float64 `json:"gflops"`
	GBytes   float64 `json:"gbytes"`
	// AchievedGFLOPS and AchievedGBs are the category's realized
	// compute and memory rates over its own wall time.
	AchievedGFLOPS float64 `json:"achieved_gflops"`
	AchievedGBs    float64 `json:"achieved_gbs"`
	// PeakFLOPFrac is AchievedGFLOPS over the applicable compute peak
	// (matrix peak for GEMM categories, vector peak otherwise);
	// PeakMemFrac is AchievedGBs over peak bandwidth. Zero when the
	// corresponding peak is unknown. Categories that mix GEMM and
	// vector kernels (e.g. Output) are compared against the vector
	// peak, so their fraction can exceed 1.
	PeakFLOPFrac float64 `json:"peak_flop_frac,omitempty"`
	PeakMemFrac  float64 `json:"peak_mem_frac,omitempty"`
}

// StepRecord is one line of the per-step JSONL stream.
type StepRecord struct {
	Step         int            `json:"step"`
	Loss         float64        `json:"loss"`
	Tokens       int            `json:"tokens"`
	WallMS       float64        `json:"wall_ms"`
	TokensPerSec float64        `json:"tokens_per_sec"`
	Categories   []CategoryStep `json:"categories"`
}

// NewStepRecord builds a record from one step's profile summary. wall is
// the step's wall-clock time (which bounds tokens/s; the summary's
// per-kernel durations can exceed it when kernels run in parallel).
func NewStepRecord(step int, loss float64, tokens int, wall time.Duration, sum profile.Summary, peaks Peaks) StepRecord {
	rec := StepRecord{
		Step:   step,
		Loss:   loss,
		Tokens: tokens,
		WallMS: 1e3 * wall.Seconds(),
	}
	if wall > 0 {
		rec.TokensPerSec = float64(tokens) / wall.Seconds()
	}
	for _, c := range sum.Categories() {
		st := sum.ByCategory[c]
		rec.Categories = append(rec.Categories, NewCategoryStep(c, st, peaks))
	}
	return rec
}

// NewCategoryStep converts one category's aggregate stat into its
// achieved-rate row.
func NewCategoryStep(c profile.Category, st profile.Stat, peaks Peaks) CategoryStep {
	row := CategoryStep{
		Category: string(c),
		Kernels:  st.Kernels,
		TimeMS:   1e3 * st.Duration.Seconds(),
		GFLOPs:   float64(st.FLOPs) / 1e9,
		GBytes:   float64(st.Bytes) / 1e9,
	}
	if secs := st.Duration.Seconds(); secs > 0 {
		row.AchievedGFLOPS = row.GFLOPs / secs
		row.AchievedGBs = row.GBytes / secs
	}
	flopPeak := peaks.VectorFLOPS
	if c.IsGEMM() {
		flopPeak = peaks.GEMMFLOPS
	}
	if flopPeak > 0 {
		row.PeakFLOPFrac = 1e9 * row.AchievedGFLOPS / flopPeak
	}
	if peaks.MemBytes > 0 {
		row.PeakMemFrac = 1e9 * row.AchievedGBs / peaks.MemBytes
	}
	return row
}

// StepEmitter writes one JSON record per training step to a stream —
// the flight recorder a dashboard or plotting pipeline tails. Writes
// are buffered (one small write syscall per step instead of several);
// callers register Flush on their shutdown path (runutil.Shutdown) so
// an interrupted run still lands its completed steps on disk. Safe for
// concurrent use.
type StepEmitter struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	peaks Peaks
	enc   *json.Encoder
}

// NewStepEmitter wraps w. peaks may be zero-valued when no device model
// applies (the peak-fraction fields are then omitted).
func NewStepEmitter(w io.Writer, peaks Peaks) *StepEmitter {
	bw := bufio.NewWriter(w)
	return &StepEmitter{bw: bw, peaks: peaks, enc: json.NewEncoder(bw)}
}

// Emit writes rec as one JSON line.
func (e *StepEmitter) Emit(rec StepRecord) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.enc.Encode(rec)
}

// Flush forces buffered records to the underlying writer.
func (e *StepEmitter) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.bw.Flush()
}

// finalRecord is the terminal JSONL line: the full registry snapshot at
// shutdown, so the stream carries the run's closing counters (requests
// served, deadline hits, padding waste) alongside its per-step rows.
type finalRecord struct {
	FinalMetrics []Metric `json:"final_metrics"`
}

// EmitFinal appends the registry's closing snapshot as a final
// {"final_metrics": [...]} line and flushes. Nil registry flushes only.
func (e *StepEmitter) EmitFinal(r *Registry) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if r != nil {
		if err := e.enc.Encode(finalRecord{FinalMetrics: r.Snapshot()}); err != nil {
			return err
		}
	}
	return e.bw.Flush()
}

// EmitStep builds a record from the step's summary and writes it.
func (e *StepEmitter) EmitStep(step int, loss float64, tokens int, wall time.Duration, sum profile.Summary) error {
	return e.Emit(NewStepRecord(step, loss, tokens, wall, sum, e.peaks))
}
