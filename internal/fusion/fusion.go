// Package fusion implements the paper's kernel-fusion studies
// (Section 6.1, Fig. 12): vertical fusion of element-wise kernel chains
// (LayerNorm, Adam), where the benefit is set by cross-kernel data reuse,
// and horizontal fusion of the three attention linear GEMMs that share an
// input matrix (Fig. 13).
package fusion

import (
	"time"

	"demystbert/internal/device"
	"demystbert/internal/opgraph"
)

// Study compares a fused and an unfused execution of the same computation.
type Study struct {
	Name string

	UnfusedKernels int
	FusedKernels   int
	UnfusedBytes   int64
	FusedBytes     int64
	UnfusedTime    time.Duration
	FusedTime      time.Duration
}

// KernelRatio returns unfused/fused kernel count.
func (s Study) KernelRatio() float64 {
	return float64(s.UnfusedKernels) / float64(s.FusedKernels)
}

// TrafficRatio returns unfused/fused memory traffic.
func (s Study) TrafficRatio() float64 {
	return float64(s.UnfusedBytes) / float64(s.FusedBytes)
}

// Speedup returns unfused/fused runtime.
func (s Study) Speedup() float64 {
	return float64(s.UnfusedTime) / float64(s.FusedTime)
}

// ewTime models one element-wise kernel moving `bytes`.
func ewTime(dev device.Device, bytes int64) time.Duration {
	op := opgraph.Op{Bytes: bytes, ElemSize: 4, Repeat: 1}
	return dev.OpTime(op, opgraph.FP32)
}

// optTime models one fused optimizer kernel: like LAMB's stages, its many
// concurrent parameter/state streams achieve a lower fraction of peak
// bandwidth (device.OptimizerMemEff).
func optTime(dev device.Device, bytes int64) time.Duration {
	op := opgraph.Op{Bytes: bytes, ElemSize: 4, Repeat: 1, Class: opgraph.ClassLAMB}
	return dev.OpTime(op, opgraph.FP32)
}

// LayerNorm builds the Fig. 12a LayerNorm study over a rows×n activation:
// unfused, the forward launches seven kernels (mean, center, square,
// variance, rsqrt-normalize, gamma scale, beta add), each re-reading the
// activation it consumes; fused, a single kernel reads the input once and
// writes the output once. High producer-consumer reuse makes runtime and
// traffic shrink almost proportionally to kernel count (the paper's
// 6-8×).
func LayerNorm(rows, n int, dev device.Device) Study {
	elem := int64(rows) * int64(n) * 4

	// Per-kernel activation passes (reads+writes of the full array;
	// per-row statistics are negligible).
	unfusedPasses := []int64{
		1, // mean: read x
		2, // center: read x, write t
		2, // square: read t, write s
		1, // variance: read s
		2, // normalize: read t, write t
		2, // gamma: read t, write t
		2, // beta: read t, write y
	}
	s := Study{Name: "LayerNorm", FusedKernels: 1, FusedBytes: 2 * elem}
	for _, p := range unfusedPasses {
		s.UnfusedKernels++
		s.UnfusedBytes += p * elem
		s.UnfusedTime += ewTime(dev, p*elem)
	}
	s.FusedTime = ewTime(dev, s.FusedBytes)
	return s
}

// Adam builds the Fig. 12a Adam study over the given parameter-tensor
// sizes. Unfused, every elementary optimizer operation is its own kernel
// per tensor; fused, a multi-tensor kernel covers `chunk` tensors per
// launch with one pass over g, m, v, w. Because different tensors' state
// is independent data, fusion collapses the kernel count by orders of
// magnitude (~250×) while traffic and runtime shrink only ~6-8× — the
// asymmetry the paper highlights.
func Adam(tensorSizes []int, chunk int, dev device.Device) Study {
	if chunk < 1 {
		chunk = 1
	}
	// Unfused per-tensor passes, mirroring an eager PyTorch Adam with
	// out-of-place temporaries (each elementary op reads its operands
	// from and writes its result to memory).
	unfusedPasses := []int64{
		2, // m *= beta1
		2, // t = (1-beta1)*g
		3, // m += t
		2, // v *= beta2
		3, // t = g*g
		2, // t *= (1-beta2)
		3, // v += t
		2, // t = v/bias2
		2, // t = sqrt(t)+eps
		2, // u = m/bias1
		3, // u /= t
		3, // w -= lr*u
	}
	s := Study{Name: "Adam"}
	var total int64
	for _, size := range tensorSizes {
		elem := int64(size) * 4
		total += elem
		for _, p := range unfusedPasses {
			s.UnfusedKernels++
			s.UnfusedBytes += p * elem
			s.UnfusedTime += ewTime(dev, p*elem)
		}
	}
	// Fused: read g, m, v, w; write m, v, w — 7 passes, chunked launches
	// with the multi-stream optimizer bandwidth penalty.
	s.FusedBytes = 7 * total
	s.FusedKernels = (len(tensorSizes) + chunk - 1) / chunk
	perLaunch := s.FusedBytes / int64(s.FusedKernels)
	for i := 0; i < s.FusedKernels; i++ {
		s.FusedTime += optTime(dev, perLaunch)
	}
	return s
}

// QKV builds the Fig. 12b study: fusing the three attention linear-
// transform GEMMs, which share the (tokens × dModel) input matrix, into
// one GEMM against the concatenated weight matrix (Fig. 13). The fused
// kernel reads the input once instead of three times and exposes 3× the
// parallelism, which matters most when the individual GEMMs are too small
// to fill the accelerator.
//
// forwardOnly selects the FWD GEMMs (3F vs 3S); otherwise the BWD
// d-activation GEMMs are modeled.
func QKV(tokens, dModel int, p opgraph.Precision, dev device.Device) Study {
	es := int64(p.ElemSize())
	d, t := int64(dModel), int64(tokens)

	single := opgraph.GEMMShape{M: dModel, N: tokens, K: dModel, Batch: 1}
	fused := opgraph.GEMMShape{M: 3 * dModel, N: tokens, K: dModel, Batch: 1}

	mkOp := func(shape opgraph.GEMMShape, bytes int64) opgraph.Op {
		return opgraph.Op{
			GEMM:     &shape,
			FLOPs:    shape.FLOPs(),
			Bytes:    bytes,
			ElemSize: int(es),
			Repeat:   1,
		}
	}

	// Unfused: each GEMM reads input (t·d), weights (d·d), writes (t·d).
	perBytes := es * (t*d + d*d + t*d)
	s := Study{Name: "QKV", UnfusedKernels: 3, FusedKernels: 1}
	for i := 0; i < 3; i++ {
		op := mkOp(single, perBytes)
		s.UnfusedBytes += perBytes
		s.UnfusedTime += dev.OpTime(op, p)
	}
	// Fused: input read once, 3·d·d weights, 3·t·d outputs.
	s.FusedBytes = es * (t*d + 3*d*d + 3*t*d)
	s.FusedTime = dev.OpTime(mkOp(fused, s.FusedBytes), p)
	return s
}

// TransformerLayerNormStudy instantiates the LayerNorm study at a BERT
// workload's activation geometry.
func TransformerLayerNormStudy(w opgraph.Workload, dev device.Device) Study {
	return LayerNorm(w.Tokens(), w.Cfg.DModel, dev)
}

// ModelAdamStudy instantiates the Adam study over every parameter tensor
// of the workload's model, with the apex-style multi-tensor chunk size.
func ModelAdamStudy(w opgraph.Workload, chunk int, dev device.Device) Study {
	var sizes []int
	for _, pt := range opgraph.ParamTensors(w.Cfg) {
		sizes = append(sizes, pt.Size)
	}
	return Adam(sizes, chunk, dev)
}
