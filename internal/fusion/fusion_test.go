package fusion

import (
	"testing"

	"demystbert/internal/device"
	"demystbert/internal/model"
	"demystbert/internal/opgraph"
)

// TestLayerNormFusion asserts Fig. 12a's LayerNorm result: runtime and
// memory traffic scale similarly to kernel count (6-8×) because of high
// cross-kernel data reuse.
func TestLayerNormFusion(t *testing.T) {
	dev := device.MI100()
	s := LayerNorm(4096, 1024, dev)
	if s.UnfusedKernels != 7 || s.FusedKernels != 1 {
		t.Fatalf("kernel counts %d/%d, want 7/1", s.UnfusedKernels, s.FusedKernels)
	}
	if r := s.TrafficRatio(); r < 5 || r > 8.5 {
		t.Errorf("LN traffic ratio %.2f outside the paper's ~6-8x", r)
	}
	if r := s.Speedup(); r < 4.5 || r > 8.5 {
		t.Errorf("LN speedup %.2f outside the paper's ~6-8x", r)
	}
}

// TestAdamFusion asserts Fig. 12a's Adam asymmetry: kernel count drops by
// orders of magnitude (~250×) while traffic and runtime drop only ~6-8×
// (no cross-tensor reuse exists to exploit).
func TestAdamFusion(t *testing.T) {
	dev := device.MI100()
	s := ModelAdamStudy(opgraph.Phase1(model.BERTLarge(), 32, opgraph.FP32), 320, dev)

	if r := s.KernelRatio(); r < 100 || r > 5000 {
		t.Errorf("Adam kernel ratio %.0f outside plausible multi-tensor range", r)
	}
	if r := s.TrafficRatio(); r < 2.5 || r > 8.5 {
		t.Errorf("Adam traffic ratio %.2f outside the paper's ~6-8x", r)
	}
	if s.Speedup() >= s.KernelRatio()/4 {
		t.Error("Adam runtime gain must be far below its kernel-count gain")
	}
	// The asymmetry claim: LayerNorm's traffic reduction tracks its
	// kernel reduction; Adam's does not.
	ln := LayerNorm(4096, 1024, dev)
	lnGap := ln.KernelRatio() / ln.TrafficRatio()
	adamGap := s.KernelRatio() / s.TrafficRatio()
	if adamGap < 5*lnGap {
		t.Errorf("Adam's kernel/traffic gap %.1f should dwarf LayerNorm's %.1f", adamGap, lnGap)
	}
}

// TestQKVFusion asserts Fig. 12b: fusing the three linear GEMMs improves
// performance, most strongly for small inputs (paper: up to 62%).
func TestQKVFusion(t *testing.T) {
	dev := device.MI100()

	small := QKV(512, 1024, opgraph.FP32, dev)
	if small.Speedup() < 1.3 {
		t.Errorf("small-input QKV fusion speedup %.2f should be substantial", small.Speedup())
	}
	large := QKV(8192, 1024, opgraph.FP32, dev)
	if large.Speedup() <= 1.0 {
		t.Errorf("large-input QKV fusion speedup %.2f should still be positive", large.Speedup())
	}
	if small.Speedup() <= large.Speedup() {
		t.Errorf("fusion impact must be higher for small inputs: %.2f vs %.2f",
			small.Speedup(), large.Speedup())
	}

	// The fused kernel reads the shared input once.
	if small.FusedBytes >= small.UnfusedBytes {
		t.Error("fusion must reduce memory traffic")
	}
}

func TestQKVFusionSmallerHiddenDim(t *testing.T) {
	// "Its impact is higher when the input matrices are small (smaller
	// token count or hidden dimension)".
	dev := device.MI100()
	narrow := QKV(2048, 512, opgraph.FP32, dev)
	wide := QKV(2048, 2048, opgraph.FP32, dev)
	if narrow.Speedup() <= wide.Speedup() {
		t.Errorf("narrow-hidden fusion %.2f should beat wide-hidden %.2f",
			narrow.Speedup(), wide.Speedup())
	}
}

func TestAdamChunkOne(t *testing.T) {
	s := Adam([]int{100, 200}, 0, device.MI100()) // chunk clamps to 1
	if s.FusedKernels != 2 {
		t.Fatalf("chunk=1 fused kernels = %d, want 2", s.FusedKernels)
	}
}

func TestStudyRatiosConsistent(t *testing.T) {
	s := Study{UnfusedKernels: 10, FusedKernels: 2, UnfusedBytes: 100, FusedBytes: 25,
		UnfusedTime: 40, FusedTime: 10}
	if s.KernelRatio() != 5 || s.TrafficRatio() != 4 || s.Speedup() != 4 {
		t.Fatal("ratio helpers wrong")
	}
}
