package ddp

import (
	"fmt"
	"math"
	"sync"

	"demystbert/internal/kernels"
	"demystbert/internal/nn"
	"demystbert/internal/profile"
	"demystbert/internal/tensor"
)

// SlicedLayer executes one Transformer encoder layer under m-way
// Megatron-style tensor slicing, for real (Fig. 10): each worker holds
// 1/m of the attention heads (column-split Q/K/V projections), the
// matching row-split slice of the output projection, a column-split FC-1
// and row-split FC-2 slice, and a full replica of the LayerNorms. The two
// forward partial-sum AllReduces (after the output projection and after
// FC-2) and the two backward input-gradient AllReduces (into the Q/K/V
// and FC-1 inputs) run as real ring AllReduces across the workers —
// Section 5.1's four AllReduces per layer, executed.
//
// Dropout is disabled inside the sliced layer: the replicated dropout of
// real Megatron requires synchronized RNG streams, and the layer's
// purpose here is numerical parity with an unsliced reference.
type SlicedLayer struct {
	Workers []*slicedWorker
	AttnLN  *nn.LayerNorm
	FFLN    *nn.LayerNorm

	dModel, heads, dFF int

	// Saved for backward.
	b, n    int
	input   *tensor.Tensor
	attnSum *tensor.Tensor // post-residual attention-block LN input
	ffSum   *tensor.Tensor
}

type slicedWorker struct {
	rank int
	// Column-parallel projections: out = dModel/m features each.
	wq, wk, wv *nn.Linear
	// Row-parallel output projection: in = dModel/m, out = dModel.
	wo *nn.Linear
	// FC-1 column-parallel (out = dFF/m), FC-2 row-parallel (in = dFF/m).
	fc1, fc2 *nn.Linear
	gelu     *nn.GeLU

	attn *slicedAttention
}

// NewSlicedLayer slices a reference encoder layer's weights across m
// workers. The reference layer is read, not mutated; it must have been
// built with nn.NewEncoderLayer.
func NewSlicedLayer(ref *nn.EncoderLayer, m int) (*SlicedLayer, error) {
	dModel := ref.Attn.Wq.In()
	heads := ref.Attn.Heads()
	dFF := ref.FF.FC1.Out()
	if heads%m != 0 || dFF%m != 0 || dModel%m != 0 {
		return nil, fmt.Errorf("ddp: %d-way slicing does not divide h=%d, d_ff=%d, d_model=%d", m, heads, dFF, dModel)
	}
	dm, ffm, hm := dModel/m, dFF/m, heads/m

	s := &SlicedLayer{
		AttnLN: cloneLN(ref.AttnLN, dModel),
		FFLN:   cloneLN(ref.FFLN, dModel),
		dModel: dModel,
		heads:  heads,
		dFF:    dFF,
	}
	for w := 0; w < m; w++ {
		worker := &slicedWorker{
			rank: w,
			wq:   sliceLinearRows(ref.Attn.Wq, w*dm, dm),
			wk:   sliceLinearRows(ref.Attn.Wk, w*dm, dm),
			wv:   sliceLinearRows(ref.Attn.Wv, w*dm, dm),
			wo:   sliceLinearCols(ref.Attn.Wo, w*dm, dm, w == 0),
			fc1:  sliceLinearRows(ref.FF.FC1, w*ffm, ffm),
			fc2:  sliceLinearCols(ref.FF.FC2, w*ffm, ffm, w == 0),
			gelu: nn.NewGeLU(),
			attn: &slicedAttention{heads: hm, dHead: dModel / heads},
		}
		s.Workers = append(s.Workers, worker)
	}
	return s, nil
}

// cloneLN copies a LayerNorm's parameters into a fresh module (replicated
// weights; gradients accumulate locally and are identical across workers,
// so one replica suffices).
func cloneLN(ref *nn.LayerNorm, dim int) *nn.LayerNorm {
	ln := nn.NewLayerNorm("ts.ln", dim)
	ln.Gamma.Value.CopyFrom(ref.Gamma.Value)
	ln.Beta.Value.CopyFrom(ref.Beta.Value)
	return ln
}

// sliceLinearRows builds a column-parallel shard: rows [off, off+count) of
// the reference weight (output features) and the matching bias slice.
func sliceLinearRows(ref *nn.Linear, off, count int) *nn.Linear {
	in := ref.In()
	l := nn.NewLinear("ts.colpar", in, count, profile.CatLinear, tensor.NewRNG(1))
	for r := 0; r < count; r++ {
		copy(l.W.Value.Row(r), ref.W.Value.Row(off+r))
	}
	copy(l.B.Value.Data(), ref.B.Value.Data()[off:off+count])
	return l
}

// sliceLinearCols builds a row-parallel shard: columns [off, off+count) of
// the reference weight (input features). Only the first worker carries
// the bias — partial sums are added across workers, so a replicated bias
// would be counted m times.
func sliceLinearCols(ref *nn.Linear, off, count int, withBias bool) *nn.Linear {
	out := ref.Out()
	l := nn.NewLinear("ts.rowpar", count, out, profile.CatLinear, tensor.NewRNG(1))
	for r := 0; r < out; r++ {
		copy(l.W.Value.Row(r), ref.W.Value.Row(r)[off:off+count])
	}
	if withBias {
		copy(l.B.Value.Data(), ref.B.Value.Data())
	} else {
		l.B.Value.Zero()
	}
	return l
}

// Forward runs the sliced layer over x: [B·n, dModel].
func (s *SlicedLayer) Forward(ctx *nn.Ctx, x *tensor.Tensor, b, n int) *tensor.Tensor {
	s.b, s.n = b, n
	s.input = x
	m := len(s.Workers)

	// Attention: each worker computes its heads' context slice and its
	// row-parallel partial projection output, in parallel.
	partials := make([][]float32, m)
	var wg sync.WaitGroup
	for i, w := range s.Workers {
		wg.Add(1)
		go func(i int, w *slicedWorker) {
			defer wg.Done()
			partials[i] = w.attnForward(ctx, x, b, n)
		}(i, w)
	}
	wg.Wait()
	// First forward AllReduce: sum the partial projection outputs.
	RingAllReduce(partials)
	attnOut := tensor.Of(partials[0], b*n, s.dModel)

	// Replicated residual + LN.
	sum := tensor.New(b*n, s.dModel)
	kernels.Add(sum.Data(), attnOut.Data(), x.Data())
	s.attnSum = sum
	h := s.AttnLN.Forward(ctx, sum)

	// FC block: column-parallel FC-1 + GeLU, row-parallel FC-2 partials.
	for i, w := range s.Workers {
		wg.Add(1)
		go func(i int, w *slicedWorker) {
			defer wg.Done()
			partials[i] = w.ffForward(ctx, h)
		}(i, w)
	}
	wg.Wait()
	// Second forward AllReduce.
	RingAllReduce(partials)
	ffOut := tensor.Of(partials[0], b*n, s.dModel)

	sum2 := tensor.New(b*n, s.dModel)
	kernels.Add(sum2.Data(), ffOut.Data(), h.Data())
	s.ffSum = sum2
	return s.FFLN.Forward(ctx, sum2)
}

// Backward propagates dY through the sliced layer and returns dX. The two
// backward AllReduces combine the workers' partial input gradients.
func (s *SlicedLayer) Backward(ctx *nn.Ctx, dY *tensor.Tensor) *tensor.Tensor {
	m := len(s.Workers)
	var wg sync.WaitGroup

	// FF block backward.
	dSum2 := s.FFLN.Backward(ctx, dY)
	partials := make([][]float32, m)
	for i, w := range s.Workers {
		wg.Add(1)
		go func(i int, w *slicedWorker) {
			defer wg.Done()
			partials[i] = w.ffBackward(ctx, dSum2)
		}(i, w)
	}
	wg.Wait()
	// First backward AllReduce: sum partial dH contributions.
	RingAllReduce(partials)
	dH := tensor.Of(partials[0], s.b*s.n, s.dModel)
	// Skip connection adds the post-LN gradient directly.
	kernels.AccumulateInto(dH.Data(), dSum2.Data())

	// Attention block backward.
	dSum := s.AttnLN.Backward(ctx, dH)
	for i, w := range s.Workers {
		wg.Add(1)
		go func(i int, w *slicedWorker) {
			defer wg.Done()
			partials[i] = w.attnBackward(ctx, dSum)
		}(i, w)
	}
	wg.Wait()
	// Second backward AllReduce: sum partial dX contributions.
	RingAllReduce(partials)
	dX := tensor.Of(partials[0], s.b*s.n, s.dModel)
	kernels.AccumulateInto(dX.Data(), dSum.Data())
	return dX
}

// attnForward computes this worker's heads and returns its partial
// (pre-AllReduce) projection output as a flat buffer.
func (w *slicedWorker) attnForward(ctx *nn.Ctx, x *tensor.Tensor, b, n int) []float32 {
	q := w.wq.Forward(ctx, x)
	k := w.wk.Forward(ctx, x)
	v := w.wv.Forward(ctx, x)
	ctxSlice := w.attn.forward(q, k, v, b, n)
	out := w.wo.Forward(ctx, ctxSlice)
	return out.Data()
}

func (w *slicedWorker) attnBackward(ctx *nn.Ctx, dOut *tensor.Tensor) []float32 {
	dCtx := w.wo.Backward(ctx, dOut)
	dQ, dK, dV := w.attn.backward(dCtx)
	dX := w.wq.Backward(ctx, dQ)
	kernels.AccumulateInto(dX.Data(), w.wk.Backward(ctx, dK).Data())
	kernels.AccumulateInto(dX.Data(), w.wv.Backward(ctx, dV).Data())
	return dX.Data()
}

func (w *slicedWorker) ffForward(ctx *nn.Ctx, h *tensor.Tensor) []float32 {
	a := w.fc1.Forward(ctx, h)
	a = w.gelu.Forward(ctx, a)
	return w.fc2.Forward(ctx, a).Data()
}

func (w *slicedWorker) ffBackward(ctx *nn.Ctx, dOut *tensor.Tensor) []float32 {
	dA := w.fc2.Backward(ctx, dOut)
	dA = w.gelu.Backward(ctx, dA)
	return w.fc1.Backward(ctx, dA).Data()
}

// slicedAttention is the per-worker multi-head attention core over its
// head subset (no projections, no dropout).
type slicedAttention struct {
	heads, dHead int

	b, n       int
	qh, kh, vh *tensor.Tensor
	probs      *tensor.Tensor
}

func (a *slicedAttention) forward(q, k, v *tensor.Tensor, b, n int) *tensor.Tensor {
	a.b, a.n = b, n
	batch := b * a.heads
	dSlice := a.heads * a.dHead
	stQK, stS := n*a.dHead, n*n

	a.qh = tensor.New(batch, n, a.dHead)
	a.kh = tensor.New(batch, n, a.dHead)
	a.vh = tensor.New(batch, n, a.dHead)
	kernels.SplitHeads(a.qh.Data(), q.Data(), b, n, a.heads, a.dHead)
	kernels.SplitHeads(a.kh.Data(), k.Data(), b, n, a.heads, a.dHead)
	kernels.SplitHeads(a.vh.Data(), v.Data(), b, n, a.heads, a.dHead)

	scores := tensor.New(batch, n, n)
	kernels.BatchedGEMM(batch, false, true, n, n, a.dHead, 1,
		a.qh.Data(), stQK, a.kh.Data(), stQK, 0, scores.Data(), stS)

	a.probs = tensor.New(batch, n, n)
	scale := float32(1) / sqrt32(float32(a.dHead))
	kernels.ScaleMaskSoftmaxAttention(a.probs.Data(), scores.Data(), nil, scale, false, b, a.heads, n)

	ctxOut := tensor.New(batch, n, a.dHead)
	kernels.BatchedGEMM(batch, false, false, n, a.dHead, n, 1,
		a.probs.Data(), stS, a.vh.Data(), stQK, 0, ctxOut.Data(), stQK)

	merged := tensor.New(b*n, dSlice)
	kernels.MergeHeads(merged.Data(), ctxOut.Data(), b, n, a.heads, a.dHead)
	return merged
}

func (a *slicedAttention) backward(dMerged *tensor.Tensor) (dQ, dK, dV *tensor.Tensor) {
	b, n := a.b, a.n
	batch := b * a.heads
	dSlice := a.heads * a.dHead
	stQK, stS := n*a.dHead, n*n

	dCtx := tensor.New(batch, n, a.dHead)
	kernels.SplitHeads(dCtx.Data(), dMerged.Data(), b, n, a.heads, a.dHead)

	dProbs := tensor.New(batch, n, n)
	dVh := tensor.New(batch, n, a.dHead)
	kernels.BatchedGEMM(batch, false, true, n, n, a.dHead, 1,
		dCtx.Data(), stQK, a.vh.Data(), stQK, 0, dProbs.Data(), stS)
	kernels.BatchedGEMM(batch, true, false, n, a.dHead, n, 1,
		a.probs.Data(), stS, dCtx.Data(), stQK, 0, dVh.Data(), stQK)

	dScores := tensor.New(batch, n, n)
	kernels.SoftmaxGrad(dScores.Data(), dProbs.Data(), a.probs.Data(), batch*n, n)
	scale := float32(1) / sqrt32(float32(a.dHead))
	kernels.Scale(dScores.Data(), dScores.Data(), scale)

	dQh := tensor.New(batch, n, a.dHead)
	dKh := tensor.New(batch, n, a.dHead)
	kernels.BatchedGEMM(batch, false, false, n, a.dHead, n, 1,
		dScores.Data(), stS, a.kh.Data(), stQK, 0, dQh.Data(), stQK)
	kernels.BatchedGEMM(batch, true, false, n, a.dHead, n, 1,
		dScores.Data(), stS, a.qh.Data(), stQK, 0, dKh.Data(), stQK)

	dQ = tensor.New(b*n, dSlice)
	dK = tensor.New(b*n, dSlice)
	dV = tensor.New(b*n, dSlice)
	kernels.MergeHeads(dQ.Data(), dQh.Data(), b, n, a.heads, a.dHead)
	kernels.MergeHeads(dK.Data(), dKh.Data(), b, n, a.heads, a.dHead)
	kernels.MergeHeads(dV.Data(), dVh.Data(), b, n, a.heads, a.dHead)
	return dQ, dK, dV
}

func sqrt32(x float32) float32 {
	return float32(math.Sqrt(float64(x)))
}
