// Package ddp executes data-parallel BERT training for real, at engine
// scale: D model replicas train concurrently in goroutines and average
// their gradients through an actual ring AllReduce — the reduce-scatter /
// all-gather algorithm of the paper's reference [28] — running over
// in-memory links. It is the executable counterpart of the analytical
// data-parallel model in internal/dist, and demonstrates the paper's
// Section 5 semantics: every device computes the full model, gradients
// are averaged once per iteration, and all replicas remain bit-identical.
//
// The multi-process counterpart — the same ring moving chunks over TCP
// sockets between worker processes — lives in internal/distnet.
package ddp

import "fmt"

// Ring is a reusable D-participant ring AllReduce engine. It owns one
// persistent worker goroutine and one preallocated send scratch per rank,
// so a steady-state AllReduce call performs zero heap allocations — the
// per-step chunk copies the one-shot implementation used to make are
// replaced by scratch buffers recycled through per-rank ack channels.
//
// A Ring is built for a fixed participant count and buffer length;
// AllReduce may be called repeatedly (it is how the Trainer averages
// gradients every step). Close releases the workers.
type Ring struct {
	d, n   int
	bounds []int // chunk c covers [bounds[c], bounds[c+1])

	// scratch[r] is rank r's send buffer: the chunk is copied in, the
	// slice is passed to the successor over links[r], and acks[r] signals
	// the successor consumed it so rank r may refill it next step.
	scratch [][]float32
	links   []chan []float32
	acks    []chan struct{}

	start []chan struct{}
	done  chan struct{}
	bufs  [][]float32
}

// NewRing builds a ring over d participants reducing buffers of n
// float32s each.
func NewRing(d, n int) *Ring {
	if d < 1 {
		panic(fmt.Sprintf("ddp: ring needs at least one rank, got %d", d))
	}
	if n < 0 {
		panic(fmt.Sprintf("ddp: negative buffer length %d", n))
	}
	r := &Ring{
		d:       d,
		n:       n,
		bounds:  make([]int, d+1),
		scratch: make([][]float32, d),
		links:   make([]chan []float32, d),
		acks:    make([]chan struct{}, d),
		start:   make([]chan struct{}, d),
		done:    make(chan struct{}, d),
	}
	maxChunk := 0
	for c := 0; c <= d; c++ {
		r.bounds[c] = c * n / d
	}
	for c := 0; c < d; c++ {
		if l := r.bounds[c+1] - r.bounds[c]; l > maxChunk {
			maxChunk = l
		}
	}
	for rank := 0; rank < d; rank++ {
		r.scratch[rank] = make([]float32, maxChunk)
		r.links[rank] = make(chan []float32, 1)
		r.acks[rank] = make(chan struct{}, 1)
		r.start[rank] = make(chan struct{})
		go r.worker(rank)
	}
	return r
}

// AllReduce sums the participants' equal-length buffers element-wise and
// leaves the result in every buffer, using the bandwidth-optimal ring
// algorithm: D-1 reduce-scatter steps followed by D-1 all-gather steps,
// each moving one 1/D chunk per link.
//
// The reduction order of every chunk is fixed by the ring topology, so
// all participants end with bit-identical results regardless of
// scheduling. Zero allocations in steady state.
func (r *Ring) AllReduce(buffers [][]float32) {
	if len(buffers) != r.d {
		panic(fmt.Sprintf("ddp: %d buffers for a %d-rank ring", len(buffers), r.d))
	}
	for _, b := range buffers {
		if len(b) != r.n {
			panic(fmt.Sprintf("ddp: buffer length mismatch %d vs %d", len(b), r.n))
		}
	}
	if r.d == 1 || r.n == 0 {
		return
	}
	r.bufs = buffers
	for rank := 0; rank < r.d; rank++ {
		r.start[rank] <- struct{}{}
	}
	for i := 0; i < r.d; i++ {
		<-r.done
	}
	r.bufs = nil
}

// Close stops the ring's worker goroutines. The Ring must not be used
// after Close.
func (r *Ring) Close() {
	for rank := 0; rank < r.d; rank++ {
		close(r.start[rank])
	}
}

func (r *Ring) worker(rank int) {
	for range r.start[rank] {
		r.runRank(rank)
		r.done <- struct{}{}
	}
}

// chunk returns buffer view c (mod d) of buf.
func (r *Ring) chunk(buf []float32, c int) []float32 {
	c = ((c % r.d) + r.d) % r.d
	return buf[r.bounds[c]:r.bounds[c+1]]
}

// runRank executes one rank's share of an AllReduce. Each step copies
// the outgoing chunk into the rank's own scratch, hands the scratch to
// the successor, consumes the predecessor's scratch, acknowledges it,
// and waits for the successor's acknowledgement before the next refill —
// so a single scratch per rank is safe and no step allocates.
func (r *Ring) runRank(rank int) {
	d := r.d
	prev := (rank + d - 1) % d
	out, in := r.links[rank], r.links[prev]
	buf := r.bufs[rank]

	// Reduce-scatter: after step s, rank owns the partial sum of chunk
	// (rank - s); after d-1 steps, chunk (rank + 1) is fully reduced at
	// this rank.
	for s := 0; s < d-1; s++ {
		send := r.chunk(buf, rank-s)
		sc := r.scratch[rank][:len(send)]
		copy(sc, send)
		out <- sc
		recv := <-in
		dst := r.chunk(buf, rank-s-1)
		for i := range dst {
			dst[i] += recv[i]
		}
		r.acks[prev] <- struct{}{}
		<-r.acks[rank]
	}
	// All-gather: circulate the reduced chunks.
	for s := 0; s < d-1; s++ {
		send := r.chunk(buf, rank+1-s)
		sc := r.scratch[rank][:len(send)]
		copy(sc, send)
		out <- sc
		recv := <-in
		copy(r.chunk(buf, rank-s), recv)
		r.acks[prev] <- struct{}{}
		<-r.acks[rank]
	}
}

// RingAllReduce sums the equal-length buffers of all participants
// element-wise and leaves the result in every buffer. One-shot
// convenience over Ring; callers reducing repeatedly (trainers) should
// hold a Ring to reach the zero-alloc steady state.
func RingAllReduce(buffers [][]float32) {
	d := len(buffers)
	if d == 0 {
		return
	}
	n := len(buffers[0])
	for _, b := range buffers[1:] {
		if len(b) != n {
			panic(fmt.Sprintf("ddp: buffer length mismatch %d vs %d", len(b), n))
		}
	}
	if d == 1 || n == 0 {
		return
	}
	r := NewRing(d, n)
	r.AllReduce(buffers)
	r.Close()
}

// BytesMoved returns the total bytes each participant transmits during a
// ring AllReduce of n float32 elements across d ranks: the 2·(d-1)/d·n
// volume the analytical model (internal/dist) charges.
func BytesMoved(n, d int) int64 {
	if d <= 1 {
		return 0
	}
	perStep := int64(n) * 4 / int64(d)
	return 2 * int64(d-1) * perStep
}
