// Package ddp executes data-parallel BERT training for real, at engine
// scale: D model replicas train concurrently in goroutines and average
// their gradients through an actual ring AllReduce — the reduce-scatter /
// all-gather algorithm of the paper's reference [28] — running over
// in-memory links. It is the executable counterpart of the analytical
// data-parallel model in internal/dist, and demonstrates the paper's
// Section 5 semantics: every device computes the full model, gradients
// are averaged once per iteration, and all replicas remain bit-identical.
package ddp

import (
	"fmt"
	"sync"
)

// RingAllReduce sums the equal-length buffers of all participants element-
// wise and leaves the result in every buffer, using the bandwidth-optimal
// ring algorithm: D-1 reduce-scatter steps followed by D-1 all-gather
// steps, each moving one 1/D chunk per link.
//
// The reduction order of every chunk is fixed by the ring topology, so
// all participants end with bit-identical results regardless of
// scheduling.
func RingAllReduce(buffers [][]float32) {
	d := len(buffers)
	if d == 0 {
		return
	}
	n := len(buffers[0])
	for _, b := range buffers[1:] {
		if len(b) != n {
			panic(fmt.Sprintf("ddp: buffer length mismatch %d vs %d", len(b), n))
		}
	}
	if d == 1 || n == 0 {
		return
	}

	// Chunk boundaries: chunk c covers [bounds[c], bounds[c+1]).
	bounds := make([]int, d+1)
	for c := 0; c <= d; c++ {
		bounds[c] = c * n / d
	}
	chunk := func(buf []float32, c int) []float32 {
		c = ((c % d) + d) % d
		return buf[bounds[c]:bounds[c+1]]
	}

	// Links: rank r sends to rank (r+1) mod d. A one-slot channel per
	// link carries one chunk per step.
	links := make([]chan []float32, d)
	for i := range links {
		links[i] = make(chan []float32, 1)
	}

	var wg sync.WaitGroup
	for rank := 0; rank < d; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			out := links[rank]        // to (rank+1) mod d
			in := links[(rank+d-1)%d] // from (rank-1) mod d
			buf := buffers[rank]

			// Reduce-scatter: after step s, rank owns the partial sum of
			// chunk (rank - s); after d-1 steps, chunk (rank + 1) is fully
			// reduced at this rank.
			for s := 0; s < d-1; s++ {
				send := chunk(buf, rank-s)
				outCopy := make([]float32, len(send))
				copy(outCopy, send)
				out <- outCopy
				recv := <-in
				dst := chunk(buf, rank-s-1)
				for i := range dst {
					dst[i] += recv[i]
				}
			}
			// All-gather: circulate the reduced chunks.
			for s := 0; s < d-1; s++ {
				send := chunk(buf, rank+1-s)
				outCopy := make([]float32, len(send))
				copy(outCopy, send)
				out <- outCopy
				recv := <-in
				dst := chunk(buf, rank-s)
				copy(dst, recv)
			}
		}(rank)
	}
	wg.Wait()
}

// BytesMoved returns the total bytes each participant transmits during a
// ring AllReduce of n float32 elements across d ranks: the 2·(d-1)/d·n
// volume the analytical model (internal/dist) charges.
func BytesMoved(n, d int) int64 {
	if d <= 1 {
		return 0
	}
	perStep := int64(n) * 4 / int64(d)
	return 2 * int64(d-1) * perStep
}
