package ddp

import (
	"math"
	"testing"

	"demystbert/internal/nn"
	"demystbert/internal/tensor"
)

func maxDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(float64(a[i] - b[i])); d > m {
			m = d
		}
	}
	return m
}

// buildRefAndSliced creates a dropout-free reference encoder layer and
// its m-way sliced counterpart sharing the same weights.
func buildRefAndSliced(t *testing.T, m int) (*nn.EncoderLayer, *SlicedLayer) {
	t.Helper()
	r := tensor.NewRNG(1)
	ref := nn.NewEncoderLayer("ref", 16, 4, 32, 0, r)
	s, err := NewSlicedLayer(ref, m)
	if err != nil {
		t.Fatal(err)
	}
	return ref, s
}

func evalCtx() *nn.Ctx {
	return &nn.Ctx{RNG: tensor.NewRNG(9), Train: true}
}

func TestSlicedLayerForwardMatchesReference(t *testing.T) {
	for _, m := range []int{1, 2, 4} {
		ref, s := buildRefAndSliced(t, m)
		r := tensor.NewRNG(2)
		b, n := 2, 5
		x := tensor.New(b*n, 16)
		x.FillUniform(r, -1, 1)

		want := ref.Forward(evalCtx(), x, b, n, nil)
		got := s.Forward(evalCtx(), x, b, n)
		if d := maxDiff(want.Data(), got.Data()); d > 1e-4 {
			t.Fatalf("m=%d: sliced forward differs from reference by %v", m, d)
		}
	}
}

func TestSlicedLayerBackwardMatchesReference(t *testing.T) {
	ref, s := buildRefAndSliced(t, 2)
	r := tensor.NewRNG(3)
	b, n := 2, 4
	x := tensor.New(b*n, 16)
	x.FillUniform(r, -1, 1)
	dY := tensor.New(b*n, 16)
	dY.FillUniform(r, -1, 1)

	refCtx, sCtx := evalCtx(), evalCtx()
	ref.Forward(refCtx, x, b, n, nil)
	s.Forward(sCtx, x, b, n)
	wantDX := ref.Backward(refCtx, dY)
	gotDX := s.Backward(sCtx, dY)

	if d := maxDiff(wantDX.Data(), gotDX.Data()); d > 1e-4 {
		t.Fatalf("sliced dX differs from reference by %v", d)
	}
}

func TestSlicedLayerWeightGradientsMatchSlices(t *testing.T) {
	// Each worker's weight gradients must equal the corresponding slice
	// of the unsliced layer's gradients — the property that lets each
	// device update only its parameter shard (Takeaway 12).
	ref, s := buildRefAndSliced(t, 2)
	r := tensor.NewRNG(4)
	b, n := 2, 4
	x := tensor.New(b*n, 16)
	x.FillUniform(r, -1, 1)
	dY := tensor.New(b*n, 16)
	dY.FillUniform(r, -1, 1)

	refCtx, sCtx := evalCtx(), evalCtx()
	ref.Forward(refCtx, x, b, n, nil)
	ref.Backward(refCtx, dY)
	s.Forward(sCtx, x, b, n)
	s.Backward(sCtx, dY)

	dm := 16 / 2
	for w, worker := range s.Workers {
		// Column-parallel Q: worker w's grad rows == ref grad rows slice.
		for rIdx := 0; rIdx < dm; rIdx++ {
			want := ref.Attn.Wq.W.Grad.Row(w*dm + rIdx)
			got := worker.wq.W.Grad.Row(rIdx)
			if d := maxDiff(want, got); d > 1e-4 {
				t.Fatalf("worker %d Wq grad row %d differs by %v", w, rIdx, d)
			}
		}
		// Row-parallel output projection: worker w's grad columns.
		for rIdx := 0; rIdx < 16; rIdx++ {
			want := ref.Attn.Wo.W.Grad.Row(rIdx)[w*dm : (w+1)*dm]
			got := worker.wo.W.Grad.Row(rIdx)
			if d := maxDiff(want, got); d > 1e-4 {
				t.Fatalf("worker %d Wo grad row %d differs by %v", w, rIdx, d)
			}
		}
		// FC-1 column-parallel slice.
		ffm := 32 / 2
		for rIdx := 0; rIdx < ffm; rIdx++ {
			want := ref.FF.FC1.W.Grad.Row(w*ffm + rIdx)
			got := worker.fc1.W.Grad.Row(rIdx)
			if d := maxDiff(want, got); d > 1e-4 {
				t.Fatalf("worker %d FC1 grad row %d differs by %v", w, rIdx, d)
			}
		}
	}
	// Replicated LayerNorm gradients match the reference exactly.
	if d := maxDiff(ref.FFLN.Gamma.Grad.Data(), s.FFLN.Gamma.Grad.Data()); d > 1e-4 {
		t.Fatalf("replicated LN gamma grad differs by %v", d)
	}
}

func TestSlicedLayerBiasCountedOnce(t *testing.T) {
	// Row-parallel shards add partial sums; a replicated bias would be
	// double-counted. Only worker 0 carries it.
	_, s := buildRefAndSliced(t, 2)
	for i, w := range s.Workers {
		zero := true
		for _, v := range w.wo.B.Value.Data() {
			if v != 0 {
				zero = false
			}
		}
		if i == 0 && zero {
			// Reference bias could legitimately be ~0 only if never
			// initialized; NewLinear leaves biases at zero, so both
			// workers are zero here — the structural check is that
			// worker 1 is forced to zero.
			continue
		}
		if i > 0 && !zero {
			t.Fatalf("worker %d carries a bias; partial sums would double-count it", i)
		}
	}
}

func TestSlicedLayerRejectsBadSplit(t *testing.T) {
	r := tensor.NewRNG(5)
	ref := nn.NewEncoderLayer("ref", 16, 4, 32, 0, r)
	if _, err := NewSlicedLayer(ref, 3); err == nil {
		t.Fatal("3-way split of 4 heads must error")
	}
}
