package ddp

import (
	"fmt"
	"sync"
	"time"

	"demystbert/internal/data"
	"demystbert/internal/model"
	"demystbert/internal/nn"
	"demystbert/internal/obs"
	"demystbert/internal/optim"
	"demystbert/internal/profile"
	"demystbert/internal/tensor"
)

// Trainer-loop telemetry: step latency distribution and cumulative
// gradient-synchronization traffic, served at /metrics alongside the
// kernel-layer counters.
var (
	stepsTotal = obs.NewCounter("ddp_steps_total",
		"data-parallel training steps completed")
	allreduceBytes = obs.NewCounter("ddp_allreduce_bytes_total",
		"bytes transmitted per replica for gradient all-reduce")
	stepSeconds = obs.NewHistogram("ddp_step_wall_seconds",
		"wall-clock time of one data-parallel training step",
		obs.ExpBuckets(1e-4, 4, 12)) // 100 µs .. ~400 s
)

// Trainer trains D identically-initialized BERT replicas data-parallel:
// each step runs the replicas' forward/backward concurrently on their own
// batch shards, ring-allreduces and averages the gradients, and applies
// identical LAMB updates — so the replicas stay bit-identical, the
// invariant real DP training maintains (Section 2.5).
type Trainer struct {
	Replicas []*model.BERT
	ctxs     []*nn.Ctx
	opts     []*optim.LAMB

	flat [][]float32 // reusable flattened-gradient buffers
	ring *Ring       // persistent zero-alloc AllReduce engine
}

// NewTrainer builds a D-replica trainer with deterministic identical
// initialization.
func NewTrainer(cfg model.Config, d int, seed uint64) (*Trainer, error) {
	if d < 1 {
		return nil, fmt.Errorf("ddp: need at least one replica, got %d", d)
	}
	t := &Trainer{}
	for i := 0; i < d; i++ {
		m, err := model.New(cfg, seed) // same seed: identical weights
		if err != nil {
			return nil, err
		}
		t.Replicas = append(t.Replicas, m)
		// Distinct dropout streams per replica, as real DP training has.
		t.ctxs = append(t.ctxs, &nn.Ctx{
			Prof:  profile.New(),
			RNG:   tensor.NewRNG(seed + uint64(i)*7919),
			Train: true,
		})
		t.opts = append(t.opts, optim.NewLAMB(0.01))
		t.flat = append(t.flat, make([]float32, gradLen(m)))
	}
	t.ring = NewRing(d, len(t.flat[0]))
	return t, nil
}

// Close releases the trainer's AllReduce workers.
func (t *Trainer) Close() {
	if t.ring != nil {
		t.ring.Close()
		t.ring = nil
	}
}

// Devices returns the replica count.
func (t *Trainer) Devices() int { return len(t.Replicas) }

func gradLen(m *model.BERT) int {
	n := 0
	for _, p := range m.Params() {
		n += p.Size()
	}
	return n
}

// Step trains one iteration: batches[i] goes to replica i. It returns the
// per-replica losses. The effective mini-batch is the union of the
// shards, exactly as data-parallel training defines it (D·B).
func (t *Trainer) Step(batches []*data.Batch) ([]float64, error) {
	d := t.Devices()
	if len(batches) != d {
		return nil, fmt.Errorf("ddp: %d batches for %d replicas", len(batches), d)
	}
	stepStart := time.Now()

	// Local forward/backward in parallel.
	losses := make([]float64, d)
	var wg sync.WaitGroup
	for i := 0; i < d; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			losses[i] = t.Replicas[i].Step(t.ctxs[i], batches[i])
		}(i)
	}
	wg.Wait()

	// Gather gradients into flat buffers, AllReduce, average, scatter
	// back.
	for i, m := range t.Replicas {
		off := 0
		for _, p := range m.Params() {
			off += copy(t.flat[i][off:], p.Grad.Data())
		}
	}
	t.ring.AllReduce(t.flat)
	inv := float32(1) / float32(d)
	for i, m := range t.Replicas {
		off := 0
		for _, p := range m.Params() {
			g := p.Grad.Data()
			src := t.flat[i][off : off+len(g)]
			for j := range g {
				g[j] = src[j] * inv
			}
			off += len(g)
		}
	}

	// Identical optimizer steps on identical gradients keep replicas in
	// sync; run them in parallel like real devices would.
	for i := 0; i < d; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t.opts[i].Step(t.ctxs[i], t.Replicas[i].Params())
			t.Replicas[i].ZeroGrads()
		}(i)
	}
	wg.Wait()

	stepsTotal.Inc()
	allreduceBytes.Add(t.CommBytesPerStep())
	stepSeconds.Observe(time.Since(stepStart).Seconds())
	return losses, nil
}

// InSync reports whether every replica's parameters are bit-identical to
// replica 0's, and the first divergent parameter name if not.
func (t *Trainer) InSync() (bool, string) {
	ref := t.Replicas[0].Params()
	for r := 1; r < len(t.Replicas); r++ {
		ps := t.Replicas[r].Params()
		for i, p := range ps {
			a, b := ref[i].Value.Data(), p.Value.Data()
			for j := range a {
				if a[j] != b[j] {
					return false, fmt.Sprintf("replica %d, %s[%d]", r, p.Name, j)
				}
			}
		}
	}
	return true, ""
}

// CommBytesPerStep returns the bytes each replica transmits per iteration
// for gradient synchronization.
func (t *Trainer) CommBytesPerStep() int64 {
	return BytesMoved(len(t.flat[0]), t.Devices())
}
