package ddp

import (
	"math"
	"testing"
	"testing/quick"

	"demystbert/internal/data"
	"demystbert/internal/model"
	"demystbert/internal/tensor"
)

func TestRingAllReduceSumsCorrectly(t *testing.T) {
	r := tensor.NewRNG(1)
	for _, d := range []int{2, 3, 4, 8} {
		for _, n := range []int{1, 7, 64, 1000} {
			buffers := make([][]float32, d)
			want := make([]float64, n)
			for i := range buffers {
				buffers[i] = make([]float32, n)
				for j := range buffers[i] {
					v := r.Float32() - 0.5
					buffers[i][j] = v
					want[j] += float64(v)
				}
			}
			RingAllReduce(buffers)
			for i := range buffers {
				for j := range buffers[i] {
					if math.Abs(float64(buffers[i][j])-want[j]) > 1e-4 {
						t.Fatalf("d=%d n=%d rank %d elem %d: got %v want %v",
							d, n, i, j, buffers[i][j], want[j])
					}
				}
			}
		}
	}
}

func TestRingAllReduceBitIdenticalAcrossRanks(t *testing.T) {
	r := tensor.NewRNG(2)
	const d, n = 5, 333
	buffers := make([][]float32, d)
	for i := range buffers {
		buffers[i] = make([]float32, n)
		for j := range buffers[i] {
			buffers[i][j] = r.Float32()
		}
	}
	RingAllReduce(buffers)
	for i := 1; i < d; i++ {
		for j := 0; j < n; j++ {
			if buffers[i][j] != buffers[0][j] {
				t.Fatalf("rank %d diverges from rank 0 at %d", i, j)
			}
		}
	}
}

func TestRingAllReduceEdgeCases(t *testing.T) {
	// Single participant: identity.
	one := [][]float32{{1, 2, 3}}
	RingAllReduce(one)
	if one[0][0] != 1 || one[0][2] != 3 {
		t.Fatal("single-rank allreduce must be identity")
	}
	// Empty buffers.
	RingAllReduce([][]float32{{}, {}})
	RingAllReduce(nil)
	// More ranks than elements (some chunks empty).
	small := [][]float32{{1}, {2}, {3}, {4}}
	RingAllReduce(small)
	for i := range small {
		if small[i][0] != 10 {
			t.Fatalf("rank %d got %v, want 10", i, small[i][0])
		}
	}
}

func TestRingAllReduceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	RingAllReduce([][]float32{make([]float32, 4), make([]float32, 5)})
}

// Property: allreduce of constant buffers yields d·c everywhere.
func TestRingAllReduceConstantProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		d := 2 + r.Intn(6)
		n := 1 + r.Intn(50)
		c := r.Float32()
		buffers := make([][]float32, d)
		for i := range buffers {
			buffers[i] = make([]float32, n)
			for j := range buffers[i] {
				buffers[i][j] = c
			}
		}
		RingAllReduce(buffers)
		want := float64(d) * float64(c)
		for i := range buffers {
			for j := range buffers[i] {
				if math.Abs(float64(buffers[i][j])-want) > 1e-4*math.Max(1, math.Abs(want)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// A reused Ring must be bit-identical to the one-shot path and reusable
// across calls.
func TestRingReuseMatchesOneShot(t *testing.T) {
	r := tensor.NewRNG(3)
	const d, n = 4, 517
	ring := NewRing(d, n)
	defer ring.Close()
	for trial := 0; trial < 3; trial++ {
		a := make([][]float32, d)
		b := make([][]float32, d)
		for i := range a {
			a[i] = make([]float32, n)
			b[i] = make([]float32, n)
			for j := range a[i] {
				v := r.Float32() - 0.5
				a[i][j] = v
				b[i][j] = v
			}
		}
		ring.AllReduce(a)
		RingAllReduce(b)
		for i := range a {
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					t.Fatalf("trial %d rank %d elem %d: ring %v vs one-shot %v",
						trial, i, j, a[i][j], b[i][j])
				}
			}
		}
	}
}

func TestRingSizeMismatchPanics(t *testing.T) {
	ring := NewRing(2, 8)
	defer ring.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("wrong buffer length must panic")
		}
	}()
	ring.AllReduce([][]float32{make([]float32, 8), make([]float32, 9)})
}

// Steady-state AllReduce on a held Ring must not allocate: the per-step
// chunk copies of the old implementation are the regression this guards
// against (the guard runs in check.sh next to the kernel alloc guards).
func TestRingAllReduceZeroAllocSteadyState(t *testing.T) {
	const d, n = 4, 4096
	ring := NewRing(d, n)
	defer ring.Close()
	bufs := make([][]float32, d)
	for i := range bufs {
		bufs[i] = make([]float32, n)
		for j := range bufs[i] {
			bufs[i][j] = float32(i + j)
		}
	}
	ring.AllReduce(bufs) // warm up
	if avg := testing.AllocsPerRun(50, func() { ring.AllReduce(bufs) }); avg != 0 {
		t.Fatalf("Ring.AllReduce allocates %v objects/op in steady state, want 0", avg)
	}
}

func TestBytesMoved(t *testing.T) {
	if BytesMoved(1000, 1) != 0 {
		t.Fatal("single rank moves nothing")
	}
	// 2·(d-1)/d·n·4 bytes.
	if got := BytesMoved(1000, 4); got != 2*3*1000 {
		t.Fatalf("BytesMoved = %d", got)
	}
}

func TestTrainerReplicasStayInSync(t *testing.T) {
	cfg := model.Tiny()
	tr, err := NewTrainer(cfg, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ok, where := tr.InSync(); !ok {
		t.Fatalf("replicas differ at init: %s", where)
	}
	gen := data.NewGenerator(cfg.Vocab, 0.15, 8)
	for step := 0; step < 3; step++ {
		batches := []*data.Batch{gen.Next(2, 16), gen.Next(2, 16), gen.Next(2, 16)}
		losses, err := tr.Step(batches)
		if err != nil {
			t.Fatal(err)
		}
		if len(losses) != 3 {
			t.Fatalf("got %d losses", len(losses))
		}
		if ok, where := tr.InSync(); !ok {
			t.Fatalf("replicas diverged after step %d at %s", step, where)
		}
	}
}

func TestTrainerGradientAveraging(t *testing.T) {
	// DP training on D replicas with the SAME batch must produce exactly
	// the gradients (and update) of single-replica training on that
	// batch: averaging D identical gradients is the identity.
	cfg := model.Tiny()
	cfg.DropProb = 0
	gen := data.NewGenerator(cfg.Vocab, 0.15, 9)
	b := gen.Next(2, 16)

	single, err := NewTrainer(cfg, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := NewTrainer(cfg, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := single.Step([]*data.Batch{b}); err != nil {
		t.Fatal(err)
	}
	if _, err := dp.Step([]*data.Batch{b, b, b}); err != nil {
		t.Fatal(err)
	}

	sp := single.Replicas[0].Params()
	pp := dp.Replicas[0].Params()
	for i := range sp {
		a, c := sp[i].Value.Data(), pp[i].Value.Data()
		for j := range a {
			if math.Abs(float64(a[j]-c[j])) > 1e-5*math.Max(1, math.Abs(float64(a[j]))) {
				t.Fatalf("param %s[%d]: single %v vs DP %v", sp[i].Name, j, a[j], c[j])
			}
		}
	}
}

func TestTrainerLossDecreases(t *testing.T) {
	cfg := model.Tiny()
	cfg.DropProb = 0
	tr, err := NewTrainer(cfg, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	gen := data.NewGenerator(cfg.Vocab, 0.15, 12)
	b0, b1 := gen.Next(2, 16), gen.Next(2, 16)
	var first, last float64
	for i := 0; i < 6; i++ {
		losses, err := tr.Step([]*data.Batch{b0, b1})
		if err != nil {
			t.Fatal(err)
		}
		mean := (losses[0] + losses[1]) / 2
		if i == 0 {
			first = mean
		}
		last = mean
	}
	if last >= first {
		t.Fatalf("DP training loss did not fall: %v -> %v", first, last)
	}
}

func TestTrainerValidation(t *testing.T) {
	if _, err := NewTrainer(model.Tiny(), 0, 1); err == nil {
		t.Fatal("zero replicas must error")
	}
	if _, err := NewTrainer(model.Config{}, 2, 1); err == nil {
		t.Fatal("invalid config must error")
	}
	tr, _ := NewTrainer(model.Tiny(), 2, 1)
	if _, err := tr.Step(nil); err == nil {
		t.Fatal("wrong batch count must error")
	}
}

func TestTrainerCommBytes(t *testing.T) {
	tr, _ := NewTrainer(model.Tiny(), 4, 1)
	want := BytesMoved(gradLen(tr.Replicas[0]), 4)
	if got := tr.CommBytesPerStep(); got != want {
		t.Fatalf("CommBytesPerStep = %d, want %d", got, want)
	}
}
