// Package trace is the request- and step-scoped tracing layer of the
// engine: spans with explicit trace/span/parent identity that flow
// through the serving scheduler (one trace per HTTP request), the
// multi-process trainer (one trace per training step, shared by every
// rank), and the model's forward/backward plumbing. It composes with
// internal/profile — spans and kernel events share the wall-clock
// timeline, so a merged Perfetto export nests kernels under the batch or
// step span they ran in — and feeds internal/obs (histogram exemplars
// record the trace ID of their worst recent observation).
//
// Hot-path contract, same discipline as profile's nil-Profiler path: a
// nil *Tracer records nothing and allocates nothing, and a non-nil
// tracer with an unsampled span context (zero SpanContext) is equally
// free. Head-based sampling is decided once per trace at NewTrace; every
// downstream span inherits the decision through the SpanContext it
// nests under.
package trace

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one request or one distributed training step across
// every process it touches. Zero means "no trace".
type TraceID uint64

// String renders the canonical 16-hex-digit form used in the X-Trace-Id
// header and /debug/requests.
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// ParseTraceID inverts String. It rejects anything that is not exactly
// 16 hex digits, so arbitrary client headers cannot smuggle junk ids.
func ParseTraceID(s string) (TraceID, bool) {
	if len(s) != 16 {
		return 0, false
	}
	var v uint64
	for i := 0; i < 16; i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint64(c-'a'+10)
		case c >= 'A' && c <= 'F':
			v = v<<4 | uint64(c-'A'+10)
		default:
			return 0, false
		}
	}
	if v == 0 {
		return 0, false
	}
	return TraceID(v), true
}

// SpanID identifies one span within a trace. Zero means "no parent".
type SpanID uint64

// SpanContext is the ambient identity a span is created under: which
// trace it belongs to and which span it nests inside. The zero value
// means "not sampled" — StartSpan under it records nothing.
type SpanContext struct {
	Trace  TraceID
	Parent SpanID
}

// Sampled reports whether spans created under this context record.
func (sc SpanContext) Sampled() bool { return sc.Trace != 0 }

// Span is one completed, recorded span. Start is the recording rank's
// local clock; Merge aligns shards onto rank 0's clock before export.
type Span struct {
	Trace  TraceID       `json:"trace"`
	ID     SpanID        `json:"id"`
	Parent SpanID        `json:"parent,omitempty"`
	Name   string        `json:"name"`
	Rank   int           `json:"rank"`
	Step   int           `json:"step,omitempty"` // training step or serving batch seq; 0 = none
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur"`
}

// End returns the span's end time.
func (s Span) End() time.Time { return s.Start.Add(s.Dur) }

// Tracer collects spans into a bounded ring (oldest spans are
// overwritten, so a long-lived server cannot grow without bound) and
// hands out trace/span ids. All methods are safe on a nil receiver and
// for concurrent use.
type Tracer struct {
	rank    int
	ringCap int

	idCtr    atomic.Uint64 // span ids and the trace-id stream
	traceCtr atomic.Uint64 // head-based sampling counter
	sampleN  atomic.Int64  // keep 1 in N traces; 1 = all, 0/neg = none
	dropped  atomic.Int64

	mu    sync.Mutex
	ring  []Span
	next  int
	wrap  bool
	seed  uint64
	steps atomic.Int64 // optional step stamp for spans recorded without one
}

// DefaultRingCap bounds a tracer's retained spans when Config leaves it
// zero. At ~100 spans per request this holds the last ~650 requests.
const DefaultRingCap = 1 << 16

// New returns a tracer for the given rank that samples every trace.
// capacity <= 0 uses DefaultRingCap.
func New(rank, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultRingCap
	}
	t := &Tracer{
		rank:    rank,
		ringCap: capacity,
		ring:    make([]Span, 0, capacity),
		seed:    uint64(time.Now().UnixNano()) | 1,
	}
	t.sampleN.Store(1)
	return t
}

// SetSampleEvery keeps 1 in n traces (head-based). n = 1 samples
// everything; n <= 0 disables span recording while trace-id generation
// keeps working (X-Trace-Id stays on). Safe on nil.
func (t *Tracer) SetSampleEvery(n int) {
	if t == nil {
		return
	}
	t.sampleN.Store(int64(n))
}

// Rank returns the rank this tracer stamps on its spans (0 when nil).
func (t *Tracer) Rank() int {
	if t == nil {
		return 0
	}
	return t.rank
}

// splitmix64 is the id mixer: unique inputs give well-distributed,
// never-zero-in-practice outputs with no shared state beyond one atomic.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewTrace mints a fresh trace id and applies the head-based sampling
// decision: the returned SpanContext is live when this trace should
// record spans and zero otherwise. The id is always valid — callers
// surface it (response headers, request logs) whether or not the trace
// records. Safe on nil (id still minted from a process-local counter).
func (t *Tracer) NewTrace() (TraceID, SpanContext) {
	if t == nil {
		id := TraceID(splitmix64(fallbackIDCtr.Add(1)))
		if id == 0 {
			id = 1
		}
		return id, SpanContext{}
	}
	id := TraceID(splitmix64(t.seed + t.idCtr.Add(1)))
	if id == 0 {
		id = 1
	}
	n := t.sampleN.Load()
	if n <= 0 {
		return id, SpanContext{}
	}
	if t.traceCtr.Add(1)%uint64(n) != 0 {
		return id, SpanContext{}
	}
	return id, SpanContext{Trace: id}
}

var fallbackIDCtr atomic.Uint64

// NewSpanID mints a span id without opening a span — for callers that
// record spans with explicit timestamps (Record) and need the parent id
// before the children exist. Safe on nil (returns 0).
func (t *Tracer) NewSpanID() SpanID {
	if t == nil {
		return 0
	}
	return SpanID(splitmix64(t.seed ^ t.idCtr.Add(1)))
}

// FixedTrace returns a deterministic sampled context for the given
// trace id — the cross-rank form: every rank of a distributed step
// derives the same id from the step index, so the merged timeline
// correlates their spans without any id exchange.
func (t *Tracer) FixedTrace(id TraceID) SpanContext {
	if t == nil || id == 0 {
		return SpanContext{}
	}
	return SpanContext{Trace: id}
}

// StepTraceID is the deterministic per-training-step trace id every
// rank computes locally.
func StepTraceID(step int) TraceID {
	id := TraceID(splitmix64(0x5354455000000000 + uint64(step)))
	if id == 0 {
		id = 1
	}
	return id
}

// SetStep stamps subsequently recorded spans that carry no explicit step
// with this value. Safe on nil.
func (t *Tracer) SetStep(step int) {
	if t == nil {
		return
	}
	t.steps.Store(int64(step))
}

// ActiveSpan is an in-flight span handle. The zero value (nil tracer or
// unsampled context) is valid and free: End is a no-op.
type ActiveSpan struct {
	t      *Tracer
	trace  TraceID
	id     SpanID
	parent SpanID
	name   string
	step   int
	start  time.Time
}

// StartSpan opens a span under sc. When the tracer is nil or sc is
// unsampled it returns the zero handle without reading the clock —
// the zero-alloc, zero-syscall off path.
func (t *Tracer) StartSpan(sc SpanContext, name string) ActiveSpan {
	if t == nil || sc.Trace == 0 {
		return ActiveSpan{}
	}
	return ActiveSpan{
		t:      t,
		trace:  sc.Trace,
		id:     SpanID(splitmix64(t.seed ^ t.idCtr.Add(1))),
		parent: sc.Parent,
		name:   name,
		start:  time.Now(),
	}
}

// Recording reports whether End will record anything.
func (a ActiveSpan) Recording() bool { return a.t != nil }

// Context returns the context child spans should be created under.
func (a ActiveSpan) Context() SpanContext {
	if a.t == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: a.trace, Parent: a.id}
}

// WithStep stamps the span with a step/batch index.
func (a ActiveSpan) WithStep(step int) ActiveSpan {
	a.step = step
	return a
}

// End closes and records the span. No-op on the zero handle.
func (a ActiveSpan) End() {
	if a.t == nil {
		return
	}
	a.t.record(Span{
		Trace:  a.trace,
		ID:     a.id,
		Parent: a.parent,
		Name:   a.name,
		Step:   a.step,
		Start:  a.start,
		Dur:    time.Since(a.start),
	})
}

// EndWithParent closes the span under an explicit parent (used when the
// parent was not known at start — e.g. a batch span adopted by the
// requests that rode in it).
func (a ActiveSpan) EndWithParent(parent SpanID) {
	if a.t == nil {
		return
	}
	a.t.record(Span{
		Trace:  a.trace,
		ID:     a.id,
		Parent: parent,
		Name:   a.name,
		Step:   a.step,
		Start:  a.start,
		Dur:    time.Since(a.start),
	})
}

// Record appends a fully specified span (explicit start/duration — the
// scheduler path, which derives stage spans from timestamps it already
// took). Zero Trace ids are dropped; safe on nil.
func (t *Tracer) Record(s Span) {
	if t == nil || s.Trace == 0 {
		return
	}
	if s.ID == 0 {
		s.ID = SpanID(splitmix64(t.seed ^ t.idCtr.Add(1)))
	}
	t.record(s)
}

func (t *Tracer) record(s Span) {
	s.Rank = t.rank
	if s.Step == 0 {
		s.Step = int(t.steps.Load())
	}
	t.mu.Lock()
	if len(t.ring) < t.ringCap {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.next] = s
		t.wrap = true
		t.dropped.Add(1)
	}
	t.next = (t.next + 1) % t.ringCap
	t.mu.Unlock()
}

// Dropped returns how many spans were overwritten by ring wrap-around.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Spans returns a copy of the retained spans sorted by start time.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Span(nil), t.ring...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Len returns the number of retained spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Reset discards every retained span.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring = t.ring[:0]
	t.next = 0
	t.wrap = false
	t.mu.Unlock()
}
