package trace

import (
	"sort"
	"time"
)

// Cross-rank clock alignment. Worker processes stamp spans with their
// own wall clocks; merging shards into one timeline needs each rank's
// offset from rank 0. The estimate is the classic NTP exchange: the
// worker records t1, asks rank 0 for its clock, receives t2 (rank 0's
// clock) at local time t3, and assumes the reply observed t2 at the
// midpoint (t1+t3)/2. The sample with the smallest round trip carries
// the least queuing noise, so EstimateOffset picks it rather than
// averaging — one clean exchange beats ten congested ones.

// OffsetSample is one ping-pong clock measurement.
type OffsetSample struct {
	// RTT is the local round-trip time t3 - t1.
	RTT time.Duration
	// Offset is local_clock - rank0_clock for this sample:
	// (t1+t3)/2 - t2.
	Offset time.Duration
}

// NewOffsetSample derives a sample from the three exchange timestamps:
// t1/t3 on the local clock, t2 on rank 0's.
func NewOffsetSample(t1, t3 time.Time, t2 time.Time) OffsetSample {
	rtt := t3.Sub(t1)
	mid := t1.Add(rtt / 2)
	return OffsetSample{RTT: rtt, Offset: mid.Sub(t2)}
}

// EstimateOffset returns the offset of the minimum-RTT sample — the
// tightest bound available on the true clock difference. Empty input
// estimates zero.
func EstimateOffset(samples []OffsetSample) time.Duration {
	best := -1
	for i, s := range samples {
		if best < 0 || s.RTT < samples[best].RTT {
			best = i
		}
	}
	if best < 0 {
		return 0
	}
	return samples[best].Offset
}

// Shard is one rank's span log plus its measured clock offset relative
// to rank 0 (local - rank0; rank 0's own shard carries zero). It is the
// unit shipped over the distnet control stream at end of training.
type Shard struct {
	Rank   int           `json:"rank"`
	Offset time.Duration `json:"offset_ns"`
	Spans  []Span        `json:"spans"`
}

// Merge aligns every shard onto rank 0's clock (subtracting each
// shard's offset from its spans' start times) and returns the union
// sorted by aligned start time, ties broken by (rank, name) so the
// merged file is deterministic.
func Merge(shards []Shard) []Span {
	n := 0
	for _, sh := range shards {
		n += len(sh.Spans)
	}
	out := make([]Span, 0, n)
	for _, sh := range shards {
		for _, s := range sh.Spans {
			s.Rank = sh.Rank
			s.Start = s.Start.Add(-sh.Offset)
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := out[i], out[j]
		if !si.Start.Equal(sj.Start) {
			return si.Start.Before(sj.Start)
		}
		if si.Rank != sj.Rank {
			return si.Rank < sj.Rank
		}
		return si.Name < sj.Name
	})
	return out
}
