package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Per-step straggler attribution over a merged, clock-aligned span set.
// The trainer records, per rank per step: a "bwd" span, one
// "allreduce.b<k>" span per gradient bucket, and a "step" root. On a
// shared barrier, the step cannot advance until the slowest rank's
// backward + residual communication finishes — this report names that
// rank per step and attributes each rank's exposed communication to the
// buckets that caused it, instead of the averaged aggregate the
// BENCH_dist sweep reports.

// BucketComm is one bucket's communication on one rank for one step.
type BucketComm struct {
	Bucket int `json:"bucket"`
	// CommUS is the bucket's AllReduce wall time; ExposedUS the part of
	// it that ran after backward finished (not hidden behind compute).
	CommUS    float64 `json:"comm_us"`
	ExposedUS float64 `json:"exposed_us"`
}

// RankStep is one rank's decomposition of one step.
type RankStep struct {
	Rank  int     `json:"rank"`
	BwdUS float64 `json:"bwd_us"`
	// ReadyUS is when (relative to the step span's aligned start) the
	// rank finished backward plus all residual communication — the
	// moment it could enter the barrier.
	ReadyUS   float64      `json:"ready_us"`
	ExposedUS float64      `json:"exposed_us"`
	Buckets   []BucketComm `json:"buckets,omitempty"`
}

// StepStraggler is the per-step verdict.
type StepStraggler struct {
	Step       int    `json:"step"`
	GatingRank int    `json:"gating_rank"`
	GatingWhat string `json:"gating_what"` // "bwd" or "allreduce.b<k>"
	// SpreadUS is the gap between the first and last rank's ready time —
	// the wait the barrier imposed on the fastest rank.
	SpreadUS float64    `json:"spread_us"`
	Ranks    []RankStep `json:"ranks"`
}

// bucketIndex parses k from "allreduce.b<k>"; -1 when the name is not a
// bucket comm span.
func bucketIndex(name string) int {
	const pfx = "allreduce.b"
	if !strings.HasPrefix(name, pfx) {
		return -1
	}
	k, err := strconv.Atoi(name[len(pfx):])
	if err != nil {
		return -1
	}
	return k
}

// Stragglers builds the per-step report from merged spans. Steps with
// no "bwd" span on any rank are skipped (warm-up or non-training
// traces).
func Stragglers(spans []Span) []StepStraggler {
	type rankAcc struct {
		stepStart time.Time
		hasStart  bool
		bwdEnd    time.Time
		hasBwd    bool
		buckets   map[int]Span
	}
	// step -> rank -> acc
	acc := map[int]map[int]*rankAcc{}
	get := func(step, rank int) *rankAcc {
		m := acc[step]
		if m == nil {
			m = map[int]*rankAcc{}
			acc[step] = m
		}
		a := m[rank]
		if a == nil {
			a = &rankAcc{buckets: map[int]Span{}}
			m[rank] = a
		}
		return a
	}
	for _, s := range spans {
		if s.Step == 0 {
			continue
		}
		switch {
		case s.Name == "step":
			a := get(s.Step, s.Rank)
			a.stepStart, a.hasStart = s.Start, true
		case s.Name == "bwd":
			a := get(s.Step, s.Rank)
			a.bwdEnd, a.hasBwd = s.End(), true
		case bucketIndex(s.Name) >= 0:
			get(s.Step, s.Rank).buckets[bucketIndex(s.Name)] = s
		}
	}

	steps := make([]int, 0, len(acc))
	for st := range acc {
		steps = append(steps, st)
	}
	sort.Ints(steps)

	var out []StepStraggler
	for _, st := range steps {
		ranks := make([]int, 0, len(acc[st]))
		anyBwd := false
		for r, a := range acc[st] {
			ranks = append(ranks, r)
			anyBwd = anyBwd || a.hasBwd
		}
		if !anyBwd {
			continue
		}
		sort.Ints(ranks)

		rep := StepStraggler{Step: st, GatingRank: -1}
		// Step starts may differ per rank; use the earliest as the common
		// origin so ready times are comparable across ranks.
		var origin time.Time
		for _, r := range ranks {
			a := acc[st][r]
			if a.hasStart && (origin.IsZero() || a.stepStart.Before(origin)) {
				origin = a.stepStart
			}
		}
		var firstReady, lastReady float64
		first := true
		var gatingReady float64
		for _, r := range ranks {
			a := acc[st][r]
			if !a.hasBwd {
				continue
			}
			us := func(t time.Time) float64 { return float64(t.Sub(origin).Nanoseconds()) / 1e3 }
			rs := RankStep{Rank: r, BwdUS: us(a.bwdEnd)}
			ready := a.bwdEnd
			gatingWhat := "bwd"
			bks := make([]int, 0, len(a.buckets))
			for k := range a.buckets {
				bks = append(bks, k)
			}
			sort.Ints(bks)
			for _, k := range bks {
				b := a.buckets[k]
				exposed := b.End().Sub(maxTime(b.Start, a.bwdEnd))
				if exposed < 0 {
					exposed = 0
				}
				rs.Buckets = append(rs.Buckets, BucketComm{
					Bucket:    k,
					CommUS:    float64(b.Dur.Nanoseconds()) / 1e3,
					ExposedUS: float64(exposed.Nanoseconds()) / 1e3,
				})
				rs.ExposedUS += float64(exposed.Nanoseconds()) / 1e3
				if b.End().After(ready) {
					ready = b.End()
					gatingWhat = fmt.Sprintf("allreduce.b%d", k)
				}
			}
			rs.ReadyUS = us(ready)
			rep.Ranks = append(rep.Ranks, rs)
			if first || rs.ReadyUS < firstReady {
				firstReady = rs.ReadyUS
			}
			if first || rs.ReadyUS > lastReady {
				lastReady = rs.ReadyUS
			}
			first = false
			if rep.GatingRank < 0 || rs.ReadyUS > gatingReady {
				rep.GatingRank, gatingReady = r, rs.ReadyUS
				rep.GatingWhat = gatingWhat
			}
		}
		if rep.GatingRank < 0 {
			continue
		}
		rep.SpreadUS = lastReady - firstReady
		out = append(out, rep)
	}
	return out
}

func maxTime(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}

// WriteStragglerTable renders the report as the human-readable summary
// the bertdist launcher prints.
func WriteStragglerTable(w io.Writer, reps []StepStraggler) {
	if len(reps) == 0 {
		return
	}
	fmt.Fprintf(w, "step  gating-rank  gated-by         spread(us)  per-rank exposed comm (us)\n")
	for _, r := range reps {
		var exp []string
		for _, rk := range r.Ranks {
			exp = append(exp, fmt.Sprintf("r%d:%.0f", rk.Rank, rk.ExposedUS))
		}
		fmt.Fprintf(w, "%4d  %11d  %-15s %11.0f  %s\n",
			r.Step, r.GatingRank, r.GatingWhat, r.SpreadUS, strings.Join(exp, " "))
	}
}
