package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"demystbert/internal/profile"
)

func TestTraceIDStringRoundTrip(t *testing.T) {
	tr := New(0, 16)
	for i := 0; i < 100; i++ {
		id, _ := tr.NewTrace()
		s := id.String()
		if len(s) != 16 {
			t.Fatalf("trace id %q not 16 hex digits", s)
		}
		got, ok := ParseTraceID(s)
		if !ok || got != id {
			t.Fatalf("ParseTraceID(%q) = %v, %v; want %v, true", s, got, ok, id)
		}
	}
	for _, bad := range []string{"", "xyz", "00000000000000", "000000000000000g", "0000000000000000"} {
		if _, ok := ParseTraceID(bad); ok {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}

func TestHeadSampling(t *testing.T) {
	tr := New(0, 1024)
	tr.SetSampleEvery(4)
	sampled := 0
	for i := 0; i < 400; i++ {
		id, sc := tr.NewTrace()
		if id == 0 {
			t.Fatal("zero trace id")
		}
		if sc.Sampled() {
			sampled++
			if sc.Trace != id {
				t.Fatal("sampled context carries wrong trace id")
			}
		}
	}
	if sampled != 100 {
		t.Fatalf("1-in-4 sampling kept %d of 400", sampled)
	}
	tr.SetSampleEvery(0)
	if _, sc := tr.NewTrace(); sc.Sampled() {
		t.Fatal("SetSampleEvery(0) still sampling")
	}
}

func TestStepTraceIDDeterministicAcrossRanks(t *testing.T) {
	// Every rank derives the same per-step id with no exchange.
	if StepTraceID(3) != StepTraceID(3) {
		t.Fatal("StepTraceID not deterministic")
	}
	if StepTraceID(3) == StepTraceID(4) {
		t.Fatal("StepTraceID collides across steps")
	}
}

func TestRingBounded(t *testing.T) {
	tr := New(0, 8)
	_, sc := tr.NewTrace()
	for i := 0; i < 20; i++ {
		tr.Record(Span{Trace: sc.Trace, Name: "s", Start: time.Now()})
	}
	if tr.Len() != 8 {
		t.Fatalf("ring holds %d spans, cap 8", tr.Len())
	}
	if tr.Dropped() != 12 {
		t.Fatalf("dropped = %d, want 12", tr.Dropped())
	}
}

func TestSpanNesting(t *testing.T) {
	tr := New(2, 64)
	_, sc := tr.NewTrace()
	root := tr.StartSpan(sc, "root")
	child := tr.StartSpan(root.Context(), "child")
	child.End()
	root.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	var rootSpan, childSpan *Span
	for i := range spans {
		switch spans[i].Name {
		case "root":
			rootSpan = &spans[i]
		case "child":
			childSpan = &spans[i]
		}
	}
	if rootSpan == nil || childSpan == nil {
		t.Fatal("missing spans")
	}
	if childSpan.Parent != rootSpan.ID {
		t.Fatal("child does not reference root")
	}
	if rootSpan.Rank != 2 || childSpan.Rank != 2 {
		t.Fatal("rank not stamped")
	}
}

// TestNilTracerZeroAlloc pins the off-path contract: a nil tracer and
// an unsampled context must both cost zero allocations — the same
// discipline as profile.TestNilProfilerZeroAlloc, which is what keeps
// serving goodput flat when tracing is disabled.
func TestNilTracerZeroAlloc(t *testing.T) {
	var nilT *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := nilT.StartSpan(SpanContext{Trace: 1}, "x")
		sp.End()
		nilT.Record(Span{Trace: 1})
		nilT.SetStep(3)
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocates %.1f per op", allocs)
	}

	tr := New(0, 16)
	unsampled := SpanContext{} // head-based sampling said no
	allocs = testing.AllocsPerRun(1000, func() {
		sp := tr.StartSpan(unsampled, "x")
		sp.End()
		tr.Record(Span{}) // zero trace id: dropped before locking
	})
	if allocs != 0 {
		t.Fatalf("unsampled path allocates %.1f per op", allocs)
	}
}

func TestEstimateOffsetPicksMinRTT(t *testing.T) {
	samples := []OffsetSample{
		{RTT: 5 * time.Millisecond, Offset: 900 * time.Microsecond}, // congested
		{RTT: 100 * time.Microsecond, Offset: 250 * time.Microsecond},
		{RTT: 2 * time.Millisecond, Offset: -40 * time.Microsecond},
	}
	if got := EstimateOffset(samples); got != 250*time.Microsecond {
		t.Fatalf("EstimateOffset = %v, want 250µs", got)
	}
	if EstimateOffset(nil) != 0 {
		t.Fatal("empty samples should estimate zero")
	}
}

func TestNewOffsetSampleRecoversKnownSkew(t *testing.T) {
	// Worker clock runs 7ms ahead of rank 0. A symmetric exchange with
	// 1ms each way must recover exactly +7ms.
	skew := 7 * time.Millisecond
	base := time.Unix(1000, 0)
	t1 := base.Add(skew)                           // local send
	t2 := base.Add(1 * time.Millisecond)           // rank 0 replies (its clock)
	t3 := base.Add(skew).Add(2 * time.Millisecond) // local receive
	s := NewOffsetSample(t1, t3, t2)
	if s.Offset != skew {
		t.Fatalf("offset = %v, want %v", s.Offset, skew)
	}
	if s.RTT != 2*time.Millisecond {
		t.Fatalf("rtt = %v", s.RTT)
	}
}

// TestMergeAlignsInjectedClockSkew is the cross-rank merge-under-skew
// pin: two ranks record the same physical instant on clocks 50ms apart;
// after Merge with the measured offsets, the spans must land within the
// offset-estimation error (zero here, since the offsets are exact).
func TestMergeAlignsInjectedClockSkew(t *testing.T) {
	base := time.Unix(2000, 0)
	skew := 50 * time.Millisecond

	// Physically simultaneous "step" spans, stamped by skewed clocks.
	rank0 := Shard{Rank: 0, Offset: 0, Spans: []Span{
		{Trace: StepTraceID(1), Name: "step", Step: 1, Start: base, Dur: 10 * time.Millisecond},
	}}
	rank1 := Shard{Rank: 1, Offset: skew, Spans: []Span{
		{Trace: StepTraceID(1), Name: "step", Step: 1, Start: base.Add(skew), Dur: 10 * time.Millisecond},
	}}
	merged := Merge([]Shard{rank0, rank1})
	if len(merged) != 2 {
		t.Fatalf("merged %d spans", len(merged))
	}
	if !merged[0].Start.Equal(merged[1].Start) {
		t.Fatalf("aligned starts differ: %v vs %v (skew not removed)",
			merged[0].Start, merged[1].Start)
	}
	if merged[0].Rank == merged[1].Rank {
		t.Fatal("merge lost a rank")
	}
	// Without the offset the spans would sit 50ms apart — make sure the
	// test would actually catch a regression.
	raw := Merge([]Shard{rank0, {Rank: 1, Offset: 0, Spans: rank1.Spans}})
	if raw[0].Start.Equal(raw[1].Start) {
		t.Fatal("test is vacuous: skew missing from input")
	}
}

// TestChromeTraceTrackOrdering pins the merged Perfetto file's
// per-track invariants: within each tid, slices are emitted in
// non-decreasing timestamp order and child spans lie inside their
// parents — what makes the file render as properly nested tracks.
func TestChromeTraceTrackOrdering(t *testing.T) {
	base := time.Unix(3000, 0)
	tr0 := New(0, 64)
	tr1 := New(1, 64)
	for step := 1; step <= 2; step++ {
		for i, tr := range []*Tracer{tr0, tr1} {
			off := time.Duration(i) * 25 * time.Millisecond // injected skew
			start := base.Add(time.Duration(step) * 100 * time.Millisecond).Add(off)
			sc := tr.FixedTrace(StepTraceID(step))
			root := SpanID(uint64(step*10 + i))
			tr.Record(Span{Trace: sc.Trace, ID: root, Name: "step", Step: step,
				Start: start, Dur: 90 * time.Millisecond})
			tr.Record(Span{Trace: sc.Trace, Parent: root, Name: "fwd", Step: step,
				Start: start.Add(time.Millisecond), Dur: 30 * time.Millisecond})
			tr.Record(Span{Trace: sc.Trace, Parent: root, Name: "bwd", Step: step,
				Start: start.Add(32 * time.Millisecond), Dur: 50 * time.Millisecond})
		}
	}
	merged := Merge([]Shard{
		{Rank: 0, Offset: 0, Spans: tr0.Spans()},
		{Rank: 1, Offset: 25 * time.Millisecond, Spans: tr1.Spans()},
	})

	kernels := []profile.Event{
		{Kernel: "sgemm", Category: profile.CatLinear, Phase: profile.Forward,
			Start: base.Add(105 * time.Millisecond), Duration: 5 * time.Millisecond},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, merged, kernels); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		TS   float64           `json:"ts"`
		Dur  float64           `json:"dur"`
		TID  int               `json:"tid"`
		Args map[string]string `json:"args"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}

	perTrack := map[int][]int{}
	for i, e := range events {
		if e.Ph != "X" {
			continue
		}
		perTrack[e.TID] = append(perTrack[e.TID], i)
	}
	if len(perTrack) != 3 { // rank 0, rank 1, kernels
		t.Fatalf("expected 3 tracks, got %d", len(perTrack))
	}
	for tid, idxs := range perTrack {
		last := -1.0
		for _, i := range idxs {
			if events[i].TS < last {
				t.Fatalf("track %d out of order at %q (ts %.1f after %.1f)",
					tid, events[i].Name, events[i].TS, last)
			}
			last = events[i].TS
		}
	}
	// Child containment: every span with a parent lies inside it.
	byID := map[string]int{}
	for i, e := range events {
		if e.Ph == "X" && e.Args["span"] != "" {
			byID[e.Args["span"]] = i
		}
	}
	checked := 0
	for _, e := range events {
		pid := e.Args["parent"]
		if e.Ph != "X" || pid == "" {
			continue
		}
		pi, ok := byID[pid]
		if !ok {
			t.Fatalf("span %q references missing parent %s", e.Name, pid)
		}
		p := events[pi]
		if e.TS < p.TS || e.TS+e.Dur > p.TS+p.Dur+0.001 {
			t.Fatalf("span %q [%f,%f] escapes parent %q [%f,%f]",
				e.Name, e.TS, e.TS+e.Dur, p.Name, p.TS, p.TS+p.Dur)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no parent/child pairs checked")
	}
	// The two ranks' step spans must be aligned (skew removed): equal ts.
	var stepTS []float64
	for _, e := range events {
		if e.Name == "step" && e.Args["step"] == "1" {
			stepTS = append(stepTS, e.TS)
		}
	}
	if len(stepTS) != 2 || stepTS[0] != stepTS[1] {
		t.Fatalf("step-1 spans not clock-aligned across tracks: %v", stepTS)
	}
}

func TestStragglersNamesGatingRank(t *testing.T) {
	base := time.Unix(4000, 0)
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	tid := StepTraceID(1)
	// Rank 0: bwd ends at 50ms, bucket 0 comm hidden (ends 45ms),
	// bucket 1 exposed 10ms past bwd end.
	// Rank 1: bwd ends at 70ms, all comm hidden -> rank 1 gates via bwd?
	// No: rank 0's bucket 1 ends at 60ms < 70ms, so rank 1 gates by bwd.
	spans := []Span{
		{Trace: tid, Name: "step", Step: 1, Rank: 0, Start: base, Dur: ms(80)},
		{Trace: tid, Name: "bwd", Step: 1, Rank: 0, Start: base.Add(ms(10)), Dur: ms(40)},
		{Trace: tid, Name: "allreduce.b0", Step: 1, Rank: 0, Start: base.Add(ms(20)), Dur: ms(25)},
		{Trace: tid, Name: "allreduce.b1", Step: 1, Rank: 0, Start: base.Add(ms(48)), Dur: ms(12)},
		{Trace: tid, Name: "step", Step: 1, Rank: 1, Start: base, Dur: ms(80)},
		{Trace: tid, Name: "bwd", Step: 1, Rank: 1, Start: base.Add(ms(10)), Dur: ms(60)},
		{Trace: tid, Name: "allreduce.b0", Step: 1, Rank: 1, Start: base.Add(ms(20)), Dur: ms(25)},
	}
	reps := Stragglers(spans)
	if len(reps) != 1 {
		t.Fatalf("got %d step reports", len(reps))
	}
	r := reps[0]
	if r.Step != 1 || r.GatingRank != 1 || r.GatingWhat != "bwd" {
		t.Fatalf("gating = rank %d by %q, want rank 1 by bwd", r.GatingRank, r.GatingWhat)
	}
	// Rank 0 ready at 60ms (bucket 1 end), rank 1 at 70ms -> spread 10ms.
	if r.SpreadUS < 9_999 || r.SpreadUS > 10_001 {
		t.Fatalf("spread = %.0fus, want 10000", r.SpreadUS)
	}
	var r0 *RankStep
	for i := range r.Ranks {
		if r.Ranks[i].Rank == 0 {
			r0 = &r.Ranks[i]
		}
	}
	if r0 == nil {
		t.Fatal("rank 0 missing")
	}
	// Bucket 0 fully hidden, bucket 1 exposed 10ms (48+12=60 vs bwd end 50).
	if len(r0.Buckets) != 2 {
		t.Fatalf("rank 0 has %d buckets", len(r0.Buckets))
	}
	if r0.Buckets[0].ExposedUS != 0 {
		t.Fatalf("bucket 0 exposed %.0fus, want 0", r0.Buckets[0].ExposedUS)
	}
	if r0.Buckets[1].ExposedUS < 9_999 || r0.Buckets[1].ExposedUS > 10_001 {
		t.Fatalf("bucket 1 exposed %.0fus, want 10000", r0.Buckets[1].ExposedUS)
	}
	var tbl bytes.Buffer
	WriteStragglerTable(&tbl, reps)
	if !bytes.Contains(tbl.Bytes(), []byte("gating-rank")) {
		t.Fatal("table missing header")
	}
}
