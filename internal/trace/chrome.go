package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"demystbert/internal/profile"
)

// Perfetto/Chrome export of merged spans: one process, one track (tid)
// per rank, so a `bertdist -launch N` run renders as N parallel
// timelines whose step spans line up once the clock offsets are
// applied. Kernel-level profile events can ride along on a dedicated
// track per rank (tid = rank's track + kernelTrackStride) — they share
// the wall-clock timeline with the spans, which is what lets a serving
// batch span visually contain the GEMM slices it dispatched.

// chromeEvent mirrors profile's trace-event encoding; kept separate so
// the two packages stay independently evolvable.
type chromeEvent struct {
	Name     string            `json:"name"`
	Category string            `json:"cat"`
	Phase    string            `json:"ph"`
	TSMicros float64           `json:"ts"`
	DurMicro float64           `json:"dur"`
	PID      int               `json:"pid"`
	TID      int               `json:"tid"`
	Args     map[string]string `json:"args,omitempty"`
}

const kernelTrackStride = 1000

// WriteChromeTrace exports spans (already merged/aligned — see Merge)
// as a Chrome trace-event JSON array. kernels, when non-empty, is a
// profile event log recorded on the same clock (rank 0's, for
// distributed runs; the serving process's own for serve); its slices
// land on a companion track. Timestamps are rebased to the earliest
// span so Perfetto opens at t=0.
func WriteChromeTrace(w io.Writer, spans []Span, kernels []profile.Event) error {
	var origin time.Time
	for _, s := range spans {
		if origin.IsZero() || s.Start.Before(origin) {
			origin = s.Start
		}
	}
	for _, e := range kernels {
		if !e.Start.IsZero() && (origin.IsZero() || e.Start.Before(origin)) {
			origin = e.Start
		}
	}
	us := func(t time.Time) float64 { return float64(t.Sub(origin).Nanoseconds()) / 1e3 }

	out := make([]chromeEvent, 0, len(spans)+len(kernels)+8)
	seenRank := map[int]bool{}
	for _, s := range spans {
		if !seenRank[s.Rank] {
			seenRank[s.Rank] = true
			out = append(out, chromeEvent{
				Name: "thread_name", Phase: "M", PID: 1, TID: s.Rank + 1,
				Args: map[string]string{"name": fmt.Sprintf("rank %d spans", s.Rank)},
			})
		}
		args := map[string]string{
			"trace": s.Trace.String(),
			"span":  fmt.Sprintf("%016x", uint64(s.ID)),
		}
		if s.Parent != 0 {
			args["parent"] = fmt.Sprintf("%016x", uint64(s.Parent))
		}
		if s.Step != 0 {
			args["step"] = fmt.Sprint(s.Step)
		}
		out = append(out, chromeEvent{
			Name: s.Name, Category: "span", Phase: "X",
			TSMicros: us(s.Start),
			DurMicro: float64(s.Dur.Nanoseconds()) / 1e3,
			PID:      1, TID: s.Rank + 1,
			Args: args,
		})
	}
	if len(kernels) > 0 {
		out = append(out, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: kernelTrackStride + 1,
			Args: map[string]string{"name": "kernels"},
		})
	}
	for _, e := range kernels {
		if e.Start.IsZero() {
			continue // synthetic events have no place on a wall-clock timeline
		}
		out = append(out, chromeEvent{
			Name: e.Kernel, Category: string(e.Category), Phase: "X",
			TSMicros: us(e.Start),
			DurMicro: float64(e.Duration.Nanoseconds()) / 1e3,
			PID:      1, TID: kernelTrackStride + 1,
			Args: map[string]string{
				"phase": e.Phase.String(),
				"iter":  fmt.Sprint(e.Iter),
				"flops": fmt.Sprint(e.FLOPs),
			},
		})
	}
	return json.NewEncoder(w).Encode(out)
}
