// Package nmc implements the paper's near-memory-compute study
// (Section 6.2.1): a DRAM model with ALUs at each bank, to which the
// memory-intensive LAMB optimizer is offloaded while GEMMs stay on the
// GPU. Placing an ALU per bank exposes the aggregate bank-level bandwidth
// — several times the external interface — to the element-wise optimizer
// kernels, without the cost of per-subarray ALUs.
package nmc

import (
	"time"

	"demystbert/internal/device"
	"demystbert/internal/opgraph"
	"demystbert/internal/perfmodel"
)

// DRAM describes the memory geometry of the NMC design point: ALUs at
// each bank, commands broadcast from the host (the balanced design the
// paper adopts from recent vendor proposals).
type DRAM struct {
	// Stacks × ChannelsPerStack × BanksPerChannel banks in total.
	Stacks           int
	ChannelsPerStack int
	BanksPerChannel  int
	// BankBandwidth is the sustainable per-bank access rate for the
	// in-bank ALU (bytes/s), set by DRAM core timing (tCCD-limited
	// column accesses), not by the external interface.
	BankBandwidth float64
	// CommandOverhead is the host-side cost of broadcasting one
	// operation's commands to all banks.
	CommandOverhead time.Duration
}

// HBM2Banks returns the geometry of an MI100-class 4-stack HBM2 system:
// 512 banks whose aggregate internal bandwidth is ~3.8× the 1.23 TB/s
// external interface, matching the bank-level PIM designs of the paper's
// references [46, 53, 54].
func HBM2Banks() DRAM {
	return DRAM{
		Stacks:           4,
		ChannelsPerStack: 8,
		BanksPerChannel:  16,
		BankBandwidth:    9.8e9,
		CommandOverhead:  5 * time.Microsecond,
	}
}

// Banks returns the total bank (and ALU) count.
func (d DRAM) Banks() int {
	return d.Stacks * d.ChannelsPerStack * d.BanksPerChannel
}

// AggregateBandwidth returns the bank-level bandwidth available to NMC
// ALUs when all banks operate in parallel.
func (d DRAM) AggregateBandwidth() float64 {
	return float64(d.Banks()) * d.BankBandwidth
}

// System couples a host accelerator with an NMC-capable memory.
type System struct {
	Host device.Device
	Mem  DRAM
}

// NewSystem returns the paper's evaluation system: an MI100-class GPU
// whose HBM2 banks host NMC ALUs.
func NewSystem() System {
	return System{Host: device.MI100(), Mem: HBM2Banks()}
}

// NMCTime models executing a memory-intensive operation of the given byte
// traffic on the bank-level ALUs: data is distributed so each ALU works
// on its own bank (the paper's data-placement assumption from [3]).
func (s System) NMCTime(bytes int64) time.Duration {
	if bytes <= 0 {
		return s.Mem.CommandOverhead
	}
	t := float64(bytes) / s.Mem.AggregateBandwidth()
	return time.Duration(t*1e9)*time.Nanosecond + s.Mem.CommandOverhead
}

// OptimisticGPUTime is the baseline the paper compares against: LAMB's
// execution reduced to its minimal data reads and writes at the full
// external bandwidth — a bound no real GPU kernel reaches.
func (s System) OptimisticGPUTime(bytes int64) time.Duration {
	return time.Duration(float64(bytes) / s.Host.MemBW * 1e9)
}

// LAMBStudy is the outcome of offloading a workload's LAMB update to NMC.
type LAMBStudy struct {
	Workload opgraph.Workload

	// LAMBBytes is the optimizer's algorithmic traffic.
	LAMBBytes int64
	// GPUModeled is LAMB's time in the calibrated device model;
	// GPUOptimistic is the paper's idealized pure-read/write bound;
	// NMC is the bank-level execution time.
	GPUModeled    time.Duration
	GPUOptimistic time.Duration
	NMC           time.Duration

	// BaseTotal and NMCTotal are full-iteration times with LAMB on the
	// GPU versus on the NMC units.
	BaseTotal time.Duration
	NMCTotal  time.Duration
}

// SpeedupVsOptimistic returns NMC's speedup over the optimistic GPU bound
// (the paper's 3.8×).
func (st LAMBStudy) SpeedupVsOptimistic() float64 {
	return float64(st.GPUOptimistic) / float64(st.NMC)
}

// EndToEndImprovement returns the whole-iteration improvement from the
// offload (the paper's 5-22%).
func (st LAMBStudy) EndToEndImprovement() float64 {
	return float64(st.BaseTotal)/float64(st.NMCTotal) - 1
}

// StudyLAMB offloads the workload's LAMB phase to the NMC units and
// reports per-phase and end-to-end effects.
func (s System) StudyLAMB(w opgraph.Workload) LAMBStudy {
	g := opgraph.Build(w)
	r := perfmodel.Run(g, s.Host)

	st := LAMBStudy{Workload: w, BaseTotal: r.Total}
	var lambModeled time.Duration
	var nmcTime time.Duration
	for _, ot := range r.Ops {
		if ot.Op.Class != opgraph.ClassLAMB {
			continue
		}
		st.LAMBBytes += ot.Op.TotalBytes()
		lambModeled += ot.Total
		nmcTime += time.Duration(ot.Op.Repeat) * s.NMCTime(ot.Op.Bytes)
	}
	st.GPUModeled = lambModeled
	st.GPUOptimistic = s.OptimisticGPUTime(st.LAMBBytes)
	st.NMC = nmcTime
	st.NMCTotal = r.Total - lambModeled + nmcTime
	return st
}
