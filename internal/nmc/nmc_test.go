package nmc

import (
	"testing"

	"demystbert/internal/model"
	"demystbert/internal/opgraph"
)

func TestDRAMGeometry(t *testing.T) {
	d := HBM2Banks()
	if d.Banks() != 512 {
		t.Fatalf("banks = %d, want 512", d.Banks())
	}
	agg := d.AggregateBandwidth()
	if agg < 3e12 || agg > 6e12 {
		t.Fatalf("aggregate bank bandwidth %.2e outside the bank-PIM regime", agg)
	}
}

// TestLAMBSpeedup asserts the paper's headline: NMC accelerates LAMB by
// ~3.8x over the optimistic GPU bound.
func TestLAMBSpeedup(t *testing.T) {
	s := NewSystem()
	st := s.StudyLAMB(opgraph.Phase1(model.BERTLarge(), 32, opgraph.FP32))
	if sp := st.SpeedupVsOptimistic(); sp < 3.2 || sp > 4.4 {
		t.Errorf("NMC speedup over optimistic GPU %.2f outside ~3.8x band", sp)
	}
	if st.NMC >= st.GPUModeled {
		t.Error("NMC LAMB must beat the modeled GPU execution")
	}
	if st.GPUOptimistic >= st.GPUModeled {
		t.Error("the optimistic GPU bound must undercut the modeled GPU time")
	}
}

// TestEndToEnd asserts the paper's 5-22% overall improvement across its
// workload configurations.
func TestEndToEnd(t *testing.T) {
	s := NewSystem()
	cfg := model.BERTLarge()
	var lo, hi float64 = 1, 0
	for _, w := range []opgraph.Workload{
		opgraph.Phase1(cfg, 32, opgraph.FP32),
		opgraph.Phase1(cfg, 4, opgraph.FP32),
		opgraph.Phase2(cfg, 4, opgraph.FP32),
		opgraph.Phase1(cfg, 32, opgraph.Mixed),
		opgraph.Phase2(cfg, 4, opgraph.Mixed),
	} {
		st := s.StudyLAMB(w)
		imp := st.EndToEndImprovement()
		if imp < lo {
			lo = imp
		}
		if imp > hi {
			hi = imp
		}
		if imp <= 0 {
			t.Errorf("%s: NMC offload must improve end-to-end time, got %.3f", w.Name, imp)
		}
	}
	// Paper: 5-22%; tolerate a modestly wider envelope.
	if lo < 0.04 || lo > 0.12 {
		t.Errorf("minimum improvement %.3f should be near the paper's 5%%", lo)
	}
	if hi < 0.15 || hi > 0.35 {
		t.Errorf("maximum improvement %.3f should be near the paper's 22%%", hi)
	}
}

// Larger models benefit more: LAMB traffic grows quadratically with layer
// width ("higher for larger Transformers").
func TestLargerModelsBenefitMore(t *testing.T) {
	s := NewSystem()
	small := s.StudyLAMB(opgraph.Phase1(model.BERTLarge(), 32, opgraph.FP32))
	big := s.StudyLAMB(opgraph.Phase1(model.MegatronBERT(), 32, opgraph.FP32))
	if big.LAMBBytes <= small.LAMBBytes {
		t.Fatal("larger model must move more optimizer traffic")
	}
	if big.EndToEndImprovement() <= small.EndToEndImprovement() {
		t.Errorf("Megatron-size model should benefit more: %.3f vs %.3f",
			big.EndToEndImprovement(), small.EndToEndImprovement())
	}
}

func TestNMCTimeEdgeCases(t *testing.T) {
	s := NewSystem()
	if s.NMCTime(0) != s.Mem.CommandOverhead {
		t.Fatal("zero-byte NMC op costs only command overhead")
	}
	if s.NMCTime(1<<30) <= s.NMCTime(1<<20) {
		t.Fatal("NMC time must grow with bytes")
	}
}

func TestMixedPrecisionUnaffectedLAMBBytes(t *testing.T) {
	s := NewSystem()
	fp32 := s.StudyLAMB(opgraph.Phase1(model.BERTLarge(), 32, opgraph.FP32))
	mp := s.StudyLAMB(opgraph.Phase1(model.BERTLarge(), 32, opgraph.Mixed))
	if fp32.LAMBBytes != mp.LAMBBytes {
		t.Fatal("LAMB traffic must be precision-independent (FP32 state)")
	}
	// MP shrinks everything else, so the offload's relative gain grows.
	if mp.EndToEndImprovement() <= fp32.EndToEndImprovement() {
		t.Error("NMC gain should be larger under mixed precision")
	}
}
