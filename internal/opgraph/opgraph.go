// Package opgraph builds the architecture-agnostic operator graph of a
// BERT training iteration: every kernel the iteration launches, with its
// exact GEMM dimensions (paper Table 2b), floating-point operation count,
// algorithmic byte traffic, operator category, and training phase.
//
// This is the paper's own methodology made executable: Section 3.1.1
// argues for characterizing BERT by the manifestation, size, and
// arithmetic intensity of its operations — quantities that depend only on
// the network architecture, hyperparameters, and training technique, not
// on any particular accelerator. The graph is consumed by
// internal/perfmodel (roofline timing), internal/dist (multi-device
// models), internal/fusion, and internal/nmc.
package opgraph

import (
	"fmt"

	"demystbert/internal/kernels"
	"demystbert/internal/model"
	"demystbert/internal/profile"
)

// Precision selects the training numeric mode of a workload.
type Precision int

const (
	// FP32 is single-precision training.
	FP32 Precision = iota
	// Mixed is mixed-precision training: FP16 storage and matrix-core
	// arithmetic for forward/backward, FP32 master weights and optimizer
	// (paper Section 3.2.1).
	Mixed
)

// String returns "FP32" or "FP16" (the paper labels mixed precision FP16).
func (p Precision) String() string {
	if p == Mixed {
		return "FP16"
	}
	return "FP32"
}

// ElemSize returns the activation element size in bytes.
func (p Precision) ElemSize() int {
	if p == Mixed {
		return 2
	}
	return 4
}

// LayerClass is the paper's top-level runtime decomposition (Fig. 3).
type LayerClass int

const (
	ClassTransformer LayerClass = iota
	ClassEmbedding
	ClassOutput
	ClassLAMB
	ClassComm // distributed-training communication (Fig. 11)
)

// String returns the display name used in Fig. 3 and Fig. 11.
func (c LayerClass) String() string {
	switch c {
	case ClassTransformer:
		return "Transformer"
	case ClassEmbedding:
		return "Embedding"
	case ClassOutput:
		return "Output"
	case ClassLAMB:
		return "LAMB"
	case ClassComm:
		return "Comm"
	default:
		return "???"
	}
}

// GEMMShape describes one (possibly batched) GEMM in the orientation of
// Table 2b: an output of M×N accumulated over K, executed Batch times as a
// single batched kernel. TransA/TransB are the operand layout flags the
// framework passes to the BLAS library (Fig. 6 labels).
type GEMMShape struct {
	TransA, TransB bool
	M, N, K        int
	Batch          int
}

// Label renders the Fig. 6 identifier: "transA,transB,M,N,K[,batch]".
func (g GEMMShape) Label() string {
	t := func(b bool) string {
		if b {
			return "T"
		}
		return "N"
	}
	if g.Batch > 1 {
		return fmt.Sprintf("%s%s_%dx%dx%d_b%d", t(g.TransA), t(g.TransB), g.M, g.N, g.K, g.Batch)
	}
	return fmt.Sprintf("%s%s_%dx%dx%d", t(g.TransA), t(g.TransB), g.M, g.N, g.K)
}

// FLOPs returns the total multiply-add count across the batch.
func (g GEMMShape) FLOPs() int64 {
	return int64(g.Batch) * kernels.GEMMFLOPs(g.M, g.N, g.K)
}

// Bytes returns the algorithmic traffic across the batch at elemSize.
func (g GEMMShape) Bytes(elemSize int) int64 {
	return int64(g.Batch) * kernels.GEMMBytes(g.M, g.N, g.K, elemSize)
}

// Intensity returns FLOPs per byte at elemSize (Fig. 6's y-axis).
func (g GEMMShape) Intensity(elemSize int) float64 {
	return float64(g.FLOPs()) / float64(g.Bytes(elemSize))
}

// Op is one kernel launch of the iteration. Repeat compresses identical
// launches (e.g. the same per-layer kernel across N Transformer layers):
// FLOPs and Bytes are per launch.
type Op struct {
	Name     string
	Category profile.Category
	Phase    profile.Phase
	Class    LayerClass
	GEMM     *GEMMShape // nil for non-GEMM kernels
	FLOPs    int64
	Bytes    int64
	ElemSize int // byte size the traffic was accounted at
	Repeat   int
}

// TotalFLOPs returns FLOPs across all repeats.
func (o Op) TotalFLOPs() int64 { return o.FLOPs * int64(o.Repeat) }

// TotalBytes returns bytes across all repeats.
func (o Op) TotalBytes() int64 { return o.Bytes * int64(o.Repeat) }

// Intensity returns the op's FLOPs-per-byte ratio (Fig. 7's y-axis).
func (o Op) Intensity() float64 {
	if o.Bytes == 0 {
		return 0
	}
	return float64(o.FLOPs) / float64(o.Bytes)
}

// Workload identifies one experimental configuration, e.g. the paper's
// Ph1-B32-FP32.
type Workload struct {
	Name string
	Cfg  model.Config
	// B is the mini-batch size; SeqLen is the paper's n (128 for
	// pre-training Phase-1, 512 for Phase-2).
	B, SeqLen int
	Precision Precision
	// CheckpointEvery > 0 enables activation checkpointing with segments
	// of that many layers (Section 4).
	CheckpointEvery int

	// SliceWays > 1 builds the per-device graph of m-way Megatron-style
	// tensor slicing (Section 5.1): attention heads, projection output
	// features, and the FC intermediate dimension are split m ways;
	// dropout/residual/LayerNorm are replicated; LAMB updates 1/m of the
	// parameters. Communication is modeled separately by internal/dist.
	SliceWays int
	// Optimizer selects the update-phase ops; LAMB unless overridden.
	Optimizer OptimizerKind

	// Mode selects pre-training (default), fine-tuning, or inference.
	Mode RunMode

	// FusedAttention replaces the forward scale/mask/softmax kernel
	// sequence with one fused kernel (Section 6.1.1's software
	// optimization for the data-intensive attention-score phase).
	FusedAttention bool
}

// OptimizerKind selects which optimizer's kernels the update phase emits.
type OptimizerKind int

const (
	// OptLAMB is the paper's default optimizer.
	OptLAMB OptimizerKind = iota
	// OptAdam is the fused multi-tensor Adam alternative (the paper's
	// footnote 2 baseline): no global-norm reduction, no trust-ratio
	// stage, a handful of multi-tensor launches.
	OptAdam
	// OptSGD is plain stochastic gradient descent: one read of gradient
	// and weight, one write, per parameter.
	OptSGD
	// OptNone omits the update phase (inference-style iteration).
	OptNone
)

// RunMode selects what kind of iteration the graph describes
// (Section 7's discussion of fine-tuning and inference).
type RunMode int

const (
	// Pretraining is a full FWD+BWD+update iteration with the MLM and
	// NSP output heads — the paper's primary subject.
	Pretraining RunMode = iota
	// FineTuning is a full training iteration with a task head instead
	// of the pre-training heads (modeled on SQuAD's span classifier,
	// which the paper notes is simpler and negligible).
	FineTuning
	// Inference is a forward pass only: no backprop, no optimizer.
	Inference
)

// String returns the mode's display name.
func (m RunMode) String() string {
	switch m {
	case FineTuning:
		return "finetune"
	case Inference:
		return "inference"
	default:
		return "pretrain"
	}
}

// Phase1 returns the paper's Phase-1 pre-training workload (n=128) at
// batch size b.
func Phase1(cfg model.Config, b int, p Precision) Workload {
	return Workload{
		Name:      fmt.Sprintf("Ph1-B%d-%s", b, p),
		Cfg:       cfg,
		B:         b,
		SeqLen:    128,
		Precision: p,
	}
}

// Phase2 returns the Phase-2 workload (n=512) at batch size b.
func Phase2(cfg model.Config, b int, p Precision) Workload {
	return Workload{
		Name:      fmt.Sprintf("Ph2-B%d-%s", b, p),
		Cfg:       cfg,
		B:         b,
		SeqLen:    512,
		Precision: p,
	}
}

// Tokens returns the tokens processed per iteration (B·n), the quantity
// forward/backward cost scales with (Section 3.3.1).
func (w Workload) Tokens() int { return w.B * w.SeqLen }

// Graph is the complete kernel list of one training iteration.
type Graph struct {
	Workload Workload
	Ops      []Op
}

// KernelCount returns the number of kernel launches including repeats.
func (g *Graph) KernelCount() int {
	n := 0
	for _, op := range g.Ops {
		n += op.Repeat
	}
	return n
}

// TotalFLOPs sums FLOPs over the whole iteration.
func (g *Graph) TotalFLOPs() int64 {
	var n int64
	for _, op := range g.Ops {
		n += op.TotalFLOPs()
	}
	return n
}

// TotalBytes sums algorithmic traffic over the whole iteration.
func (g *Graph) TotalBytes() int64 {
	var n int64
	for _, op := range g.Ops {
		n += op.TotalBytes()
	}
	return n
}

// GEMMs returns every distinct GEMM op of the graph (Fig. 6's population).
func (g *Graph) GEMMs() []Op {
	var out []Op
	for _, op := range g.Ops {
		if op.GEMM != nil {
			out = append(out, op)
		}
	}
	return out
}

// ParamTensor is one parameter tensor the optimizer updates.
type ParamTensor struct {
	Name string
	Size int
}

// ParamTensors enumerates every parameter tensor of the configuration in
// update order; LAMB launches its two stages once per tensor. The tied MLM
// decoder weight is represented once (under the embedding).
func ParamTensors(cfg model.Config) []ParamTensor {
	d, ff := cfg.DModel, cfg.DFF
	var ts []ParamTensor
	add := func(name string, size int) {
		ts = append(ts, ParamTensor{Name: name, Size: size})
	}
	add("embed.token", cfg.Vocab*d)
	add("embed.position", cfg.MaxPos*d)
	add("embed.segment", 2*d)
	add("embed.ln.gamma", d)
	add("embed.ln.beta", d)
	for i := 0; i < cfg.NumLayers; i++ {
		pre := fmt.Sprintf("encoder.%d.", i)
		for _, proj := range []string{"q", "k", "v", "o"} {
			add(pre+proj+".weight", d*d)
			add(pre+proj+".bias", d)
		}
		add(pre+"attn_ln.gamma", d)
		add(pre+"attn_ln.beta", d)
		add(pre+"fc1.weight", d*ff)
		add(pre+"fc1.bias", ff)
		add(pre+"fc2.weight", ff*d)
		add(pre+"fc2.bias", d)
		add(pre+"ff_ln.gamma", d)
		add(pre+"ff_ln.beta", d)
	}
	add("mlm.dense.weight", d*d)
	add("mlm.dense.bias", d)
	add("mlm.ln.gamma", d)
	add("mlm.ln.beta", d)
	add("mlm.decoder.bias", cfg.Vocab)
	add("nsp.pooler.weight", d*d)
	add("nsp.pooler.bias", d)
	add("nsp.classifier.weight", 2*d)
	add("nsp.classifier.bias", 2)
	return ts
}

// ParamGroups returns the per-layer LAMB update groups: the embedding
// tables, each Transformer layer's parameters, and the output heads. The
// optimizer launches one Stage-1 and one Stage-2 kernel per group
// (Section 2.4: the algorithm "is executed independently for every model
// layer, each accessing the corresponding layer's data").
func ParamGroups(cfg model.Config) []ParamTensor {
	d, ff := cfg.DModel, cfg.DFF
	perLayer := 4*(d*d+d) + (d*ff + ff) + (ff*d + d) + 4*d
	groups := []ParamTensor{
		{Name: "embedding", Size: (cfg.Vocab+cfg.MaxPos+2)*d + 2*d},
	}
	for i := 0; i < cfg.NumLayers; i++ {
		groups = append(groups, ParamTensor{Name: fmt.Sprintf("encoder.%d", i), Size: perLayer})
	}
	groups = append(groups, ParamTensor{
		Name: "heads",
		Size: (d*d + d) + 2*d + cfg.Vocab + (d*d + d) + (2*d + 2),
	})
	return groups
}
