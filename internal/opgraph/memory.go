package opgraph

// Activation-memory model: the capacity pressure that motivates
// activation checkpointing (Section 4: it "reduces a model's memory
// capacity requirements and enables training a large model or a model
// with larger B on a single device"). The model counts every tensor that
// must stay resident between the forward pass and the backward kernel
// that consumes it.

// MemoryFootprint is the modeled device-memory demand of one training
// iteration, in bytes.
type MemoryFootprint struct {
	// Weights is the parameter storage (plus FP32 master copies under
	// mixed precision).
	Weights int64
	// Gradients is the parameter-gradient storage.
	Gradients int64
	// OptimizerState is LAMB's momentum + velocity (always FP32).
	OptimizerState int64
	// Activations is the storage for forward activations retained for
	// backprop (reduced to checkpoints + one live segment when
	// checkpointing).
	Activations int64
}

// Total sums all components.
func (m MemoryFootprint) Total() int64 {
	return m.Weights + m.Gradients + m.OptimizerState + m.Activations
}

// activationsPerLayer returns the bytes of forward state one Transformer
// layer must retain for its backward pass: the inputs of every GEMM and
// element-wise gradient kernel.
func activationsPerLayer(w Workload) int64 {
	cfg := w.Cfg
	es := int64(w.Precision.ElemSize())
	nB := int64(w.Tokens())
	d, ff := int64(cfg.DModel), int64(cfg.DFF)
	n := int64(w.SeqLen)
	scores := int64(w.B) * int64(cfg.Heads) * n * n

	var bytes int64
	// Attention: layer input (shared by Q/K/V), the three projections,
	// softmax output, post-dropout probabilities (mask), context, and the
	// projection output.
	bytes += nB * d * es     // layer input
	bytes += 3 * nB * d * es // Q, K, V
	bytes += 2 * scores * es // softmax output + dropout mask
	bytes += 2 * nB * d * es // attention context + projection output
	// Attention block: dropout mask, residual sum (LN input), LN output.
	bytes += 3 * nB * d * es
	// FC: FC-1 output (GeLU input), GeLU output, FC-2 output.
	bytes += 2*nB*ff*es + nB*d*es
	// FC block: dropout mask, residual sum, LN output.
	bytes += 3 * nB * d * es
	return bytes
}

// Footprint models the iteration's memory demand. With checkpointing,
// only the √N-spaced checkpoint activations persist across the forward
// pass, plus one segment's full activations live during its recompute.
func Footprint(w Workload) MemoryFootprint {
	cfg := w.Cfg
	params := int64(cfg.ParamCount())
	const fp32 = 4
	es := int64(w.Precision.ElemSize())

	f := MemoryFootprint{
		Weights:        params * fp32,
		Gradients:      params * es,
		OptimizerState: 2 * params * fp32, // m and v
	}
	if w.Precision == Mixed {
		// FP16 working copy alongside the FP32 master weights.
		f.Weights += params * es
	}

	perLayer := activationsPerLayer(w)
	layers := int64(cfg.NumLayers)
	if w.CheckpointEvery > 0 {
		segments := (layers + int64(w.CheckpointEvery) - 1) / int64(w.CheckpointEvery)
		ckptTensor := int64(w.Tokens()) * int64(cfg.DModel) * es
		f.Activations = segments*ckptTensor + int64(w.CheckpointEvery)*perLayer
	} else {
		f.Activations = layers * perLayer
	}

	// Embedding and output-layer activations; the MLM logits dominate.
	nB := int64(w.Tokens())
	f.Activations += nB * int64(cfg.DModel) * es // embedding output
	if w.Mode == Pretraining {
		f.Activations += nB * int64(cfg.Vocab) * es // MLM logits/probs
	}
	return f
}

// MemScale describes the memory-scaling techniques internal/memscale
// applies to run a large model on a small machine: gradient accumulation
// (forward/backward at a micro-batch, optimizer once per global batch),
// virtual optimizer-state sharding (one shard of m/v resident at a
// time), and activation spill (checkpoint tensors live in a disk arena
// instead of the heap).
type MemScale struct {
	// MicroB is the micro-batch the forward/backward actually executes;
	// 0 keeps the workload's full B (no accumulation).
	MicroB int
	// Shards is the virtual optimizer-state shard count; values <= 1
	// keep all optimizer state resident.
	Shards int
	// SpillCkpts moves the checkpoint activations (the √N-spaced layer
	// inputs) out of the resident set. Only meaningful with
	// CheckpointEvery > 0.
	SpillCkpts bool
}

// ScaledFootprint models the *resident* memory demand of a
// memory-scaled iteration — the number a measured peak RSS should be
// compared against. Accumulation shrinks activations to the micro-batch
// (gradients stay full-size: they accumulate across micro-batches),
// sharding divides the optimizer state, and spill subtracts the
// checkpoint tensors that now live on disk.
func ScaledFootprint(w Workload, s MemScale) MemoryFootprint {
	if s.MicroB > 0 {
		w.B = s.MicroB
	}
	f := Footprint(w)
	if s.Shards > 1 {
		k := int64(s.Shards)
		f.OptimizerState = (f.OptimizerState + k - 1) / k
	}
	if s.SpillCkpts && w.CheckpointEvery > 0 {
		layers := int64(w.Cfg.NumLayers)
		segments := (layers + int64(w.CheckpointEvery) - 1) / int64(w.CheckpointEvery)
		ckptTensor := int64(w.Tokens()) * int64(w.Cfg.DModel) * int64(w.Precision.ElemSize())
		f.Activations -= segments * ckptTensor
	}
	return f
}

// MaxBatchSize returns the largest mini-batch (in the workload's other
// parameters) whose footprint fits in capacity bytes, or 0 if none does.
func MaxBatchSize(w Workload, capacity int64) int {
	best := 0
	for b := 1; b <= 4096; b *= 2 {
		w.B = b
		if Footprint(w).Total() <= capacity {
			best = b
		} else {
			break
		}
	}
	return best
}
