package opgraph

import (
	"fmt"

	"demystbert/internal/kernels"
	"demystbert/internal/profile"
)

// Build enumerates every kernel of one training iteration of the workload:
// forward, backward (with optional checkpoint recompute), and the LAMB
// update. Kernel granularity mirrors the profiled PyTorch/ROCm stack the
// paper measured: GEMMs and batched GEMMs are single kernels; GeLU and the
// score pipeline run as separate element-wise kernels (Section 3.2.3);
// LayerNorm and per-layer LAMB stages are fused kernels (Section 6.1.1).
//
// With Workload.SliceWays = m > 1, the emitted graph is the per-device
// portion of m-way tensor slicing (Fig. 10): split GEMMs, replicated
// DR/RC/LN, and 1/m of the LAMB update. The four per-layer AllReduces are
// modeled by internal/dist, not here.
func Build(w Workload) *Graph {
	b := newBuilder(w)

	// Forward.
	b.embeddingFwd()
	b.transformerFwd(w.Cfg.NumLayers)
	switch w.Mode {
	case FineTuning:
		b.taskHeadFwd()
	case Inference:
		b.taskHeadFwd()
		// Inference ends at the forward pass (Section 7): no backprop,
		// no parameter update.
		return &Graph{Workload: w, Ops: b.ops}
	default:
		b.outputFwd()
	}

	// Backward (reverse order; each layer's backward has roughly 2× the
	// forward's GEMM work: d-activation and d-weight).
	if w.Mode == FineTuning {
		b.taskHeadBwd()
	} else {
		b.outputBwd()
	}
	if w.CheckpointEvery > 0 {
		// Each checkpointed segment is re-executed on demand during
		// backprop (Section 4: "recomputes activations after backprop of
		// every six Transformer layers"); the final segment's activations
		// are still live from the main forward pass and need no recompute.
		segments := (w.Cfg.NumLayers + w.CheckpointEvery - 1) / w.CheckpointEvery
		lastLen := w.Cfg.NumLayers - (segments-1)*w.CheckpointEvery
		b.recompute = true
		b.transformerFwd(w.Cfg.NumLayers - lastLen)
		b.recompute = false
	}
	b.transformerBwd(w.Cfg.NumLayers)
	b.embeddingBwd()

	// Update.
	switch w.Optimizer {
	case OptLAMB:
		b.lambUpdate()
	case OptAdam:
		b.adamUpdate()
	case OptSGD:
		b.sgdUpdate()
	}

	return &Graph{Workload: w, Ops: b.ops}
}

type builder struct {
	w         Workload
	m         int // tensor-slicing ways (1 = single device)
	ops       []Op
	recompute bool
}

func newBuilder(w Workload) *builder {
	m := w.SliceWays
	if m < 1 {
		m = 1
	}
	if m > 1 {
		cfg := w.Cfg
		// The head count and hidden dimensions must divide evenly; the
		// vocabulary is padded to a multiple of m, as Megatron-LM does.
		if cfg.Heads%m != 0 || cfg.DFF%m != 0 || cfg.DModel%m != 0 {
			panic(fmt.Sprintf("opgraph: %d-way slicing does not divide h=%d, d_ff=%d, d_model=%d",
				m, cfg.Heads, cfg.DFF, cfg.DModel))
		}
	}
	return &builder{w: w, m: m}
}

func (b *builder) es() int { return b.w.Precision.ElemSize() }

func (b *builder) add(op Op) {
	if op.Repeat == 0 {
		op.Repeat = 1
	}
	if op.ElemSize == 0 {
		op.ElemSize = b.es()
	}
	if b.recompute {
		// Recomputed forward kernels are part of the backward phase's
		// wall time but keep their forward cost structure.
		op.Name = op.Name + "_recompute"
	}
	b.ops = append(b.ops, op)
}

// gemm appends a GEMM op.
func (b *builder) gemm(name string, cat profile.Category, ph profile.Phase, class LayerClass, shape GEMMShape, repeat int) {
	es := b.es()
	b.add(Op{
		Name:     name,
		Category: cat,
		Phase:    ph,
		Class:    class,
		GEMM:     &shape,
		FLOPs:    shape.FLOPs(),
		Bytes:    shape.Bytes(es),
		Repeat:   repeat,
	})
}

// ew appends an element-wise kernel over n elements.
func (b *builder) ew(name string, cat profile.Category, ph profile.Phase, class LayerClass, n int, opsPerElem, arrays int, repeat int) {
	es := b.es()
	b.add(Op{
		Name:     name,
		Category: cat,
		Phase:    ph,
		Class:    class,
		FLOPs:    kernels.EWFLOPs(n, opsPerElem),
		Bytes:    int64(n) * int64(arrays) * int64(es),
		Repeat:   repeat,
	})
}

// embeddingFwd: gather of token+position+segment rows, LayerNorm, dropout.
// The embedding is replicated under tensor slicing (it is not one of the
// split layers in Fig. 10).
func (b *builder) embeddingFwd() {
	w := b.w
	nB := w.Tokens()
	d := w.Cfg.DModel
	act := nB * d
	b.ew("embedding_gather", profile.CatEmbedding, profile.Forward, ClassEmbedding, act, 2, 4, 1)
	b.ew("embedding_ln", profile.CatEmbedding, profile.Forward, ClassEmbedding, act, 8, 2, 1)
	b.ew("embedding_dropout", profile.CatEmbedding, profile.Forward, ClassEmbedding, act, 1, 3, 1)
}

func (b *builder) embeddingBwd() {
	w := b.w
	act := w.Tokens() * w.Cfg.DModel
	b.ew("embedding_dropout_bwd", profile.CatEmbedding, profile.Backward, ClassEmbedding, act, 1, 3, 1)
	b.ew("embedding_ln_bwd", profile.CatEmbedding, profile.Backward, ClassEmbedding, act, 14, 4, 1)
	b.ew("embedding_scatter", profile.CatEmbedding, profile.Backward, ClassEmbedding, act, 3, 4, 1)
}

// transformerFwd emits the forward kernels of `layers` Transformer layers.
// Under m-way slicing, projection output features, attention heads, and
// the FC intermediate dimension are each split m ways (Fig. 10b);
// dropout/residual/LayerNorm replicate the full activation.
func (b *builder) transformerFwd(layers int) {
	if layers == 0 {
		return
	}
	w := b.w
	cfg := w.Cfg
	m := b.m
	n, B := w.SeqLen, w.B
	d, ff := cfg.DModel, cfg.DFF
	h := cfg.Heads
	dh := d / h
	dm, hm, ffm := d/m, h/m, ff/m
	nB := n * B
	act := nB * d            // full token activations (replicated ops)
	actQ := nB * dm          // per-device projection activations
	scores := B * hm * n * n // per-device attention scores
	actFF := nB * ffm

	// Q/K/V projections: Table 2b "Linear" FWD d_model × n·B × d_model;
	// column-split to d/m output features per device under slicing.
	b.gemm("linear_qkv_fwd", profile.CatLinear, profile.Forward, ClassTransformer,
		GEMMShape{TransA: false, TransB: false, M: dm, N: nB, K: d, Batch: 1}, 3*layers)
	b.ew("split_heads", profile.CatOther, profile.Forward, ClassTransformer, 3*actQ, 0, 2, layers)

	// Attention scores: Table 2b "Attn. Score" FWD n × n × d/h, B·h GEMMs
	// (B·h/m per device).
	b.gemm("attn_score_bgemm", profile.CatAttnBGEMM, profile.Forward, ClassTransformer,
		GEMMShape{TransA: false, TransB: true, M: n, N: n, K: dh, Batch: B * hm}, layers)

	// Scale, mask, softmax, dropout over the score matrix: four separate
	// kernels as the paper profiles (Section 3.2.3), or the fused
	// scale+mask+softmax variant of the Section 6.1.1 optimization.
	if w.FusedAttention {
		b.ew("attn_scale_mask_softmax_fused", profile.CatScaleMaskSM, profile.Forward, ClassTransformer, scores, 6, 2, layers)
	} else {
		b.ew("attn_scale", profile.CatScaleMaskSM, profile.Forward, ClassTransformer, scores, 1, 2, layers)
		b.ew("attn_mask", profile.CatScaleMaskSM, profile.Forward, ClassTransformer, scores, 1, 3, layers)
		b.ew("attn_softmax", profile.CatScaleMaskSM, profile.Forward, ClassTransformer, scores, 4, 2, layers)
	}
	b.ew("attn_dropout", profile.CatScaleMaskSM, profile.Forward, ClassTransformer, scores, 1, 2, layers)

	// Weighted value sum: Table 2b "Attn. O/p" FWD d/h × n × n, B·h GEMMs.
	b.gemm("attn_output_bgemm", profile.CatAttnBGEMM, profile.Forward, ClassTransformer,
		GEMMShape{TransA: false, TransB: false, M: dh, N: n, K: n, Batch: B * hm}, layers)
	// Layout/contiguity kernels the framework interleaves with the
	// batched GEMMs (permute + contiguous on scores and context).
	b.ew("attn_permute", profile.CatOther, profile.Forward, ClassTransformer, scores, 0, 2, layers)
	b.ew("merge_heads", profile.CatOther, profile.Forward, ClassTransformer, actQ, 0, 2, layers)

	// Attention output projection (4th Linear GEMM): row-split weight,
	// producing partial sums that the TS AllReduce combines.
	b.gemm("linear_proj_fwd", profile.CatLinear, profile.Forward, ClassTransformer,
		GEMMShape{TransA: false, TransB: false, M: d, N: nB, K: dm, Batch: 1}, layers)

	// Attention block DR + RC + LN (replicated under slicing).
	b.ew("attn_block_dropout", profile.CatDRRCLN, profile.Forward, ClassTransformer, act, 1, 2, layers)
	b.ew("attn_residual", profile.CatDRRCLN, profile.Forward, ClassTransformer, act, 1, 3, layers)
	b.ew("attn_layernorm", profile.CatDRRCLN, profile.Forward, ClassTransformer, act, 8, 2, layers)

	// FC-1: Table 2b d_ff × n·B × d_model, column-split to d_ff/m.
	b.gemm("fc1_fwd", profile.CatFCGEMM, profile.Forward, ClassTransformer,
		GEMMShape{TransA: false, TransB: false, M: ffm, N: nB, K: d, Batch: 1}, layers)

	// GeLU: the paper's Eq. 1 executed as an erf kernel followed by the
	// element-wise combine (scale/add/multiply) kernel over the d_ff-wide
	// activation (Section 3.2.3).
	b.ew("gelu_erf", profile.CatGeLU, profile.Forward, ClassTransformer, actFF, 3, 2, layers)
	b.ew("gelu_combine", profile.CatGeLU, profile.Forward, ClassTransformer, actFF, 3, 3, layers)

	// FC-2: Table 2b d_model × n·B × d_ff, row-split along d_ff.
	b.gemm("fc2_fwd", profile.CatFCGEMM, profile.Forward, ClassTransformer,
		GEMMShape{TransA: false, TransB: false, M: d, N: nB, K: ffm, Batch: 1}, layers)

	// FC block DR + RC + LN (replicated under slicing).
	b.ew("ff_block_dropout", profile.CatDRRCLN, profile.Forward, ClassTransformer, act, 1, 2, layers)
	b.ew("ff_residual", profile.CatDRRCLN, profile.Forward, ClassTransformer, act, 1, 3, layers)
	b.ew("ff_layernorm", profile.CatDRRCLN, profile.Forward, ClassTransformer, act, 8, 2, layers)
}

// transformerBwd emits the backward kernels: per GEMM one d-activation and
// one d-weight GEMM (Table 2b BWD columns); per EW kernel one gradient
// kernel.
func (b *builder) transformerBwd(layers int) {
	w := b.w
	cfg := w.Cfg
	m := b.m
	n, B := w.SeqLen, w.B
	d, ff := cfg.DModel, cfg.DFF
	h := cfg.Heads
	dh := d / h
	dm, hm, ffm := d/m, h/m, ff/m
	nB := n * B
	act := nB * d
	actQ := nB * dm
	scores := B * hm * n * n
	actFF := nB * ffm

	// FC block DR+RC+LN backward (replicated).
	b.ew("ff_layernorm_bwd", profile.CatDRRCLN, profile.Backward, ClassTransformer, act, 14, 4, layers)
	b.ew("ff_residual_bwd", profile.CatDRRCLN, profile.Backward, ClassTransformer, act, 1, 3, layers)
	b.ew("ff_block_dropout_bwd", profile.CatDRRCLN, profile.Backward, ClassTransformer, act, 1, 3, layers)

	// FC-2 backward: d-act d_ff × n·B × d_model; d-wgt d_ff × d_model × n·B.
	b.gemm("fc2_bwd_dgrad", profile.CatFCGEMM, profile.Backward, ClassTransformer,
		GEMMShape{TransA: true, TransB: false, M: ffm, N: nB, K: d, Batch: 1}, layers)
	b.gemm("fc2_bwd_wgrad", profile.CatFCGEMM, profile.Backward, ClassTransformer,
		GEMMShape{TransA: false, TransB: true, M: ffm, N: d, K: nB, Batch: 1}, layers)

	// GeLU backward: the cdf/pdf kernel and the gradient combine.
	b.ew("gelu_bwd_cdfpdf", profile.CatGeLU, profile.Backward, ClassTransformer, actFF, 5, 2, layers)
	b.ew("gelu_bwd_combine", profile.CatGeLU, profile.Backward, ClassTransformer, actFF, 3, 3, layers)

	// FC-1 backward: d-act d_model × n·B × d_ff; d-wgt d_model × d_ff × n·B.
	b.gemm("fc1_bwd_dgrad", profile.CatFCGEMM, profile.Backward, ClassTransformer,
		GEMMShape{TransA: true, TransB: false, M: d, N: nB, K: ffm, Batch: 1}, layers)
	b.gemm("fc1_bwd_wgrad", profile.CatFCGEMM, profile.Backward, ClassTransformer,
		GEMMShape{TransA: false, TransB: true, M: d, N: ffm, K: nB, Batch: 1}, layers)

	// Attention block DR+RC+LN backward (replicated).
	b.ew("attn_layernorm_bwd", profile.CatDRRCLN, profile.Backward, ClassTransformer, act, 14, 4, layers)
	b.ew("attn_residual_bwd", profile.CatDRRCLN, profile.Backward, ClassTransformer, act, 1, 3, layers)
	b.ew("attn_block_dropout_bwd", profile.CatDRRCLN, profile.Backward, ClassTransformer, act, 1, 2, layers)

	// Output projection backward (2 GEMMs).
	b.gemm("linear_proj_bwd_dgrad", profile.CatLinear, profile.Backward, ClassTransformer,
		GEMMShape{TransA: true, TransB: false, M: dm, N: nB, K: d, Batch: 1}, layers)
	b.gemm("linear_proj_bwd_wgrad", profile.CatLinear, profile.Backward, ClassTransformer,
		GEMMShape{TransA: false, TransB: true, M: d, N: dm, K: nB, Batch: 1}, layers)
	b.ew("merge_heads_bwd", profile.CatOther, profile.Backward, ClassTransformer, actQ, 0, 2, layers)

	// Attention output BGEMM backward: Table 2b "Attn. O/p" BWD rows.
	b.gemm("attn_output_bgemm_bwd_dgrad", profile.CatAttnBGEMM, profile.Backward, ClassTransformer,
		GEMMShape{TransA: false, TransB: true, M: n, N: n, K: dh, Batch: B * hm}, layers)
	b.gemm("attn_output_bgemm_bwd_wgrad", profile.CatAttnBGEMM, profile.Backward, ClassTransformer,
		GEMMShape{TransA: true, TransB: false, M: n, N: dh, K: n, Batch: B * hm}, layers)

	// Score pipeline backward.
	b.ew("attn_dropout_bwd", profile.CatScaleMaskSM, profile.Backward, ClassTransformer, scores, 1, 2, layers)
	b.ew("attn_softmax_bwd", profile.CatScaleMaskSM, profile.Backward, ClassTransformer, scores, 4, 3, layers)
	b.ew("attn_scale_bwd", profile.CatScaleMaskSM, profile.Backward, ClassTransformer, scores, 1, 2, layers)

	// Score BGEMM backward: Table 2b "Attn. Score" BWD rows.
	b.gemm("attn_score_bgemm_bwd_dgrad", profile.CatAttnBGEMM, profile.Backward, ClassTransformer,
		GEMMShape{TransA: false, TransB: false, M: n, N: dh, K: n, Batch: B * hm}, layers)
	b.gemm("attn_score_bgemm_bwd_wgrad", profile.CatAttnBGEMM, profile.Backward, ClassTransformer,
		GEMMShape{TransA: true, TransB: false, M: dh, N: n, K: n, Batch: B * hm}, layers)
	b.ew("attn_permute_bwd", profile.CatOther, profile.Backward, ClassTransformer, scores, 0, 2, layers)
	b.ew("split_heads_bwd", profile.CatOther, profile.Backward, ClassTransformer, 3*actQ, 0, 2, layers)

	// Q/K/V projection backward: 3 × (d-act + d-wgt) GEMMs, plus the
	// input-gradient accumulation across the three branches.
	b.gemm("linear_qkv_bwd_dgrad", profile.CatLinear, profile.Backward, ClassTransformer,
		GEMMShape{TransA: true, TransB: false, M: d, N: nB, K: dm, Batch: 1}, 3*layers)
	b.gemm("linear_qkv_bwd_wgrad", profile.CatLinear, profile.Backward, ClassTransformer,
		GEMMShape{TransA: false, TransB: true, M: dm, N: d, K: nB, Batch: 1}, 3*layers)
	b.ew("qkv_input_grad_sum", profile.CatOther, profile.Backward, ClassTransformer, act, 2, 4, layers)
}

// outputFwd: the classification layer for BERT's two unsupervised tasks.
// Under slicing, the vocabulary dimension of the decoder is split m ways
// (Megatron's vocab-parallel output layer).
func (b *builder) outputFwd() {
	w := b.w
	cfg := w.Cfg
	m := b.m
	nB := w.Tokens()
	d, v := cfg.DModel, cfg.Vocab
	dm, vm := d/m, (v+m-1)/m

	b.gemm("mlm_dense_fwd", profile.CatOutput, profile.Forward, ClassOutput,
		GEMMShape{M: dm, N: nB, K: d, Batch: 1}, 1)
	b.ew("mlm_gelu", profile.CatOutput, profile.Forward, ClassOutput, nB*dm, 5, 4, 1)
	b.ew("mlm_ln", profile.CatOutput, profile.Forward, ClassOutput, nB*d, 8, 2, 1)
	b.gemm("mlm_decoder_fwd", profile.CatOutput, profile.Forward, ClassOutput,
		GEMMShape{M: vm, N: nB, K: d, Batch: 1}, 1)
	b.ew("mlm_xent_fwd", profile.CatOutput, profile.Forward, ClassOutput, nB*vm, 4, 2, 1)
	// NSP head: B rows only — negligible, folded into one kernel.
	b.ew("nsp_head_fwd", profile.CatOutput, profile.Forward, ClassOutput, w.B*d, 8, 4, 1)
}

func (b *builder) outputBwd() {
	w := b.w
	cfg := w.Cfg
	m := b.m
	nB := w.Tokens()
	d, v := cfg.DModel, cfg.Vocab
	dm, vm := d/m, (v+m-1)/m

	b.ew("nsp_head_bwd", profile.CatOutput, profile.Backward, ClassOutput, w.B*d, 8, 4, 1)
	b.ew("mlm_xent_bwd", profile.CatOutput, profile.Backward, ClassOutput, nB*vm, 2, 2, 1)
	b.gemm("mlm_decoder_bwd_dgrad", profile.CatOutput, profile.Backward, ClassOutput,
		GEMMShape{TransA: true, TransB: false, M: d, N: nB, K: vm, Batch: 1}, 1)
	b.gemm("mlm_decoder_bwd_wgrad", profile.CatOutput, profile.Backward, ClassOutput,
		GEMMShape{TransA: false, TransB: true, M: vm, N: d, K: nB, Batch: 1}, 1)
	b.ew("mlm_ln_bwd", profile.CatOutput, profile.Backward, ClassOutput, nB*d, 14, 4, 1)
	b.ew("mlm_gelu_bwd", profile.CatOutput, profile.Backward, ClassOutput, nB*dm, 8, 4, 1)
	b.gemm("mlm_dense_bwd_dgrad", profile.CatOutput, profile.Backward, ClassOutput,
		GEMMShape{TransA: true, TransB: false, M: d, N: nB, K: dm, Batch: 1}, 1)
	b.gemm("mlm_dense_bwd_wgrad", profile.CatOutput, profile.Backward, ClassOutput,
		GEMMShape{TransA: false, TransB: true, M: dm, N: d, K: nB, Batch: 1}, 1)
}

// taskHeadFwd: a fine-tuning task head modeled on SQuAD's span
// classifier — a single d_model × 2 projection per token plus softmax
// over positions. The paper notes such heads are simpler than the
// pre-training tasks and a negligible component (Section 7).
func (b *builder) taskHeadFwd() {
	w := b.w
	nB := w.Tokens()
	d := w.Cfg.DModel
	b.gemm("task_head_fwd", profile.CatOutput, profile.Forward, ClassOutput,
		GEMMShape{M: 2, N: nB, K: d, Batch: 1}, 1)
	b.ew("task_softmax_fwd", profile.CatOutput, profile.Forward, ClassOutput, 2*nB, 4, 2, 1)
}

func (b *builder) taskHeadBwd() {
	w := b.w
	nB := w.Tokens()
	d := w.Cfg.DModel
	b.ew("task_softmax_bwd", profile.CatOutput, profile.Backward, ClassOutput, 2*nB, 2, 2, 1)
	b.gemm("task_head_bwd_dgrad", profile.CatOutput, profile.Backward, ClassOutput,
		GEMMShape{TransA: true, TransB: false, M: d, N: nB, K: 2, Batch: 1}, 1)
	b.gemm("task_head_bwd_wgrad", profile.CatOutput, profile.Backward, ClassOutput,
		GEMMShape{TransA: false, TransB: true, M: 2, N: d, K: nB, Batch: 1}, 1)
}

// lambUpdate: the global gradient-norm reduction followed by the two LAMB
// stages, all in FP32 (Sections 2.4, 3.2.3). As the paper describes, the
// per-layer LAMB operations arrive pre-fused into one Stage-1 and one
// Stage-2 kernel per model layer (Section 6.1.1: "LAMB operations of a
// single layer are already fused in PyTorch"), each accessing that layer's
// weights, gradients, and optimizer state. Under m-way slicing each
// device updates 1/m of every group (Takeaway 12).
func (b *builder) lambUpdate() {
	const fp32 = 4
	groups := ParamGroups(b.w.Cfg)

	var totalParams int64
	for _, t := range groups {
		totalParams += int64(t.Size) / int64(b.m)
	}
	// Global L2 norm over all gradients: one read of the model's
	// gradients; serializes the update against the entire backprop.
	b.add(Op{
		Name:     "lamb_global_gradnorm",
		Category: profile.CatLAMBStage1,
		Phase:    profile.Update,
		Class:    ClassLAMB,
		FLOPs:    2 * totalParams,
		Bytes:    totalParams * fp32,
		ElemSize: fp32,
		Repeat:   1,
	})
	for _, t := range groups {
		n := int64(t.Size) / int64(b.m)
		// Stage 1 reads g, m, v, w and writes m, v, update.
		b.add(Op{
			Name:     "lamb_stage1",
			Category: profile.CatLAMBStage1,
			Phase:    profile.Update,
			Class:    ClassLAMB,
			FLOPs:    12 * n,
			Bytes:    7 * n * fp32,
			ElemSize: fp32,
			Repeat:   1,
		})
		// Stage 2 reads update, w (incl. norms) and writes w.
		b.add(Op{
			Name:     "lamb_stage2",
			Category: profile.CatLAMBStage2,
			Phase:    profile.Update,
			Class:    ClassLAMB,
			FLOPs:    6 * n,
			Bytes:    3 * n * fp32,
			ElemSize: fp32,
			Repeat:   1,
		})
	}
}

// adamUpdate: fused multi-tensor Adam (the paper's footnote-2 alternate):
// per chunk of parameter tensors, one kernel reading g, m, v, w and
// writing m, v, w — no global norm, no second stage.
func (b *builder) adamUpdate() {
	const fp32 = 4
	const chunk = 320 // tensors per multi-tensor launch (apex-style)
	tensors := ParamTensors(b.w.Cfg)
	for lo := 0; lo < len(tensors); lo += chunk {
		hi := lo + chunk
		if hi > len(tensors) {
			hi = len(tensors)
		}
		var n int64
		for _, t := range tensors[lo:hi] {
			n += int64(t.Size) / int64(b.m)
		}
		b.add(Op{
			Name:     "adam_fused_multitensor",
			Category: profile.CatOptimizer,
			Phase:    profile.Update,
			Class:    ClassLAMB, // update-phase class for Fig. 3 grouping
			FLOPs:    11 * n,
			Bytes:    7 * n * fp32,
			ElemSize: fp32,
			Repeat:   1,
		})
	}
}

// sgdUpdate: w -= lr·g, one kernel per parameter group.
func (b *builder) sgdUpdate() {
	const fp32 = 4
	for _, g := range ParamGroups(b.w.Cfg) {
		n := int64(g.Size) / int64(b.m)
		b.add(Op{
			Name:     "sgd_apply",
			Category: profile.CatOptimizer,
			Phase:    profile.Update,
			Class:    ClassLAMB,
			FLOPs:    2 * n,
			Bytes:    3 * n * fp32,
			ElemSize: fp32,
			Repeat:   1,
		})
	}
}
