package opgraph

import (
	"testing"

	"demystbert/internal/model"
)

func TestFootprintComponents(t *testing.T) {
	cfg := model.BERTLarge()
	w := Phase1(cfg, 32, FP32)
	f := Footprint(w)
	params := int64(cfg.ParamCount())
	if f.Weights != params*4 {
		t.Fatalf("weights %d, want %d", f.Weights, params*4)
	}
	if f.OptimizerState != 2*params*4 {
		t.Fatalf("optimizer state %d, want %d", f.OptimizerState, 2*params*4)
	}
	if f.Activations <= 0 || f.Total() <= f.Weights {
		t.Fatal("activations missing from footprint")
	}
}

func TestFootprintScale(t *testing.T) {
	// BERT-Large Ph1-B32-FP32 without checkpointing needs tens of GB of
	// activations — beyond a 32 GB device once weights+state are added —
	// which is exactly why checkpointing exists (Section 4).
	w := Phase1(model.BERTLarge(), 32, FP32)
	noCkpt := Footprint(w).Total()
	if noCkpt < 12e9 {
		t.Fatalf("BERT-Large B32 footprint %d implausibly small", noCkpt)
	}

	w.CheckpointEvery = 6
	ck := Footprint(w)
	if ck.Total() >= noCkpt {
		t.Fatal("checkpointing must reduce the footprint")
	}
	// Activations specifically shrink several-fold (√N checkpoints + one
	// live segment vs all N layers).
	full := Footprint(Phase1(model.BERTLarge(), 32, FP32))
	if ratio := float64(full.Activations) / float64(ck.Activations); ratio < 2.5 {
		t.Fatalf("checkpointing activation reduction only %.2fx", ratio)
	}
}

func TestCheckpointingEnablesLargerBatch(t *testing.T) {
	// The paper's stated purpose: checkpointing "enables training a large
	// model or a model with larger B on a single device". On a 32 GB
	// MI100, the max batch must grow when checkpointing is on.
	const capacity = 32e9
	w := Phase1(model.BERTLarge(), 1, FP32)
	plain := MaxBatchSize(w, capacity)
	w.CheckpointEvery = 6
	ck := MaxBatchSize(w, capacity)
	if ck <= plain {
		t.Fatalf("checkpointing must raise max batch: %d vs %d", ck, plain)
	}
	if plain < 1 {
		t.Fatalf("BERT-Large must fit at some batch size on 32 GB, got %d", plain)
	}
}

func TestMixedPrecisionShrinksActivations(t *testing.T) {
	fp32 := Footprint(Phase1(model.BERTLarge(), 32, FP32))
	mp := Footprint(Phase1(model.BERTLarge(), 32, Mixed))
	if mp.Activations >= fp32.Activations {
		t.Fatal("MP must halve activation storage")
	}
	// Optimizer state stays FP32-sized.
	if mp.OptimizerState != fp32.OptimizerState {
		t.Fatal("optimizer state must be precision-invariant")
	}
	// But MP adds the FP16 weight copy.
	if mp.Weights <= fp32.Weights {
		t.Fatal("MP keeps FP32 masters plus an FP16 working copy")
	}
}

func TestFootprintLinearInBatch(t *testing.T) {
	w4 := Footprint(Phase1(model.BERTLarge(), 4, FP32))
	w8 := Footprint(Phase1(model.BERTLarge(), 8, FP32))
	if w8.Activations != 2*w4.Activations {
		t.Fatalf("activations not linear in B: %d vs %d", w8.Activations, w4.Activations)
	}
	if w8.Weights != w4.Weights {
		t.Fatal("weights must not depend on B")
	}
}

func TestScaledFootprintShrinksResidentSet(t *testing.T) {
	cfg := model.BERTLarge()
	w := Phase1(cfg, 8, FP32)
	w.CheckpointEvery = 6
	full := Footprint(w)
	scaled := ScaledFootprint(w, MemScale{MicroB: 1, Shards: 8, SpillCkpts: true})

	params := int64(cfg.ParamCount())
	// Weights and gradients stay fully resident (grads accumulate
	// across micro-batches); optimizer state shrinks to one shard.
	if scaled.Weights != full.Weights || scaled.Gradients != full.Gradients {
		t.Fatal("weights/gradients must stay full-size under memory scaling")
	}
	if want := (2*params*4 + 7) / 8; scaled.OptimizerState != want {
		t.Fatalf("sharded optimizer state %d, want %d", scaled.OptimizerState, want)
	}
	// Activations shrink to the micro-batch, minus the spilled checkpoints.
	wMicro := w
	wMicro.B = 1
	micro := Footprint(wMicro)
	if scaled.Activations >= micro.Activations {
		t.Fatalf("spill must shrink activations below the micro-batch footprint: %d vs %d",
			scaled.Activations, micro.Activations)
	}
	if scaled.Activations <= 0 {
		t.Fatal("live segment must remain resident")
	}
	if scaled.Total() >= full.Total() {
		t.Fatal("memory scaling must reduce the resident total")
	}
}

func TestScaledFootprintIdentityWhenDisabled(t *testing.T) {
	w := Phase1(model.BERTLarge(), 8, FP32)
	w.CheckpointEvery = 6
	if ScaledFootprint(w, MemScale{}) != Footprint(w) {
		t.Fatal("zero-value MemScale must be the plain footprint")
	}
}

func TestMaxBatchSizeZeroWhenTooSmall(t *testing.T) {
	if got := MaxBatchSize(Phase1(model.BERTLarge(), 1, FP32), 1<<20); got != 0 {
		t.Fatalf("1 MiB device fits batch %d?", got)
	}
}
