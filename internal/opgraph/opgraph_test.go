package opgraph

import (
	"strings"
	"testing"
	"testing/quick"

	"demystbert/internal/model"
	"demystbert/internal/profile"
)

func findGEMM(t *testing.T, g *Graph, name string) Op {
	t.Helper()
	for _, op := range g.Ops {
		if op.Name == name {
			if op.GEMM == nil {
				t.Fatalf("op %s is not a GEMM", name)
			}
			return op
		}
	}
	t.Fatalf("GEMM %s not found", name)
	return Op{}
}

// TestTable2b verifies every GEMM dimension of Table 2b for BERT-Large at
// Phase-1 (n=128, B=32): Linear, Attn. Score, Attn. O/p, FC-1, FC-2, each
// with its FWD, BWD-grad-activation, and BWD-grad-weight manifestations.
func TestTable2b(t *testing.T) {
	cfg := model.BERTLarge()
	const B, n = 32, 128
	g := Build(Phase1(cfg, B, FP32))
	d, ff, h := cfg.DModel, cfg.DFF, cfg.Heads
	dh := d / h
	nB := n * B

	check := func(name string, m, nn, k, batch int) {
		t.Helper()
		op := findGEMM(t, g, name)
		s := op.GEMM
		if s.M != m || s.N != nn || s.K != k || s.Batch != batch {
			t.Errorf("%s: got %dx%dx%d b%d, want %dx%dx%d b%d",
				name, s.M, s.N, s.K, s.Batch, m, nn, k, batch)
		}
	}

	// Linear: FWD d×nB×d; BWD act d×nB×d; BWD wgt d×d×nB.
	check("linear_qkv_fwd", d, nB, d, 1)
	check("linear_qkv_bwd_dgrad", d, nB, d, 1)
	check("linear_qkv_bwd_wgrad", d, d, nB, 1)

	// Attn Score: FWD n×n×(d/h) with B·h batch; BWD rows per Table 2b.
	check("attn_score_bgemm", n, n, dh, B*h)
	check("attn_score_bgemm_bwd_dgrad", n, dh, n, B*h)
	check("attn_score_bgemm_bwd_wgrad", dh, n, n, B*h)

	// Attn O/p: FWD (d/h)×n×n with B·h batch.
	check("attn_output_bgemm", dh, n, n, B*h)
	check("attn_output_bgemm_bwd_dgrad", n, n, dh, B*h)
	check("attn_output_bgemm_bwd_wgrad", n, dh, n, B*h)

	// FC-1: FWD dff×nB×d; BWD act d×nB×dff; BWD wgt d×dff×nB.
	check("fc1_fwd", ff, nB, d, 1)
	check("fc1_bwd_dgrad", d, nB, ff, 1)
	check("fc1_bwd_wgrad", d, ff, nB, 1)

	// FC-2: FWD d×nB×dff; BWD act dff×nB×d; BWD wgt dff×d×nB.
	check("fc2_fwd", d, nB, ff, 1)
	check("fc2_bwd_dgrad", ff, nB, d, 1)
	check("fc2_bwd_wgrad", ff, d, nB, 1)
}

func TestGEMMShapeHelpers(t *testing.T) {
	s := GEMMShape{M: 2, N: 3, K: 4, Batch: 5}
	if s.FLOPs() != 5*2*2*3*4 {
		t.Fatalf("FLOPs = %d", s.FLOPs())
	}
	if s.Bytes(4) != 5*4*(8+12+6) {
		t.Fatalf("Bytes = %d", s.Bytes(4))
	}
	if got := (GEMMShape{TransA: true, M: 1, N: 2, K: 3, Batch: 1}).Label(); got != "TN_1x2x3" {
		t.Fatalf("Label = %q", got)
	}
	if got := (GEMMShape{M: 1, N: 2, K: 3, Batch: 7}).Label(); got != "NN_1x2x3_b7" {
		t.Fatalf("batched Label = %q", got)
	}
}

func TestPrecision(t *testing.T) {
	if FP32.ElemSize() != 4 || Mixed.ElemSize() != 2 {
		t.Fatal("element sizes wrong")
	}
	if FP32.String() != "FP32" || Mixed.String() != "FP16" {
		t.Fatal("precision names wrong")
	}
}

func TestWorkloadNames(t *testing.T) {
	cfg := model.BERTLarge()
	if w := Phase1(cfg, 32, FP32); w.Name != "Ph1-B32-FP32" || w.SeqLen != 128 {
		t.Fatalf("Phase1 = %+v", w)
	}
	if w := Phase2(cfg, 4, Mixed); w.Name != "Ph2-B4-FP16" || w.SeqLen != 512 {
		t.Fatalf("Phase2 = %+v", w)
	}
	if Phase1(cfg, 32, FP32).Tokens() != 4096 {
		t.Fatal("Tokens wrong")
	}
}

func TestMixedPrecisionBytes(t *testing.T) {
	cfg := model.BERTLarge()
	fp32 := Build(Phase1(cfg, 32, FP32))
	mp := Build(Phase1(cfg, 32, Mixed))
	fc32 := findGEMM(t, fp32, "fc1_fwd")
	fc16 := findGEMM(t, mp, "fc1_fwd")
	if fc16.Bytes*2 != fc32.Bytes {
		t.Fatalf("MP GEMM bytes %d, FP32 %d: want exactly half", fc16.Bytes, fc32.Bytes)
	}
	if fc16.FLOPs != fc32.FLOPs {
		t.Fatal("precision must not change FLOPs")
	}
	// LAMB ops stay FP32 in both graphs.
	lambBytes := func(g *Graph) int64 {
		var n int64
		for _, op := range g.Ops {
			if op.Class == ClassLAMB {
				n += op.TotalBytes()
			}
		}
		return n
	}
	if lambBytes(fp32) != lambBytes(mp) {
		t.Fatal("LAMB traffic must be identical across precisions (FP32 master state)")
	}
}

func TestLAMBTrafficIsFourTimesModelReads(t *testing.T) {
	// Takeaway 7: LAMB stage 1 reads 4× the model size.
	cfg := model.BERTLarge()
	g := Build(Phase1(cfg, 32, FP32))
	var stage1Bytes, params int64
	for _, op := range g.Ops {
		if op.Name == "lamb_stage1" {
			stage1Bytes += op.TotalBytes()
		}
	}
	params = int64(cfg.ParamCount())
	// stage 1 = 4 reads + 3 writes per element.
	if want := 7 * params * 4; stage1Bytes != want {
		t.Fatalf("stage1 bytes %d, want %d (7 arrays × params × 4B)", stage1Bytes, want)
	}
}

func TestParamTensorsSumMatchesParamCount(t *testing.T) {
	for _, cfg := range []model.Config{model.BERTLarge(), model.BERTBase(), model.Tiny()} {
		var sum int
		for _, pt := range ParamTensors(cfg) {
			sum += pt.Size
		}
		if sum != cfg.ParamCount() {
			t.Errorf("ParamTensors sum %d != ParamCount %d", sum, cfg.ParamCount())
		}
	}
}

func TestParamGroupsSumMatchesParamCount(t *testing.T) {
	for _, cfg := range []model.Config{model.BERTLarge(), model.Tiny()} {
		var sum int
		for _, pg := range ParamGroups(cfg) {
			sum += pg.Size
		}
		if sum != cfg.ParamCount() {
			t.Errorf("ParamGroups sum %d != ParamCount %d", sum, cfg.ParamCount())
		}
	}
	// One group per layer plus embedding and heads.
	cfg := model.BERTLarge()
	if got := len(ParamGroups(cfg)); got != cfg.NumLayers+2 {
		t.Fatalf("groups = %d, want %d", got, cfg.NumLayers+2)
	}
}

func TestCheckpointingAddsRecomputeKernels(t *testing.T) {
	cfg := model.BERTLarge()
	base := Build(Phase1(cfg, 32, FP32))
	w := Phase1(cfg, 32, FP32)
	w.CheckpointEvery = 6
	ck := Build(w)
	inc := float64(ck.KernelCount())/float64(base.KernelCount()) - 1
	// Section 4: ~33% more kernels.
	if inc < 0.25 || inc > 0.40 {
		t.Fatalf("checkpoint kernel increase %.2f outside [0.25, 0.40]", inc)
	}
	found := false
	for _, op := range ck.Ops {
		if strings.HasSuffix(op.Name, "_recompute") {
			found = true
			if op.Phase != profile.Forward {
				t.Fatal("recompute ops keep forward cost structure")
			}
		}
	}
	if !found {
		t.Fatal("no recompute ops emitted")
	}
}

func TestOptNoneOmitsUpdate(t *testing.T) {
	w := Phase1(model.BERTLarge(), 32, FP32)
	w.Optimizer = OptNone
	g := Build(w)
	for _, op := range g.Ops {
		if op.Class == ClassLAMB {
			t.Fatal("OptNone graph contains LAMB ops")
		}
	}
}

func TestGEMMsReturnsAllGEMMOps(t *testing.T) {
	g := Build(Phase1(model.BERTLarge(), 32, FP32))
	gemms := g.GEMMs()
	// 5 Table-2b families × 3 manifestations + qkv/proj separation +
	// 4 output-layer GEMMs: at minimum 20 distinct GEMM entries.
	if len(gemms) < 20 {
		t.Fatalf("only %d GEMM ops found", len(gemms))
	}
	for _, op := range gemms {
		if op.GEMM == nil || op.FLOPs == 0 {
			t.Fatalf("malformed GEMM op %q", op.Name)
		}
	}
}

// Property: total FLOPs of forward+backward scale linearly with batch
// size (Obs. 3) while LAMB FLOPs stay constant.
func TestBatchScalingProperty(t *testing.T) {
	cfg := model.Tiny()
	f := func(seed uint64) bool {
		b := 1 + int(seed%8)
		g1 := Build(Phase1(cfg, b, FP32))
		g2 := Build(Phase1(cfg, 2*b, FP32))
		var fb1, fb2, l1, l2 int64
		for _, op := range g1.Ops {
			if op.Class == ClassLAMB {
				l1 += op.TotalFLOPs()
			} else {
				fb1 += op.TotalFLOPs()
			}
		}
		for _, op := range g2.Ops {
			if op.Class == ClassLAMB {
				l2 += op.TotalFLOPs()
			} else {
				fb2 += op.TotalFLOPs()
			}
		}
		return fb2 == 2*fb1 && l1 == l2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// Attention-score work scales quadratically with sequence length while
// linear/FC GEMMs scale linearly (Takeaway 10 / Section 3.3.1).
func TestSequenceLengthScaling(t *testing.T) {
	cfg := model.BERTLarge()
	flopsOf := func(g *Graph, name string) int64 {
		return findGEMM(t, g, name).TotalFLOPs()
	}
	g128 := Build(Workload{Cfg: cfg, B: 8, SeqLen: 128, Precision: FP32})
	g512 := Build(Workload{Cfg: cfg, B: 8, SeqLen: 512, Precision: FP32})

	if r := flopsOf(g512, "attn_score_bgemm") / flopsOf(g128, "attn_score_bgemm"); r != 16 {
		t.Fatalf("score BGEMM scaling with 4x n = %dx, want 16x (quadratic)", r)
	}
	if r := flopsOf(g512, "fc1_fwd") / flopsOf(g128, "fc1_fwd"); r != 4 {
		t.Fatalf("FC GEMM scaling with 4x n = %dx, want 4x (linear)", r)
	}
}

// Layer-width scaling: GEMM and LAMB work scale quadratically with
// d_model, other ops linearly (Takeaway 11 / Section 3.3.2).
func TestLayerWidthScaling(t *testing.T) {
	mk := func(d int) *Graph {
		cfg := model.BERTLarge()
		cfg.DModel = d
		cfg.DFF = 4 * d
		cfg.Heads = d / 64
		return Build(Phase1(cfg, 8, FP32))
	}
	g1, g2 := mk(1024), mk(2048)

	var fc1, fc2, lamb1, lamb2, ln1, ln2 int64
	sum := func(g *Graph, fc, lamb, ln *int64) {
		for _, op := range g.Ops {
			switch {
			case op.Name == "fc1_fwd":
				*fc += op.TotalFLOPs()
			case op.Class == ClassLAMB:
				*lamb += op.TotalFLOPs()
			case op.Name == "ff_layernorm":
				*ln += op.TotalFLOPs()
			}
		}
	}
	sum(g1, &fc1, &lamb1, &ln1)
	sum(g2, &fc2, &lamb2, &ln2)

	if r := float64(fc2) / float64(fc1); r != 4 {
		t.Fatalf("FC GEMM scaling with 2x width = %vx, want 4x", r)
	}
	// LAMB scales with parameter count: quadratic in width for the
	// transformer but sub-quadratic overall due to embedding tables.
	if r := float64(lamb2) / float64(lamb1); r < 3 || r > 4.2 {
		t.Fatalf("LAMB scaling with 2x width = %vx, want ~3.5-4x", r)
	}
	if r := float64(ln2) / float64(ln1); r != 2 {
		t.Fatalf("LayerNorm scaling with 2x width = %vx, want 2x (linear)", r)
	}
}

func TestLayerCountScaling(t *testing.T) {
	// Obs. 4: Transformer and LAMB work scale linearly with N.
	mk := func(n int) *Graph {
		cfg := model.BERTLarge()
		cfg.NumLayers = n
		return Build(Phase1(cfg, 8, FP32))
	}
	g24, g48 := mk(24), mk(48)
	var t24, t48 int64
	for _, op := range g24.Ops {
		if op.Class == ClassTransformer {
			t24 += op.TotalFLOPs()
		}
	}
	for _, op := range g48.Ops {
		if op.Class == ClassTransformer {
			t48 += op.TotalFLOPs()
		}
	}
	if t48 != 2*t24 {
		t.Fatalf("transformer FLOPs scaling with 2x layers: %d vs %d", t48, t24)
	}
}

func TestKernelCountsAndTotals(t *testing.T) {
	g := Build(Phase1(model.BERTLarge(), 32, FP32))
	if g.KernelCount() < 1000 {
		t.Fatalf("kernel count %d implausibly low for 24-layer training", g.KernelCount())
	}
	if g.TotalFLOPs() <= 0 || g.TotalBytes() <= 0 {
		t.Fatal("totals must be positive")
	}
	// FWD+BWD FLOPs should be roughly 3x the forward pass alone
	// (backprop ≈ 2× forward, Section 7).
	var fwd, bwd int64
	for _, op := range g.Ops {
		switch op.Phase {
		case profile.Forward:
			fwd += op.TotalFLOPs()
		case profile.Backward:
			bwd += op.TotalFLOPs()
		}
	}
	ratio := float64(bwd) / float64(fwd)
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("BWD/FWD FLOP ratio %.2f outside ~2x", ratio)
	}
}

func TestLayerClassString(t *testing.T) {
	for c, want := range map[LayerClass]string{
		ClassTransformer: "Transformer", ClassEmbedding: "Embedding",
		ClassOutput: "Output", ClassLAMB: "LAMB", ClassComm: "Comm",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
	if LayerClass(99).String() != "???" {
		t.Error("unknown class must render ???")
	}
}

func TestOpIntensity(t *testing.T) {
	op := Op{FLOPs: 100, Bytes: 50}
	if op.Intensity() != 2 {
		t.Fatalf("Intensity = %v", op.Intensity())
	}
	if (Op{FLOPs: 5}).Intensity() != 0 {
		t.Fatal("zero-byte intensity must be 0")
	}
}

// Fig. 6's core finding: FC GEMMs are compute-intense, linear GEMMs less
// so, attention batched GEMMs have very low intensity.
func TestGEMMIntensityOrdering(t *testing.T) {
	g := Build(Phase1(model.BERTLarge(), 32, FP32))
	fc := findGEMM(t, g, "fc1_fwd")
	lin := findGEMM(t, g, "linear_qkv_fwd")
	score := findGEMM(t, g, "attn_score_bgemm")
	if !(fc.Intensity() > lin.Intensity() && lin.Intensity() > score.Intensity()) {
		t.Fatalf("intensity ordering violated: FC=%.1f Linear=%.1f Score=%.1f",
			fc.Intensity(), lin.Intensity(), score.Intensity())
	}
	if score.Intensity() > 30 {
		t.Fatalf("attention BGEMM intensity %.1f should be low (memory-bound)", score.Intensity())
	}
}

// Property: Build is deterministic — identical workloads produce
// identical graphs (op-for-op).
func TestBuildDeterministicProperty(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := model.Tiny()
		b := 1 + int(seed%8)
		g1 := Build(Phase1(cfg, b, FP32))
		g2 := Build(Phase1(cfg, b, FP32))
		if len(g1.Ops) != len(g2.Ops) {
			return false
		}
		for i := range g1.Ops {
			a, bb := g1.Ops[i], g2.Ops[i]
			if a.Name != bb.Name || a.FLOPs != bb.FLOPs || a.Bytes != bb.Bytes || a.Repeat != bb.Repeat {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: m-way slicing reduces per-device FLOPs monotonically while
// replicated (DR+RC+LN) FLOPs stay constant.
func TestSlicingMonotoneProperty(t *testing.T) {
	cfg := model.BERTLarge()
	var prevGEMM int64 = 1 << 62
	for _, m := range []int{1, 2, 4, 8} {
		w := Phase1(cfg, 16, FP32)
		w.SliceWays = m
		g := Build(w)
		var gemm, drrcln int64
		for _, op := range g.Ops {
			if op.GEMM != nil && op.Class == ClassTransformer {
				gemm += op.TotalFLOPs()
			}
			if op.Category == profile.CatDRRCLN {
				drrcln += op.TotalFLOPs()
			}
		}
		if gemm >= prevGEMM {
			t.Fatalf("m=%d: per-device GEMM FLOPs did not shrink", m)
		}
		prevGEMM = gemm
		base := Build(Phase1(cfg, 16, FP32))
		var baseDR int64
		for _, op := range base.Ops {
			if op.Category == profile.CatDRRCLN {
				baseDR += op.TotalFLOPs()
			}
		}
		if drrcln != baseDR {
			t.Fatalf("m=%d: replicated DR+RC+LN FLOPs changed", m)
		}
	}
}

func TestFineTuningGraphSmallerThanPretraining(t *testing.T) {
	cfg := model.BERTLarge()
	pre := Build(Phase1(cfg, 32, FP32))
	w := Phase1(cfg, 32, FP32)
	w.Mode = FineTuning
	ft := Build(w)
	if ft.TotalFLOPs() >= pre.TotalFLOPs() {
		t.Fatal("fine-tuning graph must have fewer FLOPs (simpler head)")
	}
	if ft.KernelCount() >= pre.KernelCount() {
		t.Fatal("fine-tuning graph must have fewer kernels")
	}
}
