package optim

import (
	"math"
	"testing"

	"demystbert/internal/nn"
	"demystbert/internal/tensor"
)

// fillGrads writes the same pseudo-random gradients into each param set
// from a shared RNG stream, simulating one backward pass per iteration.
func fillGrads(r *tensor.RNG, paramSets ...[]*nn.Param) {
	ref := paramSets[0]
	for i := range ref {
		ref[i].Grad.FillUniform(r, -0.1, 0.1)
		for _, ps := range paramSets[1:] {
			copy(ps[i].Grad.Data(), ref[i].Grad.Data())
		}
	}
}

// TestMixedSkipApplyKeepsFusedUnfusedInSync is the regression for the
// step-count desync bug class: when loss-scale overflow skips optimizer
// steps, the fused and unfused Adam organizations must agree on how many
// bias-correction steps have elapsed — a desync makes the early-training
// 1/(1-β^t) terms diverge wildly between the two. The skip pattern mixes
// applied and skipped iterations; both organizations must end with the
// same step count and near-identical weights, and each must be bitwise
// deterministic across reruns.
func TestMixedSkipApplyKeepsFusedUnfusedInSync(t *testing.T) {
	skip := []bool{false, true, false, false, true, true, false, false}

	run := func(fused bool) ([]*nn.Param, int) {
		rr := tensor.NewRNG(77)
		params := []*nn.Param{makeParam("a", rr, 33), makeParam("b", rr, 17)}
		o := NewAdam(0.01, fused)
		ctx := nn.NewCtx(1)
		gr := tensor.NewRNG(55)
		for _, s := range skip {
			fillGrads(gr, params)
			if s {
				continue // loss-scale overflow: no optimizer call at all
			}
			o.Step(ctx, params)
		}
		return params, o.StepCount()
	}

	fusedP, fusedSteps := run(true)
	unfusedP, unfusedSteps := run(false)
	applied := 0
	for _, s := range skip {
		if !s {
			applied++
		}
	}
	if fusedSteps != applied || unfusedSteps != applied {
		t.Fatalf("step counts desynced: fused %d, unfused %d, want %d",
			fusedSteps, unfusedSteps, applied)
	}
	for i := range fusedP {
		fd, ud := fusedP[i].Value.Data(), unfusedP[i].Value.Data()
		for j := range fd {
			if math.Abs(float64(fd[j]-ud[j])) > 1e-5 {
				t.Fatalf("param %d elem %d: fused %v vs unfused %v (bias correction desynced?)",
					i, j, fd[j], ud[j])
			}
		}
	}

	// Determinism: the same skip pattern reruns bitwise-identically.
	fusedP2, _ := run(true)
	for i := range fusedP {
		a, b := fusedP[i].Value.Data(), fusedP2[i].Value.Data()
		for j := range a {
			if math.Float32bits(a[j]) != math.Float32bits(b[j]) {
				t.Fatalf("fused rerun diverged at param %d elem %d: %v vs %v", i, j, a[j], b[j])
			}
		}
	}
}

// TestAdamShardedApplyBitwiseMatchesStep pins the prepare/apply contract:
// one PrepareStep followed by per-shard Apply calls advances the step
// count once and produces bitwise the same weights and state as a single
// whole-model Step.
func TestAdamShardedApplyBitwiseMatchesStep(t *testing.T) {
	mk := func() []*nn.Param {
		rr := tensor.NewRNG(31)
		return []*nn.Param{
			makeParam("a", rr, 40), makeParam("b", rr, 25),
			makeParam("c", rr, 13), makeParam("d", rr, 7),
		}
	}
	whole, sharded := mk(), mk()
	ow, os := NewAdam(0.02, true), NewAdam(0.02, true)
	ctx := nn.NewCtx(1)
	gr := tensor.NewRNG(91)
	for iter := 0; iter < 3; iter++ {
		fillGrads(gr, whole, sharded)
		ow.Step(ctx, whole)
		st := os.PrepareStep()
		st.Apply(ctx, sharded[:2])
		st.Apply(ctx, sharded[2:])
	}
	if ow.StepCount() != 3 || os.StepCount() != 3 {
		t.Fatalf("step counts: whole %d, sharded %d, want 3", ow.StepCount(), os.StepCount())
	}
	for i := range whole {
		wd, sd := whole[i].Value.Data(), sharded[i].Value.Data()
		for j := range wd {
			if math.Float32bits(wd[j]) != math.Float32bits(sd[j]) {
				t.Fatalf("param %d elem %d: whole %v != sharded %v", i, j, wd[j], sd[j])
			}
		}
		wm, wv := ow.State(whole[i])
		sm, sv := os.State(sharded[i])
		for j := range wm.Data() {
			if wm.Data()[j] != sm.Data()[j] || wv.Data()[j] != sv.Data()[j] {
				t.Fatalf("param %d state elem %d diverged", i, j)
			}
		}
	}
}

// TestLAMBShardedApplyBitwiseMatchesStep is the LAMB counterpart: the
// global clip scale is computed once from ALL parameters, then the update
// is applied shard by shard. Both the per-shard interleaving of stage 1
// and stage 2 and the once-per-iteration step count must leave weights
// bitwise identical to the whole-model Step.
func TestLAMBShardedApplyBitwiseMatchesStep(t *testing.T) {
	mk := func() []*nn.Param {
		rr := tensor.NewRNG(47)
		return []*nn.Param{
			makeParam("a", rr, 64), makeParam("b", rr, 32), makeParam("c", rr, 9),
		}
	}
	whole, sharded := mk(), mk()
	ow, os := NewLAMB(0.01), NewLAMB(0.01)
	ctx := nn.NewCtx(1)
	gr := tensor.NewRNG(17)
	for iter := 0; iter < 3; iter++ {
		fillGrads(gr, whole, sharded)
		ow.Step(ctx, whole)
		st := os.PrepareStep(ctx, sharded) // clip norm over ALL params
		st.Apply(ctx, sharded[:1])
		st.Apply(ctx, sharded[1:])
	}
	if ow.StepCount() != 3 || os.StepCount() != 3 {
		t.Fatalf("step counts: whole %d, sharded %d, want 3", ow.StepCount(), os.StepCount())
	}
	for i := range whole {
		wd, sd := whole[i].Value.Data(), sharded[i].Value.Data()
		for j := range wd {
			if math.Float32bits(wd[j]) != math.Float32bits(sd[j]) {
				t.Fatalf("param %d elem %d: whole %v != sharded %v", i, j, wd[j], sd[j])
			}
		}
	}
}
