package optim

import (
	"math"
	"testing"

	"demystbert/internal/nn"
)

func TestLossScalerUnscales(t *testing.T) {
	s := NewDynamicLossScaler()
	s.Scale = 1024
	p := nn.NewParam("w", 4)
	p.Grad.Fill(1024 * 0.5)
	if !s.UnscaleAndCheck([]*nn.Param{p}) {
		t.Fatal("finite gradients rejected")
	}
	for _, g := range p.Grad.Data() {
		if g != 0.5 {
			t.Fatalf("unscaled gradient %v, want 0.5", g)
		}
	}
}

func TestLossScalerBacksOffOnOverflow(t *testing.T) {
	s := NewDynamicLossScaler()
	s.Scale = 1024
	p := nn.NewParam("w", 4)
	p.Grad.Fill(1)
	p.Grad.Data()[2] = float32(math.Inf(1))
	if s.UnscaleAndCheck([]*nn.Param{p}) {
		t.Fatal("overflow not detected")
	}
	if s.Scale != 512 {
		t.Fatalf("scale after backoff %v, want 512", s.Scale)
	}
	if s.Skipped != 1 {
		t.Fatalf("Skipped = %d", s.Skipped)
	}
	for _, g := range p.Grad.Data() {
		if g != 0 {
			t.Fatal("overflowed gradients must be zeroed (step skipped)")
		}
	}
}

func TestLossScalerGrowsAfterCleanRun(t *testing.T) {
	s := NewDynamicLossScaler()
	s.Scale = 8
	s.GrowthInterval = 3
	p := nn.NewParam("w", 2)
	for i := 0; i < 3; i++ {
		p.Grad.Fill(8)
		if !s.UnscaleAndCheck([]*nn.Param{p}) {
			t.Fatal("clean step rejected")
		}
	}
	if s.Scale != 16 {
		t.Fatalf("scale after growth %v, want 16", s.Scale)
	}
}

func TestLossScalerGrowthCapped(t *testing.T) {
	s := NewDynamicLossScaler()
	s.GrowthInterval = 1
	p := nn.NewParam("w", 2)
	// Far more clean steps than doublings to +Inf (2^15 → Inf in ~113
	// doublings at float32); the cap must hold the scale at 2^24.
	for i := 0; i < 200; i++ {
		p.Grad.Fill(1)
		if !s.UnscaleAndCheck([]*nn.Param{p}) {
			t.Fatalf("clean step %d rejected", i)
		}
	}
	if s.Scale != DefaultMaxLossScale {
		t.Fatalf("scale after 200 clean steps = %v, want cap %v", s.Scale, float32(DefaultMaxLossScale))
	}
	if math.IsInf(float64(s.Scale), 0) {
		t.Fatal("scale grew to +Inf")
	}
}

func TestLossScalerZeroValueStillCapped(t *testing.T) {
	// A hand-rolled scaler that never set MaxScale gets the default cap
	// rather than unbounded growth.
	s := &DynamicLossScaler{Scale: 1 << 23, GrowthFactor: 2, BackoffFactor: 0.5, GrowthInterval: 1}
	p := nn.NewParam("w", 1)
	for i := 0; i < 5; i++ {
		p.Grad.Fill(1)
		s.UnscaleAndCheck([]*nn.Param{p})
	}
	if s.Scale != DefaultMaxLossScale {
		t.Fatalf("zero-value MaxScale: scale = %v, want %v", s.Scale, float32(DefaultMaxLossScale))
	}
}

func TestLossScalerSkipCounter(t *testing.T) {
	before := lossScaleSkippedSteps.Value()
	s := NewDynamicLossScaler()
	p := nn.NewParam("w", 1)
	p.Grad.Data()[0] = float32(math.Inf(1))
	s.UnscaleAndCheck([]*nn.Param{p})
	if got := lossScaleSkippedSteps.Value() - before; got != 1 {
		t.Fatalf("skip counter advanced by %d, want 1", got)
	}
	if lossScaleGauge.Value() != float64(s.Scale) {
		t.Fatalf("scale gauge %v, want %v", lossScaleGauge.Value(), s.Scale)
	}
}

func TestLossScalerFloorsAtOne(t *testing.T) {
	s := NewDynamicLossScaler()
	s.Scale = 1
	p := nn.NewParam("w", 1)
	p.Grad.Data()[0] = float32(math.NaN())
	s.UnscaleAndCheck([]*nn.Param{p})
	if s.Scale < 1 {
		t.Fatalf("scale fell below 1: %v", s.Scale)
	}
}

func TestLossScalerArm(t *testing.T) {
	s := NewDynamicLossScaler()
	ctx := nn.NewCtx(1)
	s.Arm(ctx)
	if ctx.LossScale != s.Scale {
		t.Fatal("Arm did not set the context scale")
	}
}
