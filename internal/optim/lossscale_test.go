package optim

import (
	"math"
	"testing"

	"demystbert/internal/nn"
)

func TestLossScalerUnscales(t *testing.T) {
	s := NewDynamicLossScaler()
	s.Scale = 1024
	p := nn.NewParam("w", 4)
	p.Grad.Fill(1024 * 0.5)
	if !s.UnscaleAndCheck([]*nn.Param{p}) {
		t.Fatal("finite gradients rejected")
	}
	for _, g := range p.Grad.Data() {
		if g != 0.5 {
			t.Fatalf("unscaled gradient %v, want 0.5", g)
		}
	}
}

func TestLossScalerBacksOffOnOverflow(t *testing.T) {
	s := NewDynamicLossScaler()
	s.Scale = 1024
	p := nn.NewParam("w", 4)
	p.Grad.Fill(1)
	p.Grad.Data()[2] = float32(math.Inf(1))
	if s.UnscaleAndCheck([]*nn.Param{p}) {
		t.Fatal("overflow not detected")
	}
	if s.Scale != 512 {
		t.Fatalf("scale after backoff %v, want 512", s.Scale)
	}
	if s.Skipped != 1 {
		t.Fatalf("Skipped = %d", s.Skipped)
	}
	for _, g := range p.Grad.Data() {
		if g != 0 {
			t.Fatal("overflowed gradients must be zeroed (step skipped)")
		}
	}
}

func TestLossScalerGrowsAfterCleanRun(t *testing.T) {
	s := NewDynamicLossScaler()
	s.Scale = 8
	s.GrowthInterval = 3
	p := nn.NewParam("w", 2)
	for i := 0; i < 3; i++ {
		p.Grad.Fill(8)
		if !s.UnscaleAndCheck([]*nn.Param{p}) {
			t.Fatal("clean step rejected")
		}
	}
	if s.Scale != 16 {
		t.Fatalf("scale after growth %v, want 16", s.Scale)
	}
}

func TestLossScalerFloorsAtOne(t *testing.T) {
	s := NewDynamicLossScaler()
	s.Scale = 1
	p := nn.NewParam("w", 1)
	p.Grad.Data()[0] = float32(math.NaN())
	s.UnscaleAndCheck([]*nn.Param{p})
	if s.Scale < 1 {
		t.Fatalf("scale fell below 1: %v", s.Scale)
	}
}

func TestLossScalerArm(t *testing.T) {
	s := NewDynamicLossScaler()
	ctx := nn.NewCtx(1)
	s.Arm(ctx)
	if ctx.LossScale != s.Scale {
		t.Fatal("Arm did not set the context scale")
	}
}
