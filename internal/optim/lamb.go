package optim

import (
	"math"

	"demystbert/internal/kernels"
	"demystbert/internal/nn"
	"demystbert/internal/profile"
	"demystbert/internal/tensor"
)

// LAMB implements the layer-wise adaptive large-batch optimizer (You et
// al., the paper's [95]) exactly as the paper characterizes it
// (Sections 2.4, 3.2.3):
//
//   - a global L2-norm reduction over every gradient precedes any update,
//     serializing the optimizer against the entire backprop;
//   - Stage 1, per parameter tensor, folds the gradient into momentum (m)
//     and velocity (v) state and produces the adaptive update direction —
//     reading gradient, m, v, and weights: data worth 4× the model size
//     (Takeaway 7);
//   - Stage 2, per parameter tensor, computes the layer-wise trust ratio
//     from the weight and update norms and applies the update.
//
// All state and arithmetic are FP32 regardless of training precision.
type LAMB struct {
	LR          float32
	Beta1       float32
	Beta2       float32
	Eps         float32
	WeightDecay float32
	// ClipNorm, when positive, rescales gradients so their global L2 norm
	// does not exceed it (BERT's recipe clips at 1.0).
	ClipNorm float64

	step    int
	m, v    map[*nn.Param]*tensor.Tensor
	updates map[*nn.Param]*tensor.Tensor
}

// NewLAMB returns a LAMB optimizer with BERT pre-training defaults.
func NewLAMB(lr float32) *LAMB {
	return &LAMB{
		LR:          lr,
		Beta1:       0.9,
		Beta2:       0.999,
		Eps:         1e-6,
		WeightDecay: 0.01,
		ClipNorm:    1.0,
		m:           make(map[*nn.Param]*tensor.Tensor),
		v:           make(map[*nn.Param]*tensor.Tensor),
		updates:     make(map[*nn.Param]*tensor.Tensor),
	}
}

// StepCount returns the number of updates applied so far.
func (o *LAMB) StepCount() int { return o.step }

// State returns the momentum and velocity tensors for p, allocating them
// on first use.
func (o *LAMB) State(p *nn.Param) (m, v *tensor.Tensor) {
	if o.m[p] == nil {
		o.m[p] = tensor.New(p.Value.Shape()...)
		o.v[p] = tensor.New(p.Value.Shape()...)
	}
	return o.m[p], o.v[p]
}

// ReleaseState drops p's optimizer state (m, v, and the update scratch)
// from the resident maps. The virtual-shard memory-scaling path spills
// state to disk between shards and releases it so only one shard's state
// stays resident; the next State call re-allocates fresh zeroed tensors
// for the caller to restore into.
func (o *LAMB) ReleaseState(p *nn.Param) {
	delete(o.m, p)
	delete(o.v, p)
	delete(o.updates, p)
}

// LAMBStep is one iteration's update context: the bias-correction terms
// and the global gradient clip scale, fixed once per PrepareStep. Apply
// may then be called once with every parameter (the plain path) or once
// per shard (the ZeRO-1 sharded and virtual-shard paths) — the step count
// advances exactly once either way, so bias correction cannot desync no
// matter how many shards the update is split across.
type LAMBStep struct {
	o         *LAMB
	gradScale float32
	bc1, bc2  float32
}

// PrepareStep advances the step count once and computes the global
// gradient-norm clip scale. params must be ALL trainable parameters in
// canonical order — LAMB's clip norm is global, so every rank and every
// shard must derive the identical scale even when Apply later touches
// only a subset.
func (o *LAMB) PrepareStep(ctx *nn.Ctx, params []*nn.Param) *LAMBStep {
	o.step++

	// Global gradient norm: LAMB normalizes all layers' gradients before
	// any parameter can be updated.
	var gradScale float32 = 1
	ctx.Prof.Time("lamb_global_gradnorm", profile.CatLAMBStage1, profile.Update,
		totalFLOPs(params, 2), totalBytes(params, 1, 0), func() {
			var ss float64
			for _, p := range params {
				ss += kernels.SumSquares(p.Grad.Data())
			}
			norm := math.Sqrt(ss)
			if o.ClipNorm > 0 && norm > o.ClipNorm {
				gradScale = float32(o.ClipNorm / norm)
			}
		})

	return &LAMBStep{
		o:         o,
		gradScale: gradScale,
		bc1:       1 - float32(math.Pow(float64(o.Beta1), float64(o.step))),
		bc2:       1 - float32(math.Pow(float64(o.Beta2), float64(o.step))),
	}
}

// Step applies one LAMB update to every parameter.
func (o *LAMB) Step(ctx *nn.Ctx, params []*nn.Param) {
	o.PrepareStep(ctx, params).Apply(ctx, params)
}

// Apply runs both LAMB stages over params, which may be any subset of the
// parameters PrepareStep saw. Per-tensor arithmetic is independent across
// tensors, so splitting one iteration's Apply across shards is bitwise
// identical to a single whole-model Apply.
func (s *LAMBStep) Apply(ctx *nn.Ctx, params []*nn.Param) {
	o, gradScale, bc1, bc2 := s.o, s.gradScale, s.bc1, s.bc2

	// Stage 1 per tensor: update m and v, produce the adaptive direction.
	// Reads g, m, v, w (4× model size); writes m, v, update.
	for _, p := range params {
		m, v := o.State(p)
		if o.updates[p] == nil {
			o.updates[p] = tensor.New(p.Value.Shape()...)
		}
		upd := o.updates[p]
		n := p.Size()
		ctx.Prof.Time("lamb_stage1", profile.CatLAMBStage1, profile.Update,
			kernels.EWFLOPs(n, 12), kernels.EWBytes(n, 4, 3, fp32Size), func() {
				md, vd, gd, wd, ud := m.Data(), v.Data(), p.Grad.Data(), p.Value.Data(), upd.Data()
				for i := range gd {
					g := gd[i] * gradScale
					md[i] = o.Beta1*md[i] + (1-o.Beta1)*g
					vd[i] = o.Beta2*vd[i] + (1-o.Beta2)*g*g
					mh := md[i] / bc1
					vh := vd[i] / bc2
					ud[i] = mh/(sqrt32(vh)+o.Eps) + o.WeightDecay*wd[i]
				}
			})
	}

	// Stage 2 per tensor: trust ratio from ‖w‖ and ‖update‖, then apply.
	// Reads update, w; writes w.
	for _, p := range params {
		upd := o.updates[p]
		n := p.Size()
		ctx.Prof.Time("lamb_stage2", profile.CatLAMBStage2, profile.Update,
			kernels.EWFLOPs(n, 6), kernels.EWBytes(n, 2, 1, fp32Size), func() {
				wNorm := kernels.L2Norm(p.Value.Data())
				uNorm := kernels.L2Norm(upd.Data())
				trust := float32(1)
				if wNorm > 0 && uNorm > 0 {
					trust = float32(wNorm / uNorm)
				}
				step := o.LR * trust
				wd, ud := p.Value.Data(), upd.Data()
				for i := range wd {
					wd[i] -= step * ud[i]
				}
			})
		p.BumpGen() // weights changed: invalidate cached GEMM packs
	}
}

// BytesPerParam is the algorithmic traffic of one LAMB update per
// parameter element: stage 1 reads 4 and writes 3 FP32 values, stage 2
// reads 2 and writes 1 (norm reads counted once with the apply read).
const BytesPerParam = (4 + 3 + 2 + 1) * fp32Size

func totalFLOPs(params []*nn.Param, perElem int) int64 {
	var n int64
	for _, p := range params {
		n += int64(p.Size())
	}
	return n * int64(perElem)
}

func totalBytes(params []*nn.Param, reads, writes int) int64 {
	var n int64
	for _, p := range params {
		n += int64(p.Size())
	}
	return n * int64(reads+writes) * fp32Size
}

func sqrt32(x float32) float32 {
	return float32(math.Sqrt(float64(x)))
}
