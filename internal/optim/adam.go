package optim

import (
	"math"

	"demystbert/internal/kernels"
	"demystbert/internal/nn"
	"demystbert/internal/profile"
	"demystbert/internal/tensor"
)

// Adam implements the Adam optimizer in two kernel organizations that
// compute identical updates, reproducing the paper's fusion study
// (Section 6.1.1, Fig. 12a):
//
//   - Fused: one multi-tensor kernel per chunk of parameter tensors, each
//     element touched with a single read-modify-write pass — the
//     apex-style "fused Adam".
//   - Unfused: every elementary operation (scale, multiply, add, square,
//     sqrt, divide, apply) launches its own kernel with its own pass over
//     memory, materializing temporaries — the default eager execution.
//
// The unfused form launches ~kernelsPerTensor × tensors kernels and moves
// 6–8× more bytes; fusing collapses kernel count by orders of magnitude
// but, because different tensors' state is independent data, cannot reduce
// traffic below one read of g/m/v/w and one write of m/v/w — exactly the
// paper's observation of why Adam/LAMB fusion saves less than LayerNorm
// fusion.
type Adam struct {
	LR    float32
	Beta1 float32
	Beta2 float32
	Eps   float32
	Fused bool
	// MultiTensorChunk is how many parameter tensors one fused kernel
	// covers (apex multi_tensor_apply batches many tensors per launch).
	MultiTensorChunk int

	step int
	m, v map[*nn.Param]*tensor.Tensor
}

// NewAdam returns an Adam optimizer; fused selects the kernel organization.
func NewAdam(lr float32, fused bool) *Adam {
	return &Adam{
		LR:               lr,
		Beta1:            0.9,
		Beta2:            0.999,
		Eps:              1e-8,
		Fused:            fused,
		MultiTensorChunk: 320,
		m:                make(map[*nn.Param]*tensor.Tensor),
		v:                make(map[*nn.Param]*tensor.Tensor),
	}
}

// StepCount returns the number of updates applied so far.
func (o *Adam) StepCount() int { return o.step }

// State returns the momentum and velocity tensors for p, allocating them
// on first use. Both kernel organizations share this state, so switching
// between fused and unfused mid-run cannot fork the moments.
func (o *Adam) State(p *nn.Param) (m, v *tensor.Tensor) {
	if o.m[p] == nil {
		o.m[p] = tensor.New(p.Value.Shape()...)
		o.v[p] = tensor.New(p.Value.Shape()...)
	}
	return o.m[p], o.v[p]
}

// ReleaseState drops p's optimizer state from the resident maps (see
// LAMB.ReleaseState — the virtual-shard spill path).
func (o *Adam) ReleaseState(p *nn.Param) {
	delete(o.m, p)
	delete(o.v, p)
}

// AdamStep is one iteration's update context: the bias-correction terms,
// fixed once per PrepareStep. As with LAMBStep, Apply may be called once
// with all parameters or once per shard; the step count — and therefore
// bc1/bc2 — advances exactly once per iteration regardless, and is shared
// between the fused and unfused kernel organizations. This is what keeps
// bias correction in sync when gradient accumulation or a loss-scale skip
// makes iterations and optimizer calls no longer one-to-one: a skipped
// step simply never calls PrepareStep, and no partial application can
// advance the count twice.
type AdamStep struct {
	o        *Adam
	bc1, bc2 float32
}

// PrepareStep advances the step count once and fixes this iteration's
// bias-correction terms.
func (o *Adam) PrepareStep() *AdamStep {
	o.step++
	return &AdamStep{
		o:   o,
		bc1: 1 - float32(math.Pow(float64(o.Beta1), float64(o.step))),
		bc2: 1 - float32(math.Pow(float64(o.Beta2), float64(o.step))),
	}
}

// Step applies one Adam update to every parameter.
func (o *Adam) Step(ctx *nn.Ctx, params []*nn.Param) {
	o.PrepareStep().Apply(ctx, params)
}

// Apply updates params — any subset of the trainable set — using this
// iteration's fixed bias correction.
func (s *AdamStep) Apply(ctx *nn.Ctx, params []*nn.Param) {
	if s.o.Fused {
		s.o.stepFused(ctx, params, s.bc1, s.bc2)
	} else {
		s.o.stepUnfused(ctx, params, s.bc1, s.bc2)
	}
}

// stepFused processes MultiTensorChunk tensors per kernel launch with one
// pass over memory: read g, m, v, w; write m, v, w.
func (o *Adam) stepFused(ctx *nn.Ctx, params []*nn.Param, bc1, bc2 float32) {
	chunk := o.MultiTensorChunk
	if chunk < 1 {
		chunk = 1
	}
	for lo := 0; lo < len(params); lo += chunk {
		hi := lo + chunk
		if hi > len(params) {
			hi = len(params)
		}
		group := params[lo:hi]
		ctx.Prof.Time("adam_fused_multitensor", profile.CatOptimizer, profile.Update,
			totalFLOPs(group, 11), totalBytes(group, 4, 3), func() {
				for _, p := range group {
					m, v := o.State(p)
					md, vd, gd, wd := m.Data(), v.Data(), p.Grad.Data(), p.Value.Data()
					for i := range gd {
						g := gd[i]
						md[i] = o.Beta1*md[i] + (1-o.Beta1)*g
						vd[i] = o.Beta2*vd[i] + (1-o.Beta2)*g*g
						wd[i] -= o.LR * (md[i] / bc1) / (sqrt32(vd[i]/bc2) + o.Eps)
					}
					p.BumpGen() // weights changed: invalidate cached GEMM packs
				}
			})
	}
}

// stepUnfused launches one kernel per elementary operation per tensor,
// with temporaries flushed to memory between kernels, mirroring how an
// eager framework executes an optimizer written as tensor expressions.
func (o *Adam) stepUnfused(ctx *nn.Ctx, params []*nn.Param, bc1, bc2 float32) {
	for _, p := range params {
		m, v := o.State(p)
		n := p.Size()
		tmp := make([]float32, n)
		tmp2 := make([]float32, n)
		es := fp32Size

		run := func(kernel string, reads, writes int, f func()) {
			ctx.Prof.Time(kernel, profile.CatOptimizer, profile.Update,
				kernels.EWFLOPs(n, 1), kernels.EWBytes(n, reads, writes, es), f)
		}

		md, vd, gd, wd := m.Data(), v.Data(), p.Grad.Data(), p.Value.Data()
		// m = beta1*m
		run("adam_m_scale", 1, 1, func() { kernels.Scale(md, md, o.Beta1) })
		// tmp = (1-beta1)*g
		run("adam_g_scale", 1, 1, func() { kernels.Scale(tmp, gd, 1-o.Beta1) })
		// m += tmp
		run("adam_m_add", 2, 1, func() { kernels.AccumulateInto(md, tmp) })
		// v = beta2*v
		run("adam_v_scale", 1, 1, func() { kernels.Scale(vd, vd, o.Beta2) })
		// tmp = g*g
		run("adam_g_square", 1, 1, func() { kernels.Mul(tmp, gd, gd) })
		// tmp = (1-beta2)*tmp
		run("adam_gsq_scale", 1, 1, func() { kernels.Scale(tmp, tmp, 1-o.Beta2) })
		// v += tmp
		run("adam_v_add", 2, 1, func() { kernels.AccumulateInto(vd, tmp) })
		// tmp = v/bc2 (bias-corrected velocity)
		run("adam_v_bias", 1, 1, func() { kernels.Scale(tmp, vd, 1/bc2) })
		// tmp = sqrt(tmp) + eps
		run("adam_sqrt_eps", 1, 1, func() {
			for i := range tmp {
				tmp[i] = sqrt32(tmp[i]) + o.Eps
			}
		})
		// tmp2 = m/bc1 (bias-corrected momentum)
		run("adam_m_bias", 1, 1, func() { kernels.Scale(tmp2, md, 1/bc1) })
		// tmp2 = tmp2/tmp
		run("adam_div", 2, 1, func() {
			for i := range tmp2 {
				tmp2[i] /= tmp[i]
			}
		})
		// w -= lr*tmp2
		run("adam_apply", 2, 1, func() {
			for i := range wd {
				wd[i] -= o.LR * tmp2[i]
			}
		})
		p.BumpGen() // weights changed: invalidate cached GEMM packs
	}
}

// UnfusedKernelsPerTensor is the kernel count the unfused Adam launches
// per parameter tensor.
const UnfusedKernelsPerTensor = 12

// SGD is the plain stochastic-gradient-descent baseline: w -= lr·g.
type SGD struct {
	LR float32
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr float32) *SGD { return &SGD{LR: lr} }

// Step applies w -= lr·g to every parameter, one kernel per tensor.
func (o *SGD) Step(ctx *nn.Ctx, params []*nn.Param) {
	for _, p := range params {
		n := p.Size()
		ctx.Prof.Time("sgd_apply", profile.CatOptimizer, profile.Update,
			kernels.EWFLOPs(n, 2), kernels.EWBytes(n, 2, 1, fp32Size), func() {
				wd, gd := p.Value.Data(), p.Grad.Data()
				for i := range wd {
					wd[i] -= o.LR * gd[i]
				}
			})
		p.BumpGen() // weights changed: invalidate cached GEMM packs
	}
}
