// Package optim implements the weight-update phase of BERT training: the
// LAMB optimizer the paper identifies as the second-highest runtime
// contributor (Takeaway 1), Adam in both fused and unfused forms (the
// kernel-fusion study of Fig. 12a), and plain SGD as a baseline.
//
// Optimizer kernels always account bytes at FP32 element size: mixed
// precision keeps FP32 master weights and optimizer state, which is why
// the paper finds LAMB's runtime unchanged — and its relative share
// increased — under MP training (Takeaway 2).
package optim

import (
	"demystbert/internal/nn"
)

// Optimizer applies one update step to a parameter set using their
// accumulated gradients. Implementations record their kernels through
// ctx.Prof so update-phase runtime is attributable.
type Optimizer interface {
	// Step updates all parameters in place and clears nothing: callers
	// zero gradients themselves (gradient accumulation is legal).
	Step(ctx *nn.Ctx, params []*nn.Param)
}

// fp32Size is the optimizer element size: updates run in full precision
// even under mixed-precision training.
const fp32Size = 4
