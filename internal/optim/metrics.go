package optim

import "demystbert/internal/obs"

// Loss-scaler observability: skipped steps are the signal that mixed
// precision is fighting the dynamics (a healthy run skips a handful per
// backoff, a sick one skips continuously), and the scale gauge makes the
// grow/backoff sawtooth visible in telemetry.
var (
	lossScaleSkippedSteps = obs.NewCounter("optim_loss_scale_skipped_steps_total",
		"optimizer steps skipped because unscaled gradients were non-finite")
	lossScaleGauge = obs.NewGauge("optim_loss_scale",
		"current dynamic loss scale")
)
