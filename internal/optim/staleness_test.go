package optim

import (
	"testing"

	"demystbert/internal/nn"
	"demystbert/internal/profile"
	"demystbert/internal/tensor"
)

// TestOptimizerStepInvalidatesPackCache proves the pack-cache generation
// contract end to end: a Linear forward caches a pack of W, an optimizer
// step mutates W and bumps the generation, and the next forward must
// match — bitwise — a fresh layer built from the post-step weights (i.e.
// a fresh repack). The shape is chosen large enough to route through the
// blocked GEMMPacked path, where a stale pack would actually be read.
func TestOptimizerStepInvalidatesPackCache(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  Optimizer
	}{
		{"sgd", NewSGD(0.05)},
		{"adam_fused", NewAdam(0.05, true)},
		{"adam_unfused", NewAdam(0.05, false)},
		{"lamb", NewLAMB(0.05)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := tensor.NewRNG(31)
			const in, out, tokens = 64, 64, 32
			l := nn.NewLinear("l", in, out, profile.CatLinear, r)
			x := tensor.New(tokens, in)
			x.FillUniform(r, -1, 1)
			ctx := &nn.Ctx{RNG: tensor.NewRNG(1), Train: true}

			l.Forward(ctx, x) // populates the pack cache
			genBefore := l.W.Gen()
			for _, p := range l.Params() {
				p.Grad.FillUniform(r, -1, 1)
			}
			tc.opt.Step(ctx, l.Params())
			if l.W.Gen() == genBefore {
				t.Fatal("optimizer step must bump the weight generation")
			}

			got := l.Forward(ctx, x)

			// A layer that never saw the pre-step weights: same Values,
			// necessarily a fresh pack.
			fresh := nn.NewLinear("f", in, out, profile.CatLinear, tensor.NewRNG(2))
			copy(fresh.W.Value.Data(), l.W.Value.Data())
			copy(fresh.B.Value.Data(), l.B.Value.Data())
			want := fresh.Forward(ctx, x)

			gd, wd := got.Data(), want.Data()
			for i := range gd {
				if gd[i] != wd[i] {
					t.Fatalf("post-step forward differs from fresh repack at %d: %v vs %v (stale pack served)", i, gd[i], wd[i])
				}
			}
		})
	}
}
