package optim

import (
	"math"
	"testing"

	"demystbert/internal/nn"
	"demystbert/internal/profile"
	"demystbert/internal/tensor"
)

func makeParam(name string, r *tensor.RNG, shape ...int) *nn.Param {
	p := nn.NewParam(name, shape...)
	p.Value.FillUniform(r, -1, 1)
	p.Grad.FillUniform(r, -0.1, 0.1)
	return p
}

func TestSGDStep(t *testing.T) {
	p := nn.NewParam("w", 3)
	copy(p.Value.Data(), []float32{1, 2, 3})
	copy(p.Grad.Data(), []float32{1, 1, 1})
	NewSGD(0.5).Step(nn.NewCtx(1), []*nn.Param{p})
	want := []float32{0.5, 1.5, 2.5}
	for i := range want {
		if p.Value.Data()[i] != want[i] {
			t.Fatalf("SGD value[%d] = %v, want %v", i, p.Value.Data()[i], want[i])
		}
	}
}

func TestLAMBFirstStepClosedForm(t *testing.T) {
	// Single scalar parameter, no weight decay, no clipping: after one
	// step m̂ = g, v̂ = g², so the raw update is sign(g)/(1+eps·/|g|)≈1,
	// and the trust ratio is |w|/|update|; w' = w - lr·|w|·sign(g).
	p := nn.NewParam("w", 1)
	p.Value.Data()[0] = 2
	p.Grad.Data()[0] = 0.5
	o := NewLAMB(0.1)
	o.WeightDecay = 0
	o.ClipNorm = 0
	o.Step(nn.NewCtx(1), []*nn.Param{p})
	// update ≈ 0.5/(0.5+eps) ≈ 1; trust = |2|/1 = 2; w' = 2 - 0.1*2*1.
	want := 2 - 0.1*2*1.0
	if got := float64(p.Value.Data()[0]); math.Abs(got-want) > 1e-3 {
		t.Fatalf("LAMB first step w = %v, want ~%v", got, want)
	}
	if o.StepCount() != 1 {
		t.Fatalf("StepCount = %d", o.StepCount())
	}
}

func TestLAMBMomentumAccumulates(t *testing.T) {
	r := tensor.NewRNG(1)
	p := makeParam("w", r, 16)
	o := NewLAMB(0.01)
	ctx := nn.NewCtx(1)
	o.Step(ctx, []*nn.Param{p})
	m1, _ := o.State(p)
	first := append([]float32(nil), m1.Data()...)
	o.Step(ctx, []*nn.Param{p})
	m2, _ := o.State(p)
	same := true
	for i := range first {
		if m2.Data()[i] != first[i] {
			same = false
		}
	}
	if same {
		t.Fatal("momentum did not change across steps")
	}
}

func TestLAMBGradientClipping(t *testing.T) {
	// With a huge gradient and ClipNorm=1, the effective gradient is
	// normalized; the step must be bounded by lr·trust regardless of
	// gradient magnitude.
	p := nn.NewParam("w", 4)
	p.Value.Fill(1)
	p.Grad.Fill(1e6)
	o := NewLAMB(0.1)
	o.WeightDecay = 0
	before := append([]float32(nil), p.Value.Data()...)
	o.Step(nn.NewCtx(1), []*nn.Param{p})
	for i := range before {
		delta := math.Abs(float64(before[i] - p.Value.Data()[i]))
		if delta > 0.3 {
			t.Fatalf("clipped LAMB step moved weight by %v", delta)
		}
	}
}

func TestLAMBZeroGradientNoNaN(t *testing.T) {
	p := nn.NewParam("w", 4)
	p.Value.Fill(1)
	o := NewLAMB(0.1)
	o.Step(nn.NewCtx(1), []*nn.Param{p})
	for _, v := range p.Value.Data() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("zero-gradient step produced %v", v)
		}
	}
}

func TestLAMBProfileCategories(t *testing.T) {
	r := tensor.NewRNG(2)
	params := []*nn.Param{makeParam("a", r, 64), makeParam("b", r, 32)}
	ctx := nn.NewCtx(1)
	NewLAMB(0.01).Step(ctx, params)
	sum := ctx.Prof.Summarize()
	s1 := sum.ByCategory[profile.CatLAMBStage1]
	s2 := sum.ByCategory[profile.CatLAMBStage2]
	// Global norm + one stage-1 kernel per tensor; one stage-2 per tensor.
	if s1.Kernels != 3 {
		t.Fatalf("stage-1 kernels = %d, want 3 (norm + 2 tensors)", s1.Kernels)
	}
	if s2.Kernels != 2 {
		t.Fatalf("stage-2 kernels = %d, want 2", s2.Kernels)
	}
	// Takeaway 7: stage 1 reads 4× model size. Total model = 96 elems.
	wantS1Read := int64(96) * 4 * 4 // elems × arrays × bytes
	if s1.Bytes < wantS1Read {
		t.Fatalf("stage-1 bytes %d below the 4×-model-size read volume %d", s1.Bytes, wantS1Read)
	}
	if sum.ByPhase[profile.Update].Kernels != sum.Total.Kernels {
		t.Fatal("all LAMB kernels must be Update phase")
	}
}

func TestLAMBReadsFourTimesModelSize(t *testing.T) {
	// The paper's Takeaway 7 verbatim: LAMB reads data worth 4× the model
	// size in stage 1 (g, m, v, w).
	r := tensor.NewRNG(3)
	params := []*nn.Param{makeParam("a", r, 1000)}
	ctx := nn.NewCtx(1)
	NewLAMB(0.01).Step(ctx, params)
	var stage1Bytes int64
	for _, e := range ctx.Prof.Events() {
		if e.Kernel == "lamb_stage1" {
			stage1Bytes += e.Bytes
		}
	}
	modelBytes := int64(1000 * 4)
	reads := stage1Bytes - 3*modelBytes // subtract the 3 written arrays
	if reads != 4*modelBytes {
		t.Fatalf("stage-1 reads %d bytes, want exactly 4× model size %d", reads, 4*modelBytes)
	}
}

func TestAdamFusedMatchesUnfused(t *testing.T) {
	r := tensor.NewRNG(4)
	mk := func() []*nn.Param {
		rr := tensor.NewRNG(77)
		return []*nn.Param{makeParam("a", rr, 33), makeParam("b", rr, 17)}
	}
	_ = r
	fusedParams := mk()
	unfusedParams := mk()
	fused := NewAdam(0.01, true)
	unfused := NewAdam(0.01, false)
	ctx := nn.NewCtx(1)
	for i := 0; i < 3; i++ {
		fused.Step(ctx, fusedParams)
		unfused.Step(ctx, unfusedParams)
	}
	for i := range fusedParams {
		fd, ud := fusedParams[i].Value.Data(), unfusedParams[i].Value.Data()
		for j := range fd {
			if math.Abs(float64(fd[j]-ud[j])) > 1e-5 {
				t.Fatalf("param %d elem %d: fused %v vs unfused %v", i, j, fd[j], ud[j])
			}
		}
	}
}

func TestAdamFusionKernelAndTrafficRatios(t *testing.T) {
	// Fig. 12a: fusing Adam collapses kernel count by orders of magnitude
	// (~250× for ~400 tensors with multi-tensor apply) but cuts traffic
	// and runtime only ~6-8× because per-tensor state is independent.
	r := tensor.NewRNG(5)
	const tensors = 320
	mk := func() []*nn.Param {
		ps := make([]*nn.Param, tensors)
		for i := range ps {
			ps[i] = makeParam("p", r, 64)
		}
		return ps
	}
	fusedCtx, unfusedCtx := nn.NewCtx(1), nn.NewCtx(1)
	NewAdam(0.01, true).Step(fusedCtx, mk())
	NewAdam(0.01, false).Step(unfusedCtx, mk())
	fused := fusedCtx.Prof.Summarize().Total
	unfused := unfusedCtx.Prof.Summarize().Total

	kernelRatio := float64(unfused.Kernels) / float64(fused.Kernels)
	if kernelRatio < 100 {
		t.Fatalf("kernel-count ratio %v, want >= 100 (paper ~250x)", kernelRatio)
	}
	trafficRatio := float64(unfused.Bytes) / float64(fused.Bytes)
	if trafficRatio < 2 || trafficRatio > 8.5 {
		t.Fatalf("traffic ratio %v outside the paper's ~6-8x band", trafficRatio)
	}
}

func TestAdamChunkingCountsLaunches(t *testing.T) {
	r := tensor.NewRNG(6)
	ps := make([]*nn.Param, 10)
	for i := range ps {
		ps[i] = makeParam("p", r, 8)
	}
	o := NewAdam(0.01, true)
	o.MultiTensorChunk = 4
	ctx := nn.NewCtx(1)
	o.Step(ctx, ps)
	if got := ctx.Prof.KernelCount(); got != 3 { // ceil(10/4)
		t.Fatalf("fused launches = %d, want 3", got)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = ||w||²/2 (gradient = w); Adam must shrink w.
	p := nn.NewParam("w", 8)
	p.Value.Fill(1)
	o := NewAdam(0.05, true)
	ctx := nn.NewCtx(1)
	for i := 0; i < 200; i++ {
		copy(p.Grad.Data(), p.Value.Data())
		o.Step(ctx, []*nn.Param{p})
	}
	for _, v := range p.Value.Data() {
		if math.Abs(float64(v)) > 0.1 {
			t.Fatalf("Adam failed to shrink weight: %v", v)
		}
	}
}

func TestLAMBConvergesOnQuadratic(t *testing.T) {
	p := nn.NewParam("w", 8)
	p.Value.Fill(1)
	o := NewLAMB(0.02)
	o.WeightDecay = 0
	ctx := nn.NewCtx(1)
	for i := 0; i < 200; i++ {
		copy(p.Grad.Data(), p.Value.Data())
		o.Step(ctx, []*nn.Param{p})
	}
	for _, v := range p.Value.Data() {
		if math.Abs(float64(v)) > 0.5 {
			t.Fatalf("LAMB failed to shrink weight: %v", v)
		}
	}
}

func TestOptimizerInterfaceCompliance(t *testing.T) {
	var _ Optimizer = NewLAMB(0.1)
	var _ Optimizer = NewAdam(0.1, true)
	var _ Optimizer = NewSGD(0.1)
}
