package optim

import (
	"math"

	"demystbert/internal/nn"
)

// DynamicLossScaler implements the loss-scaling half of mixed-precision
// training (the paper's [62], apex): the loss gradient is multiplied by a
// large scale so small FP16 gradients survive quantization, gradients are
// unscaled before the (FP32) optimizer step, and the scale adapts — it
// backs off when an overflow appears and grows after a run of clean
// steps.
type DynamicLossScaler struct {
	// Scale is the current loss multiplier (a power of two).
	Scale float32
	// GrowthFactor multiplies Scale after GrowthInterval clean steps;
	// BackoffFactor multiplies it on overflow.
	GrowthFactor   float32
	BackoffFactor  float32
	GrowthInterval int
	// MaxScale caps growth (apex caps at 2^24). Unbounded doubling
	// eventually reaches +Inf, after which UnscaleAndCheck multiplies
	// every gradient by 1/Inf = 0 and silently freezes training. Zero
	// means the default cap, so zero-value scalers are still capped.
	MaxScale float32

	goodSteps int
	// Skipped counts steps rejected because of non-finite gradients.
	Skipped int
}

// DefaultMaxLossScale is the growth cap applied when MaxScale is unset.
const DefaultMaxLossScale = 1 << 24

// NewDynamicLossScaler returns a scaler with apex-like defaults.
func NewDynamicLossScaler() *DynamicLossScaler {
	return &DynamicLossScaler{
		Scale:          1 << 15,
		GrowthFactor:   2,
		BackoffFactor:  0.5,
		GrowthInterval: 100,
		MaxScale:       DefaultMaxLossScale,
	}
}

// Arm sets the context's loss scale so the next backward pass produces
// scaled gradients.
func (s *DynamicLossScaler) Arm(ctx *nn.Ctx) {
	ctx.LossScale = s.Scale
}

// UnscaleAndCheck divides every gradient by the current scale and reports
// whether all gradients are finite. On overflow it zeroes the gradients
// (the step must be skipped), backs the scale off, and returns false; on
// success it counts toward the next growth.
func (s *DynamicLossScaler) UnscaleAndCheck(params []*nn.Param) bool {
	inv := 1 / s.Scale
	finite := true
	for _, p := range params {
		g := p.Grad.Data()
		for i := range g {
			v := g[i] * inv
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				finite = false
			}
			g[i] = v
		}
	}
	if !finite {
		for _, p := range params {
			p.ZeroGrad()
		}
		s.Scale *= s.BackoffFactor
		if s.Scale < 1 {
			s.Scale = 1
		}
		s.goodSteps = 0
		s.Skipped++
		lossScaleSkippedSteps.Inc()
		lossScaleGauge.Set(float64(s.Scale))
		return false
	}
	s.goodSteps++
	if s.goodSteps >= s.GrowthInterval {
		s.Scale *= s.GrowthFactor
		if max := s.maxScale(); s.Scale > max {
			s.Scale = max
		}
		s.goodSteps = 0
	}
	lossScaleGauge.Set(float64(s.Scale))
	return true
}

// maxScale returns the effective growth cap, defaulting zero-value
// scalers to DefaultMaxLossScale.
func (s *DynamicLossScaler) maxScale() float32 {
	if s.MaxScale > 0 {
		return s.MaxScale
	}
	return DefaultMaxLossScale
}
