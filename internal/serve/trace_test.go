package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"demystbert/internal/obs"
	"demystbert/internal/trace"
)

// TestSubmitTraceStagesSumToTotal pins the acceptance contract: the
// /debug/requests stage decomposition partitions the measured total
// exactly — enqueue + bucket wait + batch assembly + forward + respond
// equals TotalMS.
func TestSubmitTraceStagesSumToTotal(t *testing.T) {
	cfg := testConfig()
	cfg.Tracer = trace.New(0, 1024)
	e := newTestEngine(t, cfg)
	resp, err := e.Submit(testRequest(6, 1))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if resp.TraceID == "" {
		t.Fatal("response missing trace id")
	}
	id, ok := trace.ParseTraceID(resp.TraceID)
	if !ok {
		t.Fatalf("response trace id %q unparsable", resp.TraceID)
	}
	rec, found := e.FindRequest(id)
	if !found {
		t.Fatal("request not in /debug/requests ring")
	}
	sum := rec.EnqueueMS + rec.BucketWaitMS + rec.BatchAssemblyMS + rec.ForwardMS + rec.RespondMS
	if rec.TotalMS <= 0 {
		t.Fatalf("total %v", rec.TotalMS)
	}
	if math.Abs(sum-rec.TotalMS) > 1e-6 {
		t.Fatalf("stages sum to %.6f ms, total is %.6f ms", sum, rec.TotalMS)
	}
	if rec.ForwardMS <= 0 || rec.BatchSize != 1 || rec.Tokens != 6 {
		t.Fatalf("record %+v", rec)
	}

	// The sampled request recorded its span family.
	names := map[string]int{}
	for _, s := range cfg.Tracer.Spans() {
		if s.Trace == id {
			names[s.Name]++
		}
	}
	for _, want := range []string{"request", "enqueue", "bucket_wait", "batch_assembly", "forward", "respond", "batch", "embed"} {
		if names[want] == 0 {
			t.Fatalf("no %q span recorded; got %v", want, names)
		}
	}

	// WriteTrace exports spans + kernels as one valid JSON timeline.
	var buf bytes.Buffer
	if err := e.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace export not valid JSON: %v", err)
	}
	if len(events) < 8 {
		t.Fatalf("trace export has only %d events", len(events))
	}
}

// TestHTTPTraceHeaderAndDebugRequests drives the HTTP surface: the
// response carries X-Trace-Id and /debug/requests?trace=<id> resolves
// it to a per-stage record.
func TestHTTPTraceHeaderAndDebugRequests(t *testing.T) {
	cfg := testConfig()
	cfg.Tracer = trace.New(0, 1024)
	e := newTestEngine(t, cfg)
	reg := obs.NewRegistry()
	h := Handler(e, reg)

	body, _ := json.Marshal(testRequest(6, 2))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/v1/mlm", bytes.NewReader(body)))
	if rr.Code != http.StatusOK {
		t.Fatalf("POST /v1/mlm: %d %s", rr.Code, rr.Body.String())
	}
	tid := rr.Header().Get("X-Trace-Id")
	if _, ok := trace.ParseTraceID(tid); !ok {
		t.Fatalf("X-Trace-Id header %q invalid", tid)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/requests?trace="+tid, nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /debug/requests?trace=: %d %s", rr.Code, rr.Body.String())
	}
	var rec RequestRecord
	if err := json.Unmarshal(rr.Body.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.TraceID != tid || rec.TotalMS <= 0 {
		t.Fatalf("record %+v for trace %s", rec, tid)
	}

	// The full ring lists it too, newest first.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/requests", nil))
	var all []RequestRecord
	if err := json.Unmarshal(rr.Body.Bytes(), &all); err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 || all[0].TraceID != tid {
		t.Fatalf("ring %+v, want newest-first with %s", all, tid)
	}
}

// TestClientSuppliedTraceID: an X-Trace-Id request header is adopted,
// force-sampled, and echoed back.
func TestClientSuppliedTraceID(t *testing.T) {
	cfg := testConfig()
	cfg.Tracer = trace.New(0, 1024)
	cfg.Tracer.SetSampleEvery(0) // head sampling off: only forced ids record
	e := newTestEngine(t, cfg)
	h := Handler(e, obs.NewRegistry())

	const want = "00000000deadbeef"
	body, _ := json.Marshal(testRequest(6, 3))
	req := httptest.NewRequest(http.MethodPost, "/v1/mlm", bytes.NewReader(body))
	req.Header.Set("X-Trace-Id", want)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("POST: %d %s", rr.Code, rr.Body.String())
	}
	if got := rr.Header().Get("X-Trace-Id"); got != want {
		t.Fatalf("echoed trace id %q, want %q", got, want)
	}
	found := false
	for _, s := range cfg.Tracer.Spans() {
		if s.Trace.String() == want && s.Name == "request" {
			found = true
		}
	}
	if !found {
		t.Fatal("forced trace id did not record spans")
	}

	// Garbage header is a 400, not an adopted id.
	req = httptest.NewRequest(http.MethodPost, "/v1/mlm", bytes.NewReader(body))
	req.Header.Set("X-Trace-Id", "nope")
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("bad header got %d", rr.Code)
	}
}

// TestTracingOffStillAnswersTraceIDs: with no tracer configured the
// X-Trace-Id and /debug/requests contracts still hold — ids mint, the
// ring fills — while no spans exist anywhere.
func TestTracingOffStillAnswersTraceIDs(t *testing.T) {
	e := newTestEngine(t, testConfig())
	resp, err := e.Submit(testRequest(6, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := trace.ParseTraceID(resp.TraceID); !ok {
		t.Fatalf("trace id %q with tracing off", resp.TraceID)
	}
	if len(e.RecentRequests()) != 1 {
		t.Fatal("request log empty with tracing off")
	}
	if err := e.WriteTrace(nil); err == nil || !strings.Contains(err.Error(), "not enabled") {
		t.Fatalf("WriteTrace without tracer: %v", err)
	}
}

// TestQuantileGaugesAndExemplarPopulate: after traffic, the rolling
// latency gauges report and the latency histogram carries a trace-linked
// exemplar.
func TestQuantileGaugesAndExemplarPopulate(t *testing.T) {
	e := newTestEngine(t, testConfig())
	for i := 0; i < 4; i++ {
		if _, err := e.Submit(testRequest(6, i)); err != nil {
			t.Fatal(err)
		}
	}
	m, ok := obs.Default.Find("serve_latency_p50_ms")
	if !ok || m.Value <= 0 {
		t.Fatalf("p50 gauge %+v", m)
	}
	m, ok = obs.Default.Find("serve_latency_ms")
	if !ok || m.Exemplar == nil {
		t.Fatalf("latency histogram missing exemplar: %+v", m)
	}
	if _, idOK := trace.ParseTraceID(m.Exemplar.TraceID); !idOK {
		t.Fatalf("exemplar trace id %q", m.Exemplar.TraceID)
	}
}
