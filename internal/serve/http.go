package serve

import (
	"encoding/json"
	"errors"
	"net/http"

	"demystbert/internal/obs"
	"demystbert/internal/trace"
)

// HTTP front-end for the engine. One POST endpoint accepts a tokenized
// request and blocks until its dynamic batch completes; the obs debug
// surface (metrics text + JSON, pprof) is mounted alongside so a single
// port exposes both the service and its telemetry.
//
//	POST /v1/mlm      {"tokens": [...], "segments": [...]} -> Response
//	GET  /healthz     200 "ok" while serving, 503 while draining
//	GET  /metrics     obs registry (plus /metrics.json, /debug/pprof/*)
//	GET  /debug/requests   recent requests, per-stage latency breakdown
//
// Every answered /v1/mlm response carries an X-Trace-Id header; sending
// the same header on a request adopts (and force-samples) that id, so a
// client can stitch its own ids through the scheduler. The id keys into
// /debug/requests (?trace=<id> filters to one request) and into the
// span/kernel timeline a traced engine exports via Engine.WriteTrace.

type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the serving mux for the engine, with the debug
// endpoints of reg (typically obs.Default) mounted alongside.
func Handler(e *Engine, reg *obs.Registry) http.Handler {
	mux := obs.NewDebugMux(reg)
	mux.HandleFunc("/v1/mlm", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req Request
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			reqsRejected.Inc()
			writeErr(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
			return
		}
		if h := r.Header.Get("X-Trace-Id"); h != "" {
			id, ok := trace.ParseTraceID(h)
			if !ok {
				writeErr(w, http.StatusBadRequest, "X-Trace-Id must be 16 hex digits")
				return
			}
			req.TraceID = id
		}
		resp, err := e.Submit(&req)
		if err != nil {
			var bad *BadRequestError
			switch {
			case errors.As(err, &bad):
				writeErr(w, http.StatusBadRequest, err.Error())
			case errors.Is(err, ErrOverloaded):
				// Backpressure: the client should retry with backoff;
				// admitting more work would only grow queue wait.
				writeErr(w, http.StatusTooManyRequests, err.Error())
			case errors.Is(err, ErrDraining):
				writeErr(w, http.StatusServiceUnavailable, err.Error())
			default:
				writeErr(w, http.StatusInternalServerError, err.Error())
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Trace-Id", resp.TraceID)
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("/debug/requests", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if q := r.URL.Query().Get("trace"); q != "" {
			id, ok := trace.ParseTraceID(q)
			if !ok {
				writeErr(w, http.StatusBadRequest, "trace must be 16 hex digits")
				return
			}
			rec, found := e.FindRequest(id)
			if !found {
				writeErr(w, http.StatusNotFound, "trace not in the recent-requests ring")
				return
			}
			json.NewEncoder(w).Encode(rec)
			return
		}
		json.NewEncoder(w).Encode(e.RecentRequests())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		e.mu.RLock()
		closed := e.closed
		e.mu.RUnlock()
		if closed {
			writeErr(w, http.StatusServiceUnavailable, "draining")
			return
		}
		w.Write([]byte("ok\n"))
	})
	return mux
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: msg})
}

// Start builds an engine from cfg and serves it on addr (":0" picks a
// free port). Shut down by first obs.Server.Shutdown (drain in-flight
// HTTP), then Engine.Close (answer everything admitted).
func Start(cfg Config, addr string) (*Engine, *obs.Server, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	srv, err := obs.StartServer(addr, Handler(e, obs.Default))
	if err != nil {
		e.Close()
		return nil, nil, err
	}
	return e, srv, nil
}
