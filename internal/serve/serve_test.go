package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"demystbert/internal/data"
	"demystbert/internal/kernels"
	"demystbert/internal/model"
	"demystbert/internal/obs"
)

// testConfig is the reduced-scale engine every scheduler test uses. The
// GEMM path override is process-global, so tests that force one restore
// the previous value and never run in parallel with each other.
func testConfig() Config {
	mcfg := model.Tiny()
	mcfg.FusedAttention = true
	return Config{
		Model:    mcfg,
		Seed:     7,
		GEMMPath: kernels.GEMMPathFused,
		MaxBatch: 8,
		MaxDelay: 2 * time.Millisecond,
		Buckets:  []int{8, 16},
		QueueCap: 256,
	}
}

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	prev := kernels.CurrentGEMMPath()
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		e.Close()
		kernels.SetGEMMPath(prev)
	})
	return e
}

// testRequest builds a deterministic request of length ln with a [MASK]
// at position 1.
func testRequest(ln, salt int) *Request {
	toks := make([]int, ln)
	toks[0] = data.ClsID
	toks[1] = data.MaskID
	for i := 2; i < ln; i++ {
		toks[i] = data.FirstWordID + (salt*31+i*7)%900
	}
	return &Request{Tokens: toks}
}

// TestSubmitBasic: a lone request gets a prediction for each mask and
// honest scheduling telemetry.
func TestSubmitBasic(t *testing.T) {
	e := newTestEngine(t, testConfig())
	resp, err := e.Submit(testRequest(6, 1))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if len(resp.Predictions) != 1 || resp.Predictions[0].Pos != 1 {
		t.Fatalf("predictions %+v, want one at pos 1", resp.Predictions)
	}
	if tok := resp.Predictions[0].Token; tok < 0 || tok >= e.cfg.Model.Vocab {
		t.Fatalf("predicted token %d outside vocab", tok)
	}
	if resp.Bucket != 8 {
		t.Fatalf("bucket %d, want 8 (smallest fitting length 6)", resp.Bucket)
	}
	if resp.BatchSize != 1 {
		t.Fatalf("batch size %d, want 1 for a lone request", resp.BatchSize)
	}
}

// TestValidation: admission rejects malformed requests with
// BadRequestError before they reach the model.
func TestValidation(t *testing.T) {
	e := newTestEngine(t, testConfig())
	cases := []struct {
		name string
		req  *Request
	}{
		{"empty", &Request{}},
		{"too long", testRequest(17, 1)},
		{"bad token", &Request{Tokens: []int{1, 2, 1000}}},
		{"negative token", &Request{Tokens: []int{1, -1}}},
		{"segment length", &Request{Tokens: []int{1, 3}, Segments: []int{0}}},
		{"segment value", &Request{Tokens: []int{1, 3}, Segments: []int{0, 2}}},
	}
	for _, tc := range cases {
		_, err := e.Submit(tc.req)
		if _, ok := err.(*BadRequestError); !ok {
			t.Errorf("%s: error %v, want BadRequestError", tc.name, err)
		}
	}
}

// TestConcurrentCoalescing floods the engine from many goroutines under
// the race detector: every request must complete, and with arrivals far
// faster than forwards the scheduler must form multi-request batches.
func TestConcurrentCoalescing(t *testing.T) {
	e := newTestEngine(t, testConfig())
	const N = 200
	var wg sync.WaitGroup
	var mu sync.Mutex
	batched := 0
	errs := make(chan error, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := e.Submit(testRequest(5+i%10, i))
			if err != nil {
				errs <- fmt.Errorf("request %d: %w", i, err)
				return
			}
			if len(resp.Predictions) == 0 {
				errs <- fmt.Errorf("request %d: no predictions", i)
				return
			}
			if resp.BatchSize > 1 {
				mu.Lock()
				batched++
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if batched == 0 {
		t.Error("no request was ever coalesced into a multi-request batch")
	}
}

// TestStarvationBound: a lone odd-length request (nothing else in its
// bucket, nothing else arriving) must not wait much past MaxDelay — the
// deadline flush, not a full bucket, dispatches it.
func TestStarvationBound(t *testing.T) {
	cfg := testConfig()
	cfg.MaxDelay = 5 * time.Millisecond
	e := newTestEngine(t, cfg)
	// One warm call so model/runtime state is settled before timing.
	if _, err := e.Submit(testRequest(6, 0)); err != nil {
		t.Fatalf("warm Submit: %v", err)
	}
	start := time.Now()
	resp, err := e.Submit(testRequest(13, 1)) // 13 → bucket 16, alone
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	elapsed := time.Since(start)
	// Bound: coalescing deadline + a generous forward+scheduling margin.
	if limit := cfg.MaxDelay + 500*time.Millisecond; elapsed > limit {
		t.Errorf("lone request took %v, want < %v (starved past the batch deadline)", elapsed, limit)
	}
	if resp.BatchSize != 1 {
		t.Errorf("batch size %d, want 1", resp.BatchSize)
	}
	if resp.QueueMS < float64(cfg.MaxDelay.Milliseconds())-1 {
		t.Logf("note: queue wait %.2fms under deadline %v (another dispatch triggered early flush)", resp.QueueMS, cfg.MaxDelay)
	}
}

// TestOverloadRejects: with a full queue, Submit fails fast with
// ErrOverloaded instead of blocking — the backpressure contract.
func TestOverloadRejects(t *testing.T) {
	cfg := testConfig()
	cfg.QueueCap = 2
	cfg.MaxBatch = 2
	cfg.MaxDelay = 50 * time.Millisecond
	e := newTestEngine(t, cfg)

	const N = 64
	var wg sync.WaitGroup
	var mu sync.Mutex
	ok, over := 0, 0
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := e.Submit(testRequest(6, i))
			mu.Lock()
			defer mu.Unlock()
			switch err {
			case nil:
				ok++
			case ErrOverloaded:
				over++
			default:
				t.Errorf("request %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if ok == 0 {
		t.Error("no request succeeded")
	}
	if ok+over != N {
		t.Errorf("ok=%d + overloaded=%d != %d", ok, over, N)
	}
}

// TestCloseDrainsAdmitted: requests admitted before Close are answered,
// not abandoned; requests after Close get ErrDraining.
func TestCloseDrainsAdmitted(t *testing.T) {
	e := newTestEngine(t, testConfig())
	const N = 32
	admittedBefore := counterValue(t, "serve_requests_total")
	var wg sync.WaitGroup
	errs := make(chan error, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := e.Submit(testRequest(6, i)); err != nil {
				errs <- err
			}
		}(i)
	}
	// Wait until every request is past admission (the accepted counter
	// bumps right after enqueue), then drain.
	for counterValue(t, "serve_requests_total")-admittedBefore < N {
		time.Sleep(100 * time.Microsecond)
	}
	e.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("admitted request failed across Close: %v", err)
	}
	if _, err := e.Submit(testRequest(6, 99)); err != ErrDraining {
		t.Errorf("Submit after Close: %v, want ErrDraining", err)
	}
}

// counterValue reads a counter snapshot from the default registry.
func counterValue(t *testing.T, name string) int64 {
	t.Helper()
	m, found := obs.Default.Find(name)
	if !found {
		t.Fatalf("metric %q not registered", name)
	}
	return int64(m.Value)
}

// TestSteadyStateZeroPackMisses is the pack-cache acceptance criterion:
// after the load-time warmup, serving traffic on each GEMM path takes
// zero pack-cache misses — every weight pack the forward consults was
// pre-built by WarmupInference and frozen weights never invalidate it.
func TestSteadyStateZeroPackMisses(t *testing.T) {
	for _, tc := range []struct {
		path    kernels.GEMMPath
		counter string
	}{
		{kernels.GEMMPathBlocked, "kernels_pack_cache_misses_total"},
		{kernels.GEMMPathFused, "kernels_pack_cache_misses_total"},
		{kernels.GEMMPathInt8, "kernels_int8_pack_cache_misses_total"},
	} {
		t.Run(tc.path.String(), func(t *testing.T) {
			cfg := testConfig()
			cfg.GEMMPath = tc.path
			e := newTestEngine(t, cfg) // New warms the packs (cold misses land here)

			before := counterValue(t, tc.counter)
			var wg sync.WaitGroup
			for i := 0; i < 48; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					if _, err := e.Submit(testRequest(5+i%12, i)); err != nil {
						t.Errorf("request %d: %v", i, err)
					}
				}(i)
			}
			wg.Wait()
			if d := counterValue(t, tc.counter) - before; d != 0 {
				t.Errorf("steady-state serving took %d pack-cache misses on %s, want 0 (warmup must pre-pack everything)", d, tc.path)
			}
		})
	}
}

// TestWarmupCoversInferencePath: the warmup pack count matches the
// number of Linear layers the inference forward actually consults.
func TestWarmupCoversInferencePath(t *testing.T) {
	e := newTestEngine(t, testConfig())
	// 6 Linears per encoder layer (Wq Wk Wv Wo FC1 FC2) + MLM dense +
	// tied decoder.
	want := 6*e.cfg.Model.NumLayers + 2
	if e.WarmedPacks != want {
		t.Errorf("warmed %d packs, want %d", e.WarmedPacks, want)
	}
}
