package serve

import (
	"fmt"
	"io"
	"sync"
	"time"

	"demystbert/internal/kernels"
	"demystbert/internal/obs"
)

// Latency-vs-throughput frontier benchmark: for each GEMM path, sweep
// offered load and record the open-loop latency distribution at every
// point, plus a serial (MaxBatch=1) baseline at saturation — the
// experiment behind BENCH_serve.json and the ≥3x-goodput acceptance
// criterion for continuous batching. Engines are built and torn down
// sequentially because the GEMM path override is process-global.

// BenchConfig parameterizes a frontier run.
type BenchConfig struct {
	Model Config    // engine template (GEMMPath is overridden per sweep)
	Spec  LoadSpec  // workload template (Rate is overridden per point)
	Paths []string  `json:"paths"`
	Rates []float64 `json:"rates"`
	// SaturationRate is the offered load used to measure each
	// configuration's capacity (and the serial baseline). It should be
	// comfortably above what serial serving can sustain.
	SaturationRate float64
	// AccuracyReqs is the request-set size for the batched-vs-serial
	// prediction-equality check.
	AccuracyReqs int
}

// BenchPoint is one (path, offered rate) measurement.
type BenchPoint struct {
	Path string `json:"path"`
	*LoadResult
	// PackMisses counts pack-cache misses (f32 + int8) during the run —
	// zero in steady state, by the warmup guarantee.
	PackMisses int64 `json:"pack_misses"`
}

// BenchReport is the BENCH_serve.json schema.
type BenchReport struct {
	// Host/config provenance.
	Config struct {
		Layers     int     `json:"layers"`
		DModel     int     `json:"d_model"`
		Heads      int     `json:"heads"`
		DFF        int     `json:"d_ff"`
		Vocab      int     `json:"vocab"`
		MaxBatch   int     `json:"max_batch"`
		MaxDelayMS float64 `json:"max_delay_ms"`
		Buckets    []int   `json:"buckets"`
	} `json:"config"`
	Workload struct {
		MinLen      int     `json:"min_len"`
		MaxLen      int     `json:"max_len"`
		MaskFrac    float64 `json:"mask_frac"`
		DurationSec float64 `json:"duration_sec"`
		Seed        uint64  `json:"seed"`
	} `json:"workload"`

	// Frontier holds the latency-vs-throughput sweep: for each GEMM
	// path, one point per offered rate plus one at SaturationRate.
	Frontier []BenchPoint `json:"frontier"`

	// SerialBaseline is MaxBatch=1 serving at SaturationRate on the
	// default path — what continuous batching is measured against.
	SerialBaseline BenchPoint `json:"serial_baseline"`
	// BatchedSaturation is the batching engine at SaturationRate on the
	// same path as the baseline.
	BatchedSaturation BenchPoint `json:"batched_saturation"`
	// GoodputRatio = BatchedSaturation.GoodputTPS /
	// SerialBaseline.GoodputTPS (acceptance: ≥3).
	GoodputRatio float64 `json:"goodput_ratio"`
	// EqualAccuracy is true when batched and serial serving predicted
	// identical tokens for the accuracy request set.
	EqualAccuracy bool `json:"equal_accuracy"`
}

// packMissesNow sums the f32 and int8 pack-cache miss counters.
func packMissesNow() int64 {
	var total int64
	for _, name := range []string{"kernels_pack_cache_misses_total", "kernels_int8_pack_cache_misses_total"} {
		if m, ok := obs.Default.Find(name); ok {
			total += int64(m.Value)
		}
	}
	return total
}

// runPoint starts a fresh engine for (path, rate), drives the open-loop
// load in-process, and tears the engine down.
func runPoint(ecfg Config, spec LoadSpec, path kernels.GEMMPath, rate float64, log io.Writer) (*BenchPoint, error) {
	ecfg.GEMMPath = path
	e, err := New(ecfg)
	if err != nil {
		return nil, err
	}
	defer e.Close()

	// Warmup traffic so the measured window is steady state (packs are
	// pre-built by New; this settles allocator and branch state).
	warm := spec
	warm.Rate, warm.Duration = 200, 300*time.Millisecond
	RunLoad(warm, e.Submit)

	missBefore := packMissesNow()
	spec.Rate = rate
	res := RunLoad(spec, e.Submit)
	pt := &BenchPoint{
		Path:       path.String(),
		LoadResult: res,
		PackMisses: packMissesNow() - missBefore,
	}
	if log != nil {
		fmt.Fprintf(log, "  %-8s rate=%6.0f req/s  ok=%d rej=%d  p50=%.2fms p99=%.2fms  goodput=%.0f tok/s  meanB=%.1f  packMiss=%d\n",
			pt.Path, rate, res.OK, res.Rejected, res.P50MS, res.P99MS, res.GoodputTPS, res.MeanBatch, pt.PackMisses)
	}
	return pt, nil
}

// checksumConcurrent submits reqs with many concurrent workers (so the
// scheduler actually coalesces them into multi-request batches) and
// folds per-request predictions in request order — comparable against a
// serial run of the same set.
func checksumConcurrent(reqs []*Request, target Target, workers int) (uint64, error) {
	resps := make([]*Response, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range reqs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			resps[i], errs[i] = target(reqs[i])
		}(i)
	}
	wg.Wait()
	ordered := func(i int) (*Response, error) { return resps[i], errs[i] }
	return foldChecksum(len(reqs), ordered)
}

// foldChecksum re-expresses PredictionChecksum over already-collected
// responses so concurrent and serial runs hash identically.
func foldChecksum(n int, get func(int) (*Response, error)) (uint64, error) {
	i := -1
	return PredictionChecksum(make([]*Request, n), func(*Request) (*Response, error) {
		i++
		return get(i)
	})
}

// RunBench executes the full frontier experiment and returns the
// report. log (optional) receives human-readable progress lines.
func RunBench(cfg BenchConfig, log io.Writer) (*BenchReport, error) {
	if len(cfg.Paths) == 0 {
		cfg.Paths = []string{"blocked", "fused", "int8"}
	}
	if len(cfg.Rates) == 0 {
		cfg.Rates = []float64{250, 500, 1000, 2000}
	}
	if cfg.SaturationRate <= 0 {
		cfg.SaturationRate = 4000
	}
	if cfg.AccuracyReqs <= 0 {
		cfg.AccuracyReqs = 256
	}
	cfg.Spec.setDefaults()

	rep := &BenchReport{}
	rep.Config.Layers = cfg.Model.Model.NumLayers
	rep.Config.DModel = cfg.Model.Model.DModel
	rep.Config.Heads = cfg.Model.Model.Heads
	rep.Config.DFF = cfg.Model.Model.DFF
	rep.Config.Vocab = cfg.Model.Model.Vocab
	rep.Config.MaxBatch = cfg.Model.MaxBatch
	rep.Config.MaxDelayMS = 1e3 * cfg.Model.MaxDelay.Seconds()
	rep.Config.Buckets = cfg.Model.Buckets
	rep.Workload.MinLen = cfg.Spec.MinLen
	rep.Workload.MaxLen = cfg.Spec.MaxLen
	rep.Workload.MaskFrac = cfg.Spec.MaskFrac
	rep.Workload.DurationSec = cfg.Spec.Duration.Seconds()
	rep.Workload.Seed = cfg.Spec.Seed

	for _, name := range cfg.Paths {
		path, err := kernels.ParseGEMMPath(name)
		if err != nil {
			return nil, err
		}
		if log != nil {
			fmt.Fprintf(log, "path %s:\n", name)
		}
		for _, rate := range append(append([]float64(nil), cfg.Rates...), cfg.SaturationRate) {
			pt, err := runPoint(cfg.Model, cfg.Spec, path, rate, log)
			if err != nil {
				return nil, err
			}
			rep.Frontier = append(rep.Frontier, *pt)
			if name == cfg.Paths[0] && rate == cfg.SaturationRate {
				rep.BatchedSaturation = *pt
			}
		}
	}

	// Serial baseline: same path as the first sweep, MaxBatch=1 — every
	// request runs alone, no coalescing, no padding.
	if log != nil {
		fmt.Fprintf(log, "serial baseline (max_batch=1):\n")
	}
	serialCfg := cfg.Model
	serialCfg.MaxBatch = 1
	basePath, _ := kernels.ParseGEMMPath(cfg.Paths[0])
	base, err := runPoint(serialCfg, cfg.Spec, basePath, cfg.SaturationRate, log)
	if err != nil {
		return nil, err
	}
	rep.SerialBaseline = *base
	if base.GoodputTPS > 0 {
		rep.GoodputRatio = rep.BatchedSaturation.GoodputTPS / base.GoodputTPS
	}

	// Equal-accuracy check: the same fixed request set through a batched
	// engine (driven concurrently so real multi-request batches form)
	// and a serial engine must produce identical predictions.
	accReqs := cfg.Spec.GenRequests(cfg.AccuracyReqs)
	eb, err := New(withPath(cfg.Model, basePath))
	if err != nil {
		return nil, err
	}
	batchedSum, err := checksumConcurrent(accReqs, eb.Submit, 64)
	eb.Close()
	if err != nil {
		return nil, fmt.Errorf("accuracy check (batched): %w", err)
	}
	es, err := New(withPath(serialCfg, basePath))
	if err != nil {
		return nil, err
	}
	serialSum, err := PredictionChecksum(accReqs, es.Submit)
	es.Close()
	if err != nil {
		return nil, fmt.Errorf("accuracy check (serial): %w", err)
	}
	rep.EqualAccuracy = batchedSum == serialSum
	if log != nil {
		fmt.Fprintf(log, "goodput ratio (batched/serial): %.2fx   equal accuracy: %v\n",
			rep.GoodputRatio, rep.EqualAccuracy)
	}
	return rep, nil
}

func withPath(c Config, p kernels.GEMMPath) Config {
	c.GEMMPath = p
	return c
}
