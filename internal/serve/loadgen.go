package serve

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"demystbert/internal/data"
	"demystbert/internal/tensor"
)

// Synthetic load generator for the serving engine. It is open-loop: each
// request has a scheduled send time on a fixed-rate clock, latency is
// measured from that scheduled time, and a slow server does NOT slow the
// arrival process down. That makes the measurement immune to coordinated
// omission — a closed-loop client that waits for each response before
// sending the next one under-reports tail latency exactly when the
// server is struggling, which is the regime the latency-vs-throughput
// frontier exists to characterize.

// LoadSpec describes one synthetic workload.
type LoadSpec struct {
	// Rate is the offered load in requests per second; Duration how long
	// to offer it.
	Rate     float64
	Duration time.Duration
	// MinLen/MaxLen bound the (uniform) request lengths; MaskFrac is the
	// fraction of word positions replaced by [MASK] (≥1 per request).
	MinLen, MaxLen int
	MaskFrac       float64
	// Vocab bounds generated word ids; Seed makes the stream
	// reproducible.
	Vocab int
	Seed  uint64
}

func (s *LoadSpec) setDefaults() {
	if s.Rate <= 0 {
		s.Rate = 500
	}
	if s.Duration <= 0 {
		s.Duration = 5 * time.Second
	}
	if s.MinLen <= 0 {
		s.MinLen = 5
	}
	if s.MaxLen < s.MinLen {
		s.MaxLen = s.MinLen
	}
	if s.MaskFrac <= 0 {
		s.MaskFrac = 0.15
	}
}

// GenRequests deterministically builds the first n requests of the
// spec's stream: [CLS] + words with MaskFrac masked (at least one mask,
// so every request has a prediction to return).
func (s *LoadSpec) GenRequests(n int) []*Request {
	rng := tensor.NewRNG(s.Seed)
	reqs := make([]*Request, n)
	for i := range reqs {
		ln := s.MinLen + rng.Intn(s.MaxLen-s.MinLen+1)
		toks := make([]int, ln)
		toks[0] = data.ClsID
		masked := false
		for j := 1; j < ln; j++ {
			if float64(rng.Float32()) < s.MaskFrac {
				toks[j] = data.MaskID
				masked = true
			} else {
				toks[j] = data.FirstWordID + rng.Intn(s.Vocab-data.FirstWordID)
			}
		}
		if !masked {
			toks[1+rng.Intn(ln-1)] = data.MaskID
		}
		reqs[i] = &Request{Tokens: toks}
	}
	return reqs
}

// LoadResult summarizes one loadgen run. Latencies are milliseconds from
// each request's scheduled send time (open loop).
type LoadResult struct {
	OfferedRPS  float64 `json:"offered_rps"`
	DurationSec float64 `json:"duration_sec"`
	Sent        int     `json:"sent"`
	OK          int     `json:"ok"`
	Rejected    int     `json:"rejected"`
	Failed      int     `json:"failed"`

	AchievedRPS float64 `json:"achieved_rps"`
	// GoodputTPS counts real (non-padding) tokens of successful
	// requests per second.
	GoodputTPS  float64 `json:"goodput_tokens_per_sec"`
	Predictions int     `json:"predictions"`

	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
	MeanMS float64 `json:"mean_ms"`

	// MeanBatch is the mean dynamic batch size over successful requests
	// (1.0 means batching never coalesced anything).
	MeanBatch float64 `json:"mean_batch"`
}

// Target submits one request — Engine.Submit directly for in-process
// runs, or an HTTP client wrapper for wire-level runs.
type Target func(*Request) (*Response, error)

// RunLoad offers the spec's request stream to target on the open-loop
// clock and returns the measured result.
func RunLoad(spec LoadSpec, target Target) *LoadResult {
	spec.setDefaults()
	n := int(spec.Rate * spec.Duration.Seconds())
	if n < 1 {
		n = 1
	}
	reqs := spec.GenRequests(n)
	interval := time.Duration(float64(time.Second) / spec.Rate)

	latMS := make([]float64, n) // NaN-free: only indices with ok[i] read
	ok := make([]bool, n)
	var rejected, failed atomic.Int64
	var preds, realToks, batchSum atomic.Int64

	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		sched := start.Add(time.Duration(i) * interval)
		if d := time.Until(sched); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int, sched time.Time) {
			defer wg.Done()
			resp, err := target(reqs[i])
			if err != nil {
				if err == ErrOverloaded {
					rejected.Add(1)
				} else {
					failed.Add(1)
				}
				return
			}
			latMS[i] = 1e3 * time.Since(sched).Seconds()
			ok[i] = true
			preds.Add(int64(len(resp.Predictions)))
			realToks.Add(int64(len(reqs[i].Tokens)))
			batchSum.Add(int64(resp.BatchSize))
		}(i, sched)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &LoadResult{
		OfferedRPS:  spec.Rate,
		DurationSec: elapsed.Seconds(),
		Sent:        n,
		Rejected:    int(rejected.Load()),
		Failed:      int(failed.Load()),
		Predictions: int(preds.Load()),
	}
	var lats []float64
	var sum float64
	for i := range latMS {
		if ok[i] {
			res.OK++
			lats = append(lats, latMS[i])
			sum += latMS[i]
		}
	}
	if res.OK > 0 {
		sort.Float64s(lats)
		res.P50MS = pct(lats, 0.50)
		res.P90MS = pct(lats, 0.90)
		res.P99MS = pct(lats, 0.99)
		res.MaxMS = lats[len(lats)-1]
		res.MeanMS = sum / float64(res.OK)
		res.AchievedRPS = float64(res.OK) / elapsed.Seconds()
		res.GoodputTPS = float64(realToks.Load()) / elapsed.Seconds()
		res.MeanBatch = float64(batchSum.Load()) / float64(res.OK)
	}
	return res
}

// pct reads the q-quantile from an ascending slice (nearest-rank).
func pct(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// PredictionChecksum submits every request in order and folds (index,
// positions, predicted tokens) into one FNV-1a fingerprint. Run it once
// against a batching engine and once against a serial (MaxBatch=1)
// engine on the same weights: equal checksums mean dynamic batching
// changed no prediction — the "equal accuracy" leg of the goodput
// acceptance criterion.
func PredictionChecksum(reqs []*Request, target Target) (uint64, error) {
	h := fnv.New64a()
	for i, r := range reqs {
		resp, err := target(r)
		if err != nil {
			return 0, fmt.Errorf("request %d: %w", i, err)
		}
		var buf [8]byte
		put := func(v int) {
			for b := 0; b < 8; b++ {
				buf[b] = byte(v >> (8 * b))
			}
			h.Write(buf[:])
		}
		put(i)
		for _, p := range resp.Predictions {
			put(p.Pos)
			put(p.Token)
		}
	}
	return h.Sum64(), nil
}
