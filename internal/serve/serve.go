// Package serve is the frozen-weight inference engine: the ROADMAP's
// "serving heavy traffic" path, characterized the same way the paper
// characterizes training. A single model instance (eval context —
// forward only, no gradients, no optimizer state) sits behind a
// continuous-batching scheduler: concurrent requests are coalesced into
// dynamic batches by length bucket, padded requests carry per-request
// additive key-padding masks (the [B, n] mask plumbing in nn.attention,
// here in its first production role), and the whole weight set is
// pre-packed at load so steady-state traffic runs at 100% pack-cache
// reuse — the regime the generation-counted pack cache (DESIGN.md §7)
// and the int8/fused inference kernels (§11) were built for.
//
// Scheduling policy (DESIGN.md §12): requests enter one bounded queue;
// the runner drains it opportunistically, groups requests by the
// smallest configured bucket length that fits, and dispatches a bucket
// the moment it holds MaxBatch requests — or when its oldest request
// has waited MaxDelay, which bounds starvation for odd-length
// stragglers. While a forward pass runs, arrivals accumulate in the
// queue and form the next batch: continuous batching without a separate
// batching thread.
package serve

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"demystbert/internal/data"
	"demystbert/internal/kernels"
	"demystbert/internal/model"
	"demystbert/internal/nn"
	"demystbert/internal/profile"
	"demystbert/internal/tensor"
	"demystbert/internal/trace"
)

// Admission errors. BadRequestError (a distinct type) marks client
// mistakes; these two mark server state.
var (
	// ErrOverloaded: the bounded queue is full — backpressure, HTTP 429.
	ErrOverloaded = errors.New("serve: queue full")
	// ErrDraining: the engine is shutting down — HTTP 503.
	ErrDraining = errors.New("serve: engine draining")
)

// BadRequestError reports a malformed request (HTTP 400).
type BadRequestError struct{ Reason string }

func (e *BadRequestError) Error() string { return "serve: bad request: " + e.Reason }

// Config parameterizes an Engine.
type Config struct {
	// Model is the network geometry; weights are built deterministically
	// from Seed (a real deployment would load a checkpoint via
	// model/serialize — the serving path is identical from there on).
	Model model.Config
	Seed  uint64

	// GEMMPath routes the frozen-weight GEMMs (blocked f32, fused
	// epilogues, int8 quantized). Installed process-wide at New, before
	// the warmup pre-pack, so the packs match the engine that will
	// consume them.
	GEMMPath kernels.GEMMPath

	// MaxBatch caps requests per dynamic batch (default 32).
	MaxBatch int
	// MaxDelay bounds how long a pending request may wait for its
	// bucket to fill before the scheduler dispatches a partial batch
	// (default 2ms). This is the starvation bound.
	MaxDelay time.Duration
	// Buckets are the ascending sequence lengths requests are padded up
	// to (default: powers of two from 8 through Model.MaxPos). A
	// request longer than the last bucket is rejected.
	Buckets []int
	// QueueCap bounds the admission queue (default 4096); a full queue
	// rejects with ErrOverloaded.
	QueueCap int

	// Tracer, when non-nil, enables request-scoped tracing: every
	// sampled request records enqueue/bucket-wait/batch-assembly/
	// forward/respond stage spans, batches record a span the model's
	// phase spans nest under, and kernel events are captured alongside
	// on the same wall clock (WriteTrace exports both). Nil keeps the
	// hot path exactly as before — no clock reads beyond the existing
	// ones, no allocations.
	Tracer *trace.Tracer
}

func (c *Config) setDefaults() error {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4096
	}
	if len(c.Buckets) == 0 {
		for b := 8; b < c.Model.MaxPos; b *= 2 {
			c.Buckets = append(c.Buckets, b)
		}
		c.Buckets = append(c.Buckets, c.Model.MaxPos)
	}
	sort.Ints(c.Buckets)
	for i, b := range c.Buckets {
		if b < 1 || b > c.Model.MaxPos {
			return fmt.Errorf("serve: bucket %d outside [1, MaxPos=%d]", b, c.Model.MaxPos)
		}
		if i > 0 && b == c.Buckets[i-1] {
			return fmt.Errorf("serve: duplicate bucket %d", b)
		}
	}
	return nil
}

// Request is one tokenized inference request: predict the token id at
// every [MASK] position.
type Request struct {
	// Tokens are the input ids; positions holding data.MaskID are the
	// prediction targets.
	Tokens []int `json:"tokens"`
	// Segments are optional sentence A/B ids (all zero when omitted).
	Segments []int `json:"segments,omitempty"`
	// TraceID, when non-zero, adopts a caller-supplied trace identity
	// (the HTTP layer fills it from the X-Trace-Id request header); zero
	// mints a fresh id. Not part of the JSON body.
	TraceID trace.TraceID `json:"-"`
}

// Prediction is the model's token choice for one masked position.
type Prediction struct {
	Pos   int `json:"pos"`
	Token int `json:"token"`
}

// Response carries the predictions plus the scheduling telemetry the
// latency-vs-throughput frontier is built from.
type Response struct {
	Predictions []Prediction `json:"predictions"`
	// Bucket is the padded sequence length the request was batched at;
	// BatchSize the number of requests in its dynamic batch.
	Bucket    int     `json:"bucket"`
	BatchSize int     `json:"batch_size"`
	QueueMS   float64 `json:"queue_ms"`
	TotalMS   float64 `json:"total_ms"`
	// TraceID is the request's trace identity (also the X-Trace-Id
	// response header); /debug/requests decomposes its latency by stage.
	TraceID string `json:"trace_id"`
}

// pending is one admitted request waiting in the scheduler. enq and tq
// bracket admission; the scheduler's timestamps travel back in result,
// so the five stage durations partition [enq, receive] exactly.
type pending struct {
	tokens    []int
	segments  []int
	positions []int
	bucket    int
	enq       time.Time         // t0: Submit entry
	tq        time.Time         // after the queue send — enqueue stage end
	sc        trace.SpanContext // sampled trace identity (zero = off)
	done      chan result
}

type result struct {
	preds     []Prediction
	batchSize int
	queued    time.Duration
	seq       int64     // batch sequence number
	td        time.Time // batch dispatch (bucket-wait stage end)
	ta        time.Time // forward start (batch-assembly stage end)
	tf        time.Time // forward end
	err       error
}

// Engine is the serving instance: model, scheduler, and admission
// queue. Construct with New, serve HTTP via Handler, stop with Close.
type Engine struct {
	cfg Config
	m   *model.BERT
	ctx *nn.Ctx

	mu     sync.RWMutex // admission vs Close
	closed bool
	queue  chan *pending
	stop   chan struct{}
	done   chan struct{}

	// Tracing state. tracer comes from Config; prof captures kernel
	// events on the same wall clock when tracing is on (nil otherwise,
	// which is the profile package's free path). seq numbers batches —
	// it doubles as the span Step, linking every request in a batch to
	// the batch's kernel events. reqLog is the /debug/requests ring,
	// always on (bounded, no per-entry allocation).
	tracer *trace.Tracer
	prof   *profile.Profiler
	seq    int64 // runner goroutine only

	logMu   sync.Mutex
	log     []reqRecord
	logNext int

	// WarmedPacks counts weight packs built by the load-time warmup.
	WarmedPacks int
}

// requestLogCap bounds the /debug/requests ring.
const requestLogCap = 256

// profEventCap bounds retained kernel events while tracing: past it the
// profiler resets, so a long-lived traced server keeps the most recent
// window rather than growing without bound.
const profEventCap = 1 << 18

// New builds the model, installs the GEMM path, pre-packs every
// inference weight (so the first request is as fast as the thousandth
// and the pack-cache miss counters stay flat in steady state), and
// starts the scheduler.
func New(cfg Config) (*Engine, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	m, err := model.New(cfg.Model, cfg.Seed)
	if err != nil {
		return nil, err
	}
	kernels.SetGEMMPath(cfg.GEMMPath)
	e := &Engine{
		cfg: cfg,
		m:   m,
		// Eval-only context: nil profiler (alloc-free no-op path), no
		// RNG use (dropout inactive), Train permanently false.
		ctx:    &nn.Ctx{Train: false},
		queue:  make(chan *pending, cfg.QueueCap),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		tracer: cfg.Tracer,
		log:    make([]reqRecord, 0, requestLogCap),
	}
	if e.tracer != nil {
		// Tracing on: capture kernel events on the shared wall clock so
		// WriteTrace can nest them under batch spans.
		e.prof = profile.New()
		e.ctx.Prof = e.prof
		e.ctx.Tracer = e.tracer
	}
	queueCap.Set(float64(cfg.QueueCap))
	e.WarmedPacks = m.WarmupInference()
	go e.run()
	return e, nil
}

// Model exposes the underlying model (tests compare scheduler output
// against direct serial inference on the same weights).
func (e *Engine) Model() *model.BERT { return e.m }

// Config returns the effective (default-filled) configuration.
func (e *Engine) Config() Config { return e.cfg }

// bucketFor returns the smallest configured bucket that fits n tokens,
// or -1 when the request is too long.
func (e *Engine) bucketFor(n int) int {
	for _, b := range e.cfg.Buckets {
		if n <= b {
			return b
		}
	}
	return -1
}

// validate admission-checks a request and returns its mask positions.
func (e *Engine) validate(req *Request) ([]int, int, error) {
	n := len(req.Tokens)
	if n == 0 {
		return nil, 0, &BadRequestError{"empty token list"}
	}
	bkt := e.bucketFor(n)
	if bkt < 0 {
		return nil, 0, &BadRequestError{fmt.Sprintf("length %d exceeds max bucket %d", n, e.cfg.Buckets[len(e.cfg.Buckets)-1])}
	}
	if req.Segments != nil && len(req.Segments) != n {
		return nil, 0, &BadRequestError{fmt.Sprintf("%d segments for %d tokens", len(req.Segments), n)}
	}
	var positions []int
	for i, id := range req.Tokens {
		if id < 0 || id >= e.cfg.Model.Vocab {
			return nil, 0, &BadRequestError{fmt.Sprintf("token id %d outside vocab %d", id, e.cfg.Model.Vocab)}
		}
		if req.Segments != nil && req.Segments[i] != 0 && req.Segments[i] != 1 {
			return nil, 0, &BadRequestError{fmt.Sprintf("segment id %d must be 0 or 1", req.Segments[i])}
		}
		if id == data.MaskID {
			positions = append(positions, i)
		}
	}
	return positions, bkt, nil
}

// Submit admits a request and blocks until its batch completes,
// returning the predictions. Safe for arbitrary concurrency; requests
// admitted before Close are always answered (the drain dispatches
// them), never abandoned.
func (e *Engine) Submit(req *Request) (*Response, error) {
	positions, bkt, err := e.validate(req)
	if err != nil {
		reqsRejected.Inc()
		return nil, err
	}
	// Every request gets a trace id (the X-Trace-Id contract holds with
	// tracing off or sampled out); only sampled ones record spans. A
	// caller-supplied id is adopted and always sampled — forced tracing
	// of a specific request is the debugging use case.
	tid := req.TraceID
	var sc trace.SpanContext
	if tid == 0 {
		tid, sc = e.tracer.NewTrace()
	} else {
		sc = e.tracer.FixedTrace(tid)
	}
	var rootID trace.SpanID
	if sc.Sampled() {
		// Pre-mint the request root span's id so the batch span (opened
		// by the scheduler before this span is recorded) can nest under
		// it.
		rootID = e.tracer.NewSpanID()
		sc.Parent = rootID
	}
	p := &pending{
		tokens:    req.Tokens,
		segments:  req.Segments,
		positions: positions,
		bucket:    bkt,
		enq:       time.Now(),
		sc:        sc,
		done:      make(chan result, 1),
	}

	// Admission happens under RLock so Close (write lock) establishes a
	// barrier: every request that saw closed==false is in the buffered
	// queue before stop closes, and the runner's final drain answers it.
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		reqsRejected.Inc()
		return nil, ErrDraining
	}
	select {
	case e.queue <- p:
		e.mu.RUnlock()
	default:
		e.mu.RUnlock()
		reqsRejected.Inc()
		return nil, ErrOverloaded
	}
	p.tq = time.Now()
	reqsTotal.Inc()
	queueDepth.Add(1)

	r := <-p.done
	if r.err != nil {
		e.logRequest(reqRecord{trace: tid, start: p.enq, tokens: len(p.tokens),
			seq: r.seq, total: time.Since(p.enq), err: r.err.Error()})
		return nil, r.err
	}
	tr := time.Now()
	total := tr.Sub(p.enq)
	ms := 1e3 * total.Seconds()
	latencyMS.ObserveExemplar(ms, uint64(tid))
	latencyWindow.Observe(ms)
	reqsServed.Inc()
	predsTotal.Add(int64(len(r.preds)))

	if sc.Sampled() {
		step := int(r.seq)
		e.tracer.Record(trace.Span{Trace: tid, ID: rootID, Name: "request",
			Step: step, Start: p.enq, Dur: total})
		stage := func(name string, from, to time.Time) {
			e.tracer.Record(trace.Span{Trace: tid, Parent: rootID, Name: name,
				Step: step, Start: from, Dur: to.Sub(from)})
		}
		stage("enqueue", p.enq, p.tq)
		stage("bucket_wait", p.tq, r.td)
		stage("batch_assembly", r.td, r.ta)
		stage("forward", r.ta, r.tf)
		stage("respond", r.tf, tr)
	}
	e.logRequest(reqRecord{
		trace: tid, start: p.enq,
		tokens: len(p.tokens), preds: len(r.preds),
		bucket: bkt, batchSize: r.batchSize, seq: r.seq,
		enqueue: p.tq.Sub(p.enq), bucketWait: r.td.Sub(p.tq),
		assembly: r.ta.Sub(r.td), forward: r.tf.Sub(r.ta),
		respond: tr.Sub(r.tf), total: total,
	})
	return &Response{
		Predictions: r.preds,
		Bucket:      bkt,
		BatchSize:   r.batchSize,
		QueueMS:     1e3 * r.queued.Seconds(),
		TotalMS:     ms,
		TraceID:     tid.String(),
	}, nil
}

// Close stops admission, drains every already-admitted request through
// the model, and waits for the scheduler to exit.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		<-e.done
		return
	}
	e.closed = true
	e.mu.Unlock()
	close(e.stop)
	<-e.done
}

// run is the scheduler: single goroutine, so the model's per-layer
// saved state is never shared. Throughput parallelism lives inside the
// kernels (the GEMM worker pool fans each forward across cores);
// concurrency across requests is the batching itself.
func (e *Engine) run() {
	defer close(e.done)
	pend := make(map[int][]*pending)
	total := 0

	add := func(p *pending) {
		pend[p.bucket] = append(pend[p.bucket], p)
		total++
	}
	dispatch := func(bkt int) {
		reqs := pend[bkt]
		delete(pend, bkt)
		total -= len(reqs)
		queueDepth.Add(-float64(len(reqs)))
		e.runBatch(bkt, reqs)
	}
	// fullBucket returns a bucket at MaxBatch, oldestBucket the bucket
	// whose head request has waited longest (its deadline governs).
	fullBucket := func() int {
		for bkt, reqs := range pend {
			if len(reqs) >= e.cfg.MaxBatch {
				return bkt
			}
		}
		return -1
	}
	oldestBucket := func() (int, time.Time) {
		best, bestT := -1, time.Time{}
		for bkt, reqs := range pend {
			if best == -1 || reqs[0].enq.Before(bestT) {
				best, bestT = bkt, reqs[0].enq
			}
		}
		return best, bestT
	}

	for {
		// Nothing pending: block for work or shutdown.
		if total == 0 {
			select {
			case p := <-e.queue:
				add(p)
			case <-e.stop:
				e.drainFinal(pend)
				return
			}
		}
		// Opportunistic drain: coalesce everything that arrived while
		// the previous batch was in the model.
	drain:
		for {
			select {
			case p := <-e.queue:
				add(p)
				if len(pend[p.bucket]) >= e.cfg.MaxBatch {
					dispatch(p.bucket)
				}
			default:
				break drain
			}
		}
		if bkt := fullBucket(); bkt >= 0 {
			dispatch(bkt)
			continue
		}
		bkt, oldest := oldestBucket()
		if bkt < 0 {
			continue
		}
		deadline := oldest.Add(e.cfg.MaxDelay)
		wait := time.Until(deadline)
		if wait <= 0 {
			deadlineFlushes.Inc()
			dispatch(bkt)
			continue
		}
		timer := time.NewTimer(wait)
		select {
		case p := <-e.queue:
			timer.Stop()
			add(p)
			if len(pend[p.bucket]) >= e.cfg.MaxBatch {
				dispatch(p.bucket)
			}
		case <-timer.C:
			deadlineFlushes.Inc()
			dispatch(bkt)
		case <-e.stop:
			timer.Stop()
			e.drainFinal(pend)
			return
		}
	}
}

// drainFinal answers everything still pending plus everything sitting
// in the admission buffer — the graceful-shutdown guarantee that no
// admitted request is abandoned.
func (e *Engine) drainFinal(pend map[int][]*pending) {
	for {
		select {
		case p := <-e.queue:
			pend[p.bucket] = append(pend[p.bucket], p)
		default:
			for bkt, reqs := range pend {
				queueDepth.Add(-float64(len(reqs)))
				for len(reqs) > 0 {
					n := min(len(reqs), e.cfg.MaxBatch)
					e.runBatch(bkt, reqs[:n])
					reqs = reqs[n:]
				}
			}
			return
		}
	}
}

// runBatch pads the coalesced requests to the bucket length, builds the
// additive key-padding mask, runs the forward-only model pass, and
// delivers per-request predictions.
func (e *Engine) runBatch(bkt int, reqs []*pending) {
	if len(reqs) == 0 {
		return
	}
	e.seq++
	seq := e.seq
	td := time.Now()
	defer func() {
		// A panic in the model must not kill the scheduler: deliver the
		// failure to this batch's requests and keep serving.
		if r := recover(); r != nil {
			err := fmt.Errorf("serve: batch failed: %v\n%s", r, debug.Stack())
			for _, p := range reqs {
				p.done <- result{err: err, seq: seq}
			}
		}
	}()

	B, n := len(reqs), bkt
	batch := &data.Batch{
		B:        B,
		N:        n,
		Tokens:   make([]int, B*n),
		Segments: make([]int, B*n),
	}
	positions := make([][]int, B)
	real := 0
	padded := false
	for s, p := range reqs {
		base := s * n
		copy(batch.Tokens[base:], p.tokens)
		if p.segments != nil {
			copy(batch.Segments[base:], p.segments)
		}
		// Pad slots keep PadID/segment 0; the mask removes them from
		// every attention sum, and no prediction reads their rows.
		if len(p.tokens) < n {
			padded = true
		}
		positions[s] = p.positions
		real += len(p.tokens)
	}
	if padded {
		batch.Mask = tensor.New(B, n)
		for s, p := range reqs {
			for i := len(p.tokens); i < n; i++ {
				batch.Mask.Set(-1e9, s, i)
			}
		}
	}

	// When any rider is sampled, the batch records a span under that
	// request's root; the model's phase spans (embed, layerN) nest under
	// it, and the profiler's kernel events share the iteration index —
	// that is the request→batch→kernel linkage WriteTrace exports.
	var bsp trace.ActiveSpan
	if e.tracer != nil {
		for _, p := range reqs {
			if p.sc.Sampled() {
				bsp = e.tracer.StartSpan(p.sc, "batch").WithStep(int(seq))
				break
			}
		}
		e.ctx.Span = bsp.Context()
		if e.prof != nil {
			if e.prof.KernelCount() > profEventCap {
				e.prof.Reset()
			}
			e.prof.BeginIteration()
		}
	}

	ta := time.Now()
	preds := e.m.PredictMaskedAt(e.ctx, batch, positions)
	tf := time.Now()
	bsp.End()
	e.ctx.Span = trace.SpanContext{}

	batchesTotal.Inc()
	batchSizeHist.Observe(float64(B))
	goodputTokens.Add(int64(real))
	paddingTokens.Add(int64(B*n - real))
	modelMS.Observe(1e3 * tf.Sub(ta).Seconds())

	for s, p := range reqs {
		queued := td.Sub(p.enq)
		queueWaitMS.Observe(1e3 * queued.Seconds())
		out := make([]Prediction, len(p.positions))
		for i, pos := range p.positions {
			out[i] = Prediction{Pos: pos, Token: preds[s][i]}
		}
		p.done <- result{preds: out, batchSize: B, queued: queued,
			seq: seq, td: td, ta: ta, tf: tf}
	}
}
