package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"demystbert/internal/kernels"
)

// postMLM sends one request to a running server and decodes the reply.
func postMLM(t *testing.T, base string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/mlm", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatalf("POST /v1/mlm: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

func startTestServer(t *testing.T, cfg Config) (*Engine, string) {
	t.Helper()
	prev := kernels.CurrentGEMMPath()
	e, srv, err := Start(cfg, "localhost:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		srv.ShutdownTimeout(5 * time.Second)
		e.Close()
		kernels.SetGEMMPath(prev)
	})
	return e, "http://" + srv.Addr
}

// TestServeSmokeAllPaths is the serving smoke in scripts/check.sh: a
// live HTTP server on each production GEMM path must answer tokenized
// requests with 200s and non-empty predictions, and expose the serving
// metrics on the same port.
func TestServeSmokeAllPaths(t *testing.T) {
	for _, path := range []kernels.GEMMPath{
		kernels.GEMMPathBlocked, kernels.GEMMPathFused, kernels.GEMMPathInt8,
	} {
		t.Run(path.String(), func(t *testing.T) {
			cfg := testConfig()
			cfg.GEMMPath = path
			_, base := startTestServer(t, cfg)

			for i := 0; i < 4; i++ {
				body, _ := json.Marshal(testRequest(5+3*i, i))
				resp, raw := postMLM(t, base, string(body))
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("request %d: HTTP %d: %s", i, resp.StatusCode, raw)
				}
				var r Response
				if err := json.Unmarshal(raw, &r); err != nil {
					t.Fatalf("request %d: bad JSON %q: %v", i, raw, err)
				}
				if len(r.Predictions) == 0 {
					t.Fatalf("request %d: empty predictions: %s", i, raw)
				}
				for _, p := range r.Predictions {
					if p.Token < 0 || p.Token >= cfg.Model.Vocab {
						t.Fatalf("request %d: token %d outside vocab", i, p.Token)
					}
				}
			}

			hr, err := http.Get(base + "/metrics")
			if err != nil {
				t.Fatalf("GET /metrics: %v", err)
			}
			mb, _ := io.ReadAll(hr.Body)
			hr.Body.Close()
			if !bytes.Contains(mb, []byte("serve_requests_total")) {
				t.Error("metrics endpoint missing serve_requests_total")
			}
		})
	}
}

// TestHTTPErrors: status-code mapping for the admission error taxonomy.
func TestHTTPErrors(t *testing.T) {
	_, base := startTestServer(t, testConfig())

	resp, _ := postMLM(t, base, `{"tokens": [1, 3, 9999]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-vocab token: HTTP %d, want 400", resp.StatusCode)
	}
	resp, _ = postMLM(t, base, `not json`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: HTTP %d, want 400", resp.StatusCode)
	}
	resp, _ = postMLM(t, base, `{"tokens": [1, 3], "unknown_field": 1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: HTTP %d, want 400", resp.StatusCode)
	}
	hr, err := http.Get(base + "/v1/mlm")
	if err != nil {
		t.Fatalf("GET /v1/mlm: %v", err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: HTTP %d, want 405", hr.StatusCode)
	}
}

// TestHealthzDraining: /healthz flips from 200 to 503 once the engine
// begins draining, so load balancers stop routing before requests fail.
func TestHealthzDraining(t *testing.T) {
	e, base := startTestServer(t, testConfig())
	hr, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthy server: HTTP %d, want 200", hr.StatusCode)
	}
	e.Close()
	hr, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz after Close: %v", err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining server: HTTP %d, want 503", hr.StatusCode)
	}
	resp, _ := postMLM(t, base, `{"tokens": [1, 3]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("Submit while draining: HTTP %d, want 503", resp.StatusCode)
	}
}

// TestLoadgenAgainstEngine: the open-loop generator drives the engine
// in-process, succeeds on every request at a modest rate, and reports a
// sane latency distribution.
func TestLoadgenAgainstEngine(t *testing.T) {
	e := newTestEngine(t, testConfig())
	spec := LoadSpec{
		Rate: 300, Duration: 500 * time.Millisecond,
		MinLen: 5, MaxLen: 14, MaskFrac: 0.15,
		Vocab: e.cfg.Model.Vocab, Seed: 11,
	}
	res := RunLoad(spec, e.Submit)
	if res.OK == 0 {
		t.Fatalf("no request succeeded: %+v", res)
	}
	if res.Failed > 0 {
		t.Errorf("%d requests failed", res.Failed)
	}
	if res.P50MS <= 0 || res.P99MS < res.P50MS || res.MaxMS < res.P99MS {
		t.Errorf("implausible latency distribution: p50=%.3f p99=%.3f max=%.3f", res.P50MS, res.P99MS, res.MaxMS)
	}
	if res.GoodputTPS <= 0 {
		t.Errorf("goodput %.1f, want > 0", res.GoodputTPS)
	}
}

// TestBatchedMatchesSerialPredictions is the equal-accuracy leg of the
// goodput criterion: the same request set through a concurrently-driven
// batching engine and a serial MaxBatch=1 engine on identical weights
// must predict identical tokens.
func TestBatchedMatchesSerialPredictions(t *testing.T) {
	spec := LoadSpec{MinLen: 5, MaxLen: 14, MaskFrac: 0.2, Vocab: 1000, Seed: 3}
	spec.setDefaults()
	reqs := spec.GenRequests(96)

	cfg := testConfig()
	eb := newTestEngine(t, cfg)
	batched, err := checksumConcurrent(reqs, eb.Submit, 32)
	if err != nil {
		t.Fatalf("batched run: %v", err)
	}
	eb.Close()

	serialCfg := testConfig()
	serialCfg.MaxBatch = 1
	es := newTestEngine(t, serialCfg)
	serial, err := PredictionChecksum(reqs, es.Submit)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	if batched != serial {
		t.Errorf("batched checksum %x != serial %x: dynamic batching changed predictions", batched, serial)
	}
}

// TestGenRequestsDeterministic: the synthetic stream is reproducible and
// well-formed (CLS first, ≥1 mask, ids in vocab).
func TestGenRequestsDeterministic(t *testing.T) {
	spec := LoadSpec{MinLen: 5, MaxLen: 16, MaskFrac: 0.15, Vocab: 1000, Seed: 9}
	spec.setDefaults()
	a, b := spec.GenRequests(50), spec.GenRequests(50)
	for i := range a {
		if fmt.Sprint(a[i].Tokens) != fmt.Sprint(b[i].Tokens) {
			t.Fatalf("request %d differs between identical specs", i)
		}
		toks := a[i].Tokens
		if toks[0] != 1 {
			t.Fatalf("request %d does not start with CLS", i)
		}
		masks := 0
		for _, id := range toks {
			if id < 0 || id >= 1000 {
				t.Fatalf("request %d: token %d outside vocab", i, id)
			}
			if id == 3 {
				masks++
			}
		}
		if masks == 0 {
			t.Fatalf("request %d has no mask", i)
		}
	}
}
