package serve

import "demystbert/internal/obs"

// Serving metrics, registered in the process-wide obs registry so the
// debug endpoints of a serving binary expose the scheduler the same way
// they expose the kernel layer: queue depth and wait, coalesced batch
// geometry, end-to-end latency, and goodput (real, non-padding tokens)
// versus padding waste. All hot-path updates are single atomics per the
// obs contract.
var (
	reqsTotal = obs.NewCounter("serve_requests_total",
		"inference requests accepted into the scheduler queue")
	reqsRejected = obs.NewCounter("serve_rejected_total",
		"inference requests rejected at admission (queue full or draining)")
	reqsServed = obs.NewCounter("serve_served_total",
		"inference requests completed with predictions")
	predsTotal = obs.NewCounter("serve_predictions_total",
		"masked-position predictions returned")
	batchesTotal = obs.NewCounter("serve_batches_total",
		"dynamic batches dispatched to the model")
	goodputTokens = obs.NewCounter("serve_goodput_tokens_total",
		"real (non-padding) tokens in dispatched batches")
	paddingTokens = obs.NewCounter("serve_padding_tokens_total",
		"padding tokens in dispatched batches (bucketing waste)")
	deadlineFlushes = obs.NewCounter("serve_deadline_flushes_total",
		"batches dispatched by the coalescing deadline rather than by filling up")

	queueDepth = obs.NewGauge("serve_queue_depth",
		"requests waiting in the scheduler (queued or coalescing)")

	batchSizeHist = obs.NewHistogram("serve_batch_size",
		"requests per dispatched batch",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128})
	queueWaitMS = obs.NewHistogram("serve_queue_wait_ms",
		"time from admission to batch dispatch, milliseconds",
		obs.ExpBuckets(0.05, 2, 18))
	latencyMS = obs.NewHistogram("serve_latency_ms",
		"time from admission to completed predictions, milliseconds",
		obs.ExpBuckets(0.05, 2, 18))
	modelMS = obs.NewHistogram("serve_model_ms",
		"forward-pass wall time per dispatched batch, milliseconds",
		obs.ExpBuckets(0.05, 2, 18))
)
