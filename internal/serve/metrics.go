package serve

import "demystbert/internal/obs"

// Serving metrics, registered in the process-wide obs registry so the
// debug endpoints of a serving binary expose the scheduler the same way
// they expose the kernel layer: queue depth and wait, coalesced batch
// geometry, end-to-end latency, and goodput (real, non-padding tokens)
// versus padding waste. All hot-path updates are single atomics per the
// obs contract.
var (
	reqsTotal = obs.NewCounter("serve_requests_total",
		"inference requests accepted into the scheduler queue")
	reqsRejected = obs.NewCounter("serve_rejected_total",
		"inference requests rejected at admission (queue full or draining)")
	reqsServed = obs.NewCounter("serve_served_total",
		"inference requests completed with predictions")
	predsTotal = obs.NewCounter("serve_predictions_total",
		"masked-position predictions returned")
	batchesTotal = obs.NewCounter("serve_batches_total",
		"dynamic batches dispatched to the model")
	goodputTokens = obs.NewCounter("serve_goodput_tokens_total",
		"real (non-padding) tokens in dispatched batches")
	paddingTokens = obs.NewCounter("serve_padding_tokens_total",
		"padding tokens in dispatched batches (bucketing waste)")
	deadlineFlushes = obs.NewCounter("serve_deadline_flushes_total",
		"batches dispatched by the coalescing deadline rather than by filling up")

	queueDepth = obs.NewGauge("serve_queue_depth",
		"requests waiting in the scheduler (queued or coalescing)")
	queueCap = obs.NewGauge("serve_queue_cap",
		"admission queue capacity (queue depth saturates here)")

	batchSizeHist = obs.NewHistogram("serve_batch_size",
		"requests per dispatched batch",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128})
	queueWaitMS = obs.NewHistogram("serve_queue_wait_ms",
		"time from admission to batch dispatch, milliseconds",
		obs.ExpBuckets(0.05, 2, 18))
	// Latency buckets are tuned to the measured operating band: the
	// BENCH_serve sweep lands p50 between 3.9 and 9.2 ms across batch
	// configurations, so that range gets 0.5 ms resolution (the old
	// power-of-two ladder jumped 3.2→6.4→12.8 and blurred every
	// configuration into two buckets). Sub-ms and tail ranges keep
	// coarser coverage for loadgen sweeps and overload states.
	latencyMS = obs.NewHistogram("serve_latency_ms",
		"time from admission to completed predictions, milliseconds",
		[]float64{0.25, 0.5, 1, 2, 3, 3.5, 4, 4.5, 5, 5.5, 6, 6.5, 7,
			7.5, 8, 8.5, 9, 9.5, 10, 12, 16, 24, 48, 96, 200, 500})
	modelMS = obs.NewHistogram("serve_model_ms",
		"forward-pass wall time per dispatched batch, milliseconds",
		obs.ExpBuckets(0.05, 2, 18))

	// latencyWindow backs the rolling p50/p99 gauges: what the latency
	// distribution looks like *now*, not since boot.
	latencyWindow = obs.NewWindow(obs.DefaultWindowCap)
)

func init() {
	obs.NewQuantileGauge("serve_latency_p50_ms",
		"rolling-window median request latency, milliseconds", latencyWindow, 0.50)
	obs.NewQuantileGauge("serve_latency_p99_ms",
		"rolling-window p99 request latency, milliseconds", latencyWindow, 0.99)
}
