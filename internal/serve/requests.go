package serve

import (
	"errors"
	"io"
	"time"

	"demystbert/internal/trace"
)

// The /debug/requests ring: the last requestLogCap answered requests
// with their per-stage latency decomposition. It is always on —
// appending copies one small struct into a preallocated ring under a
// mutex, no allocation — so a trace id from an X-Trace-Id header can be
// looked up even when span recording is off or the request was sampled
// out.

// reqRecord is the compact in-ring form; trace ids stay numeric so the
// hot path never formats strings.
type reqRecord struct {
	trace      trace.TraceID
	start      time.Time
	tokens     int
	preds      int
	bucket     int
	batchSize  int
	seq        int64
	enqueue    time.Duration
	bucketWait time.Duration
	assembly   time.Duration
	forward    time.Duration
	respond    time.Duration
	total      time.Duration
	err        string
}

func (e *Engine) logRequest(r reqRecord) {
	e.logMu.Lock()
	if len(e.log) < requestLogCap {
		e.log = append(e.log, r)
	} else {
		e.log[e.logNext] = r
	}
	e.logNext = (e.logNext + 1) % requestLogCap
	e.logMu.Unlock()
}

// RequestRecord is one /debug/requests entry. The five stage columns
// partition TotalMS exactly: enqueue (validation + queue send), bucket
// wait (queued until the scheduler dispatched the bucket), batch
// assembly (padding + mask build), forward (the model pass), respond
// (delivery back to the waiting request).
type RequestRecord struct {
	TraceID         string    `json:"trace_id"`
	Start           time.Time `json:"start"`
	Tokens          int       `json:"tokens"`
	Predictions     int       `json:"predictions"`
	Bucket          int       `json:"bucket"`
	BatchSize       int       `json:"batch_size"`
	BatchSeq        int64     `json:"batch_seq"`
	EnqueueMS       float64   `json:"enqueue_ms"`
	BucketWaitMS    float64   `json:"bucket_wait_ms"`
	BatchAssemblyMS float64   `json:"batch_assembly_ms"`
	ForwardMS       float64   `json:"forward_ms"`
	RespondMS       float64   `json:"respond_ms"`
	TotalMS         float64   `json:"total_ms"`
	Error           string    `json:"error,omitempty"`
}

// RecentRequests returns the retained request log, newest first.
func (e *Engine) RecentRequests() []RequestRecord {
	e.logMu.Lock()
	n := len(e.log)
	recs := make([]reqRecord, 0, n)
	// Ring order: logNext points at the oldest entry once wrapped.
	if n == requestLogCap {
		recs = append(recs, e.log[e.logNext:]...)
		recs = append(recs, e.log[:e.logNext]...)
	} else {
		recs = append(recs, e.log...)
	}
	e.logMu.Unlock()

	ms := func(d time.Duration) float64 { return 1e3 * d.Seconds() }
	out := make([]RequestRecord, 0, len(recs))
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		out = append(out, RequestRecord{
			TraceID:         r.trace.String(),
			Start:           r.start,
			Tokens:          r.tokens,
			Predictions:     r.preds,
			Bucket:          r.bucket,
			BatchSize:       r.batchSize,
			BatchSeq:        r.seq,
			EnqueueMS:       ms(r.enqueue),
			BucketWaitMS:    ms(r.bucketWait),
			BatchAssemblyMS: ms(r.assembly),
			ForwardMS:       ms(r.forward),
			RespondMS:       ms(r.respond),
			TotalMS:         ms(r.total),
			Error:           r.err,
		})
	}
	return out
}

// FindRequest returns the logged record for a trace id, if retained.
func (e *Engine) FindRequest(id trace.TraceID) (RequestRecord, bool) {
	for _, r := range e.RecentRequests() {
		if r.TraceID == id.String() {
			return r, true
		}
	}
	return RequestRecord{}, false
}

// WriteTrace exports the retained spans plus the kernel events captured
// while tracing as one Perfetto/Chrome timeline (requests and batches on
// the span track, GEMM/attention kernels on the kernel track, shared
// wall clock).
func (e *Engine) WriteTrace(w io.Writer) error {
	if e.tracer == nil {
		return errors.New("serve: tracing not enabled (Config.Tracer is nil)")
	}
	return trace.WriteChromeTrace(w, e.tracer.Spans(), e.prof.Events())
}
